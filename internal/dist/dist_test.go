package dist

import (
	"math"
	"math/rand"
	"testing"
)

// sampleMoments draws n variates and returns the empirical mean and SCV.
func sampleMoments(t *testing.T, d Dist, n int, seed int64) (mean, scv float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		if x < 0 {
			t.Fatalf("%s produced negative sample %v", d, x)
		}
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	varc := sumSq/float64(n) - mean*mean
	if mean == 0 {
		return mean, 0
	}
	return mean, varc / (mean * mean)
}

// checkMoments verifies analytic and empirical moments agree.
func checkMoments(t *testing.T, d Dist, wantMean, wantSCV, tol float64) {
	t.Helper()
	if m := d.Mean(); math.Abs(m-wantMean) > 1e-9*(1+wantMean) {
		t.Errorf("%s analytic mean = %v, want %v", d, m, wantMean)
	}
	if s := d.SCV(); math.Abs(s-wantSCV) > 1e-9*(1+wantSCV) {
		t.Errorf("%s analytic SCV = %v, want %v", d, s, wantSCV)
	}
	em, es := sampleMoments(t, d, 200_000, 7)
	if math.Abs(em-wantMean) > tol*(1+wantMean) {
		t.Errorf("%s empirical mean = %v, want %v (tol %v)", d, em, wantMean, tol)
	}
	if math.Abs(es-wantSCV) > 4*tol*(1+wantSCV) {
		t.Errorf("%s empirical SCV = %v, want %v", d, es, wantSCV)
	}
}

func TestDistributionMoments(t *testing.T) {
	cases := []struct {
		name     string
		d        Dist
		mean, sc float64
	}{
		{"Exponential", NewExponential(4), 0.25, 1},
		{"ExponentialMean", NewExponentialMean(0.077), 0.077, 1},
		{"Erlang4", NewErlang(4, 2), 2, 0.25},
		{"Uniform", NewUniform(1, 3), 2, (4.0 / 12) / 4},
		{"Deterministic", Deterministic{Value: 1.5}, 1.5, 0},
		{"LogNormal", NewLogNormalMeanSCV(0.05, 2), 0.05, 2},
		{"Scaled", Scaled{D: NewExponentialMean(1), Factor: 3}, 3, 1},
		{"Shifted", Shifted{D: NewUniform(0, 2), Offset: 4}, 5, (4.0 / 12) / 25},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkMoments(t, c.d, c.mean, c.sc, 0.02) })
	}
}

func TestFitSCVRoundTrip(t *testing.T) {
	means := []float64{0.01, 0.077, 1, 40}
	scvs := []float64{0, 0.1, 0.25, 0.4, 0.5, 1, 1.7, 4, 10}
	for _, mean := range means {
		for _, scv := range scvs {
			d := FitSCV(mean, scv)
			if m := d.Mean(); math.Abs(m-mean) > 1e-9*mean {
				t.Errorf("FitSCV(%v, %v) = %s: analytic mean %v", mean, scv, d, m)
			}
			if s := d.SCV(); math.Abs(s-scv) > 1e-9*(1+scv) {
				t.Errorf("FitSCV(%v, %v) = %s: analytic SCV %v, want %v", mean, scv, d, s, scv)
			}
			// Measure the fitted distribution by sampling.
			em, es := sampleMoments(t, d, 300_000, 11)
			if math.Abs(em-mean) > 0.03*mean {
				t.Errorf("FitSCV(%v, %v) = %s: empirical mean %v", mean, scv, d, em)
			}
			if math.Abs(es-scv) > 0.12*(1+scv) {
				t.Errorf("FitSCV(%v, %v) = %s: empirical SCV %v", mean, scv, d, es)
			}
		}
	}
}

func TestFitSCVFamilies(t *testing.T) {
	if _, ok := FitSCV(1, 0).(Deterministic); !ok {
		t.Errorf("FitSCV(1, 0) = %T, want Deterministic", FitSCV(1, 0))
	}
	if _, ok := FitSCV(1, 1).(Exponential); !ok {
		t.Errorf("FitSCV(1, 1) = %T, want Exponential", FitSCV(1, 1))
	}
	if d, ok := FitSCV(1, 0.25).(Erlang); !ok || d.K != 4 {
		t.Errorf("FitSCV(1, 0.25) = %v, want Erlang k=4", FitSCV(1, 0.25))
	}
	if _, ok := FitSCV(1, 0.4).(MixedErlang); !ok {
		t.Errorf("FitSCV(1, 0.4) = %T, want MixedErlang", FitSCV(1, 0.4))
	}
	if _, ok := FitSCV(1, 3).(HyperExp2); !ok {
		t.Errorf("FitSCV(1, 3) = %T, want HyperExp2", FitSCV(1, 3))
	}
}

func TestQuantiles(t *testing.T) {
	dists := []Dist{
		NewExponential(2),
		NewErlang(3, 1.5),
		NewUniform(0.5, 2.5),
		NewLogNormalMeanSCV(1, 0.8),
		FitSCV(1, 0.4),
		FitSCV(1, 3),
		Scaled{D: NewExponentialMean(1), Factor: 2},
		Shifted{D: NewExponentialMean(1), Offset: 0.5},
	}
	ps := []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.99}
	for _, d := range dists {
		// Quantiles must be nondecreasing in p.
		prev := math.Inf(-1)
		for _, p := range ps {
			q := d.Quantile(p)
			if q < prev {
				t.Errorf("%s: Quantile(%v) = %v < previous %v", d, p, q, prev)
			}
			prev = q
		}
		// The empirical fraction below Quantile(p) must be close to p.
		rng := rand.New(rand.NewSource(3))
		const n = 100_000
		for _, p := range ps {
			q := d.Quantile(p)
			below := 0
			for i := 0; i < n; i++ {
				if d.Sample(rng) <= q {
					below++
				}
			}
			got := float64(below) / n
			if math.Abs(got-p) > 0.012 {
				t.Errorf("%s: P(X <= Quantile(%v)) = %v", d, p, got)
			}
		}
	}
	// Closed-form checks.
	if q := NewExponential(1).Quantile(0.5); math.Abs(q-math.Ln2) > 1e-12 {
		t.Errorf("Exp(1) median = %v, want ln 2", q)
	}
	if q := NewUniform(2, 4).Quantile(0.25); q != 2.5 {
		t.Errorf("U[2,4] Quantile(0.25) = %v, want 2.5", q)
	}
	if q := (Deterministic{Value: 3}).Quantile(0.9); q != 3 {
		t.Errorf("Det(3) Quantile(0.9) = %v, want 3", q)
	}
}

func TestDeterminismUnderFixedSeed(t *testing.T) {
	dists := []Dist{
		NewExponential(2),
		NewErlang(3, 1),
		NewUniform(0, 1),
		NewLogNormalMeanSCV(1, 2),
		FitSCV(1, 0.4),
		FitSCV(1, 3),
	}
	for _, d := range dists {
		a := rand.New(rand.NewSource(99))
		b := rand.New(rand.NewSource(99))
		for i := 0; i < 1000; i++ {
			if x, y := d.Sample(a), d.Sample(b); x != y {
				t.Fatalf("%s: draw %d diverged under identical seeds: %v vs %v", d, i, x, y)
			}
		}
	}
}

func TestVariance(t *testing.T) {
	d := NewUniform(1, 3)
	want := 4.0 / 12
	if v := Variance(d); math.Abs(v-want) > 1e-12 {
		t.Errorf("Variance(U[1,3]) = %v, want %v", v, want)
	}
}

func TestInvalidParametersPanic(t *testing.T) {
	cases := []func(){
		func() { NewExponential(0) },
		func() { NewExponentialMean(-1) },
		func() { NewErlang(0, 1) },
		func() { NewUniform(2, 1) },
		func() { NewLogNormalMeanSCV(0, 1) },
		func() { FitSCV(-1, 1) },
		func() { FitSCV(1, -0.5) },
		func() { NewExponential(1).Quantile(1.5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestLargeShapeErlang: tiny SCVs produce Erlang shapes in the hundreds
// or thousands; sampling must not underflow to +Inf (product-of-uniforms
// pitfall) and the log-space CDF must not NaN at large λx.
func TestLargeShapeErlang(t *testing.T) {
	for _, scv := range []float64{0.001, 0.00134} { // Erlang(1000), MixedErlang(747)
		d := FitSCV(1, scv)
		rng := rand.New(rand.NewSource(5))
		var sum float64
		for i := 0; i < 2000; i++ {
			x := d.Sample(rng)
			if math.IsInf(x, 0) || math.IsNaN(x) || x <= 0 {
				t.Fatalf("%s sample %d = %v", d, i, x)
			}
			sum += x
		}
		if mean := sum / 2000; math.Abs(mean-1) > 0.01 {
			t.Errorf("%s empirical mean %v, want 1", d, mean)
		}
	}

	e := NewErlang(1000, 1)
	if c := e.CDF(1); math.IsNaN(c) || c < 0.45 || c > 0.55 {
		t.Errorf("Erlang(1000).CDF(1) = %v, want ≈ 0.5", c)
	}
	if q := e.Quantile(0.5); math.Abs(q-1) > 0.01 {
		t.Errorf("Erlang(1000) median = %v, want ≈ 1", q)
	}
}
