// Package dist is the simulator's single stochastic substrate: every
// random variate drawn anywhere in the repro — inter-arrival gaps,
// service demands, network round-trips, trace noise — comes from a
// dist.Dist sampled against a seeded *rand.Rand stream (typically one
// obtained from sim.Engine.NewStream), so whole experiments replay
// bit-identically from a seed.
//
// The package provides the classical nonnegative families the paper's
// G/G/k analysis (§3) works with — exponential, Erlang, uniform,
// deterministic, lognormal — plus Scaled/Shifted combinators and FitSCV,
// which fits a distribution to a target mean and squared coefficient of
// variation (the paper's variability knob).
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a random variate with known first and second moments.
type Dist interface {
	// Sample draws one variate using the given stream.
	Sample(rng *rand.Rand) float64
	// Mean returns the expected value.
	Mean() float64
	// SCV returns the squared coefficient of variation Var/Mean².
	SCV() float64
	// Quantile returns the p-quantile, p in [0, 1].
	Quantile(p float64) float64
	// String describes the distribution.
	String() string
}

// Variance returns the variance of d, derived from its mean and SCV.
func Variance(d Dist) float64 {
	m := d.Mean()
	return d.SCV() * m * m
}

// checkP panics on a quantile probability outside [0, 1].
func checkP(p float64) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("dist: quantile probability %v outside [0,1]", p))
	}
}

// Exponential is the exponential distribution with the given rate
// (mean 1/Rate, SCV 1).
type Exponential struct {
	Rate float64
}

// NewExponential returns an exponential distribution with the given rate
// in events per second.
func NewExponential(rate float64) Exponential {
	if rate <= 0 {
		panic(fmt.Sprintf("dist: exponential rate %v must be positive", rate))
	}
	return Exponential{Rate: rate}
}

// NewExponentialMean returns an exponential distribution with the given
// mean.
func NewExponentialMean(mean float64) Exponential {
	if mean <= 0 {
		panic(fmt.Sprintf("dist: exponential mean %v must be positive", mean))
	}
	return Exponential{Rate: 1 / mean}
}

// Sample draws an exponential variate.
func (d Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() / d.Rate }

// Mean returns 1/rate.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// SCV of the exponential is 1.
func (d Exponential) SCV() float64 { return 1 }

// Quantile returns -ln(1-p)/rate.
func (d Exponential) Quantile(p float64) float64 {
	checkP(p)
	if p == 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p) / d.Rate
}

func (d Exponential) String() string { return fmt.Sprintf("Exp(mean=%.4g)", 1/d.Rate) }

// Erlang is the Erlang-k distribution: the sum of K independent
// exponentials. Its SCV is 1/K, making it the paper's low-variability
// inter-arrival model (paced load generators).
type Erlang struct {
	K    int
	Rate float64 // rate of each exponential phase
}

// NewErlang returns an Erlang-k distribution with the given overall mean
// (each phase has mean mean/k).
func NewErlang(k int, mean float64) Erlang {
	if k <= 0 || mean <= 0 {
		panic(fmt.Sprintf("dist: Erlang k=%d mean=%v invalid", k, mean))
	}
	return Erlang{K: k, Rate: float64(k) / mean}
}

// Sample draws an Erlang variate.
func (d Erlang) Sample(rng *rand.Rand) float64 { return erlangSample(d.K, d.Rate, rng) }

// erlangSample draws a sum of k exponentials at the given phase rate.
// Small shapes use -ln(∏ U_i)/rate (one log for k uniforms); the product
// of more than ~745 uniforms underflows float64 to 0, and an O(k) loop
// is wasteful anyway, so large shapes switch to the O(1) Marsaglia–Tsang
// gamma sampler.
func erlangSample(k int, rate float64, rng *rand.Rand) float64 {
	if k > 64 {
		return gammaSample(float64(k), rate, rng)
	}
	prod := 1.0
	for i := 0; i < k; i++ {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		prod *= u
	}
	return -math.Log(prod) / rate
}

// gammaSample draws Gamma(shape, rate) for shape >= 1 by Marsaglia and
// Tsang's squeeze-rejection method (acceptance > 95%).
func gammaSample(shape, rate float64, rng *rand.Rand) float64 {
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 || math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v / rate
		}
	}
}

// Mean returns k/rate.
func (d Erlang) Mean() float64 { return float64(d.K) / d.Rate }

// SCV returns 1/k.
func (d Erlang) SCV() float64 { return 1 / float64(d.K) }

// CDF returns P(X ≤ x) via the integer-shape regularized gamma
// 1 - Σ_{i<k} e^{-λx} (λx)^i / i!. The Poisson terms are accumulated in
// log space so large λx cannot overflow the partial sum (the naive
// e^{-λx}·Σ(λx)^i/i! form yields 0·∞ = NaN past λx ≈ 709).
func (d Erlang) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	lx := d.Rate * x
	logTerm := -lx // log of the i=0 term
	logLx := math.Log(lx)
	sum := math.Exp(logTerm)
	for i := 1; i < d.K; i++ {
		logTerm += logLx - math.Log(float64(i))
		sum += math.Exp(logTerm)
	}
	if sum > 1 {
		sum = 1 // guard accumulated rounding at tiny x
	}
	return 1 - sum
}

// Quantile inverts the CDF numerically.
func (d Erlang) Quantile(p float64) float64 {
	checkP(p)
	return quantileByBisection(d.CDF, p, d.Mean())
}

func (d Erlang) String() string { return fmt.Sprintf("Erlang(k=%d, mean=%.4g)", d.K, d.Mean()) }

// Uniform is the continuous uniform distribution on [A, B].
type Uniform struct {
	A, B float64
}

// NewUniform returns a uniform distribution on [a, b]. The package
// models nonnegative variates (times, demands), so a must be >= 0 —
// which also keeps the mean-derived SCV well defined.
func NewUniform(a, b float64) Uniform {
	if b < a || a < 0 {
		panic(fmt.Sprintf("dist: uniform bounds [%v, %v] invalid", a, b))
	}
	return Uniform{A: a, B: b}
}

// Sample draws a uniform variate.
func (d Uniform) Sample(rng *rand.Rand) float64 { return d.A + rng.Float64()*(d.B-d.A) }

// Mean returns (a+b)/2.
func (d Uniform) Mean() float64 { return (d.A + d.B) / 2 }

// SCV returns Var/Mean²; 0 when the mean is 0.
func (d Uniform) SCV() float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	v := (d.B - d.A) * (d.B - d.A) / 12
	return v / (m * m)
}

// Quantile returns a + p(b-a).
func (d Uniform) Quantile(p float64) float64 {
	checkP(p)
	return d.A + p*(d.B-d.A)
}

func (d Uniform) String() string { return fmt.Sprintf("Uniform[%.4g, %.4g]", d.A, d.B) }

// Deterministic is the degenerate distribution concentrated at Value
// (SCV 0), the D in the paper's M/D/1 comparisons.
type Deterministic struct {
	Value float64
}

// Sample returns the constant.
func (d Deterministic) Sample(_ *rand.Rand) float64 { return d.Value }

// Mean returns the constant.
func (d Deterministic) Mean() float64 { return d.Value }

// SCV of a constant is 0.
func (d Deterministic) SCV() float64 { return 0 }

// Quantile returns the constant for every p.
func (d Deterministic) Quantile(p float64) float64 {
	checkP(p)
	return d.Value
}

func (d Deterministic) String() string { return fmt.Sprintf("Det(%.4g)", d.Value) }

// LogNormal is the lognormal distribution exp(N(Mu, Sigma²)), the
// heavy-tailed model for serverless execution times and last-mile RTTs.
type LogNormal struct {
	Mu, Sigma float64
}

// NewLogNormalMeanSCV fits a lognormal to the given mean and SCV:
// σ² = ln(1+scv), μ = ln(mean) − σ²/2. A zero SCV degenerates to a
// Deterministic.
func NewLogNormalMeanSCV(mean, scv float64) Dist {
	if mean <= 0 || scv < 0 {
		panic(fmt.Sprintf("dist: lognormal mean=%v scv=%v invalid", mean, scv))
	}
	if scv == 0 {
		return Deterministic{Value: mean}
	}
	s2 := math.Log1p(scv)
	return LogNormal{Mu: math.Log(mean) - s2/2, Sigma: math.Sqrt(s2)}
}

// Sample draws a lognormal variate.
func (d LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
}

// Mean returns exp(μ + σ²/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// SCV returns exp(σ²) − 1.
func (d LogNormal) SCV() float64 { return math.Expm1(d.Sigma * d.Sigma) }

// Quantile returns exp(μ + σ·Φ⁻¹(p)).
func (d LogNormal) Quantile(p float64) float64 {
	checkP(p)
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	return math.Exp(d.Mu + d.Sigma*normQuantile(p))
}

func (d LogNormal) String() string {
	return fmt.Sprintf("LogNormal(mean=%.4g, scv=%.3g)", d.Mean(), d.SCV())
}

// Scaled multiplies another distribution by a positive Factor, the
// paper's edge-slowdown transform (§3.1.1): mean scales, SCV is
// preserved.
type Scaled struct {
	D      Dist
	Factor float64
}

// Sample draws from D and scales.
func (d Scaled) Sample(rng *rand.Rand) float64 { return d.Factor * d.D.Sample(rng) }

// Mean returns Factor·E[D].
func (d Scaled) Mean() float64 { return d.Factor * d.D.Mean() }

// SCV is invariant under positive scaling.
func (d Scaled) SCV() float64 { return d.D.SCV() }

// Quantile scales the underlying quantile.
func (d Scaled) Quantile(p float64) float64 { return d.Factor * d.D.Quantile(p) }

func (d Scaled) String() string { return fmt.Sprintf("%.4g×%s", d.Factor, d.D) }

// Shifted adds a constant Offset to another distribution, modeling a
// fixed propagation delay plus jitter (netem's base + uniform model).
type Shifted struct {
	D      Dist
	Offset float64
}

// Sample draws from D and shifts.
func (d Shifted) Sample(rng *rand.Rand) float64 { return d.Offset + d.D.Sample(rng) }

// Mean returns Offset + E[D].
func (d Shifted) Mean() float64 { return d.Offset + d.D.Mean() }

// SCV recomputes Var/Mean² around the shifted mean. A zero shifted mean
// with positive variance has no finite SCV; +Inf is returned rather
// than a silently wrong 0.
func (d Shifted) SCV() float64 {
	m := d.Mean()
	v := Variance(d.D)
	if m == 0 {
		if v == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return v / (m * m)
}

// Quantile shifts the underlying quantile.
func (d Shifted) Quantile(p float64) float64 { return d.Offset + d.D.Quantile(p) }

func (d Shifted) String() string { return fmt.Sprintf("%.4g+%s", d.Offset, d.D) }

// quantileByBisection inverts a monotone CDF on [0, ∞). meanHint seeds
// the upper-bracket search.
func quantileByBisection(cdf func(float64) float64, p, meanHint float64) float64 {
	if p == 0 {
		return 0
	}
	if p == 1 {
		return math.Inf(1)
	}
	hi := meanHint
	if hi <= 0 {
		hi = 1
	}
	for cdf(hi) < p {
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	lo := 0.0
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// normQuantile is the standard normal inverse CDF Φ⁻¹(p) for p in (0,1),
// Acklam's rational approximation refined with one Halley step (relative
// error below 1e-9 across the domain).
func normQuantile(p float64) float64 {
	const (
		a1, a2, a3 = -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02
		a4, a5, a6 = 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00
		b1, b2, b3 = -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02
		b4, b5     = 6.680131188771972e+01, -1.328068155288572e+01
		c1, c2, c3 = -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00
		c4, c5, c6 = -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00
		d1, d2, d3 = 7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00
		d4         = 3.754408661907416e+00
		pLow       = 0.02425
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One Halley refinement against the true CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
