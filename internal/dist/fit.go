package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// scvTol is the tolerance below which an SCV is treated as exactly 0 or
// exactly 1 when selecting a family in FitSCV.
const scvTol = 1e-9

// FitSCV fits a nonnegative distribution to a target mean and squared
// coefficient of variation, the paper's §3 G/G/k variability knob. Both
// moments are matched exactly:
//
//	scv = 0      → Deterministic
//	0 < scv < 1  → Erlang-k when 1/scv is integral, otherwise a
//	               mixed Erlang(k−1, k) (phase-type, Tijms' method)
//	scv = 1      → Exponential
//	scv > 1      → two-phase hyperexponential with balanced means
func FitSCV(mean, scv float64) Dist {
	if mean <= 0 || scv < 0 {
		panic(fmt.Sprintf("dist: FitSCV mean=%v scv=%v invalid", mean, scv))
	}
	switch {
	case scv < scvTol:
		return Deterministic{Value: mean}
	case math.Abs(scv-1) < scvTol:
		return NewExponentialMean(mean)
	case scv < 1:
		k := int(math.Ceil(1 / scv))
		if inv := 1 / scv; math.Abs(inv-math.Round(inv)) < scvTol {
			return NewErlang(int(math.Round(inv)), mean)
		}
		return newMixedErlang(k, mean, scv)
	default:
		return newHyperExp2(mean, scv)
	}
}

// MixedErlang is a probabilistic mixture of Erlang(K−1) and Erlang(K)
// with common phase rate, the standard phase-type fit for SCVs in
// (1/k, 1/(k−1)) (Tijms, Stochastic Models, §A.4).
type MixedErlang struct {
	K    int     // larger branch's phase count; the other has K−1
	P    float64 // probability of the K−1 branch
	Rate float64 // per-phase rate
}

// newMixedErlang matches mean and scv with 1/k ≤ scv ≤ 1/(k−1).
func newMixedErlang(k int, mean, scv float64) MixedErlang {
	fk := float64(k)
	p := (fk*scv - math.Sqrt(fk*(1+scv)-fk*fk*scv)) / (1 + scv)
	rate := (fk - p) / mean
	return MixedErlang{K: k, P: p, Rate: rate}
}

func (d MixedErlang) phases(rng *rand.Rand) int {
	if rng.Float64() < d.P {
		return d.K - 1
	}
	return d.K
}

// Sample draws the branch, then the Erlang variate.
func (d MixedErlang) Sample(rng *rand.Rand) float64 {
	return erlangSample(d.phases(rng), d.Rate, rng)
}

// Mean returns (K − P)/rate.
func (d MixedErlang) Mean() float64 { return (float64(d.K) - d.P) / d.Rate }

// SCV derives Var/Mean² from the mixture's exact second moment.
func (d MixedErlang) SCV() float64 {
	fk := float64(d.K)
	m := d.Mean()
	// E[X²] = p·(k−1)k/λ² + (1−p)·k(k+1)/λ² for the two Erlang branches.
	m2 := (d.P*(fk-1)*fk + (1-d.P)*fk*(fk+1)) / (d.Rate * d.Rate)
	return (m2 - m*m) / (m * m)
}

// CDF mixes the two Erlang CDFs.
func (d MixedErlang) CDF(x float64) float64 {
	lo := Erlang{K: d.K - 1, Rate: d.Rate}
	hi := Erlang{K: d.K, Rate: d.Rate}
	return d.P*lo.CDF(x) + (1-d.P)*hi.CDF(x)
}

// Quantile inverts the mixture CDF numerically.
func (d MixedErlang) Quantile(p float64) float64 {
	checkP(p)
	return quantileByBisection(d.CDF, p, d.Mean())
}

func (d MixedErlang) String() string {
	return fmt.Sprintf("MixedErlang(k=%d, p=%.3f, mean=%.4g)", d.K, d.P, d.Mean())
}

// HyperExp2 is a two-phase hyperexponential: with probability P1 an
// exponential at Rate1, otherwise at Rate2. Fitted with balanced means
// it realizes any SCV > 1.
type HyperExp2 struct {
	P1           float64
	Rate1, Rate2 float64
}

// newHyperExp2 performs the balanced-means fit: p₁/μ₁ = p₂/μ₂.
func newHyperExp2(mean, scv float64) HyperExp2 {
	p1 := (1 + math.Sqrt((scv-1)/(scv+1))) / 2
	return HyperExp2{P1: p1, Rate1: 2 * p1 / mean, Rate2: 2 * (1 - p1) / mean}
}

// Sample draws the phase, then the exponential.
func (d HyperExp2) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < d.P1 {
		return rng.ExpFloat64() / d.Rate1
	}
	return rng.ExpFloat64() / d.Rate2
}

// Mean returns p₁/μ₁ + p₂/μ₂.
func (d HyperExp2) Mean() float64 { return d.P1/d.Rate1 + (1-d.P1)/d.Rate2 }

// SCV derives Var/Mean² from the exact second moment 2Σ pᵢ/μᵢ².
func (d HyperExp2) SCV() float64 {
	m := d.Mean()
	m2 := 2 * (d.P1/(d.Rate1*d.Rate1) + (1-d.P1)/(d.Rate2*d.Rate2))
	return (m2 - m*m) / (m * m)
}

// CDF mixes the two exponential CDFs.
func (d HyperExp2) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - d.P1*math.Exp(-d.Rate1*x) - (1-d.P1)*math.Exp(-d.Rate2*x)
}

// Quantile inverts the mixture CDF numerically.
func (d HyperExp2) Quantile(p float64) float64 {
	checkP(p)
	return quantileByBisection(d.CDF, p, d.Mean())
}

func (d HyperExp2) String() string {
	return fmt.Sprintf("H2(p1=%.3f, mean=%.4g, scv=%.3g)", d.P1, d.Mean(), d.SCV())
}
