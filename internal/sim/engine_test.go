package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		e.At(at, func(*Engine) { order = append(order, at) })
	}
	end := e.Run()
	if end != 5 {
		t.Errorf("final time = %v, want 5", end)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("ran %d events, want 5", len(order))
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		e.At(1.0, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var times []float64
	e.After(1, func(en *Engine) {
		times = append(times, en.Now())
		en.After(2, func(en2 *Engine) {
			times = append(times, en2.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("nested schedule times = %v, want [1 3]", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(5, func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		en.At(1, func(*Engine) {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.After(-1, func(*Engine) {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h := e.At(1, func(*Engine) { ran = true })
	h.Cancel()
	e.Run()
	if ran {
		t.Error("canceled event still ran")
	}
	// Double cancel is a no-op.
	h.Cancel()
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(en *Engine) {
			count++
			if count == 3 {
				en.Stop()
			}
		})
	}
	end := e.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop, want 3", count)
	}
	if end != 3 {
		t.Errorf("stopped at t=%v, want 3", end)
	}
	// Run resumes with the remaining events.
	e.Run()
	if count != 10 {
		t.Errorf("resume ran %d total, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(*Engine) { count++ })
	}
	end := e.RunUntil(5.5)
	if count != 5 {
		t.Errorf("ran %d events before horizon, want 5", count)
	}
	if end != 5.5 {
		t.Errorf("RunUntil returned %v, want 5.5", end)
	}
	// Remaining events still pending.
	if e.Pending() == 0 {
		t.Error("events after horizon should remain")
	}
	e.Run()
	if count != 10 {
		t.Errorf("total = %d, want 10", count)
	}
}

func TestRunUntilEmptyCalendar(t *testing.T) {
	e := NewEngine(1)
	e.At(1, func(*Engine) {})
	end := e.RunUntil(100)
	if end != 100 {
		t.Errorf("drained RunUntil should advance to horizon, got %v", end)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want 100", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var fires []float64
	tk := e.Every(2, func(en *Engine) {
		fires = append(fires, en.Now())
		if len(fires) == 4 {
			en.Stop()
		}
	})
	_ = tk
	e.RunUntil(100)
	want := []float64{2, 4, 6, 8}
	if len(fires) < 4 {
		t.Fatalf("ticker fired %d times, want >= 4", len(fires))
	}
	for i, w := range want {
		if fires[i] != w {
			t.Errorf("fire %d at %v, want %v", i, fires[i], w)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine(1)
	var count int
	var tk *Ticker
	tk = e.Every(1, func(*Engine) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(50)
	if count != 3 {
		t.Errorf("ticker fired %d times after Stop, want 3", count)
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.After(float64(i), func(*Engine) {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Errorf("Processed = %d, want 7", e.Processed())
	}
}

func TestNewStreamIndependence(t *testing.T) {
	e := NewEngine(42)
	s1, s2 := e.NewStream(), e.NewStream()
	same := true
	for i := 0; i < 10; i++ {
		if s1.Float64() != s2.Float64() {
			same = false
		}
	}
	if same {
		t.Error("derived streams should differ")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(7)
		rng := e.RNG()
		var times []float64
		var schedule func(en *Engine)
		n := 0
		schedule = func(en *Engine) {
			times = append(times, en.Now())
			n++
			if n < 100 {
				en.After(rng.ExpFloat64(), schedule)
			}
		}
		e.After(0, schedule)
		e.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestTimeMonotone: with random scheduling patterns, observed event times
// never decrease.
func TestTimeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		e := NewEngine(seed)
		rng := rand.New(rand.NewSource(seed))
		last := -1.0
		ok := true
		for i := 0; i < 50; i++ {
			e.At(rng.Float64()*100, func(en *Engine) {
				if en.Now() < last {
					ok = false
				}
				last = en.Now()
				if rng.Float64() < 0.5 {
					en.After(rng.Float64(), func(en2 *Engine) {
						if en2.Now() < last {
							ok = false
						}
						last = en2.Now()
					})
				}
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
