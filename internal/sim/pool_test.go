package sim

import (
	"testing"
)

// TestPayloadEvents: AtPayload/AfterPayload deliver the payload and honor
// time ordering exactly like plain events.
func TestPayloadEvents(t *testing.T) {
	e := NewEngine(1)
	var got []int
	fn := PayloadEvent(func(e *Engine, p any) { got = append(got, p.(int)) })
	e.AtPayload(3, fn, 30)
	e.AtPayload(1, fn, 10)
	e.AfterPayload(2, fn, 20)
	e.Run()
	want := []int{10, 20, 30}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("payload order = %v, want %v", got, want)
		}
	}
}

// TestAtFrontWinsTies: front events run before normal events at the
// same instant regardless of scheduling order, and keep FIFO order
// among themselves.
func TestAtFrontWinsTies(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(1, func(*Engine) { order = append(order, "normal-1") })
	e.AtFront(1, func(*Engine) { order = append(order, "front-1") })
	e.AtPayloadFront(1, func(_ *Engine, p any) { order = append(order, p.(string)) }, "front-2")
	e.At(1, func(*Engine) { order = append(order, "normal-2") })
	e.At(0.5, func(en *Engine) {
		// A front event scheduled mid-run still beats queued normal
		// events at the same time.
		en.AtFront(1, func(*Engine) { order = append(order, "front-3") })
	})
	e.Run()
	want := []string{"front-1", "front-2", "front-3", "normal-1", "normal-2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestEventNodeRecycling: executed events return to the free list, so a
// long chain of sequential events keeps only O(1) nodes alive.
func TestEventNodeRecycling(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var next Event
	next = func(en *Engine) {
		count++
		if count < 10000 {
			en.After(0.001, next)
		}
	}
	e.After(0.001, next)
	e.Run()
	if count != 10000 {
		t.Fatalf("ran %d events", count)
	}
	if len(e.free) > 4 {
		t.Errorf("free list holds %d nodes after a sequential chain, want <= 4", len(e.free))
	}
}

// TestStaleHandleCancelIsNoOp: a Handle kept past its event's execution
// must not cancel the recycled node's next occupant.
func TestStaleHandleCancelIsNoOp(t *testing.T) {
	e := NewEngine(1)
	ran1, ran2 := false, false
	h := e.At(1, func(*Engine) { ran1 = true })
	e.Run()
	if !ran1 {
		t.Fatal("first event did not run")
	}
	// Schedule a second event; with pooling it reuses the same node.
	e.At(2, func(*Engine) { ran2 = true })
	h.Cancel() // stale: generation mismatch, must be a no-op
	e.Run()
	if !ran2 {
		t.Error("stale Handle.Cancel killed a recycled event")
	}
}

// TestCanceledCompaction: when canceled entries exceed half the calendar,
// the heap is compacted so dead events never dominate Pending().
func TestCanceledCompaction(t *testing.T) {
	e := NewEngine(1)
	handles := make([]Handle, 0, 1000)
	for i := 0; i < 1000; i++ {
		handles = append(handles, e.At(float64(i+1), func(*Engine) {}))
	}
	// Cancel 999 of 1000: compaction must kick in along the way.
	for _, h := range handles[1:] {
		h.Cancel()
	}
	if e.Pending() > 500 {
		t.Errorf("Pending() = %d after mass cancel, want <= 500", e.Pending())
	}
	if e.Canceled()*2 > e.Pending() {
		t.Errorf("canceled %d of %d pending, compaction should keep it at <= half",
			e.Canceled(), e.Pending())
	}
	ran := 0
	e.At(0.5, func(*Engine) { ran++ })
	end := e.Run()
	if ran != 1 {
		t.Errorf("live event after compaction ran %d times, want 1", ran)
	}
	if end != 1 {
		t.Errorf("final time = %v, want 1 (the surviving scheduled event)", end)
	}
}

// TestCancelDuringRunCompacts: cancels issued from inside event callbacks
// also trigger compaction.
func TestCancelDuringRunCompacts(t *testing.T) {
	e := NewEngine(1)
	var handles []Handle
	for i := 0; i < 400; i++ {
		handles = append(handles, e.At(100+float64(i), func(*Engine) {
			t.Error("canceled event ran")
		}))
	}
	e.At(1, func(en *Engine) {
		for _, h := range handles {
			h.Cancel()
		}
		if en.Pending() != 0 {
			t.Errorf("Pending() = %d after canceling everything, want 0", en.Pending())
		}
	})
	e.Run()
}

// TestDoubleCancelCountsOnce: canceling the same handle twice must not
// corrupt the canceled-entry accounting.
func TestDoubleCancelCountsOnce(t *testing.T) {
	e := NewEngine(1)
	h := e.At(1, func(*Engine) {})
	e.At(2, func(*Engine) {})
	e.At(3, func(*Engine) {})
	h.Cancel()
	h.Cancel()
	if e.Canceled() != 1 {
		t.Errorf("Canceled() = %d after double cancel, want 1", e.Canceled())
	}
	e.Run()
	if e.Canceled() != 0 {
		t.Errorf("Canceled() = %d after run, want 0", e.Canceled())
	}
}

// TestPayloadNoAlloc: scheduling a stored PayloadEvent with a pointer
// payload through a warmed engine allocates nothing per event.
func TestPayloadNoAlloc(t *testing.T) {
	e := NewEngine(1)
	type job struct{ n int }
	j := &job{}
	var fire PayloadEvent
	count := 0
	fire = func(en *Engine, p any) {
		count++
		if count < 100 {
			en.AfterPayload(0.001, fire, p)
		}
	}
	// Warm the node pool.
	e.AfterPayload(0.001, fire, j)
	e.Run()

	count = 0
	allocs := testing.AllocsPerRun(10, func() {
		count = 0
		e.AfterPayload(0.001, fire, j)
		e.Run()
	})
	if allocs > 0.5 {
		t.Errorf("steady-state payload scheduling allocates %.1f/run, want ~0", allocs)
	}
}
