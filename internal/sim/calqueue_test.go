package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var backends = map[string]Backend{
	"calendar-queue": CalendarQueue,
	"binary-heap":    BinaryHeap,
}

// popTrace records one executed event: the id assigned at schedule time
// and the clock when it ran.
type popTrace struct {
	id int
	at float64
}

// runRandomSchedule executes a deterministic pseudo-random scheduling
// program on the given backend and returns the execution trace. All
// randomness is drawn inside callbacks in execution order, so two
// backends produce identical traces exactly when they pop events in the
// identical order.
func runRandomSchedule(b Backend, seed int64) []popTrace {
	e := NewEngineBackend(seed, b)
	rng := rand.New(rand.NewSource(seed))
	var trace []popTrace
	var handles []Handle
	nextID := 0

	var body func(id int) Event
	schedule := func(at float64, front bool) {
		id := nextID
		nextID++
		if front {
			handles = append(handles, e.AtFront(at, body(id)))
		} else {
			handles = append(handles, e.At(at, body(id)))
		}
	}
	body = func(id int) Event {
		return func(en *Engine) {
			trace = append(trace, popTrace{id: id, at: en.Now()})
			for k := rng.Intn(3); k > 0; k-- {
				schedule(en.Now()+rng.Float64()*10, rng.Intn(4) == 0)
			}
			if len(handles) > 0 && rng.Intn(5) == 0 {
				handles[rng.Intn(len(handles))].Cancel()
			}
		}
	}
	for i := 0; i < 40; i++ {
		schedule(rng.Float64()*100, i%5 == 0)
	}
	e.Run()
	return trace
}

// TestBackendsPopIdentically: the calendar queue and the binary heap
// execute recorded random schedules — nested scheduling, front events,
// cancels — in exactly the same order.
func TestBackendsPopIdentically(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		want := runRandomSchedule(BinaryHeap, seed)
		got := runRandomSchedule(CalendarQueue, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d events on calendar queue, %d on heap", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: pop %d diverges: calendar queue %+v, heap %+v",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestSameTimeFIFOAcrossResizes: a same-instant event block keeps its
// schedule order even though surrounding load forces the bucket ring
// through multiple grows and shrinks (which rebuild every bucket).
func TestSameTimeFIFOAcrossResizes(t *testing.T) {
	for name, b := range backends {
		e := NewEngineBackend(1, b)
		var tied []int
		// Spread load first so the ring grows well past its minimum.
		for i := 0; i < 300; i++ {
			e.At(float64(i)*0.1, func(*Engine) {})
		}
		// The tie block under test, interleaved front and non-front.
		for i := 0; i < 64; i++ {
			i := i
			if i%4 == 0 {
				e.AtFront(50, func(*Engine) { tied = append(tied, i) })
			} else {
				e.At(50, func(*Engine) { tied = append(tied, i) })
			}
		}
		// Draining the early spread shrinks the ring back down before
		// t=50, so the tie block survives at least one rebuild.
		e.Run()
		if len(tied) != 64 {
			t.Fatalf("%s: ran %d tied events, want 64", name, len(tied))
		}
		// Front events first (in schedule order), then the rest FIFO.
		var want []int
		for i := 0; i < 64; i += 4 {
			want = append(want, i)
		}
		for i := 0; i < 64; i++ {
			if i%4 != 0 {
				want = append(want, i)
			}
		}
		for i := range want {
			if tied[i] != want[i] {
				t.Fatalf("%s: tie order[%d] = %d, want %d (full: %v)", name, i, tied[i], want[i], tied)
			}
		}
	}
}

// TestCancelCompactionInvariant: after every cancel, canceled entries
// never exceed half the calendar (the compaction contract), canceled
// events never run, and survivors run in order.
func TestCancelCompactionInvariant(t *testing.T) {
	for name, b := range backends {
		e := NewEngineBackend(1, b)
		rng := rand.New(rand.NewSource(7))
		ran := make(map[int]bool)
		var handles []Handle
		canceled := make(map[int]bool)
		for i := 0; i < 500; i++ {
			i := i
			handles = append(handles, e.At(rng.Float64()*100, func(*Engine) { ran[i] = true }))
		}
		for _, i := range rng.Perm(500)[:300] {
			handles[i].Cancel()
			canceled[i] = true
			if e.Canceled() > e.Pending()/2 {
				t.Fatalf("%s: Canceled()=%d > Pending()/2=%d after cancel",
					name, e.Canceled(), e.Pending()/2)
			}
		}
		e.Run()
		for i := 0; i < 500; i++ {
			if canceled[i] && ran[i] {
				t.Fatalf("%s: canceled event %d ran", name, i)
			}
			if !canceled[i] && !ran[i] {
				t.Fatalf("%s: live event %d never ran", name, i)
			}
		}
	}
}

// TestCalendarQueueMonotoneUnderChurn: random schedule/pop interleaving
// (including far-ahead tickers that force year-jump scans) never pops
// out of order.
func TestCalendarQueueMonotoneUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		e := NewEngine(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		last := -1.0
		ok := true
		check := func(en *Engine) {
			if en.Now() < last {
				ok = false
			}
			last = en.Now()
		}
		for i := 0; i < 30; i++ {
			e.At(rng.Float64()*5, func(en *Engine) {
				check(en)
				switch rng.Intn(3) {
				case 0: // near event
					en.After(rng.Float64(), check)
				case 1: // far event: lands years ahead of the scan floor
					en.After(1000+rng.Float64()*1000, check)
				case 2: // same-instant event
					en.At(en.Now(), check)
				}
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRunUntilAcrossBackends: horizon handling (peek without pop, then
// later resume) is identical between backends even when the peeked
// minimum is far beyond the horizon.
func TestRunUntilAcrossBackends(t *testing.T) {
	for name, b := range backends {
		e := NewEngineBackend(1, b)
		var order []float64
		rec := func(en *Engine) { order = append(order, en.Now()) }
		e.At(1, rec)
		e.At(5000, rec) // far beyond the first horizon
		e.RunUntil(10)
		// Scheduling between runs must not be lost behind the scan floor.
		e.At(20, rec)
		e.At(15, rec)
		e.Run()
		want := []float64{1, 15, 20, 5000}
		if len(order) != len(want) {
			t.Fatalf("%s: ran %d events, want %d (%v)", name, len(order), len(want), order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("%s: order = %v, want %v", name, order, want)
			}
		}
	}
}

// TestCalendarQueueSmallPopulationAllocs pins the resize-thrash fix:
// a small engine's live event population (a handful of pending
// arrivals, completions, and a pump) oscillates by a few events per
// simulated request, and with a 4-bucket floor and a half-count shrink
// threshold that oscillation crossed a resize boundary on nearly every
// push/pop pair — one allocating resize per simulated request (the
// BENCH_PR7 shards-2 allocation cliff: ~977k allocs/op at two 4-site
// engines vs ~2.6k at four 2-site ones). Small populations must never
// resize: total allocations for tens of thousands of push/pop cycles
// stay in the dozens, not the tens of thousands.
func TestCalendarQueueSmallPopulationAllocs(t *testing.T) {
	const cycles = 20000
	// Pre-built event nodes, recycled through a free stack, so the
	// workload itself allocates nothing.
	free := make([]*scheduledEvent, 16)
	for i := range free {
		free[i] = &scheduledEvent{}
	}
	allocs := testing.AllocsPerRun(2, func() {
		q := newCalendarQueue()
		nfree := len(free)
		var seq uint64
		now := 0.0
		push := func() {
			nfree--
			ev := free[nfree]
			now += 0.05
			ev.t = now
			ev.seq = seq
			ev.canceled = false
			seq++
			q.push(ev)
		}
		pop := func() {
			free[nfree] = q.pop()
			nfree++
		}
		// Oscillate the live population between 3 and 9 — the band a
		// 4-site engine's calendar lives in.
		for i := 0; i < 9; i++ {
			push()
		}
		for c := 0; c < cycles; c++ {
			for q.len() > 3 {
				pop()
			}
			for q.len() < 9 {
				push()
			}
		}
		for q.len() > 0 {
			pop()
		}
	})
	// One bucket-ring allocation plus one-time bucket-slice growth
	// across the ring: a few hundred at most. Resize thrash puts this
	// at ~2 per cycle (~40000).
	if allocs > 500 {
		t.Fatalf("small-population churn allocated %.0f times over %d cycles; calendar is resize-thrashing", allocs, cycles)
	}
}
