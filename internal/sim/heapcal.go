package sim

import "container/heap"

// heapCalendar is the original binary-heap calendar: O(log n) insert
// and pop over the eventBefore order. It remains selectable (see
// BinaryHeap) as the reference structure the calendar queue is proven
// bit-identical against.
type heapCalendar struct {
	events eventHeap
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return eventBefore(h[i], h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*scheduledEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (c *heapCalendar) push(ev *scheduledEvent) { heap.Push(&c.events, ev) }

func (c *heapCalendar) pop() *scheduledEvent {
	return heap.Pop(&c.events).(*scheduledEvent)
}

func (c *heapCalendar) peek() *scheduledEvent {
	if len(c.events) == 0 {
		return nil
	}
	return c.events[0]
}

func (c *heapCalendar) len() int { return len(c.events) }

func (c *heapCalendar) removeCanceled(release func(*scheduledEvent)) {
	live := c.events[:0]
	for _, ev := range c.events {
		if ev.canceled {
			release(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(c.events); i++ {
		c.events[i] = nil
	}
	c.events = live
	heap.Init(&c.events)
}
