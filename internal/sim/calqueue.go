package sim

import (
	"math"
	"sort"
)

const (
	// cqMinBuckets is the smallest ring (power of two for mask
	// indexing). It must sit well above typical steady-state event
	// populations: small engines hold a handful of live events (one
	// pending arrival per source, one completion per busy server, a
	// pump), and a floor of 4 put that population astride both resize
	// thresholds — grow at n > 2·len, shrink at n < len/4 — so nearly
	// every push/pop pair triggered an allocating resize (~1 alloc per
	// simulated request; the BENCH_PR7 shards-2 cliff: two 4-site
	// engines thrashing at ~977k allocs/op where shards-4's 2-site
	// engines, under every threshold, sat at ~2.6k). At 64 buckets a
	// population must exceed 128 before the ring ever resizes. The cost
	// is 64 slice headers (~1.5 KB) per engine, paid once.
	cqMinBuckets = 64
	cqMaxBuckets = 1 << 22 // growth cap: beyond this, buckets just get denser
	cqMinWidth   = 1e-9    // floor keeps t/width finite and monotone
)

// calendarQueue is the default calendar: a ring of time buckets in the
// style of Brown's calendar queue. Each bucket covers `width` seconds
// and holds its events sorted by eventBefore; bucket index is the
// event's virtual bucket (⌊t/width⌋) masked into the ring, so one ring
// lap spans width·len(buckets) seconds (a "year") and far-future events
// share buckets with near ones. Insert appends at the bucket tail
// (arrivals are mostly time-increasing, and same-instant FIFO events
// always append), pop scans forward from the last popped event's
// virtual bucket, and the ring doubles/halves around the live event
// count — O(1) amortized insert and pop against the heap's O(log n).
//
// The pop scan accepts a bucket head only when its virtual bucket lies
// at or before the scan position. Comparing integer virtual indices —
// never accumulating bucket-top times — keeps the acceptance test exact
// under floating point: an accepted head is provably the eventBefore
// minimum. A full lap with no acceptance means every pending event is
// at least a year ahead; a direct scan over the bucket heads then finds
// the minimum, and the pop itself advances the scan floor to it.
type calendarQueue struct {
	buckets [][]*scheduledEvent
	mask    int64   // len(buckets)-1
	width   float64 // seconds per bucket
	n       int     // entries, live + canceled
	vb      int64   // scan floor: virtual bucket of the last popped event
	curT    float64 // last popped event time; recomputes vb on resize

	// peek caches the located minimum's bucket so the pop following a
	// horizon check re-locates nothing.
	minCached bool
	minBucket int64
}

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([][]*scheduledEvent, cqMinBuckets),
		mask:    cqMinBuckets - 1,
		width:   1,
	}
}

func (q *calendarQueue) len() int { return q.n }

// vbucket maps a time to its virtual bucket index. Times so large that
// t/width overflows int64 are clamped into one far "year"; order among
// them still holds because buckets sort by eventBefore.
func (q *calendarQueue) vbucket(t float64) int64 {
	v := t / q.width
	if v >= math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(v)
}

// insertSorted places ev into bucket slice b keeping eventBefore order.
// Scanning from the tail makes the common cases — later times, and
// same-instant FIFO sequences — a plain append.
func insertSorted(b []*scheduledEvent, ev *scheduledEvent) []*scheduledEvent {
	b = append(b, ev)
	i := len(b) - 1
	for i > 0 && eventBefore(ev, b[i-1]) {
		b[i] = b[i-1]
		i--
	}
	b[i] = ev
	return b
}

func (q *calendarQueue) push(ev *scheduledEvent) {
	bi := q.vbucket(ev.t) & q.mask
	q.buckets[bi] = insertSorted(q.buckets[bi], ev)
	q.n++
	q.minCached = false
	if q.n > 2*len(q.buckets) && len(q.buckets) < cqMaxBuckets {
		q.resize(2 * len(q.buckets))
	}
}

// findMin locates the bucket holding the eventBefore minimum. It never
// mutates the scan floor: only pop advances vb (from the popped event's
// own time), so a peek that looks far ahead cannot strand later pushes
// behind the floor.
func (q *calendarQueue) findMin() int64 {
	nb := int64(len(q.buckets))
	for i := int64(0); i < nb; i++ {
		v := q.vb + i
		b := q.buckets[v&q.mask]
		if len(b) > 0 && q.vbucket(b[0].t) <= v {
			return v & q.mask
		}
	}
	// Every pending event is beyond the current year: pick the earliest
	// bucket head directly (each head is its bucket's minimum).
	var best *scheduledEvent
	var bi int64
	for i, b := range q.buckets {
		if len(b) > 0 && (best == nil || eventBefore(b[0], best)) {
			best = b[0]
			bi = int64(i)
		}
	}
	return bi
}

func (q *calendarQueue) peek() *scheduledEvent {
	if q.n == 0 {
		return nil
	}
	if !q.minCached {
		q.minBucket = q.findMin()
		q.minCached = true
	}
	return q.buckets[q.minBucket][0]
}

func (q *calendarQueue) pop() *scheduledEvent {
	if q.n == 0 {
		panic("sim: pop from an empty calendar")
	}
	var bi int64
	if q.minCached {
		bi = q.minBucket
		q.minCached = false
	} else {
		bi = q.findMin()
	}
	b := q.buckets[bi]
	ev := b[0]
	copy(b, b[1:])
	b[len(b)-1] = nil
	q.buckets[bi] = b[:len(b)-1]
	q.n--
	q.curT = ev.t
	q.vb = q.vbucket(ev.t)
	// Shrink at a quarter, not half, of the bucket count: growth
	// doubles at n > 2·len, so a half-threshold shrink sits one pop
	// away from the population that just grew the ring — an oscillating
	// population would resize on nearly every push/pop pair. The
	// quarter threshold requires a 4x swing between resizes.
	if q.n < len(q.buckets)/4 && len(q.buckets) > cqMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

func (q *calendarQueue) removeCanceled(release func(*scheduledEvent)) {
	for bi, b := range q.buckets {
		live := b[:0]
		for _, ev := range b {
			if ev.canceled {
				release(ev)
				q.n--
			} else {
				live = append(live, ev)
			}
		}
		for i := len(live); i < len(b); i++ {
			b[i] = nil
		}
		q.buckets[bi] = live
	}
	q.minCached = false
	nb := len(q.buckets)
	for nb > cqMinBuckets && q.n < nb/4 {
		nb /= 2
	}
	if nb != len(q.buckets) {
		q.resize(nb)
	}
}

// resize rebuilds the ring with nb buckets and a width matched to the
// live events' spacing: roughly twice the mean gap, so a bucket holds a
// couple of events on average. Rebuilding sorts all entries once by
// eventBefore (a strict total order — seq is unique — so the unstable
// sort is still deterministic) and refills buckets in that order,
// keeping every bucket sorted with plain appends.
func (q *calendarQueue) resize(nb int) {
	all := make([]*scheduledEvent, 0, q.n)
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, b := range q.buckets {
		for _, ev := range b {
			all = append(all, ev)
			if ev.t < minT {
				minT = ev.t
			}
			if ev.t > maxT {
				maxT = ev.t
			}
		}
	}
	if len(all) > 1 && maxT > minT {
		q.width = (maxT - minT) / float64(len(all)) * 2
		if q.width < cqMinWidth {
			q.width = cqMinWidth
		}
	}
	sort.Slice(all, func(i, j int) bool { return eventBefore(all[i], all[j]) })
	q.buckets = make([][]*scheduledEvent, nb)
	q.mask = int64(nb) - 1
	q.vb = q.vbucket(q.curT)
	q.minCached = false
	for _, ev := range all {
		bi := q.vbucket(ev.t) & q.mask
		q.buckets[bi] = append(q.buckets[bi], ev)
	}
}
