// Package sim implements the discrete-event simulation engine that
// substitutes for the paper's EC2 testbed. It provides a simulation clock,
// an event calendar (binary heap keyed on time with FIFO tie-breaking),
// and seeded random-number streams so every experiment is reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a callback scheduled to run at a simulated time.
type Event func(e *Engine)

type scheduledEvent struct {
	t        float64
	seq      uint64 // FIFO tie-break for simultaneous events
	fn       Event
	canceled bool
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*scheduledEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now       float64
	events    eventHeap
	seq       uint64
	rng       *rand.Rand
	stopped   bool
	horizon   float64 // 0 = no horizon
	processed uint64
}

// NewEngine returns an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's primary random stream.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// NewStream returns an independent random stream derived from the
// engine's seed, for components that should not perturb each other's
// random sequences.
func (e *Engine) NewStream() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Handle identifies a scheduled event so it can be canceled.
type Handle struct{ ev *scheduledEvent }

// Cancel prevents the event from running. Canceling an already-run or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.canceled = true
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics, since that indicates a logic error in the model.
func (e *Engine) At(t float64, fn Event) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &scheduledEvent{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev: ev}
}

// After schedules fn to run delay seconds from now.
func (e *Engine) After(delay float64, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events in the calendar, including
// canceled events not yet popped.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Run executes events until the calendar empties, Stop is called, or the
// time horizon (if set with RunUntil) is reached. It returns the final
// simulated time.
func (e *Engine) Run() float64 {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.horizon > 0 && e.events[0].t > e.horizon {
			// Leave post-horizon events in the calendar for later runs.
			e.now = e.horizon
			break
		}
		ev := heap.Pop(&e.events).(*scheduledEvent)
		if ev.canceled {
			continue
		}
		if ev.t < e.now {
			panic(fmt.Sprintf("sim: time moved backwards %v -> %v", e.now, ev.t))
		}
		e.now = ev.t
		e.processed++
		ev.fn(e)
	}
	return e.now
}

// RunUntil executes events up to and including time horizon, then stops.
// Events scheduled after the horizon remain in the calendar.
func (e *Engine) RunUntil(horizon float64) float64 {
	if horizon < e.now {
		panic(fmt.Sprintf("sim: horizon %v before now %v", horizon, e.now))
	}
	e.horizon = horizon
	t := e.Run()
	e.horizon = 0
	if t < horizon && len(e.events) == 0 {
		// Calendar drained before the horizon: advance the clock so
		// repeated RunUntil calls observe monotonic time.
		e.now = horizon
		t = horizon
	}
	return t
}

// Every schedules fn to run now+period, then every period thereafter,
// until the returned Ticker is stopped or the engine halts.
func (e *Engine) Every(period float64, fn Event) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

// Ticker reschedules a recurring event.
type Ticker struct {
	engine  *Engine
	period  float64
	fn      Event
	handle  Handle
	stopped bool
}

func (t *Ticker) schedule() {
	t.handle = t.engine.After(t.period, func(e *Engine) {
		if t.stopped {
			return
		}
		t.fn(e)
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}
