// Package sim implements the discrete-event simulation engine that
// substitutes for the paper's EC2 testbed. It provides a simulation clock,
// an event calendar keyed on time with FIFO tie-breaking, and seeded
// random-number streams so every experiment is reproducible.
//
// The calendar recycles its event nodes through a free list and supports
// payload-carrying events (AtPayload/AfterPayload), so steady-state
// models — one completion event per in-service request, one pending
// arrival per source — schedule without allocating. Canceled events are
// compacted out of the calendar as soon as they dominate it, keeping the
// calendar proportional to the number of live events.
//
// Two calendar structures implement the same strict event order
// (time, then front flag, then schedule sequence): the default calendar
// queue (ring of adaptive time buckets, O(1) amortized insert/pop) and
// the original binary heap (O(log n)), selectable with NewEngineBackend.
// Because the order is total, the two backends pop events in exactly the
// same sequence, so every simulation result is bit-identical between
// them — the equivalence suite asserts this.
package sim

import (
	"fmt"
	"math/rand"
)

// Event is a callback scheduled to run at a simulated time.
type Event func(e *Engine)

// PayloadEvent is a callback scheduled with an attached payload. A model
// that stores one PayloadEvent value and schedules it repeatedly with
// different payloads avoids the per-request closure allocations of the
// plain Event form.
type PayloadEvent func(e *Engine, payload any)

type scheduledEvent struct {
	t        float64
	seq      uint64 // FIFO tie-break for simultaneous events
	gen      uint64 // incremented on recycle; guards stale Handles
	front    bool   // sorts before non-front events at the same time
	fn       Event
	pfn      PayloadEvent
	payload  any
	canceled bool
}

// eventBefore is the calendar's strict total order: time ascending,
// front events before non-front at the same instant, then FIFO by
// schedule sequence. Every calendar backend implements exactly this
// order, which is what makes them interchangeable bit-for-bit.
func eventBefore(a, b *scheduledEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.front != b.front {
		return a.front
	}
	return a.seq < b.seq
}

// calendar is the event-calendar structure behind an Engine: a priority
// queue over scheduledEvents ordered by eventBefore.
type calendar interface {
	push(ev *scheduledEvent)
	// pop removes and returns the minimum event. Panics when empty.
	pop() *scheduledEvent
	// peek returns the minimum event without removing it, or nil.
	peek() *scheduledEvent
	len() int
	// removeCanceled drops every canceled entry, passing each to
	// release, and preserves the relative order of the survivors.
	removeCanceled(release func(*scheduledEvent))
}

// Backend selects an Engine's calendar structure.
type Backend int

const (
	// CalendarQueue is the default: a ring of adaptive time buckets
	// with O(1) amortized insert and pop.
	CalendarQueue Backend = iota
	// BinaryHeap is the original container/heap calendar, kept
	// selectable so the equivalence suite can prove the two backends
	// pop identically.
	BinaryHeap
)

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now       float64
	cal       calendar
	free      []*scheduledEvent // recycled event nodes
	canceled  int               // canceled entries still in the calendar
	seq       uint64
	rng       *rand.Rand
	stopped   bool
	horizon   float64 // 0 = no horizon
	processed uint64
}

// NewEngine returns an engine whose random streams derive from seed,
// running on the default calendar-queue backend.
func NewEngine(seed int64) *Engine {
	return NewEngineBackend(seed, CalendarQueue)
}

// NewEngineBackend returns an engine on an explicit calendar backend.
// Both backends implement the same strict event order, so results are
// bit-identical; BinaryHeap exists for the equivalence suite and as a
// fallback reference.
func NewEngineBackend(seed int64, b Backend) *Engine {
	e := &Engine{rng: rand.New(rand.NewSource(seed))}
	if b == BinaryHeap {
		e.cal = &heapCalendar{}
	} else {
		e.cal = newCalendarQueue()
	}
	return e
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's primary random stream.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// NewStream returns an independent random stream derived from the
// engine's seed, for components that should not perturb each other's
// random sequences.
func (e *Engine) NewStream() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Handle identifies a scheduled event so it can be canceled.
type Handle struct {
	engine *Engine
	ev     *scheduledEvent
	gen    uint64
}

// Cancel prevents the event from running. Canceling an already-run or
// already-canceled event is a no-op: event nodes are recycled, so the
// handle carries a generation stamp and only cancels the scheduling it
// was issued for.
func (h Handle) Cancel() {
	if h.ev == nil || h.ev.gen != h.gen || h.ev.canceled {
		return
	}
	h.ev.canceled = true
	e := h.engine
	e.canceled++
	// Compact once dead entries dominate the calendar, so models that
	// cancel aggressively (e.g. processor sharing rescheduling its next
	// departure on every arrival) keep the calendar proportional to the
	// number of live events.
	if e.canceled*2 > e.cal.len() {
		e.compact()
	}
}

// compact removes canceled entries from the calendar and recycles them.
func (e *Engine) compact() {
	e.cal.removeCanceled(e.release)
	e.canceled = 0
}

// acquire returns a recycled or fresh event node scheduled at time t.
func (e *Engine) acquire(t float64) *scheduledEvent {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &scheduledEvent{}
	}
	ev.t = t
	ev.seq = e.seq
	e.seq++
	return ev
}

// release recycles an executed or compacted event node. Bumping the
// generation invalidates any outstanding Handle to it.
func (e *Engine) release(ev *scheduledEvent) {
	ev.gen++
	ev.front = false
	ev.fn = nil
	ev.pfn = nil
	ev.payload = nil
	ev.canceled = false
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics, since that indicates a logic error in the model.
func (e *Engine) At(t float64, fn Event) Handle {
	ev := e.acquire(t)
	ev.fn = fn
	e.cal.push(ev)
	return Handle{engine: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run delay seconds from now.
func (e *Engine) After(delay float64, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// AtPayload schedules fn to run at absolute time t with the given
// payload. Unlike At, the callback value can be created once and reused
// across schedulings, so a steady-state model allocates nothing here.
func (e *Engine) AtPayload(t float64, fn PayloadEvent, payload any) Handle {
	ev := e.acquire(t)
	ev.pfn = fn
	ev.payload = payload
	e.cal.push(ev)
	return Handle{engine: e, ev: ev, gen: ev.gen}
}

// AfterPayload schedules fn to run delay seconds from now with the given
// payload.
func (e *Engine) AfterPayload(delay float64, fn PayloadEvent, payload any) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.AtPayload(e.now+delay, fn, payload)
}

// AtFront schedules fn at time t ahead of every non-front event already
// or later scheduled at the same instant (front events keep FIFO order
// among themselves). A source that injects arrivals lazily uses this to
// reproduce the tie-breaking of a calendar where all arrivals were
// scheduled before the run began.
func (e *Engine) AtFront(t float64, fn Event) Handle {
	ev := e.acquire(t)
	ev.front = true
	ev.fn = fn
	e.cal.push(ev)
	return Handle{engine: e, ev: ev, gen: ev.gen}
}

// AtPayloadFront is AtFront with an attached payload.
func (e *Engine) AtPayloadFront(t float64, fn PayloadEvent, payload any) Handle {
	ev := e.acquire(t)
	ev.front = true
	ev.pfn = fn
	ev.payload = payload
	e.cal.push(ev)
	return Handle{engine: e, ev: ev, gen: ev.gen}
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events in the calendar, including
// canceled events not yet popped or compacted.
func (e *Engine) Pending() int { return e.cal.len() }

// Canceled returns the number of canceled events still occupying the
// calendar. Compaction keeps this at no more than half of Pending().
func (e *Engine) Canceled() int { return e.canceled }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Run executes events until the calendar empties, Stop is called, or the
// time horizon (if set with RunUntil) is reached. It returns the final
// simulated time.
func (e *Engine) Run() float64 {
	e.stopped = false
	for e.cal.len() > 0 && !e.stopped {
		if e.horizon > 0 && e.cal.peek().t > e.horizon {
			// Leave post-horizon events in the calendar for later runs.
			e.now = e.horizon
			break
		}
		ev := e.cal.pop()
		if ev.canceled {
			e.canceled--
			e.release(ev)
			continue
		}
		if ev.t < e.now {
			panic(fmt.Sprintf("sim: time moved backwards %v -> %v", e.now, ev.t))
		}
		e.now = ev.t
		e.processed++
		// Copy the callback and recycle the node before invoking it, so
		// the callback's own scheduling can reuse the node immediately.
		fn, pfn, payload := ev.fn, ev.pfn, ev.payload
		e.release(ev)
		if pfn != nil {
			pfn(e, payload)
		} else {
			fn(e)
		}
	}
	return e.now
}

// RunUntil executes events up to and including time horizon, then stops.
// Events scheduled after the horizon remain in the calendar.
func (e *Engine) RunUntil(horizon float64) float64 {
	if horizon < e.now {
		panic(fmt.Sprintf("sim: horizon %v before now %v", horizon, e.now))
	}
	e.horizon = horizon
	t := e.Run()
	e.horizon = 0
	if t < horizon && e.cal.len() == 0 {
		// Calendar drained before the horizon: advance the clock so
		// repeated RunUntil calls observe monotonic time.
		e.now = horizon
		t = horizon
	}
	return t
}

// Every schedules fn to run now+period, then every period thereafter,
// until the returned Ticker is stopped or the engine halts.
func (e *Engine) Every(period float64, fn Event) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	// One wrapper closure for the ticker's lifetime; rescheduling reuses it.
	t.fire = func(e *Engine) {
		if t.stopped {
			return
		}
		t.fn(e)
		if !t.stopped {
			t.schedule()
		}
	}
	t.schedule()
	return t
}

// Ticker reschedules a recurring event.
type Ticker struct {
	engine  *Engine
	period  float64
	fn      Event
	fire    Event
	handle  Handle
	stopped bool
}

func (t *Ticker) schedule() {
	t.handle = t.engine.After(t.period, t.fire)
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}
