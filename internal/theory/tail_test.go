package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMMcWaitCCDF(t *testing.T) {
	// At t=0 the CCDF equals the wait probability (Erlang C).
	c, rho, mu := 5, 0.8, 13.0
	if got := MMcWaitCCDF(c, rho, mu, 0); !close(got, ErlangC(c, 4), 1e-12) {
		t.Errorf("CCDF(0) = %v, want ErlangC", got)
	}
	// Decreasing in t.
	prev := 2.0
	for _, tt := range []float64{0, 0.01, 0.05, 0.2, 1} {
		v := MMcWaitCCDF(c, rho, mu, tt)
		if v > prev {
			t.Fatalf("CCDF not decreasing at t=%v", tt)
		}
		prev = v
	}
	if MMcWaitCCDF(c, 1.0, mu, 5) != 1 {
		t.Error("saturated CCDF should be 1")
	}
}

// TestMMcWaitCCDFIntegratesToMean: ∫₀^∞ P(W>t) dt = E[W] (numeric check
// of the closed forms against each other).
func TestMMcWaitCCDFIntegratesToMean(t *testing.T) {
	c, rho, mu := 3, 0.85, 13.0
	want := MMcWait(c, rho, mu)
	var integral float64
	dt := want / 2000
	for x := 0.0; x < want*60; x += dt {
		integral += MMcWaitCCDF(c, rho, mu, x) * dt
	}
	if !close(integral, want, 0.01) {
		t.Errorf("∫CCDF = %v, E[W] = %v", integral, want)
	}
}

func TestMMcWaitQuantileConsistency(t *testing.T) {
	// CCDF(quantile(q)) == 1−q above the zero atom.
	c, rho, mu := 5, 0.9, 13.0
	for _, q := range []float64{0.6, 0.9, 0.95, 0.99} {
		tq := MMcWaitQuantile(c, rho, mu, q)
		if tq == 0 {
			continue
		}
		if got := MMcWaitCCDF(c, rho, mu, tq); !close(got, 1-q, 1e-9) {
			t.Errorf("q=%v: CCDF(quantile) = %v, want %v", q, got, 1-q)
		}
	}
}

func TestMMcWaitQuantileAtom(t *testing.T) {
	// At ρ=0.5, c=5: Erlang C ≈ 0.13; quantiles below 0.87 are 0.
	pc := ErlangC(5, 2.5)
	if got := MMcWaitQuantile(5, 0.5, 13, 1-pc-0.01); got != 0 {
		t.Errorf("quantile inside atom = %v, want 0", got)
	}
	if got := MMcWaitQuantile(5, 0.5, 13, 1-pc+0.01); got <= 0 {
		t.Errorf("quantile beyond atom = %v, want > 0", got)
	}
	if !math.IsInf(MMcWaitQuantile(5, 0.5, 13, 1), 1) {
		t.Error("q=1 should be +Inf")
	}
}

// TestMMcWaitQuantileReducesToMM1: c=1 must match the M/M/1 quantile.
func TestMMcWaitQuantileReducesToMM1(t *testing.T) {
	f := func(rhoRaw, qRaw uint8) bool {
		rho := 0.05 + float64(rhoRaw%90)/100
		q := 0.05 + float64(qRaw%90)/100
		return close(MMcWaitQuantile(1, rho, 7, q), MM1WaitQuantile(rho, 7, q), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTailInvertsBeforeMeanAnalytic: the paper's Figure 5 observation,
// now provable analytically: the p95 cutoff utilization is below the
// mean cutoff for every paper scenario.
func TestTailInvertsBeforeMeanAnalytic(t *testing.T) {
	for _, rtt := range []float64{0.013, 0.025, 0.054, 0.080} {
		d := Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: rtt}
		mean := d.CutoffUtilizationExactMM()
		tail := d.TailCutoffUtilization(0.95)
		if tail >= mean {
			t.Errorf("rtt=%v: p95 cutoff %v should be below mean cutoff %v", rtt, tail, mean)
		}
	}
}

// TestTailCutoffMonotoneInQuantile: deeper tails invert earlier.
func TestTailCutoffMonotoneInQuantile(t *testing.T) {
	d := Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: 0.054}
	prev := 2.0
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		cut := d.TailCutoffUtilization(q)
		if cut > prev+1e-9 {
			t.Fatalf("tail cutoff not decreasing in q at %v", q)
		}
		prev = cut
	}
}

// TestTailCutoffMonotoneInRTT: like Figure 7's p95 bars, the tail cutoff
// rises with cloud distance.
func TestTailCutoffMonotoneInRTT(t *testing.T) {
	prev := -1.0
	for _, rtt := range []float64{0.013, 0.025, 0.054, 0.080} {
		d := Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: rtt}
		cut := d.TailCutoffUtilization(0.95)
		if cut < prev {
			t.Fatalf("tail cutoff decreased at rtt=%v", rtt)
		}
		prev = cut
	}
}

func TestTailMargin31Direction(t *testing.T) {
	d := Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: 0.054}
	if inv, _ := d.TailMargin31(0.9, 0.9, 0.95); !inv {
		t.Error("high load should invert the tail")
	}
	if inv, _ := d.TailMargin31(0.05, 0.05, 0.95); inv {
		t.Error("near-idle load should not invert the tail")
	}
}

func TestTailQuantilePanics(t *testing.T) {
	d := Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0, CloudRTT: 0.025}
	for _, q := range []float64{0, 1, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TailCutoffUtilization(%v) should panic", q)
				}
			}()
			d.TailCutoffUtilization(q)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MMcWaitQuantile(q=2) should panic")
			}
		}()
		MMcWaitQuantile(1, 0.5, 1, 2)
	}()
}

func TestMMcSojournQuantile(t *testing.T) {
	// Sojourn quantile ≥ wait quantile, and grows with q.
	c, rho, mu := 5, 0.8, 13.0
	prev := 0.0
	for _, q := range []float64{0.5, 0.9, 0.99} {
		s := MMcSojournQuantile(c, rho, mu, q)
		w := MMcWaitQuantile(c, rho, mu, q)
		if s < w {
			t.Errorf("sojourn quantile %v below wait quantile %v", s, w)
		}
		if s < prev {
			t.Error("sojourn quantile not monotone")
		}
		prev = s
	}
	if !math.IsInf(MMcSojournQuantile(c, 1, mu, 0.5), 1) {
		t.Error("saturated sojourn quantile should be +Inf")
	}
}

func TestMMcKLossProbability(t *testing.T) {
	// K=c reduces to Erlang B.
	for _, c := range []int{1, 3, 8} {
		for _, rho := range []float64{0.3, 0.8, 1.2} {
			a := rho * float64(c)
			got := MMcKLossProbability(c, c, rho)
			want := ErlangB(c, a)
			if !close(got, want, 1e-9) {
				t.Errorf("c=%d rho=%v: M/M/c/c loss %v != ErlangB %v", c, rho, got, want)
			}
		}
	}
	// M/M/1/K known form: P_K = (1−ρ)ρ^K/(1−ρ^{K+1}).
	rho := 0.8
	K := 5
	want := (1 - rho) * math.Pow(rho, float64(K)) / (1 - math.Pow(rho, float64(K+1)))
	if got := MMcKLossProbability(1, K, rho); !close(got, want, 1e-9) {
		t.Errorf("M/M/1/5 loss = %v, want %v", got, want)
	}
}

// TestMMcKLossMonotone: loss decreases with capacity, increases with load.
func TestMMcKLossMonotone(t *testing.T) {
	prev := 1.0
	for _, K := range []int{5, 10, 20, 50} {
		p := MMcKLossProbability(5, K, 0.9)
		if p > prev {
			t.Fatalf("loss not decreasing in K at %d", K)
		}
		prev = p
	}
	prev = -1
	for _, rho := range []float64{0.3, 0.6, 0.9, 1.2} {
		p := MMcKLossProbability(5, 10, rho)
		if p < prev {
			t.Fatalf("loss not increasing in rho at %v", rho)
		}
		prev = p
	}
}

func TestEffectiveThroughput(t *testing.T) {
	// Below saturation with a huge buffer, throughput ≈ offered load.
	if got := EffectiveThroughput(5, 500, 40, 13); !close(got, 40, 1e-3) {
		t.Errorf("unsaturated throughput = %v, want ~40", got)
	}
	// Far beyond saturation, throughput caps near cμ.
	got := EffectiveThroughput(5, 10, 200, 13)
	if got > 5*13*1.02 {
		t.Errorf("saturated throughput %v exceeds capacity %v", got, 5*13.0)
	}
	if got < 5*13*0.8 {
		t.Errorf("saturated throughput %v too far below capacity", got)
	}
}

func TestMMcKPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MMcKLossProbability(0, 5, 0.5) },
		func() { MMcKLossProbability(5, 3, 0.5) },
		func() { MMcKLossProbability(5, 10, -1) },
		func() { EffectiveThroughput(5, 10, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid M/M/c/K input should panic")
				}
			}()
			fn()
		}()
	}
}
