package theory

import (
	"fmt"
	"math"
)

// This file extends the paper's analysis from means to tails. The paper
// notes (§4.3) that its analytic results "only permit a comparison of
// mean latencies" and resorts to experiments for the p95 comparison of
// Figure 5. For Markovian systems the waiting-time distribution is in
// fact closed-form — for an M/M/c queue at utilization ρ,
//
//	P(W > t) = C(c, cρ) · e^{−cμ(1−ρ)t}
//
// where C is the Erlang-C wait probability — so the tail comparison and
// its cutoff utilization can be computed analytically, and validated
// against the simulator's Figure 7 p95 bars.

// MMcWaitCCDF returns P(W > t) for an M/M/c queue.
func MMcWaitCCDF(c int, rho, mu, t float64) float64 {
	if c <= 0 || mu <= 0 {
		panic(fmt.Sprintf("theory: MMcWaitCCDF c=%d mu=%v invalid", c, mu))
	}
	if rho >= 1 {
		return 1
	}
	if t < 0 {
		return 1
	}
	pc := ErlangC(c, float64(c)*rho)
	return pc * math.Exp(-float64(c)*mu*(1-rho)*t)
}

// MMcWaitQuantile returns the q-th quantile of the M/M/c waiting time.
// The distribution has an atom at zero of mass 1−C(c, cρ); quantiles
// below that mass are 0.
func MMcWaitQuantile(c int, rho, mu, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("theory: quantile q=%v outside [0,1]", q))
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	pc := ErlangC(c, float64(c)*rho)
	if q <= 1-pc {
		return 0
	}
	if q == 1 {
		return math.Inf(1)
	}
	return -math.Log((1-q)/pc) / (float64(c) * mu * (1 - rho))
}

// MMcSojournQuantile returns an upper-bound approximation of the q-th
// quantile of the M/M/c sojourn time (wait + service) by adding the wait
// quantile to the service quantile at the same probability. Exact for
// the wait component; the sum is a conservative (superadditive) estimate
// used for tail-inversion analysis where both sides carry the same
// service term and it cancels.
func MMcSojournQuantile(c int, rho, mu, q float64) float64 {
	w := MMcWaitQuantile(c, rho, mu, q)
	if math.IsInf(w, 1) {
		return w
	}
	if q >= 1 {
		return math.Inf(1)
	}
	svc := -math.Log(1-q) / mu // exponential service quantile
	return w + svc
}

// TailMargin31 is the tail analogue of Lemma 3.1: the q-quantile
// end-to-end latency of the edge exceeds the cloud's when
//
//	Δn < W_edge(q) − W_cloud(q)
//
// with W the exact M/M/c waiting-time quantiles (the identical service
// quantile cancels on both sides). The returned margin is positive when
// the tail inverts.
func (d Deployment) TailMargin31(rhoEdge, rhoCloud, q float64) (inverted bool, margin float64) {
	d.validate()
	we := MMcWaitQuantile(d.ServersPerSite, rhoEdge, d.Mu, q)
	wc := MMcWaitQuantile(d.CloudServers(), rhoCloud, d.Mu, q)
	margin = (we - wc) - d.DeltaN()
	return margin > 0, margin
}

// TailCutoffUtilization returns the utilization above which the edge's
// q-quantile latency exceeds the cloud's (balanced load, identical
// hardware), solved numerically on the exact M/M/c quantiles. This is
// the analytic counterpart of Figure 7's p95 bars; Figure 5's headline
// observation — tails invert before means — appears here as
// TailCutoffUtilization(0.95) < CutoffUtilizationExactMM().
func (d Deployment) TailCutoffUtilization(q float64) float64 {
	d.validate()
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("theory: tail quantile q=%v outside (0,1)", q))
	}
	f := func(rho float64) float64 {
		_, m := d.TailMargin31(rho, rho, q)
		return m
	}
	return bisectCutoff(f)
}

// MMcKLossProbability returns the blocking probability of an M/M/c/K
// queue (c servers, K total capacity including those in service),
// modeling the §4.2 observation that the saturated service "starts
// dropping requests". Computed from the truncated birth–death chain.
func MMcKLossProbability(c, capacity int, rho float64) float64 {
	if c <= 0 || capacity < c {
		panic(fmt.Sprintf("theory: MMcK c=%d K=%d invalid", c, capacity))
	}
	if rho < 0 {
		panic("theory: negative utilization")
	}
	a := rho * float64(c) // offered load in erlangs
	// p_n ∝ a^n/n! for n ≤ c, then p_c · (a/c)^{n−c} for c < n ≤ K.
	// Work in log space for numeric stability at large c.
	terms := make([]float64, capacity+1)
	logTerm := 0.0 // log(a^0/0!) = 0
	terms[0] = 0
	for n := 1; n <= capacity; n++ {
		if n <= c {
			logTerm += math.Log(a) - math.Log(float64(n))
		} else {
			logTerm += math.Log(a) - math.Log(float64(c))
		}
		terms[n] = logTerm
	}
	// Normalize via log-sum-exp.
	maxLog := terms[0]
	for _, t := range terms {
		if t > maxLog {
			maxLog = t
		}
	}
	var sum float64
	for _, t := range terms {
		sum += math.Exp(t - maxLog)
	}
	return math.Exp(terms[capacity]-maxLog) / sum
}

// EffectiveThroughput returns the accepted request rate of an M/M/c/K
// station offered λ req/s: λ(1 − P_loss).
func EffectiveThroughput(c, capacity int, lambda, mu float64) float64 {
	if mu <= 0 {
		panic("theory: EffectiveThroughput needs positive mu")
	}
	rho := lambda / (float64(c) * mu)
	return lambda * (1 - MMcKLossProbability(c, capacity, rho))
}
