package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func paperDeployment() Deployment {
	return Deployment{
		K:              5,
		ServersPerSite: 1,
		Mu:             13,
		EdgeRTT:        0.001,
		CloudRTT:       0.025,
	}
}

func TestDeltaN(t *testing.T) {
	d := paperDeployment()
	if !close(d.DeltaN(), 0.024, 1e-12) {
		t.Errorf("DeltaN = %v, want 0.024", d.DeltaN())
	}
	if d.CloudServers() != 5 {
		t.Errorf("CloudServers = %d, want 5", d.CloudServers())
	}
}

func TestLemma31Direction(t *testing.T) {
	d := paperDeployment()
	// At high utilization the edge must invert.
	if inv, margin := d.Lemma31(0.9, 0.9); !inv || margin <= 0 {
		t.Errorf("high-ρ Lemma 3.1: inv=%v margin=%v", inv, margin)
	}
	// With a huge Δn the edge wins at moderate load.
	far := d
	far.CloudRTT = 5.0 // 5 seconds
	if inv, _ := far.Lemma31(0.5, 0.5); inv {
		t.Error("5 s cloud RTT should not invert at ρ=0.5")
	}
}

// TestLemma31MarginMonotone: the inversion margin grows with edge
// utilization.
func TestLemma31MarginMonotone(t *testing.T) {
	d := paperDeployment()
	prev := math.Inf(-1)
	for rho := 0.05; rho < 1; rho += 0.05 {
		_, m := d.Lemma31(rho, rho)
		if m < prev {
			t.Fatalf("margin not monotone at rho=%v", rho)
		}
		prev = m
	}
}

func TestCutoff311MatchesPaperNumbers(t *testing.T) {
	// The paper's §4.2 validation: Δn=30 ms, k=5 → ρ*≈0.64; k=10 with
	// 2 servers/site → ρ*≈0.75, at the paper's μ convention (13 ms
	// service time; see EXPERIMENTS.md).
	mu := 1000.0 / 13.0
	d5 := Deployment{K: 5, ServersPerSite: 1, Mu: mu, EdgeRTT: 0, CloudRTT: 0.030}
	if got := d5.CutoffUtilization311(); math.Abs(got-0.64) > 0.03 {
		t.Errorf("k=5 cutoff = %v, paper says 0.64", got)
	}
	d10 := Deployment{K: 5, ServersPerSite: 2, Mu: mu, EdgeRTT: 0, CloudRTT: 0.030}
	if got := d10.CutoffUtilization311(); math.Abs(got-0.75) > 0.03 {
		t.Errorf("k=10 cutoff = %v, paper says 0.75", got)
	}
}

// TestCutoff311ConsistentWithLemma31: just below the cutoff the edge
// wins; just above it inverts (when the cutoff is interior).
func TestCutoff311ConsistentWithLemma31(t *testing.T) {
	d := Deployment{K: 5, ServersPerSite: 1, Mu: 70, EdgeRTT: 0.001, CloudRTT: 0.030}
	cut := d.CutoffUtilization311()
	if cut <= 0.01 || cut >= 0.99 {
		t.Fatalf("expected interior cutoff, got %v", cut)
	}
	if inv, _ := d.Lemma31(cut-0.01, cut-0.01); inv {
		t.Error("just below cutoff should not invert")
	}
	if inv, _ := d.Lemma31(cut+0.01, cut+0.01); !inv {
		t.Error("just above cutoff should invert")
	}
}

// TestCutoffMonotoneInDeltaN: a more distant cloud raises the cutoff —
// Figure 7's monotone trend, in all three cutoff models.
func TestCutoffMonotoneInDeltaN(t *testing.T) {
	prev311, prevMM, prevGG := -1.0, -1.0, -1.0
	for _, rtt := range []float64{0.013, 0.025, 0.054, 0.080} {
		d := Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: rtt}
		c311 := d.CutoffUtilization311()
		cMM := d.CutoffUtilizationExactMM()
		cGG := d.CutoffUtilizationExactGG(0.4, 0.08, 0.1)
		if c311 < prev311 || cMM < prevMM || cGG < prevGG {
			t.Fatalf("cutoffs not monotone at rtt=%v: %v %v %v", rtt, c311, cMM, cGG)
		}
		prev311, prevMM, prevGG = c311, cMM, cGG
	}
}

func TestCutoffLimit312(t *testing.T) {
	// The k→∞ limit is below any finite-k cutoff and approached from
	// above as k grows.
	mu := 70.0
	lim := Deployment{K: 1000000, ServersPerSite: 1, Mu: mu, EdgeRTT: 0, CloudRTT: 0.030}
	limit := lim.CutoffUtilizationLimit312()
	finite := lim.CutoffUtilization311()
	if math.Abs(limit-finite) > 0.01 {
		t.Errorf("large-k cutoff %v should approach limit %v", finite, limit)
	}
	small := Deployment{K: 2, ServersPerSite: 1, Mu: mu, EdgeRTT: 0, CloudRTT: 0.030}
	if small.CutoffUtilization311() < limit {
		t.Error("finite-k cutoff should exceed the k→∞ limit")
	}
}

// TestK1NeverInverts: the paper's §3.1.1 discussion — a single-site edge
// with identical hardware can never invert (cutoff = 1).
func TestK1NeverInverts(t *testing.T) {
	d := Deployment{K: 1, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: 0.025}
	if got := d.CutoffUtilizationExactMM(); got != 1 {
		t.Errorf("k=1 exact cutoff = %v, want 1 (never inverts)", got)
	}
	for _, rho := range []float64{0.1, 0.5, 0.9, 0.99} {
		we := MMcWait(1, rho, 13.0)
		wc := MMcWait(1, rho, 13.0)
		if we-wc > d.DeltaN() {
			t.Errorf("k=1 inverted at rho=%v", rho)
		}
	}
}

func TestCutoffZeroWhenCloudCloser(t *testing.T) {
	d := Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.030, CloudRTT: 0.010}
	if d.CutoffUtilization311() != 0 {
		t.Error("negative Δn should give cutoff 0")
	}
	if d.CutoffUtilizationLimit312() != 0 {
		t.Error("negative Δn limit should be 0")
	}
}

func TestHardCloudRTTBound313(t *testing.T) {
	d := paperDeployment()
	b := d.HardCloudRTTBound313(0.6, 0.6)
	if b <= 0 {
		t.Fatal("bound should be positive at ρ=0.6")
	}
	// Bound grows with utilization.
	if d.HardCloudRTTBound313(0.9, 0.9) <= b {
		t.Error("bound should grow with utilization")
	}
	// A cloud inside the bound always wins: margin positive with nedge=0.
	inside := Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0, CloudRTT: b * 0.9}
	if inv, _ := inside.Lemma31(0.6, 0.6); !inv {
		t.Error("cloud inside the hard bound should beat a 0 ms edge")
	}
}

func TestLemma32BurstinessMatters(t *testing.T) {
	d := paperDeployment()
	// Smooth workload at moderate load: no inversion at large Δn.
	far := d
	far.CloudRTT = 0.200
	if inv, _ := far.Lemma32(0.75, 0.75, 0.2, 0.04, 0.1); inv {
		t.Error("smooth workload at Δn=200ms should not invert at ρ=0.75")
	}
	// Extremely bursty arrivals flip it.
	if inv, _ := far.Lemma32(0.75, 0.75, 40, 0.04, 0.1); !inv {
		t.Error("very bursty arrivals should invert even at Δn=200ms")
	}
}

func TestCorollary321IsLemma32Limit(t *testing.T) {
	// For huge k the two predicates agree.
	d := Deployment{K: 100000, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: 0.025}
	_, m32 := d.Lemma32(0.8, 0.8, 1, 1.0/100000, 1)
	_, m321 := d.Corollary321Margin(0.8, 1, 1)
	if math.Abs(m32-m321) > 1e-4 {
		t.Errorf("Lemma 3.2 (k→∞) %v vs Corollary 3.2.1 %v", m32, m321)
	}
}

// TestLemma33ReducesToLemma31WhenBalanced: equal per-site rates make the
// skewed bound coincide with the uniform bound.
func TestLemma33ReducesToLemma31WhenBalanced(t *testing.T) {
	d := paperDeployment()
	rho := 0.7
	lambdaSite := rho * d.Mu
	lambdas := []float64{lambdaSite, lambdaSite, lambdaSite, lambdaSite, lambdaSite}
	_, m33 := d.Lemma33(lambdas)
	_, m31 := d.Lemma31(rho, rho)
	if math.Abs(m33-m31) > 1e-9 {
		t.Errorf("balanced Lemma 3.3 margin %v != Lemma 3.1 margin %v", m33, m31)
	}
}

// TestSkewIncreasesEdgeWait: any imbalance raises the weighted edge wait
// above the balanced value (convexity of 1/(1−ρ)).
func TestSkewIncreasesEdgeWait(t *testing.T) {
	f := func(seed int64) bool {
		mu := 13.0
		total := 40.0
		balanced := SkewedEdgeCondWait([]float64{8, 8, 8, 8, 8}, mu)
		// Construct a random feasible skew preserving the total.
		r := rngFloats(seed, 5)
		var sum float64
		for _, x := range r {
			sum += x
		}
		lambdas := make([]float64, 5)
		for i, x := range r {
			lambdas[i] = total * x / sum
			if lambdas[i] >= mu {
				return true // saturated site: wait is +Inf > balanced, trivially holds
			}
		}
		skewed := SkewedEdgeCondWait(lambdas, mu)
		return skewed >= balanced-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// rngFloats returns n positive pseudo-random floats derived from seed.
func rngFloats(seed int64, n int) []float64 {
	x := uint64(seed)*2654435761 + 12345
	out := make([]float64, n)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = 0.05 + float64(x%1000)/1000
	}
	return out
}

func TestSkewedEdgeWaitSaturation(t *testing.T) {
	if !math.IsInf(SkewedEdgeCondWait([]float64{13, 1}, 13), 1) {
		t.Error("saturated site should make the average wait infinite")
	}
	if SkewedEdgeCondWait([]float64{0, 0}, 13) != 0 {
		t.Error("zero load should give zero wait")
	}
}

func TestLemma33PanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Lemma33 with wrong-length rates should panic")
		}
	}()
	paperDeployment().Lemma33([]float64{1, 2})
}

// TestBisectConsistency: the GG cutoff must sit where the Lemma 3.2
// margin changes sign.
func TestBisectConsistency(t *testing.T) {
	d := Deployment{K: 5, ServersPerSite: 1, Mu: 70, EdgeRTT: 0.001, CloudRTT: 0.030}
	cut := d.CutoffUtilizationGG(1, 0.2, 1)
	if cut <= 0 || cut >= 1 {
		t.Fatalf("expected interior GG cutoff, got %v", cut)
	}
	if inv, _ := d.Lemma32(cut-0.02, cut-0.02, 1, 0.2, 1); inv {
		t.Error("below GG cutoff should not invert")
	}
	if inv, _ := d.Lemma32(cut+0.02, cut+0.02, 1, 0.2, 1); !inv {
		t.Error("above GG cutoff should invert")
	}
}

// TestMoreVariabilityLowersCutoff: Corollary 3.2.1's practical takeaway.
func TestMoreVariabilityLowersCutoff(t *testing.T) {
	d := Deployment{K: 5, ServersPerSite: 1, Mu: 13, EdgeRTT: 0.001, CloudRTT: 0.054}
	smooth := d.CutoffUtilizationExactGG(0.2, 0.04, 0.1)
	bursty := d.CutoffUtilizationExactGG(4, 0.8, 2)
	if bursty >= smooth {
		t.Errorf("bursty cutoff %v should be below smooth cutoff %v", bursty, smooth)
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid deployment should panic")
		}
	}()
	Deployment{K: 0, ServersPerSite: 1, Mu: 1}.CutoffUtilization311()
}
