// Package theory implements the paper's analytic contribution: closed-form
// queueing results (M/M/1, M/M/c via Erlang C, Whitt's conditional-wait
// approximation, the Allen–Cunneen G/G/c approximation, Kingman's bound)
// and, on top of them, the edge performance-inversion predicates of
// Lemmas 3.1–3.3, the cutoff-utilization corollaries 3.1.1–3.1.3 and
// 3.2.1, and the capacity-provisioning rules of §5.
//
// Conventions: utilization ρ ∈ [0,1); service rate μ in requests/second;
// all returned delays are in seconds. Functions return math.Inf(1) for
// saturated systems (ρ ≥ 1) rather than panicking, because parameter
// sweeps routinely cross saturation.
package theory

import (
	"fmt"
	"math"
)

// MM1Wait returns the expected queueing delay (excluding service) of an
// M/M/1 queue: Wq = ρ / (μ (1 − ρ)).
func MM1Wait(rho, mu float64) float64 {
	if rho < 0 || mu <= 0 {
		panic(fmt.Sprintf("theory: MM1Wait rho=%v mu=%v invalid", rho, mu))
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (mu * (1 - rho))
}

// MM1Sojourn returns the expected total time in system of an M/M/1 queue:
// T = 1 / (μ (1 − ρ)).
func MM1Sojourn(rho, mu float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1 / (mu * (1 - rho))
}

// MM1QueueLen returns the expected number waiting: Lq = ρ²/(1−ρ).
func MM1QueueLen(rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho * rho / (1 - rho)
}

// MM1WaitQuantile returns the q-th quantile of the M/M/1 waiting-time
// distribution: P(W ≤ t) = 1 − ρ e^{−μ(1−ρ)t}.
func MM1WaitQuantile(rho, mu, q float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if q <= 1-rho {
		return 0 // an atom at zero with mass 1−ρ
	}
	return -math.Log((1-q)/rho) / (mu * (1 - rho))
}

// MM1SojournQuantile returns the q-th quantile of the M/M/1 sojourn time,
// which is exponential with rate μ(1−ρ).
func MM1SojournQuantile(rho, mu, q float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1-q) / (mu * (1 - rho))
}

// ErlangB returns the Erlang-B blocking probability for offered load a
// (erlangs) on c servers, computed with the standard numerically stable
// recursion B(0)=1, B(n) = aB(n−1)/(n + aB(n−1)).
func ErlangB(c int, a float64) float64 {
	if c < 0 || a < 0 {
		panic(fmt.Sprintf("theory: ErlangB c=%d a=%v invalid", c, a))
	}
	b := 1.0
	for n := 1; n <= c; n++ {
		b = a * b / (float64(n) + a*b)
	}
	return b
}

// ErlangC returns the probability that an arriving request must wait in an
// M/M/c queue with offered load a = λ/μ erlangs (ρ = a/c):
// C(c,a) = B / (1 − ρ(1 − B)).
func ErlangC(c int, a float64) float64 {
	if c <= 0 {
		panic("theory: ErlangC needs c >= 1")
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 1
	}
	b := ErlangB(c, a)
	return b / (1 - rho*(1-b))
}

// MMcWait returns the expected queueing delay of an M/M/c queue:
// Wq = C(c, a) / (cμ − λ), with a = cρ and λ = cρμ.
func MMcWait(c int, rho, mu float64) float64 {
	if c <= 0 || mu <= 0 || rho < 0 {
		panic(fmt.Sprintf("theory: MMcWait c=%d rho=%v mu=%v invalid", c, rho, mu))
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	a := float64(c) * rho
	pc := ErlangC(c, a)
	return pc / (float64(c) * mu * (1 - rho))
}

// MMcSojourn returns expected wait plus service of an M/M/c queue.
func MMcSojourn(c int, rho, mu float64) float64 {
	w := MMcWait(c, rho, mu)
	if math.IsInf(w, 1) {
		return w
	}
	return w + 1/mu
}

// MMcQueueLen returns the expected number waiting in an M/M/c queue.
func MMcQueueLen(c int, rho, mu float64) float64 {
	w := MMcWait(c, rho, mu)
	if math.IsInf(w, 1) {
		return w
	}
	return w * float64(c) * rho * mu // Little's law with λ = cρμ
}

// MMcCondWait returns the exact conditional wait E[W | W>0] of an M/M/c
// queue, which is exponential with rate cμ(1−ρ): E = 1/(cμ(1−ρ)).
func MMcCondWait(c int, rho, mu float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1 / (float64(c) * mu * (1 - rho))
}

// WhittCondWait returns the conditional expected waiting time used by the
// paper (Equation 6, attributed to Whitt 1992): E[w | w>0] =
// √2 / ((1−ρ) √k), expressed in units of the mean service time and then
// converted to seconds by dividing by μ. The approximation is accurate in
// the heavy-traffic regime the paper targets.
func WhittCondWait(k int, rho, mu float64) float64 {
	if k <= 0 || mu <= 0 {
		panic(fmt.Sprintf("theory: WhittCondWait k=%d mu=%v invalid", k, mu))
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt2 / ((1 - rho) * math.Sqrt(float64(k)) * mu)
}

// MD1Wait returns the expected queueing delay of an M/D/1 queue (exact,
// Pollaczek–Khinchine with SCV 0): Wq = ρ / (2μ(1−ρ)).
func MD1Wait(rho, mu float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (2 * mu * (1 - rho))
}

// PollaczekKhinchineWait returns the exact M/G/1 queueing delay for a
// service distribution with SCV cb2: Wq = ρ(1+cb²) / (2μ(1−ρ)).
func PollaczekKhinchineWait(rho, mu, cb2 float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho * (1 + cb2) / (2 * mu * (1 - rho))
}

// KingmanWait returns Kingman's heavy-traffic upper-bound approximation
// for the G/G/1 queueing delay: Wq ≈ ρ/(1−ρ) · (ca²+cb²)/2 · 1/μ.
func KingmanWait(rho, mu, ca2, cb2 float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho) * (ca2 + cb2) / 2 / mu
}
