package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestErlangBKnownValues(t *testing.T) {
	// Classic table values: B(c=1,a=1)=0.5; B(2,1)=0.2; B(5,3)≈0.11005.
	cases := []struct {
		c    int
		a    float64
		want float64
	}{
		{1, 1, 0.5},
		{2, 1, 0.2},
		{5, 3, 0.110054},
		{0, 1, 1},
		{10, 5, 0.018385},
	}
	for _, c := range cases {
		got := ErlangB(c.c, c.a)
		if !close(got, c.want, 1e-4) {
			t.Errorf("ErlangB(%d, %v) = %v, want %v", c.c, c.a, got, c.want)
		}
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// C(c=1,a=ρ) = ρ for M/M/1.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); !close(got, rho, 1e-12) {
			t.Errorf("ErlangC(1, %v) = %v, want %v", rho, got, rho)
		}
	}
	// Known: C(2, 1) = 1/3.
	if got := ErlangC(2, 1); !close(got, 1.0/3, 1e-9) {
		t.Errorf("ErlangC(2,1) = %v, want 1/3", got)
	}
	// Saturated: probability of waiting → 1.
	if got := ErlangC(3, 3); got != 1 {
		t.Errorf("ErlangC at saturation = %v, want 1", got)
	}
}

// TestErlangCBounds: 0 ≤ C ≤ 1 and C ≥ B for all stable loads.
func TestErlangCBounds(t *testing.T) {
	f := func(cRaw uint8, aRaw uint8) bool {
		c := 1 + int(cRaw%20)
		a := float64(aRaw%100) / 100 * float64(c) * 0.99
		b := ErlangB(c, a)
		cc := ErlangC(c, a)
		return cc >= -1e-12 && cc <= 1+1e-12 && cc >= b-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMM1WaitFormula(t *testing.T) {
	// Wq = ρ/(μ(1−ρ)): at ρ=0.5, μ=1 → 1.
	if got := MM1Wait(0.5, 1); !close(got, 1, 1e-12) {
		t.Errorf("MM1Wait(0.5,1) = %v, want 1", got)
	}
	if !math.IsInf(MM1Wait(1, 1), 1) {
		t.Error("saturated M/M/1 wait should be +Inf")
	}
	if MM1Wait(0, 5) != 0 {
		t.Error("zero-load wait should be 0")
	}
}

func TestMM1SojournAndQueueLen(t *testing.T) {
	// T = 1/(μ(1−ρ)); Lq = ρ²/(1−ρ).
	if got := MM1Sojourn(0.5, 2); !close(got, 1, 1e-12) {
		t.Errorf("MM1Sojourn = %v, want 1", got)
	}
	if got := MM1QueueLen(0.5); !close(got, 0.5, 1e-12) {
		t.Errorf("MM1QueueLen = %v, want 0.5", got)
	}
	if !math.IsInf(MM1Sojourn(1.2, 1), 1) || !math.IsInf(MM1QueueLen(1), 1) {
		t.Error("saturation should yield +Inf")
	}
}

// TestMMcReducesToMM1: c=1 must agree with the M/M/1 formulas exactly.
func TestMMcReducesToMM1(t *testing.T) {
	f := func(rhoRaw, muRaw uint8) bool {
		rho := 0.01 + float64(rhoRaw%90)/100
		mu := 0.5 + float64(muRaw%40)
		return close(MMcWait(1, rho, mu), MM1Wait(rho, mu), 1e-9) &&
			close(MMcSojourn(1, rho, mu), MM1Sojourn(rho, mu), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMMcPoolingBenefit: at equal per-server utilization, more servers
// behind one queue always means less waiting — the bank-teller insight
// that drives the whole paper.
func TestMMcPoolingBenefit(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		prev := math.Inf(1)
		for _, c := range []int{1, 2, 5, 10, 50} {
			w := MMcWait(c, rho, 1)
			if w >= prev {
				t.Errorf("rho=%v: wait not decreasing in c: W(%d)=%v >= %v", rho, c, w, prev)
			}
			prev = w
		}
	}
}

func TestMMcWaitKnownValue(t *testing.T) {
	// M/M/2 at ρ=0.5 (a=1): C=1/3, Wq = (1/3)/(2·1·0.5) = 1/3.
	if got := MMcWait(2, 0.5, 1); !close(got, 1.0/3, 1e-9) {
		t.Errorf("MMcWait(2,0.5,1) = %v, want 1/3", got)
	}
}

func TestMMcQueueLenLittle(t *testing.T) {
	// Lq = λ Wq with λ = cρμ.
	c, rho, mu := 5, 0.8, 13.0
	lq := MMcQueueLen(c, rho, mu)
	want := MMcWait(c, rho, mu) * float64(c) * rho * mu
	if !close(lq, want, 1e-12) {
		t.Errorf("MMcQueueLen = %v, want %v", lq, want)
	}
}

func TestMM1Quantiles(t *testing.T) {
	rho, mu := 0.8, 1.0
	// Sojourn is Exp(μ(1−ρ)): median = ln2/(0.2) ≈ 3.466.
	if got := MM1SojournQuantile(rho, mu, 0.5); !close(got, math.Ln2/0.2, 1e-9) {
		t.Errorf("sojourn median = %v", got)
	}
	// Wait has an atom at 0 with mass 1−ρ=0.2.
	if got := MM1WaitQuantile(rho, mu, 0.15); got != 0 {
		t.Errorf("wait quantile below atom = %v, want 0", got)
	}
	if got := MM1WaitQuantile(rho, mu, 0.95); got <= 0 {
		t.Errorf("p95 wait = %v, want > 0", got)
	}
	if !math.IsInf(MM1SojournQuantile(rho, mu, 1), 1) {
		t.Error("q=1 sojourn quantile should be +Inf")
	}
}

// TestMM1WaitQuantileConsistency: P(W ≤ quantile(q)) == q.
func TestMM1WaitQuantileConsistency(t *testing.T) {
	rho, mu := 0.7, 2.0
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		tq := MM1WaitQuantile(rho, mu, q)
		cdf := 1 - rho*math.Exp(-mu*(1-rho)*tq)
		if !close(cdf, q, 1e-9) {
			t.Errorf("q=%v: CDF(quantile) = %v", q, cdf)
		}
	}
}

func TestMD1IsHalfMM1(t *testing.T) {
	f := func(rhoRaw uint8) bool {
		rho := 0.01 + float64(rhoRaw%90)/100
		return close(MD1Wait(rho, 3), MM1Wait(rho, 3)/2, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPollaczekKhinchine(t *testing.T) {
	// cb2=1 recovers M/M/1; cb2=0 recovers M/D/1.
	if !close(PollaczekKhinchineWait(0.6, 2, 1), MM1Wait(0.6, 2), 1e-12) {
		t.Error("PK with cb2=1 should equal M/M/1")
	}
	if !close(PollaczekKhinchineWait(0.6, 2, 0), MD1Wait(0.6, 2), 1e-12) {
		t.Error("PK with cb2=0 should equal M/D/1")
	}
}

func TestKingmanMatchesMM1(t *testing.T) {
	// Kingman with ca2=cb2=1 equals the exact M/M/1 wait.
	for _, rho := range []float64{0.2, 0.5, 0.9} {
		if !close(KingmanWait(rho, 4, 1, 1), MM1Wait(rho, 4), 1e-12) {
			t.Errorf("Kingman(ca2=cb2=1) != MM1 at rho=%v", rho)
		}
	}
}

func TestWhittCondWait(t *testing.T) {
	// √2/((1−ρ)√k μ): k=1, ρ=0.5, μ=1 → 2√2.
	if got := WhittCondWait(1, 0.5, 1); !close(got, 2*math.Sqrt2, 1e-12) {
		t.Errorf("WhittCondWait = %v, want 2√2", got)
	}
	// Decreasing in k.
	if WhittCondWait(4, 0.5, 1) >= WhittCondWait(1, 0.5, 1) {
		t.Error("conditional wait should shrink with k")
	}
	if !math.IsInf(WhittCondWait(2, 1, 1), 1) {
		t.Error("saturated conditional wait should be +Inf")
	}
}

func TestMMcCondWaitExact(t *testing.T) {
	// Exponential conditional wait: 1/(cμ(1−ρ)).
	if got := MMcCondWait(4, 0.75, 2); !close(got, 1/(4*2*0.25), 1e-12) {
		t.Errorf("MMcCondWait = %v", got)
	}
}

func TestPanicsOnInvalidInputs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("MM1Wait negative", func() { MM1Wait(-0.1, 1) })
	mustPanic("MM1Wait zero mu", func() { MM1Wait(0.5, 0) })
	mustPanic("ErlangB negative", func() { ErlangB(-1, 1) })
	mustPanic("ErlangC zero c", func() { ErlangC(0, 1) })
	mustPanic("MMcWait zero c", func() { MMcWait(0, 0.5, 1) })
	mustPanic("WhittCondWait zero k", func() { WhittCondWait(0, 0.5, 1) })
}
