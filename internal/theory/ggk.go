package theory

import (
	"fmt"
	"math"
)

// PsWaitProbability returns Bolch et al.'s closed-form approximation
// (paper Equation 16) for the steady-state probability that an arriving
// request waits in a k-server system at utilization ρ:
//
//	Ps ≈ (ρ^k + ρ)/2        if ρ > 0.7
//	Ps ≈ ρ^((k+1)/2)        if ρ ≤ 0.7
func PsWaitProbability(k int, rho float64) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("theory: PsWaitProbability k=%d invalid", k))
	}
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		return 1
	}
	if rho > 0.7 {
		return (math.Pow(rho, float64(k)) + rho) / 2
	}
	return math.Pow(rho, (float64(k)+1)/2)
}

// AllenCunneenWait returns the Allen–Cunneen approximation (paper
// Equations 14–15) for the expected queueing delay of a G/G/k queue:
//
//	E[W] ≈ Ps / (k μ (1−ρ)) · (ca² + cb²)/2
//
// where Ps is the wait probability. For k=1 Ps reduces to ρ, recovering
// Equation 14. ca2 and cb2 are the squared coefficients of variation of
// inter-arrival and service times.
func AllenCunneenWait(k int, rho, mu, ca2, cb2 float64) float64 {
	if k <= 0 || mu <= 0 {
		panic(fmt.Sprintf("theory: AllenCunneenWait k=%d mu=%v invalid", k, mu))
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho <= 0 {
		return 0
	}
	var ps float64
	if k == 1 {
		ps = rho
	} else {
		ps = PsWaitProbability(k, rho)
	}
	return ps / (float64(k) * mu * (1 - rho)) * (ca2 + cb2) / 2
}

// AllenCunneenWaitPaper mirrors the exact algebraic form the paper
// substitutes into Lemma 3.2 (Equation 17): the k-server term uses
// Ps = (ρ^k + ρ)/2 unconditionally (the high-utilization branch), because
// the paper argues inversion only matters at high utilization.
func AllenCunneenWaitPaper(k int, rho, mu, ca2, cb2 float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho <= 0 {
		return 0
	}
	if k == 1 {
		return rho / (mu * (1 - rho)) * (ca2 + cb2) / 2
	}
	ps := (math.Pow(rho, float64(k)) + rho) / 2
	return ps / (mu * (1 - rho)) * (ca2 + cb2) / (2 * float64(k))
}

// GGkSojourn returns Allen–Cunneen wait plus mean service time.
func GGkSojourn(k int, rho, mu, ca2, cb2 float64) float64 {
	w := AllenCunneenWait(k, rho, mu, ca2, cb2)
	if math.IsInf(w, 1) {
		return w
	}
	return w + 1/mu
}

// GGkAccuracyNote reports the relative error of the Allen–Cunneen
// approximation against the exact M/M/k value at the given point (ca²=
// cb²=1 recovers M/M/k, where exact results exist). It is exposed so
// tests and EXPERIMENTS.md can quantify approximation quality.
func GGkAccuracyNote(k int, rho, mu float64) float64 {
	exact := MMcWait(k, rho, mu)
	approx := AllenCunneenWait(k, rho, mu, 1, 1)
	if exact == 0 {
		return 0
	}
	return (approx - exact) / exact
}
