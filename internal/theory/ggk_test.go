package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPsWaitProbability(t *testing.T) {
	// k=1 low regime: ρ^((1+1)/2) = ρ.
	if got := PsWaitProbability(1, 0.5); !close(got, 0.5, 1e-12) {
		t.Errorf("Ps(1, 0.5) = %v, want 0.5", got)
	}
	// High regime: (ρ^k + ρ)/2.
	if got := PsWaitProbability(3, 0.9); !close(got, (math.Pow(0.9, 3)+0.9)/2, 1e-12) {
		t.Errorf("Ps(3, 0.9) = %v", got)
	}
	if PsWaitProbability(5, 0) != 0 {
		t.Error("Ps at zero load should be 0")
	}
	if PsWaitProbability(5, 1) != 1 {
		t.Error("Ps at saturation should be 1")
	}
}

// TestPsBounds: Ps stays within [0,1] everywhere.
func TestPsBounds(t *testing.T) {
	f := func(kRaw, rhoRaw uint8) bool {
		k := 1 + int(kRaw%30)
		rho := float64(rhoRaw) / 255
		ps := PsWaitProbability(k, rho)
		return ps >= 0 && ps <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPsApproximatesErlangC: Bolch's closed form should track the exact
// Erlang-C wait probability within a modest error across the sane range.
func TestPsApproximatesErlangC(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10} {
		for _, rho := range []float64{0.5, 0.75, 0.9} {
			exact := ErlangC(k, float64(k)*rho)
			approx := PsWaitProbability(k, rho)
			if math.Abs(exact-approx) > 0.22 {
				t.Errorf("k=%d rho=%v: Ps approx %v vs ErlangC %v", k, rho, approx, exact)
			}
		}
	}
}

func TestAllenCunneenReducesToMM1(t *testing.T) {
	// ca2=cb2=1, k=1: E[W] = ρ/(μ(1−ρ)) exactly.
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		if !close(AllenCunneenWait(1, rho, 13, 1, 1), MM1Wait(rho, 13), 1e-12) {
			t.Errorf("AC(k=1, M/M) != MM1 at rho=%v", rho)
		}
	}
}

func TestAllenCunneenReducesToPK(t *testing.T) {
	// k=1 general service = Pollaczek–Khinchine.
	for _, cb2 := range []float64{0, 0.5, 2} {
		if !close(AllenCunneenWait(1, 0.7, 5, 1, cb2), PollaczekKhinchineWait(0.7, 5, cb2), 1e-12) {
			t.Errorf("AC(k=1) != PK at cb2=%v", cb2)
		}
	}
}

// TestAllenCunneenNearExactMMk: with ca2=cb2=1 the approximation should
// track exact M/M/k in the high-utilization regime the paper uses it in.
// The Ps closed form is coarsest around the ρ=0.7 regime boundary for
// large k (~30% there), tightening as ρ→1, so the tolerance shrinks with
// utilization.
func TestAllenCunneenNearExactMMk(t *testing.T) {
	tol := map[float64]float64{0.75: 0.35, 0.85: 0.25, 0.95: 0.10}
	for _, k := range []int{2, 5, 10} {
		for _, rho := range []float64{0.75, 0.85, 0.95} {
			exact := MMcWait(k, rho, 13)
			approx := AllenCunneenWait(k, rho, 13, 1, 1)
			relErr := math.Abs(approx-exact) / exact
			if relErr > tol[rho] {
				t.Errorf("k=%d rho=%v: AC rel err %.2f too large (%v vs %v)",
					k, rho, relErr, approx, exact)
			}
		}
	}
}

// TestAllenCunneenMonotoneInVariability: more variable arrivals or
// service must increase the predicted wait (Corollary 3.2.1's driver).
func TestAllenCunneenMonotoneInVariability(t *testing.T) {
	f := func(caRaw, cbRaw uint8) bool {
		ca2 := float64(caRaw%40) / 10
		cb2 := float64(cbRaw%40) / 10
		base := AllenCunneenWait(5, 0.8, 13, ca2, cb2)
		moreA := AllenCunneenWait(5, 0.8, 13, ca2+0.5, cb2)
		moreB := AllenCunneenWait(5, 0.8, 13, ca2, cb2+0.5)
		return moreA >= base && moreB >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllenCunneenEdgeCases(t *testing.T) {
	if AllenCunneenWait(3, 0, 1, 1, 1) != 0 {
		t.Error("zero load AC wait should be 0")
	}
	if !math.IsInf(AllenCunneenWait(3, 1, 1, 1, 1), 1) {
		t.Error("saturated AC wait should be +Inf")
	}
}

func TestAllenCunneenPaperForm(t *testing.T) {
	// k=1 matches the standard form.
	if !close(AllenCunneenWaitPaper(1, 0.8, 13, 1, 1), AllenCunneenWait(1, 0.8, 13, 1, 1), 1e-12) {
		t.Error("paper form k=1 mismatch")
	}
	// Above ρ=0.7 the forms agree for k>1 too.
	if !close(AllenCunneenWaitPaper(5, 0.8, 13, 1, 1), AllenCunneenWait(5, 0.8, 13, 1, 1), 1e-12) {
		t.Error("paper form high-ρ mismatch")
	}
	// Below 0.7 they differ (regime switch) but both stay positive.
	lo1 := AllenCunneenWaitPaper(5, 0.5, 13, 1, 1)
	lo2 := AllenCunneenWait(5, 0.5, 13, 1, 1)
	if lo1 <= 0 || lo2 <= 0 {
		t.Error("low-ρ waits should be positive")
	}
}

func TestGGkSojourn(t *testing.T) {
	w := AllenCunneenWait(2, 0.6, 4, 1, 1)
	if !close(GGkSojourn(2, 0.6, 4, 1, 1), w+0.25, 1e-12) {
		t.Error("sojourn should add mean service 1/μ")
	}
	if !math.IsInf(GGkSojourn(2, 1, 4, 1, 1), 1) {
		t.Error("saturated sojourn should be +Inf")
	}
}

func TestGGkAccuracyNote(t *testing.T) {
	// The reported relative error must match a direct computation.
	k, rho, mu := 5, 0.85, 13.0
	want := (AllenCunneenWait(k, rho, mu, 1, 1) - MMcWait(k, rho, mu)) / MMcWait(k, rho, mu)
	if got := GGkAccuracyNote(k, rho, mu); !close(got, want, 1e-12) {
		t.Errorf("accuracy note = %v, want %v", got, want)
	}
}
