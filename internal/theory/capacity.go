package theory

import (
	"fmt"
	"math"
)

// MinEdgeServers implements the §5.1 provisioning rule (paper Equation
// 22): the smallest number of servers k_i at edge site i receiving λ_i
// req/s such that Lemma 3.1's inversion condition fails, i.e.
//
//	Δn ≥ √2/μ ( 1/(√k_i (1 − λ_i/(μ k_i))) − 1/(√k (1 − λ/(μ k))) )
//
// where k is the cloud server count and λ the aggregate rate. It returns
// the minimal k_i and the number of servers beyond the site's fair share
// (overprovisioning). maxServers bounds the search; if even maxServers
// cannot avoid inversion, ok is false.
func MinEdgeServers(dn, mu, lambdaSite, lambdaTotal float64, cloudServers, maxServers int) (ki int, ok bool) {
	if mu <= 0 || cloudServers <= 0 || maxServers <= 0 {
		panic(fmt.Sprintf("theory: MinEdgeServers mu=%v k=%d max=%d invalid", mu, cloudServers, maxServers))
	}
	k := float64(cloudServers)
	rhoCloud := lambdaTotal / (mu * k)
	var cloudTerm float64
	if rhoCloud < 1 {
		cloudTerm = 1 / (math.Sqrt(k) * (1 - rhoCloud))
	} // saturated cloud ⇒ cloudTerm → ∞ handled below

	for c := 1; c <= maxServers; c++ {
		rhoSite := lambdaSite / (mu * float64(c))
		if rhoSite >= 1 {
			continue // site saturated; need more servers
		}
		edgeTerm := 1 / (math.Sqrt(float64(c)) * (1 - rhoSite))
		if rhoCloud >= 1 {
			// Cloud saturated: any stable edge site avoids inversion.
			return c, true
		}
		excess := math.Sqrt2 / mu * (edgeTerm - cloudTerm)
		if dn >= excess {
			return c, true
		}
	}
	return maxServers, false
}

// ProvisionPlan computes per-site minimum server counts for a skewed
// workload, applying MinEdgeServers at every site plus an
// overprovisioning headroom factor (≥ 1.0).
type ProvisionPlan struct {
	PerSite    []int // servers at each edge site
	TotalEdge  int
	CloudTotal int
	Feasible   bool // false if some site could not avoid inversion within the bound
}

// PlanEdgeCapacity returns the provisioning plan for per-site rates
// lambdas against a cloud of cloudServers, per §5.1.
func PlanEdgeCapacity(dn, mu float64, lambdas []float64, cloudServers int, headroom float64, maxPerSite int) ProvisionPlan {
	if headroom < 1 {
		panic("theory: headroom factor must be >= 1")
	}
	var total float64
	for _, l := range lambdas {
		total += l
	}
	plan := ProvisionPlan{PerSite: make([]int, len(lambdas)), CloudTotal: cloudServers, Feasible: true}
	for i, l := range lambdas {
		ki, ok := MinEdgeServers(dn, mu, l, total, cloudServers, maxPerSite)
		if !ok {
			plan.Feasible = false
		}
		ki = int(math.Ceil(float64(ki) * headroom))
		plan.PerSite[i] = ki
		plan.TotalEdge += ki
	}
	return plan
}

// TwoSigmaCapacity implements §5.2's peak-provisioning comparison for a
// Poisson workload of aggregate mean λ split evenly over k sites:
//
//	C_cloud = λ + 2√λ
//	C_edge  = k(λ/k + 2√(λ/k)) = λ + 2√(kλ)
//
// Both are expressed in requests/second of required service capacity. The
// overhead factor C_edge/C_cloud quantifies the extra capacity cost of
// the edge.
func TwoSigmaCapacity(lambda float64, k int) (cloud, edge, overhead float64) {
	if lambda < 0 || k <= 0 {
		panic(fmt.Sprintf("theory: TwoSigmaCapacity lambda=%v k=%d invalid", lambda, k))
	}
	cloud = lambda + 2*math.Sqrt(lambda)
	edge = lambda + 2*math.Sqrt(float64(k)*lambda)
	if cloud > 0 {
		overhead = edge / cloud
	}
	return cloud, edge, overhead
}

// TwoSigmaServers converts the two-sigma capacities into integer server
// counts for per-server rate μ.
func TwoSigmaServers(lambda float64, k int, mu float64) (cloudServers, edgeServers int) {
	if mu <= 0 {
		panic("theory: TwoSigmaServers needs positive mu")
	}
	cloud, edge, _ := TwoSigmaCapacity(lambda, k)
	return int(math.Ceil(cloud / mu)), int(math.Ceil(edge / mu))
}
