package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTwoSigmaCapacityFormula(t *testing.T) {
	cloud, edge, overhead := TwoSigmaCapacity(100, 4)
	if !close(cloud, 100+2*10, 1e-12) {
		t.Errorf("C_cloud = %v, want 120", cloud)
	}
	if !close(edge, 100+2*20, 1e-12) {
		t.Errorf("C_edge = %v, want 140", edge)
	}
	if !close(overhead, 140.0/120.0, 1e-12) {
		t.Errorf("overhead = %v", overhead)
	}
}

// TestEdgeAlwaysCostsMore: C_edge > C_cloud for every k > 1 (the §5.2
// claim), and equality at k=1.
func TestEdgeAlwaysCostsMore(t *testing.T) {
	f := func(lRaw uint16, kRaw uint8) bool {
		lambda := 1 + float64(lRaw%5000)
		k := 2 + int(kRaw%200)
		cloud, edge, _ := TwoSigmaCapacity(lambda, k)
		return edge > cloud
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	cloud, edge, overhead := TwoSigmaCapacity(50, 1)
	if cloud != edge || overhead != 1 {
		t.Error("k=1 edge capacity should equal cloud capacity")
	}
}

// TestOverheadGrowsWithK and shrinks with λ (smoothing benefit).
func TestOverheadTrends(t *testing.T) {
	_, _, o5 := TwoSigmaCapacity(100, 5)
	_, _, o50 := TwoSigmaCapacity(100, 50)
	if o50 <= o5 {
		t.Error("overhead should grow with k")
	}
	_, _, small := TwoSigmaCapacity(10, 10)
	_, _, large := TwoSigmaCapacity(10000, 10)
	if large >= small {
		t.Error("overhead should shrink as λ grows")
	}
}

func TestTwoSigmaServers(t *testing.T) {
	cs, es := TwoSigmaServers(100, 4, 13)
	if cs != int(math.Ceil(120.0/13)) {
		t.Errorf("cloud servers = %d", cs)
	}
	if es != int(math.Ceil(140.0/13)) {
		t.Errorf("edge servers = %d", es)
	}
	if es < cs {
		t.Error("edge should need at least as many servers")
	}
}

func TestMinEdgeServersBasic(t *testing.T) {
	// Generous Δn: one server suffices at low load.
	ki, ok := MinEdgeServers(0.5, 13, 2, 10, 5, 32)
	if !ok || ki != 1 {
		t.Errorf("low-load site: ki=%d ok=%v, want 1,true", ki, ok)
	}
	// Tiny Δn at high site load: needs more than its fair share.
	ki2, ok2 := MinEdgeServers(0.005, 13, 12, 60, 5, 32)
	if !ok2 {
		t.Fatal("should be satisfiable within 32 servers")
	}
	if ki2 <= 1 {
		t.Errorf("high-load tight-Δn site should need >1 server, got %d", ki2)
	}
}

// TestMinEdgeServersMonotone: shrinking Δn never reduces the requirement.
func TestMinEdgeServersMonotone(t *testing.T) {
	prev := 0
	for _, dn := range []float64{0.100, 0.050, 0.020, 0.010, 0.005} {
		ki, ok := MinEdgeServers(dn, 13, 10, 50, 5, 64)
		if !ok {
			t.Fatalf("unsatisfiable at dn=%v", dn)
		}
		if ki < prev {
			t.Fatalf("requirement shrank as Δn tightened: %d after %d", ki, prev)
		}
		prev = ki
	}
}

// TestMinEdgeServersAvoidsInversion: the returned k_i actually defeats
// Lemma 3.1 at the site.
func TestMinEdgeServersAvoidsInversion(t *testing.T) {
	dn, mu := 0.024, 13.0
	lambdaSite, lambdaTotal := 9.0, 45.0
	cloudK := 5
	ki, ok := MinEdgeServers(dn, mu, lambdaSite, lambdaTotal, cloudK, 64)
	if !ok {
		t.Fatal("expected feasible plan")
	}
	rhoSite := lambdaSite / (mu * float64(ki))
	rhoCloud := lambdaTotal / (mu * float64(cloudK))
	edgeTerm := math.Sqrt2 / mu / (math.Sqrt(float64(ki)) * (1 - rhoSite))
	cloudTerm := math.Sqrt2 / mu / (math.Sqrt(float64(cloudK)) * (1 - rhoCloud))
	if edgeTerm-cloudTerm > dn {
		t.Errorf("k_i=%d does not defeat the inversion condition", ki)
	}
	// And k_i−1 must fail (minimality), unless k_i is 1.
	if ki > 1 {
		rhoLess := lambdaSite / (mu * float64(ki-1))
		if rhoLess < 1 {
			edgeLess := math.Sqrt2 / mu / (math.Sqrt(float64(ki-1)) * (1 - rhoLess))
			if edgeLess-cloudTerm <= dn {
				t.Errorf("k_i=%d not minimal: %d already suffices", ki, ki-1)
			}
		}
	}
}

func TestMinEdgeServersInfeasible(t *testing.T) {
	// Site load beyond what maxServers can stabilize.
	_, ok := MinEdgeServers(0.010, 1, 100, 100, 5, 4)
	if ok {
		t.Error("expected infeasible plan with maxServers=4 and λ=100, μ=1")
	}
}

func TestPlanEdgeCapacity(t *testing.T) {
	lambdas := []float64{12, 6, 3, 2, 2}
	plan := PlanEdgeCapacity(0.024, 13, lambdas, 5, 1.0, 64)
	if !plan.Feasible {
		t.Fatal("plan should be feasible")
	}
	if len(plan.PerSite) != 5 {
		t.Fatalf("per-site length = %d", len(plan.PerSite))
	}
	// The busiest site gets at least as many servers as the quietest.
	if plan.PerSite[0] < plan.PerSite[4] {
		t.Errorf("capacity should follow load: %v", plan.PerSite)
	}
	var total int
	for _, k := range plan.PerSite {
		total += k
	}
	if total != plan.TotalEdge {
		t.Error("TotalEdge should sum per-site counts")
	}
	// Headroom inflates every site.
	padded := PlanEdgeCapacity(0.024, 13, lambdas, 5, 1.5, 64)
	for i := range lambdas {
		if padded.PerSite[i] < plan.PerSite[i] {
			t.Errorf("headroom reduced site %d capacity", i)
		}
	}
}

func TestPlanEdgeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("headroom < 1 should panic")
		}
	}()
	PlanEdgeCapacity(0.02, 13, []float64{1}, 5, 0.5, 8)
}

func TestTwoSigmaPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { TwoSigmaCapacity(-1, 5) },
		func() { TwoSigmaCapacity(10, 0) },
		func() { TwoSigmaServers(10, 5, 0) },
		func() { MinEdgeServers(0.01, 0, 1, 1, 5, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid capacity input should panic")
				}
			}()
			fn()
		}()
	}
}
