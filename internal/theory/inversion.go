package theory

import (
	"fmt"
	"math"
)

// Deployment describes one edge-vs-cloud comparison instance: an
// application that runs either on k servers behind one cloud queue, or
// distributed over k edge sites (ServersPerSite servers each). All
// latencies are in seconds.
type Deployment struct {
	K              int     // number of cloud servers / edge sites
	ServersPerSite int     // m servers at each edge site (paper default 1)
	Mu             float64 // per-server service rate, req/s
	EdgeRTT        float64 // n_edge, round-trip network latency to the edge
	CloudRTT       float64 // n_cloud, round-trip network latency to the cloud
}

// DeltaN returns Δn = n_cloud − n_edge, the network-latency advantage of
// the edge.
func (d Deployment) DeltaN() float64 { return d.CloudRTT - d.EdgeRTT }

// validate panics on nonsensical configurations.
func (d Deployment) validate() {
	if d.K <= 0 || d.Mu <= 0 || d.ServersPerSite <= 0 {
		panic(fmt.Sprintf("theory: invalid deployment %+v", d))
	}
}

// CloudServers returns the total number of cloud servers (k × m).
func (d Deployment) CloudServers() int { return d.K * d.ServersPerSite }

// Lemma31 evaluates the paper's Lemma 3.1 (M/M/1 edge sites vs M/M/k
// cloud, Whitt conditional waits): the edge end-to-end latency exceeds
// the cloud's whenever
//
//	Δn < √2 ( 1/(1−ρ_edge) − 1/(√k (1−ρ_cloud)) ) / μ
//
// The returned margin is (edge excess wait − Δn) in seconds: positive
// means performance inversion (edge worse), negative means the edge wins.
// When each edge site has m>1 servers, the edge term uses √m per Whitt.
func (d Deployment) Lemma31(rhoEdge, rhoCloud float64) (inverted bool, margin float64) {
	d.validate()
	we := WhittCondWait(d.ServersPerSite, rhoEdge, d.Mu)
	wc := WhittCondWait(d.CloudServers(), rhoCloud, d.Mu)
	margin = (we - wc) - d.DeltaN()
	return margin > 0, margin
}

// CutoffUtilization311 returns Corollary 3.1.1's cutoff edge utilization
// ρ*: for balanced load (ρ_edge = ρ_cloud) and identical server
// configurations, performance inversion occurs for all ρ > ρ*. Solving
// Lemma 3.1 at equality with m-server edge sites:
//
//	Δn = √2/μ · (1/√m − 1/√(km)) / (1−ρ)
//	ρ* = 1 − √2 (1/√m − 1/√(km)) / (μ Δn)
//
// With m=1 this is the paper's ρ* = 1 − √2(1−1/√k)/(μΔn). The result is
// clamped to [0, 1]: 0 means inversion at any load, 1 means never.
func (d Deployment) CutoffUtilization311() float64 {
	d.validate()
	dn := d.DeltaN()
	if dn <= 0 {
		return 0 // the cloud is at least as close; the edge can never win
	}
	m := float64(d.ServersPerSite)
	km := float64(d.CloudServers())
	rho := 1 - math.Sqrt2*(1/math.Sqrt(m)-1/math.Sqrt(km))/(d.Mu*dn)
	return clamp01(rho)
}

// CutoffUtilizationLimit312 returns Corollary 3.1.2's k→∞ limit of the
// cutoff utilization: ρ* = 1 − √2/(μ Δn) (for single-server sites).
func (d Deployment) CutoffUtilizationLimit312() float64 {
	d.validate()
	dn := d.DeltaN()
	if dn <= 0 {
		return 0
	}
	m := float64(d.ServersPerSite)
	return clamp01(1 - math.Sqrt2/(math.Sqrt(m)*d.Mu*dn))
}

// HardCloudRTTBound313 returns Corollary 3.1.3's hard lower bound on the
// cloud network RTT: if n_cloud is below this value (seconds), the edge
// yields worse end-to-end latency even with a 0 ms edge RTT.
func (d Deployment) HardCloudRTTBound313(rhoEdge, rhoCloud float64) float64 {
	d.validate()
	we := WhittCondWait(d.ServersPerSite, rhoEdge, d.Mu)
	wc := WhittCondWait(d.CloudServers(), rhoCloud, d.Mu)
	b := we - wc
	if b < 0 {
		return 0
	}
	return b
}

// Lemma32 evaluates the generalized G/G bound (paper Lemma 3.2 /
// Equation 18) using the Allen–Cunneen approximation with the paper's
// high-utilization Ps form. ca2Edge and ca2Cloud are the squared CoVs of
// inter-arrival times at one edge site and at the cloud; cb2 is the
// squared CoV of service times (identical hardware ⇒ shared).
// The returned margin is (edge wait − cloud wait − Δn); positive means
// inversion.
func (d Deployment) Lemma32(rhoEdge, rhoCloud, ca2Edge, ca2Cloud, cb2 float64) (inverted bool, margin float64) {
	d.validate()
	we := AllenCunneenWaitPaper(d.ServersPerSite, rhoEdge, d.Mu, ca2Edge, cb2)
	wc := AllenCunneenWaitPaper(d.CloudServers(), rhoCloud, d.Mu, ca2Cloud, cb2)
	margin = (we - wc) - d.DeltaN()
	return margin > 0, margin
}

// Corollary321Margin returns the k→∞ limit of Lemma 3.2: the cloud term
// vanishes and inversion depends only on the edge workload's burstiness:
//
//	Δn < ρ/(μ(1−ρ)) · (ca²_edge + cb²)/2
func (d Deployment) Corollary321Margin(rhoEdge, ca2Edge, cb2 float64) (inverted bool, margin float64) {
	d.validate()
	we := AllenCunneenWaitPaper(1, rhoEdge, d.Mu, ca2Edge, cb2)
	margin = we - d.DeltaN()
	return margin > 0, margin
}

// CutoffUtilizationGG numerically solves Lemma 3.2 at equality for the
// balanced case (ρ_edge = ρ_cloud = ρ) by bisection, returning the cutoff
// utilization above which inversion occurs under general arrival/service
// variability. Returns 1 if no inversion below saturation, 0 if inversion
// at any load.
func (d Deployment) CutoffUtilizationGG(ca2Edge, ca2Cloud, cb2 float64) float64 {
	d.validate()
	f := func(rho float64) float64 {
		_, m := d.Lemma32(rho, rho, ca2Edge, ca2Cloud, cb2)
		return m
	}
	return bisectCutoff(f)
}

// CutoffUtilizationExactMM numerically solves the exact M/M comparison
// (M/M/m edge site vs M/M/km cloud, unconditional Erlang-C waits) for the
// balanced-utilization crossover. This is the reference value the DES
// experiments are validated against.
func (d Deployment) CutoffUtilizationExactMM() float64 {
	d.validate()
	f := func(rho float64) float64 {
		we := MMcWait(d.ServersPerSite, rho, d.Mu)
		wc := MMcWait(d.CloudServers(), rho, d.Mu)
		return (we - wc) - d.DeltaN()
	}
	return bisectCutoff(f)
}

// CutoffUtilizationExactGG numerically solves the Allen–Cunneen
// comparison with the regime-switching Ps (not the paper's fixed
// high-utilization branch) for the balanced crossover. This tracks the
// DES results closely across the whole utilization range.
func (d Deployment) CutoffUtilizationExactGG(ca2Edge, ca2Cloud, cb2 float64) float64 {
	d.validate()
	f := func(rho float64) float64 {
		we := AllenCunneenWait(d.ServersPerSite, rho, d.Mu, ca2Edge, cb2)
		wc := AllenCunneenWait(d.CloudServers(), rho, d.Mu, ca2Cloud, cb2)
		return (we - wc) - d.DeltaN()
	}
	return bisectCutoff(f)
}

// bisectCutoff finds the smallest ρ in (0,1) where f crosses from
// negative (edge wins) to positive (inversion). f must be increasing in ρ
// for ρ near the crossover, which holds for all wait-difference forms
// used here.
func bisectCutoff(f func(rho float64) float64) float64 {
	const eps = 1e-9
	lo, hi := eps, 1-eps
	if f(lo) > 0 {
		return 0 // inverted even at vanishing load
	}
	if f(hi) < 0 {
		return 1 // never inverted below saturation
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// SkewedEdgeCondWait returns the edge-wide average conditional waiting
// time under a spatial skew (paper Equation 20 and Lemma 3.3): given
// per-site arrival rates λ_i and per-site service rate μ (single-server
// sites), the weighted average Σ w_i √2/(μ(1−ρ_i)) with w_i = λ_i/Σλ.
// Sites at or beyond saturation make the average infinite.
func SkewedEdgeCondWait(lambdas []float64, mu float64) float64 {
	if len(lambdas) == 0 || mu <= 0 {
		panic("theory: SkewedEdgeCondWait needs rates and positive mu")
	}
	var total float64
	for _, l := range lambdas {
		if l < 0 {
			panic("theory: negative arrival rate")
		}
		total += l
	}
	if total == 0 {
		return 0
	}
	var avg float64
	for _, l := range lambdas {
		rho := l / mu
		if rho >= 1 {
			return math.Inf(1)
		}
		w := l / total
		avg += w * math.Sqrt2 / (mu * (1 - rho))
	}
	return avg
}

// Lemma33 evaluates the skewed-workload inversion condition: with total
// load Σλ_i spread unevenly over k single-server edge sites versus a
// k-server cloud seeing Σλ_i, inversion occurs when
//
//	Δn < Σ_i w_i √2/(μ(1−ρ_i)) − √2/(√k μ (1−ρ_cloud))
func (d Deployment) Lemma33(lambdas []float64) (inverted bool, margin float64) {
	d.validate()
	if len(lambdas) != d.K {
		panic(fmt.Sprintf("theory: Lemma33 expects %d per-site rates, got %d", d.K, len(lambdas)))
	}
	var total float64
	for _, l := range lambdas {
		total += l
	}
	rhoCloud := total / (float64(d.CloudServers()) * d.Mu)
	we := SkewedEdgeCondWait(lambdas, d.Mu)
	wc := WhittCondWait(d.CloudServers(), rhoCloud, d.Mu)
	margin = (we - wc) - d.DeltaN()
	return margin > 0, margin
}
