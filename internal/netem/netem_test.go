package netem

import (
	"math"
	"math/rand"
	"testing"
)

func TestConstantPath(t *testing.T) {
	p := Constant("c", 0.025)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := p.Sample(rng); got != 0.025 {
			t.Fatalf("constant path sampled %v", got)
		}
	}
	if p.MeanRTT() != 0.025 {
		t.Errorf("MeanRTT = %v", p.MeanRTT())
	}
}

func TestJitteredPathRange(t *testing.T) {
	p := Jittered("j", 0.020, 0.004)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		v := p.Sample(rng)
		if v < 0.020-1e-12 || v > 0.024+1e-12 {
			t.Fatalf("jittered sample %v outside [20ms, 24ms]", v)
		}
	}
	if math.Abs(p.MeanRTT()-0.022) > 1e-9 {
		t.Errorf("MeanRTT = %v, want 0.022", p.MeanRTT())
	}
}

func TestJitteredZeroJitterIsConstant(t *testing.T) {
	p := Jittered("z", 0.010, 0)
	rng := rand.New(rand.NewSource(3))
	if p.Sample(rng) != 0.010 {
		t.Error("zero jitter should be constant")
	}
}

func TestHeavyTailedMoments(t *testing.T) {
	p := HeavyTailed("h", 0.050, 1.5)
	rng := rand.New(rand.NewSource(4))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.Sample(rng)
	}
	mean := sum / n
	if math.Abs(mean-0.050) > 0.004 {
		t.Errorf("heavy-tailed mean = %v, want ~0.050", mean)
	}
}

func TestSampleClampsNegative(t *testing.T) {
	// A path with a distribution that can go negative must clamp to 0.
	p := Jittered("n", -0.010, 0.001)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if p.Sample(rng) < 0 {
			t.Fatal("negative RTT escaped clamping")
		}
	}
}

func TestPaperScenarios(t *testing.T) {
	scs := PaperScenarios()
	if len(scs) != 4 {
		t.Fatalf("expected 4 paper scenarios, got %d", len(scs))
	}
	// Ordered by increasing cloud distance, and all share the 1 ms edge.
	prev := 0.0
	for _, s := range scs {
		if s.Cloud.MeanRTT() <= prev {
			t.Errorf("scenario %s out of order", s.Name)
		}
		prev = s.Cloud.MeanRTT()
		if math.Abs(s.Edge.MeanRTT()-0.0011) > 0.0005 {
			t.Errorf("scenario %s edge RTT = %v, want ~1ms", s.Name, s.Edge.MeanRTT())
		}
		if s.DeltaN() <= 0 {
			t.Errorf("scenario %s has non-positive Δn", s.Name)
		}
	}
	// The paper's nominal distances.
	wantMs := map[string]float64{
		"nearby-13ms": 13, "typical-25ms": 25, "distant-54ms": 54, "transcontinental-80ms": 80,
	}
	for _, s := range scs {
		want := wantMs[s.Name]
		got := s.Cloud.MeanRTT() * 1000
		if math.Abs(got-want) > 5 {
			t.Errorf("scenario %s cloud RTT = %vms, want ~%vms", s.Name, got, want)
		}
	}
}

func TestScenarioByName(t *testing.T) {
	if _, ok := ScenarioByName("typical-25ms"); !ok {
		t.Error("typical-25ms should exist")
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Error("unknown scenario should report !ok")
	}
}
