// Package netem models the network path between clients and servers. The
// paper's experiments treat the network as an additive round-trip latency
// with modest jitter measured between EC2 regions; netem reproduces that
// with parametric RTT models and provides the paper's scenario presets
// (edge 1 ms; clouds at 13/15, 25, 54, and 80 ms).
package netem

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
)

// Path models the round-trip latency of one network path.
type Path struct {
	Name string
	RTT  dist.Dist
}

// Sample draws one round-trip latency in seconds.
func (p Path) Sample(rng *rand.Rand) float64 {
	v := p.RTT.Sample(rng)
	if v < 0 {
		return 0
	}
	return v
}

// MeanRTT returns the expected round-trip latency in seconds.
func (p Path) MeanRTT() float64 { return p.RTT.Mean() }

// String describes the path.
func (p Path) String() string { return fmt.Sprintf("Path(%s, rtt=%s)", p.Name, p.RTT) }

// Constant returns a path with a fixed RTT in seconds.
func Constant(name string, rttSeconds float64) Path {
	return Path{Name: name, RTT: dist.Deterministic{Value: rttSeconds}}
}

// Jittered returns a path whose RTT is base plus uniform jitter in
// [0, jitter] seconds, approximating the paper's "RTT between 25 to 28
// ms" style measurements.
func Jittered(name string, base, jitter float64) Path {
	if jitter <= 0 {
		return Constant(name, base)
	}
	return Path{Name: name, RTT: dist.Shifted{D: dist.NewUniform(0, jitter), Offset: base}}
}

// HeavyTailed returns a path with a lognormal RTT fitted to the given
// mean and SCV, modeling last-mile links (e.g. cellular) whose latency
// distributions have long tails.
func HeavyTailed(name string, mean, scv float64) Path {
	return Path{Name: name, RTT: dist.NewLogNormalMeanSCV(mean, scv)}
}

// Paper scenario presets (§4.1). All values in seconds. The edge is
// emulated at 1 ms (two availability zones in one region); clouds are the
// four EC2 region pairs the paper measures.
var (
	// EdgePath is the 1 ms best-case edge deployment.
	EdgePath = Jittered("edge-1ms", 0.001, 0.0002)
	// CloudNearby is us-east-2 → us-east-1 (Ohio→Virginia), ~13–15 ms.
	CloudNearby = Jittered("cloud-nearby-13ms", 0.013, 0.002)
	// CloudTypical is Ireland → Frankfurt / Ohio → Montreal, ~25 ms
	// (paper uses Δn ≈ 25–30 ms for the "typical" scenario).
	CloudTypical = Jittered("cloud-typical-25ms", 0.025, 0.003)
	// CloudDistant is Ohio → N. California, ~54 ms.
	CloudDistant = Jittered("cloud-distant-54ms", 0.054, 0.006)
	// CloudTranscontinental is us-east-1 → Ireland, ~80 ms.
	CloudTranscontinental = Jittered("cloud-transcontinental-80ms", 0.080, 0.008)
)

// Scenario pairs an edge path with a cloud path, as in the paper's four
// experimental configurations.
type Scenario struct {
	Name  string
	Edge  Path
	Cloud Path
}

// DeltaN returns the mean network-latency advantage of the edge.
func (s Scenario) DeltaN() float64 { return s.Cloud.MeanRTT() - s.Edge.MeanRTT() }

// PaperScenarios returns the paper's four edge/cloud location pairs in
// increasing cloud distance.
func PaperScenarios() []Scenario {
	return []Scenario{
		{Name: "nearby-13ms", Edge: EdgePath, Cloud: CloudNearby},
		{Name: "typical-25ms", Edge: EdgePath, Cloud: CloudTypical},
		{Name: "distant-54ms", Edge: EdgePath, Cloud: CloudDistant},
		{Name: "transcontinental-80ms", Edge: EdgePath, Cloud: CloudTranscontinental},
	}
}

// ScenarioByName looks up a paper scenario; ok is false if absent.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range PaperScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
