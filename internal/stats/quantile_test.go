package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleQuantileKnown(t *testing.T) {
	s := NewSample(5)
	for _, x := range []float64{10, 20, 30, 40, 50} {
		s.Add(x)
	}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleQuantileInterpolation(t *testing.T) {
	s := NewSample(2)
	s.Add(0)
	s.Add(10)
	if got := s.Quantile(0.5); !almostEqual(got, 5, 1e-12) {
		t.Errorf("median of {0,10} = %v, want 5", got)
	}
	if got := s.Quantile(0.95); !almostEqual(got, 9.5, 1e-12) {
		t.Errorf("p95 of {0,10} = %v, want 9.5", got)
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("empty sample should report zeros")
	}
	s.Add(42)
	if s.Quantile(0.01) != 42 || s.Quantile(0.99) != 42 || s.Median() != 42 {
		t.Error("single-value quantiles should equal the value")
	}
}

// TestSampleQuantileMonotone: quantiles are non-decreasing in q.
func TestSampleQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSample(0)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64())
		}
		prev := s.Quantile(0)
		for q := 0.05; q <= 1.0; q += 0.05 {
			cur := s.Quantile(q)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSampleQuantileBounds: quantiles stay within [min, max].
func TestSampleQuantileBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		s := NewSample(len(xs))
		s.AddAll(xs)
		lo, hi := s.Quantile(0), s.Quantile(1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < lo || v > hi {
				return false
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return lo == sorted[0] && hi == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleMergeAndReset(t *testing.T) {
	a, b := NewSample(2), NewSample(2)
	a.AddAll([]float64{1, 3})
	b.AddAll([]float64{2, 4})
	a.Merge(b)
	if a.N() != 4 {
		t.Fatalf("merged N = %d, want 4", a.N())
	}
	if got := a.Median(); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("merged median = %v, want 2.5", got)
	}
	a.Reset()
	if a.N() != 0 {
		t.Error("Reset did not clear sample")
	}
}

func TestSampleStdDev(t *testing.T) {
	s := NewSample(4)
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Known dataset: population sd = 2, sample sd = 2.138...
	if got := s.StdDev(); !almostEqual(got, 2.13809, 1e-4) {
		t.Errorf("StdDev = %v, want 2.13809", got)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
}

// TestP2AgainstExact: the P² streaming estimate should land near the
// exact quantile for smooth distributions.
func TestP2AgainstExact(t *testing.T) {
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		rng := rand.New(rand.NewSource(42))
		est := NewP2Quantile(q)
		exact := NewSample(100000)
		for i := 0; i < 100000; i++ {
			x := rng.ExpFloat64()
			est.Add(x)
			exact.Add(x)
		}
		want := exact.Quantile(q)
		got := est.Value()
		if !almostEqual(got, want, 0.05) {
			t.Errorf("P2(%v) = %v, exact = %v", q, got, want)
		}
	}
}

func TestP2SmallCounts(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Error("empty estimator should return 0")
	}
	est.Add(3)
	est.Add(1)
	est.Add(2)
	v := est.Value()
	if v < 1 || v > 3 {
		t.Errorf("small-count estimate %v outside data range", v)
	}
	if est.N() != 3 {
		t.Errorf("N = %d, want 3", est.N())
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) should panic", q)
				}
			}()
			NewP2Quantile(q)
		}()
	}
}

// TestP2Deterministic: feeding a constant keeps the estimate at it.
func TestP2Deterministic(t *testing.T) {
	est := NewP2Quantile(0.95)
	for i := 0; i < 1000; i++ {
		est.Add(7)
	}
	if !almostEqual(est.Value(), 7, 1e-9) {
		t.Errorf("constant stream estimate = %v, want 7", est.Value())
	}
}
