package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{0, 0.5, 1, 5.5, 9.99} {
		h.Add(x)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5", h.N())
	}
	if h.Count(0) != 2 { // 0 and 0.5
		t.Errorf("bin 0 = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 1 || h.Count(5) != 1 || h.Count(9) != 1 {
		t.Error("values landed in wrong bins")
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(2)
	h.Add(1) // hi is exclusive
	if h.Underflow() != 1 {
		t.Errorf("underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.N() != 3 {
		t.Errorf("N = %d, want 3", h.N())
	}
}

// TestHistogramConservation: every observation is counted exactly once.
func TestHistogramConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-1, 1, 16)
		n := rng.Intn(1000)
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64())
		}
		var binned int64
		for _, c := range h.Bins() {
			binned += c
		}
		return binned+h.Underflow()+h.Overflow() == int64(n) && h.N() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Errorf("median = %v, want ~50", med)
	}
	p95 := h.Quantile(0.95)
	if p95 < 90 || p95 > 100 {
		t.Errorf("p95 = %v, want ~95", p95)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if !strings.Contains(h.Render(20), "empty") {
		t.Error("empty histogram should render a placeholder")
	}
	h.Add(1)
	h.Add(1.2)
	h.Add(9)
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Error("render should contain bars")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram should panic")
		}
	}()
	NewHistogram(5, 1, 10)
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(10, -3, 2)
	for _, x := range []float64{0.001, 0.05, 0.5, 5, 50, 500} {
		h.Add(x)
	}
	h.Add(0)
	h.Add(-1)
	if h.N() != 8 {
		t.Fatalf("N = %d, want 8", h.N())
	}
	if h.NonPositive() != 2 {
		t.Errorf("non-positive = %d, want 2", h.NonPositive())
	}
	c, lo, hi := h.Bucket(0) // [1e-3, 1e-2)
	if c != 1 || !almostEqual(lo, 1e-3, 1e-12) || !almostEqual(hi, 1e-2, 1e-12) {
		t.Errorf("bucket 0: count=%d lo=%v hi=%v", c, lo, hi)
	}
	// 500 exceeds 10^3 bound? maxExp=2 → last bucket [100,1000); 500 in it.
	cLast, _, _ := h.Bucket(h.NumBuckets() - 1)
	if cLast != 1 {
		t.Errorf("last bucket = %d, want 1", cLast)
	}
}

func TestLogHistogramClamping(t *testing.T) {
	h := NewLogHistogram(2, 0, 3)
	h.Add(0.001) // below min exponent → clamped into bucket 0
	h.Add(1e9)   // above max → clamped into last bucket
	c0, _, _ := h.Bucket(0)
	cN, _, _ := h.Bucket(h.NumBuckets() - 1)
	if c0 != 1 || cN != 1 {
		t.Errorf("clamping failed: first=%d last=%d", c0, cN)
	}
}
