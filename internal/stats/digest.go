package stats

import "fmt"

// Mode selects how a Digest stores its observations.
type Mode int

const (
	// Exact retains every observation in a Sample: exact quantiles,
	// O(N) memory. The right choice for small runs and for figures that
	// need full distributions (box-plot outliers, violin curves).
	Exact Mode = iota
	// Bounded keeps O(1) state: running moments via Stream plus P²
	// streaming estimators at fixed probe quantiles. The right choice
	// for long trace replays where retaining millions of latencies
	// would dominate memory.
	Bounded
)

// String names the mode.
func (m Mode) String() string {
	if m == Bounded {
		return "bounded"
	}
	return "exact"
}

// digestProbes are the quantiles tracked in Bounded mode. P95 and P99
// are the paper's tail metrics; the quartiles feed box plots.
var digestProbes = [...]float64{0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

// Digest is a latency collector with a selectable memory model: Exact
// mode wraps a Sample (every observation retained), Bounded mode keeps
// running moments and P² quantile estimates in constant space. The zero
// value is an empty Exact digest, ready to use.
//
// A Digest is a value type but shares internal state with its copies;
// copy one only after the run that fills it has finished.
type Digest struct {
	mode   Mode
	stream Stream  // moments, min/max, count — maintained in both modes
	sample *Sample // Exact mode, lazily allocated
	p2     *[len(digestProbes)]*P2Quantile

	// Merging two bounded digests cannot replay observations through
	// the P² estimators, so foreign data folds into a count-weighted
	// overlay of probe estimates instead.
	mergedQ [len(digestProbes)]float64
	mergedN int64
}

// NewDigest returns a digest in the given mode. In Exact mode sizeHint
// pre-allocates the retained sample (0 is fine); Bounded ignores it.
func NewDigest(mode Mode, sizeHint int) Digest {
	d := Digest{mode: mode}
	if mode == Exact && sizeHint > 0 {
		d.sample = NewSample(sizeHint)
	}
	if mode == Bounded {
		d.initP2()
	}
	return d
}

func (d *Digest) initP2() {
	var bank [len(digestProbes)]*P2Quantile
	for i, p := range digestProbes {
		bank[i] = NewP2Quantile(p)
	}
	d.p2 = &bank
}

// SetBounded switches an empty digest to Bounded mode. Switching after
// observations have been recorded panics: the retained data cannot be
// replayed through the streaming estimators.
func (d *Digest) SetBounded() {
	if d.mode == Bounded {
		return
	}
	if d.stream.N() > 0 {
		panic(fmt.Sprintf("stats: SetBounded on a digest holding %d observations", d.stream.N()))
	}
	d.mode = Bounded
	d.sample = nil
	d.initP2()
}

// Mode reports the digest's memory model.
func (d *Digest) Mode() Mode { return d.mode }

// Add records one observation.
func (d *Digest) Add(x float64) {
	d.stream.Add(x)
	if d.mode == Bounded {
		for _, est := range d.p2 {
			est.Add(x)
		}
		return
	}
	if d.sample == nil {
		d.sample = &Sample{}
	}
	d.sample.Add(x)
}

// Merge folds other into d. Two Exact digests merge exactly. When either
// side is Bounded the moments (mean, variance, min, max, count) still
// merge exactly, but quantiles become a count-weighted combination of
// the two sides' probe estimates — an approximation adequate for the
// aggregate wait summaries it serves.
func (d *Digest) Merge(other *Digest) {
	if other.stream.N() == 0 {
		return
	}
	if d.mode == Exact && other.mode == Exact {
		d.stream.Merge(&other.stream)
		if other.sample != nil {
			if d.sample == nil {
				d.sample = &Sample{}
			}
			d.sample.Merge(other.sample)
		}
		return
	}
	// At least one side is bounded: snapshot both sides' probe
	// estimates, rebuild the overlay as their count-weighted average,
	// and reset the live estimators (their information now lives in the
	// overlay).
	dN, oN := d.stream.N(), other.stream.N()
	for i, p := range digestProbes {
		ov := other.Quantile(p)
		if dN == 0 {
			d.mergedQ[i] = ov
			continue
		}
		dv := d.Quantile(p)
		d.mergedQ[i] = (dv*float64(dN) + ov*float64(oN)) / float64(dN+oN)
	}
	d.mergedN = dN + oN
	d.mode = Bounded
	d.sample = nil
	d.initP2()
	d.stream.Merge(&other.stream)
}

// N returns the number of observations recorded.
func (d *Digest) N() int { return int(d.stream.N()) }

// Mean returns the arithmetic mean, or 0 when empty.
func (d *Digest) Mean() float64 { return d.stream.Mean() }

// StdDev returns the sample standard deviation.
func (d *Digest) StdDev() float64 { return d.stream.StdDev() }

// Variance returns the unbiased sample variance.
func (d *Digest) Variance() float64 { return d.stream.Variance() }

// Min returns the smallest observation, or 0 when empty.
func (d *Digest) Min() float64 { return d.stream.Min() }

// Max returns the largest observation, or 0 when empty.
func (d *Digest) Max() float64 { return d.stream.Max() }

// Quantile returns the q-th quantile. Exact mode computes it from the
// retained sample; Bounded mode interpolates between the tracked probe
// estimates, anchored at the true min and max.
func (d *Digest) Quantile(q float64) float64 {
	if d.mode == Exact {
		if d.sample == nil {
			return 0
		}
		return d.sample.Quantile(q)
	}
	if d.stream.N() == 0 {
		return 0
	}
	if q <= 0 {
		return d.stream.Min()
	}
	if q >= 1 {
		return d.stream.Max()
	}
	// Piecewise-linear through (0, min), (probe_i, est_i)..., (1, max).
	prevQ, prevV := 0.0, d.stream.Min()
	for i, p := range digestProbes {
		v := d.probeValue(i)
		if q <= p {
			return interp(q, prevQ, prevV, p, v)
		}
		prevQ, prevV = p, v
	}
	return interp(q, prevQ, prevV, 1, d.stream.Max())
}

// probeValue returns the digest's estimate at digestProbes[i], blending
// the live P² estimator with the merge overlay when both hold data.
func (d *Digest) probeValue(i int) float64 {
	own := int64(d.p2[i].N())
	switch {
	case d.mergedN == 0:
		return d.p2[i].Value()
	case own == 0:
		return d.mergedQ[i]
	default:
		return (d.p2[i].Value()*float64(own) + d.mergedQ[i]*float64(d.mergedN)) /
			float64(own+d.mergedN)
	}
}

func interp(q, q0, v0, q1, v1 float64) float64 {
	if q1 <= q0 {
		return v1
	}
	return v0 + (q-q0)/(q1-q0)*(v1-v0)
}

// Median returns the 50th percentile.
func (d *Digest) Median() float64 { return d.Quantile(0.5) }

// P95 returns the 95th percentile, the paper's tail-latency metric.
func (d *Digest) P95() float64 { return d.Quantile(0.95) }

// P99 returns the 99th percentile.
func (d *Digest) P99() float64 { return d.Quantile(0.99) }

// Values returns the retained observations in Exact mode (sorted,
// owned by the digest) and nil in Bounded mode.
func (d *Digest) Values() []float64 {
	if d.mode == Exact && d.sample != nil {
		return d.sample.Values()
	}
	return nil
}

// ExactSample exposes the retained sample in Exact mode, or nil in
// Bounded mode. Callers must not modify it.
func (d *Digest) ExactSample() *Sample {
	if d.mode == Exact {
		return d.sample
	}
	return nil
}

// Box computes the box-plot summary. Exact mode delegates to BoxPlotOf
// (including outlier counting); Bounded mode builds the five-number
// summary from the probe estimates with no outlier count.
func (d *Digest) Box(label string) BoxPlot {
	if d.mode == Exact {
		if d.sample == nil {
			return BoxPlot{Label: label}
		}
		return BoxPlotOf(label, d.sample)
	}
	bp := BoxPlot{Label: label, N: d.N()}
	if bp.N == 0 {
		return bp
	}
	bp.Min = d.stream.Min()
	bp.Q1 = d.Quantile(0.25)
	bp.Median = d.Quantile(0.5)
	bp.Q3 = d.Quantile(0.75)
	bp.Max = d.stream.Max()
	bp.Mean = d.Mean()
	iqr := bp.Q3 - bp.Q1
	bp.LowerFence = max(bp.Min, bp.Q1-1.5*iqr)
	bp.UpperFence = min(bp.Max, bp.Q3+1.5*iqr)
	return bp
}

// Summarize computes a DistSummary at the given probes (nil = 1%..99%).
// Bounded mode interpolates each probe from the digest's estimates.
func (d *Digest) Summarize(label string, probes []float64) DistSummary {
	if d.mode == Exact {
		s := d.sample
		if s == nil {
			s = &Sample{}
		}
		return SummarizeDist(label, s, probes)
	}
	if probes == nil {
		probes = make([]float64, 0, 99)
		for i := 1; i <= 99; i++ {
			probes = append(probes, float64(i)/100)
		}
	}
	out := DistSummary{Label: label, N: d.N(), Mean: d.Mean(), StdDev: d.StdDev()}
	if out.Mean != 0 {
		out.CoV = out.StdDev / out.Mean
	}
	for _, q := range probes {
		out.Quantiles = append(out.Quantiles, QuantilePoint{Q: q, Value: d.Quantile(q)})
	}
	return out
}
