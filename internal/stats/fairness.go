package stats

import "math"

// Jain computes Jain's fairness index over a set of non-negative
// allocations (throughputs, admission rates, mean latencies inverted —
// anything "share-like"):
//
//	J(x) = (Σ xᵢ)² / (n · Σ xᵢ²)
//
// The index is 1 when every share is equal and 1/n when a single
// participant holds everything, independent of scale. Used to score
// how evenly an admission policy treats SLO classes: feed it each
// class's served fraction or admission rate.
//
// Entries that are NaN or infinite poison ratio arithmetic, so the
// index is NaN if any entry is; an empty or all-zero input returns 0
// (no allocation to be fair about). Negative entries are accepted but
// make the index meaningless — callers feed rates and counts, which
// cannot go negative.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return math.NaN()
		}
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
