package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample collects observations for exact quantile computation. For the
// experiment sizes used in edgebench (10⁴–10⁶ latencies) exact quantiles
// are affordable and avoid approximation error in tail-latency figures.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a Sample with capacity pre-allocated for n values.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll records a batch of observations.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// Merge folds the observations of other into s.
func (s *Sample) Merge(other *Sample) {
	s.xs = append(s.xs, other.xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the observations sorted ascending. The returned slice is
// owned by the Sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return s.xs
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return s.xs[0]
	}
	if q <= 0 {
		s.ensureSorted()
		return s.xs[0]
	}
	if q >= 1 {
		s.ensureSorted()
		return s.xs[n-1]
	}
	s.ensureSorted()
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s.xs[n-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Mean returns the arithmetic mean of the sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var m2 float64
	for _, x := range s.xs {
		d := x - m
		m2 += d * d
	}
	return math.Sqrt(m2 / float64(n-1))
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// P95 returns the 95th percentile, the paper's tail-latency metric.
func (s *Sample) P95() float64 { return s.Quantile(0.95) }

// P99 returns the 99th percentile.
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// Reset discards all observations, keeping the backing array.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = true
}

// P2Quantile is a streaming quantile estimator using the P² algorithm
// (Jain & Chlamtac, 1985). It uses O(1) memory, making it suitable for
// long trace replays where storing every latency would be wasteful.
type P2Quantile struct {
	p       float64
	n       [5]int     // marker positions (1-based counts)
	np      [5]float64 // desired marker positions
	dn      [5]float64 // desired position increments
	q       [5]float64 // marker heights
	count   int
	initBuf []float64
}

// NewP2Quantile returns an estimator for quantile p in (0, 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P2 quantile p=%v out of (0,1)", p))
	}
	est := &P2Quantile{p: p}
	est.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return est
}

// Add records one observation.
func (e *P2Quantile) Add(x float64) {
	e.count++
	if e.count <= 5 {
		e.initBuf = append(e.initBuf, x)
		if e.count == 5 {
			sort.Float64s(e.initBuf)
			for i := 0; i < 5; i++ {
				e.q[i] = e.initBuf[i]
				e.n[i] = i + 1
			}
			p := e.p
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.initBuf = nil
		}
		return
	}

	// Find cell k such that q[k] <= x < q[k+1], adjusting extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for i := 0; i < 4; i++ {
			if x >= e.q[i] && x < e.q[i+1] {
				k = i
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}

	// Adjust interior markers if needed.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - float64(e.n[i])
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			qNew := e.parabolic(i, sign)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.n[i] += int(sign)
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	ni := float64(e.n[i])
	nip := float64(e.n[i+1])
	nim := float64(e.n[i-1])
	return e.q[i] + d/(nip-nim)*((ni-nim+d)*(e.q[i+1]-e.q[i])/(nip-ni)+
		(nip-ni-d)*(e.q[i]-e.q[i-1])/(ni-nim))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	di := int(d)
	return e.q[i] + d*(e.q[i+di]-e.q[i])/float64(e.n[i+di]-e.n[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact quantile of the buffer.
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		buf := append([]float64(nil), e.initBuf...)
		sort.Float64s(buf)
		idx := int(e.p * float64(len(buf)))
		if idx >= len(buf) {
			idx = len(buf) - 1
		}
		return buf[idx]
	}
	return e.q[2]
}

// N returns the number of observations recorded.
func (e *P2Quantile) N() int { return e.count }
