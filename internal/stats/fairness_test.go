package stats

import (
	"math"
	"testing"
)

func TestJain(t *testing.T) {
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

	if got := Jain(nil); got != 0 {
		t.Errorf("Jain(nil) = %v, want 0", got)
	}
	if got := Jain([]float64{0, 0, 0}); got != 0 {
		t.Errorf("Jain(zeros) = %v, want 0", got)
	}
	if got := Jain([]float64{5, 5, 5, 5}); !approx(got, 1) {
		t.Errorf("Jain(equal) = %v, want 1", got)
	}
	// Scale invariance: J(cx) == J(x).
	if a, b := Jain([]float64{1, 2, 3}), Jain([]float64{10, 20, 30}); !approx(a, b) {
		t.Errorf("Jain not scale-invariant: %v vs %v", a, b)
	}
	// One participant holds everything: J = 1/n.
	if got := Jain([]float64{7, 0, 0, 0}); !approx(got, 0.25) {
		t.Errorf("Jain(single) = %v, want 0.25", got)
	}
	// Known value: (1+3)^2 / (2 * (1+9)) = 16/20.
	if got := Jain([]float64{1, 3}); !approx(got, 0.8) {
		t.Errorf("Jain(1,3) = %v, want 0.8", got)
	}
	if got := Jain([]float64{1, math.NaN()}); !math.IsNaN(got) {
		t.Errorf("Jain with NaN entry = %v, want NaN", got)
	}
	if got := Jain([]float64{1, math.Inf(1)}); !math.IsNaN(got) {
		t.Errorf("Jain with Inf entry = %v, want NaN", got)
	}
}
