package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestBatchMeansIIDCoverage(t *testing.T) {
	// For i.i.d. normals the batch-means CI should cover the true mean in
	// ~95% of replications; with 40 replications expect at least 30 hits.
	rng := rand.New(rand.NewSource(10))
	hits := 0
	const reps = 40
	for r := 0; r < reps; r++ {
		xs := make([]float64, 2000)
		for i := range xs {
			xs[i] = 5 + rng.NormFloat64()
		}
		bm := ComputeBatchMeans(xs, 20)
		if math.Abs(bm.Mean-5) <= bm.HalfWidth {
			hits++
		}
	}
	if hits < 30 {
		t.Errorf("CI covered the true mean in %d/%d replications", hits, reps)
	}
}

// TestBatchMeansWiderThanNaiveForCorrelated: on an AR(1) series, the
// batch-means CI must exceed the (invalid) i.i.d. CI — the whole point
// of the method.
func TestBatchMeansWiderThanNaiveForCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 20000
	xs := make([]float64, n)
	phi := 0.9
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	bm := ComputeBatchMeans(xs, 20)
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	naive := s.ConfidenceInterval95()
	if bm.HalfWidth <= naive {
		t.Errorf("batch-means CI %v should exceed naive CI %v on AR(1)", bm.HalfWidth, naive)
	}
}

func TestBatchMeansBookkeeping(t *testing.T) {
	xs := make([]float64, 105)
	for i := range xs {
		xs[i] = float64(i)
	}
	bm := ComputeBatchMeans(xs, 10)
	if bm.Batches != 10 || bm.BatchSize != 10 {
		t.Errorf("batches=%d size=%d, want 10/10", bm.Batches, bm.BatchSize)
	}
	// Grand mean over the used prefix (0..99) is 49.5.
	if math.Abs(bm.Mean-49.5) > 1e-9 {
		t.Errorf("mean = %v, want 49.5", bm.Mean)
	}
}

func TestBatchMeansPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ComputeBatchMeans([]float64{1, 2, 3}, 1) },
		func() { ComputeBatchMeans([]float64{1}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid batch means input should panic")
				}
			}()
			fn()
		}()
	}
}

func TestLag1Autocorrelation(t *testing.T) {
	// White noise: near zero.
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if r := Lag1Autocorrelation(xs); math.Abs(r) > 0.03 {
		t.Errorf("white-noise lag-1 = %v, want ~0", r)
	}
	// AR(1) with phi=0.8: near 0.8.
	ar := make([]float64, 20000)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.8*ar[i-1] + rng.NormFloat64()
	}
	if r := Lag1Autocorrelation(ar); math.Abs(r-0.8) > 0.05 {
		t.Errorf("AR(1) lag-1 = %v, want ~0.8", r)
	}
	// Degenerate inputs.
	if Lag1Autocorrelation([]float64{1, 2}) != 0 {
		t.Error("short series should return 0")
	}
	if Lag1Autocorrelation([]float64{3, 3, 3, 3}) != 0 {
		t.Error("constant series should return 0")
	}
}

func TestRecommendBatches(t *testing.T) {
	if got := RecommendBatches(10); got != 2 {
		t.Errorf("tiny n: %d, want 2", got)
	}
	if got := RecommendBatches(100); got != 10 {
		t.Errorf("n=100: %d, want 10", got)
	}
	if got := RecommendBatches(10000); got != 30 {
		t.Errorf("n=10000: %d, want 30 (capped)", got)
	}
	n := 400
	b := RecommendBatches(n)
	if b < 2 || b > n/2 {
		t.Errorf("recommendation %d outside sane bounds", b)
	}
}

func TestTCritical95(t *testing.T) {
	if v := tCritical95(1); math.Abs(v-12.706) > 1e-9 {
		t.Errorf("t(1) = %v", v)
	}
	if v := tCritical95(1000); math.Abs(v-1.96) > 1e-9 {
		t.Errorf("t(1000) = %v", v)
	}
	// Monotone non-increasing over the table range.
	prev := math.Inf(1)
	for _, df := range []int{1, 2, 5, 10, 19, 29, 59, 100} {
		v := tCritical95(df)
		if v > prev {
			t.Errorf("t-critical increased at df=%d", df)
		}
		prev = v
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("df=0 should be NaN")
	}
}
