package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestDigestZeroValueIsExact(t *testing.T) {
	var d Digest
	if d.Mode() != Exact {
		t.Fatal("zero-value digest should be Exact")
	}
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if d.N() != 100 {
		t.Errorf("N = %d", d.N())
	}
	if got := d.Mean(); math.Abs(got-50.5) > 1e-12 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	if got := d.Quantile(1); got != 100 {
		t.Errorf("max quantile = %v, want 100", got)
	}
	// Exact quantiles must match the underlying Sample exactly.
	s := NewSample(100)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		if d.Quantile(q) != s.Quantile(q) {
			t.Errorf("exact digest q=%v: %v != sample %v", q, d.Quantile(q), s.Quantile(q))
		}
	}
}

func TestDigestBoundedTracksMomentsExactly(t *testing.T) {
	d := NewDigest(Bounded, 0)
	var s Stream
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		x := rng.ExpFloat64()
		d.Add(x)
		s.Add(x)
	}
	if d.Mean() != s.Mean() || d.StdDev() != s.StdDev() ||
		d.Min() != s.Min() || d.Max() != s.Max() || int64(d.N()) != s.N() {
		t.Error("bounded digest moments must match a plain Stream bit-for-bit")
	}
}

func TestDigestBoundedQuantileAccuracy(t *testing.T) {
	d := NewDigest(Bounded, 0)
	e := NewDigest(Exact, 100000)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		x := rng.ExpFloat64()
		d.Add(x)
		e.Add(x)
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95, 0.99} {
		exact := e.Quantile(q)
		approx := d.Quantile(q)
		if rel := math.Abs(approx-exact) / exact; rel > 0.05 {
			t.Errorf("q=%v: bounded %v vs exact %v (rel err %.3f)", q, approx, exact, rel)
		}
	}
	if d.Quantile(0) != e.Quantile(0) || d.Quantile(1) != e.Quantile(1) {
		t.Error("bounded min/max quantiles should be exact")
	}
}

func TestDigestSetBounded(t *testing.T) {
	var d Digest
	d.SetBounded()
	if d.Mode() != Bounded {
		t.Fatal("SetBounded did not switch mode")
	}
	d.Add(1)
	d.SetBounded() // idempotent on an already-bounded digest
	defer func() {
		if recover() == nil {
			t.Error("SetBounded after exact observations should panic")
		}
	}()
	var e Digest
	e.Add(1)
	e.SetBounded()
}

func TestDigestExactMerge(t *testing.T) {
	a := NewDigest(Exact, 0)
	b := NewDigest(Exact, 0)
	for i := 1; i <= 50; i++ {
		a.Add(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Add(float64(i))
	}
	a.Merge(&b)
	want := NewDigest(Exact, 0)
	for i := 1; i <= 100; i++ {
		want.Add(float64(i))
	}
	if a.N() != 100 || a.Quantile(0.5) != want.Quantile(0.5) || a.Mean() != want.Mean() {
		t.Errorf("exact merge: n=%d median=%v mean=%v", a.N(), a.Quantile(0.5), a.Mean())
	}
}

func TestDigestBoundedMerge(t *testing.T) {
	a := NewDigest(Bounded, 0)
	b := NewDigest(Bounded, 0)
	all := NewDigest(Exact, 0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		x := rng.ExpFloat64()
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != 20000 {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("merged mean %v vs exact %v", a.Mean(), all.Mean())
	}
	for _, q := range []float64{0.5, 0.95} {
		exact := all.Quantile(q)
		if rel := math.Abs(a.Quantile(q)-exact) / exact; rel > 0.1 {
			t.Errorf("merged q=%v: %v vs exact %v", q, a.Quantile(q), exact)
		}
	}
	// Adds after a merge keep feeding the estimate.
	before := a.N()
	a.Add(1)
	if a.N() != before+1 {
		t.Error("Add after Merge lost the observation")
	}
}

func TestDigestMergeIntoEmpty(t *testing.T) {
	var a Digest
	b := NewDigest(Bounded, 0)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		b.Add(rng.ExpFloat64())
	}
	a.Merge(&b)
	if a.N() != 5000 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != b.Mean() {
		t.Error("merge into empty digest should preserve the mean exactly")
	}
	if math.Abs(a.Quantile(0.5)-b.Quantile(0.5)) > 1e-12 {
		t.Error("merge into empty digest should carry probe estimates over")
	}
}

func TestDigestBox(t *testing.T) {
	ex := NewDigest(Exact, 0)
	bd := NewDigest(Bounded, 0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		x := rng.NormFloat64()*2 + 10
		ex.Add(x)
		bd.Add(x)
	}
	be, bb := ex.Box("x"), bd.Box("x")
	if be.N != bb.N || be.Min != bb.Min || be.Max != bb.Max {
		t.Error("box N/min/max should agree across modes")
	}
	if math.Abs(be.Median-bb.Median) > 0.05 {
		t.Errorf("box medians: exact %v bounded %v", be.Median, bb.Median)
	}
	if math.Abs(be.Q3-bb.Q3) > 0.05 {
		t.Errorf("box Q3: exact %v bounded %v", be.Q3, bb.Q3)
	}
}

func TestDigestSummarize(t *testing.T) {
	bd := NewDigest(Bounded, 0)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10000; i++ {
		bd.Add(rng.Float64())
	}
	ds := bd.Summarize("u", nil)
	if ds.N != 10000 || len(ds.Quantiles) != 99 {
		t.Fatalf("summary N=%d probes=%d", ds.N, len(ds.Quantiles))
	}
	if math.Abs(ds.Quantile(0.5)-0.5) > 0.03 {
		t.Errorf("uniform median estimate %v", ds.Quantile(0.5))
	}
}

func TestDigestValues(t *testing.T) {
	ex := NewDigest(Exact, 4)
	ex.Add(3)
	ex.Add(1)
	vs := ex.Values()
	if len(vs) != 2 || vs[0] != 1 {
		t.Errorf("exact Values = %v", vs)
	}
	bd := NewDigest(Bounded, 0)
	bd.Add(1)
	if bd.Values() != nil {
		t.Error("bounded Values should be nil")
	}
	if bd.ExactSample() != nil {
		t.Error("bounded ExactSample should be nil")
	}
}

func TestDigestEmpty(t *testing.T) {
	for _, d := range []Digest{NewDigest(Exact, 0), NewDigest(Bounded, 0)} {
		if d.N() != 0 || d.Mean() != 0 || d.Quantile(0.5) != 0 || d.P95() != 0 {
			t.Errorf("empty %s digest should report zeros", d.Mode())
		}
		b := d.Box("empty")
		if b.N != 0 {
			t.Error("empty box should have N=0")
		}
	}
}

// TestDigestBoundedConstantMemory: the whole point — bounded digests do
// not allocate per observation once warmed.
func TestDigestBoundedConstantMemory(t *testing.T) {
	d := NewDigest(Bounded, 0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		d.Add(rng.ExpFloat64())
	}
	allocs := testing.AllocsPerRun(100, func() { d.Add(rng.ExpFloat64()) })
	if allocs > 0 {
		t.Errorf("bounded Add allocates %.1f/op, want 0", allocs)
	}
}
