package stats

import (
	"fmt"
	"math"
	"sort"
)

// BoxPlot holds the five-number summary plus mean and whisker fences used
// by the paper's Figures 2, 6, and 10.
type BoxPlot struct {
	Label      string
	N          int
	Min        float64
	Q1         float64
	Median     float64
	Q3         float64
	Max        float64
	Mean       float64
	LowerFence float64 // Q1 - 1.5*IQR, clamped to Min
	UpperFence float64 // Q3 + 1.5*IQR, clamped to Max
	Outliers   int     // observations outside the fences
}

// BoxPlotOf computes the box-plot summary of a sample.
func BoxPlotOf(label string, s *Sample) BoxPlot {
	bp := BoxPlot{Label: label, N: s.N()}
	if s.N() == 0 {
		return bp
	}
	bp.Min = s.Quantile(0)
	bp.Q1 = s.Quantile(0.25)
	bp.Median = s.Quantile(0.5)
	bp.Q3 = s.Quantile(0.75)
	bp.Max = s.Quantile(1)
	bp.Mean = s.Mean()
	iqr := bp.Q3 - bp.Q1
	bp.LowerFence = math.Max(bp.Min, bp.Q1-1.5*iqr)
	bp.UpperFence = math.Min(bp.Max, bp.Q3+1.5*iqr)
	for _, x := range s.Values() {
		if x < bp.LowerFence || x > bp.UpperFence {
			bp.Outliers++
		}
	}
	return bp
}

// IQR returns the interquartile range.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }

// String renders the summary on one line.
func (b BoxPlot) String() string {
	return fmt.Sprintf("%s: n=%d min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f outliers=%d",
		b.Label, b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.Outliers)
}

// DistSummary is a compact description of a latency distribution used for
// the paper's violin plots (Figure 6): quantile curve plus moments.
type DistSummary struct {
	Label     string
	N         int
	Mean      float64
	StdDev    float64
	CoV       float64
	Quantiles []QuantilePoint
}

// QuantilePoint is one (q, value) point on the quantile curve.
type QuantilePoint struct {
	Q     float64
	Value float64
}

// SummarizeDist computes a DistSummary with quantiles at the given probes
// (defaults to 1%..99% by 1% when probes is nil).
func SummarizeDist(label string, s *Sample, probes []float64) DistSummary {
	if probes == nil {
		probes = make([]float64, 0, 99)
		for i := 1; i <= 99; i++ {
			probes = append(probes, float64(i)/100)
		}
	}
	d := DistSummary{Label: label, N: s.N(), Mean: s.Mean(), StdDev: s.StdDev()}
	if d.Mean != 0 {
		d.CoV = d.StdDev / d.Mean
	}
	for _, q := range probes {
		d.Quantiles = append(d.Quantiles, QuantilePoint{Q: q, Value: s.Quantile(q)})
	}
	return d
}

// Quantile returns the value at probe q, interpolating between stored
// probes, or 0 when no quantiles are stored.
func (d DistSummary) Quantile(q float64) float64 {
	qs := d.Quantiles
	if len(qs) == 0 {
		return 0
	}
	if q <= qs[0].Q {
		return qs[0].Value
	}
	if q >= qs[len(qs)-1].Q {
		return qs[len(qs)-1].Value
	}
	i := sort.Search(len(qs), func(i int) bool { return qs[i].Q >= q })
	lo, hi := qs[i-1], qs[i]
	frac := (q - lo.Q) / (hi.Q - lo.Q)
	return lo.Value + frac*(hi.Value-lo.Value)
}

// TimeSeries accumulates (t, value) observations into fixed-width time
// bins and reports the per-bin mean, count and percentiles. It implements
// the timeline plots of Figures 8 and 9.
type TimeSeries struct {
	BinWidth float64
	Start    float64
	bins     []*Sample
}

// NewTimeSeries returns a series with the given bin width (seconds)
// starting at time start.
func NewTimeSeries(start, binWidth float64) *TimeSeries {
	if binWidth <= 0 {
		panic("stats: TimeSeries bin width must be positive")
	}
	return &TimeSeries{BinWidth: binWidth, Start: start}
}

// Add records value v observed at time t. Observations before Start are
// clamped into the first bin.
func (ts *TimeSeries) Add(t, v float64) {
	idx := int((t - ts.Start) / ts.BinWidth)
	if idx < 0 {
		idx = 0
	}
	for len(ts.bins) <= idx {
		ts.bins = append(ts.bins, &Sample{})
	}
	ts.bins[idx].Add(v)
}

// NumBins returns the number of (possibly empty) bins.
func (ts *TimeSeries) NumBins() int { return len(ts.bins) }

// BinTime returns the midpoint time of bin i.
func (ts *TimeSeries) BinTime(i int) float64 {
	return ts.Start + (float64(i)+0.5)*ts.BinWidth
}

// BinMean returns the mean of bin i (0 if empty).
func (ts *TimeSeries) BinMean(i int) float64 { return ts.bins[i].Mean() }

// BinCount returns the observation count of bin i.
func (ts *TimeSeries) BinCount(i int) int { return ts.bins[i].N() }

// BinQuantile returns quantile q of bin i.
func (ts *TimeSeries) BinQuantile(i int, q float64) float64 { return ts.bins[i].Quantile(q) }

// Means returns the per-bin means as a slice.
func (ts *TimeSeries) Means() []float64 {
	out := make([]float64, len(ts.bins))
	for i, b := range ts.bins {
		out[i] = b.Mean()
	}
	return out
}

// Counts returns per-bin observation counts.
func (ts *TimeSeries) Counts() []int {
	out := make([]int, len(ts.bins))
	for i, b := range ts.bins {
		out[i] = b.N()
	}
	return out
}
