package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width linear-bin histogram over [Lo, Hi). Values
// outside the range are counted in underflow/overflow buckets so no
// observation is silently dropped.
type Histogram struct {
	Lo, Hi    float64
	bins      []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram returns a histogram with nbins equal-width bins over
// [lo, hi). It panics if the range or bin count is invalid.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) nbins=%d", lo, hi, nbins))
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		idx := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if idx >= len(h.bins) {
			idx = len(h.bins) - 1
		}
		h.bins[idx]++
	}
}

// N returns the total number of observations, including out-of-range ones.
func (h *Histogram) N() int64 { return h.total }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.underflow }

// Overflow returns the count of observations at or above Hi.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Bins returns a copy of the bin counts.
func (h *Histogram) Bins() []int64 { return append([]int64(nil), h.bins...) }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.bins)) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int64 { return h.bins[i] }

// Quantile returns an approximate quantile assuming observations are
// uniform within each bin. Out-of-range mass is attributed to the
// boundary values.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if target <= cum {
		return h.Lo
	}
	for i, c := range h.bins {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*h.BinWidth()
		}
		cum = next
	}
	return h.Hi
}

// Render draws a horizontal ASCII bar chart of the histogram, width
// characters wide, skipping leading/trailing empty bins.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	first, last := -1, -1
	var maxC int64
	for i, c := range h.bins {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
			if c > maxC {
				maxC = c
			}
		}
	}
	if first < 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i := first; i <= last; i++ {
		barLen := int(math.Round(float64(h.bins[i]) / float64(maxC) * float64(width)))
		fmt.Fprintf(&b, "%10.3f |%s %d\n", h.BinCenter(i), strings.Repeat("#", barLen), h.bins[i])
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "underflow: %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow: %d\n", h.overflow)
	}
	return b.String()
}

// LogHistogram buckets positive observations into exponentially growing
// bins, suitable for latency distributions spanning decades.
type LogHistogram struct {
	base    float64
	minExp  int
	maxExp  int
	bins    []int64
	zeroNeg int64
	total   int64
}

// NewLogHistogram returns a histogram with bins [base^e, base^(e+1)) for
// e in [minExp, maxExp]. base must exceed 1.
func NewLogHistogram(base float64, minExp, maxExp int) *LogHistogram {
	if base <= 1 || maxExp < minExp {
		panic("stats: invalid log histogram parameters")
	}
	return &LogHistogram{
		base:   base,
		minExp: minExp,
		maxExp: maxExp,
		bins:   make([]int64, maxExp-minExp+1),
	}
}

// Add records one observation. Non-positive values go to a dedicated
// bucket.
func (h *LogHistogram) Add(x float64) {
	h.total++
	if x <= 0 {
		h.zeroNeg++
		return
	}
	e := int(math.Floor(math.Log(x) / math.Log(h.base)))
	if e < h.minExp {
		e = h.minExp
	}
	if e > h.maxExp {
		e = h.maxExp
	}
	h.bins[e-h.minExp]++
}

// N returns the total number of observations.
func (h *LogHistogram) N() int64 { return h.total }

// NonPositive returns the count of observations ≤ 0.
func (h *LogHistogram) NonPositive() int64 { return h.zeroNeg }

// Bucket returns the count and lower/upper bounds of bucket i.
func (h *LogHistogram) Bucket(i int) (count int64, lo, hi float64) {
	e := h.minExp + i
	return h.bins[i], math.Pow(h.base, float64(e)), math.Pow(h.base, float64(e+1))
}

// NumBuckets returns the number of exponential buckets.
func (h *LogHistogram) NumBuckets() int { return len(h.bins) }
