package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

func TestStreamBasic(t *testing.T) {
	var s Stream
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d, want 5", s.N())
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Variance(); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Variance = %v, want 2.5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := s.Sum(); got != 15 {
		t.Errorf("Sum = %v, want 15", got)
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 || s.CoV() != 0 {
		t.Error("empty stream should report zeros")
	}
	if s.Min() != 0 || s.Max() != 0 {
		t.Error("empty stream min/max should be 0")
	}
}

func TestStreamSingle(t *testing.T) {
	var s Stream
	s.Add(7)
	if s.Variance() != 0 {
		t.Errorf("single-value variance = %v, want 0", s.Variance())
	}
	if s.Mean() != 7 || s.Min() != 7 || s.Max() != 7 {
		t.Error("single-value moments wrong")
	}
}

// TestStreamMatchesNaive checks Welford against the two-pass formula on
// random data.
func TestStreamMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(500)
		xs := make([]float64, n)
		var s Stream
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			s.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		varNaive := m2 / float64(n-1)
		return almostEqual(s.Mean(), mean, 1e-9) && almostEqual(s.Variance(), varNaive, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStreamMergeProperty: merging two streams equals adding all values
// to one stream.
func TestStreamMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(100), 1+rng.Intn(100)
		var a, b, all Stream
		for i := 0; i < n1; i++ {
			x := rng.ExpFloat64()
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.ExpFloat64() * 3
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Variance(), all.Variance(), 1e-9) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamMergeEmpty(t *testing.T) {
	var a, b Stream
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(&b)
	if a != before {
		t.Error("merging an empty stream changed the receiver")
	}
	b.Merge(&a)
	if b.N() != 2 || b.Mean() != 1.5 {
		t.Error("merging into an empty stream failed")
	}
}

func TestStreamCoVExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Stream
	for i := 0; i < 200000; i++ {
		s.Add(rng.ExpFloat64())
	}
	if !almostEqual(s.CoV(), 1.0, 0.02) {
		t.Errorf("exponential CoV = %v, want ~1", s.CoV())
	}
	if !almostEqual(s.SCV(), 1.0, 0.04) {
		t.Errorf("exponential SCV = %v, want ~1", s.SCV())
	}
}

func TestStreamAddN(t *testing.T) {
	var a, b Stream
	a.AddN(4, 3)
	for i := 0; i < 3; i++ {
		b.Add(4)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Error("AddN differs from repeated Add")
	}
}

func TestStreamConfidenceInterval(t *testing.T) {
	var s Stream
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 10))
	}
	ci := s.ConfidenceInterval95()
	if ci <= 0 {
		t.Error("CI should be positive for varied data")
	}
	if ci >= s.StdDev() {
		t.Error("CI half-width should shrink below one stddev at n=100")
	}
}

func TestRateCounter(t *testing.T) {
	var r RateCounter
	if r.Rate() != 0 {
		t.Error("empty rate should be 0")
	}
	for i := 0; i <= 100; i++ {
		r.Observe(float64(i) * 0.5)
	}
	if r.Events() != 101 {
		t.Errorf("Events = %d, want 101", r.Events())
	}
	if !almostEqual(r.Rate(), 101.0/50.0, 1e-12) {
		t.Errorf("Rate = %v, want 2.02", r.Rate())
	}
	if r.Span() != 50 {
		t.Errorf("Span = %v, want 50", r.Span())
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 5)
	w.Finish(10)
	if !almostEqual(w.Average(), 5, 1e-12) {
		t.Errorf("constant average = %v, want 5", w.Average())
	}
}

func TestTimeWeightedSteps(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Set(1, 2) // value 0 on [0,1)
	w.Set(3, 1) // value 2 on [1,3)
	w.Finish(5) // value 1 on [3,5)
	want := (0*1 + 2*2 + 1*2) / 5.0
	if !almostEqual(w.Average(), want, 1e-12) {
		t.Errorf("step average = %v, want %v", w.Average(), want)
	}
	if w.Max() != 2 {
		t.Errorf("Max = %v, want 2", w.Max())
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 1)
	w.Add(2, 1)  // 2 from t=2
	w.Add(4, -2) // 0 from t=4
	w.Finish(6)
	want := (1*2 + 2*2 + 0*2) / 6.0
	if !almostEqual(w.Average(), want, 1e-12) {
		t.Errorf("Add-based average = %v, want %v", w.Average(), want)
	}
}

func TestTimeWeightedNoObservations(t *testing.T) {
	var w TimeWeighted
	w.Finish(10)
	if w.Average() != 0 {
		t.Error("unobserved time-weighted average should be 0")
	}
}
