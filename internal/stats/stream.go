// Package stats provides streaming and batch statistics used throughout
// edgebench: running moments, exact and approximate quantiles, histograms,
// binned time series, and distribution summaries (box plots).
//
// All types are plain values that are ready to use after zero or
// constructor initialization. None of them are safe for concurrent use;
// callers that share a collector across goroutines must synchronize.
package stats

import (
	"fmt"
	"math"
)

// Stream accumulates running moments of a sequence of observations using
// Welford's numerically stable algorithm. The zero value is an empty stream.
type Stream struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddN records the same observation n times.
func (s *Stream) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		s.Add(x)
	}
}

// Merge folds other into s, as if every observation of other had been
// added to s. It uses the parallel variance combination formula.
func (s *Stream) Merge(other *Stream) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	tot := n1 + n2
	s.m2 += other.m2 + delta*delta*n1*n2/tot
	s.mean += delta * n2 / tot
	s.n += other.n
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Reset returns the stream to its empty state.
func (s *Stream) Reset() { *s = Stream{} }

// N returns the number of observations recorded.
func (s *Stream) N() int64 { return s.n }

// Sum returns the sum of all observations.
func (s *Stream) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty stream.
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the unbiased sample variance, or 0 with fewer than
// two observations.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// PopVariance returns the population (biased) variance.
func (s *Stream) PopVariance() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CoV returns the coefficient of variation (stddev / mean), the quantity
// the paper's Allen–Cunneen analysis squares as c². It returns 0 when the
// mean is 0.
func (s *Stream) CoV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.StdDev() / m
}

// SCV returns the squared coefficient of variation c², used directly in
// Lemma 3.2 of the paper.
func (s *Stream) SCV() float64 {
	c := s.CoV()
	return c * c
}

// Min returns the smallest observation, or 0 for an empty stream.
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 for an empty stream.
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// StdErr returns the standard error of the mean.
func (s *Stream) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// ConfidenceInterval95 returns the half-width of the normal-approximation
// 95% confidence interval for the mean.
func (s *Stream) ConfidenceInterval95() float64 {
	return 1.96 * s.StdErr()
}

// String summarizes the stream for debugging.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// RateCounter tracks events over a (simulated or real) time axis and
// reports a rate. It is used to measure utilization and throughput in the
// simulator.
type RateCounter struct {
	events int64
	start  float64
	end    float64
	init   bool
}

// Observe records an event at time t (seconds).
func (r *RateCounter) Observe(t float64) {
	if !r.init {
		r.start, r.end, r.init = t, t, true
	}
	if t > r.end {
		r.end = t
	}
	if t < r.start {
		r.start = t
	}
	r.events++
}

// Events returns the number of observed events.
func (r *RateCounter) Events() int64 { return r.events }

// Rate returns events per second over the observed span, or 0 if the span
// is degenerate.
func (r *RateCounter) Rate() float64 {
	if !r.init || r.end <= r.start {
		return 0
	}
	return float64(r.events) / (r.end - r.start)
}

// Span returns the observed time span (end - start).
func (r *RateCounter) Span() float64 {
	if !r.init {
		return 0
	}
	return r.end - r.start
}

// TimeWeighted tracks the time-average of a piecewise-constant quantity,
// such as queue length or the number of busy servers. Call Set every time
// the quantity changes; Finish before reading the average.
type TimeWeighted struct {
	value    float64
	lastT    float64
	area     float64
	start    float64
	began    bool
	finished bool
	maxVal   float64
}

// Set records that the tracked quantity changed to v at time t.
func (w *TimeWeighted) Set(t, v float64) {
	if !w.began {
		w.began = true
		w.start = t
		w.lastT = t
		w.value = v
		w.maxVal = v
		return
	}
	if t > w.lastT {
		w.area += w.value * (t - w.lastT)
		w.lastT = t
	}
	w.value = v
	if v > w.maxVal {
		w.maxVal = v
	}
}

// Add adjusts the tracked quantity by delta at time t.
func (w *TimeWeighted) Add(t, delta float64) { w.Set(t, w.value+delta) }

// Finish closes the observation window at time t.
func (w *TimeWeighted) Finish(t float64) {
	if !w.began {
		return
	}
	if t > w.lastT {
		w.area += w.value * (t - w.lastT)
		w.lastT = t
	}
	w.finished = true
}

// Average returns the time average over [start, lastT].
func (w *TimeWeighted) Average() float64 {
	if !w.began || w.lastT <= w.start {
		return 0
	}
	return w.area / (w.lastT - w.start)
}

// Current returns the current value of the tracked quantity.
func (w *TimeWeighted) Current() float64 { return w.value }

// Max returns the maximum value observed.
func (w *TimeWeighted) Max() float64 { return w.maxVal }
