package stats

import (
	"fmt"
	"math"
)

// BatchMeans computes a confidence interval for the steady-state mean of
// a correlated output series using the method of non-overlapping batch
// means — the standard technique for discrete-event simulation output
// analysis, where consecutive latencies are autocorrelated and the naive
// i.i.d. confidence interval is too narrow.
//
// The series is split into nbatches equal batches; batch means are
// approximately independent when batches are long relative to the
// autocorrelation time, so their sample variance yields a valid CI.
type BatchMeans struct {
	Mean      float64
	HalfWidth float64 // 95% CI half-width (Student-t)
	Batches   int
	BatchSize int
}

// tCritical95 approximates the two-sided 95% Student-t critical value
// for df degrees of freedom (exact table values for small df, normal
// limit beyond).
func tCritical95(df int) float64 {
	table := map[int]float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
		19: 2.093, 24: 2.064, 29: 2.045, 39: 2.023, 59: 2.001,
	}
	if v, ok := table[df]; ok {
		return v
	}
	switch {
	case df < 1:
		return math.NaN()
	case df < 19:
		return 2.11
	case df < 30:
		return 2.05
	case df < 60:
		return 2.01
	default:
		return 1.96
	}
}

// ComputeBatchMeans splits xs into nbatches non-overlapping batches
// (discarding a remainder tail) and returns the batch-means estimate.
func ComputeBatchMeans(xs []float64, nbatches int) BatchMeans {
	if nbatches < 2 {
		panic(fmt.Sprintf("stats: batch means needs >= 2 batches, got %d", nbatches))
	}
	size := len(xs) / nbatches
	if size < 1 {
		panic(fmt.Sprintf("stats: %d observations cannot fill %d batches", len(xs), nbatches))
	}
	var grand Stream
	var means Stream
	for b := 0; b < nbatches; b++ {
		var batch Stream
		for i := b * size; i < (b+1)*size; i++ {
			batch.Add(xs[i])
			grand.Add(xs[i])
		}
		means.Add(batch.Mean())
	}
	t := tCritical95(nbatches - 1)
	return BatchMeans{
		Mean:      grand.Mean(),
		HalfWidth: t * means.StdDev() / math.Sqrt(float64(nbatches)),
		Batches:   nbatches,
		BatchSize: size,
	}
}

// Lag1Autocorrelation estimates the lag-1 autocorrelation of a series,
// the diagnostic for whether batch sizes are long enough (batch means
// should be nearly uncorrelated).
func Lag1Autocorrelation(xs []float64) float64 {
	n := len(xs)
	if n < 3 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i > 0 {
			num += d * (xs[i-1] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// RecommendBatches picks a batch count for a series: enough batches for
// a stable variance estimate (≥10) but batches long enough that their
// means decorrelate (~√n batches capped at 30), the usual heuristic.
func RecommendBatches(n int) int {
	if n < 20 {
		return 2
	}
	b := int(math.Sqrt(float64(n)))
	if b > 30 {
		b = 30
	}
	if b < 10 {
		b = 10
	}
	if b > n/2 {
		b = n / 2
	}
	return b
}
