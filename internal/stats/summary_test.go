package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxPlotKnown(t *testing.T) {
	s := NewSample(9)
	for i := 1; i <= 9; i++ {
		s.Add(float64(i))
	}
	b := BoxPlotOf("x", s)
	if b.Median != 5 {
		t.Errorf("median = %v, want 5", b.Median)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles = %v,%v want 3,7", b.Q1, b.Q3)
	}
	if b.Min != 1 || b.Max != 9 {
		t.Errorf("extremes = %v,%v want 1,9", b.Min, b.Max)
	}
	if b.Outliers != 0 {
		t.Errorf("outliers = %d, want 0", b.Outliers)
	}
}

func TestBoxPlotOutliers(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 20; i++ {
		s.Add(10)
	}
	s.Add(1000)
	b := BoxPlotOf("x", s)
	if b.Outliers != 1 {
		t.Errorf("outliers = %d, want 1", b.Outliers)
	}
	if b.UpperFence >= 1000 {
		t.Error("upper fence should exclude the outlier")
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	b := BoxPlotOf("empty", &Sample{})
	if b.N != 0 || b.Median != 0 {
		t.Error("empty box plot should be zeroed")
	}
}

// TestBoxPlotOrdering: min ≤ q1 ≤ median ≤ q3 ≤ max for any data.
func TestBoxPlotOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		s := NewSample(len(xs))
		s.AddAll(xs)
		b := BoxPlotOf("p", s)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.LowerFence >= b.Min && b.UpperFence <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeDistQuantileInterp(t *testing.T) {
	s := NewSample(0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		s.Add(rng.Float64())
	}
	d := SummarizeDist("u", s, nil)
	if len(d.Quantiles) != 99 {
		t.Fatalf("default probes = %d, want 99", len(d.Quantiles))
	}
	// Uniform distribution: quantile(q) ≈ q.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.955} {
		if got := d.Quantile(q); !almostEqual(got, q, 0.05) {
			t.Errorf("Quantile(%v) = %v", q, got)
		}
	}
	// Clamping beyond stored probes.
	if d.Quantile(0.001) != d.Quantiles[0].Value {
		t.Error("below-range quantile should clamp to the first probe")
	}
	if d.Quantile(0.9999) != d.Quantiles[98].Value {
		t.Error("above-range quantile should clamp to the last probe")
	}
}

func TestSummarizeDistCustomProbes(t *testing.T) {
	s := NewSample(3)
	s.AddAll([]float64{1, 2, 3})
	d := SummarizeDist("x", s, []float64{0.5})
	if len(d.Quantiles) != 1 || d.Quantiles[0].Q != 0.5 {
		t.Error("custom probes not honored")
	}
	if d.Mean != 2 {
		t.Errorf("mean = %v, want 2", d.Mean)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(0, 60)
	ts.Add(10, 1.0)
	ts.Add(50, 3.0)
	ts.Add(70, 10.0)
	ts.Add(130, 20.0)
	if ts.NumBins() != 3 {
		t.Fatalf("bins = %d, want 3", ts.NumBins())
	}
	if got := ts.BinMean(0); !almostEqual(got, 2, 1e-12) {
		t.Errorf("bin 0 mean = %v, want 2", got)
	}
	if got := ts.BinMean(1); got != 10 {
		t.Errorf("bin 1 mean = %v, want 10", got)
	}
	if ts.BinCount(0) != 2 || ts.BinCount(1) != 1 || ts.BinCount(2) != 1 {
		t.Error("bin counts wrong")
	}
	if got := ts.BinTime(0); got != 30 {
		t.Errorf("bin 0 midpoint = %v, want 30", got)
	}
	means := ts.Means()
	if len(means) != 3 || means[2] != 20 {
		t.Error("Means() wrong")
	}
	counts := ts.Counts()
	if len(counts) != 3 || counts[0] != 2 {
		t.Error("Counts() wrong")
	}
}

func TestTimeSeriesEarlyObservation(t *testing.T) {
	ts := NewTimeSeries(100, 10)
	ts.Add(50, 5) // before Start: clamped into bin 0
	if ts.NumBins() != 1 || ts.BinCount(0) != 1 {
		t.Error("early observation not clamped into first bin")
	}
}

func TestTimeSeriesQuantile(t *testing.T) {
	ts := NewTimeSeries(0, 1)
	for i := 0; i < 100; i++ {
		ts.Add(0.5, float64(i))
	}
	if got := ts.BinQuantile(0, 0.5); !almostEqual(got, 49.5, 1e-9) {
		t.Errorf("bin median = %v, want 49.5", got)
	}
}

func TestTimeSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bin width should panic")
		}
	}()
	NewTimeSeries(0, 0)
}
