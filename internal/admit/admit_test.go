package admit

import (
	"math"
	"strings"
	"testing"
)

func TestPoliciesKnown(t *testing.T) {
	for _, name := range Policies() {
		if !Known(name) {
			t.Errorf("Known(%q) = false for a registered policy", name)
		}
	}
	if Known("drop-everything") {
		t.Error("Known accepted an unregistered policy")
	}
}

// TestSpecValidate: every policy's parameter space is checked, and the
// NaN/Inf holes that ordered comparisons miss are rejected explicitly.
func TestSpecValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name    string
		spec    Spec
		wantErr string // "" = valid
	}{
		{"token-bucket ok", Spec{Policy: TokenBucket, Rate: 5}, ""},
		{"token-bucket burst ok", Spec{Policy: TokenBucket, Rate: 5, Burst: 20}, ""},
		{"queue-length ok", Spec{Policy: QueueLength, Threshold: 3}, ""},
		{"priority ok", Spec{Policy: Priority, Threshold: 3, Cutoff: 1}, ""},
		{"priority cutoff zero ok", Spec{Policy: Priority, Threshold: 1}, ""},

		{"empty policy", Spec{}, "no policy"},
		{"unknown policy", Spec{Policy: "leaky-bucket"}, "unknown policy"},
		{"zero rate", Spec{Policy: TokenBucket}, "positive finite Rate"},
		{"negative rate", Spec{Policy: TokenBucket, Rate: -1}, "positive finite Rate"},
		{"nan rate", Spec{Policy: TokenBucket, Rate: nan}, "positive finite Rate"},
		{"inf rate", Spec{Policy: TokenBucket, Rate: inf}, "positive finite Rate"},
		{"-inf rate", Spec{Policy: TokenBucket, Rate: -inf}, "positive finite Rate"},
		{"nan burst", Spec{Policy: TokenBucket, Rate: 5, Burst: nan}, "Burst"},
		{"inf burst", Spec{Policy: TokenBucket, Rate: 5, Burst: inf}, "Burst"},
		{"negative burst", Spec{Policy: TokenBucket, Rate: 5, Burst: -2}, "Burst"},
		{"queue-length no threshold", Spec{Policy: QueueLength}, "Threshold"},
		{"queue-length negative", Spec{Policy: QueueLength, Threshold: -1}, "Threshold"},
		{"priority no threshold", Spec{Policy: Priority, Cutoff: 1}, "Threshold"},
		{"priority negative cutoff", Spec{Policy: Priority, Threshold: 2, Cutoff: -1}, "Cutoff"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Spec{Policy: "nope"}, 1); err == nil {
		t.Error("New accepted an unknown policy")
	}
	if _, err := New(Spec{Policy: QueueLength, Threshold: 2}, 0); err == nil {
		t.Error("New accepted zero buckets")
	}
}

// TestTokenBucket: burst admissions at one instant, refill over time,
// and per-bucket independence.
func TestTokenBucket(t *testing.T) {
	p, err := New(Spec{Policy: TokenBucket, Rate: 1, Burst: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket 0 starts full with 2 tokens: two admissions, then empty.
	for i := 0; i < 2; i++ {
		if !p.Admit(0, 0, 0, 0) {
			t.Fatalf("admission %d refused with a full bucket", i)
		}
	}
	if p.Admit(0, 0, 0, 0) {
		t.Error("admission granted from an empty bucket")
	}
	// Bucket 1 is untouched by bucket 0's spending.
	if !p.Admit(0, 1, 0, 0) {
		t.Error("bucket 1 refused despite independent state")
	}
	// Refill: 1 token/s, so at t=0.5 still empty, at t=1 one admission.
	if p.Admit(0.5, 0, 0, 0) {
		t.Error("admission granted before a full token refilled")
	}
	if !p.Admit(1.5, 0, 0, 0) {
		t.Error("admission refused after a full token refilled")
	}
	if p.Admit(1.5, 0, 0, 0) {
		t.Error("second same-instant admission granted from one token")
	}
}

// TestTokenBucketDefaultBurst: Burst 0 defaults to max(1, Rate).
func TestTokenBucketDefaultBurst(t *testing.T) {
	p, err := New(Spec{Policy: TokenBucket, Rate: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	granted := 0
	for i := 0; i < 5; i++ {
		if p.Admit(0, 0, 0, 0) {
			granted++
		}
	}
	if granted != 3 {
		t.Errorf("default burst granted %d same-instant admissions, want 3 (= Rate)", granted)
	}
	// Sub-unit rate still allows one admission from a full bucket.
	p, err = New(Spec{Policy: TokenBucket, Rate: 0.25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Admit(0, 0, 0, 0) {
		t.Error("sub-unit rate refused its single burst token")
	}
}

func TestQueueLength(t *testing.T) {
	p, err := New(Spec{Policy: QueueLength, Threshold: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for waiting, want := range map[int]bool{0: true, 2: true, 3: false, 10: false} {
		if got := p.Admit(0, 0, waiting, 0); got != want {
			t.Errorf("waiting=%d: admit=%v, want %v", waiting, got, want)
		}
	}
}

// TestPriority: everything passes below the threshold; at or beyond it
// only classes ranked before the cutoff survive.
func TestPriority(t *testing.T) {
	p, err := New(Spec{Policy: Priority, Threshold: 2, Cutoff: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Admit(0, 0, 1, 5) {
		t.Error("low-priority class refused below the pressure threshold")
	}
	if !p.Admit(0, 0, 2, 0) {
		t.Error("class 0 refused under pressure despite ranking before the cutoff")
	}
	if p.Admit(0, 0, 2, 1) {
		t.Error("class 1 admitted under pressure at cutoff 1")
	}
	// Cutoff 0 sheds every class under pressure.
	p, err = New(Spec{Policy: Priority, Threshold: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Admit(0, 0, 1, 0) {
		t.Error("cutoff 0 admitted under pressure")
	}
}
