// Package admit implements per-tier admission control: policies that
// decide, at a request's arrival instant at a tier, whether it may
// enter at all. Production edge clusters shed load before they melt —
// a rejected request is turned away immediately (no queueing, no
// service, no spill) and is priced separately by the cost overlay's
// lost-request penalty.
//
// Policies are declarative: describe one with a Spec and construct it
// with New, mirroring the lb.New / autoscale.New / forecast.New
// registries. Three policies ship:
//
//   - token-bucket: a classic rate limiter. Each bucket holds Burst
//     tokens, refills at Rate tokens per second, and admission costs
//     one token. Buckets are per home site on home-routed tiers (the
//     rate is per-site and the state site-local, which keeps sharded
//     replay deterministic) and tier-wide elsewhere.
//   - queue-length: reject while the tier's pressure signal — waiting
//     requests at the request's home station, or at the least-loaded
//     station of a pooled tier — is at or beyond Threshold.
//   - priority: class-aware shedding. While the tier is under pressure
//     (waiting >= Threshold), requests whose SLO class ranks at or
//     beyond Cutoff are rejected; higher-ranked classes pass. Earlier
//     class rules outrank later ones and unclassified traffic ranks
//     last, so Cutoff = 1 protects only the first declared class.
//
// Every policy is a deterministic function of the arrival sequence it
// observes — no randomness — so admission-enabled replays stay
// byte-identical across the sharded, pipelined and broadcast backends.
package admit

import (
	"fmt"
	"math"
)

// Policy names understood by New.
const (
	TokenBucket = "token-bucket"
	QueueLength = "queue-length"
	Priority    = "priority"
)

// Policies lists the registered policy names.
func Policies() []string { return []string{TokenBucket, QueueLength, Priority} }

// Known reports whether name is a registered policy.
func Known(name string) bool {
	for _, p := range Policies() {
		if p == name {
			return true
		}
	}
	return false
}

// Spec declares an admission policy: the policy name plus the union of
// all policies' parameters. The zero Spec is invalid; Validate names
// what is wrong.
type Spec struct {
	// Policy selects the admission rule (see Policies).
	Policy string
	// Rate is the token-bucket refill rate in tokens (admissions) per
	// second per bucket — per home site on a home-routed tier, for the
	// whole tier elsewhere.
	Rate float64
	// Burst is the token-bucket capacity; buckets start full. 0 defaults
	// to max(1, Rate): one second of refill, never below one admission.
	Burst float64
	// Threshold is the pressure bound for queue-length and priority:
	// the policy engages while the observed waiting count is at or
	// beyond it.
	Threshold int
	// Cutoff is the priority policy's first rejected class rank: under
	// pressure, requests with class rank >= Cutoff are turned away.
	Cutoff int
}

// Label names the spec for result tables.
func (s Spec) Label() string { return s.Policy }

// badRate/badBurst report the NaN/Inf/sign holes a plain threshold
// comparison misses: every comparison against NaN is false, so "x <= 0"
// does not reject it.
func badRate(x float64) bool  { return math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 }
func badBurst(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) || x < 0 }

// Validate checks the spec: a registered policy and positive, finite
// parameters for it. NaN and ±Inf are rejected explicitly — ordered
// comparisons are false for NaN, so without these checks a NaN rate
// would silently construct a bucket that never refills.
func (s Spec) Validate() error {
	switch s.Policy {
	case TokenBucket:
		if badRate(s.Rate) {
			return fmt.Errorf("admit: token-bucket needs a positive finite Rate, got %v", s.Rate)
		}
		if badBurst(s.Burst) {
			return fmt.Errorf("admit: token-bucket Burst must be finite and >= 0, got %v", s.Burst)
		}
	case QueueLength:
		if s.Threshold < 1 {
			return fmt.Errorf("admit: queue-length needs Threshold >= 1, got %d", s.Threshold)
		}
	case Priority:
		if s.Threshold < 1 {
			return fmt.Errorf("admit: priority needs Threshold >= 1, got %d", s.Threshold)
		}
		if s.Cutoff < 0 {
			return fmt.Errorf("admit: priority Cutoff must be >= 0, got %d", s.Cutoff)
		}
	case "":
		return fmt.Errorf("admit: no policy (want one of %v)", Policies())
	default:
		return fmt.Errorf("admit: unknown policy %q (want one of %v)", s.Policy, Policies())
	}
	return nil
}

// Policy decides admission for one request at its tier-entry instant.
// The caller supplies the simulation clock, the bucket key (home site
// for home-routed tiers, 0 for pooled tiers), the tier's pressure
// signal (waiting requests at the candidate station), and the
// request's SLO class rank. Implementations must be deterministic
// functions of their observation sequence.
type Policy interface {
	Admit(now float64, bucket, waiting, class int) bool
}

// New constructs the spec's policy over the given number of buckets
// (sub-limiters): one per home site on a home-routed tier, one for a
// pooled tier. The spec is validated first.
func New(spec Spec, buckets int) (Policy, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if buckets < 1 {
		return nil, fmt.Errorf("admit: policy needs at least one bucket, got %d", buckets)
	}
	switch spec.Policy {
	case TokenBucket:
		burst := spec.Burst
		if burst == 0 {
			burst = math.Max(1, spec.Rate)
		}
		tb := &tokenBucket{rate: spec.Rate, burst: burst,
			tokens: make([]float64, buckets), last: make([]float64, buckets)}
		for i := range tb.tokens {
			tb.tokens[i] = burst
		}
		return tb, nil
	case QueueLength:
		return queueLength{threshold: spec.Threshold}, nil
	case Priority:
		return priority{threshold: spec.Threshold, cutoff: spec.Cutoff}, nil
	}
	panic("unreachable: Validate accepted an unregistered policy")
}

// tokenBucket admits while its bucket holds a token: the bucket refills
// continuously at rate tokens/second up to burst and each admission
// spends one token. Refill is computed lazily from the previous
// observation instant, so the state is a pure function of the bucket's
// arrival-time sequence.
type tokenBucket struct {
	rate, burst float64
	tokens      []float64
	last        []float64
}

func (p *tokenBucket) Admit(now float64, bucket, waiting, class int) bool {
	t := p.tokens[bucket] + (now-p.last[bucket])*p.rate
	if t > p.burst {
		t = p.burst
	}
	p.last[bucket] = now
	if t < 1 {
		p.tokens[bucket] = t
		return false
	}
	p.tokens[bucket] = t - 1
	return true
}

// queueLength admits while the pressure signal is below the threshold.
type queueLength struct{ threshold int }

func (p queueLength) Admit(now float64, bucket, waiting, class int) bool {
	return waiting < p.threshold
}

// priority admits freely below the pressure threshold; at or beyond it,
// only classes ranked before the cutoff pass.
type priority struct{ threshold, cutoff int }

func (p priority) Admit(now float64, bucket, waiting, class int) bool {
	return waiting < p.threshold || class < p.cutoff
}
