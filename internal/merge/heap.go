// Package merge provides the indexed min-heap the k-way stream mergers
// share: a generator source merges per-site arrival streams and the
// Azure decoder merges per-site bin emissions, both min-ordered by a
// (time, site) key. One implementation keeps the two merges — whose
// tie-break order is part of the bit-reproducibility contract — from
// drifting apart.
package merge

// Heap is a min-heap of small int keys (site indices) ordered by a
// caller-supplied comparator, tuned for k-way merging: the caller
// inspects Min, updates the minimum's key in place, and calls FixMin —
// no per-operation allocation, O(log n) per record.
type Heap struct {
	// Less reports whether index a's key orders before index b's. For
	// deterministic merges it must be a strict total order (break key
	// ties on the index itself).
	Less func(a, b int) bool
	s    []int
}

// Grow pre-allocates capacity for n entries, preserving any entries
// already in the heap.
func (h *Heap) Grow(n int) {
	if cap(h.s) < n {
		s := make([]int, len(h.s), n)
		copy(s, h.s)
		h.s = s
	}
}

// Reset empties the heap, keeping its capacity.
func (h *Heap) Reset() { h.s = h.s[:0] }

// Build replaces the heap's contents with the keys 0..n-1 and heapifies
// them bottom-up in O(n) — the bulk form of n Pushes, for k-way merges
// that start with every stream live (e.g. the cross-shard boundary
// merge, where all shard buffers exist before the merge begins).
func (h *Heap) Build(n int) {
	h.Grow(n)
	h.s = h.s[:0]
	for i := 0; i < n; i++ {
		h.s = append(h.s, i)
	}
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Len returns the number of entries.
func (h *Heap) Len() int { return len(h.s) }

// Min returns the minimum entry. It panics on an empty heap.
func (h *Heap) Min() int { return h.s[0] }

// Push adds an entry.
func (h *Heap) Push(x int) {
	h.s = append(h.s, x)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.Less(h.s[i], h.s[parent]) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

// FixMin restores heap order after the minimum entry's key increased
// (the merge advanced that stream).
func (h *Heap) FixMin() { h.siftDown(0) }

// PopMin removes the minimum entry (the merge exhausted that stream).
func (h *Heap) PopMin() {
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.s)
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < n && h.Less(h.s[left], h.s[min]) {
			min = left
		}
		if right < n && h.Less(h.s[right], h.s[min]) {
			min = right
		}
		if min == i {
			return
		}
		h.s[i], h.s[min] = h.s[min], h.s[i]
		i = min
	}
}
