package merge

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

type wrec struct {
	t    float64
	ring int
	seq  int
}

func wless(a, b wrec) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.ring != b.ring {
		return a.ring < b.ring
	}
	return a.seq < b.seq
}

func wtime(r wrec) float64 { return r.t }

// drain consumes the whole group on the caller's goroutine.
func drain(g *Group[wrec]) []wrec {
	var out []wrec
	buf := make([]wrec, 0, 16)
	for {
		batch, ok := g.NextBatch(buf[:0], cap(buf))
		if !ok {
			return out
		}
		out = append(out, batch...)
	}
}

// TestGroupMergesSorted pushes randomized per-ring sorted sequences with
// frequent watermark advances and asserts the consumer sees the exact
// global sort, for several ring counts and capacities.
func TestGroupMergesSorted(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8} {
		for _, capacity := range []int{1, 4, 64} {
			rng := rand.New(rand.NewSource(int64(k*100 + capacity)))
			g := NewGroup(k, capacity, wless, wtime)
			var want []wrec
			var inputs [][]wrec
			for i := 0; i < k; i++ {
				n := rng.Intn(200)
				recs := make([]wrec, n)
				tm := 0.0
				for j := range recs {
					switch rng.Intn(4) {
					case 0:
						// Hold time: same-ring duplicates.
					case 1:
						// Jump to an integer grid point: cross-ring ties.
						tm = float64(int(tm)) + float64(1+rng.Intn(3))
					default:
						tm += rng.Float64()
					}
					recs[j] = wrec{t: tm, ring: i, seq: j}
				}
				inputs = append(inputs, recs)
				want = append(want, recs...)
			}
			sort.Slice(want, func(a, b int) bool { return wless(want[a], want[b]) })

			var wg sync.WaitGroup
			for i := 0; i < k; i++ {
				wg.Add(1)
				go func(i int, recs []wrec) {
					defer wg.Done()
					for len(recs) > 0 {
						n := 1 + rand.New(rand.NewSource(int64(i)+int64(len(recs)))).Intn(5)
						if n > len(recs) {
							n = len(recs)
						}
						g.Push(i, recs[:n])
						recs = recs[n:]
						if len(recs) > 0 {
							g.SetWatermark(i, recs[0].t)
						}
					}
					g.Close(i)
				}(i, inputs[i])
			}
			got := drain(g)
			wg.Wait()
			if len(got) != len(want) {
				t.Fatalf("k=%d cap=%d: got %d records, want %d", k, capacity, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("k=%d cap=%d: record %d = %+v, want %+v", k, capacity, j, got[j], want[j])
				}
			}
			if p := g.Peak(); p > k*capacity {
				t.Fatalf("k=%d cap=%d: peak occupancy %d exceeds total capacity %d", k, capacity, p, k*capacity)
			}
		}
	}
}

// TestGroupWatermarkGates checks the safety rule directly: a record must
// not be emitted while a lagging empty ring's watermark still allows an
// equal-time push that orders earlier.
func TestGroupWatermarkGates(t *testing.T) {
	g := NewGroup(2, 4, wless, wtime)
	g.Push(1, []wrec{{t: 5, ring: 1}})
	// Ring 0 is empty with watermark 0: nothing may be emitted yet, so
	// the consumer below must stay blocked.
	done := make(chan []wrec, 1)
	go func() {
		out, _ := g.NextBatch(nil, 4)
		done <- out
	}()
	// Watermark 5 is NOT enough: ring 0 could still push t=5, ring 0,
	// which orders before t=5, ring 1. Only a strictly greater watermark
	// (or a close) releases the record.
	g.SetWatermark(0, 5)
	time.Sleep(10 * time.Millisecond)
	select {
	case out := <-done:
		t.Fatalf("record released at equal watermark: %+v", out)
	default:
	}
	g.SetWatermark(0, 5.1)
	out := <-done
	if len(out) != 1 || out[0].t != 5 || out[0].ring != 1 {
		t.Fatalf("got %+v, want the t=5 ring-1 record", out)
	}
	g.Close(0)
	g.Close(1)
	if _, ok := g.NextBatch(nil, 4); ok {
		t.Fatal("drained group still returned ok")
	}
}

// TestGroupCloseReleases checks that closing an empty ring unblocks the
// merge without a watermark.
func TestGroupCloseReleases(t *testing.T) {
	g := NewGroup(2, 2, wless, wtime)
	g.Push(0, []wrec{{t: 1, ring: 0}, {t: 2, ring: 0}})
	g.Close(0)
	go g.Close(1) // ring 1 never produced
	got := drain(g)
	if len(got) != 2 || got[0].t != 1 || got[1].t != 2 {
		t.Fatalf("got %+v", got)
	}
}

// TestGroupBackpressure checks Push blocks at capacity and resumes once
// the consumer pops.
func TestGroupBackpressure(t *testing.T) {
	g := NewGroup(1, 2, wless, wtime)
	pushed := make(chan struct{})
	go func() {
		g.Push(0, []wrec{{t: 1}, {t: 2}, {t: 3}, {t: 4}})
		g.Close(0)
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push of 4 records into a capacity-2 ring did not block")
	default:
	}
	got := drain(g)
	<-pushed
	if len(got) != 4 {
		t.Fatalf("got %d records, want 4", len(got))
	}
	if p := g.Peak(); p > 2 {
		t.Fatalf("peak %d exceeds ring capacity 2", p)
	}
}
