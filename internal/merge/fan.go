package merge

import "sync"

// Fan is the broadcast dual of Group: one producer feeding k bounded
// consumer rings — the coordination core of broadcast replay, where a
// single generation/decode pass fans records out to N variant engines.
// Publish copies each record into every attached ring (records are
// value types, so consumers never share mutable state), blocking while
// any attached ring is full: backpressure from the slowest consumer
// bounds resident memory by ring capacity instead of record count.
// Each consumer pops its ring independently and in publish order, so
// every consumer observes the identical record sequence the producer
// emitted.
type Fan[T any] struct {
	mu     sync.Mutex
	change *sync.Cond // pushes, pops, cancels, close
	rings  []fring[T]
	live   int  // attached (not canceled) rings
	closed bool // producer done
	occ    int  // buffered records across all rings
	peak   int  // high-water mark of occ
}

// fring is one consumer's bounded circular buffer.
type fring[T any] struct {
	buf      []T
	head     int // index of the oldest buffered record
	n        int
	detached bool
}

// NewFan builds a fan of k consumer rings of the given capacity.
func NewFan[T any](k, capacity int) *Fan[T] {
	if k <= 0 || capacity <= 0 {
		panic("merge: NewFan needs k > 0 and capacity > 0")
	}
	f := &Fan[T]{rings: make([]fring[T], k), live: k}
	f.change = sync.NewCond(&f.mu)
	for i := range f.rings {
		f.rings[i].buf = make([]T, capacity)
	}
	return f
}

// Publish appends recs to every attached ring, blocking whenever any of
// them is full until its consumer frees space. It reports whether any
// consumer remains attached — false tells the producer nobody is
// listening, so it can stop generating.
func (f *Fan[T]) Publish(recs []T) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(recs) > 0 {
		if f.live == 0 {
			return false
		}
		// The batch advances by the minimum free space across attached
		// rings, so every ring receives the identical prefix before the
		// producer waits.
		free := len(recs)
		for j := range f.rings {
			r := &f.rings[j]
			if r.detached {
				continue
			}
			if avail := len(r.buf) - r.n; avail < free {
				free = avail
			}
		}
		if free == 0 {
			f.change.Wait()
			continue
		}
		for j := range f.rings {
			r := &f.rings[j]
			if r.detached {
				continue
			}
			for _, v := range recs[:free] {
				r.buf[(r.head+r.n)%len(r.buf)] = v
				r.n++
			}
			f.occ += free
		}
		if f.occ > f.peak {
			f.peak = f.occ
		}
		recs = recs[free:]
		f.change.Broadcast()
	}
	return f.live > 0
}

// CloseProducer marks the stream complete: consumers drain their
// buffered records and then see end-of-stream.
func (f *Fan[T]) CloseProducer() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		f.closed = true
		f.change.Broadcast()
	}
}

// Cancel detaches consumer i: its buffered records are discarded and
// the producer stops copying to it, so an early-exiting consumer can
// never block the others through backpressure. Idempotent.
func (f *Fan[T]) Cancel(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := &f.rings[i]
	if r.detached {
		return
	}
	r.detached = true
	f.occ -= r.n
	r.n = 0
	r.buf = nil
	f.live--
	f.change.Broadcast()
}

// NextBatch appends up to max records from ring i to dst and returns
// it. It blocks until at least one record is buffered, and returns
// ok=false only when the producer has closed and ring i is drained (or
// canceled). One goroutine per ring.
func (f *Fan[T]) NextBatch(i int, dst []T, max int) ([]T, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := &f.rings[i]
	for {
		if r.n > 0 {
			take := r.n
			if take > max {
				take = max
			}
			for k := 0; k < take; k++ {
				dst = append(dst, r.buf[r.head])
				r.head = (r.head + 1) % len(r.buf)
				r.n--
			}
			f.occ -= take
			f.change.Broadcast() // wake a producer blocked on this ring
			return dst, true
		}
		if f.closed || r.detached {
			return dst, false
		}
		f.change.Wait()
	}
}

// Next pops a single record from ring i (a convenience over NextBatch
// for tests and low-rate consumers).
func (f *Fan[T]) Next(i int) (T, bool) {
	var buf [1]T
	out, ok := f.NextBatch(i, buf[:0], 1)
	if !ok || len(out) == 0 {
		var zero T
		return zero, false
	}
	return out[0], true
}

// Peak reports the high-water mark of records buffered across all
// rings. Call it after the consumers have drained the fan (or accept a
// racy read).
func (f *Fan[T]) Peak() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.peak
}
