package merge

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapMergeOrder: merging k monotone streams through the heap
// yields the stable (key, index) order a stable sort would produce.
func TestHeapMergeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k, per = 9, 200
	streams := make([][]float64, k)
	for i := range streams {
		t0 := 0.0
		for j := 0; j < per; j++ {
			// Coarse quantization forces frequent exact ties across
			// streams, exercising the index tie-break.
			t0 += float64(rng.Intn(4))
			streams[i] = append(streams[i], t0)
		}
	}

	type rec struct {
		time float64
		src  int
	}
	var want []rec
	for i, s := range streams {
		for _, ts := range s {
			want = append(want, rec{ts, i})
		}
	}
	sort.SliceStable(want, func(a, b int) bool {
		if want[a].time != want[b].time {
			return want[a].time < want[b].time
		}
		return want[a].src < want[b].src
	})

	pos := make([]int, k)
	h := Heap{Less: func(a, b int) bool {
		ta, tb := streams[a][pos[a]], streams[b][pos[b]]
		if ta != tb {
			return ta < tb
		}
		return a < b
	}}
	h.Grow(k)
	for i := 0; i < k; i++ {
		h.Push(i)
	}
	var got []rec
	for h.Len() > 0 {
		i := h.Min()
		got = append(got, rec{streams[i][pos[i]], i})
		pos[i]++
		if pos[i] < len(streams[i]) {
			h.FixMin()
		} else {
			h.PopMin()
		}
	}

	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: merged %+v, stable sort %+v", i, got[i], want[i])
		}
	}
}

// TestHeapReset: a reset heap reuses capacity and merges correctly.
func TestHeapReset(t *testing.T) {
	keys := []float64{3, 1, 2}
	h := Heap{Less: func(a, b int) bool { return keys[a] < keys[b] }}
	for round := 0; round < 2; round++ {
		h.Reset()
		for i := range keys {
			h.Push(i)
		}
		order := []int{}
		for h.Len() > 0 {
			order = append(order, h.Min())
			h.PopMin()
		}
		if order[0] != 1 || order[1] != 2 || order[2] != 0 {
			t.Fatalf("round %d: pop order %v, want [1 2 0]", round, order)
		}
	}
}
