package merge

import (
	"sync"
	"testing"
)

// Every consumer must observe the producer's exact sequence, however
// the batch sizes on either side interleave.
func TestFanAllConsumersSeeIdenticalSequence(t *testing.T) {
	const n, k = 10000, 4
	f := NewFan[int](k, 64)
	go func() {
		batch := make([]int, 0, 7)
		for v := 0; v < n; v++ {
			batch = append(batch, v)
			if len(batch) == cap(batch) {
				f.Publish(batch)
				batch = batch[:0]
			}
		}
		f.Publish(batch)
		f.CloseProducer()
	}()
	var wg sync.WaitGroup
	got := make([][]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]int, 0, 13)
			for {
				out, ok := f.NextBatch(i, buf[:0], 13)
				if !ok {
					return
				}
				got[i] = append(got[i], out...)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if len(got[i]) != n {
			t.Fatalf("consumer %d got %d records, want %d", i, len(got[i]), n)
		}
		for v, x := range got[i] {
			if x != v {
				t.Fatalf("consumer %d record %d = %d, want %d", i, v, x, v)
			}
		}
	}
}

// Backpressure: resident records never exceed rings × capacity, no
// matter how long the stream is.
func TestFanBackpressureBoundsPeak(t *testing.T) {
	const n, k, capacity = 50000, 3, 16
	f := NewFan[int](k, capacity)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			count := 0
			for {
				if _, ok := f.Next(i); !ok {
					break
				}
				count++
			}
			if count != n {
				t.Errorf("consumer %d drained %d records, want %d", i, count, n)
			}
		}(i)
	}
	one := make([]int, 1)
	for v := 0; v < n; v++ {
		one[0] = v
		f.Publish(one)
	}
	f.CloseProducer()
	wg.Wait()
	if p := f.Peak(); p > k*capacity {
		t.Fatalf("peak occupancy %d exceeds rings x capacity = %d", p, k*capacity)
	}
}

// A canceled consumer must stop gating the producer: with one ring
// never drained, Publish would block forever unless Cancel detaches it.
func TestFanCancelUnblocksProducer(t *testing.T) {
	f := NewFan[int](2, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]int, 64)
		for i := range buf {
			buf[i] = i
		}
		f.Publish(buf) // blocks on ring 1 until it is canceled
		f.CloseProducer()
	}()
	// Drain ring 0 concurrently; ring 1 is abandoned mid-stream.
	go func() {
		for {
			if _, ok := f.Next(0); !ok {
				return
			}
		}
	}()
	f.Cancel(1)
	<-done
	// Cancel is idempotent and NextBatch on a canceled ring reports
	// end-of-stream.
	f.Cancel(1)
	if _, ok := f.Next(1); ok {
		t.Fatal("canceled ring yielded a record")
	}
}

// With every consumer canceled, Publish reports that nobody is
// listening so the producer can stop generating.
func TestFanPublishReportsNoConsumers(t *testing.T) {
	f := NewFan[int](2, 4)
	f.Cancel(0)
	f.Cancel(1)
	if f.Publish([]int{1, 2, 3}) {
		t.Fatal("Publish reported attached consumers after all were canceled")
	}
}

// End-of-stream: consumers drain buffered records after CloseProducer,
// then see ok=false.
func TestFanDrainAfterClose(t *testing.T) {
	f := NewFan[int](1, 8)
	f.Publish([]int{1, 2, 3})
	f.CloseProducer()
	for want := 1; want <= 3; want++ {
		v, ok := f.Next(0)
		if !ok || v != want {
			t.Fatalf("Next = %d,%v want %d,true", v, ok, want)
		}
	}
	if _, ok := f.Next(0); ok {
		t.Fatal("Next yielded a record after the stream drained")
	}
}
