package merge

import "sync"

// Group is a set of k bounded producer rings feeding one consumer
// through a watermark-gated k-way merge — the coordination core of the
// pipelined sharded replay. Each producer pushes records in
// nondecreasing Less order into its own ring (blocking while the ring
// is full, which is the backpressure that bounds memory by ring
// capacity instead of record count) and advances a monotone watermark:
// after SetWatermark(i, w), every later Push on ring i carries a record
// with Time >= w. The consumer pops the globally least record as soon
// as it is provably final.
//
// Safety rule: the least buffered record r may be emitted iff every
// OTHER ring that is still open and currently empty has watermark
// strictly greater than Time(r). Non-empty rings need no watermark
// check — their buffered head already bounds their future pushes — and
// the inequality must be strict because Less may break Time ties on
// fields a lagging producer could still undercut.
type Group[T any] struct {
	mu       sync.Mutex
	change   *sync.Cond // any state change: pushes, pops, watermarks, closes
	less     func(a, b T) bool
	time     func(T) float64
	rings    []wring[T]
	open     int
	occ      int  // buffered records across all rings
	peak     int  // high-water mark of occ
	canceled bool // consumer abandoned: pushes drop, batches end
}

// wring is one producer's bounded circular buffer.
type wring[T any] struct {
	buf    []T
	head   int // index of the oldest buffered record
	n      int
	wm     float64
	closed bool
}

// NewGroup builds a group of k rings of the given capacity. less is the
// merge order (a strict total order); time maps a record to the clock
// its producers' watermarks speak.
func NewGroup[T any](k, capacity int, less func(a, b T) bool, time func(T) float64) *Group[T] {
	if k <= 0 || capacity <= 0 {
		panic("merge: NewGroup needs k > 0 and capacity > 0")
	}
	g := &Group[T]{less: less, time: time, rings: make([]wring[T], k), open: k}
	g.change = sync.NewCond(&g.mu)
	for i := range g.rings {
		g.rings[i].buf = make([]T, capacity)
	}
	return g
}

// Push appends recs — which must continue ring i's nondecreasing Less
// order and respect its watermark — blocking whenever the ring is full
// until the consumer frees space. It reports whether the group is still
// live: after Cancel it drops the records and returns false, so a
// producer loop can stop generating instead of blocking forever on a
// ring nobody will drain.
func (g *Group[T]) Push(i int, recs []T) bool {
	if len(recs) == 0 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return !g.canceled
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	r := &g.rings[i]
	for len(recs) > 0 {
		for r.n == len(r.buf) && !g.canceled {
			g.change.Wait()
		}
		if g.canceled {
			return false
		}
		take := len(r.buf) - r.n
		if take > len(recs) {
			take = len(recs)
		}
		for _, v := range recs[:take] {
			r.buf[(r.head+r.n)%len(r.buf)] = v
			r.n++
		}
		recs = recs[take:]
		g.occ += take
		if g.occ > g.peak {
			g.peak = g.occ
		}
		g.change.Broadcast()
	}
	return true
}

// Cancel abandons the group: every blocked or future Push drops its
// records and returns false, and NextBatch reports the stream ended.
// It lets a consumer walk away early (an error mid-replay, a bounded
// probe) without stranding producers on full rings. Idempotent.
func (g *Group[T]) Cancel() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.canceled {
		g.canceled = true
		g.change.Broadcast()
	}
}

// SetWatermark promises that every later Push on ring i carries records
// with Time >= w. Watermarks are monotone; regressions are ignored.
func (g *Group[T]) SetWatermark(i int, w float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w > g.rings[i].wm {
		g.rings[i].wm = w
		g.change.Broadcast()
	}
}

// Close marks ring i done: no further pushes, and the safety rule stops
// waiting on it once its buffer drains.
func (g *Group[T]) Close(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.rings[i].closed {
		g.rings[i].closed = true
		g.open--
		g.change.Broadcast()
	}
}

// NextBatch appends up to max merged records to dst and returns it. It
// blocks until at least one record is emittable, and returns ok=false
// only when every ring is closed and drained. Single consumer only.
func (g *Group[T]) NextBatch(dst []T, max int) ([]T, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.canceled {
			return dst, false
		}
		popped := 0
		for popped < max {
			best := -1
			for j := range g.rings {
				if g.rings[j].n == 0 {
					continue
				}
				if best < 0 || g.less(g.rings[j].buf[g.rings[j].head], g.rings[best].buf[g.rings[best].head]) {
					best = j
				}
			}
			if best < 0 {
				break
			}
			r := g.rings[best].buf[g.rings[best].head]
			safe := true
			for j := range g.rings {
				w := &g.rings[j]
				if j == best || w.n > 0 || w.closed {
					continue
				}
				if g.time(r) >= w.wm {
					safe = false
					break
				}
			}
			if !safe {
				break
			}
			b := &g.rings[best]
			b.head = (b.head + 1) % len(b.buf)
			b.n--
			g.occ--
			dst = append(dst, r)
			popped++
		}
		if popped > 0 {
			g.change.Broadcast() // wake producers blocked on full rings
			return dst, true
		}
		if g.open == 0 && g.occ == 0 {
			return dst, false
		}
		g.change.Wait()
	}
}

// Next pops a single merged record (a convenience over NextBatch for
// tests and low-rate consumers).
func (g *Group[T]) Next() (T, bool) {
	var buf [1]T
	out, ok := g.NextBatch(buf[:0], 1)
	if !ok || len(out) == 0 {
		var zero T
		return zero, ok && len(out) > 0
	}
	return out[0], true
}

// Peak reports the high-water mark of records buffered across all rings
// — the quantity the pipelined replay's memory bound is stated in. Call
// it after the consumer has drained the group (or accept a racy read).
func (g *Group[T]) Peak() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}
