package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNaive(t *testing.T) {
	var n Naive
	if n.Predict() != 0 {
		t.Error("empty naive should predict 0")
	}
	n.Observe(5)
	n.Observe(7)
	if n.Predict() != 7 {
		t.Errorf("naive = %v, want 7", n.Predict())
	}
}

func TestSMA(t *testing.T) {
	s := NewSMA(3)
	if s.Predict() != 0 {
		t.Error("empty SMA should predict 0")
	}
	s.Observe(3)
	if s.Predict() != 3 {
		t.Error("partial window should average observed samples")
	}
	s.Observe(6)
	s.Observe(9)
	if got := s.Predict(); math.Abs(got-6) > 1e-12 {
		t.Errorf("SMA = %v, want 6", got)
	}
	s.Observe(12) // evicts 3
	if got := s.Predict(); math.Abs(got-9) > 1e-12 {
		t.Errorf("rolled SMA = %v, want 9", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Predict()-42) > 1e-9 {
		t.Errorf("EWMA on constant = %v, want 42", e.Predict())
	}
}

// TestEWMABetweenExtremes: the smoothed value always lies within the
// observed range.
func TestEWMABetweenExtremes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEWMA(0.4)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			x := rng.Float64() * 100
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			e.Observe(x)
		}
		p := e.Predict()
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHoltTracksLinearTrend(t *testing.T) {
	h := NewHolt(0.5, 0.5)
	// Perfect ramp: x_t = 10 + 3t. Holt should learn the slope and
	// predict the next point exactly in the limit.
	for i := 0; i < 50; i++ {
		h.Observe(10 + 3*float64(i))
	}
	want := 10 + 3*50.0
	if math.Abs(h.Predict()-want) > 0.5 {
		t.Errorf("Holt on ramp predicts %v, want %v", h.Predict(), want)
	}
}

// TestHoltBeatsEWMAOnRamp: the reason to use Holt — on ramps it must
// outpredict level-only smoothing.
func TestHoltBeatsEWMAOnRamp(t *testing.T) {
	series := make([]float64, 60)
	for i := range series {
		series[i] = 5 + 2*float64(i)
	}
	maeHolt, _ := Evaluate(NewHolt(0.5, 0.5), series)
	maeEWMA, _ := Evaluate(NewEWMA(0.5), series)
	if maeHolt >= maeEWMA {
		t.Errorf("Holt MAE %v should beat EWMA %v on a ramp", maeHolt, maeEWMA)
	}
}

func TestWindowMax(t *testing.T) {
	w := NewWindowMax(3)
	w.Observe(5)
	w.Observe(2)
	if w.Predict() != 5 {
		t.Errorf("window max = %v, want 5", w.Predict())
	}
	w.Observe(1)
	w.Observe(1) // evicts 5
	if w.Predict() != 2 {
		t.Errorf("rolled window max = %v, want 2", w.Predict())
	}
}

// TestWindowMaxIsConservative: the peak forecaster's prediction is at
// least the mean forecaster's on the same data.
func TestWindowMaxIsConservative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wm := NewWindowMax(8)
		sma := NewSMA(8)
		for i := 0; i < 30; i++ {
			x := rng.ExpFloat64() * 10
			wm.Observe(x)
			sma.Observe(x)
		}
		return wm.Predict() >= sma.Predict()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluate(t *testing.T) {
	// Naive on a constant series is perfect.
	mae, mape := Evaluate(&Naive{}, []float64{4, 4, 4, 4})
	if mae != 0 || mape != 0 {
		t.Errorf("naive on constant: mae=%v mape=%v, want 0", mae, mape)
	}
	// Naive on alternating series errs by the step each time.
	mae, _ = Evaluate(&Naive{}, []float64{1, 3, 1, 3})
	if math.Abs(mae-2) > 1e-12 {
		t.Errorf("naive on alternation mae = %v, want 2", mae)
	}
	if m, p := Evaluate(&Naive{}, nil); m != 0 || p != 0 {
		t.Error("empty series should evaluate to 0")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSMA(0) },
		func() { NewEWMA(0) },
		func() { NewEWMA(1.5) },
		func() { NewHolt(0, 0.5) },
		func() { NewHolt(0.5, 2) },
		func() { NewWindowMax(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid forecaster construction should panic")
				}
			}()
			fn()
		}()
	}
}

func TestNames(t *testing.T) {
	for _, f := range []Forecaster{
		&Naive{}, NewSMA(4), NewEWMA(0.3), NewHolt(0.4, 0.2), NewWindowMax(5),
	} {
		if f.Name() == "" {
			t.Errorf("%T has empty name", f)
		}
	}
}
