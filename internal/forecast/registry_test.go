package forecast

import (
	"strings"
	"testing"
)

func TestRegistryKnowsEveryName(t *testing.T) {
	for _, name := range Names() {
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
		mk, err := New(name, Options{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		f := mk()
		f.Observe(3)
		f.Observe(5)
		// Holt extrapolates the trend past the last observation; every
		// model must stay within one trend step of the observed range.
		if p := f.Predict(); p < 3 || p > 7 {
			t.Errorf("%s: prediction %v outside plausible range [3,7]", name, p)
		}
	}
	if Known("oracle") {
		t.Error("Known accepted an unregistered name")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := New("oracle", Options{}); err == nil {
		t.Fatal("unknown forecaster accepted")
	} else if !strings.Contains(err.Error(), "ewma") {
		t.Errorf("error %q should list the registry", err)
	}
}

func TestRegistryFactoryYieldsIndependentInstances(t *testing.T) {
	mk, err := New(ModelEWMA, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := mk(), mk()
	a.Observe(10)
	if got := b.Predict(); got != 0 {
		t.Errorf("instance b saw instance a's observation: %v", got)
	}
}

func TestRegistryOptions(t *testing.T) {
	mk, err := New(ModelSMA, Options{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := mk()
	f.Observe(2)
	f.Observe(4)
	f.Observe(6)
	if got := f.Predict(); got != 5 {
		t.Errorf("sma window 2 over (4,6) = %v, want 5", got)
	}
	if _, err := New(ModelHolt, Options{Alpha: 2}); err == nil {
		t.Error("alpha 2 accepted")
	}
	if _, err := New(ModelEWMA, Options{Alpha: -0.5}); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestRegistryRejectsNegativeWindow(t *testing.T) {
	if _, err := New(ModelSMA, Options{Window: -3}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := New(ModelWindowMax, Options{Window: -1}); err == nil {
		t.Error("negative window accepted for window-max")
	}
}
