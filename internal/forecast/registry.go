package forecast

import "fmt"

// Model names accepted by New, in the order listed by Names. The
// registry is how declarative scaler specs (autoscale.Spec, the JSON
// topology codec, CLI flags) select a forecaster without constructing
// one directly.
const (
	ModelNaive     = "naive"
	ModelSMA       = "sma"
	ModelEWMA      = "ewma"
	ModelHolt      = "holt"
	ModelWindowMax = "window-max"
)

// Names returns the registry's forecaster names.
func Names() []string {
	return []string{ModelNaive, ModelSMA, ModelEWMA, ModelHolt, ModelWindowMax}
}

// Known reports whether name is a registered forecaster model.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Options parameterizes registry construction. Zero values select the
// defaults below. Every field is range-checked regardless of the
// chosen model, so an out-of-range value in a declarative spec
// surfaces instead of riding along unread.
type Options struct {
	// Window is the horizon of the windowed models (sma, window-max),
	// in control intervals. Default 6.
	Window int
	// Alpha is the level-smoothing factor of ewma and holt. Default 0.5.
	Alpha float64
	// Beta is holt's trend-smoothing factor. Default 0.3.
	Beta float64
}

// Defaults for Options' zero values.
const (
	DefaultWindow = 6
	DefaultAlpha  = 0.5
	DefaultBeta   = 0.3
)

func (o Options) withDefaults() Options {
	// Only the zero value selects a default; negative values fall
	// through to New's range checks and error like bad alpha/beta do.
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Beta == 0 {
		o.Beta = DefaultBeta
	}
	return o
}

// New returns a factory for the named forecaster: each call of the
// factory yields a fresh instance, so one spec can supply independent
// per-station forecasters (they carry per-site state). Unknown names
// and out-of-range options return an error listing the registry.
func New(name string, opts Options) (func() Forecaster, error) {
	o := opts.withDefaults()
	if o.Alpha < 0 || o.Alpha > 1 || o.Beta < 0 || o.Beta > 1 {
		return nil, fmt.Errorf("forecast: alpha %v / beta %v must be in (0,1] (0 selects the default)",
			o.Alpha, o.Beta)
	}
	if o.Window < 0 {
		return nil, fmt.Errorf("forecast: window %d must be positive", o.Window)
	}
	switch name {
	case ModelNaive:
		return func() Forecaster { return &Naive{} }, nil
	case ModelSMA:
		return func() Forecaster { return NewSMA(o.Window) }, nil
	case ModelEWMA:
		return func() Forecaster { return NewEWMA(o.Alpha) }, nil
	case ModelHolt:
		return func() Forecaster { return NewHolt(o.Alpha, o.Beta) }, nil
	case ModelWindowMax:
		return func() Forecaster { return NewWindowMax(o.Window) }, nil
	default:
		return nil, fmt.Errorf("forecast: unknown forecaster %q (want one of %v)", name, Names())
	}
}
