// Package forecast provides the short-horizon workload predictors behind
// predictive edge capacity allocation. The paper's dynamic-allocation
// takeaway (§3.2) and future work (§7) require anticipating per-site
// rate changes; the cited workload-characterization literature ([13],
// [36]) uses exactly these model families: moving averages, exponential
// smoothing, and trend-aware (Holt) smoothing.
//
// All forecasters consume a regularly sampled series (one observation
// per control interval) and predict the next value; they are evaluated
// by the predictive autoscaler ablation.
package forecast

import "fmt"

// Forecaster predicts the next value of a regularly sampled series.
type Forecaster interface {
	// Observe feeds the latest sample.
	Observe(x float64)
	// Predict returns the forecast for the next sample. Before any
	// observation it returns 0.
	Predict() float64
	// Name identifies the model.
	Name() string
}

// Naive predicts the last observed value (the persistence model — the
// baseline every forecaster must beat).
type Naive struct {
	last float64
	seen bool
}

// Observe records the sample.
func (n *Naive) Observe(x float64) { n.last, n.seen = x, true }

// Predict returns the last sample.
func (n *Naive) Predict() float64 { return n.last }

// Name returns "naive".
func (n *Naive) Name() string { return "naive" }

// SMA is a simple moving average over a fixed window.
type SMA struct {
	window []float64
	size   int
	idx    int
	filled bool
}

// NewSMA returns a moving-average forecaster over n samples.
func NewSMA(n int) *SMA {
	if n <= 0 {
		panic(fmt.Sprintf("forecast: SMA window %d must be positive", n))
	}
	return &SMA{window: make([]float64, n), size: n}
}

// Observe records the sample.
func (s *SMA) Observe(x float64) {
	s.window[s.idx] = x
	s.idx++
	if s.idx == s.size {
		s.idx = 0
		s.filled = true
	}
}

// Predict returns the window mean.
func (s *SMA) Predict() float64 {
	n := s.size
	if !s.filled {
		n = s.idx
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.window[i]
	}
	return sum / float64(n)
}

// Name returns "sma".
func (s *SMA) Name() string { return fmt.Sprintf("sma-%d", s.size) }

// EWMA is exponentially weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha reacts faster.
type EWMA struct {
	Alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA forecaster.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("forecast: EWMA alpha %v outside (0,1]", alpha))
	}
	return &EWMA{Alpha: alpha}
}

// Observe records the sample.
func (e *EWMA) Observe(x float64) {
	if !e.seen {
		e.value, e.seen = x, true
		return
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
}

// Predict returns the smoothed value.
func (e *EWMA) Predict() float64 { return e.value }

// Name returns "ewma".
func (e *EWMA) Name() string { return fmt.Sprintf("ewma-%.2g", e.Alpha) }

// Holt is double exponential smoothing (level + trend), able to
// anticipate ramping workloads that EWMA lags.
type Holt struct {
	Alpha, Beta  float64
	level, trend float64
	n            int
	prev         float64
}

// NewHolt returns a Holt linear forecaster.
func NewHolt(alpha, beta float64) *Holt {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("forecast: Holt alpha=%v beta=%v outside (0,1]", alpha, beta))
	}
	return &Holt{Alpha: alpha, Beta: beta}
}

// Observe records the sample.
func (h *Holt) Observe(x float64) {
	switch h.n {
	case 0:
		h.level = x
	case 1:
		h.trend = x - h.prev
		h.level = x
	default:
		prevLevel := h.level
		h.level = h.Alpha*x + (1-h.Alpha)*(h.level+h.trend)
		h.trend = h.Beta*(h.level-prevLevel) + (1-h.Beta)*h.trend
	}
	h.prev = x
	h.n++
}

// Predict returns level + trend (one step ahead).
func (h *Holt) Predict() float64 {
	if h.n == 0 {
		return 0
	}
	return h.level + h.trend
}

// Name returns "holt".
func (h *Holt) Name() string { return fmt.Sprintf("holt-%.2g-%.2g", h.Alpha, h.Beta) }

// WindowMax predicts the maximum over the recent window — the
// peak-provisioning forecaster matching the paper's §5.2 argument that
// capacity must cover peaks, not means.
type WindowMax struct {
	window []float64
	size   int
	idx    int
	filled bool
}

// NewWindowMax returns a max-over-window forecaster.
func NewWindowMax(n int) *WindowMax {
	if n <= 0 {
		panic(fmt.Sprintf("forecast: WindowMax window %d must be positive", n))
	}
	return &WindowMax{window: make([]float64, n), size: n}
}

// Observe records the sample.
func (w *WindowMax) Observe(x float64) {
	w.window[w.idx] = x
	w.idx++
	if w.idx == w.size {
		w.idx = 0
		w.filled = true
	}
}

// Predict returns the window maximum.
func (w *WindowMax) Predict() float64 {
	n := w.size
	if !w.filled {
		n = w.idx
	}
	var max float64
	for i := 0; i < n; i++ {
		if w.window[i] > max {
			max = w.window[i]
		}
	}
	return max
}

// Name returns "window-max".
func (w *WindowMax) Name() string { return fmt.Sprintf("winmax-%d", w.size) }

// Evaluate replays a series through a forecaster and returns the mean
// absolute error and mean absolute percentage error of its one-step
// predictions (skipping the first warm observation).
func Evaluate(f Forecaster, series []float64) (mae, mape float64) {
	var n, absErr, pctErr float64
	for i, x := range series {
		if i > 0 {
			p := f.Predict()
			e := p - x
			if e < 0 {
				e = -e
			}
			absErr += e
			if x != 0 {
				pctErr += e / x
			}
			n++
		}
		f.Observe(x)
	}
	if n == 0 {
		return 0, 0
	}
	return absErr / n, pctErr / n
}
