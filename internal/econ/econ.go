// Package econ models the economic cost of edge deployments, the
// paper's second future-work direction: "we also plan to study the
// economic costs of edge deployments resulting from the need to deploy
// extra capacity to prevent performance inversion" (§7).
//
// The model combines three ingredients from the paper:
//   - the two-sigma peak-provisioning capacities of §5.2,
//   - the Eq. 22 per-site server counts needed to defeat Lemma 3.1, and
//   - per-server-hour prices, with edge servers typically costing more
//     than cloud servers of the same size (small sites forgo economies
//     of scale; industry edge offerings price 1.3–2× above region
//     instances).
package econ

import (
	"fmt"
	"math"

	"repro/internal/theory"
)

// Pricing holds per-server-hour prices in arbitrary currency units,
// plus the per-request penalty charged for traffic an admission policy
// turns away (lost revenue / SLA credit; 0 means rejections are free).
type Pricing struct {
	CloudPerServerHour float64
	EdgePerServerHour  float64
	RejectPenalty      float64
}

// DefaultPricing uses the paper-era c5a.xlarge on-demand price
// (~$0.154/h) and a 1.5× edge premium. Rejections carry no penalty by
// default.
func DefaultPricing() Pricing {
	return Pricing{CloudPerServerHour: 0.154, EdgePerServerHour: 0.154 * 1.5}
}

// Check reports whether the pricing is usable: positive finite
// server-hour rates and a non-negative finite reject penalty. NaN and
// ±Inf are rejected explicitly — every ordered comparison against NaN
// is false, so "x <= 0" alone would let a NaN price poison TotalCost.
func (p Pricing) Check() error {
	bad := func(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 }
	if bad(p.CloudPerServerHour) {
		return fmt.Errorf("econ: CloudPerServerHour must be positive and finite, got %v", p.CloudPerServerHour)
	}
	if bad(p.EdgePerServerHour) {
		return fmt.Errorf("econ: EdgePerServerHour must be positive and finite, got %v", p.EdgePerServerHour)
	}
	if math.IsNaN(p.RejectPenalty) || math.IsInf(p.RejectPenalty, 0) || p.RejectPenalty < 0 {
		return fmt.Errorf("econ: RejectPenalty must be finite and >= 0, got %v", p.RejectPenalty)
	}
	return nil
}

func (p Pricing) validate() {
	if err := p.Check(); err != nil {
		panic(err.Error())
	}
}

// Comparison is the cost of serving one workload from the cloud versus
// the edge, under peak provisioning and inversion-free provisioning.
type Comparison struct {
	Lambda float64 // aggregate mean rate, req/s
	K      int     // edge sites
	Mu     float64 // per-server service rate

	CloudServers int // two-sigma cloud provisioning
	// EdgeServersPeak provisions each site for its two-sigma peak
	// (§5.2); EdgeServersNoInversion additionally satisfies Eq. 22 so no
	// site inverts against the cloud.
	EdgeServersPeak        int
	EdgeServersNoInversion int

	CloudCostPerHour           float64
	EdgePeakCostPerHour        float64
	EdgeNoInversionCostPerHour float64
	PeakCostRatio              float64 // edge-peak / cloud
	NoInversionCostRatio       float64 // edge-no-inversion / cloud
	InversionPremiumPerHour    float64 // extra cost of inversion-freedom over peak provisioning
}

// Compare prices a balanced workload of lambda req/s over k edge sites
// against a pooled cloud, at network gap dn (seconds).
func Compare(lambda float64, k int, mu, dn float64, pricing Pricing) Comparison {
	if lambda < 0 || k <= 0 || mu <= 0 {
		panic(fmt.Sprintf("econ: invalid inputs lambda=%v k=%d mu=%v", lambda, k, mu))
	}
	pricing.validate()

	cloudServers, _ := theory.TwoSigmaServers(lambda, k, mu)

	// Per-site two-sigma peak provisioning.
	perSiteLambda := lambda / float64(k)
	perSitePeak := perSiteLambda + 2*math.Sqrt(perSiteLambda)
	peakPerSite := int(math.Ceil(perSitePeak / mu))
	if peakPerSite < 1 {
		peakPerSite = 1
	}
	edgePeak := peakPerSite * k

	// Inversion-free provisioning: each site also needs Eq. 22's k_i.
	lambdas := make([]float64, k)
	for i := range lambdas {
		lambdas[i] = perSiteLambda
	}
	plan := theory.PlanEdgeCapacity(dn, mu, lambdas, cloudServers, 1.0, 1024)
	noInv := 0
	for i, ki := range plan.PerSite {
		if peakPerSite > ki {
			ki = peakPerSite // inversion-free must also cover the peak
		}
		noInv += ki
		_ = i
	}

	c := Comparison{
		Lambda: lambda, K: k, Mu: mu,
		CloudServers:           cloudServers,
		EdgeServersPeak:        edgePeak,
		EdgeServersNoInversion: noInv,
	}
	c.CloudCostPerHour = float64(cloudServers) * pricing.CloudPerServerHour
	c.EdgePeakCostPerHour = float64(edgePeak) * pricing.EdgePerServerHour
	c.EdgeNoInversionCostPerHour = float64(noInv) * pricing.EdgePerServerHour
	if c.CloudCostPerHour > 0 {
		c.PeakCostRatio = c.EdgePeakCostPerHour / c.CloudCostPerHour
		c.NoInversionCostRatio = c.EdgeNoInversionCostPerHour / c.CloudCostPerHour
	}
	c.InversionPremiumPerHour = c.EdgeNoInversionCostPerHour - c.EdgePeakCostPerHour
	return c
}

// AutoscaledCost converts integrated server-seconds (from the
// autoscaler's telemetry) into currency, for comparing elastic edge
// capacity against static provisioning.
func AutoscaledCost(serverSeconds float64, pricing Pricing) float64 {
	pricing.validate()
	if serverSeconds < 0 {
		panic("econ: negative server-seconds")
	}
	return serverSeconds / 3600 * pricing.EdgePerServerHour
}

// BreakEvenEdgePremium returns the edge per-server-hour price multiple
// (relative to cloud) at which the inversion-free edge deployment costs
// the same as the cloud deployment. Above this premium the cloud is
// strictly cheaper.
func BreakEvenEdgePremium(lambda float64, k int, mu, dn float64) float64 {
	base := Pricing{CloudPerServerHour: 1, EdgePerServerHour: 1}
	c := Compare(lambda, k, mu, dn, base)
	if c.EdgeServersNoInversion == 0 {
		return math.Inf(1)
	}
	return float64(c.CloudServers) / float64(c.EdgeServersNoInversion)
}
