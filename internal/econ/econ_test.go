package econ

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	c := Compare(100, 5, 13, 0.024, DefaultPricing())
	if c.CloudServers <= 0 || c.EdgeServersPeak <= 0 || c.EdgeServersNoInversion <= 0 {
		t.Fatalf("non-positive server counts: %+v", c)
	}
	// §5.2: the edge always needs at least as many servers as the cloud.
	if c.EdgeServersPeak < c.CloudServers {
		t.Errorf("edge peak servers %d below cloud %d", c.EdgeServersPeak, c.CloudServers)
	}
	// Inversion-freedom can only add servers.
	if c.EdgeServersNoInversion < c.EdgeServersPeak {
		t.Errorf("no-inversion servers %d below peak %d", c.EdgeServersNoInversion, c.EdgeServersPeak)
	}
	// Costs follow server counts and the edge premium.
	if c.PeakCostRatio <= 1 {
		t.Errorf("edge peak cost ratio %v should exceed 1", c.PeakCostRatio)
	}
	if c.NoInversionCostRatio < c.PeakCostRatio {
		t.Error("inversion-free ratio should not be below peak ratio")
	}
	if c.InversionPremiumPerHour < 0 {
		t.Error("negative inversion premium")
	}
}

// TestCostRatioGrowsWithK: splitting the same workload across more sites
// always costs more (the statistical smoothing argument priced out).
func TestCostRatioGrowsWithK(t *testing.T) {
	prev := 0.0
	for _, k := range []int{2, 5, 10, 25} {
		c := Compare(200, k, 13, 0.024, DefaultPricing())
		if c.PeakCostRatio < prev-0.01 {
			t.Fatalf("peak cost ratio fell at k=%d: %v after %v", k, c.PeakCostRatio, prev)
		}
		prev = c.PeakCostRatio
	}
}

// TestTighterNetworkGapCostsMore: a closer cloud (smaller Δn) forces
// more edge capacity to stay inversion-free, so the premium grows.
func TestTighterNetworkGapCostsMore(t *testing.T) {
	loose := Compare(100, 5, 13, 0.080, DefaultPricing())
	tight := Compare(100, 5, 13, 0.008, DefaultPricing())
	if tight.EdgeServersNoInversion < loose.EdgeServersNoInversion {
		t.Errorf("tight-Δn no-inversion servers %d below loose %d",
			tight.EdgeServersNoInversion, loose.EdgeServersNoInversion)
	}
}

// TestEdgeAlwaysCostsMoreProperty: for any sane inputs, the edge's peak
// cost ratio is at least 1 even at equal pricing.
func TestEdgeAlwaysCostsMoreProperty(t *testing.T) {
	equal := Pricing{CloudPerServerHour: 1, EdgePerServerHour: 1}
	f := func(lRaw uint16, kRaw uint8) bool {
		lambda := 10 + float64(lRaw%2000)
		k := 2 + int(kRaw%50)
		c := Compare(lambda, k, 13, 0.025, equal)
		return c.PeakCostRatio >= 1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutoscaledCost(t *testing.T) {
	p := Pricing{CloudPerServerHour: 1, EdgePerServerHour: 2}
	// 7200 server-seconds = 2 server-hours at 2/h = 4.
	if got := AutoscaledCost(7200, p); math.Abs(got-4) > 1e-12 {
		t.Errorf("autoscaled cost = %v, want 4", got)
	}
	if AutoscaledCost(0, p) != 0 {
		t.Error("zero usage should cost zero")
	}
}

func TestBreakEvenEdgePremium(t *testing.T) {
	be := BreakEvenEdgePremium(100, 5, 13, 0.024)
	if be <= 0 || be > 1 {
		t.Errorf("break-even premium = %v, want in (0, 1]", be)
	}
	// Verify: pricing the edge exactly at the break-even multiple makes
	// the two deployments cost the same.
	p := Pricing{CloudPerServerHour: 1, EdgePerServerHour: be}
	c := Compare(100, 5, 13, 0.024, p)
	if math.Abs(c.NoInversionCostRatio-1) > 1e-9 {
		t.Errorf("at break-even premium the ratio is %v, want 1", c.NoInversionCostRatio)
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Compare(-1, 5, 13, 0.02, DefaultPricing()) },
		func() { Compare(10, 0, 13, 0.02, DefaultPricing()) },
		func() { Compare(10, 5, 0, 0.02, DefaultPricing()) },
		func() { Compare(10, 5, 13, 0.02, Pricing{}) },
		func() { AutoscaledCost(-1, DefaultPricing()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid econ input should panic")
				}
			}()
			fn()
		}()
	}
}
