package queue

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/theory"
)

func drivePS(t *testing.T, servers int, lambda, mu, duration float64, seed int64) *PSStation {
	t.Helper()
	eng := sim.NewEngine(seed)
	st := NewPSStation(eng, "ps", servers)
	st.SetWarmup(duration / 10)
	arrRng := eng.NewStream()
	svcRng := eng.NewStream()
	var schedule func(e *sim.Engine)
	schedule = func(e *sim.Engine) {
		if e.Now() > duration {
			return
		}
		st.Arrive(&Request{ServiceTime: svcRng.ExpFloat64() / mu})
		e.After(arrRng.ExpFloat64()/lambda, schedule)
	}
	eng.After(arrRng.ExpFloat64()/lambda, schedule)
	eng.Run()
	st.Finish()
	return st
}

// TestPSSojournMatchesMM1 exploits the classic insistence of M/M/1-PS:
// its mean sojourn time equals FCFS M/M/1's, 1/(μ−λ).
func TestPSSojournMatchesMM1(t *testing.T) {
	for _, rho := range []float64{0.4, 0.7} {
		mu := 10.0
		st := drivePS(t, 1, rho*mu, mu, 8000, 17)
		want := theory.MM1Sojourn(rho, mu)
		got := st.Metrics().Sojourn.Mean()
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("rho=%v: PS sojourn %.4f, want %.4f", rho, got, want)
		}
	}
}

// TestPSImmediateStartNoIdleWait: a request arriving at an empty PS
// station departs after exactly its service time.
func TestPSImmediateStartNoIdleWait(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewPSStation(eng, "ps", 1)
	var depart float64
	eng.At(0, func(*sim.Engine) {
		st.Arrive(&Request{ServiceTime: 2, Done: DoneFunc(func(e *sim.Engine, r *Request) {
			depart = e.Now()
		})})
	})
	eng.Run()
	if math.Abs(depart-2) > 1e-9 {
		t.Errorf("solo PS departure at %v, want 2", depart)
	}
}

// TestPSFairSharing: two simultaneous equal jobs on one server each take
// twice their service time.
func TestPSFairSharing(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewPSStation(eng, "ps", 1)
	var departures []float64
	mk := func(svc float64) *Request {
		return &Request{ServiceTime: svc, Done: DoneFunc(func(e *sim.Engine, r *Request) {
			departures = append(departures, e.Now())
		})}
	}
	eng.At(0, func(*sim.Engine) {
		st.Arrive(mk(1))
		st.Arrive(mk(1))
	})
	eng.Run()
	if len(departures) != 2 {
		t.Fatalf("departures = %v", departures)
	}
	for _, d := range departures {
		if math.Abs(d-2) > 1e-9 {
			t.Errorf("shared departure at %v, want 2", d)
		}
	}
}

// TestPSUnequalJobs: jobs 1s and 3s arriving together on one server:
// the short job departs at t=2 (shared until then), the long at t=4.
func TestPSUnequalJobs(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewPSStation(eng, "ps", 1)
	var short, long float64
	eng.At(0, func(*sim.Engine) {
		st.Arrive(&Request{ServiceTime: 1, Done: DoneFunc(func(e *sim.Engine, _ *Request) { short = e.Now() })})
		st.Arrive(&Request{ServiceTime: 3, Done: DoneFunc(func(e *sim.Engine, _ *Request) { long = e.Now() })})
	})
	eng.Run()
	if math.Abs(short-2) > 1e-9 {
		t.Errorf("short job departed at %v, want 2", short)
	}
	if math.Abs(long-4) > 1e-9 {
		t.Errorf("long job departed at %v, want 4", long)
	}
}

// TestPSMultiServerNoSharingBelowCapacity: with c=2 and 2 jobs, each runs
// at full rate.
func TestPSMultiServerNoSharingBelowCapacity(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewPSStation(eng, "ps", 2)
	var departures []float64
	eng.At(0, func(*sim.Engine) {
		for i := 0; i < 2; i++ {
			st.Arrive(&Request{ServiceTime: 1, Done: DoneFunc(func(e *sim.Engine, _ *Request) {
				departures = append(departures, e.Now())
			})})
		}
	})
	eng.Run()
	for _, d := range departures {
		if math.Abs(d-1) > 1e-9 {
			t.Errorf("under-capacity PS departure at %v, want 1", d)
		}
	}
}

func TestPSLoadTracking(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewPSStation(eng, "ps", 1)
	eng.At(0, func(*sim.Engine) {
		st.Arrive(&Request{ServiceTime: 5})
		st.Arrive(&Request{ServiceTime: 5})
		if st.Load() != 2 {
			t.Errorf("Load = %d, want 2", st.Load())
		}
	})
	eng.Run()
	if st.Load() != 0 {
		t.Errorf("final Load = %d, want 0", st.Load())
	}
	if st.TotalArrivals() != 2 {
		t.Errorf("TotalArrivals = %d, want 2", st.TotalArrivals())
	}
}

func TestPSPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-server PS should panic")
		}
	}()
	NewPSStation(sim.NewEngine(1), "bad", 0)
}

func TestMergedWaits(t *testing.T) {
	eng := sim.NewEngine(1)
	a := NewStation(eng, "a", 1, FCFS)
	b := NewStation(eng, "b", 1, FCFS)
	eng.At(0, func(*sim.Engine) {
		a.Arrive(&Request{ServiceTime: 1})
		a.Arrive(&Request{ServiceTime: 1}) // waits 1s
		b.Arrive(&Request{ServiceTime: 2})
	})
	eng.Run()
	a.Finish()
	b.Finish()
	merged := MergedWaits([]Server{a, b})
	if merged.N() != 3 {
		t.Fatalf("merged N = %d, want 3", merged.N())
	}
	if got := merged.Quantile(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("max merged wait = %v, want 1", got)
	}
	soj := MergedSojourns([]Server{a, b})
	if soj.N() != 3 {
		t.Errorf("merged sojourns N = %d, want 3", soj.N())
	}
}
