package queue

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/theory"
)

// driveStation feeds a station with renewal arrivals and exponential (or
// deterministic) service for the given duration and returns it finished.
func driveMM(t *testing.T, servers int, lambda, mu, duration float64, disc Discipline, seed int64) *Station {
	t.Helper()
	eng := sim.NewEngine(seed)
	st := NewStation(eng, "test", servers, disc)
	st.SetWarmup(duration / 10)
	arrRng := eng.NewStream()
	svcRng := eng.NewStream()

	var id uint64
	var schedule func(e *sim.Engine)
	schedule = func(e *sim.Engine) {
		if e.Now() > duration {
			return
		}
		id++
		st.Arrive(&Request{ID: id, ServiceTime: svcRng.ExpFloat64() / mu})
		e.After(arrRng.ExpFloat64()/lambda, schedule)
	}
	eng.After(arrRng.ExpFloat64()/lambda, schedule)
	eng.Run()
	st.Finish()
	return st
}

// TestMM1WaitMatchesTheory validates the simulator against the exact
// M/M/1 queueing delay — the foundation of every edge-site result.
func TestMM1WaitMatchesTheory(t *testing.T) {
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.85} {
		mu := 13.0
		st := driveMM(t, 1, rho*mu, mu, 8000, FCFS, 42)
		want := theory.MM1Wait(rho, mu)
		got := st.Metrics().Wait.Mean()
		if math.Abs(got-want) > 0.12*want+0.001 {
			t.Errorf("rho=%v: simulated wait %.4fs vs M/M/1 %.4fs", rho, got, want)
		}
	}
}

// TestMMcWaitMatchesErlangC validates the multi-server station against
// the exact M/M/c wait — the cloud model.
func TestMMcWaitMatchesErlangC(t *testing.T) {
	for _, c := range []int{2, 5, 10} {
		rho := 0.8
		mu := 13.0
		st := driveMM(t, c, rho*float64(c)*mu, mu, 6000, FCFS, 7)
		want := theory.MMcWait(c, rho, mu)
		got := st.Metrics().Wait.Mean()
		if math.Abs(got-want) > 0.15*want+0.001 {
			t.Errorf("c=%d: simulated wait %.4fs vs M/M/c %.4fs", c, got, want)
		}
	}
}

// TestUtilizationMatchesOffered: measured busy fraction equals λ/(cμ).
func TestUtilizationMatchesOffered(t *testing.T) {
	mu := 10.0
	st := driveMM(t, 3, 18, mu, 4000, FCFS, 3)
	got := st.Metrics().Utilization(3)
	want := 18.0 / (3 * mu)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("utilization %.3f, want %.3f", got, want)
	}
}

// TestLittlesLaw: Lq = λ·Wq must hold for the simulated station.
func TestLittlesLaw(t *testing.T) {
	lambda, mu := 9.0, 13.0
	st := driveMM(t, 1, lambda, mu, 8000, FCFS, 11)
	m := st.Metrics()
	lq := m.QueueLen.Average()
	wq := m.Wait.Mean()
	measuredLambda := m.Arrivals.Rate()
	if measuredLambda == 0 {
		t.Fatal("no arrivals measured")
	}
	want := measuredLambda * wq
	if math.Abs(lq-want) > 0.12*want+0.02 {
		t.Errorf("Little's law violated: Lq=%.3f, λW=%.3f", lq, want)
	}
}

// TestWorkConservation: mean sojourn = mean wait + mean service.
func TestWorkConservation(t *testing.T) {
	st := driveMM(t, 2, 20, 13, 2000, FCFS, 5)
	m := st.Metrics()
	lhs := m.Sojourn.Mean()
	rhs := m.Wait.Mean() + m.Service.Mean()
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("sojourn %.6f != wait+service %.6f", lhs, rhs)
	}
}

func TestFCFSOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "fcfs", 1, FCFS)
	var completions []uint64
	mk := func(id uint64, svc float64) *Request {
		return &Request{ID: id, ServiceTime: svc, Done: DoneFunc(func(_ *sim.Engine, r *Request) {
			completions = append(completions, r.ID)
		})}
	}
	eng.At(0, func(*sim.Engine) { st.Arrive(mk(1, 10)) })
	eng.At(1, func(*sim.Engine) { st.Arrive(mk(2, 1)) })
	eng.At(2, func(*sim.Engine) { st.Arrive(mk(3, 1)) })
	eng.Run()
	want := []uint64{1, 2, 3}
	for i, w := range want {
		if completions[i] != w {
			t.Fatalf("FCFS completions %v, want %v", completions, want)
		}
	}
}

func TestLIFOOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "lifo", 1, LIFO)
	var completions []uint64
	mk := func(id uint64, svc float64) *Request {
		return &Request{ID: id, ServiceTime: svc, Done: DoneFunc(func(_ *sim.Engine, r *Request) {
			completions = append(completions, r.ID)
		})}
	}
	eng.At(0, func(*sim.Engine) { st.Arrive(mk(1, 10)) })
	eng.At(1, func(*sim.Engine) { st.Arrive(mk(2, 1)) })
	eng.At(2, func(*sim.Engine) { st.Arrive(mk(3, 1)) })
	eng.Run()
	// Request 1 serves first (empty system); then LIFO serves 3 before 2.
	want := []uint64{1, 3, 2}
	for i, w := range want {
		if completions[i] != w {
			t.Fatalf("LIFO completions %v, want %v", completions, want)
		}
	}
}

func TestSJFOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "sjf", 1, SJF)
	var completions []uint64
	mk := func(id uint64, svc float64) *Request {
		return &Request{ID: id, ServiceTime: svc, Done: DoneFunc(func(_ *sim.Engine, r *Request) {
			completions = append(completions, r.ID)
		})}
	}
	eng.At(0, func(*sim.Engine) { st.Arrive(mk(1, 10)) })
	eng.At(1, func(*sim.Engine) { st.Arrive(mk(2, 5)) })
	eng.At(2, func(*sim.Engine) { st.Arrive(mk(3, 1)) })
	eng.At(3, func(*sim.Engine) { st.Arrive(mk(4, 3)) })
	eng.Run()
	// After 1 finishes, shortest first: 3 (1s), 4 (3s), 2 (5s).
	want := []uint64{1, 3, 4, 2}
	for i, w := range want {
		if completions[i] != w {
			t.Fatalf("SJF completions %v, want %v", completions, want)
		}
	}
}

func TestRequestAccessors(t *testing.T) {
	r := &Request{Arrival: 10, Start: 12, Departure: 15, NetworkRTT: 0.025}
	if r.Wait() != 2 {
		t.Errorf("Wait = %v, want 2", r.Wait())
	}
	if r.Sojourn() != 5 {
		t.Errorf("Sojourn = %v, want 5", r.Sojourn())
	}
	if !almost(r.EndToEnd(), 5.025) {
		t.Errorf("EndToEnd = %v, want 5.025", r.EndToEnd())
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWarmupDiscardsEarlyMetrics(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "warm", 1, FCFS)
	st.SetWarmup(100)
	eng.At(0, func(*sim.Engine) { st.Arrive(&Request{ID: 1, ServiceTime: 1}) })
	eng.At(200, func(*sim.Engine) { st.Arrive(&Request{ID: 2, ServiceTime: 1}) })
	eng.Run()
	st.Finish()
	if n := st.Metrics().Sojourn.N(); n != 1 {
		t.Errorf("recorded %d sojourns, want 1 (warmup discarded)", n)
	}
	if st.TotalArrivals() != 2 {
		t.Errorf("TotalArrivals = %d, want 2", st.TotalArrivals())
	}
}

func TestStationLoadAndBusy(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "load", 2, FCFS)
	eng.At(0, func(*sim.Engine) {
		for i := 0; i < 5; i++ {
			st.Arrive(&Request{ID: uint64(i), ServiceTime: 10})
		}
		if st.Busy() != 2 {
			t.Errorf("Busy = %d, want 2", st.Busy())
		}
		if st.QueueLength() != 3 {
			t.Errorf("QueueLength = %d, want 3", st.QueueLength())
		}
		if st.Load() != 5 {
			t.Errorf("Load = %d, want 5", st.Load())
		}
	})
	eng.Run()
}

func TestStationPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero servers should panic")
		}
	}()
	NewStation(sim.NewEngine(1), "bad", 0, FCFS)
}

// TestInterArrivalSCV: the measured inter-arrival SCV of a Poisson feed
// is ~1.
func TestInterArrivalSCV(t *testing.T) {
	st := driveMM(t, 1, 5, 13, 4000, FCFS, 9)
	scv := st.Metrics().InterArrival.SCV()
	if math.Abs(scv-1) > 0.12 {
		t.Errorf("Poisson inter-arrival SCV = %v, want ~1", scv)
	}
}

// TestMD1HalvesWait: deterministic service should halve the M/M/1 wait
// (Pollaczek–Khinchine), confirming the station honors general service
// distributions.
func TestMD1HalvesWait(t *testing.T) {
	eng := sim.NewEngine(21)
	mu := 13.0
	rho := 0.8
	st := NewStation(eng, "md1", 1, FCFS)
	st.SetWarmup(300)
	arrRng := eng.NewStream()
	var schedule func(e *sim.Engine)
	schedule = func(e *sim.Engine) {
		if e.Now() > 6000 {
			return
		}
		st.Arrive(&Request{ServiceTime: 1 / mu})
		e.After(arrRng.ExpFloat64()/(rho*mu), schedule)
	}
	eng.After(0, schedule)
	eng.Run()
	st.Finish()
	want := theory.MD1Wait(rho, mu)
	got := st.Metrics().Wait.Mean()
	if math.Abs(got-want) > 0.15*want {
		t.Errorf("M/D/1 wait %.4f, want %.4f", got, want)
	}
}

func TestDisciplineString(t *testing.T) {
	if FCFS.String() != "FCFS" || LIFO.String() != "LIFO" || SJF.String() != "SJF" {
		t.Error("discipline names wrong")
	}
	if Discipline(99).String() == "" {
		t.Error("unknown discipline should still stringify")
	}
}

// TestMeanWaitInvariantUnderDisciplineMM: for M/M/1, FCFS and LIFO have
// the same mean wait (though different variance) — a classic queueing
// invariant that exercises both disciplines deeply.
func TestMeanWaitInvariantUnderDisciplineMM(t *testing.T) {
	fc := driveMM(t, 1, 9, 13, 8000, FCFS, 33)
	lf := driveMM(t, 1, 9, 13, 8000, LIFO, 33)
	wF := fc.Metrics().Wait.Mean()
	wL := lf.Metrics().Wait.Mean()
	if math.Abs(wF-wL) > 0.25*wF+0.002 {
		t.Errorf("FCFS mean wait %.4f vs LIFO %.4f should match", wF, wL)
	}
	// But LIFO's wait variance must exceed FCFS's.
	vF := fc.Metrics().Wait.StdDev()
	vL := lf.Metrics().Wait.StdDev()
	if vL <= vF {
		t.Errorf("LIFO wait sd %.4f should exceed FCFS %.4f", vL, vF)
	}
}

// TestStationServiceDist: a station with an attached service-time law
// samples demand for requests that arrive without one, and the resulting
// M/M/1 wait matches theory.
func TestStationServiceDist(t *testing.T) {
	eng := sim.NewEngine(7)
	st := NewStation(eng, "svc-dist", 1, FCFS)
	const lambda, mu, duration = 9.0, 13.0, 8000.0
	st.SetWarmup(duration / 10)
	st.SetServiceDist(dist.NewExponential(mu), eng.NewStream())

	arr := dist.NewExponential(lambda)
	arrRng := eng.NewStream()
	t0 := 0.0
	var id uint64
	for {
		t0 += arr.Sample(arrRng)
		if t0 > duration {
			break
		}
		id++
		req := &Request{ID: id}
		eng.At(t0, func(e *sim.Engine) { st.Arrive(req) })
	}
	eng.Run()
	st.Finish()

	m := st.Metrics()
	if n := m.Service.N(); n == 0 {
		t.Fatal("no service times recorded")
	}
	if got, want := m.Service.Mean(), 1/mu; math.Abs(got-want) > 0.05*want {
		t.Errorf("sampled mean service %.5f, want %.5f", got, want)
	}
	want := theory.MM1Wait(lambda/mu, mu)
	if got := m.Wait.Mean(); math.Abs(got-want) > 0.25*want {
		t.Errorf("M/M/1 mean wait %.4f, want %.4f", got, want)
	}
}

// TestStationServiceDistExplicitDemandWins: requests carrying a service
// time are not resampled.
func TestStationServiceDistExplicitDemandWins(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "explicit", 1, FCFS)
	st.SetServiceDist(dist.NewExponential(1), eng.NewStream())
	req := &Request{ID: 1, ServiceTime: 0.25}
	eng.At(0, func(e *sim.Engine) { st.Arrive(req) })
	eng.Run()
	if req.Departure != 0.25 {
		t.Errorf("explicit service time overridden: departure %v, want 0.25", req.Departure)
	}
}
