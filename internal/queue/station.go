// Package queue implements queueing stations on top of the sim engine:
// a G/G/c FCFS station (the model for both an edge site and the cloud
// cluster in the paper), alternative disciplines (LIFO, SJF) for
// ablations, and a processor-sharing station. Stations collect the
// waiting-time, sojourn-time, queue-length and utilization metrics that
// the paper's analysis (§3) reasons about.
package queue

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Discipline selects the order in which queued requests are served.
type Discipline int

// Supported service disciplines.
const (
	FCFS Discipline = iota // first come, first served (the paper's assumption)
	LIFO                   // last come, first served
	SJF                    // shortest job first (non-preemptive)
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "FCFS"
	case LIFO:
		return "LIFO"
	case SJF:
		return "SJF"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Request is one unit of work flowing through a station.
type Request struct {
	ID          uint64
	Site        int     // edge site index, or -1 for cloud
	Arrival     float64 // arrival time at the station
	ServiceTime float64 // execution time demanded
	Start       float64 // time service began
	Departure   float64 // time service completed
	NetworkRTT  float64 // round-trip network latency attributed to this request
	Generated   float64 // time the request left the client (Arrival - RTT/2 conceptually)

	// Tag is scratch routing state owned by the deployment model (e.g.
	// the hierarchical overflow runner marks forwarded requests). The
	// free list clears it on recycle.
	Tag uint64
	// AuxRTT carries a secondary network RTT sampled at generation time
	// for two-leg topologies (e.g. the cloud leg of an overflow
	// deployment), so routing decisions need no per-request closure.
	AuxRTT float64

	// Class is the request's SLO class rank, assigned by the deployment
	// model when its topology declares class rules: the matched rule's
	// index, or the rule count for unclassified traffic (earlier rules
	// outrank later ones; unclassified ranks last). The free list
	// clears it on recycle.
	Class int

	// Dropped is true when the station rejected the request (bounded
	// queue overflow); Departure is the rejection time and no service
	// was given.
	Dropped bool
	// Rejected is true when a tier's admission policy refused the
	// request at entry; Departure is the rejection time and the request
	// never reached a station.
	Rejected bool

	// Done is consumed on completion or drop; nil is allowed. A replay
	// shares one Sink across all its requests (see Sink); ad-hoc
	// callers can wrap a closure in DoneFunc.
	Done Sink
}

// Sink consumes a request when it completes or is dropped. One sink
// instance is shared by every request of a replay, replacing the
// per-request Done closures that dominated allocation in large runs.
// After Consume returns the request may be recycled (Station.Recycle),
// so implementations must copy out anything they need.
type Sink interface {
	Consume(e *sim.Engine, r *Request)
}

// DoneFunc adapts a plain function to the Sink interface.
type DoneFunc func(e *sim.Engine, r *Request)

// Consume invokes the function.
func (f DoneFunc) Consume(e *sim.Engine, r *Request) { f(e, r) }

// Wait returns the queueing delay experienced at the station.
func (r *Request) Wait() float64 { return r.Start - r.Arrival }

// Sojourn returns the total time at the station (wait + service).
func (r *Request) Sojourn() float64 { return r.Departure - r.Arrival }

// EndToEnd returns the full client-observed latency: network RTT plus
// station sojourn time, the quantity T = n + w + s in Equations 1–2.
func (r *Request) EndToEnd() float64 { return r.NetworkRTT + r.Sojourn() }

// Metrics aggregates a station's observations. Wait and Sojourn are
// Digests: exact by default, switchable to bounded memory for long
// replays (UseBounded / Station.SetSummaryMode).
type Metrics struct {
	Wait         stats.Digest       // per-request queueing delay
	Sojourn      stats.Digest       // per-request wait + service
	Service      stats.Stream       // per-request service times
	QueueLen     stats.TimeWeighted // queue length (excluding in-service)
	Busy         stats.TimeWeighted // number of busy servers
	Arrivals     stats.RateCounter
	Departures   stats.RateCounter
	Dropped      int64        // rejected by a bounded queue
	InterArrival stats.Stream // inter-arrival times, for measured SCV
	lastArrival  float64
	sawArrival   bool
}

func (m *Metrics) observeArrival(t float64) {
	m.Arrivals.Observe(t)
	if m.sawArrival {
		m.InterArrival.Add(t - m.lastArrival)
	}
	m.sawArrival = true
	m.lastArrival = t
}

// UseBounded switches the per-request latency collectors to bounded
// memory. Call before the first observation.
func (m *Metrics) UseBounded() {
	m.Wait.SetBounded()
	m.Sojourn.SetBounded()
}

// Utilization returns the time-average fraction of busy servers given the
// station's server count.
func (m *Metrics) Utilization(servers int) float64 {
	if servers <= 0 {
		return 0
	}
	return m.Busy.Average() / float64(servers)
}

// Station is a G/G/c queueing station with a single shared queue feeding
// c servers. With c=1 it models one edge server (paper's M/M/1 and G/G/1
// cases); with c=k and arrivals from all sites it models the cloud
// cluster (M/M/k, G/G/k).
type Station struct {
	Name    string
	Servers int
	Disc    Discipline
	// QueueCap bounds the number of waiting requests; arrivals beyond it
	// are dropped (G/G/c/K semantics). 0 means unbounded. The paper's
	// application "starts dropping requests or thrashing" at saturation
	// (§4.2); a bounded queue models that regime.
	QueueCap int
	// Recycle, when set, receives every request after its Done sink has
	// consumed it, so a replay can reuse request objects instead of
	// allocating one per record. All stations of a deployment share one
	// free list. Callers that retain requests past Done must leave this
	// nil.
	Recycle    *FreeList
	engine     *sim.Engine
	busy       int
	waiting    []*Request
	m          Metrics
	warmup     float64 // observations before this time are not recorded
	totalCount uint64
	svcDist    dist.Dist  // optional service-time law for demandless requests
	svcRng     *rand.Rand // stream the law samples against
	completeFn sim.PayloadEvent
}

// NewStation creates a station with the given number of servers.
func NewStation(e *sim.Engine, name string, servers int, disc Discipline) *Station {
	if servers <= 0 {
		panic(fmt.Sprintf("queue: station %q needs at least one server", name))
	}
	s := &Station{Name: name, Servers: servers, Disc: disc, engine: e}
	// One completion callback for the station's lifetime: scheduling a
	// service completion allocates no closure per request.
	s.completeFn = func(e *sim.Engine, p any) { s.complete(p.(*Request)) }
	s.m.QueueLen.Set(e.Now(), 0)
	s.m.Busy.Set(e.Now(), 0)
	return s
}

// SetSummaryMode selects the metric memory model (stats.Exact retains
// every wait/sojourn observation; stats.Bounded keeps constant state).
// Call before any request arrives.
func (s *Station) SetSummaryMode(m stats.Mode) {
	if m == stats.Bounded {
		s.m.UseBounded()
	}
}

// SetWarmup discards metric observations for requests that complete
// before time t, removing transient startup bias from steady-state
// measurements.
func (s *Station) SetWarmup(t float64) { s.warmup = t }

// SetServiceDist attaches a service-time distribution to the station:
// requests admitted with ServiceTime <= 0 draw their demand from d on
// the given stream (pass engine.NewStream() for an independent,
// reproducible per-station stream). Requests that arrive with an
// explicit ServiceTime are unaffected.
func (s *Station) SetServiceDist(d dist.Dist, rng *rand.Rand) {
	if d != nil && rng == nil {
		panic(fmt.Sprintf("queue: station %q service dist needs a stream", s.Name))
	}
	s.svcDist, s.svcRng = d, rng
}

// Metrics exposes the station's collected metrics.
func (s *Station) Metrics() *Metrics { return &s.m }

// QueueLength returns the current number of waiting (not in-service)
// requests.
func (s *Station) QueueLength() int { return len(s.waiting) }

// Busy returns the number of servers currently serving requests.
func (s *Station) Busy() int { return s.busy }

// Load returns waiting plus in-service requests, the signal used by
// least-connection and join-shortest-queue dispatchers.
func (s *Station) Load() int { return len(s.waiting) + s.busy }

// TotalArrivals returns the number of requests ever admitted.
func (s *Station) TotalArrivals() uint64 { return s.totalCount }

// Arrive admits a request at the current simulated time. The request's
// ServiceTime must already be set.
func (s *Station) Arrive(r *Request) {
	now := s.engine.Now()
	r.Arrival = now
	if r.ServiceTime <= 0 && s.svcDist != nil {
		r.ServiceTime = s.svcDist.Sample(s.svcRng)
	}
	s.totalCount++
	if now >= s.warmup {
		s.m.observeArrival(now)
	}
	if s.busy < s.Servers {
		s.startService(r)
		return
	}
	if s.QueueCap > 0 && len(s.waiting) >= s.QueueCap {
		r.Dropped = true
		r.Departure = now
		if now >= s.warmup {
			s.m.Dropped++
		}
		if r.Done != nil {
			r.Done.Consume(s.engine, r)
		}
		if s.Recycle != nil {
			s.Recycle.Put(r)
		}
		return
	}
	s.enqueue(r)
	s.m.QueueLen.Set(now, float64(len(s.waiting)))
}

func (s *Station) enqueue(r *Request) {
	switch s.Disc {
	case FCFS, LIFO:
		s.waiting = append(s.waiting, r)
	case SJF:
		// Insert sorted by service time ascending.
		i := 0
		for i < len(s.waiting) && s.waiting[i].ServiceTime <= r.ServiceTime {
			i++
		}
		s.waiting = append(s.waiting, nil)
		copy(s.waiting[i+1:], s.waiting[i:])
		s.waiting[i] = r
	}
}

func (s *Station) dequeue() *Request {
	var r *Request
	switch s.Disc {
	case FCFS, SJF:
		r = s.waiting[0]
		copy(s.waiting, s.waiting[1:])
		s.waiting[len(s.waiting)-1] = nil
		s.waiting = s.waiting[:len(s.waiting)-1]
	case LIFO:
		r = s.waiting[len(s.waiting)-1]
		s.waiting[len(s.waiting)-1] = nil
		s.waiting = s.waiting[:len(s.waiting)-1]
	}
	return r
}

func (s *Station) startService(r *Request) {
	now := s.engine.Now()
	r.Start = now
	s.busy++
	s.m.Busy.Set(now, float64(s.busy))
	s.engine.AfterPayload(r.ServiceTime, s.completeFn, r)
}

func (s *Station) complete(r *Request) {
	now := s.engine.Now()
	r.Departure = now
	s.busy--
	s.m.Busy.Set(now, float64(s.busy))
	if now >= s.warmup {
		s.m.Wait.Add(r.Wait())
		s.m.Sojourn.Add(r.Sojourn())
		s.m.Service.Add(r.ServiceTime)
		s.m.Departures.Observe(now)
	}
	// Guarded on the server count so a shrink (SetServers) actually
	// drains: while busy still exceeds the new target, completing
	// servers retire instead of pulling the next waiting request.
	if s.busy < s.Servers && len(s.waiting) > 0 {
		next := s.dequeue()
		s.m.QueueLen.Set(now, float64(len(s.waiting)))
		s.startService(next)
	}
	if r.Done != nil {
		r.Done.Consume(s.engine, r)
	}
	if s.Recycle != nil {
		s.Recycle.Put(r)
	}
}

// SetServers changes the station's server count at the current simulated
// time, the primitive behind dynamic resource allocation (the paper's
// §5.1 "adjusted dynamically to match these workload changes" and its
// future-work direction). Growing the pool immediately starts service on
// waiting requests; shrinking lets in-flight services finish (busy may
// exceed the new target until they complete).
func (s *Station) SetServers(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("queue: station %q cannot scale to %d servers", s.Name, n))
	}
	s.Servers = n
	now := s.engine.Now()
	for s.busy < s.Servers && len(s.waiting) > 0 {
		next := s.dequeue()
		s.m.QueueLen.Set(now, float64(len(s.waiting)))
		s.startService(next)
	}
}

// Finish closes time-weighted metrics at the current simulated time.
// Call once after the simulation run completes.
func (s *Station) Finish() {
	now := s.engine.Now()
	s.m.QueueLen.Finish(now)
	s.m.Busy.Finish(now)
}

// String describes the station.
func (s *Station) String() string {
	return fmt.Sprintf("Station(%s, c=%d, %s)", s.Name, s.Servers, s.Disc)
}
