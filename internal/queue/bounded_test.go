package queue

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/theory"
)

// driveBounded feeds Poisson/exponential traffic into a bounded station
// and returns it with the drop count.
func driveBounded(servers, queueCap int, lambda, mu, duration float64, seed int64) (*Station, int64) {
	eng := sim.NewEngine(seed)
	st := NewStation(eng, "bounded", servers, FCFS)
	st.QueueCap = queueCap
	st.SetWarmup(duration / 10)
	arrRng := eng.NewStream()
	svcRng := eng.NewStream()
	var schedule func(e *sim.Engine)
	schedule = func(e *sim.Engine) {
		if e.Now() > duration {
			return
		}
		st.Arrive(&Request{ServiceTime: svcRng.ExpFloat64() / mu})
		e.After(arrRng.ExpFloat64()/lambda, schedule)
	}
	eng.After(0, schedule)
	eng.Run()
	st.Finish()
	return st, st.Metrics().Dropped
}

// TestBoundedQueueLossMatchesMMcK: the simulated drop fraction must match
// the analytic M/M/c/K blocking probability. K (total capacity) = servers
// + queue slots.
func TestBoundedQueueLossMatchesMMcK(t *testing.T) {
	cases := []struct {
		servers, queueCap int
		rho               float64
	}{
		{1, 4, 0.9},
		{1, 2, 1.3},
		{3, 5, 1.1},
	}
	for _, c := range cases {
		mu := 13.0
		lambda := c.rho * float64(c.servers) * mu
		st, dropped := driveBounded(c.servers, c.queueCap, lambda, mu, 6000, 91)
		m := st.Metrics()
		total := float64(m.Arrivals.Events())
		if total == 0 {
			t.Fatal("no arrivals")
		}
		lossSim := float64(dropped) / total
		lossTheory := theory.MMcKLossProbability(c.servers, c.servers+c.queueCap, c.rho)
		if math.Abs(lossSim-lossTheory) > 0.12*lossTheory+0.01 {
			t.Errorf("c=%d K=%d rho=%v: simulated loss %.4f vs theory %.4f",
				c.servers, c.servers+c.queueCap, c.rho, lossSim, lossTheory)
		}
	}
}

func TestBoundedQueueNeverExceedsCap(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "cap", 1, FCFS)
	st.QueueCap = 3
	dropped := 0
	eng.At(0, func(*sim.Engine) {
		for i := 0; i < 10; i++ {
			st.Arrive(&Request{ServiceTime: 100, Done: DoneFunc(func(_ *sim.Engine, r *Request) {
				if r.Dropped {
					dropped++
				}
			})})
			if st.QueueLength() > 3 {
				t.Fatalf("queue length %d exceeded cap 3", st.QueueLength())
			}
		}
	})
	eng.RunUntil(1)
	// 10 arrivals: 1 in service, 3 queued, 6 dropped.
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	if st.Metrics().Dropped != 6 {
		t.Errorf("metric dropped = %d, want 6", st.Metrics().Dropped)
	}
}

func TestDroppedRequestMarked(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "mark", 1, FCFS)
	st.QueueCap = 1
	var reject *Request
	eng.At(0, func(*sim.Engine) {
		st.Arrive(&Request{ServiceTime: 10})
		st.Arrive(&Request{ServiceTime: 10})
		r := &Request{ServiceTime: 10, Done: DoneFunc(func(_ *sim.Engine, rr *Request) {
			if rr.Dropped {
				reject = rr
			}
		})}
		st.Arrive(r)
	})
	eng.RunUntil(1)
	if reject == nil {
		t.Fatal("third request should be dropped")
	}
	if reject.Departure != 0 {
		t.Errorf("drop departure = %v, want 0 (the arrival instant)", reject.Departure)
	}
}

func TestUnboundedQueueNeverDrops(t *testing.T) {
	st, dropped := driveBounded(1, 0, 20, 13, 500, 92)
	if dropped != 0 {
		t.Errorf("unbounded queue dropped %d", dropped)
	}
	if st.Metrics().Dropped != 0 {
		t.Error("unbounded metric dropped nonzero")
	}
}

func TestSetServersGrowStartsWaiting(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "grow", 1, FCFS)
	eng.At(0, func(*sim.Engine) {
		for i := 0; i < 4; i++ {
			st.Arrive(&Request{ServiceTime: 10})
		}
		if st.Busy() != 1 || st.QueueLength() != 3 {
			t.Fatalf("precondition wrong: busy=%d queued=%d", st.Busy(), st.QueueLength())
		}
		st.SetServers(3)
		if st.Busy() != 3 {
			t.Errorf("after growth busy = %d, want 3", st.Busy())
		}
		if st.QueueLength() != 1 {
			t.Errorf("after growth queued = %d, want 1", st.QueueLength())
		}
	})
	eng.RunUntil(1)
}

func TestSetServersShrinkIsGraceful(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "shrink", 3, FCFS)
	var completions int
	eng.At(0, func(*sim.Engine) {
		for i := 0; i < 3; i++ {
			st.Arrive(&Request{ServiceTime: 1, Done: DoneFunc(func(_ *sim.Engine, _ *Request) { completions++ })})
		}
		st.SetServers(1)
		// In-flight services keep running.
		if st.Busy() != 3 {
			t.Errorf("busy = %d, in-flight work must finish", st.Busy())
		}
	})
	// A fourth request at t=0.5 queues because target capacity is 1.
	eng.At(0.5, func(*sim.Engine) {
		st.Arrive(&Request{ServiceTime: 1, Done: DoneFunc(func(_ *sim.Engine, _ *Request) { completions++ })})
		if st.Busy() != 3 || st.QueueLength() != 1 {
			t.Errorf("shrunk station admitted beyond capacity: busy=%d queued=%d",
				st.Busy(), st.QueueLength())
		}
	})
	eng.Run()
	if completions != 4 {
		t.Errorf("completions = %d, want 4", completions)
	}
}

func TestSetServersPanicsOnZero(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "zero", 1, FCFS)
	defer func() {
		if recover() == nil {
			t.Error("SetServers(0) should panic")
		}
	}()
	st.SetServers(0)
}
