package queue

// FreeList recycles Request objects through a replay. The deployment
// runner draws fresh requests from Get and attaches the list to every
// station (Station.Recycle); each station returns a request to the list
// after its Done sink has consumed it. Once the pipeline reaches steady
// state the live set is bounded by the number of in-flight requests and
// the replay allocates no new request objects, regardless of trace
// length.
//
// A FreeList is single-threaded, like the engine that drives it: use
// one per deployment, never shared across engines.
type FreeList struct {
	free   []*Request
	allocs uint64
}

// Get returns a zeroed request, recycling an idle one when available.
func (f *FreeList) Get() *Request {
	if n := len(f.free); n > 0 {
		r := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		return r
	}
	f.allocs++
	return &Request{}
}

// Put zeroes r and makes it available to Get. The caller must not
// retain r past this call.
func (f *FreeList) Put(r *Request) {
	*r = Request{}
	f.free = append(f.free, r)
}

// Idle returns the number of recycled requests currently held.
func (f *FreeList) Idle() int { return len(f.free) }

// Allocated returns how many requests Get has ever allocated fresh —
// in a steady-state replay this is the high-water mark of in-flight
// requests, not the trace length.
func (f *FreeList) Allocated() uint64 { return f.allocs }
