package queue

import (
	"testing"

	"repro/internal/sim"
)

func TestFreeListRecyclesZeroed(t *testing.T) {
	var f FreeList
	r := f.Get()
	if f.Allocated() != 1 {
		t.Fatalf("Allocated = %d after first Get", f.Allocated())
	}
	r.ID = 7
	r.ServiceTime = 3
	r.Tag = 1
	r.AuxRTT = 0.5
	r.Dropped = true
	r.Done = DoneFunc(func(*sim.Engine, *Request) {})
	f.Put(r)
	if f.Idle() != 1 {
		t.Fatalf("Idle = %d after Put", f.Idle())
	}
	r2 := f.Get()
	if r2 != r {
		t.Error("Get should return the recycled object")
	}
	if r2.ID != 0 || r2.ServiceTime != 0 || r2.Tag != 0 || r2.AuxRTT != 0 ||
		r2.Dropped || r2.Done != nil {
		t.Errorf("recycled request not zeroed: %+v", r2)
	}
	if f.Allocated() != 1 {
		t.Errorf("Allocated = %d, recycling should not count as an allocation", f.Allocated())
	}
}

// TestStationRecyclesRequests: with a free list attached, a sequential
// replay reuses a constant number of request objects regardless of how
// many requests flow through, and completions observe correct values.
func TestStationRecyclesRequests(t *testing.T) {
	eng := sim.NewEngine(1)
	pool := &FreeList{}
	st := NewStation(eng, "recycle", 1, FCFS)
	st.Recycle = pool

	const n = 1000
	completions := 0
	var sink Sink = DoneFunc(func(e *sim.Engine, r *Request) {
		completions++
		if r.Departure != e.Now() || r.ServiceTime != 0.5 {
			t.Errorf("recycled request corrupted: %+v", r)
		}
	})
	// One request in flight at a time: arrivals spaced past the service
	// time, each drawn from the pool.
	for i := 0; i < n; i++ {
		at := float64(i)
		eng.At(at, func(e *sim.Engine) {
			r := pool.Get()
			r.ID = uint64(i)
			r.ServiceTime = 0.5
			r.Done = sink
			st.Arrive(r)
		})
	}
	eng.Run()
	if completions != n {
		t.Fatalf("completions = %d, want %d", completions, n)
	}
	if pool.Allocated() > 2 {
		t.Errorf("pool allocated %d requests for a sequential replay, want <= 2", pool.Allocated())
	}
}

// TestStationRecyclesDroppedRequests: the drop path recycles too.
func TestStationRecyclesDroppedRequests(t *testing.T) {
	eng := sim.NewEngine(1)
	pool := &FreeList{}
	st := NewStation(eng, "dropcycle", 1, FCFS)
	st.QueueCap = 1
	st.Recycle = pool
	drops := 0
	var sink Sink = DoneFunc(func(_ *sim.Engine, r *Request) {
		if r.Dropped {
			drops++
		}
	})
	eng.At(0, func(*sim.Engine) {
		for i := 0; i < 5; i++ {
			r := pool.Get()
			r.ServiceTime = 100
			r.Done = sink
			st.Arrive(r)
		}
	})
	eng.RunUntil(1)
	// 1 serving + 1 queued + 3 dropped; the dropped three recycled
	// immediately, so the pool allocated at most... each Arrive happens
	// back-to-back before any Put, so 5 allocations — but the dropped
	// ones must all be Idle again minus reuse.
	if drops != 3 {
		t.Fatalf("drops = %d, want 3", drops)
	}
	if pool.Idle() == 0 {
		t.Error("dropped requests were not returned to the free list")
	}
}
