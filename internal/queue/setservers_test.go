package queue

// Tests for SetServers — the dynamic-capacity primitive behind the
// autoscaler — interacting with bounded queues and the non-FCFS
// disciplines, previously untested.

import (
	"testing"

	"repro/internal/sim"
)

// completionRecorder returns a request factory whose completions append
// (id, time) pairs.
func completionRecorder(order *[]uint64, times *[]float64) func(id uint64, svc float64) *Request {
	return func(id uint64, svc float64) *Request {
		return &Request{ID: id, ServiceTime: svc, Done: DoneFunc(func(e *sim.Engine, r *Request) {
			*order = append(*order, r.ID)
			*times = append(*times, e.Now())
		})}
	}
}

// TestSetServersGrowServesBacklog: growing the pool immediately pulls
// waiting requests into service and their completions land accordingly.
func TestSetServersGrowServesBacklog(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "grow", 1, FCFS)
	var order []uint64
	var times []float64
	mk := completionRecorder(&order, &times)
	eng.At(0, func(*sim.Engine) {
		st.Arrive(mk(1, 10))
		st.Arrive(mk(2, 1))
		st.Arrive(mk(3, 1))
	})
	eng.At(1, func(*sim.Engine) {
		st.SetServers(3)
		if st.Busy() != 3 {
			t.Errorf("busy = %d right after grow, want 3", st.Busy())
		}
		if st.QueueLength() != 0 {
			t.Errorf("queue length = %d after grow, want 0", st.QueueLength())
		}
	})
	eng.Run()
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 1 {
		t.Errorf("completion order = %v, want [2 3 1]", order)
	}
	if times[0] != 2 || times[1] != 2 {
		t.Errorf("waiting requests should complete at t=2 (grow at 1 + svc 1), got %v", times)
	}
}

// TestSetServersShrinkDrainsGracefully: shrinking lets in-flight
// services finish (busy exceeds the target transiently) but completing
// servers retire — no new service starts until busy drops below the
// new count.
func TestSetServersShrinkDrainsGracefully(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "shrink", 3, FCFS)
	var order []uint64
	var times []float64
	mk := completionRecorder(&order, &times)
	eng.At(0, func(*sim.Engine) {
		st.Arrive(mk(1, 5))
		st.Arrive(mk(2, 5))
		st.Arrive(mk(3, 5))
		st.Arrive(mk(4, 1)) // waits
	})
	eng.At(1, func(*sim.Engine) {
		st.SetServers(1)
		if st.Busy() != 3 {
			t.Errorf("busy = %d right after shrink, want 3 (in-flight finish)", st.Busy())
		}
	})
	eng.Run()
	// 1,2,3 complete at t=5. The first two completions retire their
	// servers (busy 2, then 1, both >= target); only the third drops
	// busy below 1 server, so request 4 starts at t=5 and ends at t=6.
	if len(order) != 4 || order[3] != 4 {
		t.Fatalf("completion order = %v, want 4 last", order)
	}
	if times[3] != 6 {
		t.Errorf("post-shrink request completed at %v, want 6", times[3])
	}
	if got := st.Metrics().Busy.Max(); got != 3 {
		t.Errorf("peak busy = %v, want 3", got)
	}
	if st.Busy() != 0 {
		t.Errorf("busy = %d after drain, want 0", st.Busy())
	}
}

// TestSetServersGrowWithQueueCap: growth frees queue slots (served
// requests leave the wait line) and the cap keeps applying to later
// arrivals.
func TestSetServersGrowWithQueueCap(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "capgrow", 1, FCFS)
	st.QueueCap = 2
	dropped := 0
	mk := func(id uint64) *Request {
		return &Request{ID: id, ServiceTime: 100, Done: DoneFunc(func(_ *sim.Engine, r *Request) {
			if r.Dropped {
				dropped++
			}
		})}
	}
	eng.At(0, func(*sim.Engine) {
		st.Arrive(mk(1)) // serving
		st.Arrive(mk(2)) // waiting
		st.Arrive(mk(3)) // waiting (cap reached)
		st.Arrive(mk(4)) // dropped
	})
	eng.At(1, func(*sim.Engine) {
		st.SetServers(2) // request 2 starts, freeing a slot
		if st.QueueLength() != 1 {
			t.Errorf("queue length = %d after grow, want 1", st.QueueLength())
		}
	})
	eng.At(2, func(*sim.Engine) {
		st.Arrive(mk(5)) // fills the freed slot
		st.Arrive(mk(6)) // dropped again
	})
	eng.RunUntil(3)
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2 (one before and one after the grow)", dropped)
	}
	if st.Metrics().Dropped != 2 {
		t.Errorf("metric dropped = %d, want 2", st.Metrics().Dropped)
	}
	if st.Busy() != 2 || st.QueueLength() != 2 {
		t.Errorf("busy=%d queue=%d, want 2/2", st.Busy(), st.QueueLength())
	}
}

// TestSetServersShrinkWithQueueCap: after a shrink the smaller service
// rate backs the queue up to its cap and overflow drops resume.
func TestSetServersShrinkWithQueueCap(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "capshrink", 2, FCFS)
	st.QueueCap = 1
	dropped := 0
	mk := func(id uint64, svc float64) *Request {
		return &Request{ID: id, ServiceTime: svc, Done: DoneFunc(func(_ *sim.Engine, r *Request) {
			if r.Dropped {
				dropped++
			}
		})}
	}
	eng.At(0, func(*sim.Engine) {
		st.Arrive(mk(1, 50))
		st.Arrive(mk(2, 50))
	})
	eng.At(1, func(*sim.Engine) { st.SetServers(1) })
	eng.At(2, func(*sim.Engine) {
		st.Arrive(mk(3, 1)) // waits (cap 1)
		st.Arrive(mk(4, 1)) // dropped: queue full, no third server coming
	})
	eng.RunUntil(10)
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if st.Busy() != 2 {
		t.Errorf("busy = %d, want 2 (in-flight still draining)", st.Busy())
	}
}

// TestSetServersGrowLIFO: a grow pulls waiting requests in LIFO order.
func TestSetServersGrowLIFO(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "lifogrow", 1, LIFO)
	var order []uint64
	var times []float64
	mk := completionRecorder(&order, &times)
	eng.At(0, func(*sim.Engine) { st.Arrive(mk(1, 100)) })
	eng.At(1, func(*sim.Engine) { st.Arrive(mk(2, 1)) })
	eng.At(2, func(*sim.Engine) { st.Arrive(mk(3, 1)) })
	eng.At(3, func(*sim.Engine) { st.Arrive(mk(4, 1)) })
	eng.At(4, func(*sim.Engine) { st.SetServers(3) }) // pulls 4 then 3
	eng.RunUntil(8)
	if len(order) < 3 {
		t.Fatalf("completions = %v", order)
	}
	// 4 and 3 complete at t=5 (scheduled in that order); 2 starts when
	// one of them retires a slot... busy drops to 2 < 3, so 2 starts at
	// t=5 and completes at 6.
	if order[0] != 4 || order[1] != 3 || order[2] != 2 {
		t.Errorf("LIFO grow completion order = %v, want [4 3 2]", order)
	}
}

// TestSetServersGrowSJF: a grow pulls waiting requests shortest-first.
func TestSetServersGrowSJF(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "sjfgrow", 1, SJF)
	var order []uint64
	var times []float64
	mk := completionRecorder(&order, &times)
	eng.At(0, func(*sim.Engine) { st.Arrive(mk(1, 100)) })
	eng.At(1, func(*sim.Engine) { st.Arrive(mk(2, 5)) })
	eng.At(2, func(*sim.Engine) { st.Arrive(mk(3, 1)) })
	eng.At(3, func(*sim.Engine) { st.Arrive(mk(4, 3)) })
	eng.At(4, func(*sim.Engine) {
		st.SetServers(3) // pulls 3 (svc 1) then 4 (svc 3)
		if st.QueueLength() != 1 {
			t.Errorf("queue length = %d after grow, want 1 (request 2 still waits)", st.QueueLength())
		}
	})
	eng.RunUntil(20)
	// 3 completes at 5; its slot frees request 2 (starts 5, ends 10);
	// 4 completes at 7.
	want := []uint64{3, 4, 2}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("SJF grow completion order = %v, want %v", order, want)
		}
	}
}

// TestSetServersRepeatedOscillation: alternating grow/shrink keeps the
// accounting consistent (busy never exceeds the historical maximum
// target, waiting requests all eventually serve).
func TestSetServersRepeatedOscillation(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewStation(eng, "osc", 2, FCFS)
	completions := 0
	for i := 0; i < 40; i++ {
		id := uint64(i)
		at := float64(i) * 0.5
		eng.At(at, func(*sim.Engine) {
			st.Arrive(&Request{ID: id, ServiceTime: 1.4, Done: DoneFunc(
				func(_ *sim.Engine, _ *Request) { completions++ })})
		})
	}
	for i := 0; i < 10; i++ {
		n := 1 + (i % 4) // 1..4 servers
		eng.At(float64(i)*2+0.25, func(*sim.Engine) { st.SetServers(n) })
	}
	eng.Run()
	if completions != 40 {
		t.Errorf("completions = %d, want 40 (no request lost across scaling)", completions)
	}
	if st.Busy() != 0 || st.QueueLength() != 0 {
		t.Errorf("station not drained: busy=%d queue=%d", st.Busy(), st.QueueLength())
	}
	if max := st.Metrics().Busy.Max(); max > 4 {
		t.Errorf("busy peaked at %v, should never exceed the largest target 4", max)
	}
}
