package queue

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// PSStation is an egalitarian processor-sharing station with c unit-rate
// servers: when n requests are present, each receives service at rate
// min(1, c/n). Processor sharing approximates time-sliced CPU scheduling
// on the emulated inference servers and serves as an ablation against the
// paper's FCFS assumption.
//
// The implementation advances "virtual work" lazily: on every arrival or
// departure the remaining service of all in-flight requests is aged by
// the elapsed time multiplied by the current per-request rate, and the
// next departure event is rescheduled.
type PSStation struct {
	Name    string
	Servers int
	engine  *sim.Engine

	inflight  []*psJob
	lastT     float64
	nextEvent sim.Handle
	hasEvent  bool

	m      Metrics
	warmup float64
	total  uint64
}

type psJob struct {
	req       *Request
	remaining float64
}

// NewPSStation creates a processor-sharing station with c servers.
func NewPSStation(e *sim.Engine, name string, servers int) *PSStation {
	if servers <= 0 {
		panic(fmt.Sprintf("queue: PS station %q needs at least one server", name))
	}
	s := &PSStation{Name: name, Servers: servers, engine: e, lastT: e.Now()}
	s.m.QueueLen.Set(e.Now(), 0)
	s.m.Busy.Set(e.Now(), 0)
	return s
}

// SetWarmup discards metrics before time t.
func (s *PSStation) SetWarmup(t float64) { s.warmup = t }

// Metrics exposes the station's collected metrics.
func (s *PSStation) Metrics() *Metrics { return &s.m }

// Load returns the number of in-flight requests.
func (s *PSStation) Load() int { return len(s.inflight) }

// rate returns the current per-request service rate.
func (s *PSStation) rate() float64 {
	n := len(s.inflight)
	if n == 0 {
		return 0
	}
	return math.Min(1, float64(s.Servers)/float64(n))
}

// age applies elapsed service to all in-flight jobs.
func (s *PSStation) age() {
	now := s.engine.Now()
	dt := now - s.lastT
	if dt > 0 && len(s.inflight) > 0 {
		r := s.rate()
		for _, j := range s.inflight {
			j.remaining -= dt * r
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
	}
	s.lastT = now
}

// reschedule cancels any pending departure event and schedules the next
// one based on the job with the least remaining work.
func (s *PSStation) reschedule() {
	if s.hasEvent {
		s.nextEvent.Cancel()
		s.hasEvent = false
	}
	if len(s.inflight) == 0 {
		return
	}
	minRem := math.Inf(1)
	for _, j := range s.inflight {
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	delay := minRem / s.rate()
	s.nextEvent = s.engine.After(delay, func(e *sim.Engine) {
		s.hasEvent = false
		s.departReady()
	})
	s.hasEvent = true
}

// Arrive admits a request.
func (s *PSStation) Arrive(r *Request) {
	s.age()
	now := s.engine.Now()
	r.Arrival = now
	r.Start = now // PS begins service immediately (at reduced rate)
	s.total++
	if now >= s.warmup {
		s.m.observeArrival(now)
	}
	s.inflight = append(s.inflight, &psJob{req: r, remaining: r.ServiceTime})
	s.m.Busy.Set(now, math.Min(float64(s.Servers), float64(len(s.inflight))))
	s.m.QueueLen.Set(now, math.Max(0, float64(len(s.inflight)-s.Servers)))
	s.reschedule()
}

func (s *PSStation) departReady() {
	s.age()
	now := s.engine.Now()
	const eps = 1e-12
	kept := s.inflight[:0]
	var done []*psJob
	for _, j := range s.inflight {
		if j.remaining <= eps {
			done = append(done, j)
		} else {
			kept = append(kept, j)
		}
	}
	s.inflight = kept
	for _, j := range done {
		r := j.req
		r.Departure = now
		if now >= s.warmup {
			// In PS the "wait" is the stretch beyond the raw service time.
			s.m.Wait.Add(r.Sojourn() - r.ServiceTime)
			s.m.Sojourn.Add(r.Sojourn())
			s.m.Service.Add(r.ServiceTime)
			s.m.Departures.Observe(now)
		}
		if r.Done != nil {
			r.Done.Consume(s.engine, r)
		}
	}
	s.m.Busy.Set(now, math.Min(float64(s.Servers), float64(len(s.inflight))))
	s.m.QueueLen.Set(now, math.Max(0, float64(len(s.inflight)-s.Servers)))
	s.reschedule()
}

// Finish closes time-weighted metrics at the current simulated time.
func (s *PSStation) Finish() {
	now := s.engine.Now()
	s.m.QueueLen.Finish(now)
	s.m.Busy.Finish(now)
}

// TotalArrivals returns the number of requests ever admitted.
func (s *PSStation) TotalArrivals() uint64 { return s.total }

// Server is the common interface between Station and PSStation, used by
// dispatchers and the cluster model.
type Server interface {
	Arrive(r *Request)
	Load() int
	Metrics() *Metrics
	Finish()
}

var (
	_ Server = (*Station)(nil)
	_ Server = (*PSStation)(nil)
)

// MergedWaits merges the per-request waits from several stations, used
// to compute the edge-wide weighted averages of Lemma 3.3. The result
// is exact when every station collects exact metrics.
func MergedWaits(stations []Server) *stats.Digest {
	out := &stats.Digest{}
	for _, s := range stations {
		out.Merge(&s.Metrics().Wait)
	}
	return out
}

// MergedSojourns merges per-request sojourn times across stations.
func MergedSojourns(stations []Server) *stats.Digest {
	out := &stats.Digest{}
	for _, s := range stations {
		out.Merge(&s.Metrics().Sojourn)
	}
	return out
}
