package experiments

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachCoversAllIndices: every index runs exactly once at any pool
// size.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 37
		counts := make([]int32, n)
		forEach(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	// n <= 0 must be a no-op.
	forEach(0, 4, func(i int) { t.Error("fn called for n=0") })
}

// TestForEachBoundsConcurrency: the pool actually runs work concurrently
// but never exceeds its bound.
func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 24
	var cur, peak int32
	var mu sync.Mutex
	forEach(n, workers, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt32(&cur, -1)
	})
	if peak > workers {
		t.Errorf("observed %d concurrent workers, bound is %d", peak, workers)
	}
	if peak < 2 {
		t.Errorf("pool never ran concurrently (peak %d); expected >= 2", peak)
	}
}

// TestRunSweepParallelMatchesSerial: a multi-point utilization sweep run
// through the worker pool is identical, point for point, to the serial
// order under a fixed seed — the contract that makes the parallel
// runner safe to adopt everywhere.
func TestRunSweepParallelMatchesSerial(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Rates = []float64{6, 8, 9, 10, 11}
	cfg.Duration = 150
	cfg.Warmup = 15
	cfg.Seed = 77

	serial := cfg
	serial.Workers = 1
	parallel := cfg
	parallel.Workers = 4

	a := RunSweep(serial)
	b := RunSweep(parallel)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("point %d differs:\n  serial   %+v\n  parallel %+v", i, a.Points[i], b.Points[i])
		}
	}
}

// TestRunPairedMatchesUnpaired is implied by the sweep test above (the
// sweep routes through cluster.RunPaired), but the replication path has
// its own merge order to defend.
func TestReplicatedSweepParallelMatchesSerial(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Rates = []float64{8, 10}
	cfg.Duration = 120
	cfg.Warmup = 12
	cfg.Seed = 5

	serial := cfg
	serial.Workers = 1
	parallel := cfg
	parallel.Workers = 3

	a := RunReplicatedSweep(serial, 5)
	b := RunReplicatedSweep(parallel, 5)
	if len(a) != len(b) {
		t.Fatalf("point counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("replicated point %d differs:\n  serial   %+v\n  parallel %+v", i, a[i], b[i])
		}
	}

	ra, ca, oka := CrossoverCI(serial, Mean, 4)
	rb, cb, okb := CrossoverCI(parallel, Mean, 4)
	if ra != rb || ca != cb || oka != okb {
		t.Errorf("CrossoverCI diverged: serial (%v, %v, %v) vs parallel (%v, %v, %v)",
			ra, ca, oka, rb, cb, okb)
	}
}
