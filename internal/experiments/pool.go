package experiments

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the worker-pool size used when a config leaves
// Workers at 0. It defaults to the machine's logical CPU count and is
// overridable by front ends (cmd/figures -workers).
var DefaultWorkers = runtime.NumCPU()

// poolSize resolves a configured worker count: 0 means DefaultWorkers,
// and the pool never exceeds the number of work items.
func poolSize(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	return workers
}

// forEach runs fn(0..n-1) on a bounded pool of the given size. Each index
// is processed exactly once; fn must write its result into an
// index-addressed slot so the merged output is independent of scheduling
// order. With workers <= 1 the indices run serially on the calling
// goroutine, which keeps single-threaded runs allocation-free and easy to
// debug.
func forEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = poolSize(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
