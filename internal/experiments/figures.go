package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig3Result bundles the four series of Figures 3/4 (mean) and 5 (p95):
// edge with 1 and 2 servers per site, cloud with 5 and 10 servers.
type Fig3Result struct {
	Scenario  netem.Scenario
	Rates     []float64
	OneServer SweepResult // edge 1 server/site vs cloud 5 servers
	TwoServer SweepResult // edge 2 servers/site vs cloud 10 servers
}

// RunFig3 reproduces the Figure 3/4/5 experiment for the given scenario:
// request rate per server varied 6–12, 5 sites, both the {1 server/site,
// 5 cloud servers} and {2 servers/site, 10 cloud servers} deployments.
// Unknown scenario names return an error listing the presets.
func RunFig3(scenarioName string, duration float64, seed int64) (Fig3Result, error) {
	sc, err := scenarioByName(scenarioName)
	if err != nil {
		return Fig3Result{}, err
	}
	base := DefaultSweepConfig()
	base.Scenario = sc
	base.Duration = duration
	base.Seed = seed

	one := base
	one.ServersPerSite = 1
	two := base
	two.ServersPerSite = 2
	two.Seed = seed + 1

	return Fig3Result{
		Scenario:  sc,
		Rates:     base.Rates,
		OneServer: RunSweep(one),
		TwoServer: RunSweep(two),
	}, nil
}

// Fig6Scenario is one violin of Figure 6.
type Fig6Scenario struct {
	Label   string
	Summary stats.DistSummary
	Box     stats.BoxPlot
}

// RunFig6 reproduces Figure 6: the full response-time distributions of
// the four deployments at 10 req/server/s with the distant (54 ms) cloud.
func RunFig6(duration float64, seed int64) []Fig6Scenario {
	sc, _ := netem.ScenarioByName("distant-54ms")
	model := app.NewInferenceModel()
	const rate = 10.0

	type setup struct {
		label          string
		serversPerSite int
		cloud          bool
		cloudServers   int
	}
	setups := []setup{
		{label: "edge, 1 server", serversPerSite: 1},
		{label: "edge, 2 servers", serversPerSite: 2},
		{label: "cloud, 5 servers", cloud: true, cloudServers: 5, serversPerSite: 1},
		{label: "cloud, 10 servers", cloud: true, cloudServers: 10, serversPerSite: 2},
	}

	out := make([]Fig6Scenario, len(setups))
	forEach(len(setups), 0, func(i int) {
		s := setups[i]
		tr := cluster.Generate(cluster.GenSpec{
			Sites:       5,
			Duration:    duration,
			PerSiteRate: rate * float64(s.serversPerSite),
			Model:       model,
			Seed:        seed + int64(i),
		})
		var sample *stats.Digest
		if s.cloud {
			res := cluster.RunCloud(tr, cluster.CloudConfig{
				Servers: s.cloudServers,
				Path:    sc.Cloud,
				Warmup:  duration / 10,
				Seed:    seed + 100 + int64(i),
			})
			sample = &res.EndToEnd
		} else {
			res := cluster.RunEdge(tr, cluster.EdgeConfig{
				Sites:          5,
				ServersPerSite: s.serversPerSite,
				Path:           sc.Edge,
				Warmup:         duration / 10,
				Seed:           seed + 100 + int64(i),
			})
			sample = &res.EndToEnd
		}
		out[i] = Fig6Scenario{
			Label:   s.label,
			Summary: sample.Summarize(s.label, nil),
			Box:     sample.Box(s.label),
		}
	})
	return out
}

// Fig7Point is one bar pair of Figure 7: the cutoff utilizations (mean
// and p95) for one cloud RTT.
type Fig7Point struct {
	Scenario     string
	CloudRTTms   float64
	MeanCutoff   float64 // utilization fraction in [0,1]; 1 = no inversion below saturation
	P95Cutoff    float64
	MeanRate     float64 // req/s/server at the mean crossover
	P95Rate      float64
	MeanInverted bool
	P95Inverted  bool
}

// RunFig7 reproduces Figure 7: for each cloud location, sweep the
// request rate finely and report the utilization above which the edge's
// mean and p95 latencies exceed the cloud's. Edge: 5 sites × 1 server;
// cloud: 5 servers.
func RunFig7(duration float64, seed int64) []Fig7Point {
	var rates []float64
	for r := 1.0; r <= 12.5; r += 0.5 {
		rates = append(rates, r)
	}
	var out []Fig7Point
	for i, sc := range netem.PaperScenarios() {
		cfg := DefaultSweepConfig()
		cfg.Scenario = sc
		cfg.Rates = rates
		cfg.Duration = duration
		cfg.Seed = seed + int64(i)*31
		res := RunSweep(cfg)

		p := Fig7Point{Scenario: sc.Name, CloudRTTms: sc.Cloud.MeanRTT() * 1000}
		mu := cfg.Model.Mu()
		if rate, util, ok := res.Crossover(Mean); ok {
			p.MeanCutoff, p.MeanRate, p.MeanInverted = util, rate, true
		} else {
			p.MeanCutoff, p.MeanRate = 1, mu
		}
		if rate, util, ok := res.Crossover(P95); ok {
			p.P95Cutoff, p.P95Rate, p.P95Inverted = util, rate, true
		} else {
			p.P95Cutoff, p.P95Rate = 1, mu
		}
		out = append(out, p)
	}
	return out
}

// AzureReplayResult bundles Figures 8–10: the per-site workload series,
// the edge and cloud latency timelines, and per-site latency box plots.
type AzureReplayResult struct {
	Series        []trace.SiteSeries
	EdgeTimeline  *stats.TimeSeries
	CloudTimeline *stats.TimeSeries
	EdgeBoxes     []stats.BoxPlot // one per edge site
	CloudBox      stats.BoxPlot
	EdgeResult    *cluster.Result
	CloudResult   *cluster.Result
}

// RunAzureReplay reproduces the §4.5 experiment: generate (or accept)
// 5-site Azure-like traces, replay them at the edge (Ohio, 1 ms) and at
// the cloud (Montreal, ~25 ms, 5 servers), and collect timelines and
// per-site distributions. scale multiplies trace rates to hit the
// desired utilization regime (the paper's sites operate near or beyond
// one server's capacity at peaks).
func RunAzureReplay(spec trace.AzureSpec, scale float64, seed int64) AzureReplayResult {
	series := trace.GenerateAzure(spec)
	if scale != 1 && scale > 0 {
		for si := range series {
			for i := range series[si].Counts {
				series[si].Counts[i] *= scale
			}
		}
	}
	sc, _ := netem.ScenarioByName("typical-25ms")
	model := app.NewInferenceModel()

	tr := cluster.Generate(cluster.GenSpec{
		Sites:    spec.Sites,
		Duration: float64(spec.Minutes) * 60,
		Model:    model,
		Seed:     seed,
		Arrivals: trace.ToArrivalProcesses(series, false),
	})

	const binWidth = 60 // one-minute bins, as in Figures 8–9
	edge := cluster.RunEdge(tr, cluster.EdgeConfig{
		Sites:          spec.Sites,
		ServersPerSite: 1,
		Path:           sc.Edge,
		Warmup:         0,
		Seed:           seed + 1,
		TimelineBin:    binWidth,
	})
	cloud := cluster.RunCloud(tr, cluster.CloudConfig{
		Servers:     spec.Sites,
		Path:        sc.Cloud,
		Warmup:      0,
		Seed:        seed + 2,
		TimelineBin: binWidth,
	})

	res := AzureReplayResult{
		Series:        series,
		EdgeTimeline:  edge.Timeline,
		CloudTimeline: cloud.Timeline,
		EdgeResult:    edge,
		CloudResult:   cloud,
	}
	for i := range edge.Sites {
		label := fmt.Sprintf("Edge %d", i+1)
		res.EdgeBoxes = append(res.EdgeBoxes, edge.Sites[i].EndToEnd.Box(label))
	}
	res.CloudBox = cloud.EndToEnd.Box("Cloud")
	return res
}
