package experiments

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/app"
	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/forecast"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scaler-comparison workload families. All three are time-varying —
// the regimes where reactive and predictive provisioning actually
// diverge: MMPP bursts (Corollary 3.2.1), NHPP diurnal ramps, and the
// synthetic Azure serverless trace of §4.1.
const (
	ScalerWorkloadMMPP  = "mmpp"
	ScalerWorkloadNHPP  = "nhpp"
	ScalerWorkloadAzure = "azure"
)

// ScalerWorkloads lists the supported workload names.
func ScalerWorkloads() []string {
	return []string{ScalerWorkloadMMPP, ScalerWorkloadNHPP, ScalerWorkloadAzure}
}

// scalerWorkloadBuilders maps every supported workload family to its
// per-site arrival-process builder — the single table both validation
// and derivation read, so a name cannot validate without also deriving
// (a test pins it against ScalerWorkloads). Builders return fresh,
// unconsumed processes on every call.
var scalerWorkloadBuilders = map[string]func(cfg ScalerComparisonConfig) []workload.ArrivalProcess{
	ScalerWorkloadMMPP:  mmppScalerArrivals,
	ScalerWorkloadNHPP:  nhppScalerArrivals,
	ScalerWorkloadAzure: azureScalerArrivals,
}

// ScalerComparisonConfig sweeps scaler policies over one workload: each
// spec drives the same two-tier deployment (scaled edge sites spilling
// to a static cloud backstop) on the same trace with the same run seed,
// so every difference between rows is the policy alone.
type ScalerComparisonConfig struct {
	// Workload selects the arrival family (default nhpp).
	Workload string
	// Sites is the edge tier's site count (default 5).
	Sites int
	// Duration is the simulated seconds (default 600; the azure
	// workload rounds to whole minutes).
	Duration float64
	// Warmup discards early measurements (default Duration/10).
	Warmup float64
	Seed   int64
	// BaseRate is the mean per-site arrival rate in req/s (default 8).
	// The time-varying envelopes swing around it.
	BaseRate float64
	// MinServers/MaxServers bound each edge site's capacity
	// (defaults 1 and 6).
	MinServers, MaxServers int
	// Mu is the per-server service rate handed to predictive specs
	// (default app.SaturationRate).
	Mu float64
	// Specs are the policies to compare; nil selects
	// DefaultScalerSpecs (reactive + predictive × every forecaster).
	Specs []autoscale.Spec
	// Pricing prices the cost overlay (zero value = DefaultPricing).
	Pricing econ.Pricing
	Summary stats.Mode
	// Workers bounds the worker pool (see SweepConfig.Workers).
	Workers int
	// Streaming replays every policy row from one shared generation
	// pass instead of materializing a trace: a single streaming source
	// (cluster.Stream) broadcasts to all rows through bounded rings
	// (cluster.RunBroadcast), so each row sees the byte-identical
	// record sequence a fresh per-row source would re-derive — at one
	// generation pass total rather than one per row — with memory
	// independent of the request count: the mode for 10⁸-request
	// policy sweeps. The nhpp and azure families still hold their rate
	// envelopes (O(Duration/binWidth) per site, nothing per request).
	// Pair with stats.Bounded summaries so collectors stay O(1) too.
	Streaming bool
}

// ScalerTierRow is one tier's share of a comparison row.
type ScalerTierRow struct {
	Tier          string
	Served        uint64
	Spilled       uint64
	ScaleUps      int
	ScaleDowns    int
	PeakServers   int
	ServerSeconds float64
	Cost          float64
	CostPerHour   float64
	CostPerReq    float64
}

// ScalerComparisonRow is one policy's outcome on the shared workload.
type ScalerComparisonRow struct {
	Policy  string
	Mean    float64 // seconds
	P95     float64
	Dropped uint64
	// TotalCost and CostPerRequest aggregate the cost overlay across
	// tiers (conserved: TotalCost == Σ Tiers[i].Cost).
	TotalCost      float64
	CostPerRequest float64
	Tiers          []ScalerTierRow
}

// ScalerComparisonResult is a completed policy sweep.
type ScalerComparisonResult struct {
	Workload string
	Rows     []ScalerComparisonRow
}

// DefaultScalerSpecs returns the standard comparison set: the default
// reactive threshold policy plus one predictive spec per registered
// forecaster.
func DefaultScalerSpecs(min, max int, mu float64) []autoscale.Spec {
	specs := []autoscale.Spec{autoscale.ReactiveSpec(autoscale.DefaultConfig(min, max))}
	for _, name := range forecast.Names() {
		specs = append(specs, autoscale.DefaultPredictiveSpec(min, max, mu, name))
	}
	return specs
}

// mmppScalerArrivals: bursty regime switching — quiet at 0.4× base,
// bursts at 2.5×, with minute-scale sojourns.
func mmppScalerArrivals(cfg ScalerComparisonConfig) []workload.ArrivalProcess {
	procs := make([]workload.ArrivalProcess, cfg.Sites)
	for i := range procs {
		procs[i] = workload.NewMMPP(0.4*cfg.BaseRate, 2.5*cfg.BaseRate, 50, 25)
	}
	return procs
}

// nhppScalerArrivals: a diurnal-shaped ramp per site, phase-shifted so
// sites peak at different times (the paper's spatial-drift setting,
// §3.2): rate(t) = base × (0.25 + 1.5 sin²(πt/D + phase)).
func nhppScalerArrivals(cfg ScalerComparisonConfig) []workload.ArrivalProcess {
	procs := make([]workload.ArrivalProcess, cfg.Sites)
	bins := int(math.Ceil(cfg.Duration / 30))
	if bins < 2 {
		bins = 2
	}
	for i := range procs {
		phase := math.Pi * float64(i) / float64(cfg.Sites)
		rates := make([]float64, bins)
		for b := range rates {
			t := (float64(b) + 0.5) / float64(bins)
			s := math.Sin(math.Pi*t + phase)
			rates[b] = cfg.BaseRate * (0.25 + 1.5*s*s)
		}
		procs[i] = workload.NewNHPP(rates, cfg.Duration/float64(bins), false)
	}
	return procs
}

// azureScalerArrivals: the synthetic Azure serverless trace of §4.1.
func azureScalerArrivals(cfg ScalerComparisonConfig) []workload.ArrivalProcess {
	spec := trace.DefaultAzureSpec()
	spec.Sites = cfg.Sites
	spec.Minutes = int(math.Max(1, math.Round(cfg.Duration/60)))
	spec.Seed = cfg.Seed
	return trace.ToArrivalProcesses(trace.GenerateAzure(spec), false)
}

// scalerWorkloadBuilder resolves a workload family name to its builder
// — the one lookup (and one error message) every caller shares.
func scalerWorkloadBuilder(name string) (func(ScalerComparisonConfig) []workload.ArrivalProcess, error) {
	build, ok := scalerWorkloadBuilders[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scaler workload %q (want one of %v)",
			name, ScalerWorkloads())
	}
	return build, nil
}

// scalerSpecFrom assembles the comparison spec around freshly built
// arrival processes. Arrival processes are stateful and consumed by a
// single Generate or Stream call, so every source derivation calls
// this again; identical cfg always yields the identical record
// sequence (the builders are deterministic in cfg).
func scalerSpecFrom(cfg ScalerComparisonConfig,
	build func(ScalerComparisonConfig) []workload.ArrivalProcess) cluster.GenSpec {
	return cluster.GenSpec{
		Sites:    cfg.Sites,
		Duration: cfg.Duration,
		Model:    app.NewInferenceModel(),
		Seed:     cfg.Seed,
		Arrivals: build(cfg),
	}
}

// scalerTopology builds the comparison deployment for one spec: scaled
// edge sites spilling overload to a static cloud backstop.
func scalerTopology(cfg ScalerComparisonConfig, spec autoscale.Spec) cluster.Topology {
	s := spec
	cloudPath := netem.CloudTypical
	return cluster.Topology{
		Name: "edge+" + spec.Label(),
		Tiers: []cluster.Tier{
			{Name: "edge", Sites: cfg.Sites, ServersPerSite: cfg.MinServers,
				Path: netem.EdgePath, Scaler: &s},
			{Name: "cloud", Sites: 1, ServersPerSite: cfg.Sites,
				Path: cloudPath, Dispatch: cluster.CentralQueueDispatch},
		},
		Spills: []cluster.SpillEdge{{
			From: "edge", To: "cloud",
			Threshold:  2 * cfg.MaxServers,
			DetourPath: &cloudPath,
		}},
	}
}

// RunScalerComparison replays one time-varying workload through the
// same deployment under every scaler spec and reports latency, scaling
// telemetry, and the per-tier cost overlay — the reactive-vs-predictive
// per-tier comparison the ROADMAP names, with §7 economics attached.
// Specs are evaluated concurrently; all share one trace and one run
// seed, so rows differ only by policy.
func RunScalerComparison(cfg ScalerComparisonConfig) (ScalerComparisonResult, error) {
	if cfg.Workload == "" {
		cfg.Workload = ScalerWorkloadNHPP
	}
	if cfg.Sites <= 0 {
		cfg.Sites = 5
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 600
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Duration / 10
	}
	if cfg.BaseRate <= 0 {
		cfg.BaseRate = 8
	}
	if cfg.MinServers <= 0 {
		cfg.MinServers = 1
	}
	if cfg.MaxServers <= 0 {
		cfg.MaxServers = 6
	}
	if cfg.Mu <= 0 {
		cfg.Mu = app.SaturationRate
	}
	if cfg.Pricing == (econ.Pricing{}) {
		cfg.Pricing = econ.DefaultPricing()
	}
	specs := cfg.Specs
	if specs == nil {
		specs = DefaultScalerSpecs(cfg.MinServers, cfg.MaxServers, cfg.Mu)
	}
	if len(specs) == 0 {
		return ScalerComparisonResult{}, fmt.Errorf("experiments: scaler comparison needs specs")
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return ScalerComparisonResult{}, fmt.Errorf("experiments: spec %d: %w", i, err)
		}
	}
	// Resolve the workload builder before any source derivation: a bad
	// name errors here without building anything, and the resolved
	// builder is the same one every later derivation uses, so a name
	// cannot validate and then fail to derive. Every row replays the
	// identical arrival sequence: either fresh iterators over one
	// materialized trace, or — in streaming mode — one generator
	// source broadcast to every row through bounded rings (records are
	// value types, so rows share nothing mutable).
	build, err := scalerWorkloadBuilder(cfg.Workload)
	if err != nil {
		return ScalerComparisonResult{}, err
	}
	mkSpec := func() cluster.GenSpec { return scalerSpecFrom(cfg, build) }
	rowOpts := func(sizeHint int) cluster.Options {
		return cluster.Options{
			Warmup:   cfg.Warmup,
			Seed:     cfg.Seed + 1, // shared across specs: same streams, policy is the only delta
			Summary:  cfg.Summary,
			SizeHint: sizeHint,
			Pricing:  &cfg.Pricing,
		}
	}
	res := ScalerComparisonResult{
		Workload: cfg.Workload,
		Rows:     make([]ScalerComparisonRow, len(specs)),
	}

	if cfg.Streaming {
		// One generation pass fans out to every policy row through
		// cluster.RunBroadcast: each subscriber ring replays the
		// byte-identical record sequence a per-row StreamFactory source
		// would re-derive (the streaming equivalence tests pin rows
		// against the materialized sweep), at 1/len(specs) of the
		// generation cost.
		variants := make([]cluster.Variant, len(specs))
		for i, s := range specs {
			variants[i] = cluster.Variant{
				Label:    s.Label(),
				Topology: scalerTopology(cfg, s),
				Opts:     rowOpts(0),
			}
		}
		runs, err := cluster.RunBroadcast(cluster.Stream(mkSpec()), variants, 0)
		if err != nil {
			return ScalerComparisonResult{}, err
		}
		for i, run := range runs {
			res.Rows[i] = scalerRow(specs[i].Label(), run)
		}
		return res, nil
	}

	tr := cluster.Generate(mkSpec())
	var mu sync.Mutex
	var firstErr error
	forEach(len(specs), cfg.Workers, func(i int) {
		run, err := cluster.Run(tr.Source(), scalerTopology(cfg, specs[i]), rowOpts(tr.Len()))
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		res.Rows[i] = scalerRow(specs[i].Label(), run)
	})
	if firstErr != nil {
		return ScalerComparisonResult{}, firstErr
	}
	return res, nil
}

// scalerRow flattens one policy's run into a comparison row.
func scalerRow(label string, run *cluster.TopologyResult) ScalerComparisonRow {
	row := ScalerComparisonRow{
		Policy:         label,
		Mean:           run.EndToEnd.Mean(),
		P95:            run.EndToEnd.P95(),
		Dropped:        run.Dropped,
		TotalCost:      run.TotalCost,
		CostPerRequest: run.CostPerRequest,
	}
	for _, tier := range run.Tiers {
		row.Tiers = append(row.Tiers, ScalerTierRow{
			Tier:          tier.Name,
			Served:        tier.Served,
			Spilled:       tier.Spilled,
			ScaleUps:      tier.ScaleUps,
			ScaleDowns:    tier.ScaleDowns,
			PeakServers:   tier.PeakServers,
			ServerSeconds: tier.ServerSeconds,
			Cost:          tier.Cost,
			CostPerHour:   tier.CostPerHour,
			CostPerReq:    tier.CostPerReq,
		})
	}
	return row
}
