package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/netem"
	"repro/internal/stats"
)

// TopologySweepConfig describes a request-rate sweep over an arbitrary
// deployment topology: the generalization of SweepConfig from the
// paper's two fixed shapes to any tier graph. Rates are per ingress
// server per second, scaled by the entry tier's servers-per-site.
type TopologySweepConfig struct {
	Topology   cluster.Topology
	Rates      []float64
	Duration   float64
	Warmup     float64
	Seed       int64
	Model      app.InferenceModel
	ArrivalSCV float64
	Summary    stats.Mode
	// Workers bounds the worker pool (see SweepConfig.Workers).
	Workers int
	// Baseline, when set, replays each rate's identical trace through
	// this second topology (e.g. an equal-capacity pooled cloud), so
	// crossover comparisons between the two are paired — free of
	// unpaired sampling noise near the inversion point.
	Baseline *cluster.Topology
	// Source, when set, supplies each run's workload instead of a
	// materialized Generate: it is called with the point's fully
	// derived GenSpec once per run (topology and baseline separately),
	// and must return a fresh source over that spec's record sequence.
	// cluster.Stream is the natural value — per-point sweeps in memory
	// independent of Duration, replaying the sequence Generate would
	// produce for the same spec. Pair with stats.Bounded summaries.
	// Incompatible with Shards (an arbitrary factory cannot be split
	// into per-site ranges; use the generator path instead).
	Source func(cluster.GenSpec) cluster.Source
	// Shards selects the per-point replay engine. 0 replays every
	// point with cluster.Run (the single-engine path, back-compatible
	// bit-for-bit). AutoShards replays shardable topologies with
	// cluster.RunSharded, splitting each point across the CPUs the
	// worker pool leaves idle, and silently falls back to Run for
	// unshardable ones. N > 0 forces exactly N shards per point and
	// fails the sweep when a topology is not shardable. Sharded
	// results are bit-identical at every shard count but follow the
	// sharded stream discipline, so they differ numerically from
	// Shards == 0 points — pick one engine per experiment.
	Shards int
}

// AutoShards asks RunTopologySweep to pick a per-point shard count
// from the machine's CPU count and the sweep's own parallelism.
const AutoShards = -1

// TierPoint is one tier's share of a topology sweep point.
type TierPoint struct {
	Name        string
	Served      uint64
	Spilled     uint64
	Dropped     uint64
	Rejected    uint64  // admission refusals at this tier (warmup included)
	Mean        float64 // seconds, requests served at this tier
	P95         float64
	Utilization float64
	// Scaler/cost overlay: peak provisioned servers (0 for static
	// tiers) and the tier's cost per served request.
	PeakServers int
	CostPerReq  float64
}

// TopologyPoint is one measured rate of a topology sweep.
type TopologyPoint struct {
	RatePerServer float64
	Mean          float64
	Median        float64
	P95           float64
	N             int
	Dropped       uint64
	Rejected      uint64
	Tiers         []TierPoint
}

// TopologySweepResult is a completed topology sweep.
type TopologySweepResult struct {
	Config TopologySweepConfig
	Points []TopologyPoint
	// Baseline points, parallel to Points; nil unless Config.Baseline
	// was set. Each index replays the same trace as Points[i].
	Baseline []TopologyPoint
}

// RunTopologySweep sweeps request rates through the topology, one
// generated trace per rate, points evaluated concurrently with
// index-derived seeds (byte-identical at any pool size). The topology
// is validated before any worker starts.
func RunTopologySweep(cfg TopologySweepConfig) (TopologySweepResult, error) {
	if len(cfg.Topology.Tiers) == 0 {
		return TopologySweepResult{}, fmt.Errorf("experiments: topology sweep needs a topology")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return TopologySweepResult{}, err
	}
	if len(cfg.Rates) == 0 {
		return TopologySweepResult{}, fmt.Errorf("experiments: topology sweep needs rates")
	}
	if cfg.Baseline != nil {
		if err := cfg.Baseline.Validate(); err != nil {
			return TopologySweepResult{}, fmt.Errorf("experiments: baseline: %w", err)
		}
	}
	if cfg.Shards != 0 && cfg.Source != nil {
		return TopologySweepResult{}, fmt.Errorf("experiments: Shards and Source are incompatible (a source factory cannot be split into site ranges)")
	}
	topoShards, err := resolveShards(cfg.Shards, cfg.Topology, cfg.Workers, len(cfg.Rates))
	if err != nil {
		return TopologySweepResult{}, err
	}
	baseShards := 0
	if cfg.Baseline != nil {
		baseShards, err = resolveShards(cfg.Shards, *cfg.Baseline, cfg.Workers, len(cfg.Rates))
		if err != nil {
			return TopologySweepResult{}, fmt.Errorf("experiments: baseline: %w", err)
		}
	}
	if cfg.Model.D == nil {
		cfg.Model = app.NewInferenceModel()
	}
	ingress := cfg.Topology.Tiers[0]
	perSite := ingress.ServersPerSite
	if perSite <= 0 {
		perSite = 1
	}
	res := TopologySweepResult{Config: cfg, Points: make([]TopologyPoint, len(cfg.Rates))}
	if cfg.Baseline != nil {
		res.Baseline = make([]TopologyPoint, len(cfg.Rates))
	}
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	forEach(len(cfg.Rates), cfg.Workers, func(i int) {
		spec := cluster.GenSpec{
			Sites:       ingress.Sites,
			Duration:    cfg.Duration,
			PerSiteRate: cfg.Rates[i] * float64(perSite),
			ArrivalSCV:  cfg.ArrivalSCV,
			Model:       cfg.Model,
			Seed:        cfg.Seed + int64(i)*7919,
		}
		// One source per run, all over the identical record sequence:
		// fresh iterators over a shared materialized trace, fresh
		// generator streams re-derived from the same spec (a Source
		// factory), or per-site generator ranges (sharded points) — so
		// the pairing holds however each run is engineered.
		src, sizeHint := cfg.Source, 0
		if src == nil && (topoShards == 0 || (cfg.Baseline != nil && baseShards == 0)) {
			tr := cluster.Generate(spec)
			src = func(cluster.GenSpec) cluster.Source { return tr.Source() }
			sizeHint = tr.Len()
		}
		pointOpts := func(seed int64) cluster.Options {
			return cluster.Options{
				Warmup:   cfg.Warmup,
				Seed:     seed,
				Summary:  cfg.Summary,
				SizeHint: sizeHint,
			}
		}
		runPoint := func(topo cluster.Topology, shards int, seed int64) (*cluster.TopologyResult, error) {
			if shards != 0 {
				return cluster.RunSharded(cluster.GenShards(spec), topo, pointOpts(seed), shards)
			}
			return cluster.Run(src(spec), topo, pointOpts(seed))
		}
		if cfg.Source != nil && cfg.Baseline != nil {
			// Paired single-engine point over a factory source: one
			// generation/decode pass broadcasts to the topology and its
			// baseline instead of replaying the trace twice. Each
			// subscriber ring yields the byte-identical sequence a
			// fresh cfg.Source(spec) call would, with the same
			// per-shape seeds, so the pairing — and every number — is
			// unchanged (asserted by the sweep streaming tests).
			runs, err := cluster.RunBroadcast(cfg.Source(spec), []cluster.Variant{
				{Label: cfg.Topology.Name, Topology: cfg.Topology,
					Opts: pointOpts(cfg.Seed + int64(i)*104729)},
				{Label: "baseline", Topology: *cfg.Baseline,
					Opts: pointOpts(cfg.Seed + int64(i)*1299709)},
			}, 0)
			if err != nil {
				fail(err)
				return
			}
			res.Points[i] = topologyPoint(cfg.Rates[i], runs[0])
			res.Baseline[i] = topologyPoint(cfg.Rates[i], runs[1])
			return
		}
		run, err := runPoint(cfg.Topology, topoShards, cfg.Seed+int64(i)*104729)
		if err != nil {
			fail(err)
			return
		}
		res.Points[i] = topologyPoint(cfg.Rates[i], run)
		if cfg.Baseline != nil {
			// The same trace through the baseline shape: only the
			// deployment differs between the paired points.
			base, err := runPoint(*cfg.Baseline, baseShards, cfg.Seed+int64(i)*1299709)
			if err != nil {
				fail(fmt.Errorf("baseline: %w", err))
				return
			}
			res.Baseline[i] = topologyPoint(cfg.Rates[i], base)
		}
	})
	if firstErr != nil {
		return TopologySweepResult{}, firstErr
	}
	return res, nil
}

// resolveShards turns a sweep's Shards setting into a per-topology
// shard count: 0 keeps the single-engine path, AutoShards divides the
// CPUs not already busy running other sweep points across each point
// (falling back to the single engine when the topology cannot shard),
// and an explicit count is validated against Shardable. The returned
// count only affects wall-clock: RunSharded is bit-identical at every
// shard count.
func resolveShards(setting int, topo cluster.Topology, workers, points int) (int, error) {
	switch {
	case setting == 0:
		return 0, nil
	case setting > 0:
		if err := cluster.Shardable(topo); err != nil {
			return 0, err
		}
		return setting, nil
	default:
		if cluster.Shardable(topo) != nil {
			return 0, nil
		}
		s := runtime.GOMAXPROCS(0) / poolSize(workers, points)
		if s < 1 {
			s = 1
		}
		return s, nil
	}
}

// topologyPoint flattens one run into a sweep point.
func topologyPoint(rate float64, run *cluster.TopologyResult) TopologyPoint {
	p := TopologyPoint{
		RatePerServer: rate,
		Mean:          run.EndToEnd.Mean(),
		Median:        run.EndToEnd.Median(),
		P95:           run.EndToEnd.P95(),
		N:             run.EndToEnd.N(),
		Dropped:       run.Dropped,
		Rejected:      run.Rejected,
	}
	for _, tier := range run.Tiers {
		p.Tiers = append(p.Tiers, TierPoint{
			Name:        tier.Name,
			Served:      tier.Served,
			Spilled:     tier.Spilled,
			Dropped:     tier.Dropped,
			Rejected:    tier.Rejected,
			Mean:        tier.EndToEnd.Mean(),
			P95:         tier.EndToEnd.P95(),
			Utilization: tier.Utilization,
			PeakServers: tier.PeakServers,
			CostPerReq:  tier.CostPerReq,
		})
	}
	return p
}

// ThreeTierPoint compares four capacity-matched deployment shapes at
// one request rate: the paper's pure edge and pure cloud, the two-tier
// overflow hierarchy, and the three-tier edge→regional→cloud chain.
type ThreeTierPoint struct {
	RatePerServer float64
	EdgeMean      float64
	EdgeP95       float64
	CloudMean     float64
	CloudP95      float64
	OverflowMean  float64
	OverflowP95   float64
	ChainMean     float64
	ChainP95      float64
	// Escalation fractions: share of requests leaving their home site.
	OverflowSpill float64
	ChainSpillReg float64 // edge → regional
	ChainSpillCld float64 // regional → cloud
}

// ThreeTierResult is the new hierarchy figure: the latency trajectory
// of the four shapes across the paper's rate axis.
type ThreeTierResult struct {
	Rates  []float64
	Points []ThreeTierPoint
}

// threeTierChain is the capacity-matched chain used by the figure:
// 5 edge servers, a 2-server regional cluster at 13 ms, and a
// 3-server cloud at 25 ms — 10 servers total, the same as the other
// three shapes.
func threeTierChain() cluster.Topology {
	regional := netem.Jittered("regional-13ms", 0.013, 0.002)
	cloud := netem.CloudTypical
	return cluster.Topology{
		Name: "edge-regional-cloud",
		Tiers: []cluster.Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: netem.EdgePath},
			{Name: "regional", Sites: 1, ServersPerSite: 2, Path: regional,
				Dispatch: cluster.CentralQueueDispatch},
			{Name: "cloud", Sites: 1, ServersPerSite: 3, Path: cloud,
				Dispatch: cluster.CentralQueueDispatch},
		},
		Spills: []cluster.SpillEdge{
			{From: "edge", To: "regional", Threshold: 3, DetourPath: &regional},
			{From: "regional", To: "cloud", Threshold: 4, DetourPath: &cloud},
		},
	}
}

// RunFigThreeTier evaluates the hierarchy figure: every shape deploys
// 10 servers and replays the same per-rate trace (5 sites, 2× the
// per-server rate each), so differences are purely deployment shape —
// pooled far capacity, partitioned near capacity, or hierarchies in
// between. Points are evaluated concurrently with index-derived seeds.
func RunFigThreeTier(duration float64, seed int64) (ThreeTierResult, error) {
	chain := threeTierChain()
	if err := chain.Validate(); err != nil {
		return ThreeTierResult{}, err
	}
	model := app.NewInferenceModel()
	rates := []float64{6, 7, 8, 9, 10, 11, 12}
	res := ThreeTierResult{Rates: rates, Points: make([]ThreeTierPoint, len(rates))}
	var mu sync.Mutex
	var firstErr error
	forEach(len(rates), 0, func(i int) {
		rate := rates[i]
		tr := cluster.Generate(cluster.GenSpec{
			Sites:       5,
			Duration:    duration,
			PerSiteRate: rate * 2, // 10 servers over 5 sites
			Model:       model,
			Seed:        seed + int64(i)*7919,
		})
		warmup := duration / 10
		edge, cloud := cluster.RunPaired(tr, cluster.EdgeConfig{
			Sites: 5, ServersPerSite: 2, Path: netem.EdgePath,
			Warmup: warmup, Seed: seed + int64(i)*104729,
		}, cluster.CloudConfig{
			Servers: 10, Path: netem.CloudTypical,
			Warmup: warmup, Seed: seed + int64(i)*1299709,
		})
		over := cluster.RunEdgeWithOverflow(tr, cluster.OverflowConfig{
			Sites: 5, ServersPerSite: 1,
			EdgePath: netem.EdgePath, CloudPath: netem.CloudTypical,
			CloudServers: 5, OverflowThreshold: 3,
			Warmup: warmup, Seed: seed + int64(i)*15485863,
		})
		chained, err := cluster.Run(tr.Source(), chain, cluster.Options{
			Warmup:   warmup,
			Seed:     seed + int64(i)*32452843,
			SizeHint: tr.Len(),
		})
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		n := float64(tr.Len())
		res.Points[i] = ThreeTierPoint{
			RatePerServer: rate,
			EdgeMean:      edge.MeanLatency(),
			EdgeP95:       edge.P95Latency(),
			CloudMean:     cloud.MeanLatency(),
			CloudP95:      cloud.P95Latency(),
			OverflowMean:  over.MeanLatency(),
			OverflowP95:   over.P95Latency(),
			ChainMean:     chained.MeanLatency(),
			ChainP95:      chained.P95Latency(),
			OverflowSpill: float64(over.Overflowed) / n,
			ChainSpillReg: float64(chained.Tier("edge").Spilled) / n,
			ChainSpillCld: float64(chained.Tier("regional").Spilled) / n,
		}
	})
	if firstErr != nil {
		return ThreeTierResult{}, firstErr
	}
	return res, nil
}
