package experiments

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// shortSweep returns a reduced-duration sweep for test speed.
func shortSweep(scenario string, rates []float64, m int, seed int64) SweepResult {
	cfg := DefaultSweepConfig()
	sc, err := scenarioByName(scenario)
	if err != nil {
		panic(err)
	}
	cfg.Scenario = sc
	cfg.Rates = rates
	cfg.ServersPerSite = m
	cfg.Duration = 250
	cfg.Warmup = 25
	cfg.Seed = seed
	return RunSweep(cfg)
}

func TestSweepShape(t *testing.T) {
	res := shortSweep("typical-25ms", []float64{6, 9, 12}, 1, 1)
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Latencies positive and edge grows with rate.
	prevEdge := 0.0
	for _, p := range res.Points {
		if p.EdgeMean <= 0 || p.CloudMean <= 0 || p.EdgeP95 <= 0 || p.CloudP95 <= 0 {
			t.Fatalf("non-positive latency at rate %v", p.RatePerServer)
		}
		if p.EdgeP95 < p.EdgeMean || p.CloudP95 < p.CloudMean {
			t.Fatalf("p95 below mean at rate %v", p.RatePerServer)
		}
		if p.EdgeMean < prevEdge {
			t.Errorf("edge mean decreased at rate %v", p.RatePerServer)
		}
		prevEdge = p.EdgeMean
		if p.EdgeN == 0 || p.CloudN == 0 {
			t.Fatal("empty samples")
		}
	}
	// Offered utilization bookkeeping.
	if got := res.Points[0].Utilization; math.Abs(got-6.0/13) > 1e-9 {
		t.Errorf("utilization = %v", got)
	}
}

// TestFig3CrossoverNearPaper: the calibrated simulator should cross over
// within ±1.5 req/s of the paper's measured 8 req/s (k=5, Δn≈25ms).
func TestFig3CrossoverNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("long crossover sweep")
	}
	res := shortSweep("typical-25ms", []float64{6, 7, 8, 9, 10, 11, 12}, 1, 42)
	rate, util, ok := res.Crossover(Mean)
	if !ok {
		t.Fatal("expected a mean-latency crossover")
	}
	if rate < 6.5 || rate > 10.5 {
		t.Errorf("crossover at %.1f req/s (util %.2f), paper measured 8", rate, util)
	}
}

// TestDistantCloudCrossesLater: Figure 4's point — a 54 ms cloud moves
// the crossover to a higher rate than the 25 ms cloud.
func TestDistantCloudCrossesLater(t *testing.T) {
	if testing.Short() {
		t.Skip("long comparison sweep")
	}
	rates := []float64{6, 7, 8, 9, 10, 11, 12}
	typical := shortSweep("typical-25ms", rates, 1, 7)
	distant := shortSweep("distant-54ms", rates, 1, 7)
	rT, _, okT := typical.Crossover(Mean)
	rD, _, okD := distant.Crossover(Mean)
	if okT && okD && rD <= rT {
		t.Errorf("distant crossover %.1f should exceed typical %.1f", rD, rT)
	}
	if okT && !okD {
		return // distant never inverts in range: consistent with "later"
	}
	if !okT {
		t.Error("typical cloud should invert within the sweep")
	}
}

// TestTailInvertsBeforeMean: Figure 5's insight — at any rate where the
// mean has inverted, the p95 must have inverted too (p95 crossover ≤
// mean crossover).
func TestTailInvertsBeforeMean(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	res := shortSweep("distant-54ms", []float64{6, 8, 10, 11, 12}, 1, 3)
	rMean, _, okMean := res.Crossover(Mean)
	rP95, _, okP95 := res.Crossover(P95)
	if okMean && !okP95 {
		t.Fatal("mean inverted but p95 did not")
	}
	if okMean && okP95 && rP95 > rMean+0.5 {
		t.Errorf("p95 crossover %.1f should not exceed mean crossover %.1f", rP95, rMean)
	}
}

func TestCrossoverInterpolation(t *testing.T) {
	// Synthetic sweep: edge−cloud diff goes −10ms at rate 8 to +10ms at
	// rate 9 → crossover at exactly 8.5.
	res := SweepResult{Config: DefaultSweepConfig()}
	res.Points = []SweepPoint{
		{RatePerServer: 8, EdgeMean: 0.090, CloudMean: 0.100, EdgeP95: 0.1, CloudP95: 0.2},
		{RatePerServer: 9, EdgeMean: 0.110, CloudMean: 0.100, EdgeP95: 0.15, CloudP95: 0.2},
	}
	rate, util, ok := res.Crossover(Mean)
	if !ok {
		t.Fatal("expected crossover")
	}
	if math.Abs(rate-8.5) > 1e-9 {
		t.Errorf("interpolated crossover = %v, want 8.5", rate)
	}
	if math.Abs(util-8.5/13) > 1e-9 {
		t.Errorf("interpolated util = %v", util)
	}
	// P95 never crosses.
	if _, _, ok := res.Crossover(P95); ok {
		t.Error("p95 should not cross in this synthetic sweep")
	}
}

func TestCrossoverFirstPointAlreadyInverted(t *testing.T) {
	res := SweepResult{Config: DefaultSweepConfig()}
	res.Points = []SweepPoint{
		{RatePerServer: 6, EdgeMean: 0.2, CloudMean: 0.1},
	}
	rate, _, ok := res.Crossover(Mean)
	if !ok || rate != 6 {
		t.Errorf("already-inverted sweep: rate=%v ok=%v", rate, ok)
	}
}

func TestMetricString(t *testing.T) {
	if Mean.String() != "mean" || P95.String() != "p95" {
		t.Error("metric names wrong")
	}
}

func TestRunFig6Shapes(t *testing.T) {
	out := RunFig6(150, 5)
	if len(out) != 4 {
		t.Fatalf("Fig6 scenarios = %d, want 4", len(out))
	}
	for _, s := range out {
		if s.Box.N == 0 {
			t.Fatalf("%s: empty distribution", s.Label)
		}
		if s.Summary.Mean <= 0 {
			t.Fatalf("%s: non-positive mean", s.Label)
		}
	}
	// Figure 6's visual: the 1-server edge has the widest distribution
	// (longest whisker-to-whisker span) at 10 req/s.
	edge1 := out[0].Box
	cloud10 := out[3].Box
	if edge1.IQR() <= cloud10.IQR() {
		t.Errorf("edge-1 IQR %v should exceed cloud-10 IQR %v", edge1.IQR(), cloud10.IQR())
	}
}

func TestRunFig7Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 7 sweep is long")
	}
	points := RunFig7(150, 11)
	if len(points) != 4 {
		t.Fatalf("Fig7 points = %d", len(points))
	}
	prevMean := -1.0
	for _, p := range points {
		if p.MeanCutoff < prevMean-0.08 {
			t.Errorf("mean cutoff not (approximately) increasing with RTT: %+v", points)
		}
		prevMean = p.MeanCutoff
		// Tail cutoff at or below mean cutoff.
		if p.P95Cutoff > p.MeanCutoff+0.05 {
			t.Errorf("%s: p95 cutoff %v above mean cutoff %v", p.Scenario, p.P95Cutoff, p.MeanCutoff)
		}
	}
}

func TestRunAzureReplayShapes(t *testing.T) {
	spec := trace.DefaultAzureSpec()
	spec.Minutes = 6
	res := RunAzureReplay(spec, 1.0, 2)
	if len(res.Series) != spec.Sites {
		t.Fatal("series count wrong")
	}
	if res.EdgeTimeline == nil || res.CloudTimeline == nil {
		t.Fatal("timelines missing")
	}
	if len(res.EdgeBoxes) != spec.Sites {
		t.Fatalf("edge boxes = %d", len(res.EdgeBoxes))
	}
	if res.CloudBox.N == 0 {
		t.Fatal("cloud box empty")
	}
	// The aggregated cloud sees a smoother latency series than the edge
	// (the paper's smoothing observation): compare coefficient of
	// variation across minute bins.
	cvE := seriesCV(res.EdgeTimeline.Means())
	cvC := seriesCV(res.CloudTimeline.Means())
	if cvC >= cvE {
		t.Errorf("cloud timeline CV %v should be below edge %v", cvC, cvE)
	}
}

func seriesCV(xs []float64) float64 {
	var n, sum float64
	for _, x := range xs {
		if x > 0 {
			sum += x
			n++
		}
	}
	if n < 2 {
		return 0
	}
	mean := sum / n
	var m2 float64
	for _, x := range xs {
		if x > 0 {
			m2 += (x - mean) * (x - mean)
		}
	}
	return math.Sqrt(m2/(n-1)) / mean
}

func TestRunValidationAgainstPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("validation sweep is long")
	}
	rows := RunValidation(250, 42)
	if len(rows) != 2 {
		t.Fatalf("validation rows = %d", len(rows))
	}
	// Paper-convention predictions ≈ the published 0.64 and 0.75.
	if math.Abs(rows[0].PaperCutoff-0.64) > 0.04 {
		t.Errorf("k=5 paper cutoff = %v, want ~0.64", rows[0].PaperCutoff)
	}
	if math.Abs(rows[1].PaperCutoff-0.75) > 0.04 {
		t.Errorf("k=10 paper cutoff = %v, want ~0.75", rows[1].PaperCutoff)
	}
	// Measured crossovers exist and land at moderate utilization.
	for _, r := range rows {
		if r.MeasuredUtil < 0.4 || r.MeasuredUtil > 0.95 {
			t.Errorf("%s: measured cutoff %v implausible", r.Label, r.MeasuredUtil)
		}
	}
	// Two-server case crosses later than one-server (paper: 8 vs 11).
	if rows[1].MeasuredUtil <= rows[0].MeasuredUtil {
		t.Errorf("2-server cutoff %v should exceed 1-server %v",
			rows[1].MeasuredUtil, rows[0].MeasuredUtil)
	}
}

func TestRunCapacityTable(t *testing.T) {
	rows := RunCapacityTable([]float64{100}, []int{5, 50})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EdgeCapacity <= r.CloudCapacity {
			t.Errorf("edge capacity should exceed cloud: %+v", r)
		}
		if r.EdgeServers < r.CloudServers {
			t.Errorf("edge servers should be >= cloud servers: %+v", r)
		}
	}
	if rows[1].Overhead <= rows[0].Overhead {
		t.Error("overhead should grow with k")
	}
}

// azureShortSpec returns a reduced Azure spec for fast tests.
func azureShortSpec() trace.AzureSpec {
	spec := trace.DefaultAzureSpec()
	spec.Minutes = 8
	return spec
}
