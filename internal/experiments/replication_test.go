package experiments

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestRunReplicatedSweep(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Rates = []float64{6, 12}
	cfg.Duration = 120
	cfg.Warmup = 12
	points := RunReplicatedSweep(cfg, 4)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Replications != 4 {
			t.Error("replication count wrong")
		}
		if p.EdgeMean <= 0 || p.CloudMean <= 0 {
			t.Fatal("non-positive means")
		}
		if p.EdgeMeanCI < 0 || p.CloudMeanCI < 0 {
			t.Fatal("negative CI")
		}
		if p.EdgeP95 < p.EdgeMean {
			t.Error("p95 below mean")
		}
	}
	// At 6 req/s the comparison should be statistically resolved in the
	// edge's favor; at 12 in the cloud's.
	if !points[0].Separated() {
		t.Error("6 req/s comparison should separate")
	}
	if points[0].EdgeMean >= points[0].CloudMean {
		t.Error("edge should win at 6 req/s")
	}
	if points[1].EdgeMean <= points[1].CloudMean {
		t.Error("cloud should win at 12 req/s")
	}
}

func TestRunReplicatedSweepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=0 should panic")
		}
	}()
	RunReplicatedSweep(DefaultSweepConfig(), 0)
}

func TestCrossoverCI(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated crossover is long")
	}
	cfg := DefaultSweepConfig()
	cfg.Duration = 150
	cfg.Warmup = 15
	rate, ci, ok := CrossoverCI(cfg, Mean, 4)
	if !ok {
		t.Fatal("crossover should be found in most replications")
	}
	if rate < 7 || rate > 11 {
		t.Errorf("replicated crossover %v ± %v outside plausible range", rate, ci)
	}
	if ci <= 0 || ci > 3 {
		t.Errorf("CI half-width %v implausible", ci)
	}
}

func mkSeries(binWidth float64, means ...float64) *stats.TimeSeries {
	ts := stats.NewTimeSeries(0, binWidth)
	for i, m := range means {
		if math.IsNaN(m) {
			continue // leave the bin empty
		}
		t := (float64(i) + 0.5) * binWidth
		ts.Add(t, m)
	}
	return ts
}

func TestDetectInversions(t *testing.T) {
	nan := math.NaN()
	edge := mkSeries(60, 50, 120, 130, 80, 90, 200, nan, 210)
	cloud := mkSeries(60, 100, 100, 100, 100, 100, 100, 100, 100)
	ivs := DetectInversions(edge, cloud)
	// Three intervals: bins 1–2, bin 5 (closed by the empty bin 6), and
	// bin 7 (re-opened after the gap).
	if len(ivs) != 3 {
		t.Fatalf("intervals = %+v, want 3", ivs)
	}
	// First: bins 1–2.
	if ivs[0].StartBin != 1 || ivs[0].EndBin != 2 {
		t.Errorf("first interval bins %d–%d, want 1–2", ivs[0].StartBin, ivs[0].EndBin)
	}
	if math.Abs(ivs[0].StartTime-60) > 1e-9 || math.Abs(ivs[0].EndTime-180) > 1e-9 {
		t.Errorf("first interval time [%v, %v], want [60, 180]", ivs[0].StartTime, ivs[0].EndTime)
	}
	if math.Abs(ivs[0].PeakRatio-1.3) > 1e-9 {
		t.Errorf("first peak ratio %v, want 1.3", ivs[0].PeakRatio)
	}
	if math.Abs(ivs[0].Duration()-120) > 1e-9 {
		t.Errorf("duration %v, want 120", ivs[0].Duration())
	}
	if ivs[1].StartBin != 5 || ivs[1].EndBin != 5 {
		t.Errorf("second interval bins %d–%d, want 5–5", ivs[1].StartBin, ivs[1].EndBin)
	}
	if ivs[2].StartBin != 7 {
		t.Errorf("third interval starts at %d, want 7", ivs[2].StartBin)
	}
}

func TestDetectInversionsNone(t *testing.T) {
	edge := mkSeries(60, 50, 60, 70)
	cloud := mkSeries(60, 100, 100, 100)
	if ivs := DetectInversions(edge, cloud); len(ivs) != 0 {
		t.Errorf("no inversion expected, got %+v", ivs)
	}
	if ivs := DetectInversions(nil, cloud); ivs != nil {
		t.Error("nil series should return nil")
	}
}

func TestDetectInversionsTrailingOpen(t *testing.T) {
	edge := mkSeries(60, 50, 150, 150)
	cloud := mkSeries(60, 100, 100, 100)
	ivs := DetectInversions(edge, cloud)
	if len(ivs) != 1 || ivs[0].EndBin != 2 {
		t.Errorf("trailing interval wrong: %+v", ivs)
	}
}

func TestInversionFraction(t *testing.T) {
	edge := mkSeries(60, 50, 150, 300, 80)
	cloud := mkSeries(60, 100, 100, 100, 100)
	frac, peak := InversionFraction(edge, cloud)
	if math.Abs(frac-0.5) > 1e-9 {
		t.Errorf("fraction = %v, want 0.5", frac)
	}
	if math.Abs(peak-3) > 1e-9 {
		t.Errorf("peak = %v, want 3", peak)
	}
	if f, _ := InversionFraction(nil, nil); f != 0 {
		t.Error("nil series fraction should be 0")
	}
}

// TestInversionFractionOnAzureReplay ties the detector to the real
// Figure 9 artifact: the skewed Azure workload must invert a meaningful
// fraction of minutes.
func TestInversionFractionOnAzureReplay(t *testing.T) {
	spec := azureShortSpec()
	res := RunAzureReplay(spec, 1.0, 7)
	frac, peak := InversionFraction(res.EdgeTimeline, res.CloudTimeline)
	if frac == 0 {
		t.Error("Azure replay should show per-minute inversions")
	}
	if peak <= 1 {
		t.Error("peak ratio should exceed 1")
	}
	ivs := DetectInversions(res.EdgeTimeline, res.CloudTimeline)
	if len(ivs) == 0 {
		t.Error("expected at least one inversion interval")
	}
}
