package experiments

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netem"
)

func TestRunTopologySweep(t *testing.T) {
	cloud := netem.CloudTypical
	topo := cluster.Topology{
		Name: "two-tier",
		Tiers: []cluster.Tier{
			{Name: "edge", Sites: 3, ServersPerSite: 1, Path: netem.EdgePath},
			{Name: "cloud", Sites: 1, ServersPerSite: 3, Path: cloud,
				Dispatch: cluster.CentralQueueDispatch},
		},
		Spills: []cluster.SpillEdge{{From: "edge", To: "cloud", Threshold: 3, DetourPath: &cloud}},
	}
	res, err := RunTopologySweep(TopologySweepConfig{
		Topology: topo,
		Rates:    []float64{6, 10, 12},
		Duration: 150,
		Warmup:   15,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.N == 0 || p.Mean <= 0 {
			t.Errorf("rate %v: empty point %+v", p.RatePerServer, p)
		}
		if len(p.Tiers) != 2 {
			t.Fatalf("rate %v: %d tier points", p.RatePerServer, len(p.Tiers))
		}
		var served uint64
		for _, tier := range p.Tiers {
			served += tier.Served
		}
		if served != uint64(p.N) {
			t.Errorf("rate %v: tier served %d != N %d", p.RatePerServer, served, p.N)
		}
	}
	if last := res.Points[2].Tiers[0]; last.Spilled == 0 {
		t.Error("highest rate never spilled; sweep should stress the hierarchy")
	}
	// Serial and parallel evaluation agree byte for byte.
	serial, err := RunTopologySweep(TopologySweepConfig{
		Topology: topo, Rates: []float64{6, 10, 12},
		Duration: 150, Warmup: 15, Seed: 3, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		if res.Points[i].Mean != serial.Points[i].Mean || res.Points[i].N != serial.Points[i].N {
			t.Errorf("point %d: parallel %+v != serial %+v", i, res.Points[i], serial.Points[i])
		}
	}
}

func TestRunTopologySweepRejectsInvalid(t *testing.T) {
	if _, err := RunTopologySweep(TopologySweepConfig{Rates: []float64{6}}); err == nil {
		t.Error("empty topology accepted")
	}
	bad := cluster.Topology{Tiers: []cluster.Tier{{Name: "x", Sites: 1, Dispatch: "nope"}}}
	if _, err := RunTopologySweep(TopologySweepConfig{Topology: bad, Rates: []float64{6}}); err == nil {
		t.Error("invalid dispatch accepted")
	}
	ok := cluster.Topology{Tiers: []cluster.Tier{{Name: "x", Sites: 2, Path: netem.EdgePath}}}
	if _, err := RunTopologySweep(TopologySweepConfig{Topology: ok}); err == nil {
		t.Error("missing rates accepted")
	}
}

func TestRunFigThreeTier(t *testing.T) {
	res, err := RunFigThreeTier(120, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(res.Rates) {
		t.Fatalf("points %d != rates %d", len(res.Points), len(res.Rates))
	}
	for _, p := range res.Points {
		if p.EdgeMean <= 0 || p.CloudMean <= 0 || p.OverflowMean <= 0 || p.ChainMean <= 0 {
			t.Errorf("rate %v: empty shape %+v", p.RatePerServer, p)
		}
	}
	top := res.Points[len(res.Points)-1]
	if top.ChainSpillReg == 0 {
		t.Error("chain never escalated at the top rate; figure is vacuous")
	}
	if top.OverflowSpill == 0 {
		t.Error("overflow never escalated at the top rate")
	}
}

// TestTopologySweepSharded: sharded sweeps are bit-identical at every
// shard count (the RunSharded determinism contract surfaced through
// the sweep), auto mode picks a usable count, and the incompatible
// Source+Shards combination is rejected.
func TestTopologySweepSharded(t *testing.T) {
	cloud := netem.CloudTypical
	topo := cluster.Topology{
		Name: "two-tier",
		Tiers: []cluster.Tier{
			{Name: "edge", Sites: 4, ServersPerSite: 1, Path: netem.EdgePath},
			{Name: "cloud", Sites: 1, ServersPerSite: 4, Path: cloud,
				Dispatch: cluster.CentralQueueDispatch},
		},
		Spills: []cluster.SpillEdge{{From: "edge", To: "cloud", Threshold: 3, DetourPath: &cloud}},
	}
	cfg := TopologySweepConfig{
		Topology: topo,
		Rates:    []float64{8, 11},
		Duration: 100,
		Warmup:   10,
		Seed:     9,
		Shards:   1,
	}
	want, err := RunTopologySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Points[0].N == 0 {
		t.Fatal("sharded sweep measured nothing; test is vacuous")
	}
	for _, shards := range []int{2, 4, AutoShards} {
		cfg.Shards = shards
		got, err := RunTopologySweep(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got.Points, want.Points) {
			t.Errorf("shards=%d: points diverge from shards=1", shards)
		}
	}

	cfg.Shards = 2
	cfg.Source = func(spec cluster.GenSpec) cluster.Source { return cluster.Stream(spec) }
	if _, err := RunTopologySweep(cfg); err == nil {
		t.Fatal("want Source+Shards rejection, got none")
	}
	cfg.Source = nil

	// An explicit count on an unshardable topology fails the sweep;
	// auto mode quietly falls back to the single-engine path.
	jockey := topo
	jockey.Tiers = append([]cluster.Tier(nil), topo.Tiers...)
	jockey.Tiers[0].JockeyThreshold = 2
	cfg.Topology = jockey
	if _, err := RunTopologySweep(cfg); err == nil {
		t.Fatal("want unshardable rejection for explicit shard count, got none")
	}
	cfg.Shards = AutoShards
	if _, err := RunTopologySweep(cfg); err != nil {
		t.Fatalf("auto shards must fall back on unshardable topologies: %v", err)
	}
}
