package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func smokeGridConfig() GridConfig {
	return GridConfig{
		Sites:    3,
		Rates:    []float64{2, 8, 20},
		Budgets:  []int{6, 9},
		Depths:   []int{1, 2},
		Duration: 60,
		Seed:     11,
		Workers:  2,
	}
}

// TestRunGrid is the CI smoke: a small surface completes, has the
// right shape, and every cell carries measurements.
func TestRunGrid(t *testing.T) {
	cfg := smokeGridConfig()
	res, err := RunGrid(cfg)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	wantCells := len(cfg.Rates) * len(cfg.Budgets) * len(cfg.Depths)
	if len(res.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), wantCells)
	}
	wantBase := len(cfg.Rates) * len(cfg.Budgets)
	if len(res.Baselines) != wantBase {
		t.Fatalf("baselines = %d, want %d", len(res.Baselines), wantBase)
	}
	if len(res.Crossovers) != len(cfg.Budgets)*len(cfg.Depths) {
		t.Fatalf("crossovers = %d, want %d", len(res.Crossovers), len(cfg.Budgets)*len(cfg.Depths))
	}
	for _, c := range append(append([]GridCell(nil), res.Cells...), res.Baselines...) {
		if c.Mean <= 0 || c.P95 < c.Mean {
			t.Errorf("cell rate=%v b=%d d=%d: mean=%v p95=%v", c.Rate, c.Budget, c.Depth, c.Mean, c.P95)
		}
	}
	// The surface must answer "which depth delays inversion longest"
	// for each budget, whichever depth that turns out to be.
	for _, b := range cfg.Budgets {
		if _, _, ok := res.BestDepth(b); !ok {
			t.Errorf("BestDepth(%d): no depth survived the floor", b)
		}
	}
}

// TestRunGridDeterministicAcrossWorkers pins the claim that every
// seed derives from the group index alone: the surface is identical
// at any pool size.
func TestRunGridDeterministicAcrossWorkers(t *testing.T) {
	cfg := smokeGridConfig()
	cfg.Replications = 2
	a, err := RunGrid(cfg)
	if err != nil {
		t.Fatalf("workers=2: %v", err)
	}
	cfg.Workers = 1
	b, err := RunGrid(cfg)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		t.Errorf("cells differ across worker counts:\n%v\n%v", a.Cells, b.Cells)
	}
	if !reflect.DeepEqual(a.Baselines, b.Baselines) {
		t.Errorf("baselines differ across worker counts")
	}
	// NaN != NaN, so compare crossovers field-wise.
	if len(a.Crossovers) != len(b.Crossovers) {
		t.Fatalf("crossover counts differ: %d vs %d", len(a.Crossovers), len(b.Crossovers))
	}
	for i := range a.Crossovers {
		x, y := a.Crossovers[i], b.Crossovers[i]
		same := x.Budget == y.Budget && x.Depth == y.Depth && x.AtFloor == y.AtFloor &&
			(x.Crossover == y.Crossover || (math.IsNaN(x.Crossover) && math.IsNaN(y.Crossover)))
		if !same {
			t.Errorf("crossover %d differs across worker counts: %+v vs %+v", i, x, y)
		}
	}
}

// TestRunGridInfeasibleBudget: a budget whose edge share cannot give
// every site a server must fail before any replay, naming the cell.
func TestRunGridInfeasibleBudget(t *testing.T) {
	cfg := smokeGridConfig()
	cfg.Sites = 5
	cfg.Budgets = []int{5} // depth 2 takes 1 for the cloud -> 4 edge servers, 5 sites
	_, err := RunGrid(cfg)
	if err == nil {
		t.Fatal("want infeasible-budget error")
	}
	if !strings.Contains(err.Error(), "depth 2") {
		t.Fatalf("error should name the infeasible cell: %v", err)
	}
}

// TestGridTopologyConservesBudget: every split spends exactly the
// budget, across all tiers, for a spread of shapes.
func TestGridTopologyConservesBudget(t *testing.T) {
	for _, sites := range []int{3, 5} {
		for budget := sites + 2; budget <= 4*sites; budget++ {
			for depth := 1; depth <= 3; depth++ {
				topo, err := gridTopology(sites, budget, depth)
				if err != nil {
					continue // infeasible shapes are exercised above
				}
				total := 0
				for _, tier := range topo.Tiers {
					if len(tier.PerSiteServers) > 0 {
						for _, n := range tier.PerSiteServers {
							total += n
						}
					} else {
						total += tier.Sites * tier.ServersPerSite
					}
				}
				if total != budget {
					t.Errorf("sites=%d budget=%d depth=%d: topology spends %d servers", sites, budget, depth, total)
				}
				if len(topo.Tiers) != depth {
					t.Errorf("sites=%d budget=%d depth=%d: %d tiers", sites, budget, depth, len(topo.Tiers))
				}
			}
		}
	}
}

// TestGridCrossoverInterpolation checks the sign-change interpolation
// against a hand-built surface (no simulation involved).
func TestGridCrossoverInterpolation(t *testing.T) {
	res := GridResult{
		Cells: []GridCell{
			{Rate: 1, Budget: 4, Depth: 2, Mean: 0.10},
			{Rate: 2, Budget: 4, Depth: 2, Mean: 0.30},
		},
		Baselines: []GridCell{
			{Rate: 1, Budget: 4, Mean: 0.20},
			{Rate: 2, Budget: 4, Mean: 0.20},
		},
	}
	// diff goes -0.10 -> +0.10: crossover at the midpoint, rate 1.5.
	diff := []float64{
		res.Cell(1, 4, 2).Mean - res.Baseline(1, 4).Mean,
		res.Cell(2, 4, 2).Mean - res.Baseline(2, 4).Mean,
	}
	got := 1 + (2-1)*diff[0]/(diff[0]-diff[1])
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("interpolated crossover = %v, want 1.5", got)
	}
}
