package experiments

import (
	"repro/internal/app"
	"repro/internal/theory"
)

// ValidationRow compares one measured inversion point against the
// analytic predictions, reproducing the §4.2 validation: "our corollary
// 3.1.1 predicts a cutoff utilization of ρ=0.64 for Δn=30 and k=5, which
// is within 4.5% of the experimentally observed value".
type ValidationRow struct {
	Label            string
	K                int // cloud servers
	ServersPerSite   int
	DeltaNms         float64
	MeasuredRate     float64 // req/s/server at the measured crossover
	MeasuredUtil     float64
	PaperCutoff      float64 // Corollary 3.1.1 with the paper's μ convention
	ExactMMCutoff    float64 // exact M/M/m-vs-M/M/km crossover
	CalibratedCutoff float64 // Allen–Cunneen crossover at the calibrated SCVs
	RelErrPaper      float64 // (paper − measured)/measured
	RelErrCalibrated float64
}

// PaperMuConvention is the service rate at which Corollary 3.1.1
// reproduces the paper's published cutoff predictions (ρ*≈0.64 for k=5,
// ρ*≈0.75 for k=10 at Δn=30 ms). The published numbers are consistent
// with interpreting the saturation throughput "13 req/s" as a 13 ms mean
// service time (μ ≈ 76.9 req/s); with the literal 77 ms service time the
// conditional-wait difference exceeds 30 ms at every utilization. We
// implement the formulas with μ explicit and record both readings in
// EXPERIMENTS.md.
const PaperMuConvention = 1000.0 / 13.0

// RunValidation executes the Figure 3 sweeps and tabulates measured
// crossovers against the analytic predictions.
func RunValidation(duration float64, seed int64) []ValidationRow {
	fig3, err := RunFig3("typical-25ms", duration, seed)
	if err != nil {
		// The preset is compile-time known; failure here is a programming
		// error, not a user input problem.
		panic(err)
	}
	model := app.NewInferenceModel()
	mu := model.Mu()
	dn := fig3.Scenario.DeltaN()

	rows := make([]ValidationRow, 0, 2)
	for _, c := range []struct {
		label string
		sweep SweepResult
		m     int
	}{
		{"edge 1 srv/site vs cloud k=5", fig3.OneServer, 1},
		{"edge 2 srv/site vs cloud k=10", fig3.TwoServer, 2},
	} {
		dep := theory.Deployment{
			K:              5,
			ServersPerSite: c.m,
			Mu:             PaperMuConvention,
			EdgeRTT:        0,
			CloudRTT:       0.030, // the paper's Δn = 30 ms reading
		}
		depExact := theory.Deployment{
			K:              5,
			ServersPerSite: c.m,
			Mu:             mu,
			EdgeRTT:        fig3.Scenario.Edge.MeanRTT(),
			CloudRTT:       fig3.Scenario.Cloud.MeanRTT(),
		}
		row := ValidationRow{
			Label:          c.label,
			K:              5 * c.m,
			ServersPerSite: c.m,
			DeltaNms:       dn * 1000,
			PaperCutoff:    dep.CutoffUtilization311(),
			ExactMMCutoff:  depExact.CutoffUtilizationExactMM(),
			CalibratedCutoff: depExact.CutoffUtilizationExactGG(
				0.4, 0.4/5.0, app.DefaultServiceSCV),
		}
		if rate, util, ok := c.sweep.Crossover(Mean); ok {
			row.MeasuredRate, row.MeasuredUtil = rate, util
			if util > 0 {
				row.RelErrPaper = (row.PaperCutoff - util) / util
				row.RelErrCalibrated = (row.CalibratedCutoff - util) / util
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// CapacityRow is one row of the §5.2 provisioning comparison.
type CapacityRow struct {
	Lambda        float64
	K             int
	CloudCapacity float64 // req/s
	EdgeCapacity  float64
	Overhead      float64 // edge/cloud
	CloudServers  int
	EdgeServers   int
}

// RunCapacityTable evaluates the two-sigma provisioning rule across
// workload intensities and site counts.
func RunCapacityTable(lambdas []float64, ks []int) []CapacityRow {
	model := app.NewInferenceModel()
	mu := model.Mu()
	var rows []CapacityRow
	for _, l := range lambdas {
		for _, k := range ks {
			cloud, edge, overhead := theory.TwoSigmaCapacity(l, k)
			cs, es := theory.TwoSigmaServers(l, k, mu)
			rows = append(rows, CapacityRow{
				Lambda:        l,
				K:             k,
				CloudCapacity: cloud,
				EdgeCapacity:  edge,
				Overhead:      overhead,
				CloudServers:  cs,
				EdgeServers:   es,
			})
		}
	}
	return rows
}
