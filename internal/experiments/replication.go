package experiments

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/stats"
)

// ReplicatedPoint aggregates one sweep point across independent
// replications: mean of means with a 95% confidence half-width, so the
// crossover claims carry statistical weight.
type ReplicatedPoint struct {
	RatePerServer float64
	EdgeMean      float64
	EdgeMeanCI    float64
	CloudMean     float64
	CloudMeanCI   float64
	EdgeP95       float64
	EdgeP95CI     float64
	CloudP95      float64
	CloudP95CI    float64
	Replications  int
}

// Separated reports whether the edge and cloud mean confidence intervals
// do not overlap at this point (the comparison is statistically
// resolved).
func (p ReplicatedPoint) Separated() bool {
	lo1, hi1 := p.EdgeMean-p.EdgeMeanCI, p.EdgeMean+p.EdgeMeanCI
	lo2, hi2 := p.CloudMean-p.CloudMeanCI, p.CloudMean+p.CloudMeanCI
	return hi1 < lo2 || hi2 < lo1
}

// RunReplicatedSweep runs the sweep n times with distinct seeds and
// aggregates per-point statistics across replications. Replications
// execute concurrently — one seeded engine pair per replication — and
// are merged in replication order, so the aggregate is identical to the
// serial computation at any pool size.
func RunReplicatedSweep(cfg SweepConfig, n int) []ReplicatedPoint {
	if n <= 0 {
		panic(fmt.Sprintf("experiments: replications n=%d must be positive", n))
	}
	reps := runReplications(cfg, n)
	type acc struct {
		edgeMean, cloudMean stats.Stream
		edgeP95, cloudP95   stats.Stream
	}
	accs := make([]acc, len(cfg.Rates))
	for _, res := range reps {
		for i, p := range res.Points {
			accs[i].edgeMean.Add(p.EdgeMean)
			accs[i].cloudMean.Add(p.CloudMean)
			accs[i].edgeP95.Add(p.EdgeP95)
			accs[i].cloudP95.Add(p.CloudP95)
		}
	}
	out := make([]ReplicatedPoint, len(cfg.Rates))
	for i, a := range accs {
		out[i] = ReplicatedPoint{
			RatePerServer: cfg.Rates[i],
			EdgeMean:      a.edgeMean.Mean(),
			EdgeMeanCI:    a.edgeMean.ConfidenceInterval95(),
			CloudMean:     a.cloudMean.Mean(),
			CloudMeanCI:   a.cloudMean.ConfidenceInterval95(),
			EdgeP95:       a.edgeP95.Mean(),
			EdgeP95CI:     a.edgeP95.ConfidenceInterval95(),
			CloudP95:      a.cloudP95.Mean(),
			CloudP95CI:    a.cloudP95.ConfidenceInterval95(),
			Replications:  n,
		}
	}
	return out
}

// runReplications executes n independent replications of the sweep,
// returning them indexed by replication. The replication×point index
// space is flattened into one pool pass so the workers stay saturated
// even when n is smaller than the pool; every point still derives its
// seeds from (replication, point) alone, so the merge is deterministic.
func runReplications(cfg SweepConfig, n int) []SweepResult {
	if cfg.Model.D == nil {
		cfg.Model = app.NewInferenceModel()
	}
	pts := len(cfg.Rates)
	out := make([]SweepResult, n)
	for rep := range out {
		c := cfg
		c.Seed = cfg.Seed + int64(rep)*999983
		out[rep] = SweepResult{Config: c, Points: make([]SweepPoint, pts)}
	}
	forEach(n*pts, cfg.Workers, func(idx int) {
		rep, pt := idx/pts, idx%pts
		out[rep].Points[pt] = runSweepPoint(out[rep].Config, pt)
	})
	return out
}

// CrossoverCI runs the sweep n times and returns the mean crossover rate
// with its 95% confidence half-width. found is false if fewer than half
// the replications observed a crossover. Replications run concurrently
// and are folded in replication order.
func CrossoverCI(cfg SweepConfig, metric Metric, n int) (rate, ci float64, found bool) {
	var s stats.Stream
	for _, res := range runReplications(cfg, n) {
		if r, _, ok := res.Crossover(metric); ok {
			s.Add(r)
		}
	}
	if s.N() < int64((n+1)/2) {
		return 0, 0, false
	}
	return s.Mean(), s.ConfidenceInterval95(), true
}

// InversionInterval is a contiguous span of timeline bins during which
// the edge's binned mean latency exceeded the cloud's.
type InversionInterval struct {
	StartBin, EndBin int     // inclusive bin indices
	StartTime        float64 // seconds
	EndTime          float64
	PeakRatio        float64 // max edge/cloud mean within the interval
}

// Duration returns the interval length in seconds.
func (iv InversionInterval) Duration() float64 { return iv.EndTime - iv.StartTime }

// DetectInversions scans paired edge/cloud timelines (as produced by the
// Azure replay, Figure 9) and extracts the intervals where the edge's
// per-bin mean exceeds the cloud's. Bins where either side has no
// observations are skipped (they terminate an open interval).
func DetectInversions(edge, cloud *stats.TimeSeries) []InversionInterval {
	if edge == nil || cloud == nil {
		return nil
	}
	n := edge.NumBins()
	if m := cloud.NumBins(); m < n {
		n = m
	}
	var out []InversionInterval
	open := false
	var cur InversionInterval
	closeInterval := func(endBin int) {
		if open {
			cur.EndBin = endBin
			cur.EndTime = edge.BinTime(endBin) + edge.BinWidth/2
			out = append(out, cur)
			open = false
		}
	}
	for i := 0; i < n; i++ {
		if edge.BinCount(i) == 0 || cloud.BinCount(i) == 0 {
			closeInterval(i - 1)
			continue
		}
		e, c := edge.BinMean(i), cloud.BinMean(i)
		if c <= 0 {
			closeInterval(i - 1)
			continue
		}
		ratio := e / c
		if e > c {
			if !open {
				open = true
				cur = InversionInterval{
					StartBin:  i,
					StartTime: edge.BinTime(i) - edge.BinWidth/2,
					PeakRatio: ratio,
				}
			}
			if ratio > cur.PeakRatio {
				cur.PeakRatio = ratio
			}
		} else {
			closeInterval(i - 1)
		}
	}
	closeInterval(n - 1)
	return out
}

// InversionFraction returns the fraction of comparable bins that were
// inverted, plus the worst edge/cloud ratio seen.
func InversionFraction(edge, cloud *stats.TimeSeries) (fraction, peakRatio float64) {
	if edge == nil || cloud == nil {
		return 0, 0
	}
	n := edge.NumBins()
	if m := cloud.NumBins(); m < n {
		n = m
	}
	var comparable, inverted int
	for i := 0; i < n; i++ {
		if edge.BinCount(i) == 0 || cloud.BinCount(i) == 0 || cloud.BinMean(i) <= 0 {
			continue
		}
		comparable++
		ratio := edge.BinMean(i) / cloud.BinMean(i)
		if ratio > 1 {
			inverted++
		}
		if ratio > peakRatio {
			peakRatio = ratio
		}
	}
	if comparable == 0 {
		return 0, peakRatio
	}
	return float64(inverted) / float64(comparable), peakRatio
}
