// Package experiments contains one runner per table/figure in the
// paper's evaluation (§4): request-rate sweeps comparing edge and cloud
// mean/p95 latency (Figures 3–5), latency distributions (Figure 6),
// cutoff-utilization-vs-cloud-RTT sweeps (Figure 7), Azure-trace
// generation and replay (Figures 8–10), the taxi-load skew demonstration
// (Figure 2), the §4.2 analytic-validation comparison, and the §5.2
// capacity table. Each runner returns plain data structures that
// cmd/figures renders and bench_test.go regenerates.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/netem"
	"repro/internal/queue"
)

// SweepConfig describes a request-rate sweep in the style of §4.2: k edge
// sites of m servers each, against a cloud of k·m servers, at per-server
// request rates Rates (the paper's x-axis, "normalized request rate,
// reqs/server/second").
type SweepConfig struct {
	Scenario       netem.Scenario
	Sites          int
	ServersPerSite int
	Rates          []float64 // requests per server per second
	Duration       float64   // simulated seconds per point
	Warmup         float64   // discarded prefix per point
	Seed           int64
	Model          app.InferenceModel
	ArrivalSCV     float64
	CloudPolicy    cluster.DispatchPolicy
	Discipline     queue.Discipline
	// Workers bounds the worker pool that evaluates sweep points (and,
	// in RunReplicatedSweep, replications) concurrently. 0 uses
	// DefaultWorkers; 1 forces serial execution. Every point derives its
	// seeds from its index alone and results are merged by index, so the
	// output is identical at any pool size.
	Workers int
}

// DefaultSweepConfig returns the Figure 3 setup: 5 edge sites, 1 server
// each, typical 25 ms cloud, rates 6–12 req/s/server.
func DefaultSweepConfig() SweepConfig {
	// The preset name is compile-time known, so the lookup cannot miss.
	sc, _ := netem.ScenarioByName("typical-25ms")
	return SweepConfig{
		Scenario:       sc,
		Sites:          5,
		ServersPerSite: 1,
		Rates:          []float64{6, 7, 8, 9, 10, 11, 12},
		Duration:       600,
		Warmup:         60,
		Seed:           42,
		Model:          app.NewInferenceModel(),
		ArrivalSCV:     cluster.DefaultArrivalSCV,
		CloudPolicy:    cluster.CentralQueue,
	}
}

// scenarioByName resolves a paper scenario preset, listing the valid
// names on failure so callers can surface a usable error instead of a
// panic deep inside a run.
func scenarioByName(name string) (netem.Scenario, error) {
	s, ok := netem.ScenarioByName(name)
	if !ok {
		var names []string
		for _, sc := range netem.PaperScenarios() {
			names = append(names, sc.Name)
		}
		return netem.Scenario{}, fmt.Errorf("experiments: unknown scenario %q (want one of %v)", name, names)
	}
	return s, nil
}

// SweepPoint is one measured point of a rate sweep.
type SweepPoint struct {
	RatePerServer float64
	Utilization   float64 // offered per-server utilization λ/μ
	MeasuredUtil  float64 // edge utilization actually measured
	EdgeMean      float64 // seconds
	CloudMean     float64
	EdgeP95       float64
	CloudP95      float64
	EdgeMedian    float64
	CloudMedian   float64
	EdgeN         int
	CloudN        int
}

// SweepResult is the outcome of a full rate sweep.
type SweepResult struct {
	Config SweepConfig
	Points []SweepPoint
}

// RunSweep executes the sweep: for every rate it generates one workload
// trace and replays it through both deployments (paired comparison, as
// in the paper where the cloud "sees the cumulative request rate").
// Points are evaluated concurrently on a bounded worker pool — each
// point seeds its own engines from its index, and results land in
// index-addressed slots, so the output is byte-identical to a serial
// run.
func RunSweep(cfg SweepConfig) SweepResult {
	if cfg.Model.D == nil {
		cfg.Model = app.NewInferenceModel()
	}
	res := SweepResult{Config: cfg, Points: make([]SweepPoint, len(cfg.Rates))}
	forEach(len(cfg.Rates), cfg.Workers, func(i int) {
		res.Points[i] = runSweepPoint(cfg, i)
	})
	return res
}

// runSweepPoint evaluates one rate of a sweep. All randomness derives
// from cfg.Seed and the point index, never from shared state.
func runSweepPoint(cfg SweepConfig, i int) SweepPoint {
	rate := cfg.Rates[i]
	tr := cluster.Generate(cluster.GenSpec{
		Sites:       cfg.Sites,
		Duration:    cfg.Duration,
		PerSiteRate: rate * float64(cfg.ServersPerSite),
		ArrivalSCV:  cfg.ArrivalSCV,
		Model:       cfg.Model,
		Seed:        cfg.Seed + int64(i)*7919,
	})
	edge, cloud := cluster.RunPaired(tr, cluster.EdgeConfig{
		Sites:          cfg.Sites,
		ServersPerSite: cfg.ServersPerSite,
		Path:           cfg.Scenario.Edge,
		Discipline:     cfg.Discipline,
		Warmup:         cfg.Warmup,
		Seed:           cfg.Seed + int64(i)*104729,
	}, cluster.CloudConfig{
		Servers:    cfg.Sites * cfg.ServersPerSite,
		Path:       cfg.Scenario.Cloud,
		Policy:     cfg.CloudPolicy,
		Discipline: cfg.Discipline,
		Warmup:     cfg.Warmup,
		Seed:       cfg.Seed + int64(i)*1299709,
	})
	return SweepPoint{
		RatePerServer: rate,
		Utilization:   rate / cfg.Model.Mu(),
		MeasuredUtil:  edge.Utilization,
		EdgeMean:      edge.MeanLatency(),
		CloudMean:     cloud.MeanLatency(),
		EdgeP95:       edge.P95Latency(),
		CloudP95:      cloud.P95Latency(),
		EdgeMedian:    edge.EndToEnd.Median(),
		CloudMedian:   cloud.EndToEnd.Median(),
		EdgeN:         edge.EndToEnd.N(),
		CloudN:        cloud.EndToEnd.N(),
	}
}

// Metric selects which latency statistic a crossover search compares.
type Metric int

// Metrics supported by FindCrossover.
const (
	Mean Metric = iota
	P95
)

// String names the metric.
func (m Metric) String() string {
	if m == P95 {
		return "p95"
	}
	return "mean"
}

func (p SweepPoint) metric(m Metric) (edge, cloud float64) {
	if m == P95 {
		return p.EdgeP95, p.CloudP95
	}
	return p.EdgeMean, p.CloudMean
}

// Crossover locates the performance-inversion point of a sweep: the
// lowest rate at which the edge metric exceeds the cloud metric, with
// linear interpolation between sampled rates. found is false if the edge
// never inverts within the sweep.
func (r SweepResult) Crossover(m Metric) (rate, utilization float64, found bool) {
	mu := r.Config.Model.Mu()
	prevDiff := math.Inf(-1)
	prevRate := 0.0
	for i, p := range r.Points {
		e, c := p.metric(m)
		diff := e - c
		if diff > 0 {
			if i == 0 || math.IsInf(prevDiff, -1) {
				return p.RatePerServer, p.RatePerServer / mu, true
			}
			// Interpolate the zero crossing between the previous and
			// current rate.
			frac := -prevDiff / (diff - prevDiff)
			rate = prevRate + frac*(p.RatePerServer-prevRate)
			return rate, rate / mu, true
		}
		prevDiff, prevRate = diff, p.RatePerServer
	}
	return 0, 0, false
}
