package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/netem"
	"repro/internal/stats"
)

// Crossover grids: the full rate × capacity-budget × hierarchy-depth
// surface the ROADMAP names, answering "which depth delays inversion
// longest?". A grid cell is one deployment shape — a server budget
// split across a hierarchy of the given depth — replayed at one
// per-site rate; its paired baseline is the same budget pooled in one
// cloud queue. Cells sharing a trace (same rate, same replication) are
// grouped and driven through one cluster.RunBroadcast pass, so the
// generation cost is paid once per distinct trace instead of once per
// cell — the difference between O(rates × reps) and O(rates × budgets
// × depths × reps) generation passes.

// GridConfig describes a crossover-surface run.
type GridConfig struct {
	// Sites is the edge tier's site count (default 5).
	Sites int
	// Rates are per-site arrival rates in req/s — the load axis. The
	// trace at a rate is shared by every budget × depth cell, so rates
	// are offered load, independent of any cell's capacity.
	Rates []float64
	// Budgets are total server counts — the capacity axis. Each cell
	// splits its budget across its hierarchy (see gridTopology); the
	// paired baseline pools the identical budget in one cloud queue.
	Budgets []int
	// Depths selects hierarchy depths from {1, 2, 3}: pure edge,
	// edge→cloud overflow, edge→regional→cloud chain (default all
	// three).
	Depths []int
	// Replications averages each cell over this many independent
	// traces (default 1).
	Replications int
	// Duration is the simulated seconds per replay (default 300).
	Duration float64
	// Warmup discards early measurements (default Duration/10).
	Warmup float64
	Seed   int64
	Model  app.InferenceModel
	// ArrivalSCV shapes inter-arrival variability (see GenSpec).
	ArrivalSCV float64
	Summary    stats.Mode
	// Workers bounds the group-level worker pool: each worker claims
	// whole (rate, replication) groups, so cells of a group always
	// share one broadcast pass.
	Workers int
	// Ring bounds each broadcast subscriber's buffer (<= 0 default).
	Ring int
	// GenWorkers parallelizes each group's generation pass (see
	// cluster.Options.GenWorkers): > 1 fans the per-site generator
	// streams across that many goroutines, -1 one per CPU, 0/1 the
	// serial generator. Every setting feeds the broadcast the
	// bit-identical record sequence, so cells are unaffected — this
	// only overlaps generation with replay when groups are fewer than
	// CPUs.
	GenWorkers int
}

// GridCell is one (rate, budget, depth) cell of the surface,
// averaged over replications. Depth 0 marks a pooled-cloud baseline
// cell.
type GridCell struct {
	Rate    float64
	Budget  int
	Depth   int
	Mean    float64 // seconds
	P95     float64
	Dropped float64 // per replication
	Spilled float64 // requests leaving their home tier, per replication
}

// GridCrossover is one (budget, depth) column's inversion point: the
// interpolated per-site rate where the hierarchy's mean latency first
// exceeds the pooled baseline's. NaN means the hierarchy stayed ahead
// (or behind, when AtFloor) across the whole rate axis.
type GridCrossover struct {
	Budget    int
	Depth     int
	Crossover float64
	// AtFloor marks a column already inverted at the lowest rate.
	AtFloor bool
}

// GridResult is a completed crossover surface.
type GridResult struct {
	Config GridConfig
	// Cells holds rates × budgets × depths hierarchy cells in
	// (rate, budget, depth) iteration order.
	Cells []GridCell
	// Baselines holds rates × budgets pooled-cloud cells (Depth 0).
	Baselines []GridCell
	// Crossovers has one entry per (budget, depth) column.
	Crossovers []GridCrossover
}

// Cell returns the hierarchy cell at the given axes, or nil.
func (r *GridResult) Cell(rate float64, budget, depth int) *GridCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Rate == rate && c.Budget == budget && c.Depth == depth {
			return c
		}
	}
	return nil
}

// Baseline returns the pooled-cloud cell at the given axes, or nil.
func (r *GridResult) Baseline(rate float64, budget int) *GridCell {
	for i := range r.Baselines {
		c := &r.Baselines[i]
		if c.Rate == rate && c.Budget == budget {
			return c
		}
	}
	return nil
}

// BestDepth reports, for one budget, the depth whose inversion point
// sits at the highest rate — the "which depth delays inversion
// longest?" answer — with ok=false when no depth ever crosses inside
// the swept range (crossover NaN and not at the floor counts as
// delaying past the range end, which beats any in-range crossing).
func (r *GridResult) BestDepth(budget int) (depth int, crossover float64, ok bool) {
	best := math.Inf(-1)
	for _, c := range r.Crossovers {
		if c.Budget != budget {
			continue
		}
		v := c.Crossover
		if c.AtFloor {
			continue // inverted before the range began
		}
		if math.IsNaN(v) {
			v = math.Inf(1) // never inverted inside the range
		}
		if v > best {
			best, depth, ok = v, c.Depth, true
		}
	}
	return depth, best, ok
}

// gridTopology splits a server budget across a hierarchy of the given
// depth. The splits are deterministic in (sites, budget, depth):
//
//	depth 1: every server at the edge (budget split round-robin
//	         across sites via PerSiteServers);
//	depth 2: a cloud backstop takes budget/3 (min 1), the edge the
//	         rest, spilling at 3x the site's servers;
//	depth 3: cloud and regional each take budget/4 (min 1), the edge
//	         the rest; edge spills regional at 3x its site servers,
//	         regional spills cloud at 2x its servers.
//
// Paths mirror the three-tier preset: ~1 ms edge, 13 ms regional,
// 25 ms cloud. An error names the infeasible cell when the edge share
// cannot give every site a server.
func gridTopology(sites, budget, depth int) (cluster.Topology, error) {
	if depth < 1 || depth > 3 {
		return cluster.Topology{}, fmt.Errorf("experiments: grid depth %d (want 1, 2 or 3)", depth)
	}
	cloudShare, regionalShare := 0, 0
	switch depth {
	case 2:
		cloudShare = max(1, budget/3)
	case 3:
		cloudShare = max(1, budget/4)
		regionalShare = max(1, budget/4)
	}
	edgeShare := budget - cloudShare - regionalShare
	if edgeShare < sites {
		return cluster.Topology{}, fmt.Errorf(
			"experiments: grid budget %d at depth %d leaves %d edge servers for %d sites",
			budget, depth, edgeShare, sites)
	}
	perSite := make([]int, sites)
	for i := range perSite {
		perSite[i] = edgeShare / sites
		if i < edgeShare%sites {
			perSite[i]++
		}
	}
	maxPerSite := perSite[0] // round-robin split: site 0 holds the max
	regional := netem.Jittered("regional-13ms", 0.013, 0.002)
	cloud := netem.CloudTypical
	topo := cluster.Topology{
		Name: fmt.Sprintf("grid-b%d-d%d", budget, depth),
		Tiers: []cluster.Tier{{
			Name: "edge", Sites: sites, ServersPerSite: perSite[sites-1],
			PerSiteServers: perSite, Path: netem.EdgePath,
		}},
	}
	switch depth {
	case 2:
		topo.Tiers = append(topo.Tiers, cluster.Tier{
			Name: "cloud", Sites: 1, ServersPerSite: cloudShare,
			Path: cloud, Dispatch: cluster.CentralQueueDispatch,
		})
		topo.Spills = []cluster.SpillEdge{{
			From: "edge", To: "cloud",
			Threshold: 3 * maxPerSite, DetourPath: &cloud,
		}}
	case 3:
		topo.Tiers = append(topo.Tiers,
			cluster.Tier{
				Name: "regional", Sites: 1, ServersPerSite: regionalShare,
				Path: regional, Dispatch: cluster.CentralQueueDispatch,
			},
			cluster.Tier{
				Name: "cloud", Sites: 1, ServersPerSite: cloudShare,
				Path: cloud, Dispatch: cluster.CentralQueueDispatch,
			})
		topo.Spills = []cluster.SpillEdge{
			{From: "edge", To: "regional",
				Threshold: 3 * maxPerSite, DetourPath: &regional},
			{From: "regional", To: "cloud",
				Threshold: 2 * regionalShare, DetourPath: &cloud},
		}
	}
	return topo, topo.Validate()
}

// gridBaseline pools the budget in one central cloud queue.
func gridBaseline(budget int) cluster.Topology {
	topo := cluster.CloudTopology(cluster.CloudConfig{
		Servers: budget, Path: netem.CloudTypical, Policy: cluster.CentralQueue,
	})
	topo.Name = fmt.Sprintf("grid-b%d-pooled", budget)
	return topo
}

// RunGrid evaluates the crossover surface. Cells are grouped by
// distinct trace — one (rate, replication) pair — and each group's
// budget × depth hierarchies plus per-budget pooled baselines replay
// concurrently from one broadcast pass over a single generator source.
// Groups are claimed by a bounded worker pool; every seed derives from
// the group index alone, so the surface is byte-identical at any
// Workers setting.
func RunGrid(cfg GridConfig) (GridResult, error) {
	if cfg.Sites <= 0 {
		cfg.Sites = 5
	}
	if len(cfg.Rates) == 0 {
		return GridResult{}, fmt.Errorf("experiments: grid needs rates")
	}
	if len(cfg.Budgets) == 0 {
		return GridResult{}, fmt.Errorf("experiments: grid needs budgets")
	}
	if len(cfg.Depths) == 0 {
		cfg.Depths = []int{1, 2, 3}
	}
	if cfg.Replications <= 0 {
		cfg.Replications = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 300
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Duration / 10
	}
	if cfg.Model.D == nil {
		cfg.Model = app.NewInferenceModel()
	}
	rates := append([]float64(nil), cfg.Rates...)
	sort.Float64s(rates)
	cfg.Rates = rates

	// Build every variant once up front: an infeasible budget × depth
	// errors before any replay starts. The variant list is shared by
	// every group — only the trace (and the run seed) differs.
	type cellKey struct{ budget, depth int }
	variants := make([]cluster.Variant, 0, len(cfg.Budgets)*(len(cfg.Depths)+1))
	keys := make([]cellKey, 0, cap(variants))
	for _, b := range cfg.Budgets {
		for _, d := range cfg.Depths {
			topo, err := gridTopology(cfg.Sites, b, d)
			if err != nil {
				return GridResult{}, err
			}
			variants = append(variants, cluster.Variant{Label: topo.Name, Topology: topo})
			keys = append(keys, cellKey{b, d})
		}
		base := gridBaseline(b)
		variants = append(variants, cluster.Variant{Label: base.Name, Topology: base})
		keys = append(keys, cellKey{b, 0})
	}

	groups := len(cfg.Rates) * cfg.Replications
	perGroup := make([][]*cluster.TopologyResult, groups)
	var mu sync.Mutex
	var firstErr error
	forEach(groups, cfg.Workers, func(g int) {
		rate := cfg.Rates[g/cfg.Replications]
		spec := cluster.GenSpec{
			Sites:       cfg.Sites,
			Duration:    cfg.Duration,
			PerSiteRate: rate,
			ArrivalSCV:  cfg.ArrivalSCV,
			Model:       cfg.Model,
			Seed:        cfg.Seed + int64(g)*7919,
		}
		vs := make([]cluster.Variant, len(variants))
		copy(vs, variants)
		for i := range vs {
			vs[i].Opts = cluster.Options{
				Warmup:  cfg.Warmup,
				Seed:    cfg.Seed + int64(g)*104729,
				Summary: cfg.Summary,
			}
		}
		genOpts := cluster.Options{GenWorkers: cfg.GenWorkers}
		runs, err := cluster.RunBroadcast(genOpts.GenSource(spec), vs, cfg.Ring)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("grid group rate=%v rep=%d: %w", rate, g%cfg.Replications, err)
			}
			mu.Unlock()
			return
		}
		perGroup[g] = runs
	})
	if firstErr != nil {
		return GridResult{}, firstErr
	}

	// Reduce replications in group order (deterministic at any pool
	// size: results are indexed, never appended by completion).
	res := GridResult{Config: cfg}
	reps := float64(cfg.Replications)
	for ri, rate := range cfg.Rates {
		for vi, key := range keys {
			cell := GridCell{Rate: rate, Budget: key.budget, Depth: key.depth}
			for rep := 0; rep < cfg.Replications; rep++ {
				run := perGroup[ri*cfg.Replications+rep][vi]
				cell.Mean += run.EndToEnd.Mean() / reps
				cell.P95 += run.EndToEnd.P95() / reps
				cell.Dropped += float64(run.Dropped) / reps
				for _, tier := range run.Tiers {
					cell.Spilled += float64(tier.Spilled) / reps
				}
			}
			if key.depth == 0 {
				res.Baselines = append(res.Baselines, cell)
			} else {
				res.Cells = append(res.Cells, cell)
			}
		}
	}

	// Crossovers: linear interpolation of the first sign change of
	// (hierarchy mean - pooled mean) along the rate axis.
	for _, b := range cfg.Budgets {
		for _, d := range cfg.Depths {
			diff := make([]float64, len(cfg.Rates))
			for i, rate := range cfg.Rates {
				diff[i] = res.Cell(rate, b, d).Mean - res.Baseline(rate, b).Mean
			}
			cross := GridCrossover{Budget: b, Depth: d, Crossover: math.NaN()}
			if diff[0] >= 0 {
				cross.AtFloor = true
			} else {
				for i := 1; i < len(diff); i++ {
					if diff[i] >= 0 {
						r0, r1 := cfg.Rates[i-1], cfg.Rates[i]
						cross.Crossover = r0 + (r1-r0)*diff[i-1]/(diff[i-1]-diff[i])
						break
					}
				}
			}
			res.Crossovers = append(res.Crossovers, cross)
		}
	}
	return res, nil
}
