package experiments

import (
	"reflect"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/cluster"
)

// streamScalerConfig is a small two-policy comparison, shared by the
// streaming-equivalence tests.
func streamScalerConfig(workload string) ScalerComparisonConfig {
	return ScalerComparisonConfig{
		Workload: workload,
		Sites:    3,
		Duration: 240,
		Seed:     17,
		BaseRate: 14,
		Specs: []autoscale.Spec{
			autoscale.ReactiveSpec(autoscale.Config{Interval: 5, Min: 1, Max: 5,
				UpThreshold: 1.5, DownThreshold: 0.3, Cooldown: 15}),
			{Policy: autoscale.PolicyPredictive, Interval: 5, Min: 1, Max: 5,
				Mu: 13, TargetUtil: 0.7, Forecaster: "ewma"},
		},
	}
}

// TestScalerWorkloadTableComplete: the advertised workload list and the
// builder table validation/derivation read must agree exactly.
func TestScalerWorkloadTableComplete(t *testing.T) {
	names := ScalerWorkloads()
	if len(names) != len(scalerWorkloadBuilders) {
		t.Fatalf("ScalerWorkloads lists %d names, builder table has %d", len(names), len(scalerWorkloadBuilders))
	}
	for _, name := range names {
		if scalerWorkloadBuilders[name] == nil {
			t.Errorf("workload %q advertised but has no builder", name)
		}
	}
}

// TestScalerComparisonStreamingMatchesMaterialized: the ROADMAP fix —
// policy rows derived from per-row generator sources must be
// bit-identical to rows replaying one shared materialized trace, for
// every workload family. Row equality implies every row consumed the
// identical arrival sequence.
func TestScalerComparisonStreamingMatchesMaterialized(t *testing.T) {
	for _, wl := range ScalerWorkloads() {
		cfg := streamScalerConfig(wl)
		want, err := RunScalerComparison(cfg)
		if err != nil {
			t.Fatalf("%s materialized: %v", wl, err)
		}
		cfg.Streaming = true
		got, err := RunScalerComparison(cfg)
		if err != nil {
			t.Fatalf("%s streaming: %v", wl, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d streaming rows, %d materialized", wl, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			if !reflect.DeepEqual(got.Rows[i], want.Rows[i]) {
				t.Errorf("%s: row %d (%s) diverges between streaming and materialized:\n got %+v\nwant %+v",
					wl, i, want.Rows[i].Policy, got.Rows[i], want.Rows[i])
			}
		}
	}
}

// TestScalerStreamingRowsReplayIdenticalSequence asserts the
// per-row-source contract directly: two sources derived from the same
// comparison config yield the same records, element for element.
func TestScalerStreamingRowsReplayIdenticalSequence(t *testing.T) {
	for _, wl := range ScalerWorkloads() {
		cfg := streamScalerConfig(wl)
		// The same resolve-then-derive path RunScalerComparison's
		// streaming mode uses.
		build, err := scalerWorkloadBuilder(cfg.Workload)
		if err != nil {
			t.Fatal(err)
		}
		mk := func() cluster.Source { return cluster.Stream(scalerSpecFrom(cfg, build)) }
		a, b := mk(), mk()
		n := 0
		for {
			ra, oka := a.Next()
			rb, okb := b.Next()
			if oka != okb {
				t.Fatalf("%s: per-row sources disagree on length at record %d", wl, n)
			}
			if !oka {
				break
			}
			if ra != rb {
				t.Fatalf("%s: record %d diverges between per-row sources: %+v vs %+v", wl, n, ra, rb)
			}
			n++
		}
		if n == 0 {
			t.Fatalf("%s: sources yielded nothing; test is vacuous", wl)
		}
	}
}

// TestTopologySweepStreamingMatchesMaterialized: a swept topology (and
// its paired baseline) driven by cluster.Stream sources reproduces the
// materialized sweep point for point, bit for bit.
func TestTopologySweepStreamingMatchesMaterialized(t *testing.T) {
	topo, ok := cluster.PresetTopology("edge-regional-cloud")
	if !ok {
		t.Fatal("preset edge-regional-cloud missing")
	}
	baseline := cluster.CloudTopology(cluster.CloudConfig{Servers: 10, Path: topo.Tiers[len(topo.Tiers)-1].Path})
	cfg := TopologySweepConfig{
		Topology: topo,
		Rates:    []float64{6, 10},
		Duration: 200,
		Warmup:   20,
		Seed:     31,
		Baseline: &baseline,
	}
	want, err := RunTopologySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Source = cluster.Stream
	got, err := RunTopologySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Errorf("streaming sweep points diverge from materialized:\n got %+v\nwant %+v",
			got.Points, want.Points)
	}
	if !reflect.DeepEqual(got.Baseline, want.Baseline) {
		t.Errorf("streaming baseline points diverge from materialized:\n got %+v\nwant %+v",
			got.Baseline, want.Baseline)
	}
}
