package experiments

import (
	"math"
	"testing"

	"repro/internal/autoscale"
)

// TestRunScalerComparisonNHPP is the acceptance check for the unified
// scaler subsystem (and the CI smoke test): on a time-varying NHPP
// workload, predictive provisioning must make observably different
// decisions from reactive thresholds, with a per-tier $/request
// reported for every row. Kept small enough for -short.
func TestRunScalerComparisonNHPP(t *testing.T) {
	cfg := ScalerComparisonConfig{
		Workload: ScalerWorkloadNHPP,
		Sites:    3,
		Duration: 300,
		Seed:     11,
		BaseRate: 18,
		Specs: []autoscale.Spec{
			autoscale.ReactiveSpec(autoscale.Config{Interval: 5, Min: 1, Max: 6,
				UpThreshold: 1.5, DownThreshold: 0.3, Cooldown: 15}),
			{Policy: autoscale.PolicyPredictive, Interval: 5, Min: 1, Max: 6,
				Mu: 13, TargetUtil: 0.7, Forecaster: "holt"},
		},
	}
	res, err := RunScalerComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != ScalerWorkloadNHPP || len(res.Rows) != 2 {
		t.Fatalf("unexpected result shape: workload %q, %d rows", res.Workload, len(res.Rows))
	}
	reactive, predictive := res.Rows[0], res.Rows[1]
	if reactive.Policy != "reactive" {
		t.Errorf("row 0 policy = %q", reactive.Policy)
	}
	for _, row := range res.Rows {
		if row.Mean <= 0 || row.P95 < row.Mean {
			t.Errorf("%s: implausible latency mean %v p95 %v", row.Policy, row.Mean, row.P95)
		}
		if len(row.Tiers) != 2 {
			t.Fatalf("%s: %d tier rows, want 2", row.Policy, len(row.Tiers))
		}
		edge := row.Tiers[0]
		if edge.ScaleUps == 0 {
			t.Errorf("%s: edge tier never scaled up on a 2.5x rate swing", row.Policy)
		}
		if edge.CostPerReq <= 0 {
			t.Errorf("%s: edge $/request not reported: %v", row.Policy, edge.CostPerReq)
		}
		var tierSum float64
		for _, tr := range row.Tiers {
			if tr.ServerSeconds <= 0 || tr.Cost <= 0 {
				t.Errorf("%s/%s: missing cost overlay: server-seconds %v cost %v",
					row.Policy, tr.Tier, tr.ServerSeconds, tr.Cost)
			}
			tierSum += tr.Cost
		}
		if math.Abs(tierSum-row.TotalCost) > 1e-9 {
			t.Errorf("%s: tier costs %v not conserved against total %v",
				row.Policy, tierSum, row.TotalCost)
		}
	}
	edgeR, edgeP := reactive.Tiers[0], predictive.Tiers[0]
	if edgeR.ScaleUps == edgeP.ScaleUps && edgeR.ScaleDowns == edgeP.ScaleDowns &&
		edgeR.ServerSeconds == edgeP.ServerSeconds {
		t.Error("predictive telemetry identical to reactive on an NHPP ramp; " +
			"the policies are not differentiated")
	}
}

func TestRunScalerComparisonDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full default sweep (6 policies) in long mode only")
	}
	for _, wl := range []string{ScalerWorkloadMMPP, ScalerWorkloadAzure} {
		res, err := RunScalerComparison(ScalerComparisonConfig{
			Workload: wl, Sites: 3, Duration: 240, Seed: 13, BaseRate: 12,
		})
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		// reactive + one predictive per registered forecaster.
		if len(res.Rows) != 6 {
			t.Fatalf("%s: %d rows, want 6 (reactive + 5 forecasters)", wl, len(res.Rows))
		}
		for _, row := range res.Rows {
			if row.Mean <= 0 || row.TotalCost <= 0 {
				t.Errorf("%s/%s: empty row: mean %v cost %v", wl, row.Policy, row.Mean, row.TotalCost)
			}
		}
	}
}

func TestRunScalerComparisonRejectsBadInput(t *testing.T) {
	if _, err := RunScalerComparison(ScalerComparisonConfig{Workload: "steady"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := RunScalerComparison(ScalerComparisonConfig{
		Specs: []autoscale.Spec{{Policy: "oracle", Interval: 1, Min: 1, Max: 2}},
	}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := RunScalerComparison(ScalerComparisonConfig{
		Specs: []autoscale.Spec{},
	}); err == nil {
		t.Error("empty non-nil spec list accepted")
	}
}
