package autoscale

import (
	"fmt"

	"repro/internal/forecast"
	"repro/internal/queue"
	"repro/internal/sim"
)

// Policy names accepted by New, in the order listed by Policies. Like
// lb.Policies, this registry is the single source of truth for scaler
// construction: the cluster topology layer, the JSON topology codec and
// cmd/edgesim all resolve policy names through it.
const (
	PolicyReactive   = "reactive"
	PolicyPredictive = "predictive"
)

// Policies returns the registry's scaler policy names.
func Policies() []string { return []string{PolicyReactive, PolicyPredictive} }

// KnownPolicy reports whether name is a registered scaler policy.
func KnownPolicy(name string) bool {
	for _, p := range Policies() {
		if p == name {
			return true
		}
	}
	return false
}

// Telemetry summarizes one scaler's activity over a run, the per-tier
// numbers TierResult reports: how often it acted, the provisioning
// headroom it used, and the integrated capacity it consumed (the input
// to the econ cost overlay).
type Telemetry struct {
	Policy      string
	ScaleUps    int
	ScaleDowns  int
	PeakServers int
	// ServerSeconds integrates the provisioned server count over the
	// run [0, end], the quantity priced by econ.AutoscaledCost.
	ServerSeconds float64
}

// Scaler is a capacity controller driving one tier's stations. Both the
// reactive threshold Controller and the forecast-driven
// PredictiveController implement it, so a Tier attaches either through
// one declarative Spec.
type Scaler interface {
	// Start arms the controller's ticker; decisions begin one interval
	// after the engine's current time. Constructors do not start.
	Start()
	// Stop halts the controller; safe to call more than once.
	Stop()
	// Telemetry summarizes the controller's activity from the engine
	// start through end (normally the run duration).
	Telemetry(end float64) Telemetry
	// EventLog returns the recorded scale actions in time order.
	EventLog() []Event
}

// Spec declaratively selects and parameterizes a scaler policy — the
// serializable counterpart of Config/PredictiveConfig, carried by
// cluster.Tier and the JSON topology codec.
type Spec struct {
	// Policy is PolicyReactive or PolicyPredictive.
	Policy string
	// Interval is the control period, seconds; Min and Max bound each
	// station's server count. Shared by both policies.
	Interval float64
	Min, Max int

	// Reactive (threshold) parameters; see Config.
	UpThreshold   float64
	DownThreshold float64
	Cooldown      float64
	Step          int

	// Predictive parameters; see PredictiveConfig. Forecaster names a
	// forecast registry model ("" = "ewma"); Horizon is the window of
	// the windowed models (sma, window-max); Alpha/Beta are the
	// smoothing factors of ewma and holt (0 = model defaults).
	Mu         float64
	TargetUtil float64
	Forecaster string
	Horizon    int
	Alpha      float64
	Beta       float64
}

// DefaultPredictiveSpec returns the standard predictive policy — 5 s
// control period, provisioning for 70% target utilization at the given
// service rate — the counterpart of DefaultConfig for the predictive
// path, shared by the CLI flag parser and the comparison harness so
// "predictive/<forecaster>" means the same parameters everywhere.
func DefaultPredictiveSpec(min, max int, mu float64, forecaster string) Spec {
	return Spec{
		Policy:     PolicyPredictive,
		Interval:   5,
		Min:        min,
		Max:        max,
		Mu:         mu,
		TargetUtil: 0.7,
		Forecaster: forecaster,
	}
}

// ReactiveSpec converts a legacy reactive Config into a Spec, so
// pre-spec call sites keep one construction path.
func ReactiveSpec(cfg Config) Spec {
	return Spec{
		Policy:        PolicyReactive,
		Interval:      cfg.Interval,
		Min:           cfg.Min,
		Max:           cfg.Max,
		UpThreshold:   cfg.UpThreshold,
		DownThreshold: cfg.DownThreshold,
		Cooldown:      cfg.Cooldown,
		Step:          cfg.Step,
	}
}

// reactiveConfig lowers the spec to the reactive controller's config.
func (s Spec) reactiveConfig() Config {
	return Config{
		Interval:      s.Interval,
		Min:           s.Min,
		Max:           s.Max,
		UpThreshold:   s.UpThreshold,
		DownThreshold: s.DownThreshold,
		Cooldown:      s.Cooldown,
		Step:          s.Step,
	}
}

// predictiveConfig lowers the spec to the predictive controller's
// config, resolving the forecaster by name through the forecast
// registry.
func (s Spec) predictiveConfig() (PredictiveConfig, error) {
	name := s.Forecaster
	if name == "" {
		name = "ewma"
	}
	mk, err := forecast.New(name, forecast.Options{
		Window: s.Horizon, Alpha: s.Alpha, Beta: s.Beta,
	})
	if err != nil {
		return PredictiveConfig{}, err
	}
	return PredictiveConfig{
		Interval:      s.Interval,
		Min:           s.Min,
		Max:           s.Max,
		Mu:            s.Mu,
		TargetUtil:    s.TargetUtil,
		NewForecaster: mk,
	}, nil
}

// Label names the spec for result rows: the policy name, plus the
// resolved forecaster for predictive specs ("predictive/holt-0.5-0.3").
func (s Spec) Label() string {
	if s.Policy != PolicyPredictive {
		return s.Policy
	}
	cfg, err := s.predictiveConfig()
	if err != nil {
		return s.Policy + "/" + s.Forecaster
	}
	return s.Policy + "/" + cfg.NewForecaster().Name()
}

// Validate checks the spec statically, so invalid declarative
// topologies fail before a run starts instead of panicking inside one.
func (s Spec) Validate() error {
	if !KnownPolicy(s.Policy) {
		return fmt.Errorf("autoscale: unknown scaler policy %q (want one of %v)", s.Policy, Policies())
	}
	if s.Interval <= 0 || s.Min <= 0 || s.Max < s.Min {
		return fmt.Errorf("autoscale: invalid interval/bounds in spec %+v", s)
	}
	switch s.Policy {
	case PolicyReactive:
		if s.UpThreshold <= s.DownThreshold {
			return fmt.Errorf("autoscale: reactive spec needs UpThreshold > DownThreshold, got %v <= %v",
				s.UpThreshold, s.DownThreshold)
		}
	case PolicyPredictive:
		if s.Mu <= 0 {
			return fmt.Errorf("autoscale: predictive spec needs a positive Mu, got %v", s.Mu)
		}
		if s.TargetUtil <= 0 || s.TargetUtil >= 1 {
			return fmt.Errorf("autoscale: predictive spec needs TargetUtil in (0,1), got %v", s.TargetUtil)
		}
		if _, err := s.predictiveConfig(); err != nil {
			return err
		}
	}
	return nil
}

// New constructs the named scaler over the stations, mirroring lb.New:
// one registry, every policy. The returned scaler is not started; call
// Start once the calendar should begin ticking. Unknown policies and
// invalid parameters return an error listing the registry.
func New(spec Spec, e *sim.Engine, stations []*queue.Station) (Scaler, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Policy == PolicyReactive {
		return NewReactive(e, stations, spec.reactiveConfig()), nil
	}
	// Validate admitted the spec, so the only other policy is predictive.
	cfg, err := spec.predictiveConfig()
	if err != nil {
		return nil, err
	}
	return NewPredictive(e, stations, cfg), nil
}

// countActions splits an event log into scale-ups and scale-downs.
func countActions(events []Event) (ups, downs int) {
	for _, e := range events {
		if e.To > e.From {
			ups++
		} else if e.To < e.From {
			downs++
		}
	}
	return ups, downs
}

// peakServers returns the largest server count any station reached:
// the current counts (covers stations that never scaled) merged with
// the event log (covers peaks the controller later shrank from).
func peakServers(stations []*queue.Station, events []Event) int {
	peak := 0
	for _, st := range stations {
		if st.Servers > peak {
			peak = st.Servers
		}
	}
	for _, e := range events {
		if e.To > peak {
			peak = e.To
		}
	}
	return peak
}

// startLevels snapshots the stations' server counts at controller
// construction, the baseline for server-second integration.
func startLevels(stations []*queue.Station) []int {
	out := make([]int, len(stations))
	for i, st := range stations {
		out[i] = st.Servers
	}
	return out
}

// serverSeconds integrates piecewise-constant provisioned capacity over
// [start, end] from the stations' starting levels and the event log.
// Event times are clamped into the window, so zero-duration windows and
// windows ending before the first tick contribute exactly
// startLevel × window span per station — never a negative term.
func serverSeconds(stations []*queue.Station, start []int, events []Event, startT, end float64) float64 {
	if end <= startT {
		return 0
	}
	level := make(map[string]int, len(stations))
	lastT := make(map[string]float64, len(stations))
	for i, st := range stations {
		level[st.Name] = start[i]
		lastT[st.Name] = startT
	}
	var total float64
	for _, ev := range events {
		t := ev.Time
		if t < startT {
			t = startT
		}
		if t > end {
			t = end
		}
		total += float64(level[ev.Station]) * (t - lastT[ev.Station])
		level[ev.Station] = ev.To
		lastT[ev.Station] = t
	}
	for _, st := range stations {
		total += float64(level[st.Name]) * (end - lastT[st.Name])
	}
	return total
}
