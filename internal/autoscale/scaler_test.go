package autoscale

import (
	"math"
	"strings"
	"testing"

	"repro/internal/forecast"
	"repro/internal/queue"
	"repro/internal/sim"
)

func TestNewRejectsUnknownPolicy(t *testing.T) {
	eng := sim.NewEngine(21)
	st := queue.NewStation(eng, "x", 1, queue.FCFS)
	if _, err := New(Spec{Policy: "nope", Interval: 1, Min: 1, Max: 2},
		eng, []*queue.Station{st}); err == nil {
		t.Fatal("unknown policy accepted")
	} else if !strings.Contains(err.Error(), "reactive") {
		t.Errorf("error %q should list the registry", err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Policy: "nope", Interval: 1, Min: 1, Max: 2},
		{Policy: PolicyReactive, Interval: 0, Min: 1, Max: 2, UpThreshold: 1, DownThreshold: 0.1},
		{Policy: PolicyReactive, Interval: 1, Min: 2, Max: 1, UpThreshold: 1, DownThreshold: 0.1},
		{Policy: PolicyReactive, Interval: 1, Min: 1, Max: 2, UpThreshold: 0.1, DownThreshold: 0.5},
		{Policy: PolicyPredictive, Interval: 1, Min: 1, Max: 2, Mu: 0, TargetUtil: 0.5},
		{Policy: PolicyPredictive, Interval: 1, Min: 1, Max: 2, Mu: 13, TargetUtil: 1.5},
		{Policy: PolicyPredictive, Interval: 1, Min: 1, Max: 2, Mu: 13, TargetUtil: 0.5, Forecaster: "oracle"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) should fail validation", i, s)
		}
	}
	good := []Spec{
		ReactiveSpec(DefaultConfig(1, 4)),
		{Policy: PolicyPredictive, Interval: 5, Min: 1, Max: 4, Mu: 13, TargetUtil: 0.6},
		{Policy: PolicyPredictive, Interval: 5, Min: 1, Max: 4, Mu: 13, TargetUtil: 0.6,
			Forecaster: "holt", Alpha: 0.6, Beta: 0.4},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d rejected: %v", i, err)
		}
	}
}

// TestReactiveSpecMatchesDirectController: the registry's reactive
// scaler must be event-for-event identical to a directly constructed
// Controller on the same load — the Spec path adds declaration, not
// behavior.
func TestReactiveSpecMatchesDirectController(t *testing.T) {
	cfg := Config{Interval: 2, Min: 1, Max: 6, UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 4}
	run := func(build func(e *sim.Engine, st *queue.Station) Scaler) []Event {
		eng := sim.NewEngine(31)
		st := queue.NewStation(eng, "s", 1, queue.FCFS)
		s := build(eng, st)
		s.Start()
		loadStation(eng, st, 30, 13, 300)
		eng.RunUntil(400)
		return s.EventLog()
	}
	direct := run(func(e *sim.Engine, st *queue.Station) Scaler {
		return NewReactive(e, []*queue.Station{st}, cfg)
	})
	viaSpec := run(func(e *sim.Engine, st *queue.Station) Scaler {
		s, err := New(ReactiveSpec(cfg), e, []*queue.Station{st})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	if len(direct) == 0 {
		t.Fatal("controller never acted; test is vacuous")
	}
	if len(direct) != len(viaSpec) {
		t.Fatalf("event counts diverge: %d direct vs %d via spec", len(direct), len(viaSpec))
	}
	for i := range direct {
		if direct[i] != viaSpec[i] {
			t.Errorf("event %d diverges: %+v vs %+v", i, direct[i], viaSpec[i])
		}
	}
}

// TestPredictiveSpecUsesNamedForecaster: every registry forecaster
// builds and drives the predictive controller.
func TestPredictiveSpecUsesNamedForecaster(t *testing.T) {
	for _, name := range forecast.Names() {
		eng := sim.NewEngine(41)
		st := queue.NewStation(eng, "s", 1, queue.FCFS)
		s, err := New(Spec{
			Policy: PolicyPredictive, Interval: 5, Min: 1, Max: 8,
			Mu: 13, TargetUtil: 0.6, Forecaster: name,
		}, eng, []*queue.Station{st})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s.Start()
		loadStation(eng, st, 30, 13, 200)
		eng.RunUntil(250)
		tel := s.Telemetry(250)
		if tel.Policy != PolicyPredictive {
			t.Errorf("%s: policy = %q", name, tel.Policy)
		}
		if tel.ScaleUps == 0 {
			t.Errorf("%s: predictive controller never scaled up under overload", name)
		}
	}
}

func TestSpecLabel(t *testing.T) {
	if got := ReactiveSpec(DefaultConfig(1, 2)).Label(); got != "reactive" {
		t.Errorf("reactive label = %q", got)
	}
	s := Spec{Policy: PolicyPredictive, Interval: 5, Min: 1, Max: 2, Mu: 13,
		TargetUtil: 0.6, Forecaster: "holt"}
	if got := s.Label(); !strings.HasPrefix(got, "predictive/holt") {
		t.Errorf("predictive label = %q", got)
	}
}

// TestTelemetryServerSeconds: telemetry integration must agree with a
// hand-computed piecewise-constant integral.
func TestTelemetryServerSeconds(t *testing.T) {
	eng := sim.NewEngine(51)
	st := queue.NewStation(eng, "cap", 1, queue.FCFS)
	c := NewReactive(eng, []*queue.Station{st}, Config{
		Interval: 1, Min: 1, Max: 8, UpThreshold: 0.5, DownThreshold: 0.1, Cooldown: 1,
	})
	// Synthesize an exact event log instead of running a workload.
	c.Events = []Event{
		{Time: 10, Station: "cap", From: 1, To: 3},
		{Time: 30, Station: "cap", From: 3, To: 2},
	}
	// 1×10 + 3×20 + 2×70 = 210 over [0, 100].
	got := c.Telemetry(100).ServerSeconds
	if math.Abs(got-210) > 1e-9 {
		t.Errorf("server-seconds = %v, want 210", got)
	}
}

// TestTotalServerSecondsWindows: the satellite fix — degenerate
// windows (zero duration, ending before the first tick, starting after
// the last event) must integrate cleanly, never negatively.
func TestTotalServerSecondsWindows(t *testing.T) {
	eng := sim.NewEngine(52)
	st := queue.NewStation(eng, "w", 2, queue.FCFS)
	c := NewPredictive(eng, []*queue.Station{st}, PredictiveConfig{
		Interval: 10, Min: 1, Max: 8, Mu: 13, TargetUtil: 0.6,
	})
	c.Events = []Event{
		{Time: 20, Station: "w", From: 2, To: 5},
		{Time: 60, Station: "w", From: 5, To: 3},
	}
	cases := []struct {
		name       string
		start, end float64
		want       float64
	}{
		{"zero duration", 50, 50, 0},
		{"inverted window", 60, 40, 0},
		{"pre-first-tick", 0, 10, 2 * 10},
		{"ends exactly at first event", 0, 20, 2 * 20},
		{"spans one event", 0, 40, 2*20 + 5*20},
		{"full run", 0, 100, 2*20 + 5*40 + 3*40},
		{"starts mid-log", 40, 100, 5*20 + 3*40},
		{"starts after last event", 80, 100, 3 * 20},
	}
	for _, tc := range cases {
		got := c.TotalServerSeconds(2, tc.start, tc.end)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: TotalServerSeconds(2, %v, %v) = %v, want %v",
				tc.name, tc.start, tc.end, got, tc.want)
		}
		if got < 0 {
			t.Errorf("%s: negative server-seconds %v", tc.name, got)
		}
	}
}

// TestScalerStartIdempotent: double Start must not double the tick
// rate, and Stop before Start must not panic.
func TestScalerStartIdempotent(t *testing.T) {
	eng := sim.NewEngine(53)
	st := queue.NewStation(eng, "idem", 1, queue.FCFS)
	c := NewReactive(eng, []*queue.Station{st}, Config{
		Interval: 1, Min: 1, Max: 50, UpThreshold: 1.1, DownThreshold: 0.01, Cooldown: 10,
	})
	c.Start()
	c.Start()
	loadStation(eng, st, 120, 13, 100)
	eng.RunUntil(150)
	for i := 1; i < len(c.Events); i++ {
		if c.Events[i].Time-c.Events[i-1].Time < 10-1e-9 {
			t.Fatalf("double Start broke the cooldown: events at %v and %v",
				c.Events[i-1].Time, c.Events[i].Time)
		}
	}
	unstarted := NewReactive(eng, []*queue.Station{st}, DefaultConfig(1, 2))
	unstarted.Stop() // must not panic
}
