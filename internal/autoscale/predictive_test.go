package autoscale

import (
	"testing"

	"repro/internal/forecast"
	"repro/internal/queue"
	"repro/internal/sim"
)

func TestPredictiveProvisionsForRate(t *testing.T) {
	eng := sim.NewEngine(11)
	st := queue.NewStation(eng, "pred", 1, queue.FCFS)
	ctrl := startPredictive(eng, []*queue.Station{st}, PredictiveConfig{
		Interval: 5, Min: 1, Max: 8, Mu: 13, TargetUtil: 0.6,
	})
	loadStation(eng, st, 30, 13, 300)
	// Stop observing while the load is still active (after it ends the
	// controller rightly shrinks back to Min).
	eng.RunUntil(295)
	// 30 req/s at target ρ=0.6 needs ceil(30/7.8) = 4 servers.
	if st.Servers != 4 {
		t.Errorf("predictive servers = %d, want 4 for 30 req/s at 60%% target", st.Servers)
	}
	if len(ctrl.Events) == 0 {
		t.Fatal("no scaling events")
	}
}

func TestPredictiveScalesBackDown(t *testing.T) {
	eng := sim.NewEngine(12)
	st := queue.NewStation(eng, "down", 4, queue.FCFS)
	startPredictive(eng, []*queue.Station{st}, PredictiveConfig{
		Interval: 5, Min: 1, Max: 8, Mu: 13, TargetUtil: 0.6,
		NewForecaster: func() forecast.Forecaster { return forecast.NewEWMA(0.8) },
	})
	loadStation(eng, st, 2, 13, 200) // trivial load
	eng.RunUntil(260)
	if st.Servers != 1 {
		t.Errorf("idle predictive servers = %d, want 1", st.Servers)
	}
}

func TestPredictiveRespectsBounds(t *testing.T) {
	eng := sim.NewEngine(13)
	st := queue.NewStation(eng, "bound", 1, queue.FCFS)
	startPredictive(eng, []*queue.Station{st}, PredictiveConfig{
		Interval: 2, Min: 1, Max: 3, Mu: 13, TargetUtil: 0.5,
	})
	loadStation(eng, st, 200, 13, 100)
	eng.RunUntil(95)
	if st.Servers != 3 {
		t.Errorf("servers = %d, must cap at Max 3", st.Servers)
	}
}

// TestPredictiveTracksRamp: with a Holt forecaster, capacity follows a
// ramping workload.
func TestPredictiveTracksRamp(t *testing.T) {
	eng := sim.NewEngine(14)
	st := queue.NewStation(eng, "ramp", 1, queue.FCFS)
	ctrl := startPredictive(eng, []*queue.Station{st}, PredictiveConfig{
		Interval: 5, Min: 1, Max: 10, Mu: 13, TargetUtil: 0.6,
		NewForecaster: func() forecast.Forecaster { return forecast.NewHolt(0.6, 0.4) },
	})
	// Ramp the arrival rate from 5 to 45 req/s over 300 s.
	arrRng := eng.NewStream()
	svcRng := eng.NewStream()
	var schedule func(e *sim.Engine)
	schedule = func(e *sim.Engine) {
		if e.Now() > 300 {
			return
		}
		rate := 5 + 40*e.Now()/300
		st.Arrive(&queue.Request{ServiceTime: svcRng.ExpFloat64() / 13})
		e.After(arrRng.ExpFloat64()/rate, schedule)
	}
	eng.After(0, schedule)
	eng.RunUntil(330)
	// Peak rate ~45 req/s at ρ=0.6 needs ceil(45/7.8) = 6 servers; after
	// the ramp ends the controller shrinks back, so assert on the peak.
	if ctrl.PeakServers() < 5 {
		t.Errorf("ramp-tracking peak = %d servers, want >= 5", ctrl.PeakServers())
	}
}

func TestPredictiveServerSeconds(t *testing.T) {
	eng := sim.NewEngine(15)
	st := queue.NewStation(eng, "cost", 1, queue.FCFS)
	ctrl := startPredictive(eng, []*queue.Station{st}, PredictiveConfig{
		Interval: 10, Min: 1, Max: 8, Mu: 13, TargetUtil: 0.6,
	})
	loadStation(eng, st, 30, 13, 200)
	eng.RunUntil(200)
	got := ctrl.TotalServerSeconds(1, 0, 200)
	// Must be at least the static minimum (1 server × 200 s) and at most
	// the maximum (8 × 200).
	if got < 200 || got > 8*200 {
		t.Errorf("server-seconds = %v outside [200, 1600]", got)
	}
	// And more than static-1 since it scaled up.
	if got <= 220 {
		t.Errorf("server-seconds = %v, expected meaningful scale-up cost", got)
	}
}

func TestPredictiveConfigValidation(t *testing.T) {
	eng := sim.NewEngine(16)
	st := queue.NewStation(eng, "v", 1, queue.FCFS)
	bad := []PredictiveConfig{
		{Interval: 0, Min: 1, Max: 2, Mu: 13, TargetUtil: 0.5},
		{Interval: 1, Min: 0, Max: 2, Mu: 13, TargetUtil: 0.5},
		{Interval: 1, Min: 3, Max: 2, Mu: 13, TargetUtil: 0.5},
		{Interval: 1, Min: 1, Max: 2, Mu: 0, TargetUtil: 0.5},
		{Interval: 1, Min: 1, Max: 2, Mu: 13, TargetUtil: 1.2},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			startPredictive(eng, []*queue.Station{st}, cfg)
		}()
	}
}

// TestPredictiveVsReactiveOnBurst: on a step change in load, the
// predictive controller (provisioning from measured rate) should reach
// adequate capacity at least as fast as the threshold-reactive one, and
// both must beat the static baseline on sojourn time.
func TestPredictiveVsReactiveOnBurst(t *testing.T) {
	run := func(mode string) float64 {
		eng := sim.NewEngine(17)
		st := queue.NewStation(eng, mode, 1, queue.FCFS)
		st.SetWarmup(20)
		switch mode {
		case "reactive":
			startReactive(eng, []*queue.Station{st}, Config{
				Interval: 5, Min: 1, Max: 6, UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 10,
			})
		case "predictive":
			startPredictive(eng, []*queue.Station{st}, PredictiveConfig{
				Interval: 5, Min: 1, Max: 6, Mu: 13, TargetUtil: 0.65,
			})
		}
		loadStation(eng, st, 28, 13, 400)
		eng.RunUntil(500)
		st.Finish()
		return st.Metrics().Sojourn.Mean()
	}
	static := run("static")
	reactive := run("reactive")
	predictive := run("predictive")
	if reactive >= static || predictive >= static {
		t.Errorf("controllers should beat static: static=%v reactive=%v predictive=%v",
			static, reactive, predictive)
	}
	if predictive > reactive*2 {
		t.Errorf("predictive %v should be competitive with reactive %v", predictive, reactive)
	}
}
