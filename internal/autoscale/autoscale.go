// Package autoscale implements the reactive per-site capacity controller
// the paper points to in its design implications and future work:
// "if the spatial distribution of the workload changes over time, the
// allocated processing capacity at each site should also be adjusted
// dynamically to match these workload changes" (§3.2) and "we plan to
// design dynamic edge resource allocation techniques that are robust to
// performance inversion" (§7).
//
// The controller samples each station's load signal (in-flight requests
// per server) on a fixed interval and scales the server count up or down
// between configured bounds, with a cooldown to prevent thrashing. It is
// deliberately simple — threshold-based reactive scaling, the same shape
// as production horizontal autoscalers — so its effect on performance
// inversion can be studied in isolation.
package autoscale

import (
	"fmt"

	"repro/internal/queue"
	"repro/internal/sim"
)

// Config parameterizes a controller.
type Config struct {
	// Interval between control decisions, seconds.
	Interval float64
	// Min and Max bound the server count.
	Min, Max int
	// UpThreshold: scale up when load-per-server is at or above this.
	UpThreshold float64
	// DownThreshold: scale down when load-per-server is at or below this.
	DownThreshold float64
	// Cooldown is the minimum time between consecutive scale actions at
	// one station, seconds.
	Cooldown float64
	// Step is the number of servers added/removed per action (default 1).
	Step int
}

// DefaultConfig returns a conservative reactive policy: check every 5 s,
// scale up above 1.5 in-flight per server, down below 0.3, one server at
// a time with a 15 s cooldown.
func DefaultConfig(min, max int) Config {
	return Config{
		Interval:      5,
		Min:           min,
		Max:           max,
		UpThreshold:   1.5,
		DownThreshold: 0.3,
		Cooldown:      15,
		Step:          1,
	}
}

func (c Config) validate() {
	if c.Interval <= 0 || c.Min <= 0 || c.Max < c.Min {
		panic(fmt.Sprintf("autoscale: invalid config %+v", c))
	}
	if c.UpThreshold <= c.DownThreshold {
		panic("autoscale: UpThreshold must exceed DownThreshold")
	}
}

// Event records one scaling action for analysis.
type Event struct {
	Time    float64
	Station string
	From    int
	To      int
	Signal  float64 // load per server that triggered the action
}

// Controller drives one or more stations.
type Controller struct {
	cfg      Config
	engine   *sim.Engine
	stations []*queue.Station
	start    []int // server counts at construction
	lastAct  []float64
	ticker   *sim.Ticker

	Events []Event
}

// NewReactive attaches a reactive threshold controller to the stations.
// The controller is idle until Start arms its ticker; use autoscale.New
// to construct by declarative Spec instead.
func NewReactive(e *sim.Engine, stations []*queue.Station, cfg Config) *Controller {
	cfg.validate()
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	if len(stations) == 0 {
		panic("autoscale: no stations")
	}
	c := &Controller{
		cfg:      cfg,
		engine:   e,
		stations: stations,
		start:    startLevels(stations),
		lastAct:  make([]float64, len(stations)),
	}
	for i := range c.lastAct {
		c.lastAct[i] = -cfg.Cooldown // allow an immediate first action
	}
	return c
}

// Start arms the controller's ticker: the first decision fires one
// interval after the engine's current time. Starting twice is a no-op.
func (c *Controller) Start() {
	if c.ticker != nil {
		return
	}
	c.ticker = c.engine.Every(c.cfg.Interval, func(en *sim.Engine) { c.tick(en.Now()) })
}

// Stop halts the controller.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

func (c *Controller) tick(now float64) {
	for i, st := range c.stations {
		if now-c.lastAct[i] < c.cfg.Cooldown {
			continue
		}
		servers := st.Servers
		signal := float64(st.Load()) / float64(servers)
		target := servers
		switch {
		case signal >= c.cfg.UpThreshold && servers < c.cfg.Max:
			target = servers + c.cfg.Step
			if target > c.cfg.Max {
				target = c.cfg.Max
			}
		case signal <= c.cfg.DownThreshold && servers > c.cfg.Min:
			target = servers - c.cfg.Step
			if target < c.cfg.Min {
				target = c.cfg.Min
			}
		}
		if target != servers {
			st.SetServers(target)
			c.lastAct[i] = now
			c.Events = append(c.Events, Event{
				Time: now, Station: st.Name, From: servers, To: target, Signal: signal,
			})
		}
	}
}

// ScaleUps and ScaleDowns summarize the recorded actions.
func (c *Controller) ScaleUps() int {
	ups, _ := countActions(c.Events)
	return ups
}

// ScaleDowns counts shrink actions.
func (c *Controller) ScaleDowns() int {
	_, downs := countActions(c.Events)
	return downs
}

// PeakServers returns the largest server count reached at any station,
// the provisioning headroom the controller actually used.
func (c *Controller) PeakServers() int { return peakServers(c.stations, c.Events) }

// EventLog returns the recorded scale actions.
func (c *Controller) EventLog() []Event { return c.Events }

// Telemetry summarizes the controller's activity through end.
func (c *Controller) Telemetry(end float64) Telemetry {
	ups, downs := countActions(c.Events)
	return Telemetry{
		Policy:        PolicyReactive,
		ScaleUps:      ups,
		ScaleDowns:    downs,
		PeakServers:   c.PeakServers(),
		ServerSeconds: serverSeconds(c.stations, c.start, c.Events, 0, end),
	}
}
