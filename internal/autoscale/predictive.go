package autoscale

import (
	"fmt"
	"math"

	"repro/internal/forecast"
	"repro/internal/queue"
	"repro/internal/sim"
)

// PredictiveConfig parameterizes the forecast-driven controller: instead
// of reacting to instantaneous load, it measures each site's arrival
// rate per interval, forecasts the next interval's rate, and provisions
// servers for the predicted rate at a target utilization — the
// "capacity ∝ predicted load" rule of the paper's §3.2 takeaway.
type PredictiveConfig struct {
	Interval   float64 // control period, seconds
	Min, Max   int
	Mu         float64 // per-server service rate, req/s
	TargetUtil float64 // provision so predicted ρ stays at/below this
	// NewForecaster constructs one forecaster per station (they carry
	// per-site state). Nil defaults to EWMA(0.5).
	NewForecaster func() forecast.Forecaster
}

func (c PredictiveConfig) validate() {
	if c.Interval <= 0 || c.Min <= 0 || c.Max < c.Min || c.Mu <= 0 {
		panic(fmt.Sprintf("autoscale: invalid predictive config %+v", c))
	}
	if c.TargetUtil <= 0 || c.TargetUtil >= 1 {
		panic("autoscale: TargetUtil must be in (0,1)")
	}
}

// PredictiveController provisions stations from forecast arrival rates.
type PredictiveController struct {
	cfg         PredictiveConfig
	engine      *sim.Engine
	stations    []*queue.Station
	forecasters []forecast.Forecaster
	lastCount   []uint64
	ticker      *sim.Ticker

	Events []Event
}

// NewPredictive attaches a predictive controller and starts its ticker.
func NewPredictive(e *sim.Engine, stations []*queue.Station, cfg PredictiveConfig) *PredictiveController {
	cfg.validate()
	if len(stations) == 0 {
		panic("autoscale: no stations")
	}
	mk := cfg.NewForecaster
	if mk == nil {
		mk = func() forecast.Forecaster { return forecast.NewEWMA(0.5) }
	}
	c := &PredictiveController{
		cfg:         cfg,
		engine:      e,
		stations:    stations,
		forecasters: make([]forecast.Forecaster, len(stations)),
		lastCount:   make([]uint64, len(stations)),
	}
	for i := range c.forecasters {
		c.forecasters[i] = mk()
		c.lastCount[i] = stations[i].TotalArrivals()
	}
	c.ticker = e.Every(cfg.Interval, func(en *sim.Engine) { c.tick(en.Now()) })
	return c
}

// Stop halts the controller.
func (c *PredictiveController) Stop() { c.ticker.Stop() }

func (c *PredictiveController) tick(now float64) {
	for i, st := range c.stations {
		count := st.TotalArrivals()
		rate := float64(count-c.lastCount[i]) / c.cfg.Interval
		c.lastCount[i] = count
		c.forecasters[i].Observe(rate)
		predicted := c.forecasters[i].Predict()

		target := int(math.Ceil(predicted / (c.cfg.Mu * c.cfg.TargetUtil)))
		if target < c.cfg.Min {
			target = c.cfg.Min
		}
		if target > c.cfg.Max {
			target = c.cfg.Max
		}
		if target != st.Servers {
			from := st.Servers
			st.SetServers(target)
			c.Events = append(c.Events, Event{
				Time: now, Station: st.Name, From: from, To: target, Signal: predicted,
			})
		}
	}
}

// PeakServers returns the largest server count reached.
func (c *PredictiveController) PeakServers() int {
	peak := 0
	for _, st := range c.stations {
		if st.Servers > peak {
			peak = st.Servers
		}
	}
	for _, e := range c.Events {
		if e.To > peak {
			peak = e.To
		}
	}
	return peak
}

// TotalServerSeconds integrates the provisioned capacity over the run
// given the event log and a final time, for cost accounting. Assumes all
// stations started at startServers.
func (c *PredictiveController) TotalServerSeconds(startServers int, start, end float64) float64 {
	// Track per-station piecewise-constant capacity.
	level := make(map[string]int, len(c.stations))
	lastT := make(map[string]float64, len(c.stations))
	var total float64
	for _, st := range c.stations {
		level[st.Name] = startServers
		lastT[st.Name] = start
	}
	for _, e := range c.Events {
		total += float64(level[e.Station]) * (e.Time - lastT[e.Station])
		level[e.Station] = e.To
		lastT[e.Station] = e.Time
	}
	for _, st := range c.stations {
		total += float64(level[st.Name]) * (end - lastT[st.Name])
	}
	return total
}
