package autoscale

import (
	"fmt"
	"math"

	"repro/internal/forecast"
	"repro/internal/queue"
	"repro/internal/sim"
)

// PredictiveConfig parameterizes the forecast-driven controller: instead
// of reacting to instantaneous load, it measures each site's arrival
// rate per interval, forecasts the next interval's rate, and provisions
// servers for the predicted rate at a target utilization — the
// "capacity ∝ predicted load" rule of the paper's §3.2 takeaway.
type PredictiveConfig struct {
	Interval   float64 // control period, seconds
	Min, Max   int
	Mu         float64 // per-server service rate, req/s
	TargetUtil float64 // provision so predicted ρ stays at/below this
	// NewForecaster constructs one forecaster per station (they carry
	// per-site state). Nil defaults to EWMA(0.5).
	NewForecaster func() forecast.Forecaster
}

func (c PredictiveConfig) validate() {
	if c.Interval <= 0 || c.Min <= 0 || c.Max < c.Min || c.Mu <= 0 {
		panic(fmt.Sprintf("autoscale: invalid predictive config %+v", c))
	}
	if c.TargetUtil <= 0 || c.TargetUtil >= 1 {
		panic("autoscale: TargetUtil must be in (0,1)")
	}
}

// PredictiveController provisions stations from forecast arrival rates.
type PredictiveController struct {
	cfg         PredictiveConfig
	engine      *sim.Engine
	stations    []*queue.Station
	start       []int // server counts at construction
	forecasters []forecast.Forecaster
	lastCount   []uint64
	ticker      *sim.Ticker

	Events []Event
}

// NewPredictive attaches a predictive controller to the stations. The
// controller is idle until Start arms its ticker; use autoscale.New to
// construct by declarative Spec instead.
func NewPredictive(e *sim.Engine, stations []*queue.Station, cfg PredictiveConfig) *PredictiveController {
	cfg.validate()
	if len(stations) == 0 {
		panic("autoscale: no stations")
	}
	mk := cfg.NewForecaster
	if mk == nil {
		mk = func() forecast.Forecaster { return forecast.NewEWMA(0.5) }
	}
	c := &PredictiveController{
		cfg:         cfg,
		engine:      e,
		stations:    stations,
		start:       startLevels(stations),
		forecasters: make([]forecast.Forecaster, len(stations)),
		lastCount:   make([]uint64, len(stations)),
	}
	for i := range c.forecasters {
		c.forecasters[i] = mk()
		c.lastCount[i] = stations[i].TotalArrivals()
	}
	return c
}

// Start arms the controller's ticker: the first decision fires one
// interval after the engine's current time. Starting twice is a no-op.
func (c *PredictiveController) Start() {
	if c.ticker != nil {
		return
	}
	c.ticker = c.engine.Every(c.cfg.Interval, func(en *sim.Engine) { c.tick(en.Now()) })
}

// Stop halts the controller.
func (c *PredictiveController) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

func (c *PredictiveController) tick(now float64) {
	for i, st := range c.stations {
		count := st.TotalArrivals()
		rate := float64(count-c.lastCount[i]) / c.cfg.Interval
		c.lastCount[i] = count
		c.forecasters[i].Observe(rate)
		predicted := c.forecasters[i].Predict()

		target := int(math.Ceil(predicted / (c.cfg.Mu * c.cfg.TargetUtil)))
		if target < c.cfg.Min {
			target = c.cfg.Min
		}
		if target > c.cfg.Max {
			target = c.cfg.Max
		}
		if target != st.Servers {
			from := st.Servers
			st.SetServers(target)
			c.Events = append(c.Events, Event{
				Time: now, Station: st.Name, From: from, To: target, Signal: predicted,
			})
		}
	}
}

// PeakServers returns the largest server count reached.
func (c *PredictiveController) PeakServers() int { return peakServers(c.stations, c.Events) }

// ScaleUps counts grow actions.
func (c *PredictiveController) ScaleUps() int {
	ups, _ := countActions(c.Events)
	return ups
}

// ScaleDowns counts shrink actions.
func (c *PredictiveController) ScaleDowns() int {
	_, downs := countActions(c.Events)
	return downs
}

// EventLog returns the recorded scale actions.
func (c *PredictiveController) EventLog() []Event { return c.Events }

// Telemetry summarizes the controller's activity through end.
func (c *PredictiveController) Telemetry(end float64) Telemetry {
	ups, downs := countActions(c.Events)
	return Telemetry{
		Policy:        PolicyPredictive,
		ScaleUps:      ups,
		ScaleDowns:    downs,
		PeakServers:   c.PeakServers(),
		ServerSeconds: serverSeconds(c.stations, c.start, c.Events, 0, end),
	}
}

// TotalServerSeconds integrates the provisioned capacity over
// [start, end] given the event log, for cost accounting. Assumes all
// stations started at startServers. Event times are clamped into the
// window, so degenerate windows — zero duration, or ending before the
// first control tick — integrate the starting level over the window
// span instead of producing negative terms.
func (c *PredictiveController) TotalServerSeconds(startServers int, start, end float64) float64 {
	levels := make([]int, len(c.stations))
	for i := range levels {
		levels[i] = startServers
	}
	return serverSeconds(c.stations, levels, c.Events, start, end)
}
