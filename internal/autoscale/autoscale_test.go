package autoscale

import (
	"testing"

	"repro/internal/queue"
	"repro/internal/sim"
)

// startReactive constructs and immediately starts a reactive
// controller (most tests want the ticker armed from t=0).
func startReactive(e *sim.Engine, sts []*queue.Station, cfg Config) *Controller {
	c := NewReactive(e, sts, cfg)
	c.Start()
	return c
}

// startPredictive constructs and immediately starts a predictive
// controller.
func startPredictive(e *sim.Engine, sts []*queue.Station, cfg PredictiveConfig) *PredictiveController {
	c := NewPredictive(e, sts, cfg)
	c.Start()
	return c
}

// loadStation drives Poisson arrivals at the given rate into a station
// for the duration.
func loadStation(eng *sim.Engine, st *queue.Station, rate, mu, duration float64) {
	arrRng := eng.NewStream()
	svcRng := eng.NewStream()
	var schedule func(e *sim.Engine)
	schedule = func(e *sim.Engine) {
		if e.Now() > duration {
			return
		}
		st.Arrive(&queue.Request{ServiceTime: svcRng.ExpFloat64() / mu})
		e.After(arrRng.ExpFloat64()/rate, schedule)
	}
	eng.After(0, schedule)
}

func TestScalesUpUnderOverload(t *testing.T) {
	eng := sim.NewEngine(1)
	st := queue.NewStation(eng, "hot", 1, queue.FCFS)
	ctrl := startReactive(eng, []*queue.Station{st}, Config{
		Interval: 2, Min: 1, Max: 8, UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 4,
	})
	loadStation(eng, st, 30, 13, 300) // 230% of one server
	eng.RunUntil(400)
	if ctrl.ScaleUps() == 0 {
		t.Fatal("overloaded station never scaled up")
	}
	// After the load stops (t=300) the controller shrinks back toward
	// Min, so assert on the peak it reached during the overload.
	if ctrl.PeakServers() < 3 {
		t.Errorf("peak servers = %d, want >= 3 for a 30 req/s load", ctrl.PeakServers())
	}
	if ctrl.ScaleDowns() == 0 {
		t.Error("expected scale-downs after the load ended")
	}
}

func TestScalesDownWhenIdle(t *testing.T) {
	eng := sim.NewEngine(2)
	st := queue.NewStation(eng, "cool", 6, queue.FCFS)
	ctrl := startReactive(eng, []*queue.Station{st}, Config{
		Interval: 2, Min: 1, Max: 8, UpThreshold: 1.5, DownThreshold: 0.4, Cooldown: 4,
	})
	loadStation(eng, st, 2, 13, 300) // ~3% utilization of 6 servers
	eng.RunUntil(400)
	if ctrl.ScaleDowns() == 0 {
		t.Fatal("idle station never scaled down")
	}
	if st.Servers != 1 {
		t.Errorf("final servers = %d, want 1", st.Servers)
	}
}

func TestRespectsBounds(t *testing.T) {
	eng := sim.NewEngine(3)
	st := queue.NewStation(eng, "bounded", 2, queue.FCFS)
	startReactive(eng, []*queue.Station{st}, Config{
		Interval: 1, Min: 2, Max: 3, UpThreshold: 1.2, DownThreshold: 0.1, Cooldown: 1,
	})
	loadStation(eng, st, 100, 13, 200) // hopeless overload
	eng.RunUntil(250)
	if st.Servers != 3 {
		t.Errorf("servers = %d, must stay at Max 3", st.Servers)
	}
}

func TestCooldownLimitsActionRate(t *testing.T) {
	eng := sim.NewEngine(4)
	st := queue.NewStation(eng, "cool-down", 1, queue.FCFS)
	ctrl := startReactive(eng, []*queue.Station{st}, Config{
		Interval: 1, Min: 1, Max: 100, UpThreshold: 1.1, DownThreshold: 0.01, Cooldown: 10,
	})
	loadStation(eng, st, 120, 13, 100)
	eng.RunUntil(150)
	// 150 s horizon / 10 s cooldown ⇒ at most ~15 actions.
	if len(ctrl.Events) > 16 {
		t.Errorf("%d actions despite 10 s cooldown over 150 s", len(ctrl.Events))
	}
	for i := 1; i < len(ctrl.Events); i++ {
		if ctrl.Events[i].Time-ctrl.Events[i-1].Time < 10-1e-9 {
			t.Fatalf("actions %d and %d closer than the cooldown", i-1, i)
		}
	}
}

func TestEventTelemetry(t *testing.T) {
	eng := sim.NewEngine(5)
	st := queue.NewStation(eng, "telemetry", 1, queue.FCFS)
	ctrl := startReactive(eng, []*queue.Station{st}, DefaultConfig(1, 4))
	loadStation(eng, st, 40, 13, 200)
	eng.RunUntil(250)
	if len(ctrl.Events) == 0 {
		t.Fatal("no events recorded")
	}
	for _, e := range ctrl.Events {
		if e.Station != "telemetry" || e.From == e.To || e.Signal < 0 {
			t.Errorf("malformed event %+v", e)
		}
	}
}

func TestStopHaltsController(t *testing.T) {
	eng := sim.NewEngine(6)
	st := queue.NewStation(eng, "halt", 1, queue.FCFS)
	ctrl := startReactive(eng, []*queue.Station{st}, Config{
		Interval: 1, Min: 1, Max: 50, UpThreshold: 1.1, DownThreshold: 0.01, Cooldown: 1,
	})
	loadStation(eng, st, 100, 13, 100)
	eng.At(10, func(*sim.Engine) { ctrl.Stop() })
	eng.RunUntil(150)
	for _, e := range ctrl.Events {
		if e.Time > 10 {
			t.Fatalf("controller acted at %v after Stop at 10", e.Time)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(7)
	st := queue.NewStation(eng, "v", 1, queue.FCFS)
	bad := []Config{
		{Interval: 0, Min: 1, Max: 2, UpThreshold: 1, DownThreshold: 0.1},
		{Interval: 1, Min: 0, Max: 2, UpThreshold: 1, DownThreshold: 0.1},
		{Interval: 1, Min: 3, Max: 2, UpThreshold: 1, DownThreshold: 0.1},
		{Interval: 1, Min: 1, Max: 2, UpThreshold: 0.1, DownThreshold: 0.5},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			startReactive(eng, []*queue.Station{st}, cfg)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty station list should panic")
			}
		}()
		startReactive(eng, nil, DefaultConfig(1, 2))
	}()
}

// TestAutoscaleReducesLatencyUnderBurst: the headline property — a
// station facing a sustained burst delivers far lower sojourn times with
// the controller than without it.
func TestAutoscaleReducesLatencyUnderBurst(t *testing.T) {
	run := func(enable bool) float64 {
		eng := sim.NewEngine(8)
		st := queue.NewStation(eng, "burst", 1, queue.FCFS)
		st.SetWarmup(30)
		if enable {
			startReactive(eng, []*queue.Station{st}, Config{
				Interval: 2, Min: 1, Max: 6, UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 4,
			})
		}
		loadStation(eng, st, 25, 13, 400) // ~190% of one server
		eng.RunUntil(600)
		st.Finish()
		return st.Metrics().Sojourn.Mean()
	}
	static := run(false)
	scaled := run(true)
	if scaled >= static/3 {
		t.Errorf("autoscaled sojourn %v should be far below static %v", scaled, static)
	}
}
