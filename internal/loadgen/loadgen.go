// Package loadgen is the reproduction's Gatling substitute: an open-loop
// load generator that issues HTTP requests at the times prescribed by an
// arrival process (or a recorded trace) and logs per-request end-to-end
// latencies. Open-loop generation is essential for queueing experiments:
// request timing must not depend on response timing, or utilization
// self-limits and the inversion never appears.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// RequestResult records one issued request.
type RequestResult struct {
	Issued  time.Time
	Latency time.Duration
	Status  int
	Err     error
}

// Report aggregates a run.
type Report struct {
	Latencies stats.Sample // seconds, successful requests only
	Issued    int
	Succeeded int
	Failed    int
	Errors    int
	Duration  time.Duration
}

// MeanLatency returns the mean successful latency in seconds.
func (r *Report) MeanLatency() float64 { return r.Latencies.Mean() }

// P95Latency returns the 95th-percentile latency in seconds.
func (r *Report) P95Latency() float64 { return r.Latencies.P95() }

// Config describes one load-generation run.
type Config struct {
	TargetURL string
	Arrivals  workload.ArrivalProcess
	Duration  time.Duration
	Warmup    time.Duration // results before this offset are discarded
	Seed      int64
	// ServiceTimes optionally samples a per-request service time to send
	// in the X-Service-Time header (trace replay); nil lets the server
	// sample its own.
	ServiceTimes func(rng *rand.Rand) float64
	// MaxInflight caps concurrent outstanding requests as a safety
	// valve; 0 means no cap (true open loop).
	MaxInflight int
	Client      *http.Client
}

// Run executes the load test and blocks until all issued requests have
// completed or the context is canceled.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.TargetURL == "" || cfg.Arrivals == nil || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: config needs TargetURL, Arrivals and Duration")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 120 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        4096,
				MaxIdleConnsPerHost: 4096,
			},
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	svcRng := rand.New(rand.NewSource(cfg.Seed + 1))

	report := &Report{}
	var mu sync.Mutex
	var wg sync.WaitGroup

	var sem chan struct{}
	if cfg.MaxInflight > 0 {
		sem = make(chan struct{}, cfg.MaxInflight)
	}

	start := time.Now()
	simT := 0.0
	for {
		next, ok := cfg.Arrivals.Next(simT, rng)
		if !ok || next > cfg.Duration.Seconds() {
			break
		}
		simT = next
		fireAt := start.Add(time.Duration(simT * float64(time.Second)))
		if d := time.Until(fireAt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				report.Duration = time.Since(start)
				return report, ctx.Err()
			}
		}

		var svcHeader string
		if cfg.ServiceTimes != nil {
			svcHeader = strconv.FormatFloat(cfg.ServiceTimes(svcRng), 'g', -1, 64)
		}
		inWarmup := simT < cfg.Warmup.Seconds()

		mu.Lock()
		report.Issued++
		mu.Unlock()

		if sem != nil {
			sem <- struct{}{}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			res := issue(ctx, client, cfg.TargetURL, svcHeader)
			if inWarmup {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case res.Err != nil:
				report.Errors++
				report.Failed++
			case res.Status != http.StatusOK:
				report.Failed++
			default:
				report.Succeeded++
				report.Latencies.Add(res.Latency.Seconds())
			}
		}()
	}
	wg.Wait()
	report.Duration = time.Since(start)
	return report, nil
}

func issue(ctx context.Context, client *http.Client, url, svcHeader string) RequestResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return RequestResult{Err: err}
	}
	if svcHeader != "" {
		req.Header.Set("X-Service-Time", svcHeader)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return RequestResult{Issued: t0, Err: err}
	}
	defer resp.Body.Close()
	// Drain the small JSON body so connections are reused.
	buf := make([]byte, 512)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	return RequestResult{Issued: t0, Latency: time.Since(t0), Status: resp.StatusCode}
}
