package loadgen

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestRunIssuesAtConfiguredRate(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		TargetURL: ts.URL,
		Arrivals:  workload.NewPoisson(100),
		Duration:  2 * time.Second,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~200 requests expected.
	if rep.Issued < 120 || rep.Issued > 300 {
		t.Errorf("issued %d requests at 100/s over 2s, want ~200", rep.Issued)
	}
	if rep.Succeeded != rep.Issued {
		t.Errorf("succeeded %d != issued %d", rep.Succeeded, rep.Issued)
	}
	if int(hits.Load()) != rep.Issued {
		t.Errorf("server saw %d hits, generator issued %d", hits.Load(), rep.Issued)
	}
	if rep.Latencies.N() != rep.Succeeded {
		t.Errorf("recorded %d latencies", rep.Latencies.N())
	}
	if rep.MeanLatency() <= 0 || rep.P95Latency() < rep.MeanLatency()/10 {
		t.Error("latency stats implausible")
	}
}

func TestRunWarmupDiscards(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		TargetURL: ts.URL,
		Arrivals:  workload.NewPoisson(50),
		Duration:  1500 * time.Millisecond,
		Warmup:    750 * time.Millisecond,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded >= rep.Issued {
		t.Errorf("warmup should discard results: succeeded %d of %d issued", rep.Succeeded, rep.Issued)
	}
	if rep.Succeeded == 0 {
		t.Error("post-warmup results missing")
	}
}

func TestRunRecordsFailures(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		TargetURL: ts.URL,
		Arrivals:  workload.NewPoisson(50),
		Duration:  500 * time.Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 || rep.Succeeded != 0 {
		t.Errorf("failures not recorded: %+v", rep)
	}
	if rep.Latencies.N() != 0 {
		t.Error("failed requests must not contribute latencies")
	}
}

func TestRunServiceTimeHeader(t *testing.T) {
	var sawHeader atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Service-Time") != "" {
			sawHeader.Store(true)
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	_, err := Run(context.Background(), Config{
		TargetURL:    ts.URL,
		Arrivals:     workload.NewPoisson(50),
		Duration:     400 * time.Millisecond,
		Seed:         4,
		ServiceTimes: func(rng *rand.Rand) float64 { return 0.005 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawHeader.Load() {
		t.Error("X-Service-Time header never sent")
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := Run(context.Background(), Config{TargetURL: "http://x", Duration: time.Second}); err == nil {
		t.Error("missing arrivals should error")
	}
}

func TestRunContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, Config{
		TargetURL: ts.URL,
		Arrivals:  workload.NewPoisson(5),
		Duration:  30 * time.Second,
		Seed:      5,
	})
	if err == nil {
		t.Error("canceled run should return the context error")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not interrupt the run promptly")
	}
}

func TestRunMaxInflight(t *testing.T) {
	var inflight, peak atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
		inflight.Add(-1)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	_, err := Run(context.Background(), Config{
		TargetURL:   ts.URL,
		Arrivals:    workload.NewPoisson(200),
		Duration:    500 * time.Millisecond,
		Seed:        6,
		MaxInflight: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Errorf("peak inflight %d exceeded cap 3", peak.Load())
	}
}
