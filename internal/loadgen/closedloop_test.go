package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/httpserv"
	"repro/internal/workload"
)

func slowServer(t *testing.T, workers int, meanService float64) *httptest.Server {
	t.Helper()
	srv := httpserv.NewInferenceServer(app.NewInferenceModelWith(meanService, 0), workers, 1)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestClosedLoopBasic(t *testing.T) {
	ts := slowServer(t, 2, 0.005)
	rep, err := RunClosedLoop(context.Background(), ClosedLoopConfig{
		TargetURL: ts.URL,
		Users:     4,
		Duration:  800 * time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded == 0 {
		t.Fatal("no successes")
	}
	if rep.Failed != 0 {
		t.Errorf("failures: %d", rep.Failed)
	}
	if rep.Throughput() <= 0 {
		t.Error("throughput should be positive")
	}
}

func TestClosedLoopConfigValidation(t *testing.T) {
	if _, err := RunClosedLoop(context.Background(), ClosedLoopConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := RunClosedLoop(context.Background(), ClosedLoopConfig{
		TargetURL: "http://x", Users: 0, Duration: time.Second,
	}); err == nil {
		t.Error("zero users should error")
	}
}

// TestClosedLoopSelfThrottles: the methodological point. Drive a slow
// single-worker server (service 50 ms ⇒ capacity 20 req/s) with demand
// far beyond capacity both ways:
//   - open loop at 60 req/s: requests pile up, latency explodes well
//     beyond the service time;
//   - closed loop with 3 users: latency stays near 3×service time
//     (each user waits behind at most 2 peers) and throughput
//     self-limits at capacity.
func TestClosedLoopSelfThrottles(t *testing.T) {
	ts := slowServer(t, 1, 0.050)

	open, err := Run(context.Background(), Config{
		TargetURL: ts.URL,
		Arrivals:  workload.NewPoisson(60),
		Duration:  2 * time.Second,
		Warmup:    500 * time.Millisecond,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}

	ts2 := slowServer(t, 1, 0.050)
	closed, err := RunClosedLoop(context.Background(), ClosedLoopConfig{
		TargetURL: ts2.URL,
		Users:     3,
		Duration:  2 * time.Second,
		Warmup:    500 * time.Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Open-loop latency must blow up far beyond the closed-loop latency.
	if open.MeanLatency() < 2*closed.MeanLatency() {
		t.Errorf("open-loop mean %.3fs should dwarf closed-loop %.3fs",
			open.MeanLatency(), closed.MeanLatency())
	}
	// Closed-loop latency is bounded near Users × service time.
	if closed.MeanLatency() > 0.050*3*2 {
		t.Errorf("closed-loop mean %.3fs too high for 3 users on a 50ms server", closed.MeanLatency())
	}
	// Closed-loop throughput self-limits at or below capacity (20/s).
	if tp := closed.Throughput(); tp > 22 {
		t.Errorf("closed-loop throughput %.1f exceeds server capacity", tp)
	}
}

func TestClosedLoopThinkTimeReducesThroughput(t *testing.T) {
	ts := slowServer(t, 4, 0.002)
	noThink, err := RunClosedLoop(context.Background(), ClosedLoopConfig{
		TargetURL: ts.URL, Users: 4, Duration: 700 * time.Millisecond, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := slowServer(t, 4, 0.002)
	think, err := RunClosedLoop(context.Background(), ClosedLoopConfig{
		TargetURL: ts2.URL, Users: 4, Duration: 700 * time.Millisecond, Seed: 4,
		ThinkTime: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if think.Issued >= noThink.Issued {
		t.Errorf("think time should reduce issued requests: %d vs %d", think.Issued, noThink.Issued)
	}
}

func TestClosedLoopContextCancel(t *testing.T) {
	ts := slowServer(t, 1, 0.010)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunClosedLoop(ctx, ClosedLoopConfig{
		TargetURL: ts.URL, Users: 2, Duration: 30 * time.Second, Seed: 5,
	})
	if err != nil {
		t.Fatalf("closed loop returns the report even on cancel: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not stop the run promptly")
	}
}
