package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ClosedLoopConfig describes a closed-loop load test: a fixed population
// of virtual users, each issuing its next request only after the
// previous response returns (plus an optional think time).
//
// Closed-loop generation is the classic methodological trap in queueing
// experiments: because users wait for responses, the offered load
// self-throttles exactly when the server is slow, hiding the queueing
// blow-up that causes performance inversion. edgebench includes it so
// the open-vs-closed contrast can be demonstrated (see the loadgen
// tests); the paper's Gatling setup is open-loop, which is why it can
// observe inversion at all.
type ClosedLoopConfig struct {
	TargetURL string
	Users     int
	ThinkTime time.Duration // mean exponential think time (0 = none)
	Duration  time.Duration
	Warmup    time.Duration
	Seed      int64
	// ServiceTimes optionally samples per-request service times for the
	// X-Service-Time header.
	ServiceTimes func(rng *rand.Rand) float64
	Client       *http.Client
}

// RunClosedLoop executes the closed-loop test and returns the aggregated
// report.
func RunClosedLoop(ctx context.Context, cfg ClosedLoopConfig) (*Report, error) {
	if cfg.TargetURL == "" || cfg.Users <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: closed-loop config needs TargetURL, Users and Duration")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 120 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
		}
	}

	report := &Report{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(u)*7919))
			for time.Now().Before(deadline) {
				if ctx.Err() != nil {
					return
				}
				var svcHeader string
				if cfg.ServiceTimes != nil {
					svcHeader = strconv.FormatFloat(cfg.ServiceTimes(rng), 'g', -1, 64)
				}
				res := issue(ctx, client, cfg.TargetURL, svcHeader)
				inWarmup := time.Since(start) < cfg.Warmup

				mu.Lock()
				report.Issued++
				if !inWarmup {
					switch {
					case res.Err != nil:
						report.Errors++
						report.Failed++
					case res.Status != http.StatusOK:
						report.Failed++
					default:
						report.Succeeded++
						report.Latencies.Add(res.Latency.Seconds())
					}
				}
				mu.Unlock()

				if cfg.ThinkTime > 0 {
					think := time.Duration(rng.ExpFloat64() * float64(cfg.ThinkTime))
					select {
					case <-time.After(think):
					case <-ctx.Done():
						return
					}
				}
			}
		}(u)
	}
	wg.Wait()
	report.Duration = time.Since(start)
	return report, nil
}

// Throughput returns the achieved successful request rate.
func (r *Report) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Succeeded) / r.Duration.Seconds()
}
