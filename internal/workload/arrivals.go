// Package workload generates arrival processes and spatial partitions.
// It covers the paper's synthetic workloads (open-loop Poisson and
// general renewal arrivals at controlled rates, §4.2) and its
// trace-driven workloads (per-site rate envelopes with temporal and
// spatial skews, §4.5), plus the partitioners used to split an aggregate
// load across edge sites.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
)

// ArrivalProcess produces a monotone sequence of arrival times.
type ArrivalProcess interface {
	// Next returns the next arrival time after t, or ok=false when the
	// process is exhausted.
	Next(t float64, rng *rand.Rand) (next float64, ok bool)
	// Rate returns the nominal long-run arrival rate in req/s (0 if
	// undefined).
	Rate() float64
	// String describes the process.
	String() string
}

// Renewal is a renewal arrival process with the given inter-arrival
// distribution. With an exponential inter-arrival it is a Poisson
// process; with Erlang inter-arrivals it models the paced request
// streams produced by fixed-rate load generators.
type Renewal struct {
	Inter dist.Dist
}

// NewPoisson returns a Poisson arrival process at rate req/s.
func NewPoisson(rate float64) Renewal {
	return Renewal{Inter: dist.NewExponential(rate)}
}

// NewPaced returns a renewal process with Erlang-k inter-arrivals (SCV
// 1/k) at the given rate, modeling a load generator that spaces requests
// more regularly than Poisson, as Gatling's constant-rate injector does.
func NewPaced(rate float64, k int) Renewal {
	return Renewal{Inter: dist.NewErlang(k, 1/rate)}
}

// NewRenewal wraps an arbitrary inter-arrival distribution.
func NewRenewal(inter dist.Dist) Renewal { return Renewal{Inter: inter} }

// Next draws the next arrival.
func (r Renewal) Next(t float64, rng *rand.Rand) (float64, bool) {
	return t + r.Inter.Sample(rng), true
}

// Rate returns 1/E[inter-arrival].
func (r Renewal) Rate() float64 {
	m := r.Inter.Mean()
	if m <= 0 {
		return 0
	}
	return 1 / m
}

func (r Renewal) String() string { return fmt.Sprintf("Renewal(%s)", r.Inter) }

// SCV returns the squared CoV of the inter-arrival times.
func (r Renewal) SCV() float64 { return r.Inter.SCV() }

// MMPP is a two-state Markov-modulated Poisson process: it alternates
// between a low-rate and a high-rate Poisson regime with exponentially
// distributed sojourns, producing the bursty arrivals of Corollary 3.2.1.
// All draws flow through dist.Dist so the process shares the simulator's
// stochastic substrate.
type MMPP struct {
	RateLow, RateHigh float64
	MeanLow, MeanHigh float64 // mean sojourn in each state, seconds
	sojourn           [2]dist.Dist
	gap               [2]dist.Dist // nil where the regime rate is 0
	state             int          // 0 = low, 1 = high
	stateUntil        float64
	initialized       bool
}

// NewMMPP returns a two-state MMPP.
func NewMMPP(rateLow, rateHigh, meanLow, meanHigh float64) *MMPP {
	if rateLow < 0 || rateHigh <= 0 || meanLow <= 0 || meanHigh <= 0 {
		panic("workload: invalid MMPP parameters")
	}
	m := &MMPP{RateLow: rateLow, RateHigh: rateHigh, MeanLow: meanLow, MeanHigh: meanHigh}
	m.sojourn = [2]dist.Dist{dist.NewExponentialMean(meanLow), dist.NewExponentialMean(meanHigh)}
	if rateLow > 0 {
		m.gap[0] = dist.NewExponential(rateLow)
	}
	m.gap[1] = dist.NewExponential(rateHigh)
	return m
}

// Next draws the next arrival, advancing regime switches as needed.
func (m *MMPP) Next(t float64, rng *rand.Rand) (float64, bool) {
	if !m.initialized {
		if m.sojourn[0] == nil {
			// Constructed as a struct literal rather than via NewMMPP:
			// derive the sampling dists from the parameter fields
			// (invalid parameters panic in the dist constructors).
			m.sojourn = [2]dist.Dist{dist.NewExponentialMean(m.MeanLow), dist.NewExponentialMean(m.MeanHigh)}
			if m.RateLow > 0 {
				m.gap[0] = dist.NewExponential(m.RateLow)
			}
			m.gap[1] = dist.NewExponential(m.RateHigh)
		}
		m.state = 0
		m.stateUntil = t + m.sojourn[0].Sample(rng)
		m.initialized = true
	}
	for {
		var candidate float64
		if g := m.gap[m.state]; g != nil {
			candidate = t + g.Sample(rng)
		} else {
			candidate = math.Inf(1)
		}
		if candidate <= m.stateUntil {
			return candidate, true
		}
		// Regime switch before the candidate arrival: restart the clock
		// at the switch time (memorylessness makes this exact).
		t = m.stateUntil
		m.state = 1 - m.state
		m.stateUntil = t + m.sojourn[m.state].Sample(rng)
	}
}

// Rate returns the long-run average rate weighted by state occupancy.
func (m *MMPP) Rate() float64 {
	tot := m.MeanLow + m.MeanHigh
	return (m.RateLow*m.MeanLow + m.RateHigh*m.MeanHigh) / tot
}

func (m *MMPP) String() string {
	return fmt.Sprintf("MMPP(low=%g@%gs, high=%g@%gs)", m.RateLow, m.MeanLow, m.RateHigh, m.MeanHigh)
}

// NHPP is a nonhomogeneous Poisson process driven by a piecewise-constant
// rate envelope (rate[i] applies on [i·BinWidth, (i+1)·BinWidth)). It
// replays trace-derived request-rate series such as the Azure per-minute
// invocation counts. The process is exhausted after the envelope ends
// unless Cycle is true.
type NHPP struct {
	Rates    []float64
	BinWidth float64
	Cycle    bool
	// Piecewise switches Next from thinning to exact per-segment
	// simulation: draw an exponential gap at the current bin's own rate
	// and restart (memorylessly) at each bin boundary. One draw per
	// accepted arrival plus one per crossed bin, instead of one
	// rejection per unit of peak/local rate ratio — on spiky envelopes
	// (peak >> mean) this removes almost every draw. The process is
	// still exactly the envelope's NHPP, but it consumes the random
	// stream differently, so it is NOT sample-path-identical to the
	// thinning mode; the distributional KS suite gates it instead of
	// the bit-identity suite.
	Piecewise bool
	maxRate   float64
	gap       dist.Dist // exponential at maxRate, the thinning proposal
	thin      dist.Dist // uniform on [0, 1], the acceptance draw
}

// NewNHPP builds a nonhomogeneous Poisson process from a rate envelope.
func NewNHPP(rates []float64, binWidth float64, cycle bool) *NHPP {
	if len(rates) == 0 || binWidth <= 0 {
		panic("workload: NHPP needs a non-empty envelope and positive bin width")
	}
	p := &NHPP{Rates: append([]float64(nil), rates...), BinWidth: binWidth, Cycle: cycle}
	for _, r := range rates {
		if r < 0 {
			panic("workload: negative rate in NHPP envelope")
		}
		if r > p.maxRate {
			p.maxRate = r
		}
	}
	if p.maxRate > 0 {
		p.gap = dist.NewExponential(p.maxRate)
	}
	p.thin = dist.NewUniform(0, 1)
	return p
}

// Duration returns the envelope's span in seconds.
func (p *NHPP) Duration() float64 { return float64(len(p.Rates)) * p.BinWidth }

// rateAt returns the envelope rate at absolute time t.
func (p *NHPP) rateAt(t float64) (float64, bool) {
	if t < 0 {
		t = 0
	}
	d := p.Duration()
	if t >= d {
		if !p.Cycle {
			return 0, false
		}
		t = math.Mod(t, d)
	}
	idx := int(t / p.BinWidth)
	if idx >= len(p.Rates) {
		idx = len(p.Rates) - 1
	}
	return p.Rates[idx], true
}

// Next draws the next arrival — by thinning against the envelope
// maximum, or per-segment exact simulation when Piecewise is set.
func (p *NHPP) Next(t float64, rng *rand.Rand) (float64, bool) {
	if p.maxRate == 0 {
		return 0, false
	}
	if p.Piecewise {
		return p.nextPiecewise(t, rng)
	}
	for i := 0; i < 1_000_000; i++ {
		t += p.gap.Sample(rng)
		r, ok := p.rateAt(t)
		if !ok {
			return 0, false
		}
		if p.thin.Sample(rng) <= r/p.maxRate {
			return t, true
		}
	}
	return 0, false
}

// exp1 is the unit exponential every piecewise segment draw rescales —
// stateless, so one package value serves all goroutines.
var exp1 = dist.NewExponential(1)

// nextPiecewise simulates the envelope exactly, segment by segment: in
// a bin of rate r the gap to the next arrival is Exp(r); when the gap
// overshoots the bin boundary the clock restarts at the boundary
// (memorylessness makes the restart exact, the same argument MMPP's
// regime switches use), and zero-rate bins are skipped outright.
func (p *NHPP) nextPiecewise(t float64, rng *rand.Rand) (float64, bool) {
	if t < 0 {
		t = 0
	}
	d := p.Duration()
	for i := 0; i < 1_000_000; i++ {
		// Locate t's bin: phase within the (possibly cycled) envelope,
		// plus the absolute offset of the cycle it falls in.
		phase, base := t, 0.0
		if phase >= d {
			if !p.Cycle {
				return 0, false
			}
			base = math.Floor(phase/d) * d
			phase -= base
			if phase >= d { // float fuzz at an exact multiple of d
				base += d
				phase = 0
			}
		}
		idx := int(phase / p.BinWidth)
		if idx >= len(p.Rates) {
			idx = len(p.Rates) - 1
		}
		segEnd := base + float64(idx+1)*p.BinWidth
		if segEnd <= t {
			// Rounding pinned t at (or past) its own bin's end; nudge
			// forward so the loop always makes progress.
			t = math.Nextafter(t, math.Inf(1))
			continue
		}
		if r := p.Rates[idx]; r > 0 {
			if next := t + exp1.Sample(rng)/r; next < segEnd {
				return next, true
			}
		}
		t = segEnd
	}
	return 0, false
}

// Rate returns the envelope's time-average rate.
func (p *NHPP) Rate() float64 {
	var sum float64
	for _, r := range p.Rates {
		sum += r
	}
	return sum / float64(len(p.Rates))
}

func (p *NHPP) String() string {
	return fmt.Sprintf("NHPP(bins=%d, width=%gs, mean=%.2f req/s)", len(p.Rates), p.BinWidth, p.Rate())
}

// Trace replays an explicit list of arrival times (seconds, ascending).
type Trace struct {
	Times []float64
	idx   int
}

// NewTrace returns a replayer over the given arrival times. The slice is
// not copied; callers must not mutate it afterwards.
func NewTrace(times []float64) *Trace { return &Trace{Times: times} }

// Next returns the next recorded arrival strictly after t.
func (tr *Trace) Next(t float64, _ *rand.Rand) (float64, bool) {
	for tr.idx < len(tr.Times) {
		at := tr.Times[tr.idx]
		tr.idx++
		if at > t {
			return at, true
		}
	}
	return 0, false
}

// Rate returns the average rate over the trace span.
func (tr *Trace) Rate() float64 {
	n := len(tr.Times)
	if n < 2 {
		return 0
	}
	span := tr.Times[n-1] - tr.Times[0]
	if span <= 0 {
		return 0
	}
	return float64(n-1) / span
}

// Reset rewinds the trace to the beginning.
func (tr *Trace) Reset() { tr.idx = 0 }

func (tr *Trace) String() string { return fmt.Sprintf("Trace(n=%d)", len(tr.Times)) }
