package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
)

// Batch converts an epoch process into batch arrivals: at every epoch of
// the underlying process, Size requests arrive simultaneously. This
// models the paper's Gatling workload generator, which "each second ...
// randomly selects a set of images, based on the number of requests
// configured, and sends them" (§4.1) — a highly bursty arrival pattern
// at sub-second scale even though the per-second rate is constant.
type Batch struct {
	Epochs ArrivalProcess
	Size   int

	pending int
	epochT  float64
}

// NewBatch wraps epochs so each fires size simultaneous arrivals.
func NewBatch(epochs ArrivalProcess, size int) *Batch {
	if size <= 0 {
		panic(fmt.Sprintf("workload: batch size %d must be positive", size))
	}
	return &Batch{Epochs: epochs, Size: size}
}

// NewSecondBatches returns the paper's generator shape: every second, a
// batch of ratePerSecond requests.
func NewSecondBatches(ratePerSecond int) *Batch {
	return NewBatch(NewRenewal(dist.Deterministic{Value: 1}), ratePerSecond)
}

// Next emits the remaining members of the current batch at the epoch
// time, then advances the underlying epoch process.
func (b *Batch) Next(t float64, rng *rand.Rand) (float64, bool) {
	if b.pending > 0 {
		b.pending--
		return b.epochT, true
	}
	next, ok := b.Epochs.Next(t, rng)
	if !ok {
		return 0, false
	}
	b.epochT = next
	b.pending = b.Size - 1
	return next, true
}

// Rate returns Size times the epoch rate.
func (b *Batch) Rate() float64 { return float64(b.Size) * b.Epochs.Rate() }

func (b *Batch) String() string {
	return fmt.Sprintf("Batch(size=%d, epochs=%s)", b.Size, b.Epochs)
}
