package workload

// The piecewise NHPP mode is NOT sample-path-identical to thinning (it
// consumes the random stream differently), so the bit-identity suite
// cannot gate it. Instead this suite pins the distribution: conditioned
// on the count, NHPP arrival times are iid with CDF Λ(t)/Λ(D), so a
// one-sample Kolmogorov–Smirnov test against the envelope's cumulative
// rate checks the whole temporal profile at once, for both modes, and
// mean counts must match the envelope integral.

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// ksEnvelope is a spiky profile (peak/mean ≈ 20) — the regime the
// piecewise mode exists for, and exactly where a broken segment restart
// would distort the distribution most visibly.
var ksEnvelope = []float64{0.5, 0.5, 12, 0.5, 0, 3, 0.5, 8, 0.5, 0.5}

const ksBinWidth = 10.0

// cumulativeRate evaluates Λ(t) = ∫₀ᵗ λ(s) ds for the envelope.
func cumulativeRate(rates []float64, width, t float64) float64 {
	var cum float64
	for i, r := range rates {
		lo, hi := float64(i)*width, float64(i+1)*width
		if t <= lo {
			break
		}
		if t < hi {
			cum += r * (t - lo)
			break
		}
		cum += r * width
	}
	return cum
}

// collectArrivals pools arrival times over [0, horizon) across
// replications with independent streams. Conditioned on each
// replication's count the times are iid draws from Λ(t)/Λ(horizon), so
// the pool stays a valid KS sample.
func collectArrivals(t *testing.T, mk func() *NHPP, horizon float64, reps int, seed int64) []float64 {
	t.Helper()
	var all []float64
	for rep := 0; rep < reps; rep++ {
		p := mk()
		rng := rand.New(rand.NewSource(seed + int64(rep)))
		tt := 0.0
		for {
			next, ok := p.Next(tt, rng)
			if !ok || next >= horizon {
				break
			}
			if next <= tt {
				t.Fatalf("rep %d: arrival %v does not advance past %v", rep, next, tt)
			}
			tt = next
			all = append(all, next)
		}
	}
	if len(all) == 0 {
		t.Fatal("no arrivals collected; test is vacuous")
	}
	return all
}

// ksStatistic computes the one-sample KS distance of the samples
// against the envelope CDF Λ(t)/Λ(horizon).
func ksStatistic(samples []float64, rates []float64, width, horizon float64) float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	total := cumulativeRate(rates, width, horizon)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cumulativeRate(rates, width, x) / total
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// TestNHPPPiecewiseKSAgainstEnvelope: both generation modes pass a KS
// test against the envelope's cumulative-rate CDF. The threshold
// 1.95/√n corresponds to α ≈ 0.001 — conservative enough to be stable
// across seeds, tight enough that assigning arrivals to a neighboring
// bin or skipping the memoryless restart fails it immediately.
func TestNHPPPiecewiseKSAgainstEnvelope(t *testing.T) {
	horizon := float64(len(ksEnvelope)) * ksBinWidth
	for name, piecewise := range map[string]bool{"thinning": false, "piecewise": true} {
		t.Run(name, func(t *testing.T) {
			mk := func() *NHPP {
				p := NewNHPP(ksEnvelope, ksBinWidth, false)
				p.Piecewise = piecewise
				return p
			}
			samples := collectArrivals(t, mk, horizon, 40, 1000)
			d := ksStatistic(samples, ksEnvelope, ksBinWidth, horizon)
			if crit := 1.95 / math.Sqrt(float64(len(samples))); d > crit {
				t.Errorf("KS distance %.4f exceeds %.4f (n=%d)", d, crit, len(samples))
			}
		})
	}
}

// TestNHPPPiecewiseMeanCount: the piecewise mode's mean arrival count
// matches the envelope integral Λ(D) — and therefore the thinning
// mode's — within sampling error.
func TestNHPPPiecewiseMeanCount(t *testing.T) {
	horizon := float64(len(ksEnvelope)) * ksBinWidth
	want := cumulativeRate(ksEnvelope, ksBinWidth, horizon)
	counts := map[string]float64{}
	for name, piecewise := range map[string]bool{"thinning": false, "piecewise": true} {
		const reps = 60
		mk := func() *NHPP {
			p := NewNHPP(ksEnvelope, ksBinWidth, false)
			p.Piecewise = piecewise
			return p
		}
		n := len(collectArrivals(t, mk, horizon, reps, 2000))
		counts[name] = float64(n) / reps
		// Poisson(Λ) mean has sd √(Λ/reps); 4σ keeps seeds stable.
		if tol := 4 * math.Sqrt(want/reps); math.Abs(counts[name]-want) > tol {
			t.Errorf("%s mean count %.1f, envelope integral %.1f (tol %.1f)", name, counts[name], want, tol)
		}
	}
	if diff := math.Abs(counts["thinning"] - counts["piecewise"]); diff > 0.1*want {
		t.Errorf("modes disagree on mean count: thinning %.1f vs piecewise %.1f", counts["thinning"], counts["piecewise"])
	}
}

// TestNHPPPiecewiseZeroBins: no piecewise arrival may land in a
// zero-rate bin, and an all-zero envelope exhausts immediately.
func TestNHPPPiecewiseZeroBins(t *testing.T) {
	p := NewNHPP([]float64{6, 0, 6}, 10, false)
	p.Piecewise = true
	rng := rand.New(rand.NewSource(11))
	tt := 0.0
	for {
		next, ok := p.Next(tt, rng)
		if !ok {
			break
		}
		if next >= 10 && next < 20 {
			t.Fatalf("arrival at %v inside the zero-rate bin", next)
		}
		if next > 30 {
			t.Fatalf("arrival at %v past the envelope end", next)
		}
		tt = next
	}

	z := NewNHPP([]float64{0, 0}, 10, false)
	z.Piecewise = true
	if _, ok := z.Next(0, rng); ok {
		t.Error("all-zero piecewise envelope should produce no arrivals")
	}
}

// TestNHPPPiecewiseCycle: a cycling piecewise envelope keeps producing
// strictly increasing arrivals past the envelope end, and its per-cycle
// count stays near the envelope integral.
func TestNHPPPiecewiseCycle(t *testing.T) {
	p := NewNHPP([]float64{5, 0}, 10, true)
	p.Piecewise = true
	rng := rand.New(rand.NewSource(12))
	tt, n := 0.0, 0
	const cycles = 200
	for tt < 20*cycles {
		next, ok := p.Next(tt, rng)
		if !ok {
			t.Fatal("cycling piecewise NHPP should never exhaust")
		}
		if next <= tt {
			t.Fatalf("arrival %v does not advance past %v", next, tt)
		}
		if m := math.Mod(next, 20); m >= 10 {
			t.Fatalf("arrival at %v (phase %v) inside the zero-rate half-cycle", next, m)
		}
		tt = next
		n++
	}
	perCycle := float64(n) / cycles
	if math.Abs(perCycle-50) > 3 {
		t.Errorf("%.1f arrivals per cycle, want ~50", perCycle)
	}
}

// TestNHPPPiecewiseDeterministic: same seed, same sequence — the
// reproducibility contract every arrival process carries.
func TestNHPPPiecewiseDeterministic(t *testing.T) {
	seq := func(seed int64) []float64 {
		p := NewNHPP(ksEnvelope, ksBinWidth, false)
		p.Piecewise = true
		rng := rand.New(rand.NewSource(seed))
		var out []float64
		tt := 0.0
		for {
			next, ok := p.Next(tt, rng)
			if !ok {
				break
			}
			tt = next
			out = append(out, next)
		}
		return out
	}
	a, b := seq(9), seq(9)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("replays differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestNHPPPiecewiseFarFuture: Next called with t deep inside a later
// cycle locates the right segment (the base-offset arithmetic) instead
// of scanning from zero or misplacing the phase.
func TestNHPPPiecewiseFarFuture(t *testing.T) {
	p := NewNHPP([]float64{5, 0}, 10, true)
	p.Piecewise = true
	rng := rand.New(rand.NewSource(13))
	start := 1e6*20 + 3 // inside the active half of cycle 10⁶
	next, ok := p.Next(start, rng)
	if !ok {
		t.Fatal("cycling envelope exhausted")
	}
	if next <= start {
		t.Fatalf("arrival %v does not advance past %v", next, start)
	}
	if m := math.Mod(next, 20); m >= 10 {
		t.Fatalf("arrival at phase %v inside the zero-rate half-cycle", m)
	}
}
