package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Partitioner assigns a spatial weight to each of k edge sites; weights
// sum to 1. The paper studies uniform splits (§3.1) and skewed splits
// (§3.2, Figure 2).
type Partitioner interface {
	// Weights returns the per-site load fractions at time t (seconds),
	// allowing time-varying skew.
	Weights(t float64) []float64
	// Sites returns k.
	Sites() int
	// String describes the partitioner.
	String() string
}

// Uniform splits load equally: w_i = 1/k.
type Uniform struct{ K int }

// Weights returns k equal weights.
func (u Uniform) Weights(float64) []float64 {
	w := make([]float64, u.K)
	for i := range w {
		w[i] = 1 / float64(u.K)
	}
	return w
}

// Sites returns k.
func (u Uniform) Sites() int { return u.K }

func (u Uniform) String() string { return fmt.Sprintf("Uniform(k=%d)", u.K) }

// Static uses fixed arbitrary weights.
type Static struct{ W []float64 }

// NewStatic normalizes the given weights to sum to 1.
func NewStatic(weights []float64) Static {
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("workload: negative partition weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("workload: partition weights sum to zero")
	}
	out := make([]float64, len(weights))
	for i, w := range weights {
		out[i] = w / sum
	}
	return Static{W: out}
}

// Weights returns the fixed weights.
func (s Static) Weights(float64) []float64 { return append([]float64(nil), s.W...) }

// Sites returns the number of sites.
func (s Static) Sites() int { return len(s.W) }

func (s Static) String() string { return fmt.Sprintf("Static(k=%d)", len(s.W)) }

// Zipf splits load by a Zipf law: w_i ∝ 1/(i+1)^S. S=0 is uniform;
// larger S concentrates more load on the first sites, reproducing the
// heavy spatial skew of Figure 2.
func Zipf(k int, s float64) Static {
	if k <= 0 || s < 0 {
		panic("workload: Zipf needs k>0, s>=0")
	}
	w := make([]float64, k)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return NewStatic(w)
}

// Rotating cycles a base weight vector across sites with the given
// period, modeling diurnal load shifts where the "hot" site moves over
// time (paper §2.2: load shifts between day and night).
type Rotating struct {
	Base   Static
	Period float64 // seconds for a full rotation across all sites
}

// NewRotating returns a rotating partitioner.
func NewRotating(base Static, period float64) Rotating {
	if period <= 0 {
		panic("workload: rotation period must be positive")
	}
	return Rotating{Base: base, Period: period}
}

// Weights rotates the base weights by one site every Period/k seconds.
func (r Rotating) Weights(t float64) []float64 {
	k := r.Base.Sites()
	shift := int(math.Mod(t/r.Period, 1) * float64(k))
	w := make([]float64, k)
	for i := range w {
		w[i] = r.Base.W[(i+shift)%k]
	}
	return w
}

// Sites returns the number of sites.
func (r Rotating) Sites() int { return r.Base.Sites() }

func (r Rotating) String() string {
	return fmt.Sprintf("Rotating(%s, period=%gs)", r.Base, r.Period)
}

// PickSite samples a site index according to weights w (which must sum
// to ~1).
func PickSite(w []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for i, wi := range w {
		cum += wi
		if u <= cum {
			return i
		}
	}
	return len(w) - 1
}

// SplitRate partitions an aggregate rate λ into per-site rates using the
// partitioner at time t.
func SplitRate(p Partitioner, lambda, t float64) []float64 {
	w := p.Weights(t)
	rates := make([]float64, len(w))
	for i, wi := range w {
		rates[i] = lambda * wi
	}
	return rates
}

// SkewIndex summarizes a weight vector's imbalance as max weight divided
// by the uniform weight 1/k. 1.0 means perfectly balanced.
func SkewIndex(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var maxW float64
	for _, wi := range w {
		if wi > maxW {
			maxW = wi
		}
	}
	return maxW * float64(len(w))
}
