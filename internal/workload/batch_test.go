package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestBatchEmitsSizePerEpoch(t *testing.T) {
	b := NewSecondBatches(5)
	rng := rand.New(rand.NewSource(1))
	counts := map[float64]int{}
	tt := 0.0
	for i := 0; i < 20; i++ {
		next, ok := b.Next(tt, rng)
		if !ok {
			t.Fatal("batch exhausted unexpectedly")
		}
		counts[next]++
		tt = next
	}
	// 20 arrivals = 4 full epochs of 5.
	if len(counts) != 4 {
		t.Fatalf("arrival epochs = %v", counts)
	}
	for epoch, n := range counts {
		if n != 5 {
			t.Errorf("epoch %v got %d arrivals, want 5", epoch, n)
		}
	}
}

func TestBatchRate(t *testing.T) {
	b := NewSecondBatches(8)
	if math.Abs(b.Rate()-8) > 1e-9 {
		t.Errorf("batch rate = %v, want 8", b.Rate())
	}
	b2 := NewBatch(NewPoisson(2), 3)
	if math.Abs(b2.Rate()-6) > 1e-9 {
		t.Errorf("batch-over-Poisson rate = %v, want 6", b2.Rate())
	}
}

func TestBatchMonotoneNonDecreasing(t *testing.T) {
	b := NewBatch(NewPoisson(10), 4)
	rng := rand.New(rand.NewSource(2))
	tt := 0.0
	for i := 0; i < 400; i++ {
		next, ok := b.Next(tt, rng)
		if !ok {
			t.Fatal("exhausted")
		}
		if next < tt {
			t.Fatalf("time went backwards: %v -> %v", tt, next)
		}
		tt = next
	}
}

func TestBatchExhaustsWithFiniteEpochs(t *testing.T) {
	b := NewBatch(NewTrace([]float64{1, 2}), 3)
	rng := rand.New(rand.NewSource(3))
	n := 0
	tt := 0.0
	for {
		next, ok := b.Next(tt, rng)
		if !ok {
			break
		}
		tt = next
		n++
	}
	if n != 6 {
		t.Errorf("finite batch produced %d arrivals, want 6", n)
	}
}

func TestBatchPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("batch size 0 should panic")
		}
	}()
	NewBatch(NewPoisson(1), 0)
}

// TestBatchInterArrivalSCVExceedsPoisson: batching inflates the measured
// inter-arrival variability signal that drives Corollary 3.2.1 — here in
// the sense that batch arrivals create far larger instantaneous queue
// bursts than a smooth stream, visible as a bimodal inter-arrival
// distribution (0 within batches, 1s between).
func TestBatchInterArrivalStructure(t *testing.T) {
	b := NewSecondBatches(10)
	rng := rand.New(rand.NewSource(4))
	var zeros, gaps int
	prev := -1.0
	tt := 0.0
	for i := 0; i < 200; i++ {
		next, _ := b.Next(tt, rng)
		if prev >= 0 {
			if next == prev {
				zeros++
			} else {
				gaps++
			}
		}
		prev, tt = next, next
	}
	if zeros == 0 || gaps == 0 {
		t.Errorf("expected both intra-batch (0) and inter-batch gaps: zeros=%d gaps=%d", zeros, gaps)
	}
	if zeros < 8*gaps {
		t.Errorf("intra-batch arrivals should dominate: zeros=%d gaps=%d", zeros, gaps)
	}
}
