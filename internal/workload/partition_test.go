package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sumsToOne(w []float64) bool {
	var s float64
	for _, x := range w {
		if x < 0 {
			return false
		}
		s += x
	}
	return math.Abs(s-1) < 1e-9
}

func TestUniformWeights(t *testing.T) {
	u := Uniform{K: 5}
	w := u.Weights(0)
	if !sumsToOne(w) {
		t.Fatal("uniform weights must sum to 1")
	}
	for _, x := range w {
		if math.Abs(x-0.2) > 1e-12 {
			t.Fatalf("uniform weight = %v, want 0.2", x)
		}
	}
	if u.Sites() != 5 {
		t.Error("Sites wrong")
	}
}

func TestStaticNormalizes(t *testing.T) {
	s := NewStatic([]float64{2, 2, 4})
	w := s.Weights(0)
	want := []float64{0.25, 0.25, 0.5}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("weights = %v", w)
		}
	}
}

func TestStaticPanics(t *testing.T) {
	for _, in := range [][]float64{{-1, 2}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStatic(%v) should panic", in)
				}
			}()
			NewStatic(in)
		}()
	}
}

// TestZipfProperties: weights sum to 1, are decreasing, and higher s
// concentrates more mass on site 0.
func TestZipfProperties(t *testing.T) {
	f := func(kRaw, sRaw uint8) bool {
		k := 2 + int(kRaw%20)
		s := float64(sRaw%30) / 10
		z := Zipf(k, s)
		w := z.Weights(0)
		if !sumsToOne(w) {
			return false
		}
		for i := 1; i < len(w); i++ {
			if w[i] > w[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Zipf(5, 1.5).W[0] <= Zipf(5, 0.5).W[0] {
		t.Error("higher Zipf exponent should concentrate load")
	}
	if SkewIndex(Zipf(5, 0).W) != 1 {
		t.Error("Zipf(s=0) should be uniform")
	}
}

func TestRotatingShiftsWeights(t *testing.T) {
	base := NewStatic([]float64{4, 1, 1, 1, 1})
	r := NewRotating(base, 50) // one full rotation per 50 s → shift every 10 s
	w0 := r.Weights(0)
	w1 := r.Weights(10.1)
	if w0[0] != base.W[0] {
		t.Error("t=0 should be unshifted")
	}
	// After one shift, the hot weight moves to the previous index.
	if math.Abs(w1[4]-base.W[0]) > 1e-12 {
		t.Errorf("expected hot site to rotate, got %v", w1)
	}
	if !sumsToOne(w1) {
		t.Error("rotated weights must still sum to 1")
	}
	// A full period returns to the start.
	wFull := r.Weights(50)
	for i := range w0 {
		if math.Abs(wFull[i]-w0[i]) > 1e-12 {
			t.Fatalf("weights after a full period = %v, want %v", wFull, w0)
		}
	}
}

func TestPickSiteDistribution(t *testing.T) {
	w := []float64{0.7, 0.2, 0.1}
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[PickSite(w, rng)]++
	}
	for i, want := range w {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("site %d frequency = %v, want %v", i, got, want)
		}
	}
}

func TestSplitRate(t *testing.T) {
	rates := SplitRate(Uniform{K: 4}, 40, 0)
	for _, r := range rates {
		if math.Abs(r-10) > 1e-12 {
			t.Fatalf("split rates = %v", rates)
		}
	}
}

func TestSkewIndex(t *testing.T) {
	if got := SkewIndex([]float64{0.25, 0.25, 0.25, 0.25}); math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform skew index = %v, want 1", got)
	}
	if got := SkewIndex([]float64{0.7, 0.1, 0.1, 0.1}); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("skew index = %v, want 2.8", got)
	}
	if SkewIndex(nil) != 0 {
		t.Error("empty skew index should be 0")
	}
}
