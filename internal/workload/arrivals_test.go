package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

// measureRate counts arrivals of a process over a horizon.
func measureRate(p ArrivalProcess, horizon float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	t, n := 0.0, 0
	for {
		next, ok := p.Next(t, rng)
		if !ok || next > horizon {
			break
		}
		t = next
		n++
	}
	return float64(n) / horizon
}

func TestPoissonRate(t *testing.T) {
	p := NewPoisson(8)
	if got := measureRate(p, 5000, 1); math.Abs(got-8) > 0.3 {
		t.Errorf("Poisson rate = %v, want ~8", got)
	}
	if p.Rate() != 8 {
		t.Errorf("nominal rate = %v", p.Rate())
	}
}

func TestPacedRegularity(t *testing.T) {
	// Erlang-4 inter-arrivals have SCV 1/4: measure it.
	p := NewPaced(10, 4)
	rng := rand.New(rand.NewSource(2))
	var prev, sum, sum2 float64
	n := 0
	tt := 0.0
	for i := 0; i < 50000; i++ {
		next, _ := p.Next(tt, rng)
		if i > 0 {
			d := next - prev
			sum += d
			sum2 += d * d
			n++
		}
		prev, tt = next, next
	}
	mean := sum / float64(n)
	scv := sum2/float64(n)/(mean*mean) - 1
	if math.Abs(scv-0.25) > 0.03 {
		t.Errorf("paced SCV = %v, want 0.25", scv)
	}
	if math.Abs(mean-0.1) > 0.005 {
		t.Errorf("paced mean inter-arrival = %v, want 0.1", mean)
	}
}

// TestRenewalMonotone: arrival times strictly increase.
func TestRenewalMonotone(t *testing.T) {
	f := func(seed int64) bool {
		p := NewRenewal(dist.NewExponential(5))
		rng := rand.New(rand.NewSource(seed))
		tt := 0.0
		for i := 0; i < 100; i++ {
			next, ok := p.Next(tt, rng)
			if !ok || next <= tt {
				return false
			}
			tt = next
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMMPPRate(t *testing.T) {
	// Low 2/s for mean 10s, high 20/s for mean 10s → average 11/s.
	p := NewMMPP(2, 20, 10, 10)
	if got := p.Rate(); math.Abs(got-11) > 1e-9 {
		t.Errorf("MMPP nominal rate = %v, want 11", got)
	}
	if got := measureRate(p, 20000, 3); math.Abs(got-11) > 1 {
		t.Errorf("MMPP measured rate = %v, want ~11", got)
	}
}

func TestMMPPBurstierThanPoisson(t *testing.T) {
	// The MMPP's inter-arrival SCV must exceed 1.
	p := NewMMPP(1, 30, 5, 5)
	rng := rand.New(rand.NewSource(4))
	var prev float64
	var s, s2 float64
	n := 0
	tt := 0.0
	for i := 0; i < 40000; i++ {
		next, _ := p.Next(tt, rng)
		if i > 0 {
			d := next - prev
			s += d
			s2 += d * d
			n++
		}
		prev, tt = next, next
	}
	mean := s / float64(n)
	scv := s2/float64(n)/(mean*mean) - 1
	if scv <= 1.2 {
		t.Errorf("MMPP SCV = %v, want clearly > 1", scv)
	}
}

func TestNHPPEnvelope(t *testing.T) {
	// Rate 10 for 100 s then 0: expect ~1000 arrivals, none after t=100.
	p := NewNHPP([]float64{10, 0}, 100, false)
	rng := rand.New(rand.NewSource(5))
	tt, n := 0.0, 0
	last := 0.0
	for {
		next, ok := p.Next(tt, rng)
		if !ok {
			break
		}
		tt = next
		last = next
		n++
	}
	if math.Abs(float64(n)-1000) > 120 {
		t.Errorf("NHPP arrivals = %d, want ~1000", n)
	}
	if last > 100 {
		t.Errorf("arrival at %v after envelope's active bin", last)
	}
	if p.Duration() != 200 {
		t.Errorf("Duration = %v, want 200", p.Duration())
	}
	if math.Abs(p.Rate()-5) > 1e-9 {
		t.Errorf("average rate = %v, want 5", p.Rate())
	}
}

func TestNHPPCycle(t *testing.T) {
	p := NewNHPP([]float64{5}, 10, true)
	rng := rand.New(rand.NewSource(6))
	tt := 0.0
	for i := 0; i < 100; i++ {
		next, ok := p.Next(tt, rng)
		if !ok {
			t.Fatal("cycling NHPP should never exhaust")
		}
		tt = next
	}
	if tt < 10 {
		t.Errorf("cycling NHPP should pass the envelope end, got %v", tt)
	}
}

func TestNHPPZeroEnvelope(t *testing.T) {
	p := NewNHPP([]float64{0, 0}, 10, false)
	rng := rand.New(rand.NewSource(7))
	if _, ok := p.Next(0, rng); ok {
		t.Error("all-zero envelope should produce no arrivals")
	}
}

func TestTraceReplay(t *testing.T) {
	tr := NewTrace([]float64{1, 2, 3.5})
	rng := rand.New(rand.NewSource(1))
	var got []float64
	tt := 0.0
	for {
		next, ok := tr.Next(tt, rng)
		if !ok {
			break
		}
		got = append(got, next)
		tt = next
	}
	want := []float64{1, 2, 3.5}
	if len(got) != len(want) {
		t.Fatalf("replayed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}
	tr.Reset()
	if next, ok := tr.Next(0, rng); !ok || next != 1 {
		t.Error("Reset should rewind the trace")
	}
	if math.Abs(tr.Rate()-2/2.5) > 1e-9 {
		t.Errorf("trace rate = %v", tr.Rate())
	}
}

func TestTraceSkipsPast(t *testing.T) {
	tr := NewTrace([]float64{1, 2, 3})
	rng := rand.New(rand.NewSource(1))
	next, ok := tr.Next(2.5, rng)
	if !ok || next != 3 {
		t.Errorf("Next(2.5) = %v,%v want 3,true", next, ok)
	}
}

// TestMMPPStructLiteral: an MMPP built without NewMMPP must lazily
// derive its sampling distributions instead of nil-panicking.
func TestMMPPStructLiteral(t *testing.T) {
	p := &MMPP{RateLow: 1, RateHigh: 30, MeanLow: 5, MeanHigh: 5}
	rng := rand.New(rand.NewSource(4))
	t0, n := 0.0, 0
	for t0 < 2000 {
		next, ok := p.Next(t0, rng)
		if !ok {
			t.Fatal("MMPP exhausted")
		}
		t0 = next
		n++
	}
	rate := float64(n) / t0
	if want := p.Rate(); math.Abs(rate-want) > 0.2*want {
		t.Errorf("literal MMPP empirical rate %.2f, want ≈ %.2f", rate, want)
	}
}
