// Package asciiplot renders experiment results as terminal line charts,
// box-plot strips and aligned tables, and emits CSV so figures can be
// re-plotted with external tools. It is the output layer behind
// cmd/figures.
package asciiplot

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart renders multiple series on a shared canvas of the given
// dimensions. Each series is drawn with its own glyph; a legend follows.
func LineChart(w io.Writer, title string, series []Series, width, height int) {
	if width <= 10 {
		width = 70
	}
	if height <= 4 {
		height = 20
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Compute bounds across all finite points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if math.IsInf(s.Y[i], 0) || math.IsNaN(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	if minY == maxY {
		maxY = minY + 1
	}
	if minX == maxX {
		maxX = minX + 1
	}

	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if math.IsInf(s.Y[i], 0) || math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy
			canvas[row][cx] = g
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	for i, row := range canvas {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%10.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%10.3g", minY)
		case height / 2:
			label = fmt.Sprintf("%10.3g", (minY+maxY)/2)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(w, "%10s  %-10.4g%*s%10.4g\n", "", minX, width-18, "", maxX)
	for si, s := range series {
		fmt.Fprintf(w, "  %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
}

// Table renders rows with an aligned header. Cells are stringified with
// %v; float64 cells are formatted with 4 significant digits.
func Table(w io.Writer, header []string, rows [][]interface{}) {
	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, header)
	for _, r := range rows {
		row := make([]string, len(r))
		for i, c := range r {
			switch v := c.(type) {
			case float64:
				row[i] = strconv.FormatFloat(v, 'g', 4, 64)
			default:
				row[i] = fmt.Sprintf("%v", c)
			}
		}
		cells = append(cells, row)
	}
	widths := make([]int, len(header))
	for _, row := range cells {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range cells {
		for i, c := range row {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
		if ri == 0 {
			for _, wd := range widths {
				fmt.Fprint(w, strings.Repeat("-", wd), "  ")
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteSeriesCSV emits series as CSV with columns x,<name1>,<name2>,...
// Series must share the same X vector; mismatches return an error.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("asciiplot: no series")
	}
	n := len(series[0].X)
	for _, s := range series {
		if len(s.X) != n || len(s.Y) != n {
			return fmt.Errorf("asciiplot: series %q length mismatch", s.Name)
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"x"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatFloat(series[0].X[i], 'g', -1, 64)
		for j, s := range series {
			row[j+1] = strconv.FormatFloat(s.Y[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Heatmap renders a matrix of values as a shaded grid: one labeled
// row per Rows entry, one column per Cols entry, cells ramped from
// light to dark across the matrix's finite range. NaN cells render as
// "·". Values[r][c] is the cell at row r, column c.
func Heatmap(w io.Writer, title string, rows, cols []string, values [][]float64) {
	ramp := []byte(".:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range values {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo > hi {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	if lo == hi {
		hi = lo + 1
	}
	labelW := 0
	for _, r := range rows {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	colW := 3
	for _, c := range cols {
		if len(c) > colW {
			colW = len(c)
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-*s", labelW+1, "")
	for _, c := range cols {
		fmt.Fprintf(w, " %*s", colW, c)
	}
	fmt.Fprintln(w)
	for ri, r := range rows {
		fmt.Fprintf(w, "%-*s", labelW+1, r)
		for ci := range cols {
			cell := "·"
			if ri < len(values) && ci < len(values[ri]) {
				v := values[ri][ci]
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					k := int(math.Round((v - lo) / (hi - lo) * float64(len(ramp)-1)))
					cell = strings.Repeat(string(ramp[k]), 2)
				}
			}
			fmt.Fprintf(w, " %*s", colW, cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "scale: %c=%.4g … %c=%.4g\n", ramp[0], lo, ramp[len(ramp)-1], hi)
}

// BoxStrip renders a set of box plots as horizontal min──[Q1│med│Q3]──max
// strips on a shared scale.
type Box struct {
	Label                 string
	Min, Q1, Med, Q3, Max float64
}

// BoxStrips draws the boxes aligned to a common axis of the given width.
func BoxStrips(w io.Writer, title string, boxes []Box, width int) {
	if width < 20 {
		width = 60
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	if lo > hi {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	if lo == hi {
		hi = lo + 1
	}
	scale := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	labelW := 0
	for _, b := range boxes {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for _, b := range boxes {
		line := []byte(strings.Repeat(" ", width))
		for i := scale(b.Min); i <= scale(b.Max); i++ {
			line[i] = '-'
		}
		for i := scale(b.Q1); i <= scale(b.Q3); i++ {
			line[i] = '='
		}
		line[scale(b.Med)] = '|'
		fmt.Fprintf(w, "%-*s %s\n", labelW, b.Label, string(line))
	}
	fmt.Fprintf(w, "%-*s %-10.4g%*s%10.4g\n", labelW, "", lo, width-20, "", hi)
}
