package asciiplot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLineChartRendersSeries(t *testing.T) {
	var buf bytes.Buffer
	LineChart(&buf, "title", []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{30, 20, 10}},
	}, 40, 10)
	out := buf.String()
	if !strings.Contains(out, "title") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* = a") || !strings.Contains(out, "o = b") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("points missing")
	}
}

func TestLineChartEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	LineChart(&buf, "empty", nil, 40, 10)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart should say so")
	}
	buf.Reset()
	// Single constant point must not divide by zero.
	LineChart(&buf, "flat", []Series{{Name: "c", X: []float64{5}, Y: []float64{7}}}, 40, 10)
	if !strings.Contains(buf.String(), "*") {
		t.Error("single point should render")
	}
}

func TestLineChartSkipsInfNaN(t *testing.T) {
	var buf bytes.Buffer
	LineChart(&buf, "inf", []Series{{
		Name: "a",
		X:    []float64{1, 2, 3},
		Y:    []float64{1, math.Inf(1), math.NaN()},
	}}, 40, 8)
	if !strings.Contains(buf.String(), "*") {
		t.Error("finite points should still render")
	}
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, []string{"name", "value"}, [][]interface{}{
		{"alpha", 1.23456789},
		{"b", 42},
	})
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Error("header/rule malformed")
	}
	if !strings.Contains(out, "1.235") {
		t.Error("floats should use 4 significant digits")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, []Series{
		{Name: "edge", X: []float64{1, 2}, Y: []float64{0.5, 0.7}},
		{Name: "cloud", X: []float64{1, 2}, Y: []float64{0.6, 0.6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,edge,cloud\n1,0.5,0.6\n2,0.7,0.6\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteSeriesCSVErrors(t *testing.T) {
	if err := WriteSeriesCSV(&bytes.Buffer{}, nil); err == nil {
		t.Error("no series should error")
	}
	err := WriteSeriesCSV(&bytes.Buffer{}, []Series{
		{Name: "a", X: []float64{1}, Y: []float64{1}},
		{Name: "b", X: []float64{1, 2}, Y: []float64{1, 2}},
	})
	if err == nil {
		t.Error("mismatched series should error")
	}
}

func TestHeatmap(t *testing.T) {
	var buf bytes.Buffer
	Heatmap(&buf, "surface", []string{"b10 d1", "b10 d2"}, []string{"2", "8"},
		[][]float64{{-5, 10}, {math.NaN(), 0}})
	out := buf.String()
	if !strings.Contains(out, "surface") || !strings.Contains(out, "b10 d2") {
		t.Error("title or row labels missing")
	}
	if !strings.Contains(out, "..") || !strings.Contains(out, "@@") {
		t.Errorf("extreme cells should use the ramp ends:\n%s", out)
	}
	if !strings.Contains(out, "·") {
		t.Error("NaN cell should render as ·")
	}
	if !strings.Contains(out, "scale:") {
		t.Error("scale line missing")
	}
}

func TestHeatmapEmpty(t *testing.T) {
	var buf bytes.Buffer
	Heatmap(&buf, "none", nil, nil, nil)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty heatmap should say so")
	}
}

func TestBoxStrips(t *testing.T) {
	var buf bytes.Buffer
	BoxStrips(&buf, "boxes", []Box{
		{Label: "edge", Min: 0, Q1: 2, Med: 3, Q3: 4, Max: 10},
		{Label: "cloud", Min: 1, Q1: 2, Med: 2.5, Q3: 3, Max: 5},
	}, 40)
	out := buf.String()
	if !strings.Contains(out, "edge") || !strings.Contains(out, "cloud") {
		t.Error("labels missing")
	}
	if !strings.Contains(out, "=") || !strings.Contains(out, "|") {
		t.Error("box glyphs missing")
	}
}

func TestBoxStripsEmpty(t *testing.T) {
	var buf bytes.Buffer
	BoxStrips(&buf, "none", nil, 40)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty strip should say so")
	}
}

func TestBoxStripsDegenerateScale(t *testing.T) {
	var buf bytes.Buffer
	BoxStrips(&buf, "flat", []Box{{Label: "x", Min: 5, Q1: 5, Med: 5, Q3: 5, Max: 5}}, 40)
	if !strings.Contains(buf.String(), "x") {
		t.Error("degenerate box should still render")
	}
}
