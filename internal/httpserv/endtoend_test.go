package httpserv

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/loadgen"
	"repro/internal/netem"
	"repro/internal/workload"
)

// TestEndToEndTailInversionOverRealHTTP is the live counterpart of the
// simulator's Figure 5 test: three 1-worker edge "sites" (1 ms away)
// versus a 3-worker pooled cloud behind a least-connections proxy
// (25 ms away), driven open-loop at ρ=0.88 — past the analytic mean
// crossover, so both the mean and the p95 should invert despite the
// cloud's 24 ms network handicap: the paper's performance inversion
// observed over real sockets, real FCFS worker queues and injected
// RTTs.
func TestEndToEndTailInversionOverRealHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live experiment")
	}
	// Service: 50 ms mean ⇒ 20 req/s per worker capacity. The longer
	// service time keeps intended queueing far above host-scheduling
	// noise (CI machines may expose a single core).
	model := app.NewInferenceModelWith(0.050, app.DefaultServiceSCV)
	const sites = 3
	const perSiteRate = 17.6 // ρ = 0.88 per edge worker

	edgePath := netem.Constant("edge", 0.001)
	cloudPath := netem.Constant("cloud", 0.025)

	// Edge: one proxied server per site.
	var edgeURLs []string
	for i := 0; i < sites; i++ {
		srv := NewInferenceServer(model, 1, int64(100+i))
		back := httptest.NewServer(srv)
		t.Cleanup(back.Close)
		p, err := NewProxy([]string{back.URL}, PolicyRoundRobin, edgePath, int64(200+i))
		if err != nil {
			t.Fatal(err)
		}
		front := httptest.NewServer(p)
		t.Cleanup(front.Close)
		edgeURLs = append(edgeURLs, front.URL)
	}

	// Cloud: three workers behind one least-connections proxy. A single
	// InferenceServer with 3 workers is the M/M/3 pooled queue.
	cloudSrv := NewInferenceServer(model, sites, 300)
	cloudBack := httptest.NewServer(cloudSrv)
	t.Cleanup(cloudBack.Close)
	cp, err := NewProxy([]string{cloudBack.URL}, PolicyLeastConn, cloudPath, 301)
	if err != nil {
		t.Fatal(err)
	}
	cloudFront := httptest.NewServer(cp)
	t.Cleanup(cloudFront.Close)

	ctx := context.Background()
	duration := 10 * time.Second
	warmup := 2 * time.Second

	// Drive the edge sites concurrently.
	type out struct {
		rep *loadgen.Report
		err error
	}
	edgeCh := make(chan out, sites)
	for i, u := range edgeURLs {
		go func(i int, url string) {
			rep, err := loadgen.Run(ctx, loadgen.Config{
				TargetURL: url,
				Arrivals:  workload.NewPaced(perSiteRate, 3),
				Duration:  duration,
				Warmup:    warmup,
				Seed:      int64(400 + i),
			})
			edgeCh <- out{rep, err}
		}(i, u)
	}
	edge := &loadgen.Report{}
	for i := 0; i < sites; i++ {
		o := <-edgeCh
		if o.err != nil {
			t.Fatal(o.err)
		}
		edge.Latencies.Merge(&o.rep.Latencies)
		edge.Succeeded += o.rep.Succeeded
		edge.Failed += o.rep.Failed
	}

	cloud, err := loadgen.Run(ctx, loadgen.Config{
		TargetURL: cloudFront.URL,
		Arrivals:  workload.NewPaced(perSiteRate*sites, 3),
		Duration:  duration,
		Warmup:    warmup,
		Seed:      500,
	})
	if err != nil {
		t.Fatal(err)
	}

	if edge.Succeeded == 0 || cloud.Succeeded == 0 {
		t.Fatalf("no successes: edge %d cloud %d", edge.Succeeded, cloud.Succeeded)
	}
	edgeMean := edge.Latencies.Mean()
	cloudMean := cloud.Latencies.Mean()
	t.Logf("live: edge mean %.1fms p95 %.1fms | cloud mean %.1fms p95 %.1fms",
		edgeMean*1000, edge.Latencies.P95()*1000, cloudMean*1000, cloud.Latencies.P95()*1000)

	// At ρ=0.88 with 50 ms service the analytic queueing gap between
	// per-site M/G/1 and pooled M/G/3 (~60 ms) dwarfs the 24 ms network
	// gap: both tail and mean should invert, with slack for host noise.
	if edge.Latencies.P95() <= cloud.Latencies.P95() {
		t.Errorf("edge p95 %.1fms should exceed cloud p95 %.1fms (tail inversion)",
			edge.Latencies.P95()*1000, cloud.Latencies.P95()*1000)
	}
	if edgeMean+0.010 < cloudMean {
		t.Errorf("expected mean (near-)inversion: edge %.1fms vs cloud %.1fms",
			edgeMean*1000, cloudMean*1000)
	}
}
