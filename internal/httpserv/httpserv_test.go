package httpserv

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/netem"
)

func newTestServer(workers int) (*InferenceServer, *httptest.Server) {
	srv := NewInferenceServer(app.NewInferenceModelWith(0.010, 0.1), workers, 1)
	ts := httptest.NewServer(srv)
	return srv, ts
}

func get(t *testing.T, url, svcHeader string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if svcHeader != "" {
		req.Header.Set(ServiceTimeHeader, svcHeader)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestInferenceServerBasic(t *testing.T) {
	srv, ts := newTestServer(1)
	defer ts.Close()
	resp := get(t, ts.URL, "0.005")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) == 0 {
		t.Fatal("empty body")
	}
	if resp.Header.Get("X-Exec-Time") == "" || resp.Header.Get("X-Wait-Time") == "" {
		t.Error("timing headers missing")
	}
	if srv.Served() != 1 {
		t.Errorf("Served = %d", srv.Served())
	}
}

func TestInferenceServerHonorsServiceTime(t *testing.T) {
	_, ts := newTestServer(1)
	defer ts.Close()
	start := time.Now()
	resp := get(t, ts.URL, "0.060")
	resp.Body.Close()
	if d := time.Since(start); d < 55*time.Millisecond {
		t.Errorf("request returned after %v, want >= 60ms", d)
	}
	execS, err := strconv.ParseFloat(resp.Header.Get("X-Exec-Time"), 64)
	if err != nil || execS < 0.055 {
		t.Errorf("X-Exec-Time = %v", execS)
	}
}

func TestInferenceServerRejectsBadHeader(t *testing.T) {
	_, ts := newTestServer(1)
	defer ts.Close()
	for _, h := range []string{"abc", "-1"} {
		resp := get(t, ts.URL, h)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("header %q: status = %d, want 400", h, resp.StatusCode)
		}
	}
}

// TestFCFSQueueing: with one worker, two concurrent 50 ms requests must
// serialize — the second waits ~50 ms.
func TestFCFSQueueing(t *testing.T) {
	_, ts := newTestServer(1)
	defer ts.Close()
	start := time.Now()
	done := make(chan struct{})
	go func() {
		resp := get(t, ts.URL, "0.050")
		resp.Body.Close()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the first request occupy the worker
	resp := get(t, ts.URL, "0.050")
	resp.Body.Close()
	<-done
	wait, _ := strconv.ParseFloat(resp.Header.Get("X-Wait-Time"), 64)
	if time.Since(start) < 95*time.Millisecond {
		t.Error("two 50ms requests on one worker should take >= 100ms total")
	}
	if wait < 0.020 {
		t.Errorf("second request waited %.3fs, want >= 0.020", wait)
	}
}

// TestParallelWorkers: two workers execute two requests concurrently.
func TestParallelWorkers(t *testing.T) {
	_, ts := newTestServer(2)
	defer ts.Close()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := get(t, ts.URL, "0.050")
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if d := time.Since(start); d > 95*time.Millisecond {
		t.Errorf("two workers should parallelize: took %v", d)
	}
}

func TestQueueCapRejects(t *testing.T) {
	srv := NewInferenceServer(app.NewInferenceModelWith(0.010, 0), 1, 1)
	srv.QueueCap = 1
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := get(t, ts.URL, "0.100")
			resp.Body.Close()
			mu.Lock()
			codes[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if codes[http.StatusServiceUnavailable] == 0 {
		t.Errorf("expected 503s with QueueCap=1, got %v", codes)
	}
	if srv.Rejected() == 0 {
		t.Error("Rejected counter not incremented")
	}
}

func TestProxyRoundRobin(t *testing.T) {
	s1, t1 := newTestServer(1)
	defer t1.Close()
	s2, t2 := newTestServer(1)
	defer t2.Close()
	p, err := NewProxy([]string{t1.URL, t2.URL}, PolicyRoundRobin, netem.Path{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp := httptest.NewServer(p)
	defer tp.Close()
	for i := 0; i < 4; i++ {
		resp := get(t, tp.URL, "0.001")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if resp.Header.Get("X-Backend") == "" {
			t.Error("X-Backend header missing")
		}
	}
	if s1.Served() != 2 || s2.Served() != 2 {
		t.Errorf("round robin split %d/%d, want 2/2", s1.Served(), s2.Served())
	}
}

func TestProxyLeastConn(t *testing.T) {
	_, t1 := newTestServer(1)
	defer t1.Close()
	s2, t2 := newTestServer(1)
	defer t2.Close()
	p, err := NewProxy([]string{t1.URL, t2.URL}, PolicyLeastConn, netem.Path{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp := httptest.NewServer(p)
	defer tp.Close()

	// Occupy backend 1 with a slow request, then fire a fast one: it
	// must route to backend 2.
	done := make(chan struct{})
	go func() {
		resp := get(t, tp.URL, "0.200")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	resp := get(t, tp.URL, "0.001")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	<-done
	if s2.Served() == 0 {
		t.Error("least-conn should have routed the fast request to the idle backend")
	}
}

func TestProxyInjectsRTT(t *testing.T) {
	_, t1 := newTestServer(1)
	defer t1.Close()
	p, err := NewProxy([]string{t1.URL}, PolicyRoundRobin, netem.Constant("lan", 0.080), 1)
	if err != nil {
		t.Fatal(err)
	}
	tp := httptest.NewServer(p)
	defer tp.Close()
	start := time.Now()
	resp := get(t, tp.URL, "0.001")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 75*time.Millisecond {
		t.Errorf("RTT injection missing: request took %v, want >= 80ms", d)
	}
}

func TestProxyRandomPolicy(t *testing.T) {
	s1, t1 := newTestServer(1)
	defer t1.Close()
	s2, t2 := newTestServer(1)
	defer t2.Close()
	p, err := NewProxy([]string{t1.URL, t2.URL}, PolicyRandom, netem.Path{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tp := httptest.NewServer(p)
	defer tp.Close()
	for i := 0; i < 30; i++ {
		resp := get(t, tp.URL, "0.001")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if s1.Served() == 0 || s2.Served() == 0 {
		t.Errorf("random policy starved a backend: %d/%d", s1.Served(), s2.Served())
	}
}

func TestProxyErrors(t *testing.T) {
	if _, err := NewProxy(nil, PolicyRoundRobin, netem.Path{}, 1); err == nil {
		t.Error("empty backend list should error")
	}
	if _, err := NewProxy([]string{"http://\x7f"}, PolicyRoundRobin, netem.Path{}, 1); err == nil {
		t.Error("invalid URL should error")
	}
}

func TestProxyBadGateway(t *testing.T) {
	p, err := NewProxy([]string{"http://127.0.0.1:1"}, PolicyRoundRobin, netem.Path{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Client = &http.Client{Timeout: 300 * time.Millisecond}
	tp := httptest.NewServer(p)
	defer tp.Close()
	resp := get(t, tp.URL, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unreachable backend: status = %d, want 502", resp.StatusCode)
	}
}

func TestServerPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero workers should panic")
		}
	}()
	NewInferenceServer(app.NewInferenceModel(), 0, 1)
}

func BenchmarkInferenceServerThroughput(b *testing.B) {
	srv := NewInferenceServer(app.NewInferenceModelWith(0.0001, 0), 4, 1)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
			req.Header.Set(ServiceTimeHeader, "0.0001")
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}
