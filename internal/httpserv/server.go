// Package httpserv is the live substrate of the reproduction: a real
// net/http inference-service emulator with an explicit FCFS request
// queue and bounded worker pool (standing in for the paper's
// Keras/Flask DNN classifier on a c5a.xlarge), and an HAProxy-like
// reverse proxy that injects artificial region-to-region RTTs and
// balances load across backends. Together with internal/loadgen these
// let every simulated experiment also be run end to end over real
// sockets on localhost.
package httpserv

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/app"
)

// ServiceTimeHeader carries the requested execution time in seconds; if
// absent the server samples from its inference model. This mirrors the
// paper's trace replay, where each request carries an execution time
// sampled from the Azure distributions.
const ServiceTimeHeader = "X-Service-Time"

// queuedJob is one admitted request waiting for a worker.
type queuedJob struct {
	serviceTime time.Duration
	enqueued    time.Time
	done        chan jobResult
}

type jobResult struct {
	wait    time.Duration
	service time.Duration
}

// InferenceServer emulates one deployment unit: Workers concurrent
// executors behind a single FCFS queue, exactly the queueing model of
// the paper's Figure 1.
type InferenceServer struct {
	Model    app.InferenceModel
	Executor app.Executor
	Workers  int
	QueueCap int // maximum queued jobs before 503 (0 = unbounded-ish default)

	mu       sync.Mutex
	rng      *rand.Rand
	jobs     chan *queuedJob
	started  sync.Once
	inflight atomic.Int64
	served   atomic.Uint64
	rejected atomic.Uint64
}

// NewInferenceServer returns a server with the given worker count.
func NewInferenceServer(model app.InferenceModel, workers int, seed int64) *InferenceServer {
	if workers <= 0 {
		panic(fmt.Sprintf("httpserv: workers=%d invalid", workers))
	}
	return &InferenceServer{
		Model:    model,
		Executor: app.SleepExecutor{},
		Workers:  workers,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

func (s *InferenceServer) start() {
	cap := s.QueueCap
	if cap <= 0 {
		cap = 65536
	}
	s.jobs = make(chan *queuedJob, cap)
	for i := 0; i < s.Workers; i++ {
		go s.worker()
	}
}

func (s *InferenceServer) worker() {
	for job := range s.jobs {
		wait := time.Since(job.enqueued)
		start := time.Now()
		s.Executor.Execute(job.serviceTime)
		job.done <- jobResult{wait: wait, service: time.Since(start)}
	}
}

// ServeHTTP admits the request to the FCFS queue and replies with the
// classification result once a worker has executed it. The response
// reports the server-side wait and service times in headers for
// experiment analysis.
func (s *InferenceServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.started.Do(s.start)

	var serviceTime time.Duration
	if h := r.Header.Get(ServiceTimeHeader); h != "" {
		secs, err := strconv.ParseFloat(h, 64)
		if err != nil || secs < 0 {
			http.Error(w, "bad "+ServiceTimeHeader, http.StatusBadRequest)
			return
		}
		serviceTime = time.Duration(secs * float64(time.Second))
	} else {
		s.mu.Lock()
		secs := s.Model.SampleServiceTime(s.rng)
		s.mu.Unlock()
		serviceTime = time.Duration(secs * float64(time.Second))
	}

	job := &queuedJob{
		serviceTime: serviceTime,
		enqueued:    time.Now(),
		done:        make(chan jobResult, 1),
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	select {
	case s.jobs <- job:
	default:
		s.rejected.Add(1)
		http.Error(w, "queue full", http.StatusServiceUnavailable)
		return
	}

	select {
	case res := <-job.done:
		s.served.Add(1)
		w.Header().Set("X-Wait-Time", strconv.FormatFloat(res.wait.Seconds(), 'g', -1, 64))
		w.Header().Set("X-Exec-Time", strconv.FormatFloat(res.service.Seconds(), 'g', -1, 64))
		fmt.Fprintf(w, `{"class":"label-%d","wait_s":%g,"exec_s":%g}`,
			s.served.Load()%1000, res.wait.Seconds(), res.service.Seconds())
	case <-r.Context().Done():
		// Client gave up; the worker will still drain the job.
		http.Error(w, "client canceled", http.StatusRequestTimeout)
	}
}

// Inflight returns the number of requests currently queued or executing.
func (s *InferenceServer) Inflight() int64 { return s.inflight.Load() }

// Served returns the number of completed requests.
func (s *InferenceServer) Served() uint64 { return s.served.Load() }

// Rejected returns the number of requests refused with 503.
func (s *InferenceServer) Rejected() uint64 { return s.rejected.Load() }
