package httpserv

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netem"
)

// Backend is one proxied inference server.
type Backend struct {
	URL      *url.URL
	inflight atomic.Int64
	served   atomic.Uint64
}

// Inflight returns the proxy-observed outstanding requests at this
// backend, the signal least-connections routing uses (as HAProxy does).
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

// Served returns completed requests routed to this backend.
func (b *Backend) Served() uint64 { return b.served.Load() }

// Policy selects the proxy's balancing algorithm.
type Policy string

// Supported proxy policies.
const (
	PolicyRoundRobin Policy = "round-robin"
	PolicyLeastConn  Policy = "least-connections"
	PolicyRandom     Policy = "random"
)

// Proxy is an HAProxy-like HTTP load balancer with artificial network
// latency injection: every proxied request sleeps RTT/2 before being
// forwarded and RTT/2 before the response is returned, emulating the
// client→region→client path of the paper's EC2 deployments.
type Proxy struct {
	Backends []*Backend
	Policy   Policy
	Path     netem.Path // injected RTT model (zero value = no delay)
	Client   *http.Client

	mu   sync.Mutex
	rng  *rand.Rand
	next int
}

// NewProxy builds a proxy over backend base URLs (e.g.
// "http://127.0.0.1:9001").
func NewProxy(backendURLs []string, policy Policy, path netem.Path, seed int64) (*Proxy, error) {
	if len(backendURLs) == 0 {
		return nil, fmt.Errorf("httpserv: proxy needs at least one backend")
	}
	p := &Proxy{
		Policy: policy,
		Path:   path,
		Client: &http.Client{Timeout: 120 * time.Second},
		rng:    rand.New(rand.NewSource(seed)),
	}
	for _, raw := range backendURLs {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("httpserv: backend %q: %w", raw, err)
		}
		p.Backends = append(p.Backends, &Backend{URL: u})
	}
	return p, nil
}

// pick selects a backend under the configured policy.
func (p *Proxy) pick() *Backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.Policy {
	case PolicyLeastConn:
		best := p.Backends[0]
		for _, b := range p.Backends[1:] {
			if b.Inflight() < best.Inflight() {
				best = b
			}
		}
		return best
	case PolicyRandom:
		return p.Backends[p.rng.Intn(len(p.Backends))]
	default: // round robin
		b := p.Backends[p.next%len(p.Backends)]
		p.next++
		return b
	}
}

// sampleRTT draws an RTT from the path model (0 when unset).
func (p *Proxy) sampleRTT() time.Duration {
	if p.Path.RTT == nil {
		return 0
	}
	p.mu.Lock()
	rtt := p.Path.Sample(p.rng)
	p.mu.Unlock()
	return time.Duration(rtt * float64(time.Second))
}

// ServeHTTP forwards the request to a backend with injected latency.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rtt := p.sampleRTT()
	if rtt > 0 {
		time.Sleep(rtt / 2)
	}
	b := p.pick()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)

	out, err := http.NewRequestWithContext(r.Context(), r.Method, b.URL.ResolveReference(r.URL).String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	resp, err := p.Client.Do(out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if rtt > 0 {
		time.Sleep(rtt - rtt/2)
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Backend", b.URL.Host)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err == nil {
		b.served.Add(1)
	}
}
