package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSiteSeriesCSV writes per-site series as CSV with header
// "bin,site0,site1,...". All series must share bin count and width.
func WriteSiteSeriesCSV(w io.Writer, series []SiteSeries) error {
	if len(series) == 0 {
		return fmt.Errorf("trace: no series to write")
	}
	bins := len(series[0].Counts)
	for _, s := range series {
		if len(s.Counts) != bins {
			return fmt.Errorf("trace: series length mismatch: %d vs %d", len(s.Counts), bins)
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"bin"}
	for i := range series {
		header = append(header, fmt.Sprintf("site%d", i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for b := 0; b < bins; b++ {
		row[0] = strconv.Itoa(b)
		for i, s := range series {
			row[i+1] = strconv.FormatFloat(s.Counts[b], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSiteSeriesCSV parses the format produced by WriteSiteSeriesCSV.
// binWidth is attached to every decoded series (the CSV stores bin
// indices, not times).
func ReadSiteSeriesCSV(r io.Reader, binWidth float64) ([]SiteSeries, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("trace: CSV has no data rows")
	}
	nSites := len(rows[0]) - 1
	if nSites <= 0 {
		return nil, fmt.Errorf("trace: CSV header has no site columns")
	}
	series := make([]SiteSeries, nSites)
	for i := range series {
		series[i] = SiteSeries{Site: i, BinWidth: binWidth}
	}
	for rowIdx, row := range rows[1:] {
		if len(row) != nSites+1 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", rowIdx+2, len(row), nSites+1)
		}
		for i := 0; i < nSites; i++ {
			v, err := strconv.ParseFloat(row[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d col %d: %w", rowIdx+2, i+1, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("trace: row %d col %d: negative count %v", rowIdx+2, i+1, v)
			}
			series[i].Counts = append(series[i].Counts, v)
		}
	}
	return series, nil
}
