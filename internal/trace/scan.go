package trace

// lineScanner is the allocation-free substrate under the text decoders:
// it hands out one line at a time as byte slices into a reused buffer
// and splits them into comma fields in place, so a steady-state decode
// performs zero per-row heap allocations (encoding/csv costs 1–2 even
// with ReuseRecord). The price is a deliberately narrower dialect than
// encoding/csv — no quoting, no skipped blank lines — which matches
// what the package's own writers emit; anything else fails the field
// parsers, satisfying the decoders' error-never-panic contract.

import (
	"bufio"
	"io"
	"strconv"
	"unsafe"
)

type lineScanner struct {
	r      *bufio.Reader
	spill  []byte   // reused overflow for lines crossing the bufio window
	fields [][]byte // reused per-line field slices
	line   int      // 1-based number of the line scan last returned
	err    error    // sticky read error (never io.EOF)
}

func newLineScanner(r io.Reader) *lineScanner {
	return &lineScanner{r: bufio.NewReader(r)}
}

// scan returns the next line with its trailing newline (and any \r)
// stripped, sharing the reader's buffer whenever the line fits. ok is
// false at end of input or on a read error (recorded in err); a final
// line without a newline is still returned.
func (s *lineScanner) scan() ([]byte, bool) {
	line, err := s.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		s.spill = append(s.spill[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = s.r.ReadSlice('\n')
			s.spill = append(s.spill, line...)
		}
		line = s.spill
	}
	if err != nil && err != io.EOF {
		s.err = err
		return nil, false
	}
	if len(line) == 0 {
		return nil, false
	}
	s.line++
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
	}
	return line, true
}

// split breaks line into its comma-separated fields, reusing the
// scanner's field slice. The returned slices alias line and are only
// valid until the next scan.
func (s *lineScanner) split(line []byte) [][]byte {
	s.fields = s.fields[:0]
	for {
		i := 0
		for i < len(line) && line[i] != ',' {
			i++
		}
		s.fields = append(s.fields, line[:i])
		if i == len(line) {
			return s.fields
		}
		line = line[i+1:]
	}
}

// fieldString is a zero-copy string view of a scanned field, valid only
// until the next scan — callers hand it straight to strconv and never
// retain it (error messages re-copy via %q formatting, which is eager).
func fieldString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// parseFloatField parses a field as a float64 without allocating.
func parseFloatField(b []byte) (float64, error) {
	return strconv.ParseFloat(fieldString(b), 64)
}

// parseIntField parses a field as an int without allocating.
func parseIntField(b []byte) (int, error) {
	return strconv.Atoi(fieldString(b))
}
