package trace

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/cluster"
)

// The request-record interchange format: one request per row, times in
// seconds (nondecreasing), sites as 0-based integers, service times in
// seconds on the reference server. Floats are written with 'g'/-1
// precision, so a write→stream round trip is bit-exact.
var requestCSVHeader = []string{"time", "site", "service"}

// RequestSource streams cluster.RequestRecords decoded from an
// io.Reader one row at a time — a cluster.Source over a trace file that
// never holds more than the current row, so replay memory is
// independent of file length. Rows are scanned into a reused buffer and
// parsed with strconv directly (no encoding/csv), so the steady-state
// decode is allocation-free; the dialect is the plain unquoted one the
// package's writers emit. Decoding problems (malformed fields, time
// regressions, truncated rows) end the stream and are reported by Err;
// the source never panics and never silently drops rows.
type RequestSource struct {
	sc       *lineScanner
	err      error
	done     bool
	last     float64
	sites    int
	maxSites int
	n        uint64
}

// StreamRequestsCSV opens a streaming decoder over the request CSV
// format. The header row is consumed immediately; records are decoded
// lazily by Next. Callers must check Err after the source drains to
// distinguish end-of-file from a decode failure.
func StreamRequestsCSV(r io.Reader) *RequestSource {
	s := &RequestSource{sc: newLineScanner(r), last: math.Inf(-1)}
	line, ok := s.sc.scan()
	switch {
	case !ok && s.sc.err != nil:
		s.fail(fmt.Errorf("trace: request CSV header: %w", s.sc.err))
	case !ok:
		s.fail(fmt.Errorf("trace: request CSV is empty"))
	default:
		row := s.sc.split(line)
		bad := len(row) != len(requestCSVHeader)
		for i := range requestCSVHeader {
			if bad || !bytes.Equal(row[i], []byte(requestCSVHeader[i])) {
				bad = true
				break
			}
		}
		if bad {
			s.fail(fmt.Errorf("trace: request CSV header %q, want %v", line, requestCSVHeader))
		}
	}
	return s
}

// fail ends the stream with err.
func (s *RequestSource) fail(err error) {
	s.err = err
	s.done = true
}

// Next implements cluster.Source. After the first false it keeps
// returning false; check Err to learn whether the file ended cleanly.
func (s *RequestSource) Next() (cluster.RequestRecord, bool) {
	if s.done {
		return cluster.RequestRecord{}, false
	}
	lineBytes, ok := s.sc.scan()
	if !ok {
		s.done = true
		if s.sc.err != nil {
			s.err = fmt.Errorf("trace: request CSV: %w", s.sc.err)
		}
		return cluster.RequestRecord{}, false
	}
	line := s.sc.line
	row := s.sc.split(lineBytes)
	if len(row) != len(requestCSVHeader) {
		s.fail(fmt.Errorf("trace: request CSV line %d: %d fields, want %d",
			line, len(row), len(requestCSVHeader)))
		return cluster.RequestRecord{}, false
	}
	t, err := parseFloatField(row[0])
	if err != nil || t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		// Negative times are rejected outright: the replay engine
		// panics on events scheduled before time zero, and this decoder
		// must error instead of handing it one.
		s.fail(fmt.Errorf("trace: request CSV line %d: bad time %q", line, row[0]))
		return cluster.RequestRecord{}, false
	}
	if t < s.last {
		s.fail(fmt.Errorf("trace: request CSV line %d: time %v regresses below %v (rows must be nondecreasing)",
			line, t, s.last))
		return cluster.RequestRecord{}, false
	}
	site, err := parseIntField(row[1])
	if err != nil || site < 0 {
		s.fail(fmt.Errorf("trace: request CSV line %d: bad site %q", line, row[1]))
		return cluster.RequestRecord{}, false
	}
	if s.maxSites > 0 && site >= s.maxSites {
		s.fail(fmt.Errorf("trace: request CSV line %d: site %d outside the replay's %d sites",
			line, site, s.maxSites))
		return cluster.RequestRecord{}, false
	}
	svc, err := parseFloatField(row[2])
	if err != nil || svc < 0 || math.IsNaN(svc) || math.IsInf(svc, 0) {
		s.fail(fmt.Errorf("trace: request CSV line %d: bad service time %q", line, row[2]))
		return cluster.RequestRecord{}, false
	}
	s.last = t
	if site+1 > s.sites {
		s.sites = site + 1
	}
	s.n++
	return cluster.RequestRecord{Time: t, Site: site, ServiceTime: svc}, true
}

// Err returns the decode error that ended the stream, or nil after a
// clean end of file.
func (s *RequestSource) Err() error { return s.err }

// LimitSites makes the decoder error on records whose site id is >= n —
// set it to the replayed topology's home-site count so a trace/topology
// mismatch surfaces as a decode error from cluster.Run instead of a
// replay panic at the out-of-range record's arrival. 0 (the default)
// accepts any site id.
func (s *RequestSource) LimitSites(n int) { s.maxSites = n }

// Sites returns the number of sites observed so far (max site id + 1).
func (s *RequestSource) Sites() int { return s.sites }

// Count returns the number of records yielded so far.
func (s *RequestSource) Count() uint64 { return s.n }

// TimeScale wraps a source, multiplying every record's arrival time by
// factor while leaving sites and service demands untouched: replaying a
// fixed trace with factor < 1 compresses its timeline (the same work
// offered at a higher rate), factor > 1 stretches it. This is how the
// CLI sweeps a recorded trace across its rate axis — generator sweeps
// re-derive arrivals instead. The wrapper delegates Err, so a decode
// failure in the underlying source still surfaces. The factor must be
// positive and finite: zero or negative factors would collapse or
// reverse the timeline, breaking the nondecreasing-time contract every
// replay engine relies on, so they panic here instead of corrupting a
// replay downstream.
func TimeScale(src cluster.Source, factor float64) cluster.Source {
	if factor <= 0 || math.IsInf(factor, 1) || math.IsNaN(factor) {
		panic(fmt.Sprintf("trace: TimeScale factor %v (want positive and finite)", factor))
	}
	return &timeScaleSource{src: src, factor: factor}
}

type timeScaleSource struct {
	src    cluster.Source
	factor float64
}

// Next implements cluster.Source.
func (s *timeScaleSource) Next() (cluster.RequestRecord, bool) {
	rec, ok := s.src.Next()
	if !ok {
		return cluster.RequestRecord{}, false
	}
	rec.Time *= s.factor
	return rec, true
}

// Err implements cluster.FallibleSource by delegation.
func (s *timeScaleSource) Err() error {
	if fs, ok := s.src.(cluster.FallibleSource); ok {
		return fs.Err()
	}
	return nil
}

// ReadRequestsCSV materializes a request CSV into a WorkloadTrace — the
// slurping counterpart of StreamRequestsCSV, decoded through the same
// streaming path so the two agree record for record (the equivalence
// suite asserts it). Prefer the streaming decoder for replays too large
// to hold.
func ReadRequestsCSV(r io.Reader) (*cluster.WorkloadTrace, error) {
	src := StreamRequestsCSV(r)
	var recs []cluster.RequestRecord
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	// Build the trace directly rather than through FromRecords: the
	// decoder already enforces nondecreasing times, and the file's row
	// order — not FromRecords' (Time, Site) order, which would move
	// equal-time rows of different sites — is what the streaming path
	// yields, so slurped and streamed replays stay bit-identical.
	return &cluster.WorkloadTrace{Records: recs, Sites: src.Sites()}, nil
}

// WriteRequestsCSV writes every record of src in the request CSV
// format, returning the row count. Pair with cluster.Stream to export
// synthetic workloads as interchange files without materializing them.
// A source that ends on a decode failure (it exposes Err, like the
// streaming decoders) surfaces that error here, so a truncated export
// is never reported as success.
func WriteRequestsCSV(w io.Writer, src cluster.Source) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(requestCSVHeader); err != nil {
		return 0, err
	}
	row := make([]string, 3)
	n := 0
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		row[0] = strconv.FormatFloat(rec.Time, 'g', -1, 64)
		row[1] = strconv.Itoa(rec.Site)
		row[2] = strconv.FormatFloat(rec.ServiceTime, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return n, err
		}
		n++
	}
	if e, ok := src.(cluster.FallibleSource); ok {
		if err := e.Err(); err != nil {
			return n, fmt.Errorf("trace: source ended early: %w", err)
		}
	}
	cw.Flush()
	return n, cw.Error()
}
