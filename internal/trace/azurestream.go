package trace

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/merge"
)

// maxBinCount rejects absurd per-bin request counts before they
// overflow int arithmetic; real Azure bins are O(10³).
const maxBinCount = 1 << 40

// AzureStreamOptions parameterizes streaming record synthesis from an
// Azure-style per-bin invocation-count file (the WriteSiteSeriesCSV
// format: "bin,site0,site1,...").
type AzureStreamOptions struct {
	// BinWidth is the seconds each row spans (default 60, the Azure
	// dataset's per-minute resolution).
	BinWidth float64
	// Seed derives one service-time stream per site.
	Seed int64
	// Service is the execution-time distribution (default
	// ExecTimeDist(1/13, 1), the DNN model's mean with exponential-like
	// spread).
	Service dist.Dist
}

// AzureSource streams cluster.RequestRecords synthesized from a per-bin
// count file one row at a time: a row's counts become that bin's
// arrivals, evenly spaced inside the bin and merged across sites in
// (time, site) order, with service times drawn from per-site streams in
// emission order. Memory is O(sites) — one row of counts — regardless
// of file length, and the synthesis is deterministic for a given seed:
// streaming and slurped decodes agree record for record. Decode
// problems end the stream and are reported by Err; the source never
// panics and never silently drops rows.
type AzureSource struct {
	sc   *lineScanner
	opts AzureStreamOptions

	nSites int
	svcRng []*rand.Rand

	bin     int     // current row's bin index
	lastBin int     // last accepted bin index (-1 before the first row)
	counts  []int64 // current row's per-site counts (int64: a maxBinCount value must not overflow on 32-bit builds)
	emitted []int64 // arrivals yielded so far per site in this bin
	nextT   []float64
	// heap holds the indices of sites with arrivals left in the current
	// bin, min-ordered by (nextT, site) — O(log sites) per record where
	// a per-record scan would be O(sites).
	heap merge.Heap

	err  error
	done bool
	n    uint64
}

// StreamAzureCSV opens a streaming decoder over a per-bin count file.
// The header row is consumed immediately; rows are decoded as their
// bins are reached. Callers must check Err after the source drains.
func StreamAzureCSV(r io.Reader, opts AzureStreamOptions) *AzureSource {
	// Non-finite widths (NaN, ±Inf) would silently poison every arrival
	// time with NaN while Err stays nil; fall back to the per-minute
	// default alongside zero and negatives.
	if !(opts.BinWidth > 0) || math.IsInf(opts.BinWidth, 1) {
		opts.BinWidth = 60
	}
	if opts.Service == nil {
		opts.Service = ExecTimeDist(1.0/13, 1)
	}
	s := &AzureSource{sc: newLineScanner(r), opts: opts, lastBin: -1}
	line, ok := s.sc.scan()
	var row [][]byte
	if ok {
		row = s.sc.split(line)
	}
	switch {
	case !ok && s.sc.err != nil:
		s.fail(fmt.Errorf("trace: azure CSV header: %w", s.sc.err))
	case !ok:
		s.fail(fmt.Errorf("trace: azure CSV is empty"))
	case len(row) < 2 || !bytes.Equal(row[0], []byte("bin")):
		s.fail(fmt.Errorf("trace: azure CSV header %q, want \"bin,site0,...\"", line))
	default:
		s.nSites = len(row) - 1
		s.counts = make([]int64, s.nSites)
		s.emitted = make([]int64, s.nSites)
		s.nextT = make([]float64, s.nSites)
		s.heap.Less = func(a, b int) bool {
			if s.nextT[a] != s.nextT[b] {
				return s.nextT[a] < s.nextT[b]
			}
			return a < b
		}
		s.heap.Grow(s.nSites)
		// One service stream per site, seeded in site order from the
		// master stream — mirroring cluster.Generate's derivation
		// discipline so the synthesis is reproducible from Seed alone.
		master := rand.New(rand.NewSource(opts.Seed))
		s.svcRng = make([]*rand.Rand, s.nSites)
		for i := range s.svcRng {
			s.svcRng[i] = rand.New(rand.NewSource(master.Int63()))
		}
	}
	return s
}

func (s *AzureSource) fail(err error) {
	s.err = err
	s.done = true
}

// nextRow decodes the next data row into counts, returning false at a
// clean EOF or on error (recorded in err).
func (s *AzureSource) nextRow() bool {
	lineBytes, ok := s.sc.scan()
	if !ok {
		s.done = true
		if s.sc.err != nil {
			s.err = fmt.Errorf("trace: azure CSV: %w", s.sc.err)
		}
		return false
	}
	line := s.sc.line
	row := s.sc.split(lineBytes)
	if len(row) != s.nSites+1 {
		s.fail(fmt.Errorf("trace: azure CSV line %d: %d fields, want %d", line, len(row), s.nSites+1))
		return false
	}
	bin, err := parseIntField(row[0])
	if err != nil || bin < 0 {
		s.fail(fmt.Errorf("trace: azure CSV line %d: bad bin index %q", line, row[0]))
		return false
	}
	if bin <= s.lastBin {
		s.fail(fmt.Errorf("trace: azure CSV line %d: bin %d out of order after %d (bins must increase)",
			line, bin, s.lastBin))
		return false
	}
	for i := 0; i < s.nSites; i++ {
		v, err := parseFloatField(row[i+1])
		if err != nil || math.IsNaN(v) || v < 0 || v > maxBinCount {
			s.fail(fmt.Errorf("trace: azure CSV line %d: bad count %q for site %d", line, row[i+1], i))
			return false
		}
		s.counts[i] = int64(math.Round(v))
		s.emitted[i] = 0
	}
	s.bin = bin
	s.lastBin = bin
	s.heap.Reset()
	for i := 0; i < s.nSites; i++ {
		if s.counts[i] > 0 {
			s.nextT[i] = s.siteNext(i)
			s.heap.Push(i)
		}
	}
	return true
}

// siteNext returns site i's next arrival time within the current bin:
// count arrivals evenly spaced at (j+½)·width/count past the bin
// start. Only valid while emitted[i] < counts[i].
func (s *AzureSource) siteNext(i int) float64 {
	w := s.opts.BinWidth
	return float64(s.bin)*w + (float64(s.emitted[i])+0.5)*w/float64(s.counts[i])
}

// Next implements cluster.Source: the minimum (time, site) arrival of
// the current bin, refilling from the next row when the bin drains.
func (s *AzureSource) Next() (cluster.RequestRecord, bool) {
	for !s.done {
		if s.heap.Len() == 0 {
			if !s.nextRow() {
				break
			}
			continue
		}
		site := s.heap.Min()
		t := s.nextT[site]
		s.emitted[site]++
		if s.emitted[site] < s.counts[site] {
			s.nextT[site] = s.siteNext(site)
			s.heap.FixMin()
		} else {
			s.heap.PopMin()
		}
		s.n++
		return cluster.RequestRecord{
			Time:        t,
			Site:        site,
			ServiceTime: s.opts.Service.Sample(s.svcRng[site]),
		}, true
	}
	return cluster.RequestRecord{}, false
}

// Err returns the decode error that ended the stream, or nil after a
// clean end of file.
func (s *AzureSource) Err() error { return s.err }

// Sites returns the site count declared by the header.
func (s *AzureSource) Sites() int { return s.nSites }

// Count returns the number of records yielded so far.
func (s *AzureSource) Count() uint64 { return s.n }

// ReadAzureCSV materializes a per-bin count file into a WorkloadTrace
// through the same streaming decoder, so slurped and streamed replays
// are bit-identical.
func ReadAzureCSV(r io.Reader, opts AzureStreamOptions) (*cluster.WorkloadTrace, error) {
	src := StreamAzureCSV(r, opts)
	var recs []cluster.RequestRecord
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return &cluster.WorkloadTrace{Records: recs, Sites: src.Sites()}, nil
}
