package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netem"
)

// binaryFixtureSpec generates a workload with same-instant batch ties
// and multiple sites — the cases that stress delta encoding (zero
// deltas) and site varints.
func binaryFixtureSpec() cluster.GenSpec {
	return cluster.GenSpec{Sites: 5, Duration: 90, PerSiteRate: 7, Seed: 17}
}

// encodeBinary writes spec's trace to an in-memory .etb buffer.
func encodeBinary(t *testing.T, spec cluster.GenSpec) ([]byte, *cluster.WorkloadTrace) {
	t.Helper()
	want := cluster.Generate(spec)
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, cluster.Stream(spec))
	if err != nil {
		t.Fatal(err)
	}
	if n != want.Len() {
		t.Fatalf("wrote %d records, trace has %d", n, want.Len())
	}
	return buf.Bytes(), want
}

// TestBinaryRoundTrip: write→stream is the identity, bit for bit, and
// the slurping decoder agrees with the streaming one.
func TestBinaryRoundTrip(t *testing.T) {
	data, want := encodeBinary(t, binaryFixtureSpec())
	src := StreamBinary(bytes.NewReader(data))
	got := drain(t, src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != want.Len() {
		t.Fatalf("streamed %d records, want %d", len(got), want.Len())
	}
	for i, rec := range want.Records {
		if got[i] != rec {
			t.Fatalf("record %d diverges: streamed %+v, generated %+v", i, got[i], rec)
		}
	}
	if src.Sites() != want.Sites {
		t.Errorf("Sites() = %d, want %d", src.Sites(), want.Sites)
	}
	if src.Count() != uint64(want.Len()) {
		t.Errorf("Count() = %d, want %d", src.Count(), want.Len())
	}

	slurped, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if slurped.Len() != len(got) || slurped.Sites != want.Sites {
		t.Fatalf("slurped %d records/%d sites, want %d/%d",
			slurped.Len(), slurped.Sites, len(got), want.Sites)
	}
	for i := range got {
		if slurped.Records[i] != got[i] {
			t.Fatalf("slurped record %d diverges from streamed: %+v vs %+v",
				i, slurped.Records[i], got[i])
		}
	}
}

// TestBinaryMatchesCSV: the same source encoded through both formats
// decodes to identical records — the contract `edgesim -compile` relies
// on when it converts CSV traces to .etb.
func TestBinaryMatchesCSV(t *testing.T) {
	spec := binaryFixtureSpec()
	var csvBuf, etbBuf bytes.Buffer
	if _, err := WriteRequestsCSV(&csvBuf, cluster.Stream(spec)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBinary(&etbBuf, cluster.Stream(spec)); err != nil {
		t.Fatal(err)
	}
	fromCSV := drain(t, StreamRequestsCSV(bytes.NewReader(csvBuf.Bytes())))
	fromETB := drain(t, StreamBinary(bytes.NewReader(etbBuf.Bytes())))
	if len(fromCSV) != len(fromETB) {
		t.Fatalf("CSV decoded %d records, binary %d", len(fromCSV), len(fromETB))
	}
	for i := range fromCSV {
		if fromCSV[i] != fromETB[i] {
			t.Fatalf("record %d diverges across formats: csv %+v, etb %+v",
				i, fromCSV[i], fromETB[i])
		}
	}
	if etbBuf.Len() >= csvBuf.Len() {
		t.Errorf("binary trace (%d bytes) not smaller than CSV (%d bytes)",
			etbBuf.Len(), csvBuf.Len())
	}
}

// TestBinaryMultiBlock: a trace spanning several blocks round-trips —
// the delta chain and CRC framing must survive block boundaries.
func TestBinaryMultiBlock(t *testing.T) {
	spec := cluster.GenSpec{Sites: 4, Duration: 400, PerSiteRate: 8, Seed: 18}
	data, want := encodeBinary(t, spec)
	if want.Len() <= binaryBlockRecords {
		t.Fatalf("fixture has %d records, need > %d for a multi-block test",
			want.Len(), binaryBlockRecords)
	}
	got, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("decoded %d records, want %d", got.Len(), want.Len())
	}
	for i := range want.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d diverges: %+v vs %+v", i, got.Records[i], want.Records[i])
		}
	}
}

// TestBinaryTruncation: a .etb prefix cut at every length reports an
// error through Err — plain EOF is never a clean end, because the
// format carries an explicit end marker.
func TestBinaryTruncation(t *testing.T) {
	data, _ := encodeBinary(t, cluster.GenSpec{Sites: 2, Duration: 30, PerSiteRate: 5, Seed: 19})
	for cut := 0; cut < len(data); cut++ {
		src := StreamBinary(bytes.NewReader(data[:cut]))
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		if src.Err() == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(data))
		}
	}
}

// TestBinaryCorruption: flipping any single byte of a .etb file either
// fails the decode via Err or — never — silently changes records. (A
// flipped bit in a record field is caught by the block CRC; a flipped
// bit in the framing is caught by the structural checks.)
func TestBinaryCorruption(t *testing.T) {
	data, want := encodeBinary(t, cluster.GenSpec{Sites: 2, Duration: 20, PerSiteRate: 5, Seed: 20})
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x40
		src := StreamBinary(bytes.NewReader(corrupt))
		var got []cluster.RequestRecord
		for len(got) <= want.Len() {
			rec, ok := src.Next()
			if !ok {
				break
			}
			got = append(got, rec)
		}
		if src.Err() != nil {
			continue
		}
		// The flip decoded cleanly (e.g. inside a varint's redundant
		// encoding is impossible, but a flip may cancel out elsewhere —
		// then the records must be untouched).
		if len(got) != want.Len() {
			t.Fatalf("byte %d flipped: clean decode with %d records, want %d", i, len(got), want.Len())
		}
		for j := range got {
			if got[j] != want.Records[j] {
				t.Fatalf("byte %d flipped: clean decode with altered record %d: %+v vs %+v",
					i, j, got[j], want.Records[j])
			}
		}
	}
}

// TestBinaryTrailingGarbage: bytes after the end marker are an error,
// not ignored.
func TestBinaryTrailingGarbage(t *testing.T) {
	data, _ := encodeBinary(t, cluster.GenSpec{Sites: 2, Duration: 10, PerSiteRate: 3, Seed: 21})
	src := StreamBinary(bytes.NewReader(append(append([]byte(nil), data...), 0xFF)))
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if src.Err() == nil {
		t.Error("trailing garbage after the end marker decoded without error")
	}
}

// TestBinaryHeaderErrors: wrong magic, wrong version and empty input
// all fail fast with a decode error.
func TestBinaryHeaderErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"short-magic":   []byte("ET"),
		"wrong-magic":   []byte("NOPE\x01\x00"),
		"csv-input":     []byte("time,site,service\n1,0,0.1\n"),
		"wrong-version": []byte("ETB1\x02\x00"),
		"no-version":    []byte("ETB1"),
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			src := StreamBinary(bytes.NewReader(in))
			if _, ok := src.Next(); ok {
				t.Error("bad header yielded a record")
			}
			if src.Err() == nil {
				t.Errorf("input %q decoded without error", in)
			}
		})
	}
}

// TestBinaryEmptyTrace: zero records is a legal file — header plus end
// marker — and decodes cleanly to nothing.
func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, StreamRequestsCSV(strings.NewReader("time,site,service\n")))
	if err != nil || n != 0 {
		t.Fatalf("empty write: n=%d err=%v", n, err)
	}
	src := StreamBinary(bytes.NewReader(buf.Bytes()))
	if _, ok := src.Next(); ok {
		t.Error("empty trace yielded a record")
	}
	if err := src.Err(); err != nil {
		t.Errorf("empty trace decode error: %v", err)
	}
}

// TestWriteBinaryRejectsInvalid: the writer refuses records the decoder
// would have to reject — regressing times, negative or non-finite
// fields — and propagates source decode failures.
func TestWriteBinaryRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"regression":       "time,site,service\n2,0,0.1\n1,0,0.1\n",
		"corrupt-mid-file": "time,site,service\n1,0,0.1\n2,0,broken\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := WriteBinary(&buf, StreamRequestsCSV(strings.NewReader(in))); err == nil {
				t.Error("invalid source encoded without error")
			}
		})
	}
}

// TestBinaryLimitSites: the site-limit guard turns a trace/topology
// mismatch into a decode error, exactly like the CSV decoder's.
func TestBinaryLimitSites(t *testing.T) {
	data, _ := encodeBinary(t, binaryFixtureSpec()) // 5 sites
	src := StreamBinary(bytes.NewReader(data))
	src.LimitSites(3)
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if src.Err() == nil {
		t.Error("site 3+ records decoded under LimitSites(3) without error")
	}
}

// TestBinaryThroughTopology: a topology replay fed by the binary
// decoder is bit-identical to one fed by the CSV decoder of the same
// workload — the end-to-end contract of `-compile` + `-trace`.
func TestBinaryThroughTopology(t *testing.T) {
	spec := binaryFixtureSpec()
	var csvBuf, etbBuf bytes.Buffer
	if _, err := WriteRequestsCSV(&csvBuf, cluster.Stream(spec)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBinary(&etbBuf, cluster.Stream(spec)); err != nil {
		t.Fatal(err)
	}
	topo := cluster.EdgeTopology(cluster.EdgeConfig{Sites: spec.Sites, ServersPerSite: 2,
		Path: netem.EdgePath})
	run := func(src cluster.Source) *cluster.TopologyResult {
		res, err := cluster.Run(src, topo, cluster.Options{Warmup: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(StreamRequestsCSV(bytes.NewReader(csvBuf.Bytes())))
	got := run(StreamBinary(bytes.NewReader(etbBuf.Bytes())))
	if got.Offered != want.Offered || got.Completed != want.Completed ||
		got.EndToEnd.Mean() != want.EndToEnd.Mean() ||
		got.EndToEnd.P95() != want.EndToEnd.P95() {
		t.Errorf("binary-fed replay diverges from CSV-fed: offered %d/%d mean %v/%v",
			got.Offered, want.Offered, got.EndToEnd.Mean(), want.EndToEnd.Mean())
	}
}
