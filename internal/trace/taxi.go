package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// TaxiSpec parameterizes the synthetic vehicular-mobility workload that
// substitutes for the CRAWDAD San Francisco taxi GPS traces behind the
// paper's Figure 2. Vehicles move over a hexagonal cell grid (1 km
// radius cells in the paper); a handful of hotspot cells attract traffic
// with gravity weights, and attraction follows a diurnal cycle.
type TaxiSpec struct {
	GridW, GridH int     // hex grid dimensions (cells)
	Vehicles     int     // number of simulated vehicles
	Hours        float64 // simulated duration
	StepMinutes  float64 // sampling interval
	Hotspots     int     // number of high-gravity cells
	HotspotPull  float64 // probability a moving vehicle heads to a hotspot
	Seed         int64
}

// DefaultTaxiSpec approximates the paper's setting: ~500 taxis over a
// city-scale grid sampled for a day.
func DefaultTaxiSpec() TaxiSpec {
	return TaxiSpec{
		GridW: 8, GridH: 8,
		Vehicles:    500,
		Hours:       24,
		StepMinutes: 10,
		Hotspots:    5,
		HotspotPull: 0.7,
		Seed:        7,
	}
}

// CellLoad is the time series of vehicle counts observed in one cell.
type CellLoad struct {
	Cell   int
	Counts []int
}

// TaxiCellLoads simulates vehicle mobility and returns per-cell load
// series. Each vehicle performs a biased random walk: with probability
// HotspotPull it steps toward the nearest hotspot (whose attractiveness
// is modulated by a diurnal sine), otherwise it moves to a uniformly
// random neighboring cell.
func TaxiCellLoads(spec TaxiSpec) []CellLoad {
	if spec.GridW <= 0 || spec.GridH <= 0 || spec.Vehicles <= 0 {
		panic(fmt.Sprintf("trace: invalid TaxiSpec %+v", spec))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	cells := spec.GridW * spec.GridH
	steps := int(spec.Hours * 60 / spec.StepMinutes)
	if steps <= 0 {
		panic("trace: TaxiSpec duration too short")
	}

	// Place hotspots at distinct random cells.
	hotspots := make([]int, 0, spec.Hotspots)
	taken := make(map[int]bool)
	for len(hotspots) < spec.Hotspots {
		c := rng.Intn(cells)
		if !taken[c] {
			taken[c] = true
			hotspots = append(hotspots, c)
		}
	}

	// Initialize vehicle positions uniformly.
	pos := make([]int, spec.Vehicles)
	for i := range pos {
		pos[i] = rng.Intn(cells)
	}

	loads := make([]CellLoad, cells)
	for c := range loads {
		loads[c] = CellLoad{Cell: c, Counts: make([]int, steps)}
	}

	for t := 0; t < steps; t++ {
		// Diurnal modulation: hotspots pull hardest mid-day.
		hour := float64(t) * spec.StepMinutes / 60
		diurnal := 0.5 + 0.5*math.Sin((hour-6)/24*2*math.Pi)
		pull := spec.HotspotPull * diurnal

		for v := range pos {
			if rng.Float64() < pull {
				// Step toward the nearest hotspot.
				h := nearestHotspot(pos[v], hotspots, spec.GridW)
				pos[v] = stepToward(pos[v], h, spec.GridW, spec.GridH)
			} else {
				pos[v] = randomNeighbor(pos[v], spec.GridW, spec.GridH, rng)
			}
		}
		for _, p := range pos {
			loads[p].Counts[t]++
		}
	}
	return loads
}

func cellXY(c, w int) (int, int) { return c % w, c / w }

func xyCell(x, y, w int) int { return y*w + x }

func nearestHotspot(c int, hotspots []int, w int) int {
	cx, cy := cellXY(c, w)
	best, bestD := hotspots[0], math.MaxInt32
	for _, h := range hotspots {
		hx, hy := cellXY(h, w)
		d := abs(hx-cx) + abs(hy-cy)
		if d < bestD {
			best, bestD = h, d
		}
	}
	return best
}

func stepToward(c, target, w, h int) int {
	cx, cy := cellXY(c, w)
	tx, ty := cellXY(target, w)
	switch {
	case tx > cx:
		cx++
	case tx < cx:
		cx--
	case ty > cy:
		cy++
	case ty < cy:
		cy--
	}
	return clampCell(cx, cy, w, h)
}

func randomNeighbor(c, w, h int, rng *rand.Rand) int {
	cx, cy := cellXY(c, w)
	switch rng.Intn(5) {
	case 0:
		cx++
	case 1:
		cx--
	case 2:
		cy++
	case 3:
		cy--
	}
	return clampCell(cx, cy, w, h)
}

func clampCell(x, y, w, h int) int {
	if x < 0 {
		x = 0
	}
	if x >= w {
		x = w - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= h {
		y = h - 1
	}
	return xyCell(x, y, w)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CellBoxPlots summarizes each cell's load series as a box plot, ordered
// by descending median — the format of Figure 2.
func CellBoxPlots(loads []CellLoad) []stats.BoxPlot {
	out := make([]stats.BoxPlot, 0, len(loads))
	for _, l := range loads {
		s := stats.NewSample(len(l.Counts))
		for _, c := range l.Counts {
			s.Add(float64(c))
		}
		out = append(out, stats.BoxPlotOf(fmt.Sprintf("cell-%d", l.Cell), s))
	}
	// Sort by descending median (insertion sort keeps this dependency-free).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Median > out[j-1].Median; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
