package trace

// Fuzz harnesses for the streaming decoders: arbitrary bytes must
// never panic, never yield a time-regressed or invalid record, and
// must either decode cleanly or report an error through Err — the
// "error, never panic or silently drop" contract the replay runners
// rely on (a regressed record reaching the feeder would panic the
// simulation). Without -fuzz these run the seed corpus as unit tests.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cluster"
)

// fuzzDrainLimit bounds how many records a harness pulls, so inputs
// describing astronomically many arrivals (a huge per-bin count) stay
// cheap: laziness means undrained records cost nothing.
const fuzzDrainLimit = 1 << 14

func FuzzStreamRequestsCSV(f *testing.F) {
	f.Add([]byte("time,site,service\n0.5,0,0.07\n1.25,2,0.08\n1.25,2,0.01\n"))
	f.Add([]byte("time,site,service\n"))
	f.Add([]byte("time,site,service\n2,0,0.1\n1,0,0.1\n"))   // regression
	f.Add([]byte("time,site,service\n1,0\n"))                // short row
	f.Add([]byte("time,site,service\n1,0,\"0.1\n"))          // truncated quote
	f.Add([]byte("time,site,service\nNaN,-1,+Inf\n"))        // non-finite
	f.Add([]byte("time,site,service\n-1,0,0.1\n"))           // negative time
	f.Add([]byte("wrong,header,here\n1,0,0.1\n"))            // bad header
	f.Add([]byte("time,site,service\n1e308,0,1e308\n2,0,1")) // extremes then regression
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := StreamRequestsCSV(bytes.NewReader(data))
		last := math.Inf(-1)
		n := 0
		for n < fuzzDrainLimit {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if rec.Time < last {
				t.Fatalf("yielded time regression: %v after %v", rec.Time, last)
			}
			if rec.Time < 0 || math.IsNaN(rec.Time) || math.IsInf(rec.Time, 0) ||
				rec.Site < 0 || rec.ServiceTime < 0 ||
				math.IsNaN(rec.ServiceTime) || math.IsInf(rec.ServiceTime, 0) {
				t.Fatalf("yielded invalid record %+v", rec)
			}
			last = rec.Time
			n++
		}
		if n < fuzzDrainLimit {
			// Fully drained: an ended source must stay ended, whether the
			// end was clean (Err nil) or a decode failure (Err set).
			if _, ok := src.Next(); ok {
				t.Fatal("ended source yielded another record")
			}
			// A clean decode must agree with the slurping counterpart.
			if src.Err() == nil {
				tr, err := ReadRequestsCSV(bytes.NewReader(data))
				if err != nil {
					t.Fatalf("streamed decode clean but slurped decode failed: %v", err)
				}
				if tr.Len() != n {
					t.Fatalf("slurped %d records, streamed %d", tr.Len(), n)
				}
			}
		}
	})
}

func FuzzStreamAzureCSV(f *testing.F) {
	f.Add([]byte("bin,site0,site1\n0,3,1\n1,0,2\n"))
	f.Add([]byte("bin,site0\n1,1\n0,2\n"))      // bin regression
	f.Add([]byte("bin,site0\n0,1e30\n"))        // absurd count
	f.Add([]byte("bin,site0,site1\n0,1\n"))     // short row
	f.Add([]byte("bin,site0\n0,\"1\n"))         // truncated quote
	f.Add([]byte("bin,site0\n-1,-5\n"))         // negative everything
	f.Add([]byte("bin,site0\n0,NaN\n"))         // non-finite count
	f.Add([]byte("bin,site0\n0,0\n5,0\n9,4\n")) // gaps and empty bins
	f.Add([]byte("nope\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := StreamAzureCSV(bytes.NewReader(data), AzureStreamOptions{BinWidth: 60, Seed: 3})
		last := math.Inf(-1)
		n := 0
		for n < fuzzDrainLimit {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if rec.Time < last {
				t.Fatalf("yielded time regression: %v after %v", rec.Time, last)
			}
			if rec.Time < 0 || math.IsNaN(rec.Time) || math.IsInf(rec.Time, 0) ||
				rec.Site < 0 || rec.Site >= src.Sites() || rec.ServiceTime < 0 {
				t.Fatalf("yielded invalid record %+v", rec)
			}
			last = rec.Time
			n++
		}
		if n < fuzzDrainLimit {
			if _, ok := src.Next(); ok {
				t.Fatal("ended source yielded another record")
			}
			if src.Err() == nil {
				tr, err := ReadAzureCSV(bytes.NewReader(data), AzureStreamOptions{BinWidth: 60, Seed: 3})
				if err != nil {
					t.Fatalf("streamed decode clean but slurped decode failed: %v", err)
				}
				if tr.Len() != n {
					t.Fatalf("slurped %d records, streamed %d", tr.Len(), n)
				}
			}
		}
	})
}

// fuzzBinarySeed encodes a small generated workload so the corpus
// contains at least one fully valid .etb stream for the mutator to
// start from.
func fuzzBinarySeed() []byte {
	var buf bytes.Buffer
	_, err := WriteBinary(&buf, cluster.Stream(cluster.GenSpec{
		Sites: 3, Duration: 40, PerSiteRate: 5, Seed: 77,
	}))
	if err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzStreamBinary(f *testing.F) {
	valid := fuzzBinarySeed()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])           // truncated mid-stream
	f.Add(valid[:len(BinaryMagic)+1])     // header only
	f.Add(append([]byte{}, valid[4:]...)) // magic stripped
	f.Add([]byte("ETB1\x01\x00"))         // empty but well-formed
	f.Add([]byte("ETB1\x02\x00"))         // future version
	f.Add([]byte("ETB1\x01\x05\x00"))     // block claiming records, no payload
	f.Add([]byte("time,site,service\n1,0,0.1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := StreamBinary(bytes.NewReader(data))
		last := math.Inf(-1)
		n := 0
		for n < fuzzDrainLimit {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if rec.Time < last {
				t.Fatalf("yielded time regression: %v after %v", rec.Time, last)
			}
			if rec.Time < 0 || math.IsNaN(rec.Time) || math.IsInf(rec.Time, 0) ||
				rec.Site < 0 || rec.ServiceTime < 0 ||
				math.IsNaN(rec.ServiceTime) || math.IsInf(rec.ServiceTime, 0) {
				t.Fatalf("yielded invalid record %+v", rec)
			}
			last = rec.Time
			n++
		}
		if n < fuzzDrainLimit {
			if _, ok := src.Next(); ok {
				t.Fatal("ended source yielded another record")
			}
			if src.Err() == nil {
				// A clean decode must agree with the slurping counterpart
				// AND re-encode to a stream that round-trips to the same
				// records (write→read is the identity on valid data).
				tr, err := ReadBinary(bytes.NewReader(data))
				if err != nil {
					t.Fatalf("streamed decode clean but slurped decode failed: %v", err)
				}
				if tr.Len() != n {
					t.Fatalf("slurped %d records, streamed %d", tr.Len(), n)
				}
				var buf bytes.Buffer
				if _, err := WriteBinary(&buf, tr.Source()); err != nil {
					t.Fatalf("re-encode of a clean decode failed: %v", err)
				}
				again, err := ReadBinary(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("re-encoded stream failed to decode: %v", err)
				}
				if again.Len() != tr.Len() {
					t.Fatalf("re-encode round trip lost records: %d vs %d", again.Len(), tr.Len())
				}
				for i := range tr.Records {
					if again.Records[i] != tr.Records[i] {
						t.Fatalf("re-encode round trip altered record %d: %+v vs %+v",
							i, again.Records[i], tr.Records[i])
					}
				}
			}
		}
	})
}
