package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateAzureShape(t *testing.T) {
	spec := DefaultAzureSpec()
	series := GenerateAzure(spec)
	if len(series) != spec.Sites {
		t.Fatalf("generated %d series, want %d", len(series), spec.Sites)
	}
	for i, s := range series {
		if s.Site != i {
			t.Errorf("series %d labeled %d", i, s.Site)
		}
		if len(s.Counts) != spec.Minutes {
			t.Errorf("series %d has %d bins, want %d", i, len(s.Counts), spec.Minutes)
		}
		if s.BinWidth != 60 {
			t.Errorf("bin width = %v, want 60", s.BinWidth)
		}
		for _, c := range s.Counts {
			if c < 0 || c != math.Round(c) {
				t.Fatalf("count %v not a non-negative integer", c)
			}
		}
	}
	// Figure 8's range: counts roughly within 0–1000 req/min.
	_, maxCount := seriesRange(series)
	if maxCount < 100 || maxCount > 3000 {
		t.Errorf("peak per-minute count %v outside Figure 8's plausible range", maxCount)
	}
	// Spatial skew must be visible.
	meanSkew, _ := SkewStats(series)
	if meanSkew < 1.2 {
		t.Errorf("mean skew %v too flat for an Azure-like trace", meanSkew)
	}
}

func seriesRange(series []SiteSeries) (min, max float64) {
	min = math.Inf(1)
	for _, s := range series {
		for _, c := range s.Counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
	}
	return min, max
}

func TestGenerateAzureDeterministic(t *testing.T) {
	a := GenerateAzure(DefaultAzureSpec())
	b := GenerateAzure(DefaultAzureSpec())
	for i := range a {
		for j := range a[i].Counts {
			if a[i].Counts[j] != b[i].Counts[j] {
				t.Fatal("same seed should give identical traces")
			}
		}
	}
	spec := DefaultAzureSpec()
	spec.Seed = 999
	c := GenerateAzure(spec)
	same := true
	for i := range a {
		for j := range a[i].Counts {
			if a[i].Counts[j] != c[i].Counts[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds should give different traces")
	}
}

func TestAggregateSeries(t *testing.T) {
	series := GenerateAzure(DefaultAzureSpec())
	agg := AggregateSeries(series)
	for b := range agg.Counts {
		var want float64
		for _, s := range series {
			want += s.Counts[b]
		}
		if agg.Counts[b] != want {
			t.Fatalf("bin %d aggregate = %v, want %v", b, agg.Counts[b], want)
		}
	}
	if agg.Site != -1 {
		t.Error("aggregate should be labeled -1")
	}
}

func TestSiteSeriesRatesAndTotal(t *testing.T) {
	s := SiteSeries{Site: 0, BinWidth: 60, Counts: []float64{60, 120}}
	r := s.Rates()
	if r[0] != 1 || r[1] != 2 {
		t.Errorf("rates = %v", r)
	}
	if s.Total() != 180 {
		t.Errorf("total = %v", s.Total())
	}
}

func TestToArrivalProcesses(t *testing.T) {
	series := []SiteSeries{{Site: 0, BinWidth: 10, Counts: []float64{100}}}
	procs := ToArrivalProcesses(series, false)
	if len(procs) != 1 {
		t.Fatal("wrong process count")
	}
	// Envelope: 10 req/s for 10 s.
	if math.Abs(procs[0].Rate()-10) > 1e-9 {
		t.Errorf("rate = %v, want 10", procs[0].Rate())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	series := GenerateAzure(DefaultAzureSpec())
	var buf bytes.Buffer
	if err := WriteSiteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSiteSeriesCSV(&buf, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(series) {
		t.Fatalf("round trip lost series: %d vs %d", len(got), len(series))
	}
	for i := range series {
		for j := range series[i].Counts {
			if got[i].Counts[j] != series[i].Counts[j] {
				t.Fatalf("series %d bin %d: %v != %v", i, j, got[i].Counts[j], series[i].Counts[j])
			}
		}
	}
}

// TestCSVRoundTripProperty: arbitrary non-negative count matrices survive
// the round trip.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(raw [][3]uint16) bool {
		if len(raw) == 0 {
			return true
		}
		series := make([]SiteSeries, 3)
		for i := range series {
			series[i] = SiteSeries{Site: i, BinWidth: 60}
			for _, row := range raw {
				series[i].Counts = append(series[i].Counts, float64(row[i]))
			}
		}
		var buf bytes.Buffer
		if err := WriteSiteSeriesCSV(&buf, series); err != nil {
			return false
		}
		got, err := ReadSiteSeriesCSV(&buf, 60)
		if err != nil || len(got) != 3 {
			return false
		}
		for i := range series {
			for j := range series[i].Counts {
				if got[i].Counts[j] != series[i].Counts[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSVErrors(t *testing.T) {
	if err := WriteSiteSeriesCSV(&bytes.Buffer{}, nil); err == nil {
		t.Error("empty series should error")
	}
	mismatched := []SiteSeries{
		{Counts: []float64{1, 2}},
		{Counts: []float64{1}},
	}
	if err := WriteSiteSeriesCSV(&bytes.Buffer{}, mismatched); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ReadSiteSeriesCSV(bytes.NewBufferString("bin,site0\n"), 60); err == nil {
		t.Error("no data rows should error")
	}
	if _, err := ReadSiteSeriesCSV(bytes.NewBufferString("bin,site0\n0,-5\n"), 60); err == nil {
		t.Error("negative count should error")
	}
	if _, err := ReadSiteSeriesCSV(bytes.NewBufferString("bin,site0\n0,abc\n"), 60); err == nil {
		t.Error("non-numeric count should error")
	}
}

func TestTaxiCellLoadsConservation(t *testing.T) {
	spec := DefaultTaxiSpec()
	spec.Hours = 2
	loads := TaxiCellLoads(spec)
	if len(loads) != spec.GridW*spec.GridH {
		t.Fatalf("cells = %d, want %d", len(loads), spec.GridW*spec.GridH)
	}
	steps := len(loads[0].Counts)
	// Vehicles are conserved: per-step counts sum to the fleet size.
	for s := 0; s < steps; s++ {
		total := 0
		for _, l := range loads {
			total += l.Counts[s]
		}
		if total != spec.Vehicles {
			t.Fatalf("step %d holds %d vehicles, want %d", s, total, spec.Vehicles)
		}
	}
}

func TestTaxiSkew(t *testing.T) {
	spec := DefaultTaxiSpec()
	spec.Hours = 6
	loads := TaxiCellLoads(spec)
	boxes := CellBoxPlots(loads)
	if len(boxes) != len(loads) {
		t.Fatal("box plot count mismatch")
	}
	// Ordered by descending median, with meaningful spread between the
	// busiest and the median cell (Figure 2's point).
	for i := 1; i < len(boxes); i++ {
		if boxes[i].Median > boxes[i-1].Median+1e-9 {
			t.Fatal("box plots not sorted by median")
		}
	}
	if boxes[0].Median < 1.5*boxes[len(boxes)/2].Median {
		t.Errorf("hotspot cell median %v not clearly above median cell %v",
			boxes[0].Median, boxes[len(boxes)/2].Median)
	}
}

func TestTaxiDeterministic(t *testing.T) {
	a := TaxiCellLoads(DefaultTaxiSpec())
	b := TaxiCellLoads(DefaultTaxiSpec())
	for i := range a {
		for j := range a[i].Counts {
			if a[i].Counts[j] != b[i].Counts[j] {
				t.Fatal("taxi generator not deterministic")
			}
		}
	}
}

func TestSpecPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { GenerateAzure(AzureSpec{Sites: 0, Minutes: 10}) },
		func() { TaxiCellLoads(TaxiSpec{GridW: 0, GridH: 1, Vehicles: 1, Hours: 1, StepMinutes: 10}) },
		func() { TaxiCellLoads(TaxiSpec{GridW: 2, GridH: 2, Vehicles: 5, Hours: 0, StepMinutes: 10}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid spec should panic")
				}
			}()
			fn()
		}()
	}
}

func TestExecTimeDist(t *testing.T) {
	d := ExecTimeDist(0.077, 1.5)
	if math.Abs(d.Mean()-0.077) > 1e-9 {
		t.Errorf("exec-time mean = %v", d.Mean())
	}
	if math.Abs(d.SCV()-1.5) > 1e-9 {
		t.Errorf("exec-time SCV = %v", d.SCV())
	}
}
