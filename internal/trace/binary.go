package trace

// The .etb ("edge trace binary") format: a zero-parse request-record
// container replacing per-row text decoding with varint deltas and one
// CRC per block.
//
//	header : magic "ETB1" ++ uvarint(version = 1)
//	block  : uvarint(n > 0) ++ uvarint(len(payload)) ++ payload ++ crc32(payload), LE
//	end    : uvarint(0)  — then EOF, anything after it is an error
//	record : uvarint(Float64bits(time) - prevBits) ++ uvarint(site)
//	         ++ 8-byte LE Float64bits(service)
//
// Times ride on the IEEE-754 ordering trick: for non-negative floats,
// bit patterns order exactly as the values do, so nondecreasing times
// become nondecreasing uint64s, their deltas are small, and varints
// compress them — losslessly, since the bits round-trip exactly. The
// delta chain runs across blocks (prevBits starts at 0, the bits of
// +0.0). A decoded bit pattern above MaxFloat64's is corrupt by
// construction (Inf/NaN/negative can never be written), so corruption
// is detectable even before the CRC closes the block.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/cluster"
)

// BinaryMagic is the .etb file signature. It cannot collide with either
// text format: request CSVs begin "time," and Azure count CSVs "bin,".
const BinaryMagic = "ETB1"

const (
	binaryVersion = 1
	// binaryBlockRecords is the writer's records-per-block: one CRC and
	// one length prefix amortized over this many records.
	binaryBlockRecords = 4096
	// maxBinaryPayload caps a block's declared payload length, so a
	// corrupt length prefix cannot make the decoder allocate
	// arbitrarily. The writer's blocks top out near 28 bytes/record ×
	// binaryBlockRecords ≈ 112 KiB, far under the cap.
	maxBinaryPayload = 1 << 20
	// minBinaryRecord is the smallest possible encoded record (1-byte
	// time delta + 1-byte site + 8-byte service), bounding the record
	// count a payload of a given length can honestly claim.
	minBinaryRecord = 10
)

// maxFloatBits is the largest bit pattern a valid time may decode to.
var maxFloatBits = math.Float64bits(math.MaxFloat64)

// WriteBinary writes every record of src in the .etb format, returning
// the record count. It validates what the decoder's contract promises —
// finite nonnegative nondecreasing times, nonnegative sites, finite
// nonnegative service times — and refuses to encode a violation rather
// than produce a file the decoder must reject. A fallible source that
// ends on a decode error surfaces that error here, so a truncated
// conversion is never reported as success.
func WriteBinary(w io.Writer, src cluster.Source) (int, error) {
	bw := bufio.NewWriter(w)
	var scratch [binary.MaxVarintLen64]byte
	head := scratch[:binary.PutUvarint(scratch[:], binaryVersion)]
	if _, err := bw.WriteString(BinaryMagic); err != nil {
		return 0, err
	}
	if _, err := bw.Write(head); err != nil {
		return 0, err
	}

	payload := make([]byte, 0, binaryBlockRecords*12)
	inBlock, total := 0, 0
	prevBits := uint64(0)
	flush := func() error {
		if inBlock == 0 {
			return nil
		}
		n := binary.PutUvarint(scratch[:], uint64(inBlock))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(scratch[:], uint64(len(payload)))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
		payload = payload[:0]
		inBlock = 0
		return nil
	}

	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if rec.Time < 0 || math.IsNaN(rec.Time) || math.IsInf(rec.Time, 0) {
			return total, fmt.Errorf("trace: binary record %d: bad time %v", total, rec.Time)
		}
		bits := math.Float64bits(rec.Time)
		if bits < prevBits {
			return total, fmt.Errorf("trace: binary record %d: time %v regresses (records must be nondecreasing)",
				total, rec.Time)
		}
		if rec.Site < 0 {
			return total, fmt.Errorf("trace: binary record %d: bad site %d", total, rec.Site)
		}
		if rec.ServiceTime < 0 || math.IsNaN(rec.ServiceTime) || math.IsInf(rec.ServiceTime, 0) {
			return total, fmt.Errorf("trace: binary record %d: bad service time %v", total, rec.ServiceTime)
		}
		payload = binary.AppendUvarint(payload, bits-prevBits)
		payload = binary.AppendUvarint(payload, uint64(rec.Site))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(rec.ServiceTime))
		prevBits = bits
		inBlock++
		total++
		if inBlock == binaryBlockRecords {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if e, ok := src.(cluster.FallibleSource); ok {
		if err := e.Err(); err != nil {
			return total, fmt.Errorf("trace: source ended early: %w", err)
		}
	}
	if err := flush(); err != nil {
		return total, err
	}
	scratch[0] = 0 // uvarint(0): the end-of-stream marker
	if _, err := bw.Write(scratch[:1]); err != nil {
		return total, err
	}
	return total, bw.Flush()
}

// BinarySource streams cluster.RequestRecords from a .etb reader one
// record at a time — the binary counterpart of RequestSource, holding
// one block's payload instead of the file. Truncation, CRC mismatches
// and impossible field values end the stream and are reported by Err;
// the source never panics and never silently drops records.
type BinarySource struct {
	br       *bufio.Reader
	scratch  [8]byte // reused for header/CRC reads (a local would escape into io.ReadFull, one alloc per block)
	payload  []byte
	off      int
	left     int // records remaining in the current block
	prevBits uint64
	err      error
	done     bool
	ended    bool // saw the end-of-stream marker
	sites    int
	maxSites int
	n        uint64
}

// StreamBinary opens a streaming decoder over the .etb format. The
// header is consumed immediately; blocks are read and checked lazily by
// Next. Callers must check Err after the source drains to distinguish a
// clean end marker from truncation or corruption.
func StreamBinary(r io.Reader) *BinarySource {
	s := &BinarySource{br: bufio.NewReader(r)}
	magic := s.scratch[:len(BinaryMagic)]
	if _, err := io.ReadFull(s.br, magic); err != nil {
		s.fail(fmt.Errorf("trace: binary trace header: %w", err))
		return s
	}
	if string(magic) != BinaryMagic {
		s.fail(fmt.Errorf("trace: bad magic %q, want %q", magic, BinaryMagic))
		return s
	}
	v, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.fail(fmt.Errorf("trace: binary trace version: %w", err))
		return s
	}
	if v != binaryVersion {
		s.fail(fmt.Errorf("trace: binary trace version %d, this decoder reads %d", v, binaryVersion))
	}
	return s
}

// fail ends the stream with err.
func (s *BinarySource) fail(err error) {
	s.err = err
	s.done = true
}

// nextBlock loads and CRC-checks the next block, or observes a clean
// end of stream. Returns false when no further records exist.
func (s *BinarySource) nextBlock() bool {
	n, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.fail(fmt.Errorf("trace: binary trace truncated at block header: %w", err))
		return false
	}
	if n == 0 {
		// The end marker must be the last byte of the stream.
		if _, err := s.br.ReadByte(); err != io.EOF {
			s.fail(fmt.Errorf("trace: trailing bytes after the binary trace end marker"))
			return false
		}
		s.done, s.ended = true, true
		return false
	}
	plen, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.fail(fmt.Errorf("trace: binary trace truncated at block length: %w", err))
		return false
	}
	if plen > maxBinaryPayload {
		s.fail(fmt.Errorf("trace: binary block claims %d payload bytes (max %d); corrupt length",
			plen, maxBinaryPayload))
		return false
	}
	if n > plen/minBinaryRecord {
		s.fail(fmt.Errorf("trace: binary block claims %d records in %d bytes; corrupt count", n, plen))
		return false
	}
	if cap(s.payload) < int(plen) {
		// Round the first allocation up past the writer's largest block
		// so later blocks reuse it — one buffer for the whole stream.
		capHint := int(plen)
		if capHint < 1<<17 {
			capHint = 1 << 17
		}
		s.payload = make([]byte, plen, capHint)
	}
	s.payload = s.payload[:plen]
	if _, err := io.ReadFull(s.br, s.payload); err != nil {
		s.fail(fmt.Errorf("trace: binary block truncated: %w", err))
		return false
	}
	crc := s.scratch[:4]
	if _, err := io.ReadFull(s.br, crc); err != nil {
		s.fail(fmt.Errorf("trace: binary block truncated at checksum: %w", err))
		return false
	}
	if got, want := crc32.ChecksumIEEE(s.payload), binary.LittleEndian.Uint32(crc); got != want {
		s.fail(fmt.Errorf("trace: binary block checksum %08x, want %08x; block is corrupt", got, want))
		return false
	}
	s.off, s.left = 0, int(n)
	return true
}

// uvarint decodes one varint from the current payload.
func (s *BinarySource) uvarint(what string) (uint64, bool) {
	v, n := binary.Uvarint(s.payload[s.off:])
	if n <= 0 {
		s.fail(fmt.Errorf("trace: binary record %d: %s field truncated or overlong", s.n, what))
		return 0, false
	}
	s.off += n
	return v, true
}

// Next implements cluster.Source. After the first false it keeps
// returning false; check Err to learn whether the stream ended cleanly.
func (s *BinarySource) Next() (cluster.RequestRecord, bool) {
	if s.done {
		return cluster.RequestRecord{}, false
	}
	for s.left == 0 {
		if !s.nextBlock() {
			return cluster.RequestRecord{}, false
		}
	}
	delta, ok := s.uvarint("time")
	if !ok {
		return cluster.RequestRecord{}, false
	}
	bits := s.prevBits + delta
	if bits < s.prevBits || bits > maxFloatBits {
		// Wrapped uint64 arithmetic or a pattern past MaxFloat64: no
		// valid writer emits either, so the block decodes to garbage.
		s.fail(fmt.Errorf("trace: binary record %d: time delta overflows to an invalid value", s.n))
		return cluster.RequestRecord{}, false
	}
	site, ok := s.uvarint("site")
	if !ok {
		return cluster.RequestRecord{}, false
	}
	if site > math.MaxInt32 {
		s.fail(fmt.Errorf("trace: binary record %d: site %d implausibly large", s.n, site))
		return cluster.RequestRecord{}, false
	}
	if s.maxSites > 0 && int(site) >= s.maxSites {
		s.fail(fmt.Errorf("trace: binary record %d: site %d outside the replay's %d sites",
			s.n, site, s.maxSites))
		return cluster.RequestRecord{}, false
	}
	if s.off+8 > len(s.payload) {
		s.fail(fmt.Errorf("trace: binary record %d: service field truncated", s.n))
		return cluster.RequestRecord{}, false
	}
	svc := math.Float64frombits(binary.LittleEndian.Uint64(s.payload[s.off:]))
	s.off += 8
	if svc < 0 || math.IsNaN(svc) || math.IsInf(svc, 0) {
		s.fail(fmt.Errorf("trace: binary record %d: bad service time %v", s.n, svc))
		return cluster.RequestRecord{}, false
	}
	s.left--
	if s.left == 0 && s.off != len(s.payload) {
		s.fail(fmt.Errorf("trace: binary block carries %d undeclared trailing bytes", len(s.payload)-s.off))
		return cluster.RequestRecord{}, false
	}
	s.prevBits = bits
	if int(site)+1 > s.sites {
		s.sites = int(site) + 1
	}
	s.n++
	return cluster.RequestRecord{
		Time:        math.Float64frombits(bits),
		Site:        int(site),
		ServiceTime: svc,
	}, true
}

// Err returns the decode error that ended the stream, or nil after a
// clean end marker. Unlike text formats, plain EOF is NOT clean here:
// a .etb stream ends with an explicit marker, so a file cut anywhere —
// even exactly between blocks — reports truncation.
func (s *BinarySource) Err() error {
	if s.err == nil && s.done && !s.ended {
		return fmt.Errorf("trace: binary trace ended without its end marker; file is truncated")
	}
	return s.err
}

// LimitSites makes the decoder error on records whose site id is >= n —
// the same replay-mismatch guard RequestSource.LimitSites provides.
func (s *BinarySource) LimitSites(n int) { s.maxSites = n }

// Sites returns the number of sites observed so far (max site id + 1).
func (s *BinarySource) Sites() int { return s.sites }

// Count returns the number of records yielded so far.
func (s *BinarySource) Count() uint64 { return s.n }

// ReadBinary materializes a .etb stream into a WorkloadTrace — the
// slurping counterpart of StreamBinary, decoded through the same
// streaming path so the two agree record for record.
func ReadBinary(r io.Reader) (*cluster.WorkloadTrace, error) {
	src := StreamBinary(r)
	var recs []cluster.RequestRecord
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return &cluster.WorkloadTrace{Records: recs, Sites: src.Sites()}, nil
}
