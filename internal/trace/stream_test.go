package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netem"
)

// drain pulls every record from a source, asserting monotone times.
func drain(t *testing.T, src cluster.Source) []cluster.RequestRecord {
	t.Helper()
	var out []cluster.RequestRecord
	last := -1.0
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if rec.Time < last {
			t.Fatalf("record %d: time %v regresses below %v", len(out), rec.Time, last)
		}
		last = rec.Time
		out = append(out, rec)
	}
	return out
}

// TestRequestCSVRoundTrip: a generated workload written to the request
// CSV format and streamed back is bit-identical, and the slurping
// decoder agrees with the streaming one record for record.
func TestRequestCSVRoundTrip(t *testing.T) {
	spec := cluster.GenSpec{Sites: 3, Duration: 60, PerSiteRate: 6, Seed: 9}
	want := cluster.Generate(spec)

	var buf bytes.Buffer
	n, err := WriteRequestsCSV(&buf, cluster.Stream(spec))
	if err != nil {
		t.Fatal(err)
	}
	if n != want.Len() {
		t.Fatalf("wrote %d rows, trace has %d", n, want.Len())
	}

	src := StreamRequestsCSV(bytes.NewReader(buf.Bytes()))
	got := drain(t, src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != want.Len() {
		t.Fatalf("streamed %d records, want %d", len(got), want.Len())
	}
	for i, rec := range want.Records {
		if got[i] != rec {
			t.Fatalf("record %d diverges: streamed %+v, generated %+v", i, got[i], rec)
		}
	}
	if src.Sites() != want.Sites {
		t.Errorf("Sites() = %d, want %d", src.Sites(), want.Sites)
	}
	if src.Count() != uint64(want.Len()) {
		t.Errorf("Count() = %d, want %d", src.Count(), want.Len())
	}

	slurped, err := ReadRequestsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if slurped.Len() != len(got) || slurped.Sites != want.Sites {
		t.Fatalf("slurped %d records/%d sites, want %d/%d",
			slurped.Len(), slurped.Sites, len(got), want.Sites)
	}
	for i := range got {
		if slurped.Records[i] != got[i] {
			t.Fatalf("slurped record %d diverges from streamed: %+v vs %+v",
				i, slurped.Records[i], got[i])
		}
	}
}

// TestRequestCSVErrors: malformed inputs end the stream with an error —
// never a panic, never a silently dropped row.
func TestRequestCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad-header":       "when,where,how\n1,0,0.1\n",
		"missing-field":    "time,site,service\n1,0\n",
		"extra-field":      "time,site,service\n1,0,0.1,9\n",
		"bad-time":         "time,site,service\nnope,0,0.1\n",
		"negative-time":    "time,site,service\n-1,0,0.1\n",
		"nan-time":         "time,site,service\nNaN,0,0.1\n",
		"inf-time":         "time,site,service\n+Inf,0,0.1\n",
		"bad-site":         "time,site,service\n1,1.5,0.1\n",
		"negative-site":    "time,site,service\n1,-2,0.1\n",
		"bad-service":      "time,site,service\n1,0,fast\n",
		"negative-service": "time,site,service\n1,0,-0.1\n",
		"time-regression":  "time,site,service\n2,0,0.1\n1,0,0.1\n",
		"truncated-quote":  "time,site,service\n1,0,\"0.1\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			src := StreamRequestsCSV(strings.NewReader(in))
			for {
				if _, ok := src.Next(); !ok {
					break
				}
			}
			if src.Err() == nil {
				t.Errorf("input %q decoded without error", in)
			}
			// The stream must stay ended.
			if _, ok := src.Next(); ok {
				t.Error("errored source yielded another record")
			}
			if _, err := ReadRequestsCSV(strings.NewReader(in)); err == nil {
				t.Error("slurping decoder accepted the malformed input")
			}
		})
	}
}

// TestWriteRequestsCSVPropagatesSourceError: exporting from a decoder
// that fails mid-stream must report the failure, not a truncated file.
func TestWriteRequestsCSVPropagatesSourceError(t *testing.T) {
	corrupt := "time,site,service\n1,0,0.1\n2,0,broken\n"
	var buf bytes.Buffer
	n, err := WriteRequestsCSV(&buf, StreamRequestsCSV(strings.NewReader(corrupt)))
	if err == nil {
		t.Fatalf("wrote %d rows from a corrupt source without error", n)
	}
}

// TestRequestCSVEqualTimesAllowed: nondecreasing means ties are legal
// (batch arrivals share an instant).
func TestRequestCSVEqualTimesAllowed(t *testing.T) {
	in := "time,site,service\n1,0,0.1\n1,1,0.2\n1,0,0.3\n"
	src := StreamRequestsCSV(strings.NewReader(in))
	recs := drain(t, src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
}

// azureFixture is a well-formed per-bin count file.
const azureFixture = `bin,site0,site1,site2
0,4,0,2
1,1,3,0
3,2,2,2
`

// TestAzureCSVStreamMatchesSlurp: streaming and slurping decodes of the
// same count file agree record for record, respect per-bin counts, and
// stay deterministic for a seed.
func TestAzureCSVStreamMatchesSlurp(t *testing.T) {
	opts := AzureStreamOptions{BinWidth: 60, Seed: 5}
	src := StreamAzureCSV(strings.NewReader(azureFixture), opts)
	got := drain(t, src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4+2+1+3+2+2+2 {
		t.Fatalf("decoded %d records, want 16 (the fixture's total count)", len(got))
	}
	if src.Sites() != 3 {
		t.Errorf("Sites() = %d, want 3", src.Sites())
	}
	// Bin 2 is absent: no arrivals may fall in [120, 180).
	for i, rec := range got {
		if rec.Time >= 120 && rec.Time < 180 {
			t.Errorf("record %d at %v lands in the skipped bin", i, rec.Time)
		}
		if rec.ServiceTime <= 0 {
			t.Errorf("record %d has service time %v", i, rec.ServiceTime)
		}
	}

	slurped, err := ReadAzureCSV(strings.NewReader(azureFixture), opts)
	if err != nil {
		t.Fatal(err)
	}
	if slurped.Len() != len(got) {
		t.Fatalf("slurped %d records, streamed %d", slurped.Len(), len(got))
	}
	for i := range got {
		if slurped.Records[i] != got[i] {
			t.Fatalf("record %d diverges: slurped %+v, streamed %+v", i, slurped.Records[i], got[i])
		}
	}

	// Determinism: a second stream with the same seed is identical; a
	// different seed diverges in service times.
	again := drain(t, StreamAzureCSV(strings.NewReader(azureFixture), opts))
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("re-decode record %d diverges: %+v vs %+v", i, again[i], got[i])
		}
	}
	other := drain(t, StreamAzureCSV(strings.NewReader(azureFixture), AzureStreamOptions{BinWidth: 60, Seed: 6}))
	same := true
	for i := range got {
		if other[i].ServiceTime != got[i].ServiceTime {
			same = false
		}
		if other[i].Time != got[i].Time || other[i].Site != got[i].Site {
			t.Fatalf("seed must only affect service times, record %d moved", i)
		}
	}
	if same {
		t.Error("different seeds produced identical service times")
	}
}

// TestAzureCSVGeneratedRoundTrip: a GenerateAzure series written with
// WriteSiteSeriesCSV streams back with the exact envelope counts.
func TestAzureCSVGeneratedRoundTrip(t *testing.T) {
	spec := DefaultAzureSpec()
	spec.Minutes = 6
	series := GenerateAzure(spec)
	var buf bytes.Buffer
	if err := WriteSiteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	src := StreamAzureCSV(bytes.NewReader(buf.Bytes()), AzureStreamOptions{BinWidth: 60, Seed: 1})
	recs := drain(t, src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	perSite := make([]float64, spec.Sites)
	for _, r := range recs {
		perSite[r.Site]++
	}
	for i, s := range series {
		if perSite[i] != s.Total() {
			t.Errorf("site %d decoded %v records, envelope says %v", i, perSite[i], s.Total())
		}
	}
}

// TestAzureCSVErrors: malformed count files error instead of panicking
// or dropping rows.
func TestAzureCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad-header":      "minute,site0\n0,1\n",
		"no-sites":        "bin\n0\n",
		"missing-field":   "bin,site0,site1\n0,1\n",
		"bad-bin":         "bin,site0\nzero,1\n",
		"negative-bin":    "bin,site0\n-1,1\n",
		"bin-regression":  "bin,site0\n1,1\n0,2\n",
		"bin-duplicate":   "bin,site0\n1,1\n1,2\n",
		"bad-count":       "bin,site0\n0,many\n",
		"negative-count":  "bin,site0\n0,-3\n",
		"nan-count":       "bin,site0\n0,NaN\n",
		"huge-count":      "bin,site0\n0,1e30\n",
		"truncated-quote": "bin,site0\n0,\"3\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			src := StreamAzureCSV(strings.NewReader(in), AzureStreamOptions{})
			for i := 0; i < 1000; i++ {
				if _, ok := src.Next(); !ok {
					break
				}
			}
			if src.Err() == nil {
				t.Errorf("input %q decoded without error", in)
			}
			if _, err := ReadAzureCSV(strings.NewReader(in), AzureStreamOptions{}); err == nil {
				t.Error("slurping decoder accepted the malformed input")
			}
		})
	}
}

// TestLimitSitesTurnsMismatchIntoError: a well-formed trace whose site
// ids exceed the replayed topology's site count must fail as a decode
// error (via LimitSites + cluster.Run's FallibleSource probe), not as
// a replay panic at the out-of-range arrival.
func TestLimitSitesTurnsMismatchIntoError(t *testing.T) {
	in := "time,site,service\n1,0,0.1\n2,7,0.1\n"
	topo := cluster.EdgeTopology(cluster.EdgeConfig{Sites: 3, ServersPerSite: 1,
		Path: netem.Constant("zero", 0)})
	src := StreamRequestsCSV(strings.NewReader(in))
	src.LimitSites(3)
	if _, err := cluster.Run(src, topo, cluster.Options{}); err == nil {
		t.Fatal("site-7 record replayed into a 3-site topology without error")
	}
}

// TestRunSurfacesDecoderError: a decoder failing mid-file must turn
// the whole cluster.Run into an error, not a clean result over the
// decoded prefix.
func TestRunSurfacesDecoderError(t *testing.T) {
	corrupt := "time,site,service\n1,0,0.1\n2,0,0.1\n3,0,broken\n"
	topo := cluster.EdgeTopology(cluster.EdgeConfig{Sites: 1, ServersPerSite: 1,
		Path: netem.Constant("zero", 0)})
	res, err := cluster.Run(StreamRequestsCSV(strings.NewReader(corrupt)), topo, cluster.Options{})
	if err == nil {
		t.Fatalf("Run returned a clean result (%d offered) over a corrupt source", res.Offered)
	}
}

// TestAzureCSVThroughTopology: the streaming decoder drives a topology
// run directly, bit-identical to replaying its slurped trace.
func TestAzureCSVThroughTopology(t *testing.T) {
	spec := DefaultAzureSpec()
	spec.Minutes = 5
	spec.Sites = 3
	series := GenerateAzure(spec)
	var buf bytes.Buffer
	if err := WriteSiteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	opts := AzureStreamOptions{BinWidth: 60, Seed: 7}
	topo := cluster.EdgeTopology(cluster.EdgeConfig{Sites: 3, ServersPerSite: 2,
		Path: netem.EdgePath})
	run := func(src cluster.Source, hint int) *cluster.TopologyResult {
		res, err := cluster.Run(src, topo, cluster.Options{Warmup: 30, Seed: 3, SizeHint: hint})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tr, err := ReadAzureCSV(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := run(tr.Source(), tr.Len())
	got := run(StreamAzureCSV(bytes.NewReader(buf.Bytes()), opts), 0)
	if got.Offered != want.Offered || got.Completed != want.Completed ||
		got.EndToEnd.Mean() != want.EndToEnd.Mean() ||
		got.EndToEnd.P95() != want.EndToEnd.P95() {
		t.Errorf("streamed topology run diverges from slurped: offered %d/%d mean %v/%v",
			got.Offered, want.Offered, got.EndToEnd.Mean(), want.EndToEnd.Mean())
	}
}

// TestTimeScale: the wrapper rescales arrival times only, and decode
// failures in the wrapped source still surface through Err.
func TestTimeScale(t *testing.T) {
	const csv = "time,site,service\n1,0,0.5\n2,1,0.25\n4,0,0.125\n"
	want := drain(t, StreamRequestsCSV(strings.NewReader(csv)))
	got := drain(t, TimeScale(StreamRequestsCSV(strings.NewReader(csv)), 0.5))
	if len(got) != len(want) {
		t.Fatalf("scaled stream has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Time != want[i].Time*0.5 {
			t.Errorf("record %d: time %v, want %v", i, got[i].Time, want[i].Time*0.5)
		}
		if got[i].Site != want[i].Site || got[i].ServiceTime != want[i].ServiceTime {
			t.Errorf("record %d: site/service changed: %+v vs %+v", i, got[i], want[i])
		}
	}

	bad := TimeScale(StreamRequestsCSV(strings.NewReader("time,site,service\n1,0,0.5\nx,0,0.5\n")), 2)
	if _, ok := bad.Next(); !ok {
		t.Fatal("first record should decode")
	}
	if _, ok := bad.Next(); ok {
		t.Fatal("second record should fail")
	}
	if err := bad.(cluster.FallibleSource).Err(); err == nil {
		t.Fatal("decode error lost by the TimeScale wrapper")
	}
}

// TestTimeScaleRejectsDegenerateFactors: zero, negative and non-finite
// factors would collapse or reverse the timeline, violating the
// nondecreasing-time contract every replay engine assumes — they must
// panic at construction, not corrupt a replay later.
func TestTimeScaleRejectsDegenerateFactors(t *testing.T) {
	for _, factor := range []float64{0, -1, -0.5, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TimeScale(%v) should panic", factor)
				}
			}()
			TimeScale(StreamRequestsCSV(strings.NewReader("time,site,service\n1,0,0.5\n")), factor)
		}()
	}
}

// TestTimeScaleSingleRecord: the degenerate one-row trace scales and
// terminates cleanly — no second Next needed to observe the end, no
// spurious error.
func TestTimeScaleSingleRecord(t *testing.T) {
	src := TimeScale(StreamRequestsCSV(strings.NewReader("time,site,service\n2,0,0.5\n")), 0.25)
	rec, ok := src.Next()
	if !ok {
		t.Fatal("single record should decode")
	}
	if rec.Time != 0.5 || rec.Site != 0 || rec.ServiceTime != 0.5 {
		t.Errorf("scaled record = %+v, want time 0.5 site 0 service 0.5", rec)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("stream should end after its only record")
	}
	if err := src.(cluster.FallibleSource).Err(); err != nil {
		t.Fatalf("clean single-record stream reports error: %v", err)
	}
}

// TestTimeScaleRegressionPropagates: a time regression in the wrapped
// stream is a decode error, and it must still abort a full topology
// replay when the decoder is wrapped in TimeScale — scaling cannot
// launder a broken timeline into a clean run.
func TestTimeScaleRegressionPropagates(t *testing.T) {
	const regressing = "time,site,service\n2,0,0.5\n1,0,0.5\n"
	src := TimeScale(StreamRequestsCSV(strings.NewReader(regressing)), 0.5)
	topo := cluster.EdgeTopology(cluster.EdgeConfig{Sites: 1, ServersPerSite: 1,
		Path: netem.Constant("zero", 0)})
	res, err := cluster.Run(src, topo, cluster.Options{})
	if err == nil {
		t.Fatalf("Run returned a clean result (%d offered) over a regressing scaled source", res.Offered)
	}
	if !strings.Contains(err.Error(), "time") {
		t.Errorf("error should mention the time regression: %v", err)
	}
}
