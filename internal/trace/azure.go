// Package trace synthesizes the two external datasets the paper depends
// on and provides CSV interchange so real datasets can be dropped in:
//
//   - Azure Public Dataset serverless traces (§4.1, Figures 8–10): the
//     paper groups serverless functions into k mutually exclusive sets,
//     maps each group to one edge site, and replays the per-minute
//     invocation counts; execution times are sampled from the dataset's
//     coarse distributions. Our generator reproduces the statistical
//     shape visible in Figure 8: five sites, per-minute request counts
//     between ~0 and ~700, strong cross-site skew, bursts, and temporal
//     drift.
//
//   - CRAWDAD San Francisco taxi mobility (Figure 2): per-hex-cell load
//     counts over time, showing heavy spatial skew. Our generator places
//     vehicles under a hotspot gravity model over a hex grid and counts
//     vehicles per cell over time.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/workload"
)

// SiteSeries is one edge site's request-rate envelope: requests per
// BinWidth-second bin.
type SiteSeries struct {
	Site     int
	BinWidth float64
	Counts   []float64
}

// Rates converts per-bin counts to rates in req/s.
func (s SiteSeries) Rates() []float64 {
	out := make([]float64, len(s.Counts))
	for i, c := range s.Counts {
		out[i] = c / s.BinWidth
	}
	return out
}

// Total returns the total request count.
func (s SiteSeries) Total() float64 {
	var t float64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// AzureSpec parameterizes the synthetic Azure-like workload.
type AzureSpec struct {
	Sites   int // number of edge sites (paper: 5)
	Minutes int // trace length in minutes (paper: ~20)
	Seed    int64
	// BaseLoad is the mean per-minute request count of a median site
	// (paper's Figure 8 spans roughly 50–700 req/min across sites).
	BaseLoad float64
	// SkewS is the Zipf exponent distributing load across sites; 0.8
	// reproduces Figure 8's spread.
	SkewS float64
	// BurstProb is the per-minute probability a site experiences a burst.
	BurstProb float64
	// BurstScale multiplies a site's rate during a burst.
	BurstScale float64
	// DriftPeriodMin > 0 rotates site ranks with this period, modeling
	// spatial dynamics ("the set of edge sites that see higher arrivals
	// changes over time", §2.2).
	DriftPeriodMin float64
}

// DefaultAzureSpec matches Figure 8's visual parameters.
func DefaultAzureSpec() AzureSpec {
	return AzureSpec{
		Sites:          5,
		Minutes:        20,
		Seed:           1,
		BaseLoad:       170,
		SkewS:          0.8,
		BurstProb:      0.15,
		BurstScale:     1.7,
		DriftPeriodMin: 12,
	}
}

// GenerateAzure produces per-site request-count series with the Azure
// trace's qualitative properties: cross-site skew, per-minute burstiness
// (negative-binomial-like overdispersion), and slow rank drift.
func GenerateAzure(spec AzureSpec) []SiteSeries {
	if spec.Sites <= 0 || spec.Minutes <= 0 {
		panic(fmt.Sprintf("trace: invalid AzureSpec %+v", spec))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	base := workload.Zipf(spec.Sites, spec.SkewS).W

	out := make([]SiteSeries, spec.Sites)
	for i := range out {
		out[i] = SiteSeries{Site: i, BinWidth: 60, Counts: make([]float64, spec.Minutes)}
	}
	for m := 0; m < spec.Minutes; m++ {
		// Rank drift: rotate the weight vector slowly.
		shift := 0
		if spec.DriftPeriodMin > 0 {
			shift = int(float64(m) / spec.DriftPeriodMin)
		}
		for s := 0; s < spec.Sites; s++ {
			w := base[(s+shift)%spec.Sites]
			mean := spec.BaseLoad * w * float64(spec.Sites)
			// Lognormal multiplicative noise gives the overdispersion
			// seen in serverless invocation counts.
			noise := math.Exp(rng.NormFloat64()*0.35 - 0.35*0.35/2)
			c := mean * noise
			if rng.Float64() < spec.BurstProb {
				c *= spec.BurstScale
			}
			if c < 0 {
				c = 0
			}
			out[s].Counts[m] = math.Round(c)
		}
	}
	return out
}

// ExecTimeDist returns the service-time distribution attached to the
// synthetic Azure workload. The Azure dataset reports coarse execution
// time distributions; the paper samples them and picks an image of
// matching size. We model execution times as a lognormal centred on the
// DNN model's mean with the given SCV (heavier-tailed than the pure
// inference model, since serverless executions mix function types).
func ExecTimeDist(mean, scv float64) dist.Dist {
	return dist.NewLogNormalMeanSCV(mean, scv)
}

// ToArrivalProcesses converts per-site series into NHPP arrival
// processes suitable for cluster.Generate.
func ToArrivalProcesses(series []SiteSeries, cycle bool) []workload.ArrivalProcess {
	procs := make([]workload.ArrivalProcess, len(series))
	for i, s := range series {
		procs[i] = workload.NewNHPP(s.Rates(), s.BinWidth, cycle)
	}
	return procs
}

// AggregateSeries sums per-site series into the cloud-visible series.
func AggregateSeries(series []SiteSeries) SiteSeries {
	if len(series) == 0 {
		return SiteSeries{}
	}
	agg := SiteSeries{Site: -1, BinWidth: series[0].BinWidth, Counts: make([]float64, len(series[0].Counts))}
	for _, s := range series {
		if len(s.Counts) != len(agg.Counts) || s.BinWidth != agg.BinWidth {
			panic("trace: mismatched series in aggregate")
		}
		for i, c := range s.Counts {
			agg.Counts[i] += c
		}
	}
	return agg
}

// SkewStats summarizes the spatial skew of a set of site series at each
// time bin: the ratio of the busiest site's count to the mean count.
func SkewStats(series []SiteSeries) (meanSkew, maxSkew float64) {
	if len(series) == 0 || len(series[0].Counts) == 0 {
		return 0, 0
	}
	bins := len(series[0].Counts)
	var sum float64
	for b := 0; b < bins; b++ {
		var tot, max float64
		for _, s := range series {
			c := s.Counts[b]
			tot += c
			if c > max {
				max = c
			}
		}
		mean := tot / float64(len(series))
		if mean <= 0 {
			continue
		}
		skew := max / mean
		sum += skew
		if skew > maxSkew {
			maxSkew = skew
		}
	}
	meanSkew = sum / float64(bins)
	return meanSkew, maxSkew
}
