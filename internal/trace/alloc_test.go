package trace

// Allocation regression tests for the streaming decoders, in the
// TestCalendarQueueSmallPopulationAllocs mold: a multi-thousand-row
// drain must cost a small CONSTANT number of heap allocations — the
// decoder structures, one line/payload buffer, nothing per row. A
// per-row allocation sneaking back in (e.g. reverting to encoding/csv,
// or a string conversion that escapes) multiplies the count by the row
// count and fails these immediately.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// allocFixtures pre-encodes the same ~10k-record workload in every
// format, outside the measured region.
func allocFixtures(t *testing.T) (csvData, etbData, azureData []byte, records int) {
	t.Helper()
	spec := cluster.GenSpec{Sites: 8, Duration: 300, PerSiteRate: 5, Seed: 31}
	var csvBuf, etbBuf bytes.Buffer
	n, err := WriteRequestsCSV(&csvBuf, cluster.Stream(spec))
	if err != nil {
		t.Fatal(err)
	}
	if n < 5000 {
		t.Fatalf("fixture has %d records; too small to expose per-row allocations", n)
	}
	if _, err := WriteBinary(&etbBuf, cluster.Stream(spec)); err != nil {
		t.Fatal(err)
	}
	var azureBuf bytes.Buffer
	azureBuf.WriteString("bin,site0,site1,site2,site3\n")
	for bin := 0; bin < 500; bin++ {
		fmt.Fprintf(&azureBuf, "%d,7,3,5,2\n", bin)
	}
	return csvBuf.Bytes(), etbBuf.Bytes(), azureBuf.Bytes(), n
}

// drainAllocs measures allocations of one full drain of the source mk
// builds (construction included — it is part of the constant).
func drainAllocs(t *testing.T, mk func() cluster.Source) float64 {
	t.Helper()
	run := func() {
		src := mk()
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		if fs, ok := src.(cluster.FallibleSource); ok {
			if err := fs.Err(); err != nil {
				panic(err)
			}
		}
	}
	run() // warm lazy runtime state out of the measurement
	return testing.AllocsPerRun(5, run)
}

func TestStreamRequestsCSVAllocs(t *testing.T) {
	csvData, _, _, n := allocFixtures(t)
	got := drainAllocs(t, func() cluster.Source {
		return StreamRequestsCSV(bytes.NewReader(csvData))
	})
	// The constant: reader + scanner + source + field slice + slack.
	// 10k+ rows through encoding/csv cost >10k allocations here.
	const bound = 64
	if got > bound {
		t.Errorf("CSV drain of %d records allocated %.0f times, want <= %d (per-row allocation crept back in)",
			n, got, bound)
	}
}

func TestStreamBinaryAllocs(t *testing.T) {
	_, etbData, _, n := allocFixtures(t)
	got := drainAllocs(t, func() cluster.Source {
		return StreamBinary(bytes.NewReader(etbData))
	})
	const bound = 16
	if got > bound {
		t.Errorf("binary drain of %d records allocated %.0f times, want <= %d",
			n, got, bound)
	}
}

func TestStreamAzureCSVAllocs(t *testing.T) {
	_, _, azureData, _ := allocFixtures(t)
	got := drainAllocs(t, func() cluster.Source {
		return StreamAzureCSV(bytes.NewReader(azureData), AzureStreamOptions{BinWidth: 60, Seed: 9})
	})
	// The Azure synthesis owns per-site rng streams (built once at the
	// header) on top of the scanner constant; 8500 synthesized records
	// must not add to it.
	const bound = 96
	if got > bound {
		t.Errorf("azure drain allocated %.0f times, want <= %d", got, bound)
	}
}
