package cluster

// ShardedSource is a workload that can hand out its record sequence in
// per-site-range slices, the input contract of RunSharded. Shard(lo, hi)
// must return a fresh time-ordered Source over exactly the records whose
// Site lies in [lo, hi) — with every record identical to the one the
// full sequence carries, so disjoint ranges partition the workload.
// Shards over disjoint ranges may be consumed concurrently.
type ShardedSource interface {
	// Sites reports the workload's site count; RunSharded partitions
	// [0, Sites) into contiguous ranges.
	Sites() int
	// Shard returns a fresh Source over the sites in [lo, hi).
	Shard(lo, hi int) Source
}

// genShards adapts a GenSpec: each shard re-derives the full per-site
// stream seeding (cheap, O(Sites)) and then generates only its range,
// so per-site sequences are bit-identical for every partition.
type genShards struct {
	spec GenSpec
}

// GenShards adapts a generator spec into a ShardedSource. A spec
// carrying explicit Arrivals must supply one distinct process instance
// per site: the processes are stateful, and concurrent shards advance
// their own sites' instances.
func GenShards(spec GenSpec) ShardedSource {
	// Surface validation errors on the caller's goroutine, not inside a
	// shard worker: deriveArrivals panics on bad specs.
	probe := spec
	deriveArrivals(&probe)
	return genShards{spec: spec}
}

func (g genShards) Sites() int { return g.spec.Sites }

func (g genShards) Shard(lo, hi int) Source { return streamRange(g.spec, lo, hi) }

// traceShards adapts a materialized trace by filtering records in place.
type traceShards struct {
	tr *WorkloadTrace
}

// TraceShards adapts a materialized trace into a ShardedSource.
func TraceShards(tr *WorkloadTrace) ShardedSource { return traceShards{tr: tr} }

func (t traceShards) Sites() int { return t.tr.Sites }

func (t traceShards) Shard(lo, hi int) Source {
	return &traceRangeSource{recs: t.tr.Records, lo: lo, hi: hi}
}

type traceRangeSource struct {
	recs   []RequestRecord
	pos    int
	lo, hi int
}

func (s *traceRangeSource) Next() (RequestRecord, bool) {
	for s.pos < len(s.recs) {
		rec := s.recs[s.pos]
		s.pos++
		if rec.Site >= s.lo && rec.Site < s.hi {
			return rec, true
		}
	}
	return RequestRecord{}, false
}

// sourceShards adapts any SourceFactory — e.g. the streaming CSV and
// Azure decoders — by opening one fresh source per shard and filtering
// to the shard's range. Each shard scans the full sequence (decoders
// are cheap relative to simulation), keeping memory O(1) per shard.
type sourceShards struct {
	factory SourceFactory
	sites   int
}

// SourceShards adapts a source factory into a ShardedSource over the
// given site count. The factory must yield the identical record
// sequence on every call.
func SourceShards(factory SourceFactory, sites int) ShardedSource {
	return sourceShards{factory: factory, sites: sites}
}

func (s sourceShards) Sites() int { return s.sites }

func (s sourceShards) Shard(lo, hi int) Source {
	return &filterSource{src: s.factory(), lo: lo, hi: hi}
}

// filterSource passes through only the records of one site range, and
// surfaces the underlying source's decode error (FallibleSource).
type filterSource struct {
	src    Source
	lo, hi int
}

func (f *filterSource) Next() (RequestRecord, bool) {
	for {
		rec, ok := f.src.Next()
		if !ok {
			return RequestRecord{}, false
		}
		if rec.Site >= f.lo && rec.Site < f.hi {
			return rec, true
		}
	}
}

// Err implements FallibleSource by delegation.
func (f *filterSource) Err() error {
	if fs, ok := f.src.(FallibleSource); ok {
		return fs.Err()
	}
	return nil
}
