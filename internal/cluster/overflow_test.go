package cluster

import (
	"testing"

	"repro/internal/autoscale"
	"repro/internal/netem"
	"repro/internal/workload"
)

func skewedTrace(rates []float64, duration float64, seed int64) *WorkloadTrace {
	procs := make([]workload.ArrivalProcess, len(rates))
	for i, r := range rates {
		procs[i] = workload.NewPoisson(r)
	}
	return Generate(GenSpec{Sites: len(rates), Duration: duration, Seed: seed, Arrivals: procs})
}

func TestOverflowForwardsHotSiteTraffic(t *testing.T) {
	// Site 0 at ~150% of one server; others cool.
	tr := skewedTrace([]float64{20, 4, 4, 4, 4}, 400, 31)
	sc, _ := netem.ScenarioByName("typical-25ms")
	res := RunEdgeWithOverflow(tr, OverflowConfig{
		Sites: 5, ServersPerSite: 1,
		EdgePath: sc.Edge, CloudPath: sc.Cloud,
		CloudServers: 5, OverflowThreshold: 4,
		Warmup: 40, Seed: 32,
	})
	if res.Overflowed == 0 {
		t.Fatal("expected overflow from the saturated site")
	}
	if res.EdgeServed == 0 || res.CloudServed == 0 {
		t.Fatalf("split wrong: edge %d cloud %d", res.EdgeServed, res.CloudServed)
	}
	// Overflowed requests pay the cloud RTT: their mean latency should
	// exceed the home-served mean at the cool sites, but stay bounded.
	if res.CloudOnly.Mean() <= sc.Cloud.MeanRTT() {
		t.Error("overflowed latency should include the cloud RTT")
	}
	// Every record is accounted for.
	if res.EdgeServed+res.CloudServed != uint64(res.EndToEnd.N()) {
		t.Error("split does not sum to total")
	}
}

// TestOverflowBeatsPlainEdgeUnderSaturation: with a saturated hot site,
// overflowing to the cloud must dramatically beat the plain edge.
func TestOverflowBeatsPlainEdgeUnderSaturation(t *testing.T) {
	tr := skewedTrace([]float64{18, 5, 5, 3, 3}, 500, 33)
	sc, _ := netem.ScenarioByName("typical-25ms")
	plain := RunEdge(tr, EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 50, Seed: 34,
	})
	over := RunEdgeWithOverflow(tr, OverflowConfig{
		Sites: 5, ServersPerSite: 1,
		EdgePath: sc.Edge, CloudPath: sc.Cloud,
		CloudServers: 5, OverflowThreshold: 4,
		Warmup: 50, Seed: 34,
	})
	if over.MeanLatency() >= plain.MeanLatency()/2 {
		t.Errorf("overflow mean %v should be far below plain edge %v",
			over.MeanLatency(), plain.MeanLatency())
	}
}

// TestOverflowRareWhenUnderloaded: a lightly loaded edge should almost
// never overflow.
func TestOverflowRareWhenUnderloaded(t *testing.T) {
	tr := skewedTrace([]float64{3, 3, 3, 3, 3}, 300, 35)
	sc, _ := netem.ScenarioByName("typical-25ms")
	res := RunEdgeWithOverflow(tr, OverflowConfig{
		Sites: 5, ServersPerSite: 1,
		EdgePath: sc.Edge, CloudPath: sc.Cloud,
		CloudServers: 5, OverflowThreshold: 6,
		Seed: 36,
	})
	frac := float64(res.Overflowed) / float64(tr.Len())
	if frac > 0.02 {
		t.Errorf("%.1f%% of a light workload overflowed", frac*100)
	}
}

func TestOverflowConfigPanics(t *testing.T) {
	tr := skewedTrace([]float64{1}, 10, 1)
	for _, cfg := range []OverflowConfig{
		{Sites: 1, CloudServers: 0, OverflowThreshold: 1},
		{Sites: 1, CloudServers: 2, OverflowThreshold: 0},
		{Sites: 2, CloudServers: 2, OverflowThreshold: 1},
	} {
		cfg.EdgePath = netem.Constant("z", 0)
		cfg.CloudPath = netem.Constant("z", 0)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			RunEdgeWithOverflow(tr, cfg)
		}()
	}
}

// TestAutoscaledEdgeAvoidsInversion: the paper's future-work claim made
// concrete — under a skewed workload that inverts the static edge, the
// autoscaled edge stays competitive with the cloud.
func TestAutoscaledEdgeAvoidsInversion(t *testing.T) {
	tr := skewedTrace([]float64{16, 8, 6, 3, 3}, 500, 37)
	sc, _ := netem.ScenarioByName("typical-25ms")
	static := RunEdge(tr, EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 50, Seed: 38,
	})
	scaled := RunEdgeAutoscaled(tr, EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 50, Seed: 38,
	}, autoscale.Config{
		Interval: 2, Min: 1, Max: 4, UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 6,
	})
	cloud := RunCloud(tr, CloudConfig{Servers: 5, Path: sc.Cloud, Warmup: 50, Seed: 39})

	if scaled.ScaleUps == 0 {
		t.Fatal("autoscaler never scaled up")
	}
	if scaled.MeanLatency() >= static.MeanLatency() {
		t.Errorf("autoscaled mean %v should beat static %v", scaled.MeanLatency(), static.MeanLatency())
	}
	// Reactive scaling lags bursts, so allow some residual gap to the
	// pooled cloud while requiring the bulk of the inversion removed.
	if static.MeanLatency() > cloud.MeanLatency() && scaled.MeanLatency() > cloud.MeanLatency()*2 {
		t.Errorf("autoscaled edge %v still far above cloud %v", scaled.MeanLatency(), cloud.MeanLatency())
	}
	if len(scaled.FinalPerSite) != 5 {
		t.Error("per-site server counts missing")
	}
	if scaled.PeakServers < 2 {
		t.Error("peak servers should exceed the starting allocation")
	}
}

// TestBoundedQueueDropsUnderOverload: with QueueCap set, a saturated
// deployment sheds load instead of growing unbounded queues (§4.2's
// "starts dropping requests").
func TestBoundedQueueDropsUnderOverload(t *testing.T) {
	tr := skewedTrace([]float64{30, 2, 2, 2, 2}, 300, 40)
	res := RunEdge(tr, EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: netem.Constant("z", 0),
		Warmup: 30, Seed: 41, QueueCap: 10,
	})
	if res.Dropped == 0 {
		t.Fatal("saturated bounded queue should drop requests")
	}
	// With a bounded queue, the served latency stays bounded by roughly
	// (cap+1) service times plus slack.
	maxWait := res.Wait.Quantile(1)
	if maxWait > 11.0/13*3 {
		t.Errorf("max wait %v too large for a 10-deep bounded queue", maxWait)
	}
	// Conservation: completions + drops = all requests after warmup
	// (approximately: warmup filtering applies to both).
	if res.Completed == 0 {
		t.Fatal("no completions recorded")
	}
}
