package cluster

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/merge"
	"repro/internal/sim"
)

// Pipelined sharded replay overlaps the two phases of RunSharded
// instead of barriering between them:
//
//		shard 0  ──captures──▶ ring 0 ─┐
//		shard 1  ──captures──▶ ring 1 ─┼─▶ merger ──▶ phase-2 engine(s)
//		shard k  ──captures──▶ ring k ─┘   (watermark-gated k-way merge)
//
//	  - Each phase-1 shard publishes its boundary records through a
//	    bounded ring (merge.Group) together with a monotone watermark:
//	    its event-clock frontier, below which it can emit nothing new. A
//	    capture at shard time T always carries at >= T (pinned classes
//	    arrive at T, spills at T plus half a non-negative detour), so
//	    buffered captures with at < clock are final and are released in
//	    canonical order from a small pending heap.
//	  - A dedicated merger goroutine pops every record that is below all
//	    open rings' watermarks — provably next in the global
//	    (time, site, seq) order — and does phase 2's per-request pre-work
//	    off the engine: decoding the record, assigning the global request
//	    ID in canonical order, and routing it to its shared partition.
//	  - Each phase-2 engine replays its records through a pump event that
//	    blocks inside its callback until the merger supplies the next
//	    record, so the engine can never run ahead of the merge: it sees
//	    exactly the event sequence the barrier backend replays, which is
//	    why the results are byte-identical by construction.
//
// Memory: ring backpressure (Push blocks when full) bounds resident
// boundary records by ring capacity, not boundary count; the pending
// heaps hold only captures within one detour of the shard clock. Wall
// clock: phase 2 overlaps phase 1, so the critical path drops from
// max(phase1) + phase2 toward max(max(phase1), phase2).
//
// When the shared subgraph splits into spill-connected components and
// no shared tier carries an autoscaler, each component replays on its
// own engine in parallel. Classification is per-site deterministic
// (planShards rejects Bernoulli fractions) and each site's spill chain
// terminates in at most one component, so every site's shared-phase
// records — and hence its digest add order — stay within a single
// partition, and the pinned stream seeds (deriveP2Streams) keep every
// dispatcher's random sequence identical to the serial build's.
const (
	// defaultPipelineRing bounds each shard's boundary ring when
	// Options.PipelineRing is zero: deep enough to ride out merge
	// stalls, small enough that k rings stay cache-resident.
	defaultPipelineRing = 4096
	// pipeFlushStride caps how many source records a shard processes
	// between watermark publications, so an idle-boundary shard still
	// unblocks the merge.
	pipeFlushStride = 64
	// pipeBatch is the merger's pop/forward granularity: large enough to
	// amortize ring locks and channel sends, small enough to keep the
	// phase-2 engines fed.
	pipeBatch = 256
)

// backlogGauge tracks resident boundary records (captured but not yet
// admitted to a phase-2 engine) for Options.BacklogProbe.
type backlogGauge struct {
	resident atomic.Int64
	peak     atomic.Int64
}

func (g *backlogGauge) add(d int64) {
	v := g.resident.Add(d)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// pipePublisher streams one shard's boundary captures into its
// watermark ring. Captures buffer in a min-heap keyed by the canonical
// order until the shard clock passes their arrival instant, then flush
// in sorted order followed by a watermark at the clock; Push blocks
// when the ring is full, which is the backpressure that bounds memory.
// The release-before-watermark coupling is load-bearing: a watermark at
// w may only be set once every buffered record below w has been pushed.
type pipePublisher struct {
	grp     *merge.Group[boundaryRec]
	ring    int
	gauge   *backlogGauge // nil unless Options.BacklogProbe is set
	pending []boundaryRec // min-heap by boundaryBefore
	batch   []boundaryRec // reused release buffer
	stride  int           // records since the last flush
}

func (p *pipePublisher) capture(rec boundaryRec) {
	if p.gauge != nil {
		p.gauge.add(1)
	}
	p.pending = append(p.pending, rec)
	i := len(p.pending) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !boundaryBefore(&p.pending[i], &p.pending[parent]) {
			break
		}
		p.pending[i], p.pending[parent] = p.pending[parent], p.pending[i]
		i = parent
	}
}

func (p *pipePublisher) popPending() boundaryRec {
	top := p.pending[0]
	last := len(p.pending) - 1
	p.pending[0] = p.pending[last]
	p.pending = p.pending[:last]
	i, n := 0, len(p.pending)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && boundaryBefore(&p.pending[l], &p.pending[min]) {
			min = l
		}
		if r < n && boundaryBefore(&p.pending[r], &p.pending[min]) {
			min = r
		}
		if min == i {
			return top
		}
		p.pending[i], p.pending[min] = p.pending[min], p.pending[i]
		i = min
	}
}

// advance flushes when a buffered capture has become final or the
// stride expires, keeping the ring lock off the per-record fast path.
func (p *pipePublisher) advance(now float64) {
	p.stride++
	if p.stride < pipeFlushStride && (len(p.pending) == 0 || p.pending[0].at >= now) {
		return
	}
	p.stride = 0
	p.batch = p.batch[:0]
	for len(p.pending) > 0 && p.pending[0].at < now {
		p.batch = append(p.batch, p.popPending())
	}
	p.grp.Push(p.ring, p.batch)
	p.grp.SetWatermark(p.ring, now)
}

// finish releases the tail — captures at or past the final clock — and
// closes the ring. Runs on the shard's error path too.
func (p *pipePublisher) finish() {
	p.batch = p.batch[:0]
	for len(p.pending) > 0 {
		p.batch = append(p.batch, p.popPending())
	}
	p.grp.Push(p.ring, p.batch)
	p.grp.Close(p.ring)
}

// p2rec is one merged boundary record after the merger's pre-work: the
// decoded record plus its globally-assigned request ID.
type p2rec struct {
	rec boundaryRec
	id  uint64
}

// phase2Partitions groups the shared tiers into spill-connected
// components. Components may replay on parallel engines only when no
// shared tier carries an autoscaler: a controller's stop condition
// reads the globally-last consumption, which only a single engine's
// event order preserves — with a scaler anywhere, everything collapses
// into one partition.
func phase2Partitions(topo Topology, plan shardPlan) (parts [][]int, compOf []int) {
	parent := make([]int, len(topo.Tiers))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for _, sp := range topo.Spills {
		from, to := topo.tierIndex(sp.From), topo.tierIndex(sp.To)
		if plan.homeSlot[from] >= 0 {
			continue // phase-1 edge (or a boundary crossing, not a shared coupling)
		}
		parent[find(from)] = find(to)
	}
	scaled := false
	for _, ti := range plan.shared {
		if topo.Tiers[ti].Scaler != nil {
			scaled = true
			break
		}
	}
	compOf = make([]int, len(topo.Tiers))
	for i := range compOf {
		compOf[i] = -1
	}
	rootPart := map[int]int{}
	for _, ti := range plan.shared {
		root := 0
		if !scaled {
			root = find(ti)
		}
		p, ok := rootPart[root]
		if !ok {
			p = len(parts)
			rootPart[root] = p
			parts = append(parts, nil)
		}
		parts[p] = append(parts[p], ti)
		compOf[ti] = p
	}
	return parts, compOf
}

// runPhase2Pump replays one partition's share of the merged boundary
// stream on its engine. The pump event blocks inside its callback until
// the next record is known, so the engine processes events in exactly
// the order the barrier backend would — including autoscaler ticks,
// which fire only once the clock is allowed to reach them.
func runPhase2Pump(b *p2build, feed <-chan []p2rec, free chan<- []p2rec, total *uint64, gauge *backlogGauge) {
	var (
		buf     []p2rec
		bi      int
		drained bool
	)
	next := func() (p2rec, bool) {
		if bi < len(buf) {
			v := buf[bi]
			bi++
			return v, true
		}
		if buf != nil {
			select {
			case free <- buf[:0]:
			default:
			}
			buf = nil
		}
		var ok bool
		buf, ok = <-feed
		if !ok {
			return p2rec{}, false
		}
		bi = 1
		return buf[0], true
	}
	stopAll := func() {
		// total is written by the merger before it closes the feed, and
		// drained only turns true after the close is observed.
		if drained && b.sink.consumed == *total {
			for _, c := range b.ctrls {
				c.Stop()
			}
		}
	}
	if len(b.ctrls) > 0 {
		b.sink.pre = stopAll
	}
	var cur p2rec
	var pump sim.Event
	pump = func(e *sim.Engine) {
		rec := &cur.rec
		req := b.pool.Get()
		req.ID = cur.id
		req.Site = rec.site
		req.Generated = rec.generated
		req.Done = b.sink
		req.NetworkRTT = rec.rtt
		req.AuxRTT = rec.aux
		req.ServiceTime = rec.service
		req.Tag = uint64(rec.tier)
		req.Class = rec.class
		b.x.admit(rec.tier, req)
		if gauge != nil {
			gauge.add(-1)
		}
		if nxt, ok := next(); ok {
			cur = nxt
			e.AtFront(cur.rec.at, pump)
		} else {
			drained = true
			stopAll()
		}
	}
	// Arm before Run: with controllers ticking, the engine must not
	// process anything until the first record's arrival time caps it.
	if first, ok := next(); ok {
		cur = first
		b.eng.AtFront(cur.rec.at, pump)
	} else {
		drained = true
		stopAll()
	}
	b.eng.Run()
	for _, c := range b.ctrls {
		c.Stop()
	}
}

// RunPipelined replays the source through the topology on `shards`
// parallel engines whose boundary records stream through watermarked
// bounded rings into the shared phase while the shards are still
// running. Results are byte-identical to RunSharded at every shard
// count — the equivalence suite asserts it across presets, sources and
// summary modes — while phase 2 overlaps phase 1 and resident boundary
// memory is bounded by Options.PipelineRing instead of the boundary
// count. Where the shared tiers split into independent spill components
// (and none autoscale), each component replays on its own engine.
//
// Options.TimelineBin and Options.Probe are rejected as in RunSharded;
// Options.BacklogProbe, when set, receives the run's peak resident
// boundary-record count.
func RunPipelined(src ShardedSource, topo Topology, opts Options, shards int) (*TopologyResult, error) {
	r, err := newShardRun(src, topo, opts, shards)
	if err != nil {
		return nil, err
	}
	opts = r.opts
	ringCap := opts.PipelineRing
	if ringCap <= 0 {
		ringCap = defaultPipelineRing
	}

	// Build phase 2 before launching any producer, so a construction
	// error cannot strand shards blocked on a full ring.
	parts, compOf := phase2Partitions(r.topo, r.plan)
	streams := deriveP2Streams(r.topo, r.plan, r.phase2Seed)
	builds := make([]*p2build, len(parts))
	perSite := newDigests(opts.Summary, r.sites)
	for p, tiers := range parts {
		if builds[p], err = buildPhase2(r, tiers, streams); err != nil {
			return nil, err
		}
		builds[p].sink.perSite = perSite
	}

	var gauge *backlogGauge
	if opts.BacklogProbe != nil {
		gauge = &backlogGauge{}
	}

	grp := merge.NewGroup(r.shards, ringCap,
		func(a, b boundaryRec) bool { return boundaryBefore(&a, &b) },
		func(rec boundaryRec) float64 { return rec.at })

	// Phase 1: one goroutine per shard, publishing through its ring.
	// The pprof phase labels separate the three overlapped stages in
	// -cpuprofile/-memprofile output.
	var shardWG sync.WaitGroup
	for k, st := range r.states {
		shardWG.Add(1)
		go pprof.Do(context.Background(), pprof.Labels("phase", "phase-1"), func(context.Context) {
			defer shardWG.Done()
			pub := &pipePublisher{grp: grp, ring: k, gauge: gauge}
			runShardPhase1(r.topo, r.plan, st, src.Shard(st.lo, st.hi), opts, r.netSeeds, pub)
		})
	}

	// Merger: pop watermark-safe records, assign canonical IDs, route
	// each to its partition in batches. Exhausted batches come back on
	// the free lists so steady state allocates nothing.
	feeds := make([]chan []p2rec, len(parts))
	frees := make([]chan []p2rec, len(parts))
	for p := range feeds {
		feeds[p] = make(chan []p2rec, 2)
		frees[p] = make(chan []p2rec, 4)
	}
	var total uint64
	go pprof.Do(context.Background(), pprof.Labels("phase", "merge"), func(context.Context) {
		popped := make([]boundaryRec, 0, pipeBatch)
		out := make([][]p2rec, len(parts))
		var nextID uint64
		for {
			batch, ok := grp.NextBatch(popped[:0], pipeBatch)
			if !ok {
				break
			}
			popped = batch
			for _, rec := range batch {
				nextID++
				p := compOf[rec.tier]
				if out[p] == nil {
					select {
					case out[p] = <-frees[p]:
					default:
						out[p] = make([]p2rec, 0, pipeBatch)
					}
				}
				out[p] = append(out[p], p2rec{rec: rec, id: nextID})
			}
			for p := range out {
				if len(out[p]) > 0 {
					feeds[p] <- out[p]
					out[p] = nil
				}
			}
		}
		total = nextID
		for p := range feeds {
			close(feeds[p])
		}
	})

	// Phase 2: one engine per partition, fed by the merger.
	var p2WG sync.WaitGroup
	for p, b := range builds {
		p2WG.Add(1)
		go pprof.Do(context.Background(), pprof.Labels("phase", "phase-2"), func(context.Context) {
			defer p2WG.Done()
			runPhase2Pump(b, feeds[p], frees[p], &total, gauge)
		})
	}
	shardWG.Wait()
	p2WG.Wait()

	for _, st := range r.states {
		if st.err != nil {
			return nil, st.err
		}
	}
	if gauge != nil {
		opts.BacklogProbe(int(gauge.peak.Load()))
	}
	return finishSharded(r, builds, perSite), nil
}
