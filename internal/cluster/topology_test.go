package cluster

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/admit"
	"repro/internal/autoscale"
	"repro/internal/netem"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// reactiveSpec lifts a legacy reactive config into a tier scaler spec.
func reactiveSpec(cfg autoscale.Config) *autoscale.Spec {
	s := autoscale.ReactiveSpec(cfg)
	return &s
}

// edgePath returns the 1 ms edge path used across topology tests.
func edgePath() netem.Path { return netem.Jittered("edge-1ms", 0.001, 0.0002) }

func cloudPath() netem.Path { return netem.Jittered("cloud-25ms", 0.025, 0.003) }

func TestTopologyValidate(t *testing.T) {
	edge := Tier{Name: "edge", Sites: 5}
	cloud := Tier{Name: "cloud", Sites: 1, ServersPerSite: 5, Dispatch: CentralQueueDispatch}
	cases := map[string]Topology{
		"no tiers":        {},
		"unnamed tier":    {Tiers: []Tier{{Sites: 1}}},
		"duplicate names": {Tiers: []Tier{edge, edge}},
		"zero sites":      {Tiers: []Tier{{Name: "edge"}}},
		"bad dispatch":    {Tiers: []Tier{{Name: "x", Sites: 1, Dispatch: "nope"}}},
		"per-site servers mismatch": {
			Tiers: []Tier{{Name: "edge", Sites: 3, PerSiteServers: []int{1, 1}}},
		},
		"per-site paths on dispatcher tier": {
			Tiers: []Tier{{Name: "x", Sites: 2, Dispatch: "random",
				PerSitePaths: []netem.Path{edgePath(), edgePath()}}},
		},
		"jockey on dispatcher tier": {
			Tiers: []Tier{{Name: "x", Sites: 2, Dispatch: "random", JockeyThreshold: 2}},
		},
		"home tiers disagree on sites": {
			Tiers: []Tier{edge, {Name: "edge2", Sites: 3}},
		},
		"spill from unknown tier": {
			Tiers:  []Tier{edge, cloud},
			Spills: []SpillEdge{{From: "nope", To: "cloud", Threshold: 1}},
		},
		"spill to unknown tier": {
			Tiers:  []Tier{edge, cloud},
			Spills: []SpillEdge{{From: "edge", To: "nope", Threshold: 1}},
		},
		"self spill": {
			Tiers:  []Tier{edge},
			Spills: []SpillEdge{{From: "edge", To: "edge", Threshold: 1}},
		},
		"nonpositive threshold": {
			Tiers:  []Tier{edge, cloud},
			Spills: []SpillEdge{{From: "edge", To: "cloud"}},
		},
		"two spills from one tier": {
			Tiers: []Tier{edge, cloud, {Name: "c2", Sites: 1, Dispatch: CentralQueueDispatch}},
			Spills: []SpillEdge{
				{From: "edge", To: "cloud", Threshold: 1},
				{From: "edge", To: "c2", Threshold: 2},
			},
		},
		"spill cycle": {
			Tiers: []Tier{cloud, {Name: "c2", Sites: 1, Dispatch: CentralQueueDispatch}},
			Spills: []SpillEdge{
				{From: "cloud", To: "c2", Threshold: 1},
				{From: "c2", To: "cloud", Threshold: 1},
			},
		},
		"class pins to unknown tier": {
			Tiers:   []Tier{edge},
			Classes: []ClassRule{{Name: "x", Tier: "nope"}},
		},
		"class fraction out of range": {
			Tiers:   []Tier{edge, cloud},
			Classes: []ClassRule{{Name: "x", Tier: "cloud", Fraction: 1.5}},
		},
		// NaN fails every ordered comparison, so "< 0 || > 1" alone
		// accepted it — and a NaN fraction silently became an
		// unconditional match in classify. Must be rejected explicitly.
		"class fraction NaN": {
			Tiers:   []Tier{edge, cloud},
			Classes: []ClassRule{{Name: "x", Tier: "cloud", Fraction: math.NaN()}},
		},
		"negative queue cap": {
			Tiers: []Tier{{Name: "edge", Sites: 5, QueueCap: -1}},
		},
		"NaN slowdown": {
			Tiers: []Tier{{Name: "edge", Sites: 5, SlowdownFactor: math.NaN()}},
		},
		"Inf slowdown": {
			Tiers: []Tier{{Name: "edge", Sites: 5, SlowdownFactor: math.Inf(1)}},
		},
		"NaN price": {
			Tiers: []Tier{{Name: "edge", Sites: 5, PricePerServerHour: math.NaN()}},
		},
		"negative price": {
			Tiers: []Tier{{Name: "edge", Sites: 5, PricePerServerHour: -0.1}},
		},
		"unknown admission policy": {
			Tiers: []Tier{{Name: "edge", Sites: 5,
				Admission: &admit.Spec{Policy: "leaky-bucket"}}},
		},
		"NaN admission rate": {
			Tiers: []Tier{{Name: "edge", Sites: 5,
				Admission: &admit.Spec{Policy: admit.TokenBucket, Rate: math.NaN()}}},
		},
	}
	for name, topo := range cases {
		if err := topo.normalized().Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid topology", name)
		}
	}
	good := Topology{
		Tiers:  []Tier{edge, cloud},
		Spills: []SpillEdge{{From: "edge", To: "cloud", Threshold: 3}},
		Classes: []ClassRule{
			{Name: "pinned", Sites: []int{0}, Tier: "cloud"},
		},
	}
	if err := good.normalized().Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

// directRunEdgeAutoscaled is the pre-topology RunEdgeAutoscaled,
// ported verbatim onto the feeder API: stations built by hand, the
// controller stopped on drain, results assembled inline. The topology
// wrapper must reproduce it bit for bit.
func directRunEdgeAutoscaled(tr *WorkloadTrace, cfg EdgeConfig, asCfg autoscale.Config) *AutoscaleResult {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()
	pool := &queue.FreeList{}

	stations := make([]*queue.Station, cfg.Sites)
	for i := range stations {
		stations[i] = newStation(eng, fmt.Sprintf("edge-%d", i), cfg.ServersPerSite,
			cfg.Discipline, 0, cfg.Warmup, cfg.Summary, pool)
	}
	ctrl := autoscale.NewReactive(eng, stations, asCfg)
	ctrl.Start()

	res := &AutoscaleResult{Result: *newResult("edge+autoscale", cfg.Summary, tr.Len())}
	if cfg.TimelineBin > 0 {
		res.Timeline = stats.NewTimeSeries(0, cfg.TimelineBin)
	}

	var drained bool
	var consumed uint64
	var f *feeder
	maybeStop := func() {
		if drained && consumed == f.count {
			ctrl.Stop()
		}
	}
	sink := queue.DoneFunc(func(e *sim.Engine, r *queue.Request) {
		consumed++
		maybeStop()
		if r.Departure < cfg.Warmup {
			return
		}
		if r.Dropped {
			res.Dropped++
			return
		}
		e2e := r.EndToEnd()
		res.EndToEnd.Add(e2e)
		res.Completed++
		if res.Timeline != nil {
			res.Timeline.Add(r.Generated, e2e)
		}
	})
	f = &feeder{
		src:  tr.Source(),
		pool: pool,
		sink: sink,
		prep: func(rec RequestRecord, req *queue.Request) {
			req.NetworkRTT = cfg.Path.Sample(netRng)
			req.ServiceTime = rec.ServiceTime
		},
		admit: func(e *sim.Engine, p any) {
			req := p.(*queue.Request)
			stations[req.Site].Arrive(req)
		},
		onDrained: func() {
			drained = true
			maybeStop()
		},
	}
	runDeployment(eng, f, &res.Result, stations)
	ctrl.Stop()

	var busySum, capSum float64
	for i, s := range stations {
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		res.Sites = append(res.Sites, SiteResult{
			Site:        i,
			Wait:        m.Wait,
			Utilization: m.Utilization(s.Servers),
			Arrivals:    s.TotalArrivals(),
			MeanRate:    m.Arrivals.Rate(),
		})
		res.FinalPerSite = append(res.FinalPerSite, s.Servers)
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	res.ScaleUps = ctrl.ScaleUps()
	res.ScaleDowns = ctrl.ScaleDowns()
	res.PeakServers = ctrl.PeakServers()
	res.Events = ctrl.Events
	return res
}

func TestAutoscaledTopologyMatchesDirect(t *testing.T) {
	procs := siteProcs([]float64{22, 8, 8, 4, 4})
	tr := Generate(GenSpec{Sites: 5, Duration: 400, Seed: 107, Arrivals: procs})
	cfg := EdgeConfig{Sites: 5, ServersPerSite: 1, Path: edgePath(), Warmup: 40, Seed: 17}
	asCfg := autoscale.Config{Interval: 2, Min: 1, Max: 4, UpThreshold: 1.5,
		DownThreshold: 0.2, Cooldown: 6}

	want := directRunEdgeAutoscaled(tr, cfg, asCfg)
	got := RunEdgeAutoscaled(tr, cfg, asCfg)

	compareResults(t, "autoscale", &want.Result, &got.Result)
	if want.ScaleUps == 0 {
		t.Fatal("controller never scaled; test is vacuous")
	}
	if got.ScaleUps != want.ScaleUps || got.ScaleDowns != want.ScaleDowns ||
		got.PeakServers != want.PeakServers {
		t.Errorf("controller telemetry diverges: ups %d/%d downs %d/%d peak %d/%d",
			got.ScaleUps, want.ScaleUps, got.ScaleDowns, want.ScaleDowns,
			got.PeakServers, want.PeakServers)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("%d events != direct %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Errorf("event %d diverges: %+v vs %+v", i, got.Events[i], want.Events[i])
		}
	}
	for i := range want.FinalPerSite {
		if got.FinalPerSite[i] != want.FinalPerSite[i] {
			t.Errorf("final servers at site %d: %d vs %d", i, got.FinalPerSite[i], want.FinalPerSite[i])
		}
	}
}

// chainTopology is a three-tier edge→regional→cloud overflow chain
// with thresholds low enough for a hot trace to engage both hops.
func chainTopology() Topology {
	regional := netem.Jittered("regional-13ms", 0.013, 0.002)
	cloud := cloudPath()
	return Topology{
		Name: "chain",
		Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
			{Name: "regional", Sites: 1, ServersPerSite: 2, Path: regional, Dispatch: CentralQueueDispatch},
			{Name: "cloud", Sites: 1, ServersPerSite: 4, Path: cloud, Dispatch: CentralQueueDispatch},
		},
		Spills: []SpillEdge{
			{From: "edge", To: "regional", Threshold: 3, DetourPath: &regional},
			{From: "regional", To: "cloud", Threshold: 5, DetourPath: &cloud},
		},
	}
}

func TestChainTopologyEndToEnd(t *testing.T) {
	procs := siteProcs([]float64{30, 10, 6, 4, 4})
	tr := Generate(GenSpec{Sites: 5, Duration: 300, Seed: 211, Arrivals: procs})
	res, err := Run(tr.Source(), chainTopology(), Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiers) != 3 {
		t.Fatalf("want 3 tier results, got %d", len(res.Tiers))
	}
	edge, regional, cloud := res.Tier("edge"), res.Tier("regional"), res.Tier("cloud")
	if edge.Spilled == 0 {
		t.Fatal("edge never spilled; chain test is vacuous")
	}
	if regional.Spilled == 0 {
		t.Fatal("regional never spilled; second hop untested")
	}
	if cloud.Served == 0 {
		t.Fatal("cloud tier served nothing despite regional spills")
	}
	if got := edge.Served + regional.Served + cloud.Served; got != res.Completed {
		t.Errorf("per-tier served %d != completed %d", got, res.Completed)
	}
	// Requests escalating through the chain pay every hop's RTT, so
	// each tier's fastest completion sits above a strictly higher
	// network floor (~1 ms, ~14 ms, ~39 ms). Means need not be ordered
	// — pooled deep tiers often beat a saturated edge site, which is
	// the paper's inversion story.
	if !(edge.EndToEnd.Min() < regional.EndToEnd.Min() &&
		regional.EndToEnd.Min() < cloud.EndToEnd.Min()) {
		t.Errorf("per-tier latency floors %.4f/%.4f/%.4f not ordered by hop count",
			edge.EndToEnd.Min(), regional.EndToEnd.Min(), cloud.EndToEnd.Min())
	}
	if cloud.EndToEnd.Min() < 0.025 {
		t.Errorf("cloud-served floor %.4fs below the accumulated detour RTTs", cloud.EndToEnd.Min())
	}
}

func TestHybridPinnedClassTopology(t *testing.T) {
	tr := Generate(GenSpec{Sites: 5, Duration: 200, PerSiteRate: 6, Seed: 223})
	topo := Topology{
		Name: "hybrid",
		Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
			{Name: "cloud", Sites: 1, ServersPerSite: 5, Path: cloudPath(), Dispatch: CentralQueueDispatch},
		},
		Classes: []ClassRule{{Name: "pinned", Sites: []int{1, 3}, Tier: "cloud"}},
	}
	res, err := Run(tr.Source(), topo, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	var pinned uint64
	for _, rec := range tr.Records {
		if rec.Site == 1 || rec.Site == 3 {
			pinned++
		}
	}
	cloud := res.Tier("cloud")
	if cloud.Served != pinned {
		t.Errorf("cloud served %d, want the %d pinned-site requests", cloud.Served, pinned)
	}
	edge := res.Tier("edge")
	if edge.Served != res.Completed-pinned {
		t.Errorf("edge served %d, want %d", edge.Served, res.Completed-pinned)
	}
	// The pinned sites' stations must see no arrivals at the edge.
	for _, s := range []int{1, 3} {
		if got := edge.Sites[s].Arrivals; got != 0 {
			t.Errorf("edge site %d saw %d arrivals despite pinning", s, got)
		}
	}
}

func TestFractionClassSplit(t *testing.T) {
	tr := Generate(GenSpec{Sites: 5, Duration: 300, PerSiteRate: 6, Seed: 227})
	topo := Topology{
		Name: "split",
		Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
			{Name: "cloud", Sites: 1, ServersPerSite: 5, Path: cloudPath(), Dispatch: CentralQueueDispatch},
		},
		Classes: []ClassRule{{Name: "half", Fraction: 0.5, Tier: "cloud"}},
	}
	res, err := Run(tr.Source(), topo, Options{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Tier("cloud").Served) / float64(res.Completed)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("cloud share %.3f, want ~0.5", frac)
	}
	// Same seed replays identically.
	res2, err := Run(tr.Source(), topo, Options{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tier("cloud").Served != res.Tier("cloud").Served ||
		res2.EndToEnd.Mean() != res.EndToEnd.Mean() {
		t.Error("fractional class split is not reproducible at a fixed seed")
	}
}

func TestHeterogeneousPerSitePaths(t *testing.T) {
	tr := Generate(GenSpec{Sites: 3, Duration: 200, PerSiteRate: 4, Seed: 229})
	topo := Topology{
		Name: "hetero",
		Tiers: []Tier{{
			Name: "edge", Sites: 3, ServersPerSite: 1, Path: edgePath(),
			PerSitePaths: []netem.Path{
				netem.Constant("metro", 0.001),
				netem.Constant("suburb", 0.010),
				netem.Constant("rural", 0.080),
			},
		}},
	}
	res, err := Run(tr.Source(), topo, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	sites := res.Tier("edge").Sites
	if len(sites) != 3 {
		t.Fatalf("want 3 site rows, got %d", len(sites))
	}
	m0, m1, m2 := sites[0].EndToEnd.Mean(), sites[1].EndToEnd.Mean(), sites[2].EndToEnd.Mean()
	if !(m0 < m1 && m1 < m2) {
		t.Errorf("per-site means %.4f/%.4f/%.4f not ordered by path RTT", m0, m1, m2)
	}
	if m2 < 0.080 {
		t.Errorf("rural site mean %.4fs below its 80 ms network floor", m2)
	}
}

func TestAutoscaledTierBehindSpill(t *testing.T) {
	procs := siteProcs([]float64{30, 12, 6, 4, 4})
	tr := Generate(GenSpec{Sites: 5, Duration: 300, Seed: 233, Arrivals: procs})
	regional := netem.Jittered("regional-13ms", 0.013, 0.002)
	topo := Topology{
		Name: "spill-into-autoscale",
		Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
			{
				Name: "regional", Sites: 1, ServersPerSite: 1, Path: regional,
				Dispatch: CentralQueueDispatch,
				Scaler: reactiveSpec(autoscale.Config{Interval: 2, Min: 1, Max: 6,
					UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 4}),
			},
		},
		Spills: []SpillEdge{{From: "edge", To: "regional", Threshold: 3, DetourPath: &regional}},
	}
	res, err := Run(tr.Source(), topo, Options{Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	reg := res.Tier("regional")
	if res.Tier("edge").Spilled == 0 || reg.Served == 0 {
		t.Fatal("spill into the autoscaled tier never engaged")
	}
	if reg.ScaleUps == 0 {
		t.Error("autoscaled tier behind the spill edge never scaled up")
	}
	if reg.PeakServers <= 1 {
		t.Errorf("peak servers %d, want growth beyond the initial 1", reg.PeakServers)
	}
	if res.Offered != res.Consumed {
		t.Errorf("offered %d != consumed %d: controller drain logic leaked requests",
			res.Offered, res.Consumed)
	}
}

func TestTopologySpecParse(t *testing.T) {
	spec := `{
		"name": "two-tier",
		"tiers": [
			{"name": "edge", "sites": 3, "servers": 1, "rttMs": 1, "jitterMs": 0.2},
			{"name": "cloud", "sites": 1, "servers": 3, "rttMs": 25, "dispatch": "central-queue"}
		],
		"spills": [{"from": "edge", "to": "cloud", "threshold": 2, "sampleToRtt": true}],
		"classes": [{"name": "pinned", "sites": [0], "tier": "cloud"}]
	}`
	topo, err := ParseTopology([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Tiers) != 2 || len(topo.Spills) != 1 || len(topo.Classes) != 1 {
		t.Fatalf("parsed shape wrong: %+v", topo)
	}
	if topo.Spills[0].DetourPath == nil {
		t.Error("sampleToRtt should attach the target tier's path as the detour")
	}
	tr := Generate(GenSpec{Sites: 3, Duration: 60, PerSiteRate: 8, Seed: 239})
	if _, err := Run(tr.Source(), topo, Options{Seed: 41}); err != nil {
		t.Fatalf("parsed topology failed to run: %v", err)
	}

	if _, err := ParseTopology([]byte(`{"tiers": [{"name": "x", "sites": 1, "rttMsTypo": 3}]}`)); err == nil {
		t.Error("unknown spec fields should be rejected")
	}
	if _, err := ParseTopology([]byte(`{"tiers": [{"name": "x", "sites": 1, "discipline": "nope"}]}`)); err == nil {
		t.Error("unknown discipline should be rejected")
	}
}

func TestPresetTopologiesRun(t *testing.T) {
	procs := siteProcs([]float64{24, 10, 6, 4, 4})
	tr := Generate(GenSpec{Sites: 5, Duration: 120, Seed: 241, Arrivals: procs})
	for _, name := range TopologyPresets() {
		topo, ok := PresetTopology(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		res, err := Run(tr.Source(), topo, Options{Seed: 43})
		if err != nil {
			t.Fatalf("preset %q failed: %v", name, err)
		}
		if res.Completed == 0 {
			t.Errorf("preset %q completed nothing", name)
		}
		if res.Offered != res.Consumed {
			t.Errorf("preset %q: offered %d != consumed %d", name, res.Offered, res.Consumed)
		}
	}
	if _, ok := PresetTopology("nope"); ok {
		t.Error("unknown preset should not resolve")
	}
	var names []string
	names = append(names, TopologyPresets()...)
	if len(names) < 3 || strings.Join(names, ",") == "" {
		t.Error("presets list should name at least the three shipped scenarios")
	}
}
