package cluster

import (
	"math"
	"testing"
)

// TestGenSpecRejectsBadNumbers: deriveArrivals must panic on the
// NaN/Inf holes that ordered comparisons miss — a NaN duration passes
// "<= 0" and would generate forever; a NaN rate or SCV poisons every
// inter-arrival draw.
func TestGenSpecRejectsBadNumbers(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := map[string]GenSpec{
		"zero sites":    {Duration: 10, PerSiteRate: 5},
		"zero duration": {Sites: 2, PerSiteRate: 5},
		"nan duration":  {Sites: 2, Duration: nan, PerSiteRate: 5},
		"inf duration":  {Sites: 2, Duration: inf, PerSiteRate: 5},
		"zero rate":     {Sites: 2, Duration: 10},
		"nan rate":      {Sites: 2, Duration: 10, PerSiteRate: nan},
		"inf rate":      {Sites: 2, Duration: 10, PerSiteRate: inf},
		"negative rate": {Sites: 2, Duration: 10, PerSiteRate: -3},
		"nan scv":       {Sites: 2, Duration: 10, PerSiteRate: 5, ArrivalSCV: nan},
		"inf scv":       {Sites: 2, Duration: 10, PerSiteRate: 5, ArrivalSCV: inf},
		"negative scv":  {Sites: 2, Duration: 10, PerSiteRate: 5, ArrivalSCV: -0.4},
	}
	for name, spec := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: deriveArrivals accepted an invalid spec", name)
				}
			}()
			deriveArrivals(&spec)
		}()
	}
	// The happy path still derives: default SCV and an explicit one.
	for _, spec := range []GenSpec{
		{Sites: 2, Duration: 10, PerSiteRate: 5},
		{Sites: 2, Duration: 10, PerSiteRate: 5, ArrivalSCV: 1.2},
	} {
		if got := deriveArrivals(&spec); len(got) != 2 {
			t.Errorf("valid spec derived %d processes, want 2", len(got))
		}
	}
}
