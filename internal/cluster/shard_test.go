package cluster_test

// Sharded replay must be bit-identical across shard counts: RunSharded
// with N engines produces the same TopologyResult as with 1, for every
// preset, seed, warmup and summary mode, and for generator, trace and
// streaming-CSV sources. These tests are the determinism proof the
// -shards flag rests on; the CI race job runs them under -race to also
// certify the phase-1 goroutines share nothing mutable.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/cluster"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/trace"
)

func presetSpec(sites int, seed int64) cluster.GenSpec {
	return cluster.GenSpec{
		Sites:       sites,
		Duration:    120,
		PerSiteRate: 9,
		Seed:        seed,
	}
}

func runSharded(t *testing.T, preset string, shards int, warmup float64, mode stats.Mode, seed int64) *cluster.TopologyResult {
	t.Helper()
	topo, ok := cluster.PresetTopology(preset)
	if !ok {
		t.Fatalf("unknown preset %q", preset)
	}
	src := cluster.GenShards(presetSpec(topo.Tiers[0].Sites, seed))
	res, err := cluster.RunSharded(src, topo, cluster.Options{
		Warmup:  warmup,
		Seed:    seed,
		Summary: mode,
	}, shards)
	if err != nil {
		t.Fatalf("preset %s with %d shards: %v", preset, shards, err)
	}
	return res
}

// TestShardCountInvariance: whole TopologyResults are bit-identical
// for every shard count, across all shipped presets, seeds, warmup and
// summary modes. Shard count 8 exceeds the presets' 5 sites, proving
// the clamp path too.
func TestShardCountInvariance(t *testing.T) {
	for _, preset := range cluster.TopologyPresets() {
		if err := func() error {
			topo, _ := cluster.PresetTopology(preset)
			return cluster.Shardable(topo)
		}(); err != nil {
			t.Fatalf("preset %s must be shardable: %v", preset, err)
		}
		for _, seed := range []int64{1, 42} {
			for _, tc := range []struct {
				label  string
				warmup float64
				mode   stats.Mode
			}{
				{"exact", 0, stats.Exact},
				{"exact-warmup", 30, stats.Exact},
				{"bounded", 0, stats.Bounded},
				{"bounded-warmup", 30, stats.Bounded},
			} {
				want := runSharded(t, preset, 1, tc.warmup, tc.mode, seed)
				if want.Offered == 0 {
					t.Fatalf("%s/%s: no requests offered; test is vacuous", preset, tc.label)
				}
				if want.Offered != want.Consumed {
					t.Fatalf("%s/%s: offered %d != consumed %d", preset, tc.label,
						want.Offered, want.Consumed)
				}
				for _, shards := range []int{2, 3, 4, 8} {
					got := runSharded(t, preset, shards, tc.warmup, tc.mode, seed)
					compareTopologyResults(t,
						preset+"/"+tc.label+"/shards", want, got)
				}
			}
		}
	}
}

// TestShardedSourcesAgree: the three ShardedSource adapters — lazy
// generator ranges, materialized trace filtering, and re-scanned
// streaming CSV decoders — feed bit-identical sharded runs, at
// different shard counts.
func TestShardedSourcesAgree(t *testing.T) {
	const sites = 5
	topo := spillTopology(sites)
	opts := cluster.Options{Warmup: 20, Seed: 11, Summary: stats.Exact}
	mk := func() cluster.GenSpec { return presetSpec(sites, 7) }

	want, err := cluster.RunSharded(cluster.GenShards(mk()), topo, opts, 1)
	if err != nil {
		t.Fatalf("generator baseline: %v", err)
	}
	if want.Offered == 0 {
		t.Fatal("baseline offered no requests; test is vacuous")
	}

	got, err := cluster.RunSharded(cluster.TraceShards(cluster.Generate(mk())), topo, opts, 3)
	if err != nil {
		t.Fatalf("trace source: %v", err)
	}
	compareTopologyResults(t, "trace-shards", want, got)

	var buf bytes.Buffer
	if _, err := trace.WriteRequestsCSV(&buf, cluster.Stream(mk())); err != nil {
		t.Fatalf("encode CSV: %v", err)
	}
	csv := buf.String()
	factory := func() cluster.Source { return trace.StreamRequestsCSV(strings.NewReader(csv)) }
	got, err = cluster.RunSharded(cluster.SourceShards(factory, sites), topo, opts, 4)
	if err != nil {
		t.Fatalf("csv source: %v", err)
	}
	compareTopologyResults(t, "csv-shards", want, got)
}

// TestShardedAzureSourceDeterministic: the Azure per-bin decoder,
// re-scanned per shard through SourceShards, sharded at N matches
// sharded at 1.
func TestShardedAzureSourceDeterministic(t *testing.T) {
	const azureCSV = `bin,s0,s1,s2,s3
0,40,55,35,20
1,30,25,45,30
2,25,30,20,35
`
	factory := func() cluster.Source {
		return trace.StreamAzureCSV(strings.NewReader(azureCSV), trace.AzureStreamOptions{
			BinWidth: 30,
			Seed:     3,
		})
	}
	probe := trace.StreamAzureCSV(strings.NewReader(azureCSV), trace.AzureStreamOptions{})
	sites := probe.Sites()
	if sites <= 1 {
		t.Fatalf("azure trace has %d sites; want several", sites)
	}

	topo := spillTopology(sites)
	opts := cluster.Options{Seed: 5, Summary: stats.Exact}
	want, err := cluster.RunSharded(cluster.SourceShards(factory, sites), topo, opts, 1)
	if err != nil {
		t.Fatalf("azure baseline: %v", err)
	}
	if want.Offered == 0 {
		t.Fatal("azure baseline offered no requests; test is vacuous")
	}
	for _, shards := range []int{2, sites} {
		got, err := cluster.RunSharded(cluster.SourceShards(factory, sites), topo, opts, shards)
		if err != nil {
			t.Fatalf("azure %d shards: %v", shards, err)
		}
		compareTopologyResults(t, "azure-shards", want, got)
	}
}

// TestShardedSourceErrorSurfaces: a decode failure inside a shard
// worker comes back as an error, not a panic or a silently truncated
// result.
func TestShardedSourceErrorSurfaces(t *testing.T) {
	const bad = "time,site,service\n0.5,0,0.01\n1.0,1,0.02\nnot-a-number,0,0.01\n"
	factory := func() cluster.Source { return trace.StreamRequestsCSV(strings.NewReader(bad)) }
	topo := spillTopology(2)
	_, err := cluster.RunSharded(cluster.SourceShards(factory, 2), topo, cluster.Options{Seed: 1}, 2)
	if err == nil {
		t.Fatal("want a decode error from the sharded run, got none")
	}
	if !strings.Contains(err.Error(), "source failed") {
		t.Fatalf("error does not identify the source failure: %v", err)
	}
}

// TestShardableRejections: every coupling feature is named and
// rejected, and RunSharded refuses the options it cannot honor.
func TestShardableRejections(t *testing.T) {
	home := func() cluster.Topology {
		return cluster.Topology{
			Name: "reject",
			Tiers: []cluster.Tier{
				{Name: "edge", Sites: 3, ServersPerSite: 1, Path: netem.EdgePath},
				{Name: "cloud", Sites: 1, ServersPerSite: 3, Path: netem.CloudTypical,
					Dispatch: cluster.CentralQueueDispatch},
			},
			Spills: []cluster.SpillEdge{{From: "edge", To: "cloud", Threshold: 2}},
		}
	}

	t.Run("jockeying-home-tier", func(t *testing.T) {
		topo := home()
		topo.Tiers[0].JockeyThreshold = 2
		if err := cluster.Shardable(topo); err == nil || !strings.Contains(err.Error(), "jockeys") {
			t.Fatalf("want jockey rejection, got %v", err)
		}
	})
	t.Run("home-tier-scaler", func(t *testing.T) {
		topo := home()
		spec := autoscale.ReactiveSpec(autoscale.Config{
			Interval: 5, Min: 1, Max: 4, UpThreshold: 1.5, DownThreshold: 0.3, Cooldown: 15,
		})
		topo.Tiers[0].Scaler = &spec
		if err := cluster.Shardable(topo); err == nil || !strings.Contains(err.Error(), "autoscaler") {
			t.Fatalf("want home-scaler rejection, got %v", err)
		}
	})
	t.Run("bernoulli-class", func(t *testing.T) {
		topo := home()
		topo.Classes = []cluster.ClassRule{{Name: "split", Fraction: 0.25, Tier: "cloud"}}
		if err := cluster.Shardable(topo); err == nil || !strings.Contains(err.Error(), "Bernoulli") {
			t.Fatalf("want Bernoulli rejection, got %v", err)
		}
	})
	t.Run("shared-to-home-spill", func(t *testing.T) {
		topo := cluster.Topology{
			Name: "reject-reentry",
			Tiers: []cluster.Tier{
				{Name: "gateway", Sites: 1, ServersPerSite: 2, Path: netem.CloudTypical,
					Dispatch: cluster.CentralQueueDispatch},
				{Name: "edge", Sites: 3, ServersPerSite: 1, Path: netem.EdgePath},
			},
			Spills: []cluster.SpillEdge{{From: "gateway", To: "edge", Threshold: 4}},
		}
		if err := cluster.Shardable(topo); err == nil || !strings.Contains(err.Error(), "re-enters") {
			t.Fatalf("want re-entry rejection, got %v", err)
		}
	})
	t.Run("deep-home-detour", func(t *testing.T) {
		detour := netem.CloudTypical
		topo := cluster.Topology{
			Name: "reject-deep",
			Tiers: []cluster.Tier{
				{Name: "edge", Sites: 3, ServersPerSite: 1, Path: netem.EdgePath},
				{Name: "metro", Sites: 3, ServersPerSite: 1, Path: netem.EdgePath},
				{Name: "cloud", Sites: 1, ServersPerSite: 3, Path: netem.CloudTypical,
					Dispatch: cluster.CentralQueueDispatch},
			},
			Spills: []cluster.SpillEdge{
				{From: "edge", To: "metro", Threshold: 2},
				{From: "metro", To: "cloud", Threshold: 2, DetourPath: &detour},
			},
		}
		if err := cluster.Shardable(topo); err == nil || !strings.Contains(err.Error(), "detour") {
			t.Fatalf("want deep-detour rejection, got %v", err)
		}
	})
	t.Run("timeline-unsupported", func(t *testing.T) {
		src := cluster.GenShards(presetSpec(3, 1))
		_, err := cluster.RunSharded(src, home(), cluster.Options{TimelineBin: 1}, 2)
		if err == nil || !strings.Contains(err.Error(), "TimelineBin") {
			t.Fatalf("want timeline rejection, got %v", err)
		}
	})
	t.Run("probe-unsupported", func(t *testing.T) {
		src := cluster.GenShards(presetSpec(3, 1))
		_, err := cluster.RunSharded(src, home(), cluster.Options{Probe: func(int) {}}, 2)
		if err == nil || !strings.Contains(err.Error(), "Probe") {
			t.Fatalf("want probe rejection, got %v", err)
		}
	})
	t.Run("site-mismatch", func(t *testing.T) {
		src := cluster.GenShards(presetSpec(4, 1))
		_, err := cluster.RunSharded(src, home(), cluster.Options{}, 2)
		if err == nil || !strings.Contains(err.Error(), "sites") {
			t.Fatalf("want site-count rejection, got %v", err)
		}
	})
}
