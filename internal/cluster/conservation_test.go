package cluster

import (
	"testing"

	"repro/internal/autoscale"
	"repro/internal/netem"
	"repro/internal/stats"
)

// conservationTopologies enumerates one topology per routing feature:
// plain home routing, jockeying, bounded queues that drop, a pooled
// central queue, every registry dispatcher, a two-hop spill chain, a
// pinned class, heterogeneous paths, and an autoscaled tier behind a
// spill edge.
func conservationTopologies() map[string]Topology {
	regional := netem.Jittered("regional-13ms", 0.013, 0.002)
	cloud := cloudPath()
	topos := map[string]Topology{
		"edge-plain": {Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
		}},
		"edge-jockey": {Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(),
				JockeyThreshold: 2, DetourRTT: 0.005},
		}},
		"edge-bounded": {Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(), QueueCap: 1},
		}},
		"cloud-central": {Tiers: []Tier{
			{Name: "cloud", Sites: 1, ServersPerSite: 5, Path: cloud,
				Dispatch: CentralQueueDispatch},
		}},
		"chain": chainTopology(),
		"hybrid-class": {
			Tiers: []Tier{
				{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(), QueueCap: 2},
				{Name: "cloud", Sites: 1, ServersPerSite: 5, Path: cloud,
					Dispatch: CentralQueueDispatch},
			},
			Spills:  []SpillEdge{{From: "edge", To: "cloud", Threshold: 2, DetourPath: &cloud}},
			Classes: []ClassRule{{Name: "pinned", Sites: []int{4}, Tier: "cloud"}},
		},
		"spill-into-autoscale": {
			Tiers: []Tier{
				{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
				{Name: "regional", Sites: 1, ServersPerSite: 1, Path: regional,
					Dispatch: CentralQueueDispatch,
					Scaler: reactiveSpec(autoscale.Config{Interval: 2, Min: 1, Max: 5,
						UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 4})},
			},
			Spills: []SpillEdge{{From: "edge", To: "regional", Threshold: 2, DetourPath: &regional}},
		},
	}
	for _, pol := range []string{"round-robin", "least-connections", "power-of-two", "random"} {
		topos["cloud-"+pol] = Topology{Tiers: []Tier{
			{Name: "cloud", Sites: 5, ServersPerSite: 1, Path: cloud, Dispatch: pol},
		}}
	}
	return topos
}

// checkConservation asserts the request-conservation invariants of one
// run against its trace.
func checkConservation(t *testing.T, name string, tr *WorkloadTrace, res *TopologyResult, warmup float64) {
	t.Helper()
	if res.Offered != uint64(tr.Len()) {
		t.Errorf("%s: offered %d != trace length %d", name, res.Offered, tr.Len())
	}
	if res.Consumed != res.Offered {
		t.Errorf("%s: consumed %d != offered %d (requests leaked in flight)",
			name, res.Consumed, res.Offered)
	}
	measured := res.Completed + res.Dropped
	if warmup == 0 {
		if measured != res.Consumed {
			t.Errorf("%s: completed %d + dropped %d != consumed %d",
				name, res.Completed, res.Dropped, res.Consumed)
		}
	} else if measured > res.Consumed {
		t.Errorf("%s: measured %d exceeds consumed %d", name, measured, res.Consumed)
	}
	var served, dropped, arrivals uint64
	for _, tier := range res.Tiers {
		served += tier.Served
		dropped += tier.Dropped
		if got := tier.EndToEnd.N(); uint64(got) != tier.Served {
			t.Errorf("%s: tier %s digest holds %d, served %d", name, tier.Name, got, tier.Served)
		}
		for _, s := range tier.Sites {
			arrivals += s.Arrivals
		}
	}
	if served != res.Completed {
		t.Errorf("%s: per-tier served %d != completed %d", name, served, res.Completed)
	}
	if dropped != res.Dropped {
		t.Errorf("%s: per-tier dropped %d != dropped %d", name, dropped, res.Dropped)
	}
	if got := res.EndToEnd.N(); uint64(got) != res.Completed {
		t.Errorf("%s: aggregate digest holds %d, completed %d", name, got, res.Completed)
	}
	// Every offered request is admitted at exactly one station (spill
	// decisions happen before admission), warmup included.
	if arrivals != res.Offered {
		t.Errorf("%s: station arrivals %d != offered %d", name, arrivals, res.Offered)
	}
}

// TestRequestConservation: for every topology shape and several seeds,
// offered == completed + dropped + nothing — no request is lost or
// double-counted anywhere in the graph — and the per-tier digests
// aggregate exactly to the end-to-end Result counts.
func TestRequestConservation(t *testing.T) {
	procs := siteProcs([]float64{26, 12, 8, 5, 3})
	for _, seed := range []int64{1, 7, 1299827} {
		tr := Generate(GenSpec{Sites: 5, Duration: 200, Seed: seed, Arrivals: procs})
		for name, topo := range conservationTopologies() {
			res, err := Run(tr.Source(), topo, Options{Seed: seed + 101})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkConservation(t, name, tr, res, 0)
		}
	}
}

// TestRequestConservationWarmupAndBounded: the invariants survive a
// warmup prefix and the bounded summary mode.
func TestRequestConservationWarmupAndBounded(t *testing.T) {
	procs := siteProcs([]float64{26, 12, 8, 5, 3})
	tr := Generate(GenSpec{Sites: 5, Duration: 200, Seed: 271, Arrivals: procs})
	for name, topo := range conservationTopologies() {
		res, err := Run(tr.Source(), topo, Options{Seed: 11, Warmup: 30, Summary: stats.Bounded})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkConservation(t, name, tr, res, 30)
	}
}
