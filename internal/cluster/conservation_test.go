package cluster

import (
	"testing"

	"repro/internal/admit"
	"repro/internal/autoscale"
	"repro/internal/econ"
	"repro/internal/netem"
	"repro/internal/stats"
)

// conservationTopologies enumerates one topology per routing feature:
// plain home routing, jockeying, bounded queues that drop, a pooled
// central queue, every registry dispatcher, a two-hop spill chain, a
// pinned class, heterogeneous paths, and an autoscaled tier behind a
// spill edge.
func conservationTopologies() map[string]Topology {
	regional := netem.Jittered("regional-13ms", 0.013, 0.002)
	cloud := cloudPath()
	topos := map[string]Topology{
		"edge-plain": {Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
		}},
		"edge-jockey": {Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(),
				JockeyThreshold: 2, DetourRTT: 0.005},
		}},
		"edge-bounded": {Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(), QueueCap: 1},
		}},
		"cloud-central": {Tiers: []Tier{
			{Name: "cloud", Sites: 1, ServersPerSite: 5, Path: cloud,
				Dispatch: CentralQueueDispatch},
		}},
		"chain": chainTopology(),
		"hybrid-class": {
			Tiers: []Tier{
				{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(), QueueCap: 2},
				{Name: "cloud", Sites: 1, ServersPerSite: 5, Path: cloud,
					Dispatch: CentralQueueDispatch},
			},
			Spills:  []SpillEdge{{From: "edge", To: "cloud", Threshold: 2, DetourPath: &cloud}},
			Classes: []ClassRule{{Name: "pinned", Sites: []int{4}, Tier: "cloud"}},
		},
		"spill-into-autoscale": {
			Tiers: []Tier{
				{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
				{Name: "regional", Sites: 1, ServersPerSite: 1, Path: regional,
					Dispatch: CentralQueueDispatch,
					Scaler: reactiveSpec(autoscale.Config{Interval: 2, Min: 1, Max: 5,
						UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 4})},
			},
			Spills: []SpillEdge{{From: "edge", To: "regional", Threshold: 2, DetourPath: &regional}},
		},
	}
	for _, pol := range []string{"round-robin", "least-connections", "power-of-two", "random"} {
		topos["cloud-"+pol] = Topology{Tiers: []Tier{
			{Name: "cloud", Sites: 5, ServersPerSite: 1, Path: cloud, Dispatch: pol},
		}}
	}
	return topos
}

// checkConservation asserts the request-conservation invariants of one
// run against its trace.
func checkConservation(t *testing.T, name string, tr *WorkloadTrace, res *TopologyResult, warmup float64) {
	t.Helper()
	if res.Offered != uint64(tr.Len()) {
		t.Errorf("%s: offered %d != trace length %d", name, res.Offered, tr.Len())
	}
	if res.Consumed != res.Offered {
		t.Errorf("%s: consumed %d != offered %d (requests leaked in flight)",
			name, res.Consumed, res.Offered)
	}
	// Rejected is warmup-included (counted at the rejection instant),
	// Completed/Dropped are warmup-excluded — so the sum matches consumed
	// exactly only without a warmup prefix.
	measured := res.Completed + res.Dropped + res.Rejected
	if warmup == 0 {
		if measured != res.Consumed {
			t.Errorf("%s: completed %d + dropped %d + rejected %d != consumed %d",
				name, res.Completed, res.Dropped, res.Rejected, res.Consumed)
		}
	} else if measured > res.Consumed {
		t.Errorf("%s: measured %d exceeds consumed %d", name, measured, res.Consumed)
	}
	var served, dropped, rejected, arrivals uint64
	for _, tier := range res.Tiers {
		served += tier.Served
		dropped += tier.Dropped
		rejected += tier.Rejected
		if got := tier.EndToEnd.N(); uint64(got) != tier.Served {
			t.Errorf("%s: tier %s digest holds %d, served %d", name, tier.Name, got, tier.Served)
		}
		for _, s := range tier.Sites {
			arrivals += s.Arrivals
		}
		if tier.Classes != nil {
			var cs, cd, cr uint64
			for _, c := range tier.Classes {
				cs += c.Served
				cd += c.Dropped
				cr += c.Rejected
				if got := c.EndToEnd.N(); uint64(got) != c.Served {
					t.Errorf("%s: tier %s class %s digest holds %d, served %d",
						name, tier.Name, c.Name, got, c.Served)
				}
			}
			if cs != tier.Served || cd != tier.Dropped || cr != tier.Rejected {
				t.Errorf("%s: tier %s class sums served/dropped/rejected %d/%d/%d != tier %d/%d/%d",
					name, tier.Name, cs, cd, cr, tier.Served, tier.Dropped, tier.Rejected)
			}
		}
	}
	if served != res.Completed {
		t.Errorf("%s: per-tier served %d != completed %d", name, served, res.Completed)
	}
	if dropped != res.Dropped {
		t.Errorf("%s: per-tier dropped %d != dropped %d", name, dropped, res.Dropped)
	}
	if rejected != res.Rejected {
		t.Errorf("%s: per-tier rejected %d != rejected %d", name, rejected, res.Rejected)
	}
	if got := res.EndToEnd.N(); uint64(got) != res.Completed {
		t.Errorf("%s: aggregate digest holds %d, completed %d", name, got, res.Completed)
	}
	// Every offered request either reaches exactly one station or is
	// turned away by admission before queueing, warmup included.
	if arrivals != res.Offered-res.Rejected {
		t.Errorf("%s: station arrivals %d != offered %d - rejected %d",
			name, arrivals, res.Offered, res.Rejected)
	}
}

// TestRequestConservation: for every topology shape and several seeds,
// offered == completed + dropped + nothing — no request is lost or
// double-counted anywhere in the graph — and the per-tier digests
// aggregate exactly to the end-to-end Result counts.
func TestRequestConservation(t *testing.T) {
	procs := siteProcs([]float64{26, 12, 8, 5, 3})
	for _, seed := range []int64{1, 7, 1299827} {
		tr := Generate(GenSpec{Sites: 5, Duration: 200, Seed: seed, Arrivals: procs})
		for name, topo := range conservationTopologies() {
			res, err := Run(tr.Source(), topo, Options{Seed: seed + 101})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkConservation(t, name, tr, res, 0)
		}
	}
}

// TestRequestConservationWarmupAndBounded: the invariants survive a
// warmup prefix and the bounded summary mode.
func TestRequestConservationWarmupAndBounded(t *testing.T) {
	procs := siteProcs([]float64{26, 12, 8, 5, 3})
	tr := Generate(GenSpec{Sites: 5, Duration: 200, Seed: 271, Arrivals: procs})
	for name, topo := range conservationTopologies() {
		res, err := Run(tr.Source(), topo, Options{Seed: 11, Warmup: 30, Summary: stats.Bounded})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkConservation(t, name, tr, res, 30)
	}
}

// admissionTopologies enumerates one topology per admission shape:
// token-bucket and queue-length on a home tier, priority with class
// ranks, admission racing a spill edge, and admission on a pooled
// shared tier behind a spill.
func admissionTopologies() map[string]Topology {
	cloud := cloudPath()
	return map[string]Topology{
		"admit-token-bucket": {Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(),
				Admission: &admit.Spec{Policy: admit.TokenBucket, Rate: 4, Burst: 2}},
		}},
		"admit-queue-length-spill": {
			Tiers: []Tier{
				{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(),
					Admission: &admit.Spec{Policy: admit.QueueLength, Threshold: 2}},
				{Name: "cloud", Sites: 1, ServersPerSite: 5, Path: cloud,
					Dispatch: CentralQueueDispatch},
			},
			Spills: []SpillEdge{{From: "edge", To: "cloud", Threshold: 3, DetourPath: &cloud}},
		},
		"admit-priority-classes": {
			Tiers: []Tier{
				{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(),
					Admission: &admit.Spec{Policy: admit.Priority, Threshold: 2, Cutoff: 1}},
				{Name: "cloud", Sites: 1, ServersPerSite: 5, Path: cloud,
					Dispatch: CentralQueueDispatch},
			},
			Classes: []ClassRule{{Name: "pinned", Sites: []int{4}, Tier: "cloud"}},
		},
		"admit-shared-tier": {
			Tiers: []Tier{
				{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
				{Name: "cloud", Sites: 1, ServersPerSite: 3, Path: cloud,
					Dispatch:  CentralQueueDispatch,
					Admission: &admit.Spec{Policy: admit.QueueLength, Threshold: 4}},
			},
			Spills: []SpillEdge{{From: "edge", To: "cloud", Threshold: 2, DetourPath: &cloud}},
		},
	}
}

// checkCostConservation asserts TotalCost == Σ (Cost + RejectionCost).
func checkCostConservation(t *testing.T, name string, res *TopologyResult) {
	t.Helper()
	var sum float64
	for _, tier := range res.Tiers {
		sum += tier.Cost + tier.RejectionCost
	}
	if sum != res.TotalCost {
		t.Errorf("%s: per-tier cost %v != total %v", name, sum, res.TotalCost)
	}
}

// TestAdmissionConservation: the conservation invariants — now with
// offered == arrivals + rejected and completed + dropped + rejected ==
// consumed — hold for every admission shape, and a nonzero reject
// penalty keeps TotalCost conserved across tiers.
func TestAdmissionConservation(t *testing.T) {
	procs := siteProcs([]float64{26, 12, 8, 5, 3})
	pricing := econ.DefaultPricing()
	pricing.RejectPenalty = 0.002
	var rejected uint64
	for _, seed := range []int64{3, 17} {
		tr := Generate(GenSpec{Sites: 5, Duration: 200, Seed: seed, Arrivals: procs})
		for name, topo := range admissionTopologies() {
			res, err := Run(tr.Source(), topo, Options{Seed: seed + 7, Pricing: &pricing})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkConservation(t, name, tr, res, 0)
			checkCostConservation(t, name, res)
			rejected += res.Rejected
		}
	}
	if rejected == 0 {
		t.Fatal("no admission shape rejected anything; test is vacuous")
	}
}

// TestAdmissionConservationWarmupAndBounded: same invariants under a
// warmup prefix (Rejected stays warmup-included) and bounded summary.
func TestAdmissionConservationWarmupAndBounded(t *testing.T) {
	procs := siteProcs([]float64{26, 12, 8, 5, 3})
	tr := Generate(GenSpec{Sites: 5, Duration: 200, Seed: 97, Arrivals: procs})
	for name, topo := range admissionTopologies() {
		res, err := Run(tr.Source(), topo, Options{Seed: 13, Warmup: 30, Summary: stats.Bounded})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkConservation(t, name, tr, res, 30)
		checkCostConservation(t, name, res)
	}
}
