// Package cluster models the paper's two deployment shapes end to end:
// an edge deployment (k geo-distributed sites, m servers each, one queue
// per site) and a cloud deployment (k·m servers behind one load
// balancer), both fed by the *same* request trace so comparisons are
// paired exactly as in the paper's experiments (the cloud "sees the
// cumulative request rate of the edge sites", §4.2).
package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/app"
	"repro/internal/dist"
	"repro/internal/workload"
)

// RequestRecord is one client request: when it was issued, which edge
// site is its home, and how much compute it demands.
type RequestRecord struct {
	Time        float64 // generation time at the client, seconds
	Site        int     // home edge site
	ServiceTime float64 // execution time on the reference server, seconds
}

// WorkloadTrace is a time-ordered sequence of requests. The same trace
// drives both the edge and the cloud deployment of an experiment.
type WorkloadTrace struct {
	Records []RequestRecord
	Sites   int
}

// Duration returns the span from first to last request.
func (w *WorkloadTrace) Duration() float64 {
	if len(w.Records) == 0 {
		return 0
	}
	return w.Records[len(w.Records)-1].Time - w.Records[0].Time
}

// Len returns the number of requests.
func (w *WorkloadTrace) Len() int { return len(w.Records) }

// TotalRate returns the average aggregate request rate.
func (w *WorkloadTrace) TotalRate() float64 {
	d := w.Duration()
	if d <= 0 {
		return 0
	}
	return float64(len(w.Records)-1) / d
}

// SiteRates returns the average per-site request rates.
func (w *WorkloadTrace) SiteRates() []float64 {
	rates := make([]float64, w.Sites)
	d := w.Duration()
	if d <= 0 {
		return rates
	}
	for _, r := range w.Records {
		rates[r.Site]++
	}
	for i := range rates {
		rates[i] /= d
	}
	return rates
}

// MeanServiceTime returns the average service demand across the trace.
func (w *WorkloadTrace) MeanServiceTime() float64 {
	if len(w.Records) == 0 {
		return 0
	}
	var sum float64
	for _, r := range w.Records {
		sum += r.ServiceTime
	}
	return sum / float64(len(w.Records))
}

// GenSpec describes how to synthesize a workload trace.
type GenSpec struct {
	Sites       int
	Duration    float64 // seconds of workload to generate
	PerSiteRate float64 // arrival rate per site (req/s), used when Arrivals is nil
	ArrivalSCV  float64 // squared CoV of per-site inter-arrivals (default DefaultArrivalSCV)
	Model       app.InferenceModel
	Seed        int64
	// Arrivals optionally supplies one arrival process per site,
	// overriding PerSiteRate/ArrivalSCV (e.g. NHPP trace envelopes).
	Arrivals []workload.ArrivalProcess
}

// DefaultArrivalSCV is the squared CoV of the load generator's
// inter-arrival times. The paper's Gatling generator issues a fixed
// number of requests each second, which is substantially more regular
// than Poisson; together with app.DefaultServiceSCV this calibrates the
// simulator to the paper's measured crossover points (see EXPERIMENTS.md).
const DefaultArrivalSCV = 0.4

// Generate synthesizes a workload trace: per-site renewal (or supplied)
// arrival streams merged into one time-ordered record list, each request
// carrying a service time drawn from the inference model.
func Generate(spec GenSpec) *WorkloadTrace {
	if spec.Sites <= 0 {
		panic(fmt.Sprintf("cluster: GenSpec.Sites=%d invalid", spec.Sites))
	}
	if spec.Duration <= 0 {
		panic("cluster: GenSpec.Duration must be positive")
	}
	if spec.Model.D == nil {
		spec.Model = app.NewInferenceModel()
	}
	procs := spec.Arrivals
	if procs == nil {
		if spec.PerSiteRate <= 0 {
			panic("cluster: GenSpec needs PerSiteRate or Arrivals")
		}
		scv := spec.ArrivalSCV
		if scv == 0 {
			scv = DefaultArrivalSCV
		}
		procs = make([]workload.ArrivalProcess, spec.Sites)
		for i := range procs {
			procs[i] = workload.NewRenewal(dist.FitSCV(1/spec.PerSiteRate, scv))
		}
	} else if len(procs) != spec.Sites {
		panic(fmt.Sprintf("cluster: %d arrival processes for %d sites", len(procs), spec.Sites))
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	var recs []RequestRecord
	for site, p := range procs {
		siteRng := rand.New(rand.NewSource(rng.Int63()))
		svcRng := rand.New(rand.NewSource(rng.Int63()))
		t := 0.0
		for {
			next, ok := p.Next(t, siteRng)
			if !ok || next > spec.Duration {
				break
			}
			t = next
			recs = append(recs, RequestRecord{
				Time:        t,
				Site:        site,
				ServiceTime: spec.Model.SampleServiceTime(svcRng),
			})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Time != recs[j].Time {
			return recs[i].Time < recs[j].Time
		}
		return recs[i].Site < recs[j].Site
	})
	return &WorkloadTrace{Records: recs, Sites: spec.Sites}
}

// FromRecords builds a trace directly from records (e.g. decoded from a
// CSV trace file). Records are sorted by time.
func FromRecords(recs []RequestRecord, sites int) *WorkloadTrace {
	sorted := append([]RequestRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	return &WorkloadTrace{Records: sorted, Sites: sites}
}
