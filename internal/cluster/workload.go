// Package cluster models the paper's two deployment shapes end to end:
// an edge deployment (k geo-distributed sites, m servers each, one queue
// per site) and a cloud deployment (k·m servers behind one load
// balancer), both fed by the *same* request trace so comparisons are
// paired exactly as in the paper's experiments (the cloud "sees the
// cumulative request rate of the edge sites", §4.2).
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/app"
	"repro/internal/dist"
	"repro/internal/workload"
)

// RequestRecord is one client request: when it was issued, which edge
// site is its home, and how much compute it demands.
type RequestRecord struct {
	Time        float64 // generation time at the client, seconds
	Site        int     // home edge site
	ServiceTime float64 // execution time on the reference server, seconds
}

// WorkloadTrace is a time-ordered sequence of requests. The same trace
// drives both the edge and the cloud deployment of an experiment.
type WorkloadTrace struct {
	Records []RequestRecord
	Sites   int
}

// Duration returns the span from first to last request.
func (w *WorkloadTrace) Duration() float64 {
	if len(w.Records) == 0 {
		return 0
	}
	return w.Records[len(w.Records)-1].Time - w.Records[0].Time
}

// Len returns the number of requests.
func (w *WorkloadTrace) Len() int { return len(w.Records) }

// TotalRate returns the average aggregate request rate.
func (w *WorkloadTrace) TotalRate() float64 {
	d := w.Duration()
	if d <= 0 {
		return 0
	}
	return float64(len(w.Records)-1) / d
}

// SiteRates returns the average per-site request rates.
func (w *WorkloadTrace) SiteRates() []float64 {
	rates := make([]float64, w.Sites)
	d := w.Duration()
	if d <= 0 {
		return rates
	}
	for _, r := range w.Records {
		rates[r.Site]++
	}
	for i := range rates {
		rates[i] /= d
	}
	return rates
}

// MeanServiceTime returns the average service demand across the trace.
func (w *WorkloadTrace) MeanServiceTime() float64 {
	if len(w.Records) == 0 {
		return 0
	}
	var sum float64
	for _, r := range w.Records {
		sum += r.ServiceTime
	}
	return sum / float64(len(w.Records))
}

// GenSpec describes how to synthesize a workload trace.
type GenSpec struct {
	Sites       int
	Duration    float64 // seconds of workload to generate
	PerSiteRate float64 // arrival rate per site (req/s), used when Arrivals is nil
	ArrivalSCV  float64 // squared CoV of per-site inter-arrivals (default DefaultArrivalSCV)
	Model       app.InferenceModel
	Seed        int64
	// Arrivals optionally supplies one arrival process per site,
	// overriding PerSiteRate/ArrivalSCV (e.g. NHPP trace envelopes).
	Arrivals []workload.ArrivalProcess
	// PiecewiseEnvelope switches every NHPP arrival process to exact
	// per-segment simulation instead of thinning against the envelope
	// maximum — orders of magnitude fewer random draws on spiky
	// envelopes. The generated process is still exactly the envelope's
	// NHPP (gated by distributional KS tests), but it consumes random
	// streams differently, so traces generated with and without the
	// flag are NOT bit-identical to each other. Generate, Stream and
	// ParallelStream all honor it and remain bit-identical to one
	// another for either setting. Non-NHPP processes are unaffected.
	PiecewiseEnvelope bool
}

// DefaultArrivalSCV is the squared CoV of the load generator's
// inter-arrival times. The paper's Gatling generator issues a fixed
// number of requests each second, which is substantially more regular
// than Poisson; together with app.DefaultServiceSCV this calibrates the
// simulator to the paper's measured crossover points (see EXPERIMENTS.md).
const DefaultArrivalSCV = 0.4

// deriveArrivals validates the spec, defaults its model in place, and
// returns the per-site arrival processes. Shared by Generate and
// Stream so the two paths cannot drift apart — their bit-identical
// guarantee starts here.
func deriveArrivals(spec *GenSpec) []workload.ArrivalProcess {
	if spec.Sites <= 0 {
		panic(fmt.Sprintf("cluster: GenSpec.Sites=%d invalid", spec.Sites))
	}
	// NaN/Inf checked explicitly: ordered comparisons are false for NaN,
	// so "x <= 0" alone would accept a NaN duration and generate forever.
	if spec.Duration <= 0 || math.IsNaN(spec.Duration) || math.IsInf(spec.Duration, 0) {
		panic(fmt.Sprintf("cluster: GenSpec.Duration must be positive and finite, got %v", spec.Duration))
	}
	if spec.Model.D == nil {
		spec.Model = app.NewInferenceModel()
	}
	procs := spec.Arrivals
	if procs == nil {
		if spec.PerSiteRate <= 0 || math.IsNaN(spec.PerSiteRate) || math.IsInf(spec.PerSiteRate, 0) {
			panic(fmt.Sprintf("cluster: GenSpec needs a positive finite PerSiteRate or Arrivals, got rate %v", spec.PerSiteRate))
		}
		scv := spec.ArrivalSCV
		if scv < 0 || math.IsNaN(scv) || math.IsInf(scv, 0) {
			panic(fmt.Sprintf("cluster: GenSpec.ArrivalSCV must be finite and >= 0, got %v", scv))
		}
		if scv == 0 {
			scv = DefaultArrivalSCV
		}
		procs = make([]workload.ArrivalProcess, spec.Sites)
		for i := range procs {
			procs[i] = workload.NewRenewal(dist.FitSCV(1/spec.PerSiteRate, scv))
		}
	} else if len(procs) != spec.Sites {
		panic(fmt.Sprintf("cluster: %d arrival processes for %d sites", len(procs), spec.Sites))
	}
	if spec.PiecewiseEnvelope {
		// Flip NHPP processes to piecewise on private copies: the
		// caller's slice stays untouched, so concurrent range-restricted
		// derivations (parallel generation workers share one spec value)
		// never write to a shared process.
		flipped := make([]workload.ArrivalProcess, len(procs))
		for i, p := range procs {
			if nh, ok := p.(*workload.NHPP); ok && !nh.Piecewise {
				pc := *nh
				pc.Piecewise = true
				flipped[i] = &pc
			} else {
				flipped[i] = p
			}
		}
		procs = flipped
	}
	return procs
}

// siteSeeds derives each site's (arrival, service) stream seeds from
// the spec seed: the master stream hands every site an arrival seed
// then a service seed, in site order. This derivation order is part of
// the reproducibility contract Generate and Stream share. Seeds are
// cheap (16 bytes/site where a constructed rand.Rand costs ~5KB), so
// range-restricted consumers derive all seeds and construct generators
// only for the sites they replay.
func siteSeeds(seed int64, sites int) (arrSeed, svcSeed []int64) {
	rng := rand.New(rand.NewSource(seed))
	arrSeed = make([]int64, sites)
	svcSeed = make([]int64, sites)
	for i := 0; i < sites; i++ {
		arrSeed[i] = rng.Int63()
		svcSeed[i] = rng.Int63()
	}
	return arrSeed, svcSeed
}

// siteStreams constructs every site's random streams from siteSeeds.
func siteStreams(seed int64, sites int) (arr, svc []*rand.Rand) {
	arrSeed, svcSeed := siteSeeds(seed, sites)
	arr = make([]*rand.Rand, sites)
	svc = make([]*rand.Rand, sites)
	for i := 0; i < sites; i++ {
		arr[i] = rand.New(rand.NewSource(arrSeed[i]))
		svc[i] = rand.New(rand.NewSource(svcSeed[i]))
	}
	return arr, svc
}

// Generate synthesizes a workload trace: per-site renewal (or supplied)
// arrival streams merged into one time-ordered record list, each request
// carrying a service time drawn from the inference model.
func Generate(spec GenSpec) *WorkloadTrace {
	procs := deriveArrivals(&spec)
	arrRng, svcRng := siteStreams(spec.Seed, spec.Sites)
	var recs []RequestRecord
	for site, p := range procs {
		t := 0.0
		for {
			next, ok := p.Next(t, arrRng[site])
			if !ok || next > spec.Duration {
				break
			}
			t = next
			recs = append(recs, RequestRecord{
				Time:        t,
				Site:        site,
				ServiceTime: spec.Model.SampleServiceTime(svcRng[site]),
			})
		}
	}
	// Stable sort so records tying on (Time, Site) — batch arrivals fire
	// several same-instant requests at one site — keep their per-site
	// generation order. Stream produces the same sequence by a stable
	// k-way merge, so the two paths are bit-identical for every spec.
	sort.SliceStable(recs, func(i, j int) bool { return lessTimeSite(recs[i], recs[j]) })
	return &WorkloadTrace{Records: recs, Sites: spec.Sites}
}

// lessTimeSite is the record ordering every materialized path shares —
// and the key Stream's k-way merge reproduces — so it lives in exactly
// one place.
func lessTimeSite(a, b RequestRecord) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Site < b.Site
}

// FromRecords builds a trace directly from records (e.g. decoded from a
// CSV trace file). Records are stably sorted by (Time, Site) — the same
// ordering invariant Generate and Stream maintain, so same-instant
// records at one site keep their given order.
func FromRecords(recs []RequestRecord, sites int) *WorkloadTrace {
	sorted := append([]RequestRecord(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return lessTimeSite(sorted[i], sorted[j]) })
	return &WorkloadTrace{Records: sorted, Sites: sites}
}
