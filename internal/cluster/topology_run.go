package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/admit"
	"repro/internal/autoscale"
	"repro/internal/econ"
	"repro/internal/lb"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configures one topology run. The zero value replays with no
// warmup, seed 0, exact latency summaries and no timeline.
type Options struct {
	// Warmup discards measurements for requests departing before this
	// simulated time.
	Warmup float64
	// Seed derives every random stream of the run.
	Seed int64
	// Summary selects the latency-collection memory model (see
	// EdgeConfig.Summary).
	Summary stats.Mode
	// TimelineBin > 0 additionally collects a latency timeline with
	// the given bin width.
	TimelineBin float64
	// SizeHint pre-allocates exact-mode digests to the expected
	// completion count (the trace length), so retained samples do not
	// regrow from nil.
	SizeHint int
	// NoPerSiteLatency skips the per-home-site end-to-end digests a
	// home-routed entry tier otherwise collects, for long exact-mode
	// replays whose caller only needs tier-level latency.
	NoPerSiteLatency bool
	// Probe, when set, observes the event-calendar size at every
	// generated arrival (a diagnostic for the O(1)-memory property).
	Probe func(pending int)
	// Pricing prices each tier's integrated capacity for the cost
	// overlay (nil = econ.DefaultPricing). Tiers may override their
	// per-server-hour price via Tier.PricePerServerHour.
	Pricing *econ.Pricing
	// Backend selects the sim engine's calendar structure. The default
	// calendar queue and the reference binary heap implement the same
	// strict event order, so results are bit-identical either way; the
	// equivalence suite runs both to prove it.
	Backend sim.Backend
	// Pipeline selects the watermark-pipelined sharded backend: phase 2
	// overlaps phase 1 and boundary memory is bounded by PipelineRing.
	// Read by RunSharded (which delegates to RunPipelined); ignored by
	// Run.
	Pipeline bool
	// PipelineRing bounds each shard's boundary ring in records (0 =
	// default). Smaller rings mean tighter memory and more backpressure
	// stalls; results are identical either way.
	PipelineRing int
	// BacklogProbe, when set on a pipelined run, receives the peak
	// count of resident boundary records — captured by phase 1 but not
	// yet admitted to a phase-2 engine — after the run completes (a
	// diagnostic for the bounded-memory property). Ignored elsewhere.
	BacklogProbe func(peak int)
	// GenWorkers selects how many goroutines generate workload records
	// when the run's source comes from a GenSpec (see GenSource):
	// 0 or 1 = the serial Stream, N > 1 = ParallelStream with N
	// workers, -1 = one per CPU. Records are bit-identical either way;
	// only wall-clock changes.
	GenWorkers int
}

// GenSource builds the generator source the options ask for: the serial
// Stream, or ParallelStream when GenWorkers requests parallel
// generation. Both produce the identical record sequence, so callers
// can thread GenWorkers through without touching their results.
func (o Options) GenSource(spec GenSpec) Source {
	if o.GenWorkers > 1 || o.GenWorkers < 0 {
		return ParallelStream(spec, o.GenWorkers)
	}
	return Stream(spec)
}

// TierResult is one tier's share of a topology run.
type TierResult struct {
	Name string
	// Served counts measured completions at the tier; Spilled counts
	// requests the tier forwarded across its spill edge (counted at
	// the arrival instant, warmup included, matching the legacy
	// overflow runner); Dropped counts measured queue rejections.
	Served  uint64
	Spilled uint64
	Dropped uint64
	// Rejected counts requests the tier's admission policy refused at
	// their entry instant (warmup included, like Spilled). A rejected
	// request never reaches a station and never spills, so station
	// arrivals across the run equal Offered minus total rejections.
	Rejected uint64
	// EndToEnd collects client-observed latency of requests served at
	// this tier; Wait merges queueing delay across the tier's
	// stations.
	EndToEnd    stats.Digest
	Wait        stats.Digest
	Utilization float64
	Sites       []SiteResult
	// FinalServers is each station's server count at the end of the
	// run (differs from the configured counts under autoscaling).
	FinalServers []int
	// Scaler telemetry, populated when the tier has a controller.
	// ScalerPolicy is the controller's registry label ("" for static
	// tiers).
	ScalerPolicy string
	ScaleUps     int
	ScaleDowns   int
	PeakServers  int
	Events       []autoscale.Event
	// ServerSeconds integrates the tier's provisioned capacity over
	// the run: servers × duration for static tiers, the controller's
	// piecewise-constant integral for scaled ones.
	ServerSeconds float64
	// Cost overlay (§7 economics generalized to hierarchies): the
	// tier's capacity priced at its per-server-hour rate. Cost is the
	// whole-run spend; CostPerHour is the mean spend rate; CostPerReq
	// divides the spend across the tier's measured completions (0 when
	// the tier served nothing).
	Cost        float64
	CostPerHour float64
	CostPerReq  float64
	// RejectionCost prices the tier's rejected traffic at the run
	// pricing's per-request penalty (econ.Pricing.RejectPenalty): what
	// the shed load cost in lost requests, to weigh against the
	// server-hours the shedding saved. 0 without admission or penalty.
	RejectionCost float64
	// Classes breaks the tier's traffic down by SLO class when the
	// topology declares class rules: one entry per rule in declaration
	// order plus a final "unclassified" bucket for requests no rule
	// matched. Nil when the topology has no classes.
	Classes []ClassResult
}

// ClassResult is one SLO class's share of a tier: measured completions
// and queue drops (warmup excluded, like Served/Dropped) plus admission
// rejections (warmup included, like Rejected) and the class's
// end-to-end latency digest at this tier. Feed per-class means or
// rates to stats.Jain for a fairness index.
type ClassResult struct {
	Name     string
	Served   uint64
	Dropped  uint64
	Rejected uint64
	EndToEnd stats.Digest
}

// TopologyResult is a full topology run: the aggregate Result plus
// per-tier breakdowns and the request-conservation counters
// (Offered == Consumed == measured + warmup-discarded requests).
type TopologyResult struct {
	Result
	Tiers []TierResult
	// Offered counts records pulled from the source; Consumed counts
	// requests that finished (served or dropped, warmup included).
	// Every offered request is eventually consumed.
	Offered  uint64
	Consumed uint64
	// TotalCost sums the per-tier cost overlay (capacity spend plus the
	// lost-request penalty on rejected traffic, in the pricing's
	// currency units); CostPerRequest divides it across all measured
	// completions. Per-tier costs are conserved:
	// TotalCost == Σ (Tiers[i].Cost + Tiers[i].RejectionCost).
	TotalCost      float64
	CostPerRequest float64
}

// Tier returns the named tier's result, or nil.
func (r *TopologyResult) Tier(name string) *TierResult {
	for i := range r.Tiers {
		if r.Tiers[i].Name == name {
			return &r.Tiers[i]
		}
	}
	return nil
}

// tierRuntime is one tier's live state during a run.
type tierRuntime struct {
	spec       Tier
	stations   []*queue.Station
	servers    []queue.Server
	geo        *lb.Geographic
	dispatcher lb.Dispatcher
	home       bool
	central    bool
	scaler     autoscale.Scaler
	spill      *spillRuntime
	slow       float64
	adm        admit.Policy
}

// spillRuntime is one spill edge's live state.
type spillRuntime struct {
	spec SpillEdge
	to   int
	// atGen marks the edge out of the entry tier whose detour RTT is
	// pre-sampled at generation time (rides in Request.AuxRTT).
	atGen bool
	rng   *rand.Rand // lazy stream for deeper edges
}

// topoExec executes one topology run.
type topoExec struct {
	eng     *sim.Engine
	tiers   []*tierRuntime
	res     *TopologyResult
	pool    *queue.FreeList
	admitEv sim.PayloadEvent
}

// admPressure returns the admission bucket key and pressure signal for
// a request entering the tier: home-routed tiers are site-local (the
// home station's waiting queue), any other tier is tier-wide (bucket
// 0, the least-loaded station's queue — so a queue-length policy
// rejects only when no station is below its threshold, mirroring
// wouldSpill's all-stations rule).
func admPressure(t *tierRuntime, req *queue.Request) (bucket, waiting int) {
	if t.home {
		return req.Site, t.stations[req.Site].QueueLength()
	}
	min := t.stations[0].QueueLength()
	for _, s := range t.stations[1:] {
		if q := s.QueueLength(); q < min {
			min = q
		}
	}
	return 0, min
}

// reject refuses a request at tier entry: counted at the rejection
// instant (warmup included, like Spilled), consumed through the
// request's sink, and recycled without ever reaching a station. Only
// tier-indexed counters are touched here — phase-2 partitions share
// one result across engines, and tier entries are partition-exclusive
// where aggregate scalars are not.
func (x *topoExec) reject(ti int, req *queue.Request) {
	tr := &x.res.Tiers[ti]
	tr.Rejected++
	if tr.Classes != nil {
		tr.Classes[req.Class].Rejected++
	}
	req.Rejected = true
	req.Departure = x.eng.Now()
	if req.Done != nil {
		req.Done.Consume(x.eng, req)
	}
	x.pool.Put(req)
}

// wouldSpill reports whether the tier is saturated for this request: a
// home-routed tier checks the request's home station, any other tier
// spills only when every station it could route to is at or beyond
// the threshold.
func (x *topoExec) wouldSpill(t *tierRuntime, req *queue.Request) bool {
	thr := t.spill.spec.Threshold
	if t.home {
		return t.stations[req.Site].Load() >= thr
	}
	for _, s := range t.stations {
		if s.Load() < thr {
			return false
		}
	}
	return true
}

// admit routes a request at its arrival instant at tier ti: admission
// policy first (a refused request is rejected outright), then spill
// across the tier's edge if saturated, otherwise dispatch into the
// tier's stations.
func (x *topoExec) admit(ti int, req *queue.Request) {
	t := x.tiers[ti]
	if t.adm != nil {
		bucket, waiting := admPressure(t, req)
		if !t.adm.Admit(x.eng.Now(), bucket, waiting, req.Class) {
			x.reject(ti, req)
			return
		}
	}
	if t.spill != nil && x.wouldSpill(t, req) {
		sp := t.spill
		x.res.Tiers[ti].Spilled++
		extra := sp.spec.DetourRTT
		if sp.atGen {
			extra += req.AuxRTT
		} else if sp.rng != nil {
			extra += sp.spec.DetourPath.Sample(sp.rng)
		}
		if to := x.tiers[sp.to]; to.slow != t.slow {
			req.ServiceTime = req.ServiceTime / t.slow * to.slow
		}
		req.Tag = uint64(sp.to)
		req.NetworkRTT += extra
		x.eng.AfterPayload(extra/2, x.admitEv, req)
		return
	}
	switch {
	case t.geo != nil:
		t.geo.Dispatch(req)
	case t.home:
		if req.Site < 0 || req.Site >= len(t.stations) {
			panic(fmt.Sprintf("cluster: request home site %d outside tier %q (%d sites)",
				req.Site, t.spec.Name, len(t.stations)))
		}
		t.stations[req.Site].Arrive(req)
	case t.central:
		t.stations[0].Arrive(req)
	default:
		t.dispatcher.Dispatch(req)
	}
}

// topoSink records every finished request of a topology run. One sink
// is shared by all requests; requests are recycled right after Consume
// returns, so nothing here may retain them.
type topoSink struct {
	res     *TopologyResult
	warmup  float64
	perSite []stats.Digest // per home-site end-to-end, home-routed entry tier
	pre     func()         // runs for every consumed request (autoscale drain)
}

// Consume implements queue.Sink.
func (s *topoSink) Consume(e *sim.Engine, r *queue.Request) {
	s.res.Consumed++
	if s.pre != nil {
		s.pre()
	}
	if r.Rejected {
		// Already counted at the rejection instant (topoExec.reject);
		// only the conservation counter above sees it here.
		return
	}
	if r.Departure < s.warmup {
		return
	}
	tier := &s.res.Tiers[r.Tag]
	if r.Dropped {
		s.res.Dropped++
		tier.Dropped++
		if tier.Classes != nil {
			tier.Classes[r.Class].Dropped++
		}
		return
	}
	e2e := r.EndToEnd()
	s.res.EndToEnd.Add(e2e)
	if s.perSite != nil && r.Site >= 0 && r.Site < len(s.perSite) {
		s.perSite[r.Site].Add(e2e)
	}
	s.res.Completed++
	tier.Served++
	tier.EndToEnd.Add(e2e)
	if tier.Classes != nil {
		c := &tier.Classes[r.Class]
		c.Served++
		c.EndToEnd.Add(e2e)
	}
	if s.res.Timeline != nil {
		s.res.Timeline.Add(r.Generated, e2e)
	}
}

// Run replays the source through the deployment graph on the streaming
// core: one pending arrival in the calendar, a shared sink, recycled
// requests. It returns per-tier breakdowns alongside the aggregate
// Result. The four legacy runners are thin wrappers over Run and stay
// bit-identical to their pre-topology implementations (see the
// equivalence suite).
func Run(src Source, topo Topology, opts Options) (*TopologyResult, error) {
	topo = topo.normalized()
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if opts.Pricing != nil {
		if err := opts.Pricing.Check(); err != nil {
			return nil, fmt.Errorf("cluster: Options.Pricing: %w", err)
		}
	}

	eng := sim.NewEngineBackend(opts.Seed, opts.Backend)
	netRng := eng.NewStream()
	pool := &queue.FreeList{}

	// Build tiers in declaration order. Stream creation order is part
	// of the reproducibility contract: the network stream first, then
	// each tier's jockey/dispatcher stream, then lazy spill streams,
	// then the class stream — so every legacy topology consumes
	// streams exactly as its pre-topology runner did.
	x := &topoExec{eng: eng, tiers: make([]*tierRuntime, len(topo.Tiers))}
	for ti := range topo.Tiers {
		t := topo.Tiers[ti]
		rt := &tierRuntime{
			spec:    t,
			home:    t.homeRouted(),
			central: t.Dispatch == CentralQueueDispatch,
			slow:    t.SlowdownFactor,
		}
		rt.stations = make([]*queue.Station, t.Sites)
		rt.servers = make([]queue.Server, t.Sites)
		for i := range rt.stations {
			c := t.ServersPerSite
			if t.PerSiteServers != nil {
				c = t.PerSiteServers[i]
			}
			name := fmt.Sprintf("%s-%d", t.Name, i)
			if rt.central && t.Sites == 1 {
				name = t.Name
			}
			rt.stations[i] = newStation(eng, name, c, t.Discipline,
				t.QueueCap, opts.Warmup, opts.Summary, pool)
			rt.servers[i] = rt.stations[i]
		}
		if t.JockeyThreshold > 0 {
			rt.geo = lb.NewGeographic(rt.servers, t.JockeyThreshold, t.DetourRTT, eng.NewStream())
		} else if !rt.home && !rt.central {
			d, err := lb.New(t.Dispatch, rt.servers, eng.NewStream())
			if err != nil {
				return nil, fmt.Errorf("cluster: tier %q: %w", t.Name, err)
			}
			rt.dispatcher = d
		}
		if t.Admission != nil {
			p, err := admit.New(*t.Admission, admitBuckets(t))
			if err != nil {
				return nil, fmt.Errorf("cluster: tier %q: %w", t.Name, err)
			}
			rt.adm = p
		}
		x.tiers[ti] = rt
	}

	// Attach spill edges; the entry tier's sampled detour is drawn at
	// generation time from the network stream (legacy-overflow
	// compatible), deeper sampled edges get their own streams.
	var genSpill *spillRuntime
	for _, sp := range topo.Spills {
		from, to := topo.tierIndex(sp.From), topo.tierIndex(sp.To)
		rt := &spillRuntime{spec: sp, to: to}
		if sp.DetourPath != nil {
			if from == 0 {
				rt.atGen = true
				genSpill = rt
			} else {
				rt.rng = eng.NewStream()
			}
		}
		x.tiers[from].spill = rt
	}
	var classRng *rand.Rand
	for _, c := range topo.Classes {
		if c.Fraction > 0 && c.Fraction < 1 {
			classRng = eng.NewStream()
			break
		}
	}

	// Controllers tick from the moment the calendar starts, exactly as
	// in the legacy autoscaled runner: construct-then-Start in tier
	// order arms each ticker in the same calendar sequence the
	// pre-Scaler code produced.
	var ctrls []autoscale.Scaler
	for _, rt := range x.tiers {
		if rt.spec.Scaler != nil {
			s, err := autoscale.New(*rt.spec.Scaler, eng, rt.stations)
			if err != nil {
				return nil, fmt.Errorf("cluster: tier %q: %w", rt.spec.Name, err)
			}
			s.Start()
			rt.scaler = s
			ctrls = append(ctrls, s)
		}
	}

	res := &TopologyResult{Result: *newResult(topo.Name, opts.Summary, opts.SizeHint)}
	if opts.TimelineBin > 0 {
		res.Timeline = stats.NewTimeSeries(0, opts.TimelineBin)
	}
	names := classNamesOf(topo)
	res.Tiers = make([]TierResult, len(topo.Tiers))
	for i := range res.Tiers {
		res.Tiers[i].Name = topo.Tiers[i].Name
		res.Tiers[i].EndToEnd = stats.NewDigest(opts.Summary, 0)
		res.Tiers[i].Wait = stats.NewDigest(opts.Summary, 0)
		res.Tiers[i].Classes = newClassResults(names, opts.Summary)
	}
	x.res = res
	x.pool = pool

	entry0 := x.tiers[0]
	var perSite []stats.Digest
	if entry0.home && !opts.NoPerSiteLatency {
		perSite = newDigests(opts.Summary, entry0.spec.Sites)
	}
	sink := &topoSink{res: res, warmup: opts.Warmup, perSite: perSite}
	x.admitEv = func(e *sim.Engine, p any) {
		req := p.(*queue.Request)
		x.admit(int(req.Tag), req)
	}

	// classify resolves a record's entry tier and SLO class rank: the
	// matched rule's index, or the rule count for unclassified traffic.
	// The Bernoulli draws happen in record order regardless of outcome,
	// so the random sequence matches the pre-class-rank engine exactly.
	classify := func(rec RequestRecord) (entry, class int) {
		for ci, c := range topo.Classes {
			if c.Sites != nil && !containsInt(c.Sites, rec.Site) {
				continue
			}
			if c.Fraction > 0 && c.Fraction < 1 && classRng.Float64() >= c.Fraction {
				continue
			}
			return topo.tierIndex(c.Tier), ci
		}
		return 0, len(topo.Classes)
	}

	f := &feeder{
		src:  src,
		pool: pool,
		sink: sink,
		prep: func(rec RequestRecord, req *queue.Request) {
			entry, class := 0, 0
			if len(topo.Classes) > 0 {
				entry, class = classify(rec)
			}
			req.Class = class
			et := x.tiers[entry]
			path := et.spec.Path
			if et.spec.PerSitePaths != nil {
				path = et.spec.PerSitePaths[rec.Site]
			}
			req.NetworkRTT = path.Sample(netRng)
			if genSpill != nil {
				// Drawn for every record in record order so the random
				// sequence is independent of routing decisions.
				req.AuxRTT = genSpill.spec.DetourPath.Sample(netRng)
			}
			req.ServiceTime = rec.ServiceTime * et.slow
			req.Tag = uint64(entry)
		},
		admit: x.admitEv,
		probe: opts.Probe,
	}
	if len(ctrls) > 0 {
		// The controllers' tickers keep the calendar non-empty forever;
		// stop them once the source is drained and every emitted
		// request has been consumed, letting the engine drain.
		var drained bool
		stopAll := func() {
			if drained && res.Consumed == f.count {
				for _, c := range ctrls {
					c.Stop()
				}
			}
		}
		sink.pre = stopAll
		f.onDrained = func() {
			drained = true
			stopAll()
		}
	}

	var stations []*queue.Station
	for _, rt := range x.tiers {
		stations = append(stations, rt.stations...)
	}
	runDeployment(eng, f, &res.Result, stations)
	for _, c := range ctrls {
		c.Stop()
	}
	// A source that ended on a decode failure (FallibleSource) must
	// surface it: a replay over the decoded prefix would look like a
	// clean result over a silently truncated workload.
	if e, ok := src.(FallibleSource); ok {
		if err := e.Err(); err != nil {
			return nil, fmt.Errorf("cluster: source failed after %d records: %w", f.count, err)
		}
	}
	res.Offered = f.count

	// Assemble per-tier and aggregate measurements. The aggregate wait
	// digest merges station by station in global order, matching the
	// legacy runners' merge sequence exactly.
	pricing := econ.DefaultPricing()
	if opts.Pricing != nil {
		pricing = *opts.Pricing
	}
	var busyAll, capAll float64
	for ti, rt := range x.tiers {
		tr := &res.Tiers[ti]
		var busy, capacity float64
		for i, s := range rt.stations {
			m := s.Metrics()
			res.Wait.Merge(&m.Wait)
			tr.Wait.Merge(&m.Wait)
			sr := SiteResult{
				Site:        i,
				Wait:        m.Wait,
				Utilization: m.Utilization(s.Servers),
				Arrivals:    s.TotalArrivals(),
				MeanRate:    m.Arrivals.Rate(),
			}
			if ti == 0 && perSite != nil {
				sr.EndToEnd = perSite[i]
			}
			tr.Sites = append(tr.Sites, sr)
			tr.FinalServers = append(tr.FinalServers, s.Servers)
			busy += m.Busy.Average()
			capacity += float64(s.Servers)
		}
		if capacity > 0 {
			tr.Utilization = busy / capacity
		}
		if rt.geo != nil {
			res.Redirected += rt.geo.Redirected
		}
		if rt.scaler != nil {
			tel := rt.scaler.Telemetry(res.Duration)
			tr.ScalerPolicy = rt.spec.Scaler.Label()
			tr.ScaleUps = tel.ScaleUps
			tr.ScaleDowns = tel.ScaleDowns
			tr.PeakServers = tel.PeakServers
			tr.ServerSeconds = tel.ServerSeconds
			tr.Events = rt.scaler.EventLog()
		} else {
			// Static tiers hold their configured capacity for the whole
			// run.
			tr.ServerSeconds = capacity * res.Duration
		}
		priceTier(tr, rt.home, rt.spec.PricePerServerHour, pricing, res.Duration)
		res.Rejected += tr.Rejected
		res.TotalCost += tr.Cost + tr.RejectionCost
		busyAll += busy
		capAll += capacity
	}
	if capAll > 0 {
		res.Utilization = busyAll / capAll
	}
	if res.Completed > 0 {
		res.CostPerRequest = res.TotalCost / float64(res.Completed)
	}
	return res, nil
}

// priceTier applies the cost overlay to one assembled tier: capacity
// integral priced at the tier's override or the run pricing's rate for
// its shape, plus the lost-request penalty on rejected traffic. Shared
// by Run and RunSharded so the two paths cannot drift. The tier's
// Rejected counter must be final before this runs.
func priceTier(tr *TierResult, home bool, override float64, pricing econ.Pricing, duration float64) {
	price := override
	if price <= 0 {
		if home {
			price = pricing.EdgePerServerHour
		} else {
			price = pricing.CloudPerServerHour
		}
	}
	tr.Cost = tr.ServerSeconds / 3600 * price
	if duration > 0 {
		tr.CostPerHour = tr.Cost / (duration / 3600)
	}
	if tr.Served > 0 {
		tr.CostPerReq = tr.Cost / float64(tr.Served)
	}
	tr.RejectionCost = float64(tr.Rejected) * pricing.RejectPenalty
}

// admitBuckets returns the tier's admission bucket count: one per site
// on home-routed tiers (site-local state, the shardable shape), one
// for the whole tier elsewhere.
func admitBuckets(t Tier) int {
	if t.homeRouted() {
		return t.Sites
	}
	return 1
}

// classNamesOf lists the topology's SLO class buckets — one per rule
// plus a trailing "unclassified" — or nil when it declares no classes.
func classNamesOf(topo Topology) []string {
	if len(topo.Classes) == 0 {
		return nil
	}
	names := make([]string, len(topo.Classes)+1)
	for i, c := range topo.Classes {
		names[i] = c.Name
	}
	names[len(topo.Classes)] = "unclassified"
	return names
}

// newClassResults builds empty per-class result rows in the given
// summary mode; nil names yields nil.
func newClassResults(names []string, mode stats.Mode) []ClassResult {
	if names == nil {
		return nil
	}
	out := make([]ClassResult, len(names))
	for i := range out {
		out[i].Name = names[i]
		out[i].EndToEnd = stats.NewDigest(mode, 0)
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
