package cluster

import (
	"math/rand"
	"sort"
	"testing"
)

// harvestShapes builds boundary harvests spanning the shapes phase 1
// actually produces: fully sorted (uniform detours), a sorted prefix
// with a displaced tail (mixed detour offsets near the end), and fully
// random (adversarial). Records get unique (at, site, seq) triples so
// the canonical order is strict and the expected output unambiguous.
func harvestShapes(rng *rand.Rand, n int) map[string][]boundaryRec {
	mk := func() []boundaryRec {
		recs := make([]boundaryRec, n)
		at := 0.0
		for i := range recs {
			at += rng.Float64()
			recs[i] = boundaryRec{at: at, site: rng.Intn(8), seq: uint64(i)}
		}
		return recs
	}
	sorted := mk()
	displaced := mk()
	for i := n * 3 / 4; i < n; i++ {
		displaced[i].at = displaced[n*3/4].at * rng.Float64()
	}
	random := mk()
	rng.Shuffle(len(random), func(i, j int) {
		random[i], random[j] = random[j], random[i]
	})
	return map[string][]boundaryRec{
		"sorted":    sorted,
		"displaced": displaced,
		"random":    random,
	}
}

// TestSortBoundary: the sortedness-aware sort agrees with a plain
// sort.Slice ground truth on every harvest shape and size, including
// the empty and single-record edges.
func TestSortBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{0, 1, 2, 3, 17, 256, 4097} {
		shapes := harvestShapes(rng, n)
		for label, recs := range shapes {
			want := append([]boundaryRec(nil), recs...)
			sort.Slice(want, func(i, j int) bool { return boundaryBefore(&want[i], &want[j]) })
			got := append([]boundaryRec(nil), recs...)
			sortBoundary(got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d %s: record %d = %+v, want %+v", n, label, i, got[i], want[i])
				}
			}
		}
	}
	// Duplicate displacement values: ties within the tail must still
	// come out in the strict canonical order.
	recs := make([]boundaryRec, 64)
	for i := range recs {
		recs[i] = boundaryRec{at: float64(i % 4), site: i % 8, seq: uint64(i)}
	}
	want := append([]boundaryRec(nil), recs...)
	sort.Slice(want, func(i, j int) bool { return boundaryBefore(&want[i], &want[j]) })
	sortBoundary(recs)
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("ties: record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

// BenchmarkSortBoundary measures the sortedness-aware sort against the
// plain sort.Slice it replaced, on the three harvest shapes. The
// "sorted" case is the common one (uniform detour offsets keep shard
// event order canonical) and is where the O(n) verify pass pays off.
func BenchmarkSortBoundary(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(7))
	shapes := harvestShapes(rng, n)
	impls := []struct {
		name string
		fn   func([]boundaryRec)
	}{
		{"aware", sortBoundary},
		{"stdsort", func(recs []boundaryRec) {
			sort.Slice(recs, func(i, j int) bool { return boundaryBefore(&recs[i], &recs[j]) })
		}},
	}
	for _, shape := range []string{"sorted", "displaced", "random"} {
		src := shapes[shape]
		for _, impl := range impls {
			b.Run(shape+"/"+impl.name, func(b *testing.B) {
				buf := make([]boundaryRec, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(buf, src)
					impl.fn(buf)
				}
			})
		}
	}
}
