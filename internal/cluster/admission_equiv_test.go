package cluster_test

// Admission control must not perturb determinism: admission-off runs
// stay bit-identical to runs with a no-op policy, and admission-on
// runs are byte-identical across the serial, sharded (every shard
// count), pipelined and broadcast backends. Every policy is a
// deterministic function of the arrival sequence it observes, so these
// suites are the proof the -admit flag rests on.

import (
	"testing"

	"repro/internal/admit"
	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/netem"
	"repro/internal/stats"
)

// admissionTopology is the equivalence deployment: a rate-limited
// home-routed edge spilling to a queue-gated pooled cloud, with one
// site's traffic pinned past the edge entirely.
func admissionTopology(sites int) cluster.Topology {
	cloudPath := netem.CloudTypical
	return cluster.Topology{
		Name: "admit-equiv",
		Tiers: []cluster.Tier{
			{Name: "edge", Sites: sites, ServersPerSite: 1, Path: netem.EdgePath,
				Admission: &admit.Spec{Policy: admit.TokenBucket, Rate: 6, Burst: 3}},
			{Name: "cloud", Sites: 1, ServersPerSite: sites, Path: cloudPath,
				Dispatch:  cluster.CentralQueueDispatch,
				Admission: &admit.Spec{Policy: admit.QueueLength, Threshold: 4 * sites}},
		},
		Spills: []cluster.SpillEdge{{
			From: "edge", To: "cloud", Threshold: 3, DetourPath: &cloudPath,
		}},
		Classes: []cluster.ClassRule{{Name: "pinned", Sites: []int{0}, Tier: "cloud"}},
	}
}

func admissionSpec(sites int, seed int64) cluster.GenSpec {
	return cluster.GenSpec{Sites: sites, Duration: 120, PerSiteRate: 9, Seed: seed}
}

// TestAdmissionShardCountInvariance: admission-enabled sharded runs
// are bit-identical for every shard count and for the pipelined
// backend, across warmup and summary modes. Token-bucket state is
// per-site and shared-tier policies observe the canonical merged
// order, so no partition can change a single admission decision.
func TestAdmissionShardCountInvariance(t *testing.T) {
	const sites = 5
	topo := admissionTopology(sites)
	if err := cluster.Shardable(topo); err != nil {
		t.Fatalf("admission topology must be shardable: %v", err)
	}
	pricing := econ.DefaultPricing()
	pricing.RejectPenalty = 0.001
	for _, seed := range []int64{1, 42} {
		for _, tc := range []struct {
			label  string
			warmup float64
			mode   stats.Mode
		}{
			{"exact", 0, stats.Exact},
			{"exact-warmup", 30, stats.Exact},
			{"bounded", 0, stats.Bounded},
		} {
			run := func(shards int, pipeline bool) *cluster.TopologyResult {
				res, err := cluster.RunSharded(cluster.GenShards(admissionSpec(sites, seed)), topo,
					cluster.Options{Warmup: tc.warmup, Seed: seed, Summary: tc.mode,
						Pricing: &pricing, Pipeline: pipeline}, shards)
				if err != nil {
					t.Fatalf("%s/shards=%d: %v", tc.label, shards, err)
				}
				return res
			}
			want := run(1, false)
			if want.Rejected == 0 {
				t.Fatalf("%s: no rejections; test is vacuous", tc.label)
			}
			for _, shards := range []int{2, 3, 5} {
				compareTopologyResults(t, tc.label+"/shards", want, run(shards, false))
				compareTopologyResults(t, tc.label+"/pipelined", want, run(shards, true))
			}
		}
	}
}

// TestAdmissionNoOpBitIdentical: policies that never reject leave the
// run bit-identical to no admission at all — the policies draw no
// randomness and touch no queue state, so the event sequence cannot
// diverge. This is the admission-off safety proof for the serial path.
func TestAdmissionNoOpBitIdentical(t *testing.T) {
	const sites = 5
	spec := admissionSpec(sites, 7)

	off := admissionTopology(sites)
	off.Tiers[0].Admission = nil
	off.Tiers[1].Admission = nil

	noop := admissionTopology(sites)
	noop.Tiers[0].Admission = &admit.Spec{Policy: admit.TokenBucket, Rate: 1e9}
	noop.Tiers[1].Admission = &admit.Spec{Policy: admit.QueueLength, Threshold: 1 << 30}

	run := func(topo cluster.Topology) *cluster.TopologyResult {
		res, err := cluster.Run(cluster.Stream(spec), topo, cluster.Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want, got := run(off), run(noop)
	if want.Offered == 0 {
		t.Fatal("no requests offered; test is vacuous")
	}
	if got.Rejected != 0 {
		t.Fatalf("no-op policies rejected %d requests", got.Rejected)
	}
	// The admission-off run has no Classes-independent divergence to
	// hide: zero out the per-tier class tables' Rejected expectations by
	// comparing everything field by field.
	compareTopologyResults(t, "noop-admission", want, got)
}

// TestAdmissionBroadcastMatchesPerRow: RunBroadcast with
// admission-enabled variants matches per-row Run calls byte for byte —
// the fan-out backend inherits admission through Run untouched.
func TestAdmissionBroadcastMatchesPerRow(t *testing.T) {
	const sites = 5
	spec := admissionSpec(sites, 11)
	pricing := econ.DefaultPricing()
	pricing.RejectPenalty = 0.001

	variants := []cluster.Variant{
		{Label: "admit", Topology: admissionTopology(sites),
			Opts: cluster.Options{Seed: 3, Pricing: &pricing}},
		{Label: "plain", Topology: spillTopology(sites), Opts: cluster.Options{Seed: 3}},
	}
	got, err := cluster.RunBroadcast(cluster.Stream(spec), variants, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		want, err := cluster.Run(cluster.Stream(spec), v.Topology, v.Opts)
		if err != nil {
			t.Fatal(err)
		}
		compareTopologyResults(t, "broadcast/"+v.Label, want, got[i])
	}
	if got[0].Rejected == 0 {
		t.Fatal("admission variant rejected nothing; test is vacuous")
	}
}

// TestAdmissionSerialMatchesShardedInvariants: the sharded path's
// admission counters satisfy the same conservation the serial path
// does (the two paths define different canonical stream disciplines,
// so their digests differ — but conservation must hold in both).
func TestAdmissionSerialMatchesShardedInvariants(t *testing.T) {
	const sites = 5
	topo := admissionTopology(sites)
	res, err := cluster.RunSharded(cluster.GenShards(admissionSpec(sites, 19)), topo,
		cluster.Options{Seed: 19}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("no rejections; test is vacuous")
	}
	if res.Completed+res.Dropped+res.Rejected != res.Consumed {
		t.Errorf("completed %d + dropped %d + rejected %d != consumed %d",
			res.Completed, res.Dropped, res.Rejected, res.Consumed)
	}
	var arrivals, rejected uint64
	for _, tier := range res.Tiers {
		rejected += tier.Rejected
		for _, s := range tier.Sites {
			arrivals += s.Arrivals
		}
	}
	if rejected != res.Rejected {
		t.Errorf("per-tier rejected %d != aggregate %d", rejected, res.Rejected)
	}
	if arrivals != res.Offered-res.Rejected {
		t.Errorf("station arrivals %d != offered %d - rejected %d",
			arrivals, res.Offered, res.Rejected)
	}
}
