package cluster

import (
	"runtime"

	"repro/internal/merge"
)

// genBatch is the unit parallel generation moves records in: each worker
// pushes batches of this size into its ring, and the consumer drains the
// merge the same number at a time. Large enough to amortize ring locking
// across the NHPP/renewal draw cost, small enough that a worker's
// watermark (its next pending record) advances promptly.
const genBatch = 512

// genRing bounds each worker's ring in records. Backpressure from a slow
// consumer therefore caps resident generated-but-unmerged records at
// workers × genRing, independent of how many records the spec describes —
// the same bounded-memory shape as the pipelined replay's boundary rings.
const genRing = 4096

// ParallelStream generates spec's records on `workers` goroutines and
// merges their substreams into one time-ordered sequence that is
// bit-identical to serial Stream(spec): same per-site seed derivation
// (siteSeeds hands every site its streams in site order regardless of
// which worker generates it), same (Time, Site) merge order, same
// generation-order ties within a site. Sites are split into contiguous
// balanced ranges, one per worker; each worker runs the ordinary
// streamRange generator over its range and publishes through a bounded
// watermarked ring (merge.Group), so generation overlaps and scales with
// cores the way phase-1 replay does.
//
// workers <= 0 means one per CPU (runtime.GOMAXPROCS); the count is
// clamped to spec.Sites, and a resolved count of 1 degrades to the
// serial Stream with no goroutines at all. A spec carrying explicit
// Arrivals follows the sharded-source contract: one distinct process
// instance per site, because concurrent workers advance their own
// sites' processes.
//
// The returned source is single-consumer. A consumer that abandons the
// stream early should call Stop (via the ParallelSource interface) to
// release the workers; otherwise they park on full rings until process
// exit.
func ParallelStream(spec GenSpec, workers int) Source {
	// Validate (and default the model) on the caller's goroutine so a
	// bad spec panics here, not inside a worker.
	probe := spec
	deriveArrivals(&probe)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Sites {
		workers = spec.Sites
	}
	if workers <= 1 {
		return Stream(spec)
	}

	g := merge.NewGroup[RequestRecord](workers, genRing, lessTimeSite,
		func(r RequestRecord) float64 { return r.Time })

	// Contiguous balanced site ranges, one worker each — the same
	// partition newShardRun deals replay shards.
	lo := 0
	for w := 0; w < workers; w++ {
		width := spec.Sites / workers
		if w < spec.Sites%workers {
			width++
		}
		go genWorker(g, w, spec, lo, lo+width)
		lo += width
	}
	return &parallelSource{g: g}
}

// genWorker generates sites [lo, hi) through the ordinary serial
// streamRange — the identical per-site draw order Stream uses — and
// publishes its sorted substream through ring w. The protocol mirrors
// the pipelined replay's shard publisher: push the full batch first,
// then advance the watermark to the next pending record's time (every
// later push carries Time >= it, because streamRange emits nondecreasing
// times), so the consumer can prove buffered records final without
// waiting for the ring to fill.
func genWorker(g *merge.Group[RequestRecord], w int, spec GenSpec, lo, hi int) {
	src := streamRange(spec, lo, hi)
	batch := make([]RequestRecord, 0, genBatch)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if len(batch) == genBatch {
			if !g.Push(w, batch) {
				return // consumer abandoned the stream
			}
			g.SetWatermark(w, rec.Time)
			batch = batch[:0]
		}
		batch = append(batch, rec)
	}
	g.Push(w, batch)
	g.Close(w)
}

// parallelSource drains the workers' merged output batch by batch.
type parallelSource struct {
	g    *merge.Group[RequestRecord]
	buf  []RequestRecord
	idx  int
	done bool
}

// Next implements Source.
func (s *parallelSource) Next() (RequestRecord, bool) {
	if s.idx >= len(s.buf) {
		if s.done {
			return RequestRecord{}, false
		}
		if s.buf == nil {
			s.buf = make([]RequestRecord, 0, genBatch)
		}
		var ok bool
		s.buf, ok = s.g.NextBatch(s.buf[:0], genBatch)
		s.idx = 0
		if !ok || len(s.buf) == 0 {
			s.done = true
			return RequestRecord{}, false
		}
	}
	rec := s.buf[s.idx]
	s.idx++
	return rec, true
}

// Stop abandons the stream: the generator workers drop their pending
// batches and exit instead of blocking on rings nobody will drain.
// Needed only when a consumer walks away before draining the source;
// Next keeps reporting the stream ended afterwards.
func (s *parallelSource) Stop() {
	s.g.Cancel()
	s.buf = s.buf[:0]
	s.idx = 0
	s.done = true
}

// ParallelSource is the early-abandon control surface a parallel
// generator source exposes: Stop releases its worker goroutines.
// Consumers that may not drain a Source to exhaustion should type-assert
// and call Stop on the way out.
type ParallelSource interface {
	Source
	Stop()
}

// GenerateParallel materializes spec's trace using `workers` generator
// goroutines — records bit-identical to Generate(spec), wall-clock
// divided across cores. workers <= 0 means one per CPU.
func GenerateParallel(spec GenSpec, workers int) *WorkloadTrace {
	src := ParallelStream(spec, workers)
	var recs []RequestRecord
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return &WorkloadTrace{Records: recs, Sites: spec.Sites}
}
