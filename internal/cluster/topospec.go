package cluster

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/admit"
	"repro/internal/autoscale"
	"repro/internal/netem"
	"repro/internal/queue"
)

// TopologySpec is the serializable form of a Topology, the schema
// behind cmd/edgesim's -topology flag. Times are in milliseconds
// (matching the CLI's other flags) and paths are described
// parametrically; Build converts to the simulator's seconds and
// netem.Path values.
type TopologySpec struct {
	Name    string      `json:"name"`
	Tiers   []TierSpec  `json:"tiers"`
	Spills  []SpillSpec `json:"spills,omitempty"`
	Classes []ClassSpec `json:"classes,omitempty"`
}

// TierSpec describes one tier.
type TierSpec struct {
	Name    string `json:"name"`
	Sites   int    `json:"sites"`
	Servers int    `json:"servers"`
	// PerSiteServers optionally overrides Servers per station.
	PerSiteServers []int `json:"perSiteServers,omitempty"`
	// RTTMs/JitterMs parameterize the client→tier path: base round
	// trip plus uniform jitter in [0, JitterMs].
	RTTMs    float64 `json:"rttMs"`
	JitterMs float64 `json:"jitterMs,omitempty"`
	// TailSCV > 0 switches the path to a heavy-tailed lognormal with
	// the given squared CoV around RTTMs (cellular last miles).
	TailSCV float64 `json:"tailScv,omitempty"`
	// PerSiteRTTMs gives each home site its own mean RTT
	// (heterogeneous per-site paths); JitterMs/TailSCV apply to each.
	PerSiteRTTMs []float64 `json:"perSiteRttMs,omitempty"`
	// Dispatch: "" = home routing, "central-queue", or an
	// lb.Policies() name.
	Dispatch string `json:"dispatch,omitempty"`
	// Discipline: "fcfs" (default), "lifo", or "sjf".
	Discipline string  `json:"discipline,omitempty"`
	QueueCap   int     `json:"queueCap,omitempty"`
	Slowdown   float64 `json:"slowdown,omitempty"`
	// Jockey/DetourMs configure §5.1 geographic balancing.
	Jockey   int     `json:"jockey,omitempty"`
	DetourMs float64 `json:"detourMs,omitempty"`
	// Scaler attaches a capacity controller by policy name (reactive
	// or predictive; see autoscale.Policies).
	Scaler *ScalerSpec `json:"scaler,omitempty"`
	// Autoscale is the legacy reactive-only block, kept decoding for
	// pre-scaler topology files; it is equivalent to a Scaler block
	// with policy "reactive". Setting both is an error.
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	// PricePerServerHour prices the tier's capacity for the cost
	// overlay (0 = the run pricing's default for the tier's shape).
	PricePerServerHour float64 `json:"pricePerServerHour,omitempty"`
	// Admission gates entry to the tier with an admit policy (see
	// admit.Policies); rejected requests count in TierResult.Rejected.
	Admission *AdmitSpec `json:"admission,omitempty"`
}

// AdmitSpec serializes an admit.Spec: the policy name plus the union
// of all policies' parameters. Rate is in admissions per second (per
// home site on a home-routed tier, tier-wide elsewhere) — already the
// simulator's units, so no millisecond conversion applies.
type AdmitSpec struct {
	Policy    string  `json:"policy"`
	Rate      float64 `json:"rate,omitempty"`
	Burst     float64 `json:"burst,omitempty"`
	Threshold int     `json:"threshold,omitempty"`
	Cutoff    int     `json:"cutoff,omitempty"`
}

// spec converts the JSON block to the admit layer's Spec.
func (s AdmitSpec) spec() admit.Spec {
	return admit.Spec{
		Policy:    s.Policy,
		Rate:      s.Rate,
		Burst:     s.Burst,
		Threshold: s.Threshold,
		Cutoff:    s.Cutoff,
	}
}

// AutoscaleSpec serializes an autoscale.Config (legacy reactive block).
type AutoscaleSpec struct {
	IntervalS float64 `json:"intervalS"`
	Min       int     `json:"min"`
	Max       int     `json:"max"`
	Up        float64 `json:"up"`
	Down      float64 `json:"down"`
	CooldownS float64 `json:"cooldownS"`
	Step      int     `json:"step,omitempty"`
}

// ScalerSpec serializes an autoscale.Spec: the policy name plus the
// union of both policies' parameters (reactive threshold fields,
// predictive forecast fields). Times are in seconds — control periods
// are autoscaler-scale, not network-scale, so the codec keeps the
// simulator's units here.
type ScalerSpec struct {
	Policy    string  `json:"policy"`
	IntervalS float64 `json:"intervalS"`
	Min       int     `json:"min"`
	Max       int     `json:"max"`
	// Reactive parameters.
	Up        float64 `json:"up,omitempty"`
	Down      float64 `json:"down,omitempty"`
	CooldownS float64 `json:"cooldownS,omitempty"`
	Step      int     `json:"step,omitempty"`
	// Predictive parameters (see autoscale.Spec and forecast.Names).
	Mu         float64 `json:"mu,omitempty"`
	TargetUtil float64 `json:"targetUtil,omitempty"`
	Forecaster string  `json:"forecaster,omitempty"`
	Horizon    int     `json:"horizon,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
	Beta       float64 `json:"beta,omitempty"`
}

// spec converts the JSON block to the autoscale layer's Spec.
func (s ScalerSpec) spec() autoscale.Spec {
	return autoscale.Spec{
		Policy:        s.Policy,
		Interval:      s.IntervalS,
		Min:           s.Min,
		Max:           s.Max,
		UpThreshold:   s.Up,
		DownThreshold: s.Down,
		Cooldown:      s.CooldownS,
		Step:          s.Step,
		Mu:            s.Mu,
		TargetUtil:    s.TargetUtil,
		Forecaster:    s.Forecaster,
		Horizon:       s.Horizon,
		Alpha:         s.Alpha,
		Beta:          s.Beta,
	}
}

// SpillSpec describes one overflow edge.
type SpillSpec struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Threshold int    `json:"threshold"`
	// DetourMs adds a fixed round trip per crossing; SampleToRTT
	// additionally samples the target tier's client path (the legacy
	// overflow runner's behavior).
	DetourMs    float64 `json:"detourMs,omitempty"`
	SampleToRTT bool    `json:"sampleToRtt,omitempty"`
}

// ClassSpec describes one pinned traffic class.
type ClassSpec struct {
	Name     string  `json:"name"`
	Sites    []int   `json:"sites,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	Tier     string  `json:"tier"`
}

// pathFrom builds one client path from the spec's parameters.
func pathFrom(name string, rttMs, jitterMs, tailSCV float64) netem.Path {
	if tailSCV > 0 {
		return netem.HeavyTailed(name, rttMs/1000, tailSCV)
	}
	return netem.Jittered(name, rttMs/1000, jitterMs/1000)
}

// disciplineByName maps the spec's discipline strings.
func disciplineByName(s string) (queue.Discipline, error) {
	switch strings.ToLower(s) {
	case "", "fcfs":
		return queue.FCFS, nil
	case "lifo":
		return queue.LIFO, nil
	case "sjf":
		return queue.SJF, nil
	default:
		return 0, fmt.Errorf("cluster: unknown discipline %q (want fcfs|lifo|sjf)", s)
	}
}

// Build converts the spec into an executable Topology.
func (s TopologySpec) Build() (Topology, error) {
	topo := Topology{Name: s.Name}
	for _, ts := range s.Tiers {
		disc, err := disciplineByName(ts.Discipline)
		if err != nil {
			return Topology{}, fmt.Errorf("tier %q: %w", ts.Name, err)
		}
		t := Tier{
			Name:            ts.Name,
			Sites:           ts.Sites,
			ServersPerSite:  ts.Servers,
			PerSiteServers:  ts.PerSiteServers,
			Path:            pathFrom(ts.Name, ts.RTTMs, ts.JitterMs, ts.TailSCV),
			Discipline:      disc,
			QueueCap:        ts.QueueCap,
			Dispatch:        ts.Dispatch,
			SlowdownFactor:  ts.Slowdown,
			JockeyThreshold: ts.Jockey,
			DetourRTT:       ts.DetourMs / 1000,
		}
		if ts.PerSiteRTTMs != nil {
			t.PerSitePaths = make([]netem.Path, len(ts.PerSiteRTTMs))
			for i, ms := range ts.PerSiteRTTMs {
				t.PerSitePaths[i] = pathFrom(fmt.Sprintf("%s-%d", ts.Name, i), ms, ts.JitterMs, ts.TailSCV)
			}
		}
		t.PricePerServerHour = ts.PricePerServerHour
		if a := ts.Admission; a != nil {
			spec := a.spec()
			t.Admission = &spec
		}
		if ts.Autoscale != nil && ts.Scaler != nil {
			return Topology{}, fmt.Errorf("cluster: tier %q sets both the legacy %q and the %q block; use %q",
				ts.Name, "autoscale", "scaler", "scaler")
		}
		if a := ts.Autoscale; a != nil {
			spec := autoscale.ReactiveSpec(autoscale.Config{
				Interval:      a.IntervalS,
				Min:           a.Min,
				Max:           a.Max,
				UpThreshold:   a.Up,
				DownThreshold: a.Down,
				Cooldown:      a.CooldownS,
				Step:          a.Step,
			})
			t.Scaler = &spec
		}
		if sc := ts.Scaler; sc != nil {
			spec := sc.spec()
			t.Scaler = &spec
		}
		topo.Tiers = append(topo.Tiers, t)
	}
	for _, sp := range s.Spills {
		edge := SpillEdge{
			From:      sp.From,
			To:        sp.To,
			Threshold: sp.Threshold,
			DetourRTT: sp.DetourMs / 1000,
		}
		if sp.SampleToRTT {
			ti := topo.tierIndex(sp.To)
			if ti < 0 {
				return Topology{}, fmt.Errorf("cluster: spill edge to unknown tier %q", sp.To)
			}
			p := topo.Tiers[ti].Path
			edge.DetourPath = &p
		}
		topo.Spills = append(topo.Spills, edge)
	}
	for _, c := range s.Classes {
		topo.Classes = append(topo.Classes, ClassRule{
			Name:     c.Name,
			Sites:    c.Sites,
			Fraction: c.Fraction,
			Tier:     c.Tier,
		})
	}
	topo = topo.normalized()
	if err := topo.Validate(); err != nil {
		return Topology{}, err
	}
	return topo, nil
}

// ParseTopologySpec decodes a JSON topology spec, rejecting unknown
// fields so typos in hand-written specs fail loudly.
func ParseTopologySpec(data []byte) (TopologySpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s TopologySpec
	if err := dec.Decode(&s); err != nil {
		return TopologySpec{}, fmt.Errorf("cluster: bad topology spec: %w", err)
	}
	return s, nil
}

// ParseTopology decodes and builds a JSON topology spec in one step.
func ParseTopology(data []byte) (Topology, error) {
	s, err := ParseTopologySpec(data)
	if err != nil {
		return Topology{}, err
	}
	return s.Build()
}

// presetSpecs are the named multi-tier deployments shipped with the
// simulator — the scenarios the four legacy runners could not express.
var presetSpecs = map[string]TopologySpec{
	// A three-level hierarchy: overloaded edge sites spill to a small
	// regional cluster, and a saturated regional cluster spills on to
	// the big cloud pool. Each hop pays that tier's client RTT.
	"edge-regional-cloud": {
		Name: "edge-regional-cloud",
		Tiers: []TierSpec{
			{Name: "edge", Sites: 5, Servers: 1, RTTMs: 1, JitterMs: 0.2},
			{Name: "regional", Sites: 1, Servers: 3, RTTMs: 13, JitterMs: 2, Dispatch: CentralQueueDispatch},
			{Name: "cloud", Sites: 1, Servers: 5, RTTMs: 25, JitterMs: 3, Dispatch: CentralQueueDispatch},
		},
		Spills: []SpillSpec{
			{From: "edge", To: "regional", Threshold: 3, SampleToRTT: true},
			{From: "regional", To: "cloud", Threshold: 6, SampleToRTT: true},
		},
	},
	// A hybrid split: most traffic is served at the edge, but the
	// traffic of two sites (say, a compliance or GPU-bound class) is
	// pinned to the cloud pool, which also backstops edge overload.
	"hybrid-pinned-cloud": {
		Name: "hybrid-pinned-cloud",
		Tiers: []TierSpec{
			{Name: "edge", Sites: 5, Servers: 1, RTTMs: 1, JitterMs: 0.2},
			{Name: "cloud", Sites: 1, Servers: 5, RTTMs: 25, JitterMs: 3, Dispatch: CentralQueueDispatch},
		},
		Spills: []SpillSpec{
			{From: "edge", To: "cloud", Threshold: 4, SampleToRTT: true},
		},
		Classes: []ClassSpec{
			{Name: "cloud-pinned", Sites: []int{3, 4}, Tier: "cloud"},
		},
	},
	// Heterogeneous last miles: three metro sites at 1 ms, one
	// suburban site at 8 ms, one rural site behind a 40 ms link — all
	// backed by an autoscaled regional cluster absorbing overload.
	"hetero-paths": {
		Name: "hetero-paths",
		Tiers: []TierSpec{
			{
				Name: "edge", Sites: 5, Servers: 1,
				RTTMs: 1, JitterMs: 0.2,
				PerSiteRTTMs: []float64{1, 1, 1, 8, 40},
			},
			{
				Name: "regional", Sites: 1, Servers: 2, RTTMs: 13, JitterMs: 2,
				Dispatch: CentralQueueDispatch,
				Scaler: &ScalerSpec{
					Policy:    "reactive",
					IntervalS: 5, Min: 2, Max: 8, Up: 1.5, Down: 0.3, CooldownS: 15,
				},
			},
		},
		Spills: []SpillSpec{
			{From: "edge", To: "regional", Threshold: 3, SampleToRTT: true},
		},
	},
}

// TopologyPresets lists the shipped preset names.
func TopologyPresets() []string {
	return []string{"edge-regional-cloud", "hybrid-pinned-cloud", "hetero-paths"}
}

// PresetTopology builds a shipped preset by name.
func PresetTopology(name string) (Topology, bool) {
	s, ok := presetSpecs[name]
	if !ok {
		return Topology{}, false
	}
	t, err := s.Build()
	if err != nil {
		panic(fmt.Sprintf("cluster: preset %q invalid: %v", name, err))
	}
	return t, true
}
