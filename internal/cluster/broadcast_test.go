package cluster_test

// Broadcast replay must be observationally invisible: a variant fed
// from a broadcast ring replays the byte-identical record sequence —
// and therefore produces the bit-identical TopologyResult — that a
// fresh per-row source (the SourceFactory discipline) would have
// produced, for generator, CSV-decoded, and Azure-decoded sources,
// across exact/bounded summary modes, any ring size, and on the error
// path (a decoder failure fails every variant, as it fails a per-row
// run).

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// broadcastVariants is the comparison set: three deployments with
// distinct shapes and options, as a grid or policy comparison would
// run them.
func broadcastVariants(sites int, mode stats.Mode) []cluster.Variant {
	return []cluster.Variant{
		{Label: "spill", Topology: spillTopology(sites),
			Opts: cluster.Options{Seed: 5, Summary: mode}},
		{Label: "pure-edge", Topology: cluster.EdgeTopology(cluster.EdgeConfig{
			Sites: sites, ServersPerSite: 2, Path: netem.EdgePath}),
			Opts: cluster.Options{Seed: 6, Summary: mode, Warmup: 20}},
		{Label: "pooled-cloud", Topology: cluster.CloudTopology(cluster.CloudConfig{
			Servers: 2 * sites, Path: netem.CloudTypical}),
			Opts: cluster.Options{Seed: 7, Summary: mode}},
	}
}

// broadcastSources returns one per-row source factory per source kind:
// each call must yield a fresh source over the identical record
// sequence, exactly as RunScalerComparison's streaming rows or a file
// sweep would derive them.
func broadcastSources(t *testing.T) map[string]func() cluster.Source {
	t.Helper()
	spec := func() cluster.GenSpec {
		return cluster.GenSpec{Sites: 3, Duration: 120, PerSiteRate: 10, Seed: 91}
	}
	var csvText strings.Builder
	if _, err := trace.WriteRequestsCSV(&csvText, cluster.Stream(spec())); err != nil {
		t.Fatalf("building CSV fixture: %v", err)
	}
	return map[string]func() cluster.Source{
		"generator": func() cluster.Source { return cluster.Stream(spec()) },
		"csv": func() cluster.Source {
			src := trace.StreamRequestsCSV(strings.NewReader(csvText.String()))
			src.LimitSites(3)
			return src
		},
		// csvFixture is a per-bin count file (3 sites x 4 bins), the
		// Azure interchange format.
		"azure": func() cluster.Source {
			return trace.StreamAzureCSV(strings.NewReader(csvFixture),
				trace.AzureStreamOptions{BinWidth: 30, Seed: 17})
		},
	}
}

// TestBroadcastMatchesPerRowSources: RunBroadcast results are
// bit-identical to serial per-row re-derivation for every source kind
// and summary mode.
func TestBroadcastMatchesPerRowSources(t *testing.T) {
	for kind, factory := range broadcastSources(t) {
		for _, mode := range []struct {
			label string
			mode  stats.Mode
		}{{"exact", stats.Exact}, {"bounded", stats.Bounded}} {
			t.Run(kind+"/"+mode.label, func(t *testing.T) {
				variants := broadcastVariants(3, mode.mode)
				want := make([]*cluster.TopologyResult, len(variants))
				for i, v := range variants {
					res, err := cluster.Run(factory(), v.Topology, v.Opts)
					if err != nil {
						t.Fatalf("per-row %s: %v", v.Label, err)
					}
					want[i] = res
				}
				got, err := cluster.RunBroadcast(factory(), variants, 0)
				if err != nil {
					t.Fatalf("RunBroadcast: %v", err)
				}
				if want[0].Offered == 0 {
					t.Fatal("no requests offered; test is vacuous")
				}
				for i, v := range variants {
					compareTopologyResults(t, kind+"/"+mode.label+"/"+v.Label, want[i], got[i])
				}
			})
		}
	}
}

// TestBroadcastSmallRingBackpressure: a tiny ring forces the producer
// to block on backpressure constantly; results must not change.
func TestBroadcastSmallRingBackpressure(t *testing.T) {
	factory := broadcastSources(t)["generator"]
	variants := broadcastVariants(3, stats.Bounded)
	want, err := cluster.RunBroadcast(factory(), variants, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.RunBroadcast(factory(), variants, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		compareTopologyResults(t, "ring4/"+v.Label, want[i], got[i])
	}
}

// TestBroadcastSurfacesSourceError: a decoder failure mid-stream must
// fail the broadcast run, exactly as it fails a per-row run — never
// return clean results over the decoded prefix.
func TestBroadcastSurfacesSourceError(t *testing.T) {
	var csvText strings.Builder
	if _, err := trace.WriteRequestsCSV(&csvText,
		cluster.Stream(cluster.GenSpec{Sites: 3, Duration: 60, PerSiteRate: 8, Seed: 92})); err != nil {
		t.Fatal(err)
	}
	// Corrupt the tail: truncate mid-row so the decoder errors after a
	// valid prefix.
	text := csvText.String()
	truncated := text[:len(text)*2/3]
	truncated = truncated[:strings.LastIndex(truncated, "\n")+1] + "not,a,row\n"
	factory := func() cluster.Source {
		return trace.StreamRequestsCSV(strings.NewReader(truncated))
	}
	variants := broadcastVariants(3, stats.Bounded)
	if _, err := cluster.Run(factory(), variants[0].Topology, variants[0].Opts); err == nil {
		t.Fatal("per-row run over the corrupt trace succeeded; fixture is broken")
	}
	if _, err := cluster.RunBroadcast(factory(), variants, 0); err == nil {
		t.Fatal("RunBroadcast returned clean results over a corrupt trace")
	}
}

// TestBroadcastVariantErrorDoesNotHang: a variant that fails validation
// detaches from the fan, so the producer and the healthy variants run
// to completion and the error surfaces with the variant's label.
func TestBroadcastVariantErrorDoesNotHang(t *testing.T) {
	factory := broadcastSources(t)["generator"]
	variants := broadcastVariants(3, stats.Bounded)
	variants = append(variants, cluster.Variant{
		Label:    "invalid",
		Topology: cluster.Topology{Name: "empty"}, // no tiers: Validate fails
		Opts:     cluster.Options{Seed: 9, Summary: stats.Bounded},
	})
	_, err := cluster.RunBroadcast(factory(), variants, 8)
	if err == nil {
		t.Fatal("RunBroadcast succeeded with an invalid variant")
	}
	if !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("error %q does not name the failing variant", err)
	}
}
