package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/netem"
	"repro/internal/theory"
	"repro/internal/workload"
)

func TestGenerateRates(t *testing.T) {
	tr := Generate(GenSpec{Sites: 5, Duration: 500, PerSiteRate: 8, Seed: 1})
	if tr.Sites != 5 {
		t.Fatalf("Sites = %d", tr.Sites)
	}
	if got := tr.TotalRate(); math.Abs(got-40) > 2 {
		t.Errorf("total rate = %v, want ~40", got)
	}
	for i, r := range tr.SiteRates() {
		if math.Abs(r-8) > 1 {
			t.Errorf("site %d rate = %v, want ~8", i, r)
		}
	}
	if got := tr.MeanServiceTime(); math.Abs(got-1.0/13) > 0.005 {
		t.Errorf("mean service = %v, want ~77ms", got)
	}
}

// TestGenerateOrdered: records are time-ordered for any spec.
func TestGenerateOrdered(t *testing.T) {
	f := func(seed int64) bool {
		tr := Generate(GenSpec{Sites: 3, Duration: 50, PerSiteRate: 5, Seed: seed})
		for i := 1; i < len(tr.Records); i++ {
			if tr.Records[i].Time < tr.Records[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenSpec{Sites: 2, Duration: 100, PerSiteRate: 5, Seed: 9})
	b := Generate(GenSpec{Sites: 2, Duration: 100, PerSiteRate: 5, Seed: 9})
	if a.Len() != b.Len() {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("same seed should reproduce the trace exactly")
		}
	}
}

func TestGeneratePanics(t *testing.T) {
	for _, spec := range []GenSpec{
		{Sites: 0, Duration: 10, PerSiteRate: 1},
		{Sites: 2, Duration: 0, PerSiteRate: 1},
		{Sites: 2, Duration: 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Generate(%+v) should panic", spec)
				}
			}()
			Generate(spec)
		}()
	}
}

func TestFromRecordsSorts(t *testing.T) {
	tr := FromRecords([]RequestRecord{
		{Time: 5, Site: 0, ServiceTime: 0.1},
		{Time: 1, Site: 1, ServiceTime: 0.1},
	}, 2)
	if tr.Records[0].Time != 1 {
		t.Error("FromRecords should sort by time")
	}
}

// TestRunEdgeMatchesMM1Theory: an edge run at known utilization should
// reproduce the analytic sojourn within tolerance.
func TestRunEdgeMatchesMM1Theory(t *testing.T) {
	model := app.NewInferenceModelWith(1.0/13, 1) // exponential service
	tr := Generate(GenSpec{
		Sites: 5, Duration: 3000, PerSiteRate: 8,
		ArrivalSCV: 1, Model: model, Seed: 4,
	})
	res := RunEdge(tr, EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: netem.Constant("zero", 0),
		Warmup: 300, Seed: 5,
	})
	rho := 8.0 / 13
	want := theory.MM1Sojourn(rho, 13)
	got := res.EndToEnd.Mean()
	if math.Abs(got-want) > 0.12*want {
		t.Errorf("edge M/M/1 sojourn %v, want %v", got, want)
	}
	if math.Abs(res.Utilization-rho) > 0.05 {
		t.Errorf("utilization %v, want %v", res.Utilization, rho)
	}
}

// TestRunCloudMatchesMMcTheory: the central-queue cloud should match
// M/M/k.
func TestRunCloudMatchesMMcTheory(t *testing.T) {
	model := app.NewInferenceModelWith(1.0/13, 1)
	tr := Generate(GenSpec{
		Sites: 5, Duration: 3000, PerSiteRate: 8,
		ArrivalSCV: 1, Model: model, Seed: 6,
	})
	res := RunCloud(tr, CloudConfig{
		Servers: 5, Path: netem.Constant("zero", 0), Warmup: 300, Seed: 7,
	})
	want := theory.MMcSojourn(5, 8.0/13, 13)
	got := res.EndToEnd.Mean()
	if math.Abs(got-want) > 0.12*want {
		t.Errorf("cloud M/M/5 sojourn %v, want %v", got, want)
	}
}

// TestPerformanceInversionIntegration: the headline result. At low rate
// the edge wins; at high rate the cloud wins, with the typical 25 ms
// cloud.
func TestPerformanceInversionIntegration(t *testing.T) {
	sc, _ := netem.ScenarioByName("typical-25ms")
	run := func(rate float64) (edge, cloud float64) {
		tr := Generate(GenSpec{Sites: 5, Duration: 1200, PerSiteRate: rate, Seed: 8})
		e := RunEdge(tr, EdgeConfig{Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 120, Seed: 9})
		c := RunCloud(tr, CloudConfig{Servers: 5, Path: sc.Cloud, Warmup: 120, Seed: 10})
		return e.MeanLatency(), c.MeanLatency()
	}
	eLow, cLow := run(6)
	if eLow >= cLow {
		t.Errorf("at 6 req/s the edge should win: edge %v vs cloud %v", eLow, cLow)
	}
	eHigh, cHigh := run(12)
	if eHigh <= cHigh {
		t.Errorf("at 12 req/s the cloud should win: edge %v vs cloud %v", eHigh, cHigh)
	}
}

// TestK1EdgeAlwaysWins: §3.1.1 — a single-site edge with identical
// hardware sees the whole workload and still beats the cloud.
func TestK1EdgeAlwaysWins(t *testing.T) {
	sc, _ := netem.ScenarioByName("typical-25ms")
	tr := Generate(GenSpec{Sites: 1, Duration: 1000, PerSiteRate: 11 * 5, Seed: 11})
	e := RunEdge(tr, EdgeConfig{Sites: 1, ServersPerSite: 5, Path: sc.Edge, Warmup: 100, Seed: 12})
	c := RunCloud(tr, CloudConfig{Servers: 5, Path: sc.Cloud, Warmup: 100, Seed: 13})
	if e.MeanLatency() >= c.MeanLatency() {
		t.Errorf("k=1 edge should always win: edge %v vs cloud %v", e.MeanLatency(), c.MeanLatency())
	}
}

// TestEdgeSlowdownCausesK1Inversion: §3.1.1's exception — with slower
// edge hardware even k=1 can invert.
func TestEdgeSlowdownCausesK1Inversion(t *testing.T) {
	sc, _ := netem.ScenarioByName("nearby-13ms")
	tr := Generate(GenSpec{Sites: 1, Duration: 1000, PerSiteRate: 10 * 5, Seed: 14})
	e := RunEdge(tr, EdgeConfig{
		Sites: 1, ServersPerSite: 5, Path: sc.Edge, Warmup: 100, Seed: 15,
		SlowdownFactor: 1.25, // edge servers 25% slower
	})
	c := RunCloud(tr, CloudConfig{Servers: 5, Path: sc.Cloud, Warmup: 100, Seed: 16})
	if e.MeanLatency() <= c.MeanLatency() {
		t.Errorf("slowed k=1 edge should invert: edge %v vs cloud %v", e.MeanLatency(), c.MeanLatency())
	}
}

// TestCentralQueueBeatsRoundRobin: the cloud dispatch ablation.
func TestCentralQueueBeatsRoundRobin(t *testing.T) {
	tr := Generate(GenSpec{Sites: 5, Duration: 1500, PerSiteRate: 11, Seed: 17})
	path := netem.Constant("zero", 0)
	cq := RunCloud(tr, CloudConfig{Servers: 5, Path: path, Policy: CentralQueue, Warmup: 150, Seed: 18})
	rr := RunCloud(tr, CloudConfig{Servers: 5, Path: path, Policy: RoundRobin, Warmup: 150, Seed: 18})
	lc := RunCloud(tr, CloudConfig{Servers: 5, Path: path, Policy: LeastConn, Warmup: 150, Seed: 18})
	if cq.MeanLatency() >= rr.MeanLatency() {
		t.Errorf("central queue %v should beat round robin %v", cq.MeanLatency(), rr.MeanLatency())
	}
	if lc.MeanLatency() >= rr.MeanLatency() {
		t.Errorf("least-conn %v should beat round robin %v", lc.MeanLatency(), rr.MeanLatency())
	}
}

// TestGeoLBMitigatesSkew: jockeying reduces edge latency under skew.
func TestGeoLBMitigatesSkew(t *testing.T) {
	// A hot site at ~108% of one server's capacity, others cool.
	procs := siteProcs([]float64{14, 5, 5, 3, 3})
	tr := Generate(GenSpec{Sites: 5, Duration: 800, Seed: 19, Arrivals: procs})
	sc, _ := netem.ScenarioByName("typical-25ms")
	plain := RunEdge(tr, EdgeConfig{Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 80, Seed: 20})
	geo := RunEdge(tr, EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 80, Seed: 20,
		JockeyThreshold: 3, DetourRTT: 0.005,
	})
	if geo.Redirected == 0 {
		t.Fatal("expected jockeyed requests")
	}
	if geo.MeanLatency() >= plain.MeanLatency() {
		t.Errorf("geo LB %v should beat plain edge %v under skew",
			geo.MeanLatency(), plain.MeanLatency())
	}
}

// TestPerSiteCapacityMatchesSkew: provisioning per-site servers by load
// (Lemma 3.3 takeaway) should balance utilizations.
func TestPerSiteCapacityMatchesSkew(t *testing.T) {
	procs := siteProcs([]float64{20, 10, 5, 5, 5})
	tr := Generate(GenSpec{Sites: 5, Duration: 800, Seed: 21, Arrivals: procs})
	res := RunEdge(tr, EdgeConfig{
		Sites: 5, Path: netem.Constant("zero", 0), Warmup: 80, Seed: 22,
		PerSiteServers: []int{2, 1, 1, 1, 1},
	})
	u0 := res.Sites[0].Utilization
	for i := 1; i < 5; i++ {
		if res.Sites[i].Utilization > 1.01 {
			t.Errorf("site %d saturated: %v", i, res.Sites[i].Utilization)
		}
	}
	if u0 > 0.95 {
		t.Errorf("provisioned hot site still saturated: %v", u0)
	}
}

// siteProcs builds one Poisson arrival process per site at the given
// rates.
func siteProcs(rates []float64) []workload.ArrivalProcess {
	procs := make([]workload.ArrivalProcess, len(rates))
	for i, r := range rates {
		procs[i] = workload.NewPoisson(r)
	}
	return procs
}

// TestTimelineCollection: the timeline option bins latencies by request
// generation time.
func TestTimelineCollection(t *testing.T) {
	tr := Generate(GenSpec{Sites: 2, Duration: 300, PerSiteRate: 5, Seed: 23})
	res := RunEdge(tr, EdgeConfig{
		Sites: 2, ServersPerSite: 1, Path: netem.Constant("zero", 0),
		Seed: 24, TimelineBin: 60,
	})
	if res.Timeline == nil {
		t.Fatal("timeline not collected")
	}
	if res.Timeline.NumBins() < 4 {
		t.Errorf("timeline bins = %d, want >= 4", res.Timeline.NumBins())
	}
	var total int
	for i := 0; i < res.Timeline.NumBins(); i++ {
		total += res.Timeline.BinCount(i)
	}
	if total != res.EndToEnd.N() {
		t.Errorf("timeline holds %d observations, result holds %d", total, res.EndToEnd.N())
	}
}

// TestPairedTraceIdentical: edge and cloud runs must see the exact same
// request records (paired comparison).
func TestPairedTraceIdentical(t *testing.T) {
	tr := Generate(GenSpec{Sites: 3, Duration: 200, PerSiteRate: 6, Seed: 25})
	e := RunEdge(tr, EdgeConfig{Sites: 3, ServersPerSite: 1, Path: netem.Constant("z", 0), Seed: 26})
	c := RunCloud(tr, CloudConfig{Servers: 3, Path: netem.Constant("z", 0), Seed: 27})
	if e.Completed != c.Completed || int(e.Completed) != tr.Len() {
		t.Errorf("completions differ: edge %d cloud %d trace %d", e.Completed, c.Completed, tr.Len())
	}
}

func TestRunEdgeConfigValidation(t *testing.T) {
	tr := Generate(GenSpec{Sites: 2, Duration: 10, PerSiteRate: 1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("site-count mismatch should panic")
		}
	}()
	RunEdge(tr, EdgeConfig{Sites: 3, Path: netem.Constant("z", 0)})
}

func TestRunCloudPanicsOnZeroServers(t *testing.T) {
	tr := Generate(GenSpec{Sites: 1, Duration: 10, PerSiteRate: 1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("zero-server cloud should panic")
		}
	}()
	RunCloud(tr, CloudConfig{Servers: 0, Path: netem.Constant("z", 0)})
}
