package cluster

// The streaming replay core must be observationally identical to the
// seed's materialized runner, which scheduled one arrival event and one
// Done closure per trace record before starting the clock. The
// materialized runners below are verbatim ports of that seed code
// (adapted only to the Sink/Digest types); the tests assert the
// streaming path reproduces their results bit for bit on fixed traces.

import (
	"fmt"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/lb"
	"repro/internal/netem"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// materializedRunEdge is the seed's RunEdge: full trace expansion into
// per-request events and closures up front.
func materializedRunEdge(tr *WorkloadTrace, cfg EdgeConfig) *Result {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()

	stations := make([]*queue.Station, cfg.Sites)
	servers := make([]queue.Server, cfg.Sites)
	for i := range stations {
		c := cfg.ServersPerSite
		if cfg.PerSiteServers != nil {
			c = cfg.PerSiteServers[i]
		}
		stations[i] = queue.NewStation(eng, fmt.Sprintf("edge-%d", i), c, cfg.Discipline)
		stations[i].QueueCap = cfg.QueueCap
		stations[i].SetWarmup(cfg.Warmup)
		servers[i] = stations[i]
	}

	var geo *lb.Geographic
	if cfg.JockeyThreshold > 0 {
		geo = lb.NewGeographic(servers, cfg.JockeyThreshold, cfg.DetourRTT, eng.NewStream())
	}

	res := &Result{Label: "edge"}
	if cfg.TimelineBin > 0 {
		res.Timeline = stats.NewTimeSeries(0, cfg.TimelineBin)
	}
	perSiteE2E := make([]stats.Digest, cfg.Sites)

	slow := cfg.SlowdownFactor
	if slow <= 0 {
		slow = 1
	}

	var nextID uint64
	for _, rec := range tr.Records {
		rtt := cfg.Path.Sample(netRng)
		nextID++
		req := &queue.Request{
			ID:          nextID,
			Site:        rec.Site,
			ServiceTime: rec.ServiceTime * slow,
			NetworkRTT:  rtt,
			Generated:   rec.Time,
			Done: queue.DoneFunc(func(e *sim.Engine, r *queue.Request) {
				if r.Departure < cfg.Warmup {
					return
				}
				if r.Dropped {
					res.Dropped++
					return
				}
				e2e := r.EndToEnd()
				res.EndToEnd.Add(e2e)
				perSiteE2E[r.Site].Add(e2e)
				res.Completed++
				if res.Timeline != nil {
					res.Timeline.Add(r.Generated, e2e)
				}
			}),
		}
		arriveAt := rec.Time + rtt/2
		eng.At(arriveAt, func(e *sim.Engine) {
			if geo != nil {
				geo.Dispatch(req)
			} else {
				stations[req.Site].Arrive(req)
			}
		})
	}

	res.Duration = eng.Run()
	for _, s := range stations {
		s.Finish()
	}
	if geo != nil {
		res.Redirected = geo.Redirected
	}

	var busySum, capSum float64
	for i, s := range stations {
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		res.Sites = append(res.Sites, SiteResult{
			Site:        i,
			EndToEnd:    perSiteE2E[i],
			Wait:        m.Wait,
			Utilization: m.Utilization(s.Servers),
			Arrivals:    s.TotalArrivals(),
			MeanRate:    m.Arrivals.Rate(),
		})
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	return res
}

// materializedRunCloud is the seed's RunCloud.
func materializedRunCloud(tr *WorkloadTrace, cfg CloudConfig) *Result {
	if cfg.Policy == "" {
		cfg.Policy = CentralQueue
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()

	var stations []*queue.Station
	var dispatch func(r *queue.Request)
	switch cfg.Policy {
	case CentralQueue:
		st := queue.NewStation(eng, "cloud", cfg.Servers, cfg.Discipline)
		st.QueueCap = cfg.QueueCap
		st.SetWarmup(cfg.Warmup)
		stations = []*queue.Station{st}
		dispatch = st.Arrive
	default:
		stations = make([]*queue.Station, cfg.Servers)
		servers := make([]queue.Server, cfg.Servers)
		for i := range stations {
			stations[i] = queue.NewStation(eng, fmt.Sprintf("cloud-%d", i), 1, cfg.Discipline)
			stations[i].QueueCap = cfg.QueueCap
			stations[i].SetWarmup(cfg.Warmup)
			servers[i] = stations[i]
		}
		var d lb.Dispatcher
		switch cfg.Policy {
		case RoundRobin:
			d = lb.NewRoundRobin(servers)
		case LeastConn:
			d = lb.NewLeastConnections(servers, eng.NewStream())
		case PowerOfTwo:
			d = lb.NewPowerOfTwo(servers, eng.NewStream())
		case RandomSplit:
			d = lb.NewRandom(servers, eng.NewStream())
		}
		dispatch = d.Dispatch
	}

	res := &Result{Label: "cloud"}
	if cfg.TimelineBin > 0 {
		res.Timeline = stats.NewTimeSeries(0, cfg.TimelineBin)
	}

	var nextID uint64
	for _, rec := range tr.Records {
		rtt := cfg.Path.Sample(netRng)
		nextID++
		req := &queue.Request{
			ID:          nextID,
			Site:        -1,
			ServiceTime: rec.ServiceTime,
			NetworkRTT:  rtt,
			Generated:   rec.Time,
			Done: queue.DoneFunc(func(e *sim.Engine, r *queue.Request) {
				if r.Departure < cfg.Warmup {
					return
				}
				if r.Dropped {
					res.Dropped++
					return
				}
				e2e := r.EndToEnd()
				res.EndToEnd.Add(e2e)
				res.Completed++
				if res.Timeline != nil {
					res.Timeline.Add(r.Generated, e2e)
				}
			}),
		}
		eng.At(rec.Time+rtt/2, func(e *sim.Engine) { dispatch(req) })
	}

	res.Duration = eng.Run()
	var busySum, capSum float64
	for _, s := range stations {
		s.Finish()
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	res.Sites = []SiteResult{{Site: -1, EndToEnd: res.EndToEnd, Wait: res.Wait, Utilization: res.Utilization}}
	return res
}

// materializedRunOverflow is the seed's RunEdgeWithOverflow.
func materializedRunOverflow(tr *WorkloadTrace, cfg OverflowConfig) *OverflowResult {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()

	sites := make([]*queue.Station, cfg.Sites)
	for i := range sites {
		sites[i] = queue.NewStation(eng, fmt.Sprintf("edge-%d", i), cfg.ServersPerSite, queue.FCFS)
		sites[i].SetWarmup(cfg.Warmup)
	}
	cloud := queue.NewStation(eng, "cloud-backstop", cfg.CloudServers, queue.FCFS)
	cloud.SetWarmup(cfg.Warmup)

	res := &OverflowResult{Result: Result{Label: "edge+overflow"}}

	var nextID uint64
	for _, rec := range tr.Records {
		edgeRTT := cfg.EdgePath.Sample(netRng)
		cloudRTT := cfg.CloudPath.Sample(netRng)
		nextID++
		req := &queue.Request{
			ID:          nextID,
			Site:        rec.Site,
			ServiceTime: rec.ServiceTime,
			Generated:   rec.Time,
		}
		req.NetworkRTT = edgeRTT
		overflowed := false
		req.Done = queue.DoneFunc(func(e *sim.Engine, r *queue.Request) {
			if r.Departure < cfg.Warmup {
				return
			}
			e2e := r.EndToEnd()
			res.EndToEnd.Add(e2e)
			res.Completed++
			if overflowed {
				res.CloudServed++
				res.CloudOnly.Add(e2e)
			} else {
				res.EdgeServed++
				res.EdgeOnly.Add(e2e)
			}
		})
		eng.At(rec.Time+edgeRTT/2, func(e *sim.Engine) {
			home := sites[req.Site]
			if home.Load() >= cfg.OverflowThreshold {
				overflowed = true
				res.Overflowed++
				req.NetworkRTT = edgeRTT + cloudRTT
				e.After(cloudRTT/2, func(*sim.Engine) { cloud.Arrive(req) })
				return
			}
			home.Arrive(req)
		})
	}

	res.Duration = eng.Run()
	var busySum, capSum float64
	for i, s := range sites {
		s.Finish()
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		res.Sites = append(res.Sites, SiteResult{
			Site:        i,
			Wait:        m.Wait,
			Utilization: m.Utilization(s.Servers),
			Arrivals:    s.TotalArrivals(),
			MeanRate:    m.Arrivals.Rate(),
		})
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	cloud.Finish()
	res.Wait.Merge(&cloud.Metrics().Wait)
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	return res
}

// compareResults asserts bit-identical aggregate results.
func compareResults(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if got.Completed != want.Completed {
		t.Errorf("%s: Completed %d != materialized %d", name, got.Completed, want.Completed)
	}
	if got.Dropped != want.Dropped {
		t.Errorf("%s: Dropped %d != materialized %d", name, got.Dropped, want.Dropped)
	}
	if got.Redirected != want.Redirected {
		t.Errorf("%s: Redirected %d != materialized %d", name, got.Redirected, want.Redirected)
	}
	if got.EndToEnd.N() != want.EndToEnd.N() {
		t.Errorf("%s: N %d != materialized %d", name, got.EndToEnd.N(), want.EndToEnd.N())
	}
	if got.EndToEnd.Mean() != want.EndToEnd.Mean() {
		t.Errorf("%s: mean %v != materialized %v", name, got.EndToEnd.Mean(), want.EndToEnd.Mean())
	}
	if got.EndToEnd.P95() != want.EndToEnd.P95() {
		t.Errorf("%s: p95 %v != materialized %v", name, got.EndToEnd.P95(), want.EndToEnd.P95())
	}
	if got.Wait.Mean() != want.Wait.Mean() {
		t.Errorf("%s: wait mean %v != materialized %v", name, got.Wait.Mean(), want.Wait.Mean())
	}
	if got.Duration != want.Duration {
		t.Errorf("%s: duration %v != materialized %v", name, got.Duration, want.Duration)
	}
	if got.Utilization != want.Utilization {
		t.Errorf("%s: utilization %v != materialized %v", name, got.Utilization, want.Utilization)
	}
	if len(got.Sites) != len(want.Sites) {
		t.Fatalf("%s: %d site rows != materialized %d", name, len(got.Sites), len(want.Sites))
	}
	for i := range want.Sites {
		w, g := want.Sites[i], got.Sites[i]
		if g.Arrivals != w.Arrivals || g.Utilization != w.Utilization ||
			g.Wait.Mean() != w.Wait.Mean() || g.EndToEnd.Mean() != w.EndToEnd.Mean() {
			t.Errorf("%s: site %d diverges: arrivals %d/%d util %v/%v",
				name, i, g.Arrivals, w.Arrivals, g.Utilization, w.Utilization)
		}
	}
}

func equivalenceTrace(seed int64) *WorkloadTrace {
	return Generate(GenSpec{Sites: 5, Duration: 400, PerSiteRate: 10, Seed: seed})
}

func TestStreamingEdgeMatchesMaterialized(t *testing.T) {
	tr := equivalenceTrace(101)
	sc, _ := netem.ScenarioByName("typical-25ms")
	cfgs := map[string]EdgeConfig{
		"plain": {Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 40, Seed: 7},
		"geo-jockey": {Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 40, Seed: 7,
			JockeyThreshold: 3, DetourRTT: 0.005},
		"bounded-queue": {Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 40, Seed: 7,
			QueueCap: 2},
		"per-site-slowdown": {Sites: 5, Path: sc.Edge, Warmup: 40, Seed: 7,
			PerSiteServers: []int{2, 1, 1, 1, 2}, SlowdownFactor: 1.2},
		"timeline-lifo": {Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 40, Seed: 7,
			Discipline: queue.LIFO, TimelineBin: 30},
		"sjf": {Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 40, Seed: 7,
			Discipline: queue.SJF},
	}
	for name, cfg := range cfgs {
		want := materializedRunEdge(tr, cfg)
		got := RunEdge(tr, cfg)
		compareResults(t, "edge/"+name, want, got)
	}
}

func TestStreamingCloudMatchesMaterialized(t *testing.T) {
	tr := equivalenceTrace(102)
	sc, _ := netem.ScenarioByName("typical-25ms")
	for _, pol := range []DispatchPolicy{CentralQueue, RoundRobin, LeastConn, PowerOfTwo, RandomSplit} {
		cfg := CloudConfig{Servers: 5, Path: sc.Cloud, Policy: pol, Warmup: 40, Seed: 9}
		want := materializedRunCloud(tr, cfg)
		got := RunCloud(tr, cfg)
		compareResults(t, "cloud/"+string(pol), want, got)
	}
	// Bounded queues on the central station.
	cfg := CloudConfig{Servers: 3, Path: sc.Cloud, Warmup: 40, Seed: 9, QueueCap: 4}
	compareResults(t, "cloud/central-capped", materializedRunCloud(tr, cfg), RunCloud(tr, cfg))
}

func TestStreamingOverflowMatchesMaterialized(t *testing.T) {
	// A hot first site so the overflow path actually engages.
	procs := siteProcs([]float64{18, 5, 5, 3, 3})
	tr := Generate(GenSpec{Sites: 5, Duration: 400, Seed: 103, Arrivals: procs})
	sc, _ := netem.ScenarioByName("typical-25ms")
	cfg := OverflowConfig{
		Sites: 5, ServersPerSite: 1,
		EdgePath: sc.Edge, CloudPath: sc.Cloud,
		CloudServers: 5, OverflowThreshold: 3,
		Warmup: 40, Seed: 11,
	}
	want := materializedRunOverflow(tr, cfg)
	got := RunEdgeWithOverflow(tr, cfg)
	compareResults(t, "overflow", &want.Result, &got.Result)
	if got.Overflowed == 0 {
		t.Fatal("overflow path never engaged; test is vacuous")
	}
	if got.Overflowed != want.Overflowed || got.CloudServed != want.CloudServed ||
		got.EdgeServed != want.EdgeServed {
		t.Errorf("overflow split diverges: overflowed %d/%d cloud %d/%d edge %d/%d",
			got.Overflowed, want.Overflowed, got.CloudServed, want.CloudServed,
			got.EdgeServed, want.EdgeServed)
	}
	if got.CloudOnly.Mean() != want.CloudOnly.Mean() || got.EdgeOnly.Mean() != want.EdgeOnly.Mean() {
		t.Error("overflow per-path latency digests diverge")
	}
}

// TestStreamingTiedEventsMatchMaterialized: with deterministic RTTs and
// integer-coincident times, arrivals tie exactly with completions. The
// materialized runner pre-schedules arrivals (low seqs), so they win
// those ties; the streaming feeder must reproduce that via front-
// priority scheduling. Regression test: a t=1 arrival must see the home
// site still busy (Load()=1 from the t=0 request completing at exactly
// t=1) and overflow, not observe the freed server.
func TestStreamingTiedEventsMatchMaterialized(t *testing.T) {
	tr := FromRecords([]RequestRecord{
		{Time: 0, Site: 0, ServiceTime: 1},
		{Time: 1, Site: 0, ServiceTime: 1},
	}, 1)
	cfg := OverflowConfig{
		Sites: 1, ServersPerSite: 1,
		EdgePath: netem.Constant("zero", 0), CloudPath: netem.Constant("zero", 0),
		CloudServers: 1, OverflowThreshold: 1, Seed: 1,
	}
	want := materializedRunOverflow(tr, cfg)
	got := RunEdgeWithOverflow(tr, cfg)
	if want.Overflowed != 1 {
		t.Fatalf("materialized Overflowed = %d, scenario should overflow the tied arrival", want.Overflowed)
	}
	if got.Overflowed != want.Overflowed {
		t.Errorf("streaming Overflowed = %d, materialized = %d: tied arrival lost its FIFO win",
			got.Overflowed, want.Overflowed)
	}
	compareResults(t, "overflow/tied", &want.Result, &got.Result)

	// Same property through the edge path: deterministic service and
	// zero RTT make every completion tie with the next arrival.
	recs := make([]RequestRecord, 50)
	for i := range recs {
		recs[i] = RequestRecord{Time: float64(i), Site: 0, ServiceTime: 1}
	}
	dtr := FromRecords(recs, 1)
	ecfg := EdgeConfig{Sites: 1, ServersPerSite: 1, Path: netem.Constant("zero", 0),
		Seed: 2, QueueCap: 1}
	compareResults(t, "edge/tied", materializedRunEdge(dtr, ecfg), RunEdge(dtr, ecfg))
}

// TestScalerTierMatchesLegacyReactiveConfig: the unified Scaler
// interface is a pure refactor for the reactive path — a Tier carrying
// the legacy reactive config (as a converted Spec) must reproduce the
// pre-Scaler direct runner bit for bit, telemetry included, whether the
// spec arrives via Go construction or the legacy JSON autoscale block.
func TestScalerTierMatchesLegacyReactiveConfig(t *testing.T) {
	procs := siteProcs([]float64{24, 9, 7, 4, 4})
	tr := Generate(GenSpec{Sites: 5, Duration: 400, Seed: 109, Arrivals: procs})
	cfg := EdgeConfig{Sites: 5, ServersPerSite: 1, Path: netem.Jittered("edge-1ms", 0.001, 0.0002),
		Warmup: 40, Seed: 19}
	asCfg := autoscale.Config{Interval: 2, Min: 1, Max: 4, UpThreshold: 1.5,
		DownThreshold: 0.2, Cooldown: 6}
	want := directRunEdgeAutoscaled(tr, cfg, asCfg)
	if want.ScaleUps == 0 {
		t.Fatal("controller never scaled; test is vacuous")
	}

	topo := Topology{
		Name: "edge+autoscale",
		Tiers: []Tier{{
			Name: "edge", Sites: 5, ServersPerSite: 1, Path: cfg.Path,
			Scaler: reactiveSpec(asCfg),
		}},
	}
	run := func(tp Topology) *TopologyResult {
		res, err := Run(tr.Source(), tp, Options{
			Warmup: cfg.Warmup, Seed: cfg.Seed, SizeHint: tr.Len(), NoPerSiteLatency: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	check := func(name string, res *TopologyResult) {
		t.Helper()
		got := res.Result
		got.Label = want.Label
		got.Sites = res.Tiers[0].Sites
		compareResults(t, name, &want.Result, &got)
		tier := res.Tiers[0]
		if tier.ScalerPolicy != "reactive" {
			t.Errorf("%s: scaler policy = %q, want reactive", name, tier.ScalerPolicy)
		}
		if tier.ScaleUps != want.ScaleUps || tier.ScaleDowns != want.ScaleDowns ||
			tier.PeakServers != want.PeakServers {
			t.Errorf("%s: telemetry diverges: ups %d/%d downs %d/%d peak %d/%d", name,
				tier.ScaleUps, want.ScaleUps, tier.ScaleDowns, want.ScaleDowns,
				tier.PeakServers, want.PeakServers)
		}
		if len(tier.Events) != len(want.Events) {
			t.Fatalf("%s: %d events != direct %d", name, len(tier.Events), len(want.Events))
		}
		for i := range want.Events {
			if tier.Events[i] != want.Events[i] {
				t.Errorf("%s: event %d diverges: %+v vs %+v", name, i, tier.Events[i], want.Events[i])
			}
		}
	}
	check("scaler-spec", run(topo))

	// The same tier declared through the legacy JSON autoscale block.
	legacy := `{"name":"edge+autoscale","tiers":[{"name":"edge","sites":5,"servers":1,
		"rttMs":1,"jitterMs":0.2,
		"autoscale":{"intervalS":2,"min":1,"max":4,"up":1.5,"down":0.2,"cooldownS":6}}]}`
	fromJSON, err := ParseTopology([]byte(legacy))
	if err != nil {
		t.Fatal(err)
	}
	check("legacy-json", run(fromJSON))
}

// TestBoundedSummaryConsistent: the bounded memory model must agree with
// the exact one on counts and moments (identical Add sequences feed the
// same Welford stream) and approximate its quantiles.
func TestBoundedSummaryConsistent(t *testing.T) {
	tr := equivalenceTrace(104)
	sc, _ := netem.ScenarioByName("typical-25ms")
	base := EdgeConfig{Sites: 5, ServersPerSite: 1, Path: sc.Edge, Warmup: 40, Seed: 13}
	exact := RunEdge(tr, base)
	bounded := base
	bounded.Summary = stats.Bounded
	got := RunEdge(tr, bounded)
	if got.Completed != exact.Completed || got.EndToEnd.N() != exact.EndToEnd.N() {
		t.Fatalf("bounded run lost observations: %d vs %d", got.Completed, exact.Completed)
	}
	if got.EndToEnd.Mean() != exact.EndToEnd.Mean() {
		t.Errorf("bounded mean %v != exact %v", got.EndToEnd.Mean(), exact.EndToEnd.Mean())
	}
	if got.EndToEnd.Max() != exact.EndToEnd.Quantile(1) {
		t.Errorf("bounded max %v != exact %v", got.EndToEnd.Max(), exact.EndToEnd.Quantile(1))
	}
	ep, bp := exact.P95Latency(), got.P95Latency()
	if rel := abs(bp-ep) / ep; rel > 0.05 {
		t.Errorf("bounded p95 %v vs exact %v (rel err %.3f)", bp, ep, rel)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
