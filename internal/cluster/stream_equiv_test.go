package cluster_test

// Streaming generator sources must be observationally identical to the
// materialized Generate path: for every scenario family the paper uses
// (renewal, MMPP bursts, NHPP envelopes, batch arrivals, CSV-decoded
// envelopes, the synthetic Azure trace), Stream(spec) yields the exact
// record sequence Generate(spec).Source() replays, and whole topology
// runs driven by either source are bit-identical across warmup and
// summary modes. A second suite pins the O(1)-memory property: event
// calendar size, allocation counts and allocated bytes stay
// constant-bounded as the generated request count grows 10x/100x.

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// csvFixture is a small site-series envelope in the WriteSiteSeriesCSV
// interchange format (3 sites, 4 bins of 30s).
const csvFixture = `bin,site0,site1,site2
0,120,40,10
1,200,80,0
2,60,150,30
3,90,20,20
`

// streamScenarios returns one fresh-spec builder per scenario family.
// Builders must return fresh arrival processes every call: the
// processes are stateful and consumed by a single Stream/Generate.
func streamScenarios(t *testing.T) map[string]func() cluster.GenSpec {
	t.Helper()
	fixtureProcs := func() []workload.ArrivalProcess {
		series, err := trace.ReadSiteSeriesCSV(strings.NewReader(csvFixture), 30)
		if err != nil {
			t.Fatalf("fixture decode: %v", err)
		}
		return trace.ToArrivalProcesses(series, true)
	}
	azureProcs := func() []workload.ArrivalProcess {
		spec := trace.DefaultAzureSpec()
		spec.Sites = 5
		spec.Minutes = 4
		spec.Seed = 33
		return trace.ToArrivalProcesses(trace.GenerateAzure(spec), false)
	}
	return map[string]func() cluster.GenSpec{
		"renewal": func() cluster.GenSpec {
			return cluster.GenSpec{Sites: 4, Duration: 150, PerSiteRate: 9, Seed: 21}
		},
		"mmpp": func() cluster.GenSpec {
			procs := make([]workload.ArrivalProcess, 4)
			for i := range procs {
				procs[i] = workload.NewMMPP(3, 20, 30, 15)
			}
			return cluster.GenSpec{Sites: 4, Duration: 150, Seed: 22, Arrivals: procs}
		},
		"nhpp": func() cluster.GenSpec {
			procs := make([]workload.ArrivalProcess, 4)
			for i := range procs {
				procs[i] = workload.NewNHPP([]float64{4, 18, 9, 2}, 40, false)
			}
			return cluster.GenSpec{Sites: 4, Duration: 150, Seed: 23, Arrivals: procs}
		},
		"nhpp-piecewise": func() cluster.GenSpec {
			// The exact per-segment NHPP mode: not bit-identical to the
			// thinning family above (different random-stream use), but
			// Generate/Stream/ParallelStream must still agree with each
			// other on it exactly.
			procs := make([]workload.ArrivalProcess, 4)
			for i := range procs {
				procs[i] = workload.NewNHPP([]float64{4, 0, 18, 9, 2}, 30, false)
			}
			return cluster.GenSpec{Sites: 4, Duration: 150, Seed: 29, Arrivals: procs,
				PiecewiseEnvelope: true}
		},
		"batch": func() cluster.GenSpec {
			// Same-instant batches tie exactly on (Time, Site): the case
			// that forces the stable merge order.
			procs := make([]workload.ArrivalProcess, 4)
			for i := range procs {
				if i%2 == 0 {
					procs[i] = workload.NewSecondBatches(7)
				} else {
					procs[i] = workload.NewBatch(workload.NewPoisson(2), 5)
				}
			}
			return cluster.GenSpec{Sites: 4, Duration: 150, Seed: 24, Arrivals: procs}
		},
		"csv-fixture": func() cluster.GenSpec {
			return cluster.GenSpec{Sites: 3, Duration: 150, Seed: 25, Arrivals: fixtureProcs()}
		},
		"azure-fixture": func() cluster.GenSpec {
			return cluster.GenSpec{Sites: 5, Duration: 240, Seed: 26, Arrivals: azureProcs()}
		},
	}
}

// TestStreamMatchesGenerateRecords: Stream yields Generate's record
// sequence exactly, element for element, for every scenario family.
func TestStreamMatchesGenerateRecords(t *testing.T) {
	for name, mk := range streamScenarios(t) {
		t.Run(name, func(t *testing.T) {
			want := cluster.Generate(mk())
			if want.Len() == 0 {
				t.Fatal("scenario generated no records; test is vacuous")
			}
			src := cluster.Stream(mk())
			for i, rec := range want.Records {
				got, ok := src.Next()
				if !ok {
					t.Fatalf("stream ended at record %d of %d", i, want.Len())
				}
				if got != rec {
					t.Fatalf("record %d diverges: stream %+v, generate %+v", i, got, rec)
				}
			}
			if rec, ok := src.Next(); ok {
				t.Fatalf("stream yielded %+v past the %d generated records", rec, want.Len())
			}
		})
	}
}

// spillTopology is the equivalence deployment: home-routed edge sites
// spilling overload to a pooled cloud backstop.
func spillTopology(sites int) cluster.Topology {
	cloudPath := netem.CloudTypical
	return cluster.Topology{
		Name: "equiv",
		Tiers: []cluster.Tier{
			{Name: "edge", Sites: sites, ServersPerSite: 1, Path: netem.EdgePath},
			{Name: "cloud", Sites: 1, ServersPerSite: sites, Path: cloudPath,
				Dispatch: cluster.CentralQueueDispatch},
		},
		Spills: []cluster.SpillEdge{{
			From: "edge", To: "cloud", Threshold: 3, DetourPath: &cloudPath,
		}},
	}
}

// compareTopologyResults asserts bit-identical topology runs.
func compareTopologyResults(t *testing.T, name string, want, got *cluster.TopologyResult) {
	t.Helper()
	if got.Offered != want.Offered || got.Consumed != want.Consumed {
		t.Errorf("%s: offered/consumed %d/%d != %d/%d",
			name, got.Offered, got.Consumed, want.Offered, want.Consumed)
	}
	if got.Completed != want.Completed || got.Dropped != want.Dropped {
		t.Errorf("%s: completed/dropped %d/%d != %d/%d",
			name, got.Completed, got.Dropped, want.Completed, want.Dropped)
	}
	if got.Rejected != want.Rejected {
		t.Errorf("%s: rejected %d != %d", name, got.Rejected, want.Rejected)
	}
	if got.Duration != want.Duration {
		t.Errorf("%s: duration %v != %v", name, got.Duration, want.Duration)
	}
	if got.EndToEnd.N() != want.EndToEnd.N() ||
		got.EndToEnd.Mean() != want.EndToEnd.Mean() ||
		got.EndToEnd.P95() != want.EndToEnd.P95() {
		t.Errorf("%s: end-to-end digest diverges: n %d/%d mean %v/%v p95 %v/%v", name,
			got.EndToEnd.N(), want.EndToEnd.N(), got.EndToEnd.Mean(), want.EndToEnd.Mean(),
			got.EndToEnd.P95(), want.EndToEnd.P95())
	}
	if got.Wait.Mean() != want.Wait.Mean() {
		t.Errorf("%s: wait mean %v != %v", name, got.Wait.Mean(), want.Wait.Mean())
	}
	if got.Utilization != want.Utilization {
		t.Errorf("%s: utilization %v != %v", name, got.Utilization, want.Utilization)
	}
	if got.TotalCost != want.TotalCost {
		t.Errorf("%s: total cost %v != %v", name, got.TotalCost, want.TotalCost)
	}
	if len(got.Tiers) != len(want.Tiers) {
		t.Fatalf("%s: %d tiers != %d", name, len(got.Tiers), len(want.Tiers))
	}
	for i := range want.Tiers {
		w, g := &want.Tiers[i], &got.Tiers[i]
		if g.Served != w.Served || g.Spilled != w.Spilled || g.Dropped != w.Dropped {
			t.Errorf("%s/%s: served/spilled/dropped %d/%d/%d != %d/%d/%d", name, w.Name,
				g.Served, g.Spilled, g.Dropped, w.Served, w.Spilled, w.Dropped)
		}
		if g.EndToEnd.Mean() != w.EndToEnd.Mean() || g.Wait.Mean() != w.Wait.Mean() {
			t.Errorf("%s/%s: latency diverges: e2e %v/%v wait %v/%v", name, w.Name,
				g.EndToEnd.Mean(), w.EndToEnd.Mean(), g.Wait.Mean(), w.Wait.Mean())
		}
		if g.Utilization != w.Utilization || g.ServerSeconds != w.ServerSeconds || g.Cost != w.Cost {
			t.Errorf("%s/%s: util/server-sec/cost %v/%v/%v != %v/%v/%v", name, w.Name,
				g.Utilization, g.ServerSeconds, g.Cost, w.Utilization, w.ServerSeconds, w.Cost)
		}
		if g.Rejected != w.Rejected || g.RejectionCost != w.RejectionCost {
			t.Errorf("%s/%s: rejected/cost %d/%v != %d/%v", name, w.Name,
				g.Rejected, g.RejectionCost, w.Rejected, w.RejectionCost)
		}
		if len(g.Classes) != len(w.Classes) {
			t.Fatalf("%s/%s: %d classes != %d", name, w.Name, len(g.Classes), len(w.Classes))
		}
		for c := range w.Classes {
			wc, gc := &w.Classes[c], &g.Classes[c]
			if gc.Served != wc.Served || gc.Dropped != wc.Dropped || gc.Rejected != wc.Rejected {
				t.Errorf("%s/%s/%s: served/dropped/rejected %d/%d/%d != %d/%d/%d", name, w.Name,
					wc.Name, gc.Served, gc.Dropped, gc.Rejected, wc.Served, wc.Dropped, wc.Rejected)
			}
			if gc.EndToEnd.N() != wc.EndToEnd.N() || gc.EndToEnd.Mean() != wc.EndToEnd.Mean() ||
				gc.EndToEnd.P95() != wc.EndToEnd.P95() {
				t.Errorf("%s/%s/%s: class digest diverges: n %d/%d mean %v/%v", name, w.Name,
					wc.Name, gc.EndToEnd.N(), wc.EndToEnd.N(), gc.EndToEnd.Mean(), wc.EndToEnd.Mean())
			}
		}
	}
}

// TestStreamTopologyEquivalence: whole topology runs fed by Stream are
// bit-identical to runs fed by the materialized trace, for every
// scenario family, across warmup and summary memory modes.
func TestStreamTopologyEquivalence(t *testing.T) {
	for name, mk := range streamScenarios(t) {
		for _, tc := range []struct {
			label  string
			warmup float64
			mode   stats.Mode
		}{
			{"exact", 0, stats.Exact},
			{"exact-warmup", 40, stats.Exact},
			{"bounded", 0, stats.Bounded},
			{"bounded-warmup", 40, stats.Bounded},
		} {
			t.Run(name+"/"+tc.label, func(t *testing.T) {
				topo := spillTopology(mk().Sites)
				run := func(src cluster.Source, hint int) *cluster.TopologyResult {
					res, err := cluster.Run(src, topo, cluster.Options{
						Warmup: tc.warmup, Seed: 5, Summary: tc.mode, SizeHint: hint,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				tr := cluster.Generate(mk())
				want := run(tr.Source(), tr.Len())
				got := run(cluster.Stream(mk()), 0)
				if want.Offered == 0 {
					t.Fatal("no requests offered; test is vacuous")
				}
				compareTopologyResults(t, name+"/"+tc.label, want, got)
			})
		}
	}
}

// TestStreamFactoryReplaysIdenticalSequence: every source a factory
// hands out replays the same records — the property policy-comparison
// rows rely on.
func TestStreamFactoryReplaysIdenticalSequence(t *testing.T) {
	mk := streamScenarios(t)["azure-fixture"]
	factory := cluster.StreamFactory(mk)
	a, b := factory(), factory()
	n := 0
	for {
		ra, oka := a.Next()
		rb, okb := b.Next()
		if oka != okb {
			t.Fatalf("sources disagree on length at record %d", n)
		}
		if !oka {
			break
		}
		if ra != rb {
			t.Fatalf("record %d diverges between factory sources: %+v vs %+v", n, ra, rb)
		}
		n++
	}
	if n == 0 {
		t.Fatal("factory sources yielded nothing; test is vacuous")
	}
}

// streamProbeRun replays a generated stream of the given duration
// through a zero-RTT edge and reports the peak event-calendar size and
// the offered request count.
func streamProbeRun(t *testing.T, duration float64) (maxPending int, offered uint64) {
	t.Helper()
	topo := cluster.EdgeTopology(cluster.EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: netem.Constant("zero", 0),
	})
	res, err := cluster.Run(
		cluster.Stream(cluster.GenSpec{Sites: 5, Duration: duration, PerSiteRate: 8, Seed: 42}),
		topo,
		cluster.Options{
			Warmup: 10, Seed: 43, Summary: stats.Bounded,
			Probe: func(p int) {
				if p > maxPending {
					maxPending = p
				}
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	return maxPending, res.Offered
}

// TestStreamCalendarBounded extends the PR 2 Engine.Pending() probe to
// generator sources: the event calendar must not grow as the generated
// request count grows 10x and 100x.
func TestStreamCalendarBounded(t *testing.T) {
	shortMax, shortN := streamProbeRun(t, 100)
	midMax, midN := streamProbeRun(t, 1000)
	longMax, longN := streamProbeRun(t, 10000)
	if midN < 5*shortN || longN < 5*midN {
		t.Fatalf("request scaling broken: %d -> %d -> %d offered", shortN, midN, longN)
	}
	// 5 stations, zero RTT, one pump event: a handful of live events.
	const bound = 2*5 + 8
	if shortMax == 0 || shortMax > bound {
		t.Errorf("short run max Pending = %d, want in (0, %d]", shortMax, bound)
	}
	if longMax > bound {
		t.Errorf("100x run max Pending = %d exceeds constant bound %d (%d requests)",
			longMax, bound, longN)
	}
	if longMax > shortMax+2 || midMax > shortMax+2 {
		t.Errorf("calendar grew with request count: %d (n=%d) -> %d (n=%d) -> %d (n=%d)",
			shortMax, shortN, midMax, midN, longMax, longN)
	}
}

// TestStreamMemoryBounded: allocation count and allocated bytes for a
// full streamed bounded-summary replay stay constant-bounded as the
// request count grows 10x and 100x — the resident-memory half of the
// O(1) guarantee (the free list and digests stop growing once the
// steady state is reached, so longer runs allocate no more).
func TestStreamMemoryBounded(t *testing.T) {
	replay := func(duration float64) func() {
		return func() {
			topo := cluster.EdgeTopology(cluster.EdgeConfig{
				Sites: 5, ServersPerSite: 1, Path: netem.Constant("zero", 0),
			})
			if _, err := cluster.Run(
				cluster.Stream(cluster.GenSpec{Sites: 5, Duration: duration, PerSiteRate: 8, Seed: 47}),
				topo,
				cluster.Options{Warmup: 10, Seed: 48, Summary: stats.Bounded},
			); err != nil {
				panic(err)
			}
		}
	}
	bytesFor := func(run func()) float64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		run()
		runtime.ReadMemStats(&after)
		return float64(after.TotalAlloc - before.TotalAlloc)
	}

	short, long := replay(100), replay(10000)
	short() // warm sync.Pools and lazy runtime state out of the measurement

	aShort := testing.AllocsPerRun(3, short)
	aLong := testing.AllocsPerRun(1, long)
	if aLong > 2*aShort+500 {
		t.Errorf("allocations grew with request count: %v (100s) -> %v (10000s)", aShort, aLong)
	}
	bShort := bytesFor(short)
	bLong := bytesFor(long)
	if bLong > 3*bShort+float64(4<<20) {
		t.Errorf("allocated bytes grew with request count: %.0f (100s) -> %.0f (10000s)", bShort, bLong)
	}
	if math.IsNaN(aShort) || aShort == 0 {
		t.Fatalf("implausible baseline alloc count %v; probe is broken", aShort)
	}
}

// TestAzureArrivalsIntegration: the Azure trace generator plugs into
// Generate and produces per-site loads matching the envelopes. (Moved
// from the internal cluster tests so the trace package may depend on
// cluster for its streaming decoders.)
func TestAzureArrivalsIntegration(t *testing.T) {
	spec := trace.DefaultAzureSpec()
	spec.Minutes = 5
	series := trace.GenerateAzure(spec)
	tr := cluster.Generate(cluster.GenSpec{
		Sites:    spec.Sites,
		Duration: 300,
		Seed:     28,
		Arrivals: trace.ToArrivalProcesses(series, false),
	})
	for i, s := range series {
		want := s.Total()
		var got float64
		for _, r := range tr.Records {
			if r.Site == i {
				got++
			}
		}
		if math.Abs(got-want) > 0.25*want+20 {
			t.Errorf("site %d generated %v requests, envelope says %v", i, got, want)
		}
	}
}
