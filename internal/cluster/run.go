package cluster

import (
	"fmt"
	"sync"

	"repro/internal/lb"
	"repro/internal/netem"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DispatchPolicy selects the cloud load-balancing policy.
type DispatchPolicy string

// Supported cloud dispatch policies.
const (
	CentralQueue DispatchPolicy = "central-queue"     // one station, k·m servers (M/M/k semantics)
	RoundRobin   DispatchPolicy = "round-robin"       // HAProxy default
	LeastConn    DispatchPolicy = "least-connections" // HAProxy leastconn
	PowerOfTwo   DispatchPolicy = "power-of-two"
	RandomSplit  DispatchPolicy = "random"
)

// EdgeConfig configures an edge deployment run.
type EdgeConfig struct {
	Sites          int
	ServersPerSite int
	Path           netem.Path
	Discipline     queue.Discipline
	Warmup         float64 // seconds of measurements to discard
	Seed           int64
	// QueueCap bounds each site's waiting queue (0 = unbounded);
	// overflowing requests are dropped and counted in Result.Dropped.
	QueueCap int
	// SlowdownFactor > 1 inflates service times at the edge relative to
	// the trace's reference values (resource-constrained edge servers,
	// §3.1.1). 0 or 1 means identical hardware.
	SlowdownFactor float64
	// JockeyThreshold enables §5.1 geographic load balancing: requests
	// arriving at a site whose load is at or beyond the threshold are
	// redirected to the least-loaded site at DetourRTT extra latency.
	JockeyThreshold int
	DetourRTT       float64
	// PerSiteServers optionally overrides ServersPerSite per site
	// (capacity matched to skew, Lemma 3.3 takeaway).
	PerSiteServers []int
	// TimelineBin > 0 additionally collects a latency timeline with the
	// given bin width (Figure 9).
	TimelineBin float64
}

// CloudConfig configures a cloud deployment run.
type CloudConfig struct {
	Servers     int
	Path        netem.Path
	Policy      DispatchPolicy
	Discipline  queue.Discipline
	Warmup      float64
	Seed        int64
	TimelineBin float64
	// QueueCap bounds the waiting queue (total for the central queue,
	// per server otherwise); 0 = unbounded.
	QueueCap int
}

// SiteResult captures one edge site's measurements.
type SiteResult struct {
	Site        int
	EndToEnd    stats.Sample // client-observed latency, seconds
	Wait        stats.Sample // queueing delay at the site
	Utilization float64
	Arrivals    uint64
	MeanRate    float64
}

// Result captures one deployment run.
type Result struct {
	Label       string
	EndToEnd    stats.Sample // all requests, client-observed latency
	Wait        stats.Sample // all requests, queueing delay
	Sites       []SiteResult // per-site detail (len 1 for the cloud)
	Utilization float64      // load-weighted mean utilization
	Completed   uint64
	Duration    float64
	Timeline    *stats.TimeSeries // nil unless TimelineBin was set
	Redirected  uint64            // jockeyed requests (edge with geographic LB)
	Dropped     uint64            // requests rejected by bounded queues
}

// MeanLatency returns the mean end-to-end latency in seconds.
func (r *Result) MeanLatency() float64 { return r.EndToEnd.Mean() }

// P95Latency returns the 95th-percentile end-to-end latency in seconds.
func (r *Result) P95Latency() float64 { return r.EndToEnd.P95() }

// RunEdge replays the trace through an edge deployment: each request
// incurs the edge network RTT and queues at its home site.
func RunEdge(tr *WorkloadTrace, cfg EdgeConfig) *Result {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.Sites != tr.Sites {
		panic(fmt.Sprintf("cluster: edge config has %d sites, trace has %d", cfg.Sites, tr.Sites))
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()

	stations := make([]*queue.Station, cfg.Sites)
	servers := make([]queue.Server, cfg.Sites)
	for i := range stations {
		c := cfg.ServersPerSite
		if cfg.PerSiteServers != nil {
			c = cfg.PerSiteServers[i]
		}
		stations[i] = queue.NewStation(eng, fmt.Sprintf("edge-%d", i), c, cfg.Discipline)
		stations[i].QueueCap = cfg.QueueCap
		stations[i].SetWarmup(cfg.Warmup)
		servers[i] = stations[i]
	}

	var geo *lb.Geographic
	if cfg.JockeyThreshold > 0 {
		geo = lb.NewGeographic(servers, cfg.JockeyThreshold, cfg.DetourRTT, eng.NewStream())
	}

	res := &Result{Label: "edge"}
	if cfg.TimelineBin > 0 {
		res.Timeline = stats.NewTimeSeries(0, cfg.TimelineBin)
	}
	perSiteE2E := make([]stats.Sample, cfg.Sites)

	slow := cfg.SlowdownFactor
	if slow <= 0 {
		slow = 1
	}

	var nextID uint64
	for _, rec := range tr.Records {
		rec := rec
		rtt := cfg.Path.Sample(netRng)
		nextID++
		req := &queue.Request{
			ID:          nextID,
			Site:        rec.Site,
			ServiceTime: rec.ServiceTime * slow,
			NetworkRTT:  rtt,
			Generated:   rec.Time,
			Done: func(e *sim.Engine, r *queue.Request) {
				if r.Departure < cfg.Warmup {
					return
				}
				if r.Dropped {
					res.Dropped++
					return
				}
				e2e := r.EndToEnd()
				res.EndToEnd.Add(e2e)
				perSiteE2E[r.Site].Add(e2e)
				res.Completed++
				if res.Timeline != nil {
					res.Timeline.Add(r.Generated, e2e)
				}
			},
		}
		arriveAt := rec.Time + rtt/2
		eng.At(arriveAt, func(e *sim.Engine) {
			if geo != nil {
				geo.Dispatch(req)
			} else {
				stations[req.Site].Arrive(req)
			}
		})
	}

	res.Duration = eng.Run()
	for _, s := range stations {
		s.Finish()
	}
	if geo != nil {
		res.Redirected = geo.Redirected
	}

	var busySum, capSum float64
	for i, s := range stations {
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		sr := SiteResult{
			Site:        i,
			EndToEnd:    perSiteE2E[i],
			Wait:        m.Wait,
			Utilization: m.Utilization(s.Servers),
			Arrivals:    s.TotalArrivals(),
			MeanRate:    m.Arrivals.Rate(),
		}
		res.Sites = append(res.Sites, sr)
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	return res
}

// RunPaired replays the same trace through an edge and a cloud
// deployment concurrently and returns both results. Each run owns a
// private sim.Engine seeded from its own config and only reads the
// shared trace, so the pairing is bit-identical to running the two
// serially — the concurrency halves the wall-clock of every paired
// comparison (the shape of all the paper's experiments).
func RunPaired(tr *WorkloadTrace, ecfg EdgeConfig, ccfg CloudConfig) (edge, cloud *Result) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cloud = RunCloud(tr, ccfg)
	}()
	edge = RunEdge(tr, ecfg)
	wg.Wait()
	return edge, cloud
}

// RunCloud replays the trace through a cloud deployment: every request
// incurs the cloud RTT and is served by k·m servers behind the chosen
// dispatch policy.
func RunCloud(tr *WorkloadTrace, cfg CloudConfig) *Result {
	if cfg.Servers <= 0 {
		panic("cluster: cloud needs at least one server")
	}
	if cfg.Policy == "" {
		cfg.Policy = CentralQueue
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()

	var stations []*queue.Station
	var dispatch func(r *queue.Request)
	switch cfg.Policy {
	case CentralQueue:
		st := queue.NewStation(eng, "cloud", cfg.Servers, cfg.Discipline)
		st.QueueCap = cfg.QueueCap
		st.SetWarmup(cfg.Warmup)
		stations = []*queue.Station{st}
		dispatch = st.Arrive
	default:
		stations = make([]*queue.Station, cfg.Servers)
		servers := make([]queue.Server, cfg.Servers)
		for i := range stations {
			stations[i] = queue.NewStation(eng, fmt.Sprintf("cloud-%d", i), 1, cfg.Discipline)
			stations[i].QueueCap = cfg.QueueCap
			stations[i].SetWarmup(cfg.Warmup)
			servers[i] = stations[i]
		}
		var d lb.Dispatcher
		switch cfg.Policy {
		case RoundRobin:
			d = lb.NewRoundRobin(servers)
		case LeastConn:
			d = lb.NewLeastConnections(servers, eng.NewStream())
		case PowerOfTwo:
			d = lb.NewPowerOfTwo(servers, eng.NewStream())
		case RandomSplit:
			d = lb.NewRandom(servers, eng.NewStream())
		default:
			panic(fmt.Sprintf("cluster: unknown dispatch policy %q", cfg.Policy))
		}
		dispatch = d.Dispatch
	}

	res := &Result{Label: "cloud"}
	if cfg.TimelineBin > 0 {
		res.Timeline = stats.NewTimeSeries(0, cfg.TimelineBin)
	}

	var nextID uint64
	for _, rec := range tr.Records {
		rtt := cfg.Path.Sample(netRng)
		nextID++
		req := &queue.Request{
			ID:          nextID,
			Site:        -1,
			ServiceTime: rec.ServiceTime,
			NetworkRTT:  rtt,
			Generated:   rec.Time,
			Done: func(e *sim.Engine, r *queue.Request) {
				if r.Departure < cfg.Warmup {
					return
				}
				if r.Dropped {
					res.Dropped++
					return
				}
				e2e := r.EndToEnd()
				res.EndToEnd.Add(e2e)
				res.Completed++
				if res.Timeline != nil {
					res.Timeline.Add(r.Generated, e2e)
				}
			},
		}
		eng.At(rec.Time+rtt/2, func(e *sim.Engine) { dispatch(req) })
	}

	res.Duration = eng.Run()
	var busySum, capSum float64
	for _, s := range stations {
		s.Finish()
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	res.Sites = []SiteResult{{Site: -1, EndToEnd: res.EndToEnd, Wait: res.Wait, Utilization: res.Utilization}}
	return res
}
