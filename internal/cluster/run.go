package cluster

import (
	"fmt"
	"sync"

	"repro/internal/lb"
	"repro/internal/netem"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DispatchPolicy selects the cloud load-balancing policy.
type DispatchPolicy string

// Supported cloud dispatch policies. All but CentralQueue resolve
// through the lb.New registry.
const (
	CentralQueue DispatchPolicy = CentralQueueDispatch // one station, k·m servers (M/M/k semantics)
	RoundRobin   DispatchPolicy = lb.PolicyRoundRobin  // HAProxy default
	LeastConn    DispatchPolicy = lb.PolicyLeastConn   // HAProxy leastconn
	PowerOfTwo   DispatchPolicy = lb.PolicyPowerOfTwo
	RandomSplit  DispatchPolicy = lb.PolicyRandom
)

// EdgeConfig configures an edge deployment run.
type EdgeConfig struct {
	Sites          int
	ServersPerSite int
	Path           netem.Path
	Discipline     queue.Discipline
	Warmup         float64 // seconds of measurements to discard
	Seed           int64
	// QueueCap bounds each site's waiting queue (0 = unbounded);
	// overflowing requests are dropped and counted in Result.Dropped.
	QueueCap int
	// SlowdownFactor > 1 inflates service times at the edge relative to
	// the trace's reference values (resource-constrained edge servers,
	// §3.1.1). 0 or 1 means identical hardware.
	SlowdownFactor float64
	// JockeyThreshold enables §5.1 geographic load balancing: requests
	// arriving at a site whose load is at or beyond the threshold are
	// redirected to the least-loaded site at DetourRTT extra latency.
	JockeyThreshold int
	DetourRTT       float64
	// PerSiteServers optionally overrides ServersPerSite per site
	// (capacity matched to skew, Lemma 3.3 takeaway).
	PerSiteServers []int
	// TimelineBin > 0 additionally collects a latency timeline with the
	// given bin width (Figure 9).
	TimelineBin float64
	// Summary selects the latency-collection memory model: stats.Exact
	// (default) retains every observation for exact quantiles;
	// stats.Bounded keeps constant state per collector (running moments
	// plus P² quantile estimates), the right choice for replays of
	// millions of requests.
	Summary stats.Mode

	// probe, when set by tests, observes the event-calendar size at
	// every generated arrival.
	probe func(pending int)
}

// CloudConfig configures a cloud deployment run.
type CloudConfig struct {
	Servers     int
	Path        netem.Path
	Policy      DispatchPolicy
	Discipline  queue.Discipline
	Warmup      float64
	Seed        int64
	TimelineBin float64
	// QueueCap bounds the waiting queue (total for the central queue,
	// per server otherwise); 0 = unbounded.
	QueueCap int
	// Summary selects the latency-collection memory model; see
	// EdgeConfig.Summary.
	Summary stats.Mode

	probe func(pending int)
}

// SiteResult captures one edge site's measurements.
type SiteResult struct {
	Site        int
	EndToEnd    stats.Digest // client-observed latency, seconds
	Wait        stats.Digest // queueing delay at the site
	Utilization float64
	Arrivals    uint64
	MeanRate    float64
}

// Result captures one deployment run.
type Result struct {
	Label       string
	EndToEnd    stats.Digest // all requests, client-observed latency
	Wait        stats.Digest // all requests, queueing delay
	Sites       []SiteResult // per-site detail (len 1 for the cloud)
	Utilization float64      // load-weighted mean utilization
	Completed   uint64
	Duration    float64
	Timeline    *stats.TimeSeries // nil unless TimelineBin was set
	Redirected  uint64            // jockeyed requests (edge with geographic LB)
	Dropped     uint64            // requests rejected by bounded queues
	// Rejected counts requests refused by tier admission policies before
	// they reached any station (topology runs only; warmup included).
	Rejected uint64
}

// MeanLatency returns the mean end-to-end latency in seconds.
func (r *Result) MeanLatency() float64 { return r.EndToEnd.Mean() }

// P95Latency returns the 95th-percentile end-to-end latency in seconds.
func (r *Result) P95Latency() float64 { return r.EndToEnd.P95() }

// newResult builds a result whose digests follow the requested memory
// model; sizeHint pre-allocates exact samples to the trace length so
// retained-mode replays do not regrow from nil.
func newResult(label string, mode stats.Mode, sizeHint int) *Result {
	hint := 0
	if mode == stats.Exact {
		hint = sizeHint
	}
	return &Result{
		Label:    label,
		EndToEnd: stats.NewDigest(mode, hint),
		Wait:     stats.NewDigest(mode, hint),
	}
}

// newDigests returns n empty digests in the given mode.
func newDigests(mode stats.Mode, n int) []stats.Digest {
	out := make([]stats.Digest, n)
	if mode == stats.Bounded {
		for i := range out {
			out[i].SetBounded()
		}
	}
	return out
}

// feeder is the streaming heart of the topology executor: it holds
// exactly one pending trace record and re-arms a single "generate next
// arrival" event as records are consumed, so the event calendar never
// holds more than one future arrival regardless of trace length. The
// prep hook fills each request (network RTTs sampled at generation
// time in record order, service demand, entry tier), and pump/arrival
// events are scheduled front-priority (sim.AtFront) so they win
// exact-time ties against completions just as pre-scheduled arrivals
// would. Both together keep the random sequence and the event order —
// and therefore every result — identical to a run that materializes
// all arrivals up front.
type feeder struct {
	src  Source
	pool *queue.FreeList
	// prep fills the request's NetworkRTT, AuxRTT, ServiceTime and Tag
	// (entry tier) from the record; any sampling must draw in record
	// order.
	prep      func(rec RequestRecord, req *queue.Request)
	sink      queue.Sink
	admit     sim.PayloadEvent // routes a request at its arrival instant
	onDrained func()           // source exhausted (may fire before start returns)
	probe     func(pending int)

	pump    sim.Event // bound once; re-armed for every record
	pending RequestRecord
	nextID  uint64
	count   uint64 // records emitted so far
}

// start pulls the first record and arms the pump. Call before eng.Run.
func (f *feeder) start(e *sim.Engine) {
	f.pump = func(e *sim.Engine) { f.emit(e) }
	if rec, ok := f.src.Next(); ok {
		f.pending = rec
		e.AtFront(rec.Time, f.pump)
	} else if f.onDrained != nil {
		f.onDrained()
	}
}

// emit fires at the pending record's generation time: it builds the
// request from the free list, schedules its arrival rtt/2 later, and
// re-arms the pump for the next record.
func (f *feeder) emit(e *sim.Engine) {
	rec := f.pending
	req := f.pool.Get()
	f.nextID++
	f.count++
	req.ID = f.nextID
	req.Site = rec.Site
	req.Generated = rec.Time
	req.Done = f.sink
	f.prep(rec, req)
	e.AtPayloadFront(rec.Time+req.NetworkRTT/2, f.admit, req)
	if f.probe != nil {
		f.probe(e.Pending())
	}
	if nxt, ok := f.src.Next(); ok {
		if nxt.Time < rec.Time {
			panic(fmt.Sprintf("cluster: Source yielded time %v after %v", nxt.Time, rec.Time))
		}
		f.pending = nxt
		e.AtFront(nxt.Time, f.pump)
	} else if f.onDrained != nil {
		f.onDrained()
	}
}

// runDeployment is the topology-independent replay core: stream the
// source through the feeder, run the calendar dry, and close the
// stations' time-weighted metrics.
func runDeployment(eng *sim.Engine, f *feeder, res *Result, stations []*queue.Station) {
	f.start(eng)
	res.Duration = eng.Run()
	for _, s := range stations {
		s.Finish()
	}
}

// newStation builds a deployment station wired for the run: warmup,
// queue bound, summary mode, and the shared request free list.
func newStation(eng *sim.Engine, name string, servers int, disc queue.Discipline,
	queueCap int, warmup float64, mode stats.Mode, pool *queue.FreeList) *queue.Station {
	st := queue.NewStation(eng, name, servers, disc)
	st.QueueCap = queueCap
	st.SetWarmup(warmup)
	st.SetSummaryMode(mode)
	st.Recycle = pool
	return st
}

// mustRun executes a wrapper-built topology; construction errors there
// indicate invalid legacy configs, which the pre-topology runners
// reported by panicking.
func mustRun(src Source, topo Topology, opts Options) *TopologyResult {
	res, err := Run(src, topo, opts)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// RunEdge replays the trace through an edge deployment: each request
// incurs the edge network RTT and queues at its home site. It is a
// thin wrapper over Run with EdgeTopology.
func RunEdge(tr *WorkloadTrace, cfg EdgeConfig) *Result {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.Sites != tr.Sites {
		panic(fmt.Sprintf("cluster: edge config has %d sites, trace has %d", cfg.Sites, tr.Sites))
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	res := mustRun(tr.Source(), EdgeTopology(cfg), Options{
		Warmup:      cfg.Warmup,
		Seed:        cfg.Seed,
		Summary:     cfg.Summary,
		TimelineBin: cfg.TimelineBin,
		SizeHint:    tr.Len(),
		Probe:       cfg.probe,
	})
	out := res.Result
	out.Label = "edge"
	out.Sites = res.Tiers[0].Sites
	return &out
}

// RunPaired replays the same trace through an edge and a cloud
// deployment concurrently and returns both results. Each run owns a
// private sim.Engine seeded from its own config and only reads the
// shared trace, so the pairing is bit-identical to running the two
// serially — the concurrency halves the wall-clock of every paired
// comparison (the shape of all the paper's experiments).
func RunPaired(tr *WorkloadTrace, ecfg EdgeConfig, ccfg CloudConfig) (edge, cloud *Result) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cloud = RunCloud(tr, ccfg)
	}()
	edge = RunEdge(tr, ecfg)
	wg.Wait()
	return edge, cloud
}

// RunCloud replays the trace through a cloud deployment: every request
// incurs the cloud RTT and is served by k·m servers behind the chosen
// dispatch policy. It is a thin wrapper over Run with CloudTopology.
func RunCloud(tr *WorkloadTrace, cfg CloudConfig) *Result {
	if cfg.Servers <= 0 {
		panic("cluster: cloud needs at least one server")
	}
	if cfg.Policy == "" {
		cfg.Policy = CentralQueue
	}
	if cfg.Policy != CentralQueue && !lb.Known(string(cfg.Policy)) {
		panic(fmt.Sprintf("cluster: unknown dispatch policy %q", cfg.Policy))
	}
	res := mustRun(tr.Source(), CloudTopology(cfg), Options{
		Warmup:      cfg.Warmup,
		Seed:        cfg.Seed,
		Summary:     cfg.Summary,
		TimelineBin: cfg.TimelineBin,
		SizeHint:    tr.Len(),
		Probe:       cfg.probe,
	})
	out := res.Result
	out.Label = "cloud"
	out.Sites = []SiteResult{{Site: -1, EndToEnd: out.EndToEnd, Wait: out.Wait, Utilization: out.Utilization}}
	return &out
}
