package cluster

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/admit"
	"repro/internal/autoscale"
)

// scalerSpecJSON is a two-tier topology exercising the new scaler
// block: a predictive edge tier and a reactive regional backstop.
const scalerSpecJSON = `{
	"name": "scaled",
	"tiers": [
		{
			"name": "edge", "sites": 3, "servers": 1, "rttMs": 1, "jitterMs": 0.2,
			"scaler": {
				"policy": "predictive", "intervalS": 5, "min": 1, "max": 6,
				"mu": 13, "targetUtil": 0.7, "forecaster": "holt",
				"alpha": 0.6, "beta": 0.4
			},
			"pricePerServerHour": 0.25
		},
		{
			"name": "regional", "sites": 1, "servers": 2, "rttMs": 13,
			"dispatch": "central-queue",
			"scaler": {
				"policy": "reactive", "intervalS": 5, "min": 2, "max": 8,
				"up": 1.5, "down": 0.3, "cooldownS": 15
			}
		}
	],
	"spills": [{"from": "edge", "to": "regional", "threshold": 3, "sampleToRtt": true}]
}`

func TestTopologySpecScalerBlockBuilds(t *testing.T) {
	topo, err := ParseTopology([]byte(scalerSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	edge := topo.Tiers[0]
	if edge.Scaler == nil || edge.Scaler.Policy != autoscale.PolicyPredictive {
		t.Fatalf("edge scaler = %+v, want predictive", edge.Scaler)
	}
	if edge.Scaler.Forecaster != "holt" || edge.Scaler.Alpha != 0.6 || edge.Scaler.Beta != 0.4 {
		t.Errorf("edge forecaster params lost: %+v", edge.Scaler)
	}
	if edge.PricePerServerHour != 0.25 {
		t.Errorf("edge price = %v, want 0.25", edge.PricePerServerHour)
	}
	reg := topo.Tiers[1]
	if reg.Scaler == nil || reg.Scaler.Policy != autoscale.PolicyReactive ||
		reg.Scaler.UpThreshold != 1.5 {
		t.Errorf("regional scaler = %+v, want reactive up=1.5", reg.Scaler)
	}
}

// TestTopologySpecRoundTrip: marshal → parse must be lossless for every
// preset and for the scaler exemplar — the codec is the file format.
func TestTopologySpecRoundTrip(t *testing.T) {
	specs := map[string]TopologySpec{}
	for name, s := range presetSpecs {
		specs[name] = s
	}
	parsed, err := ParseTopologySpec([]byte(scalerSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	specs["scaler-exemplar"] = parsed
	for name, spec := range specs {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := ParseTopologySpec(data)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("%s: round trip diverges:\n  out:  %+v\n  back: %+v", name, spec, back)
		}
	}
}

// admitSpecJSON exercises the admission block: a rate-limited edge and
// a queue-gated cloud with a class-aware priority rule.
const admitSpecJSON = `{
	"name": "admitted",
	"tiers": [
		{
			"name": "edge", "sites": 3, "servers": 1, "rttMs": 1, "jitterMs": 0.2,
			"admission": {"policy": "token-bucket", "rate": 6, "burst": 3}
		},
		{
			"name": "cloud", "sites": 1, "servers": 3, "rttMs": 25,
			"dispatch": "central-queue",
			"admission": {"policy": "priority", "threshold": 4, "cutoff": 1}
		}
	],
	"spills": [{"from": "edge", "to": "cloud", "threshold": 3, "sampleToRtt": true}],
	"classes": [{"name": "gold", "sites": [0], "tier": "cloud"}]
}`

func TestTopologySpecAdmissionBlockBuilds(t *testing.T) {
	topo, err := ParseTopology([]byte(admitSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	edge := topo.Tiers[0]
	if edge.Admission == nil || edge.Admission.Policy != admit.TokenBucket ||
		edge.Admission.Rate != 6 || edge.Admission.Burst != 3 {
		t.Fatalf("edge admission = %+v, want token-bucket rate=6 burst=3", edge.Admission)
	}
	cloud := topo.Tiers[1]
	if cloud.Admission == nil || cloud.Admission.Policy != admit.Priority ||
		cloud.Admission.Threshold != 4 || cloud.Admission.Cutoff != 1 {
		t.Fatalf("cloud admission = %+v, want priority threshold=4 cutoff=1", cloud.Admission)
	}
}

func TestTopologySpecAdmissionRoundTrip(t *testing.T) {
	spec, err := ParseTopologySpec([]byte(admitSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTopologySpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("round trip diverges:\n  out:  %+v\n  back: %+v", spec, back)
	}
}

func TestTopologySpecUnknownAdmissionPolicy(t *testing.T) {
	spec := `{"name":"x","tiers":[{"name":"e","sites":1,"servers":1,"rttMs":1,
		"admission":{"policy":"leaky-bucket","rate":5}}]}`
	if _, err := ParseTopology([]byte(spec)); err == nil {
		t.Fatal("unknown admission policy accepted")
	} else if !strings.Contains(err.Error(), "leaky-bucket") ||
		!strings.Contains(err.Error(), admit.TokenBucket) {
		t.Errorf("error %q should name the bad policy and list the registry", err)
	}
}

func TestTopologySpecAdmissionBadParams(t *testing.T) {
	for name, spec := range map[string]string{
		"zero rate": `{"name":"x","tiers":[{"name":"e","sites":1,"servers":1,"rttMs":1,
			"admission":{"policy":"token-bucket"}}]}`,
		"no threshold": `{"name":"x","tiers":[{"name":"e","sites":1,"servers":1,"rttMs":1,
			"admission":{"policy":"queue-length"}}]}`,
		"negative cutoff": `{"name":"x","tiers":[{"name":"e","sites":1,"servers":1,"rttMs":1,
			"admission":{"policy":"priority","threshold":2,"cutoff":-1}}]}`,
	} {
		if _, err := ParseTopology([]byte(spec)); err == nil {
			t.Errorf("%s: invalid admission block accepted", name)
		}
	}
}

func TestTopologySpecUnknownScalerPolicy(t *testing.T) {
	spec := `{"name":"x","tiers":[{"name":"e","sites":1,"servers":1,"rttMs":1,
		"scaler":{"policy":"oracle","intervalS":5,"min":1,"max":2}}]}`
	if _, err := ParseTopology([]byte(spec)); err == nil {
		t.Fatal("unknown scaler policy accepted")
	} else if !strings.Contains(err.Error(), "oracle") || !strings.Contains(err.Error(), "reactive") {
		t.Errorf("error %q should name the bad policy and list the registry", err)
	}
}

func TestTopologySpecUnknownForecaster(t *testing.T) {
	spec := `{"name":"x","tiers":[{"name":"e","sites":1,"servers":1,"rttMs":1,
		"scaler":{"policy":"predictive","intervalS":5,"min":1,"max":2,
		"mu":13,"targetUtil":0.7,"forecaster":"crystal-ball"}}]}`
	if _, err := ParseTopology([]byte(spec)); err == nil {
		t.Fatal("unknown forecaster accepted")
	} else if !strings.Contains(err.Error(), "crystal-ball") {
		t.Errorf("error %q should name the bad forecaster", err)
	}
}

func TestTopologySpecRejectsBothScalerBlocks(t *testing.T) {
	spec := `{"name":"x","tiers":[{"name":"e","sites":1,"servers":1,"rttMs":1,
		"autoscale":{"intervalS":5,"min":1,"max":2,"up":1.5,"down":0.3,"cooldownS":15},
		"scaler":{"policy":"reactive","intervalS":5,"min":1,"max":2,"up":1.5,"down":0.3}}]}`
	if _, err := ParseTopology([]byte(spec)); err == nil {
		t.Fatal("tier with both autoscale and scaler blocks accepted")
	}
}

// TestLegacyAutoscaleBlockDecodes: pre-scaler topology files keep
// working, and the legacy block builds the identical reactive Spec the
// equivalent scaler block does.
func TestLegacyAutoscaleBlockDecodes(t *testing.T) {
	legacy := `{"name":"x","tiers":[{"name":"e","sites":2,"servers":1,"rttMs":1,
		"autoscale":{"intervalS":2,"min":1,"max":5,"up":1.5,"down":0.2,"cooldownS":6,"step":2}}]}`
	modern := `{"name":"x","tiers":[{"name":"e","sites":2,"servers":1,"rttMs":1,
		"scaler":{"policy":"reactive","intervalS":2,"min":1,"max":5,"up":1.5,"down":0.2,"cooldownS":6,"step":2}}]}`
	lt, err := ParseTopology([]byte(legacy))
	if err != nil {
		t.Fatalf("legacy autoscale block no longer decodes: %v", err)
	}
	mt, err := ParseTopology([]byte(modern))
	if err != nil {
		t.Fatal(err)
	}
	if lt.Tiers[0].Scaler == nil || mt.Tiers[0].Scaler == nil {
		t.Fatal("scaler spec not attached")
	}
	if *lt.Tiers[0].Scaler != *mt.Tiers[0].Scaler {
		t.Errorf("legacy block builds %+v, scaler block builds %+v",
			*lt.Tiers[0].Scaler, *mt.Tiers[0].Scaler)
	}
}

// FuzzParseTopologySpec: any bytes that decode must re-encode and
// decode to the same spec, and Build must never panic — the codec's
// error paths are total.
func FuzzParseTopologySpec(f *testing.F) {
	f.Add([]byte(scalerSpecJSON))
	f.Add([]byte(admitSpecJSON))
	for _, s := range presetSpecs {
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","tiers":[{"name":"e","sites":1,"servers":1,"rttMs":1,
		"autoscale":{"intervalS":5,"min":1,"max":2,"up":1.5,"down":0.3,"cooldownS":15}}]}`))
	f.Add([]byte(`{"tiers":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseTopologySpec(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("decoded spec fails to marshal: %v", err)
		}
		back, err := ParseTopologySpec(out)
		if err != nil {
			t.Fatalf("re-encoded spec fails to parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("round trip diverges:\n  out:  %+v\n  back: %+v", spec, back)
		}
		// Build may reject the spec, but must do so via error.
		_, _ = spec.Build()
	})
}
