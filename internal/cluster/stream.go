package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/app"
	"repro/internal/merge"
	"repro/internal/workload"
)

// SourceFactory returns a fresh Source over the same record sequence on
// every call, so paired and swept runs each take an independent
// iterator. (*WorkloadTrace).Source is a SourceFactory over materialized
// records; StreamFactory builds one over lazy generator sources.
type SourceFactory func() Source

// StreamFactory adapts a GenSpec builder into a SourceFactory: each call
// re-derives a fresh spec and streams it. The builder must return a
// fresh spec every time — in particular fresh Arrivals processes, which
// are stateful and consumed by a single Stream or Generate call —
// so every source replays the identical record sequence.
func StreamFactory(mk func() GenSpec) SourceFactory {
	return func() Source { return Stream(mk()) }
}

// siteGen is one site's lazy generator state: its arrival process, its
// two private random streams, and the next pending record.
type siteGen struct {
	proc   workload.ArrivalProcess
	arrRng *rand.Rand
	svcRng *rand.Rand
	t      float64
	rec    RequestRecord
}

// streamSource merges per-site generator streams into one time-ordered
// record sequence without materializing it: memory is O(Sites)
// regardless of how many records the spec describes.
type streamSource struct {
	model    app.InferenceModel
	duration float64
	sites    []siteGen
	// heap holds the indices of live sites, min-ordered by the pending
	// record's (Time, Site) — the same key the materialized Generate
	// sorts by, so the merge reproduces its order exactly.
	heap merge.Heap
}

// Stream returns a Source that generates the spec's records on the fly:
// the identical record sequence Generate(spec).Source() would replay
// (same per-site random streams, same (Time, Site)-stable merge order),
// in constant memory per site instead of memory proportional to the
// request count. A spec carrying explicit Arrivals is consumed by one
// Stream or Generate call — re-derive fresh processes per source (see
// StreamFactory).
func Stream(spec GenSpec) Source {
	return streamRange(spec, 0, spec.Sites)
}

// streamRange builds the streaming source restricted to sites [lo, hi):
// every site's streams are derived exactly as the full Stream derives
// them (all sites seeded in site order, then the range selected), so a
// site emits the identical record sequence no matter which range it is
// generated in. Records carry global site indices. This is the
// generator leg of sharded replay: disjoint ranges partition the full
// record sequence.
func streamRange(spec GenSpec, lo, hi int) Source {
	// Validation, process derivation and per-site stream seeding are
	// the helpers Generate uses, so the two paths cannot drift. Only
	// seeds are derived for all sites; rand.Rand state (~5KB each) is
	// constructed just for [lo, hi), so a shard of a million-site spec
	// pays for its own sites, not everyone's.
	procs := deriveArrivals(&spec)
	arrSeed, svcSeed := siteSeeds(spec.Seed, spec.Sites)
	if lo < 0 || hi > spec.Sites || lo > hi {
		panic(fmt.Sprintf("cluster: stream range [%d,%d) outside %d sites", lo, hi, spec.Sites))
	}
	s := &streamSource{
		model:    spec.Model,
		duration: spec.Duration,
		sites:    make([]siteGen, spec.Sites),
	}
	s.heap.Less = func(a, b int) bool {
		ra, rb := &s.sites[a].rec, &s.sites[b].rec
		if ra.Time != rb.Time {
			return ra.Time < rb.Time
		}
		return a < b
	}
	s.heap.Grow(hi - lo)
	for site := lo; site < hi; site++ {
		g := &s.sites[site]
		g.proc = procs[site]
		g.arrRng = rand.New(rand.NewSource(arrSeed[site]))
		g.svcRng = rand.New(rand.NewSource(svcSeed[site]))
		if s.advance(site) {
			s.heap.Push(site)
		}
	}
	return s
}

// advance pulls site's next record, returning false when the site's
// process is exhausted or past the spec duration. The draw order —
// arrival first, service time only for accepted arrivals — matches
// Generate's per-site loop.
func (s *streamSource) advance(site int) bool {
	g := &s.sites[site]
	next, ok := g.proc.Next(g.t, g.arrRng)
	if !ok || next > s.duration {
		return false
	}
	g.t = next
	g.rec = RequestRecord{
		Time:        next,
		Site:        site,
		ServiceTime: s.model.SampleServiceTime(g.svcRng),
	}
	return true
}

// Next implements Source: pop the minimum (Time, Site) record, then
// re-advance that site. Ties within a site (batch arrivals) surface in
// generation order because each site holds exactly one pending record.
func (s *streamSource) Next() (RequestRecord, bool) {
	if s.heap.Len() == 0 {
		return RequestRecord{}, false
	}
	site := s.heap.Min()
	rec := s.sites[site].rec
	if s.advance(site) {
		s.heap.FixMin()
	} else {
		s.heap.PopMin()
	}
	return rec, true
}
