package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"

	"repro/internal/admit"
	"repro/internal/autoscale"
	"repro/internal/econ"
	"repro/internal/lb"
	"repro/internal/merge"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Sharded topology replay splits a run into two phases along the
// topology graph's natural merge boundary:
//
//   - Phase 1 (parallel): the home-routed tiers. Every dynamic there is
//     site-local — requests queue at their home station, spill decisions
//     read only that station's load, and all randomness draws from
//     per-site streams — so the sites partition into contiguous ranges,
//     each replayed on its own sim.Engine in its own goroutine.
//   - Phase 2 (serial): the shared tiers (dispatchers, central queues,
//     autoscaled pools), which couple all sites. Every request crossing
//     from phase 1 — a spill out of a saturated home tier, or a class
//     pinned straight to a shared tier — is captured as a boundary
//     record; the per-shard buffers are merged into one canonical
//     (time, site, per-site order) sequence and replayed on one engine.
//
// Because phase-1 dynamics are site-local and the boundary sequence is
// canonical, the result is bit-identical for every shard count: the
// shard-determinism suite asserts -shards N == -shards 1 across the
// presets, sources, seeds and summary modes. (The sharded path defines
// its own canonical stream discipline — per-site network streams rather
// than Run's single generation-order stream — so its numbers are a
// deterministic function of the seed but need not equal Run's.)
//
// Two backends replay the same two phases: RunSharded barriers between
// them (phase 2 starts after the slowest shard finishes, boundary
// memory is O(boundary count)), and RunPipelined (pipeline.go) overlaps
// them through watermarked bounded rings (phase 2 starts immediately,
// boundary memory is O(ring capacity)). Both produce bit-identical
// results because both feed phase 2 the identical canonical sequence.

// Shardable reports whether the topology can be replayed by RunSharded,
// or an error naming the first coupling that prevents it. The
// disqualifiers are exactly the features that couple home sites:
// geographic jockeying and autoscalers on home tiers, Bernoulli class
// fractions (one global stream), sampled detours on non-entry home
// spill edges, and spill edges that re-enter the home phase from a
// shared tier.
func Shardable(topo Topology) error {
	topo = topo.normalized()
	if err := topo.Validate(); err != nil {
		return err
	}
	_, err := planShards(topo)
	return err
}

// shardPlan classifies tiers into the parallel home phase and the
// serial shared phase.
type shardPlan struct {
	homeSlot []int // tier index -> slot in home order, or -1
	home     []int // home-routed tier indices, declaration order
	shared   []int // shared tier indices, declaration order
	sites    int   // home site count (0 when no home tiers)
}

func (p *shardPlan) isShared(ti int) bool { return p.homeSlot[ti] < 0 }

func planShards(topo Topology) (shardPlan, error) {
	plan := shardPlan{homeSlot: make([]int, len(topo.Tiers))}
	for ti, t := range topo.Tiers {
		if !t.homeRouted() {
			plan.homeSlot[ti] = -1
			plan.shared = append(plan.shared, ti)
			continue
		}
		if t.JockeyThreshold > 0 {
			return plan, fmt.Errorf("cluster: tier %q jockeys between sites; not shardable", t.Name)
		}
		if t.Scaler != nil {
			return plan, fmt.Errorf("cluster: home tier %q has an autoscaler (one controller across all sites); not shardable", t.Name)
		}
		plan.homeSlot[ti] = len(plan.home)
		plan.home = append(plan.home, ti)
		plan.sites = t.Sites
	}
	for _, sp := range topo.Spills {
		from, to := topo.tierIndex(sp.From), topo.tierIndex(sp.To)
		fromHome := plan.homeSlot[from] >= 0
		if !fromHome && plan.homeSlot[to] >= 0 {
			return plan, fmt.Errorf("cluster: spill %s->%s re-enters the home phase from a shared tier; not shardable", sp.From, sp.To)
		}
		if fromHome && sp.DetourPath != nil && from != 0 {
			return plan, fmt.Errorf("cluster: spill %s->%s samples its detour at crossing time from a shared stream; not shardable", sp.From, sp.To)
		}
	}
	for _, c := range topo.Classes {
		if c.Fraction > 0 && c.Fraction < 1 {
			return plan, fmt.Errorf("cluster: class %q draws a global Bernoulli stream; not shardable", c.Name)
		}
	}
	return plan, nil
}

// boundaryRec is one request crossing the merge boundary: everything
// phase 2 needs to replay its life at the shared tiers.
type boundaryRec struct {
	at        float64 // arrival instant at the shared target tier
	site      int     // global home site (merge tie-break)
	seq       uint64  // per-site capture order (final tie-break)
	service   float64 // service demand, already scaled to the target tier
	rtt       float64 // network RTT accumulated so far
	aux       float64 // pre-sampled entry-spill detour (Request.AuxRTT)
	generated float64
	tier      int // target tier index
	class     int // SLO class rank (Request.Class)
}

// boundaryBefore is the canonical merge order: arrival time, then home
// site, then per-site capture order. Sites are disjoint across shards
// and seq is strictly increasing per site, so the order is total and
// independent of the shard partition.
func boundaryBefore(a, b *boundaryRec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.site != b.site {
		return a.site < b.site
	}
	return a.seq < b.seq
}

// sortBoundary canonicalizes a phase-1 harvest in place. Captures are
// appended in shard event order, which is already the canonical order
// whenever the shard's crossings carry uniform detour offsets (pinned
// classes, a single spill edge) — so first verify sortedness in one
// O(n) scan and return without moving anything. Otherwise the sequence
// is a sorted prefix with displaced records behind it: sort the suffix
// and merge the two runs backward through one suffix-sized buffer,
// which beats re-sorting the whole harvest when few records are out of
// place and degrades to an ordinary sort plus an O(n) pass when many
// are. boundaryBefore is a strict total order, so the merge is
// deterministic.
func sortBoundary(recs []boundaryRec) {
	p := 1
	for p < len(recs) && !boundaryBefore(&recs[p], &recs[p-1]) {
		p++
	}
	if p >= len(recs) {
		return
	}
	tail := recs[p:]
	sort.Slice(tail, func(i, j int) bool { return boundaryBefore(&tail[i], &tail[j]) })
	tmp := append([]boundaryRec(nil), tail...)
	i, k := p-1, len(recs)-1
	for j := len(tmp) - 1; j >= 0; {
		if i >= 0 && boundaryBefore(&tmp[j], &recs[i]) {
			recs[k] = recs[i]
			i--
		} else {
			recs[k] = tmp[j]
			j--
		}
		k--
	}
}

// boundaryPublisher receives one shard's boundary captures during phase
// 1. The barrier backend buffers the full harvest; the pipelined
// backend streams releases through a watermarked ring. capture is
// called in shard event order; advance reports the shard clock reaching
// now (from the feeder, once per source record); finish runs once after
// the shard engine drains, including on source error.
type boundaryPublisher interface {
	capture(rec boundaryRec)
	advance(now float64)
	finish()
}

// harvestPublisher is the barrier backend's publisher: append
// everything, canonicalize once at the end.
type harvestPublisher struct{ st *shardState }

func (h *harvestPublisher) capture(rec boundaryRec) {
	h.st.boundary = append(h.st.boundary, rec)
}

func (h *harvestPublisher) advance(float64) {}

func (h *harvestPublisher) finish() { sortBoundary(h.st.boundary) }

// homeSpill is one home tier's outgoing spill edge, pre-resolved.
type homeSpill struct {
	spec     SpillEdge
	to       int
	toShared bool
	toSlow   float64
	atGen    bool // entry-tier edge: detour pre-sampled into AuxRTT
}

// shardState is one phase-1 shard's working set and harvest. It doubles
// as the shard's queue.Sink: every completion in phase 1 happens at a
// home tier of this shard.
type shardState struct {
	lo, hi int // global site range
	warmup float64
	slot   []int // tier index -> home slot (shared shardPlan.homeSlot)

	stations [][]*queue.Station // per home slot, per local site
	boundary []boundaryRec      // barrier backend's harvest
	siteSeq  []uint64           // per local site: boundary capture counter

	offered  uint64
	consumed uint64
	served   []uint64 // per home slot, measured
	dropped  []uint64
	spilled  []uint64
	rejected []uint64 // per home slot, admission refusals (warmup included)

	// Per-class counters and digests, nil when the topology declares no
	// classes. classSite keeps one digest per (slot, class, local site)
	// so finishSharded can merge per-class latency in canonical global
	// site order, independent of the shard partition.
	classServed   [][]uint64
	classDropped  [][]uint64
	classRejected [][]uint64
	classSite     [][][]stats.Digest

	tierSite [][]stats.Digest // per home slot, per local site e2e
	perSite  []stats.Digest   // per local site, home-phase e2e

	eng *sim.Engine
	err error
}

// Consume implements queue.Sink.
func (st *shardState) Consume(e *sim.Engine, r *queue.Request) {
	st.consumed++
	if r.Rejected {
		// Already counted at the rejection instant in the admission gate;
		// only the conservation counter above sees it here.
		return
	}
	if r.Departure < st.warmup {
		return
	}
	slot := st.slot[r.Tag]
	if r.Dropped {
		st.dropped[slot]++
		if st.classDropped != nil {
			st.classDropped[slot][r.Class]++
		}
		return
	}
	e2e := r.EndToEnd()
	ls := r.Site - st.lo
	st.perSite[ls].Add(e2e)
	st.tierSite[slot][ls].Add(e2e)
	st.served[slot]++
	if st.classServed != nil {
		st.classServed[slot][r.Class]++
		st.classSite[slot][r.Class][ls].Add(e2e)
	}
}

// runShardPhase1 replays one shard's sites through the home tiers,
// streaming boundary crossings into pub. All randomness draws from the
// per-site streams in netSeeds, so a site behaves identically no matter
// which shard holds it.
func runShardPhase1(topo Topology, plan shardPlan, st *shardState, src Source, opts Options, netSeeds []int64, pub boundaryPublisher) {
	eng := sim.NewEngineBackend(opts.Seed, opts.Backend)
	st.eng = eng
	pool := &queue.FreeList{}
	width := st.hi - st.lo

	st.warmup = opts.Warmup
	st.slot = plan.homeSlot
	st.served = make([]uint64, len(plan.home))
	st.dropped = make([]uint64, len(plan.home))
	st.spilled = make([]uint64, len(plan.home))
	st.rejected = make([]uint64, len(plan.home))
	if nclass := len(topo.Classes); nclass > 0 {
		st.classServed = make([][]uint64, len(plan.home))
		st.classDropped = make([][]uint64, len(plan.home))
		st.classRejected = make([][]uint64, len(plan.home))
		st.classSite = make([][][]stats.Digest, len(plan.home))
		for slot := range plan.home {
			st.classServed[slot] = make([]uint64, nclass+1)
			st.classDropped[slot] = make([]uint64, nclass+1)
			st.classRejected[slot] = make([]uint64, nclass+1)
			st.classSite[slot] = make([][]stats.Digest, nclass+1)
			for c := range st.classSite[slot] {
				st.classSite[slot][c] = newDigests(opts.Summary, width)
			}
		}
	}
	st.siteSeq = make([]uint64, width)
	st.perSite = newDigests(opts.Summary, width)
	st.tierSite = make([][]stats.Digest, len(plan.home))
	st.stations = make([][]*queue.Station, len(plan.home))
	for slot, ti := range plan.home {
		t := topo.Tiers[ti]
		st.tierSite[slot] = newDigests(opts.Summary, width)
		st.stations[slot] = make([]*queue.Station, width)
		for ls := 0; ls < width; ls++ {
			gs := st.lo + ls
			c := t.ServersPerSite
			if t.PerSiteServers != nil {
				c = t.PerSiteServers[gs]
			}
			st.stations[slot][ls] = newStation(eng, fmt.Sprintf("%s-%d", t.Name, gs),
				c, t.Discipline, t.QueueCap, opts.Warmup, opts.Summary, pool)
		}
	}

	netRng := make([]*rand.Rand, width)
	for ls := range netRng {
		netRng[ls] = rand.New(rand.NewSource(netSeeds[st.lo+ls]))
	}

	// Resolve spill edges out of home tiers. The entry tier's sampled
	// detour is drawn at generation time in per-site record order and
	// rides in AuxRTT, mirroring Run's generation-time draw.
	spills := make([]*homeSpill, len(plan.home))
	var genSpill *SpillEdge
	for i, sp := range topo.Spills {
		from, to := topo.tierIndex(sp.From), topo.tierIndex(sp.To)
		if sp.DetourPath != nil && from == 0 {
			genSpill = &topo.Spills[i]
		}
		if plan.homeSlot[from] < 0 {
			continue
		}
		spills[plan.homeSlot[from]] = &homeSpill{
			spec:     sp,
			to:       to,
			toShared: plan.isShared(to),
			toSlow:   topo.Tiers[to].SlowdownFactor,
			atGen:    sp.DetourPath != nil && from == 0,
		}
	}

	// Admission policies for the home tiers, one per slot. Buckets are
	// the shard's local sites: token-bucket state is per-site, so a
	// local-site key observes exactly the sequence the serial policy's
	// global-site bucket would — admission is partition-independent.
	adms := make([]admit.Policy, len(plan.home))
	for slot, ti := range plan.home {
		if sp := topo.Tiers[ti].Admission; sp != nil {
			a, err := admit.New(*sp, width)
			if err != nil {
				panic(fmt.Sprintf("cluster: tier %q admission passed Validate but not New: %v",
					topo.Tiers[ti].Name, err))
			}
			adms[slot] = a
		}
	}

	// Site-pinned classes only: planShards rejected Bernoulli fractions,
	// so classification is deterministic per record. Returns the entry
	// tier and the class rank (matched rule index, or the rule count for
	// unclassified traffic).
	classify := func(rec RequestRecord) (int, int) {
		for ci, c := range topo.Classes {
			if c.Sites != nil && !containsInt(c.Sites, rec.Site) {
				continue
			}
			return topo.tierIndex(c.Tier), ci
		}
		return 0, len(topo.Classes)
	}

	capture := func(at float64, req *queue.Request, target int, service float64) {
		ls := req.Site - st.lo
		pub.capture(boundaryRec{
			at:        at,
			site:      req.Site,
			seq:       st.siteSeq[ls],
			service:   service,
			rtt:       req.NetworkRTT,
			aux:       req.AuxRTT,
			generated: req.Generated,
			tier:      target,
			class:     req.Class,
		})
		st.siteSeq[ls]++
		pool.Put(req)
	}

	var admitEv sim.PayloadEvent
	admitEv = func(e *sim.Engine, p any) {
		req := p.(*queue.Request)
		ti := int(req.Tag)
		if plan.isShared(ti) {
			// Class-pinned straight into the shared phase; ServiceTime is
			// already scaled to the target tier by prep. The shared tier's
			// admission policy runs in phase 2, where it observes the
			// canonical merged order — exactly what the serial run sees.
			capture(e.Now(), req, ti, req.ServiceTime)
			return
		}
		slot := plan.homeSlot[ti]
		ls := req.Site - st.lo
		// Admission before the spill check, mirroring topoExec.admit: a
		// refused request is rejected outright, never spilled.
		if a := adms[slot]; a != nil &&
			!a.Admit(e.Now(), ls, st.stations[slot][ls].QueueLength(), req.Class) {
			st.rejected[slot]++
			if st.classRejected != nil {
				st.classRejected[slot][req.Class]++
			}
			req.Rejected = true
			req.Departure = e.Now()
			st.Consume(e, req)
			pool.Put(req)
			return
		}
		if hs := spills[slot]; hs != nil && st.stations[slot][ls].Load() >= hs.spec.Threshold {
			st.spilled[slot]++
			slow := topo.Tiers[ti].SlowdownFactor
			extra := hs.spec.DetourRTT
			if hs.atGen {
				extra += req.AuxRTT
			}
			if hs.toShared {
				service := req.ServiceTime
				if hs.toSlow != slow {
					service = service / slow * hs.toSlow
				}
				req.NetworkRTT += extra
				capture(e.Now()+extra/2, req, hs.to, service)
				return
			}
			if hs.toSlow != slow {
				req.ServiceTime = req.ServiceTime / slow * hs.toSlow
			}
			req.Tag = uint64(hs.to)
			req.NetworkRTT += extra
			e.AfterPayload(extra/2, admitEv, req)
			return
		}
		st.stations[slot][ls].Arrive(req)
	}

	f := &feeder{
		src:  src,
		pool: pool,
		sink: st,
		prep: func(rec RequestRecord, req *queue.Request) {
			if rec.Site < st.lo || rec.Site >= st.hi {
				panic(fmt.Sprintf("cluster: sharded source yielded site %d outside shard [%d,%d)",
					rec.Site, st.lo, st.hi))
			}
			// The shard clock sits at rec.Time: every boundary capture
			// from here on carries at >= rec.Time, which is what lets the
			// pipelined publisher release and watermark.
			pub.advance(rec.Time)
			entry, class := 0, 0
			if len(topo.Classes) > 0 {
				entry, class = classify(rec)
			}
			et := topo.Tiers[entry]
			path := et.Path
			if et.PerSitePaths != nil {
				path = et.PerSitePaths[rec.Site]
			}
			rng := netRng[rec.Site-st.lo]
			req.NetworkRTT = path.Sample(rng)
			if genSpill != nil {
				// Drawn for every record in per-site record order, so the
				// sequence is independent of routing decisions and of the
				// shard partition.
				req.AuxRTT = genSpill.DetourPath.Sample(rng)
			}
			req.ServiceTime = rec.ServiceTime * et.SlowdownFactor
			req.Tag = uint64(entry)
			req.Class = class
		},
		admit: admitEv,
	}
	f.start(eng)
	eng.Run()
	st.offered = f.count
	if fs, ok := src.(FallibleSource); ok {
		if err := fs.Err(); err != nil {
			st.err = fmt.Errorf("cluster: shard [%d,%d) source failed after %d records: %w",
				st.lo, st.hi, f.count, err)
		}
	}
	// Flush the tail captures (and, for the barrier backend,
	// canonicalize the harvest). Runs on the error path too, so a
	// pipelined ring always closes and the merger cannot stall.
	pub.finish()
}

// phase2Sink records completions at the shared tiers. Counters are
// sink-local so parallel phase-2 partitions never share a scalar;
// per-tier and per-site writes land in partition-exclusive slice
// elements. finishSharded folds the locals into the result.
type phase2Sink struct {
	tiers     []TierResult // the result's tier table (shared, disjoint tags)
	warmup    float64
	perSite   []stats.Digest // per global site, shared-phase e2e (disjoint sites)
	consumed  uint64
	completed uint64
	dropped   uint64
	pre       func() // runs for every consumed request (autoscale drain)
}

// Consume implements queue.Sink.
func (s *phase2Sink) Consume(e *sim.Engine, r *queue.Request) {
	s.consumed++
	if s.pre != nil {
		s.pre()
	}
	if r.Rejected {
		// Already counted at the rejection instant (topoExec.reject);
		// only the conservation counter above sees it here.
		return
	}
	if r.Departure < s.warmup {
		return
	}
	tier := &s.tiers[r.Tag]
	if r.Dropped {
		s.dropped++
		tier.Dropped++
		if tier.Classes != nil {
			tier.Classes[r.Class].Dropped++
		}
		return
	}
	e2e := r.EndToEnd()
	if r.Site >= 0 && r.Site < len(s.perSite) {
		s.perSite[r.Site].Add(e2e)
	}
	s.completed++
	tier.Served++
	tier.EndToEnd.Add(e2e)
	if tier.Classes != nil {
		c := &tier.Classes[r.Class]
		c.Served++
		c.EndToEnd.Add(e2e)
	}
}

// shardRun is the state the barrier and pipelined backends share: the
// validated plan, the partition-independent seed derivation, the shard
// site ranges and the result skeleton.
type shardRun struct {
	topo       Topology
	plan       shardPlan
	opts       Options
	sites      int
	shards     int
	netSeeds   []int64
	phase2Seed int64
	states     []*shardState
	res        *TopologyResult
}

// newShardRun validates the run and derives everything both backends
// need. Per-site stream seeds are derived exactly as siteStreams
// derives the generator's: one master stream hands each site a seed in
// site order, then one more seeds the phase-2 engine. The derivation
// never reads the shard count.
func newShardRun(src ShardedSource, topo Topology, opts Options, shards int) (*shardRun, error) {
	topo = topo.normalized()
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	plan, err := planShards(topo)
	if err != nil {
		return nil, err
	}
	if opts.TimelineBin > 0 {
		return nil, fmt.Errorf("cluster: RunSharded does not support Options.TimelineBin (order-dependent timeline); use Run")
	}
	if opts.Probe != nil {
		return nil, fmt.Errorf("cluster: RunSharded does not support Options.Probe; use Run")
	}
	if opts.Pricing != nil {
		if err := opts.Pricing.Check(); err != nil {
			return nil, fmt.Errorf("cluster: Options.Pricing: %w", err)
		}
	}
	sites := src.Sites()
	if sites <= 0 {
		return nil, fmt.Errorf("cluster: sharded source reports %d sites", sites)
	}
	if plan.sites > 0 && sites != plan.sites {
		return nil, fmt.Errorf("cluster: source has %d sites, home tiers have %d", sites, plan.sites)
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > sites {
		shards = sites
	}

	master := rand.New(rand.NewSource(opts.Seed))
	netSeeds := make([]int64, sites)
	for i := range netSeeds {
		netSeeds[i] = master.Int63()
	}
	phase2Seed := master.Int63()

	// Contiguous balanced site ranges, one shard each.
	states := make([]*shardState, shards)
	lo := 0
	for k := 0; k < shards; k++ {
		width := sites / shards
		if k < sites%shards {
			width++
		}
		states[k] = &shardState{lo: lo, hi: lo + width}
		lo += width
	}

	// Result skeleton; phase 2 writes its tier counters directly.
	res := &TopologyResult{Result: *newResult(topo.Name, opts.Summary, opts.SizeHint)}
	res.Tiers = make([]TierResult, len(topo.Tiers))
	names := classNamesOf(topo)
	for i := range res.Tiers {
		res.Tiers[i].Name = topo.Tiers[i].Name
		res.Tiers[i].EndToEnd = stats.NewDigest(opts.Summary, 0)
		res.Tiers[i].Wait = stats.NewDigest(opts.Summary, 0)
		res.Tiers[i].Classes = newClassResults(names, opts.Summary)
	}

	return &shardRun{
		topo:       topo,
		plan:       plan,
		opts:       opts,
		sites:      sites,
		shards:     shards,
		netSeeds:   netSeeds,
		phase2Seed: phase2Seed,
		states:     states,
		res:        res,
	}, nil
}

// p2streams pins every phase-2 random-stream seed before any engine is
// built, drawn from the phase-2 seed in the exact order the serial
// engine's NewStream calls consume its primary stream: each shared
// tier's dispatcher stream in tier order, then lazy detour streams in
// spill order. Pinning the seeds lets parallel phase-2 partitions
// construct their streams independently and still match the serial
// engine bit for bit.
type p2streams struct {
	disp  map[int]int64 // tier index -> dispatcher stream seed
	spill map[int]int64 // spill index -> detour stream seed
}

func deriveP2Streams(topo Topology, plan shardPlan, phase2Seed int64) p2streams {
	rng := rand.New(rand.NewSource(phase2Seed))
	s := p2streams{disp: map[int]int64{}, spill: map[int]int64{}}
	for _, ti := range plan.shared {
		if topo.Tiers[ti].Dispatch != CentralQueueDispatch {
			s.disp[ti] = rng.Int63()
		}
	}
	for i, sp := range topo.Spills {
		from := topo.tierIndex(sp.From)
		if plan.homeSlot[from] >= 0 {
			continue // handled inside phase 1
		}
		if sp.DetourPath != nil && from != 0 {
			s.spill[i] = rng.Int63()
		}
	}
	return s
}

// p2build is one phase-2 engine's constructed world: the runtimes for
// its subset of the shared tiers, its request pool, sink and
// controllers. The barrier backend builds exactly one over all shared
// tiers; the pipelined backend builds one per independent partition.
type p2build struct {
	eng   *sim.Engine
	x     *topoExec
	pool  *queue.FreeList
	sink  *phase2Sink
	ctrls []autoscale.Scaler
}

// buildPhase2 constructs the given shared tiers on a fresh engine,
// following Run's stream discipline scoped to the shared tiers: each
// tier's dispatcher stream in tier order, then lazy spill streams in
// spill order (all pinned by streams); controllers construct-then-Start
// in tier order.
func buildPhase2(r *shardRun, tiers []int, streams p2streams) (*p2build, error) {
	topo, opts := r.topo, r.opts
	eng := sim.NewEngineBackend(r.phase2Seed, opts.Backend)
	pool := &queue.FreeList{}
	x := &topoExec{eng: eng, tiers: make([]*tierRuntime, len(topo.Tiers)), res: r.res, pool: pool}
	for _, ti := range tiers {
		t := topo.Tiers[ti]
		rt := &tierRuntime{
			spec:    t,
			central: t.Dispatch == CentralQueueDispatch,
			slow:    t.SlowdownFactor,
		}
		if t.Admission != nil {
			a, err := admit.New(*t.Admission, admitBuckets(t))
			if err != nil {
				return nil, fmt.Errorf("cluster: tier %q admission: %w", t.Name, err)
			}
			rt.adm = a
		}
		rt.stations = make([]*queue.Station, t.Sites)
		rt.servers = make([]queue.Server, t.Sites)
		for i := range rt.stations {
			c := t.ServersPerSite
			if t.PerSiteServers != nil {
				c = t.PerSiteServers[i]
			}
			name := fmt.Sprintf("%s-%d", t.Name, i)
			if rt.central && t.Sites == 1 {
				name = t.Name
			}
			rt.stations[i] = newStation(eng, name, c, t.Discipline,
				t.QueueCap, opts.Warmup, opts.Summary, pool)
			rt.servers[i] = rt.stations[i]
		}
		// Jockeying is home-routed-only (Validate), and jockeying home
		// tiers are unshardable, so shared tiers never need lb.Geographic.
		if !rt.central {
			d, err := lb.New(t.Dispatch, rt.servers, rand.New(rand.NewSource(streams.disp[ti])))
			if err != nil {
				return nil, fmt.Errorf("cluster: tier %q: %w", t.Name, err)
			}
			rt.dispatcher = d
		}
		x.tiers[ti] = rt
	}
	for i, sp := range topo.Spills {
		from, to := topo.tierIndex(sp.From), topo.tierIndex(sp.To)
		if r.plan.homeSlot[from] >= 0 {
			continue // handled inside phase 1
		}
		if x.tiers[from] == nil {
			continue // another partition's edge
		}
		rt := &spillRuntime{spec: sp, to: to}
		if sp.DetourPath != nil {
			if from == 0 {
				// The entry tier's detour was pre-sampled by phase 1 and
				// rides on the boundary record's aux field.
				rt.atGen = true
			} else {
				rt.rng = rand.New(rand.NewSource(streams.spill[i]))
			}
		}
		x.tiers[from].spill = rt
	}
	var ctrls []autoscale.Scaler
	for _, ti := range tiers {
		rt := x.tiers[ti]
		if rt.spec.Scaler == nil {
			continue
		}
		s, err := autoscale.New(*rt.spec.Scaler, eng, rt.stations)
		if err != nil {
			return nil, fmt.Errorf("cluster: tier %q: %w", rt.spec.Name, err)
		}
		s.Start()
		rt.scaler = s
		ctrls = append(ctrls, s)
	}

	sink := &phase2Sink{tiers: r.res.Tiers, warmup: opts.Warmup}
	x.admitEv = func(e *sim.Engine, p any) {
		req := p.(*queue.Request)
		x.admit(int(req.Tag), req)
	}
	return &p2build{eng: eng, x: x, pool: pool, sink: sink, ctrls: ctrls}, nil
}

// finishSharded closes every engine at the global end time, harvests
// the phase-1 and phase-2 counters, merges per-site latency in
// canonical order and assembles the per-tier tables — identical for
// both backends, which is what makes them bit-identical.
func finishSharded(r *shardRun, builds []*p2build, perSite []stats.Digest) *TopologyResult {
	topo, plan, opts, res := r.topo, r.plan, r.opts, r.res

	// Tier index -> its phase-2 runtime, across partitions.
	sharedRT := make([]*tierRuntime, len(topo.Tiers))
	for _, b := range builds {
		for ti, rt := range b.x.tiers {
			if rt != nil {
				sharedRT[ti] = rt
			}
		}
	}

	// Close every engine at the global end time, so time-weighted
	// metrics (busy integrals, arrival rates) cover the same window for
	// every shard count and partition: the max over engines equals the
	// max over per-site last-event times, which no partition changes.
	var globalDur float64
	for _, b := range builds {
		if b.eng.Now() > globalDur {
			globalDur = b.eng.Now()
		}
	}
	for _, st := range r.states {
		if st.eng.Now() > globalDur {
			globalDur = st.eng.Now()
		}
	}
	for _, st := range r.states {
		if st.eng.Now() < globalDur {
			st.eng.RunUntil(globalDur)
		}
		for _, row := range st.stations {
			for _, s := range row {
				s.Finish()
			}
		}
	}
	for _, b := range builds {
		if b.eng.Now() < globalDur {
			b.eng.RunUntil(globalDur)
		}
	}
	for _, ti := range plan.shared {
		for _, s := range sharedRT[ti].stations {
			s.Finish()
		}
	}
	res.Duration = globalDur

	// Harvest phase-1 counters, then the phase-2 sinks' locals.
	for _, st := range r.states {
		res.Offered += st.offered
		res.Consumed += st.consumed
		for slot, ti := range plan.home {
			tier := &res.Tiers[ti]
			tier.Served += st.served[slot]
			tier.Dropped += st.dropped[slot]
			tier.Spilled += st.spilled[slot]
			tier.Rejected += st.rejected[slot]
			res.Completed += st.served[slot]
			res.Dropped += st.dropped[slot]
			if tier.Classes != nil && st.classServed != nil {
				for c := range tier.Classes {
					tier.Classes[c].Served += st.classServed[slot][c]
					tier.Classes[c].Dropped += st.classDropped[slot][c]
					tier.Classes[c].Rejected += st.classRejected[slot][c]
				}
			}
		}
	}
	for _, b := range builds {
		res.Consumed += b.sink.consumed
		res.Completed += b.sink.completed
		res.Dropped += b.sink.dropped
	}

	// Combined per-site end-to-end: home-phase completions then
	// shared-phase completions, merged in global site order — a
	// canonical order standing in for Run's completion order.
	combined := newDigests(opts.Summary, r.sites)
	for s := 0; s < r.sites; s++ {
		for _, st := range r.states {
			if s >= st.lo && s < st.hi {
				combined[s].Merge(&st.perSite[s-st.lo])
			}
		}
		combined[s].Merge(&perSite[s])
		res.EndToEnd.Merge(&combined[s])
	}
	for slot, ti := range plan.home {
		tier := &res.Tiers[ti]
		for _, st := range r.states {
			for ls := range st.tierSite[slot] {
				tier.EndToEnd.Merge(&st.tierSite[slot][ls])
			}
		}
		if tier.Classes == nil {
			continue
		}
		// Per-class latency in canonical order: class outer, then shards
		// ascending (= global site order) — independent of the partition.
		for c := range tier.Classes {
			for _, st := range r.states {
				if st.classSite == nil {
					continue
				}
				for ls := range st.classSite[slot][c] {
					tier.Classes[c].EndToEnd.Merge(&st.classSite[slot][c][ls])
				}
			}
		}
	}

	// Assemble per-tier station metrics in Run's exact order: tiers
	// outer (declaration order), stations inner (global site order).
	pricing := econ.DefaultPricing()
	if opts.Pricing != nil {
		pricing = *opts.Pricing
	}
	entryHome := plan.homeSlot[0] >= 0
	var busyAll, capAll float64
	for ti := range topo.Tiers {
		tr := &res.Tiers[ti]
		var busy, capacity float64
		if slot := plan.homeSlot[ti]; slot >= 0 {
			for _, st := range r.states {
				for ls, s := range st.stations[slot] {
					gs := st.lo + ls
					m := s.Metrics()
					res.Wait.Merge(&m.Wait)
					tr.Wait.Merge(&m.Wait)
					sr := SiteResult{
						Site:        gs,
						Wait:        m.Wait,
						Utilization: m.Utilization(s.Servers),
						Arrivals:    s.TotalArrivals(),
						MeanRate:    m.Arrivals.Rate(),
					}
					if ti == 0 && entryHome && !opts.NoPerSiteLatency {
						sr.EndToEnd = combined[gs]
					}
					tr.Sites = append(tr.Sites, sr)
					tr.FinalServers = append(tr.FinalServers, s.Servers)
					busy += m.Busy.Average()
					capacity += float64(s.Servers)
				}
			}
		} else {
			rt := sharedRT[ti]
			for i, s := range rt.stations {
				m := s.Metrics()
				res.Wait.Merge(&m.Wait)
				tr.Wait.Merge(&m.Wait)
				tr.Sites = append(tr.Sites, SiteResult{
					Site:        i,
					Wait:        m.Wait,
					Utilization: m.Utilization(s.Servers),
					Arrivals:    s.TotalArrivals(),
					MeanRate:    m.Arrivals.Rate(),
				})
				tr.FinalServers = append(tr.FinalServers, s.Servers)
				busy += m.Busy.Average()
				capacity += float64(s.Servers)
			}
		}
		if capacity > 0 {
			tr.Utilization = busy / capacity
		}
		if rt := sharedRT[ti]; rt != nil && rt.scaler != nil {
			tel := rt.scaler.Telemetry(res.Duration)
			tr.ScalerPolicy = rt.spec.Scaler.Label()
			tr.ScaleUps = tel.ScaleUps
			tr.ScaleDowns = tel.ScaleDowns
			tr.PeakServers = tel.PeakServers
			tr.ServerSeconds = tel.ServerSeconds
			tr.Events = rt.scaler.EventLog()
		} else {
			tr.ServerSeconds = capacity * res.Duration
		}
		priceTier(tr, plan.homeSlot[ti] >= 0, topo.Tiers[ti].PricePerServerHour, pricing, res.Duration)
		res.Rejected += tr.Rejected
		res.TotalCost += tr.Cost + tr.RejectionCost
		busyAll += busy
		capAll += capacity
	}
	if capAll > 0 {
		res.Utilization = busyAll / capAll
	}
	if res.Completed > 0 {
		res.CostPerRequest = res.TotalCost / float64(res.Completed)
	}
	return res
}

// RunSharded replays the source through the topology on `shards`
// parallel engines plus one serial shared phase, producing a result
// that is bit-identical for every shard count (including 1). shards <=
// 0 selects GOMAXPROCS; the count is clamped to the site count. See
// Shardable for what disqualifies a topology.
//
// This is the barrier backend: phase 2 starts after every shard
// finishes and the full boundary harvest is materialized. Setting
// Options.Pipeline delegates to RunPipelined, which overlaps the
// phases and bounds boundary memory by ring capacity — same results,
// byte for byte.
//
// Options.TimelineBin and Options.Probe are not supported here: both
// observe global event order, which sharding does not preserve.
func RunSharded(src ShardedSource, topo Topology, opts Options, shards int) (*TopologyResult, error) {
	if opts.Pipeline {
		return RunPipelined(src, topo, opts, shards)
	}
	r, err := newShardRun(src, topo, opts, shards)
	if err != nil {
		return nil, err
	}

	// Phase 1: all shards to completion, full harvests. The pprof
	// label makes the parallel home-tier replay separable from the
	// shared phase in -cpuprofile/-memprofile output.
	var wg sync.WaitGroup
	for _, st := range r.states {
		wg.Add(1)
		go pprof.Do(context.Background(), pprof.Labels("phase", "phase-1"), func(context.Context) {
			defer wg.Done()
			runShardPhase1(r.topo, r.plan, st, src.Shard(st.lo, st.hi), r.opts, r.netSeeds, &harvestPublisher{st: st})
		})
	}
	wg.Wait()
	for _, st := range r.states {
		if st.err != nil {
			return nil, st.err
		}
	}

	// Phase 2: one serial engine over all shared tiers.
	b, err := buildPhase2(r, r.plan.shared, deriveP2Streams(r.topo, r.plan, r.phase2Seed))
	if err != nil {
		return nil, err
	}
	perSite := newDigests(r.opts.Summary, r.sites)
	b.sink.perSite = perSite

	// Canonical k-way merge over the sorted per-shard buffers. heads
	// maps heap entries to shard indices; pos tracks each shard's next
	// unread record.
	states := r.states
	var total uint64
	for _, st := range states {
		total += uint64(len(st.boundary))
	}
	pos := make([]int, r.shards)
	var heads []int
	for k := range states {
		if len(states[k].boundary) > 0 {
			heads = append(heads, k)
		}
	}
	var mh merge.Heap
	mh.Less = func(a, b int) bool {
		ka, kb := heads[a], heads[b]
		return boundaryBefore(&states[ka].boundary[pos[ka]], &states[kb].boundary[pos[kb]])
	}
	mh.Build(len(heads))

	var pending *boundaryRec
	advance := func() bool {
		if mh.Len() == 0 {
			pending = nil
			return false
		}
		k := heads[mh.Min()]
		pending = &states[k].boundary[pos[k]]
		pos[k]++
		if pos[k] < len(states[k].boundary) {
			mh.FixMin()
		} else {
			mh.PopMin()
		}
		return true
	}

	var drained bool
	stopAll := func() {
		if drained && b.sink.consumed == total {
			for _, c := range b.ctrls {
				c.Stop()
			}
		}
	}
	if len(b.ctrls) > 0 {
		b.sink.pre = stopAll
	}
	var nextID uint64
	var pump sim.Event
	pump = func(e *sim.Engine) {
		rec := pending
		req := b.pool.Get()
		nextID++
		req.ID = nextID
		req.Site = rec.site
		req.Generated = rec.generated
		req.Done = b.sink
		req.NetworkRTT = rec.rtt
		req.AuxRTT = rec.aux
		req.ServiceTime = rec.service
		req.Tag = uint64(rec.tier)
		req.Class = rec.class
		b.x.admit(rec.tier, req)
		if advance() {
			e.AtFront(pending.at, pump)
		} else {
			drained = true
			stopAll()
		}
	}
	if advance() {
		b.eng.AtFront(pending.at, pump)
	} else {
		drained = true
		stopAll()
	}
	// The barrier backend interleaves the k-way merge with the shared
	// replay inside the pump, so one label covers both.
	pprof.Do(context.Background(), pprof.Labels("phase", "phase-2"), func(context.Context) {
		b.eng.Run()
	})
	for _, c := range b.ctrls {
		c.Stop()
	}

	return finishSharded(r, []*p2build{b}, perSite), nil
}
