package cluster

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"

	"repro/internal/merge"
)

// Broadcast replay: one generation/decode pass fans out to N variant
// engines. Every variant comparison in this repo replays the identical
// record sequence through different deployments or options; the
// per-row discipline (SourceFactory: re-derive a fresh source per run)
// pays the generation or decode cost once per variant. RunBroadcast
// pays it once per distinct trace instead:
//
//	            ┌─▶ ring 0 ──▶ Source ──▶ engine (variant 0)
//	src ──pump──┼─▶ ring 1 ──▶ Source ──▶ engine (variant 1)
//	            └─▶ ring k ──▶ Source ──▶ engine (variant k)
//
// One producer goroutine pulls src and publishes batches into a
// merge.Fan — bounded per-variant rings with backpressure, so the
// slowest engine gates the producer and resident memory stays O(ring ×
// variants) however long the trace is. Each ring presents as an
// ordinary Source (records are value types; consumers share nothing
// mutable), so every variant replays the byte-identical sequence a
// fresh per-row source would have yielded — the broadcast equivalence
// suite asserts whole TopologyResults are bit-identical to per-row
// re-derivation across generator/CSV/Azure sources and summary modes.
const (
	// defaultBroadcastRing bounds each subscriber's ring when the caller
	// passes ring <= 0: deep enough to decouple the engines' pop
	// cadences, small enough that k rings stay cache-resident.
	defaultBroadcastRing = 4096
	// broadcastBatch amortizes the fan's lock over batches on both the
	// publish and the subscribe side.
	broadcastBatch = 256
)

// Variant is one subscriber of a broadcast replay: a deployment and
// its run options, evaluated on the shared record stream.
type Variant struct {
	Label    string
	Topology Topology
	Opts     Options
}

// broadcastSub adapts one fan ring into a Source (and FallibleSource:
// a producer-side decode error surfaces through Err after the drain,
// exactly as it would on a per-row source).
type broadcastSub struct {
	fan *merge.Fan[RequestRecord]
	i   int
	buf []RequestRecord
	bi  int
	err func() error
}

func (s *broadcastSub) Next() (RequestRecord, bool) {
	if s.bi >= len(s.buf) {
		var ok bool
		s.buf, ok = s.fan.NextBatch(s.i, s.buf[:0], broadcastBatch)
		s.bi = 0
		if !ok || len(s.buf) == 0 {
			return RequestRecord{}, false
		}
	}
	rec := s.buf[s.bi]
	s.bi++
	return rec, true
}

func (s *broadcastSub) Err() error { return s.err() }

// RunBroadcast replays src through every variant concurrently, pulling
// the source exactly once. Results are positional (results[i] is
// variants[i]); the first variant error fails the whole call. ring
// bounds each subscriber's buffer (<= 0 selects the default). The
// source's records must be nondecreasing in time, as for Run; if src
// is a FallibleSource its error fails every variant, matching the
// per-row behavior where each run's own decoder would fail.
//
// All variants replay concurrently — an early-finishing or failing
// variant detaches from the fan so it can never stall the rest — and
// each variant's engine, seeds and options behave exactly as in
// Run(srcFactory(), v.Topology, v.Opts).
func RunBroadcast(src Source, variants []Variant, ring int) ([]*TopologyResult, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("cluster: RunBroadcast needs at least one variant")
	}
	if ring <= 0 {
		ring = defaultBroadcastRing
	}
	fan := merge.NewFan[RequestRecord](len(variants), ring)

	// Producer: one pass over src, batched into the fan. The error (if
	// any) is stored before CloseProducer, so a subscriber that has
	// drained its ring always observes it.
	var (
		srcMu  sync.Mutex
		srcErr error
	)
	go pprof.Do(context.Background(), pprof.Labels("phase", "generate"), func(context.Context) {
		batch := make([]RequestRecord, 0, broadcastBatch)
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			batch = append(batch, rec)
			if len(batch) == broadcastBatch {
				if !fan.Publish(batch) {
					break // every subscriber canceled; stop generating
				}
				batch = batch[:0]
			}
		}
		fan.Publish(batch)
		if fs, ok := src.(FallibleSource); ok {
			if err := fs.Err(); err != nil {
				srcMu.Lock()
				srcErr = err
				srcMu.Unlock()
			}
		}
		fan.CloseProducer()
	})

	producerErr := func() error {
		srcMu.Lock()
		defer srcMu.Unlock()
		return srcErr
	}
	results := make([]*TopologyResult, len(variants))
	errs := make([]error, len(variants))
	var wg sync.WaitGroup
	for i := range variants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer fan.Cancel(i)
			sub := &broadcastSub{fan: fan, i: i, err: producerErr}
			results[i], errs[i] = Run(sub, variants[i].Topology, variants[i].Opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			label := variants[i].Label
			if label == "" {
				label = fmt.Sprintf("#%d", i)
			}
			return nil, fmt.Errorf("cluster: broadcast variant %s: %w", label, err)
		}
	}
	return results, nil
}
