package cluster

import (
	"math"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/econ"
)

// TestCostOverlayStaticTiers: static tiers are priced at servers ×
// duration, home-routed tiers at the edge rate and dispatcher tiers at
// the cloud rate, and per-tier costs sum exactly to the total.
func TestCostOverlayStaticTiers(t *testing.T) {
	tr := equivalenceTrace(301)
	pricing := econ.Pricing{CloudPerServerHour: 0.10, EdgePerServerHour: 0.30}
	topo := Topology{
		Name: "priced",
		Tiers: []Tier{
			{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()},
			{Name: "cloud", Sites: 1, ServersPerSite: 5, Path: cloudPath(),
				Dispatch: CentralQueueDispatch},
		},
		Spills: []SpillEdge{{From: "edge", To: "cloud", Threshold: 3}},
	}
	res, err := Run(tr.Source(), topo, Options{
		Seed: 5, SizeHint: tr.Len(), Pricing: &pricing,
	})
	if err != nil {
		t.Fatal(err)
	}
	hours := res.Duration / 3600
	edge, cloud := res.Tiers[0], res.Tiers[1]
	if got, want := edge.ServerSeconds, 5*res.Duration; math.Abs(got-want) > 1e-9 {
		t.Errorf("edge server-seconds = %v, want %v", got, want)
	}
	if got, want := cloud.ServerSeconds, 5*res.Duration; math.Abs(got-want) > 1e-9 {
		t.Errorf("cloud server-seconds = %v, want %v", got, want)
	}
	if got, want := edge.Cost, 5*hours*0.30; math.Abs(got-want) > 1e-9 {
		t.Errorf("edge cost = %v, want %v (edge rate)", got, want)
	}
	if got, want := cloud.Cost, 5*hours*0.10; math.Abs(got-want) > 1e-9 {
		t.Errorf("cloud cost = %v, want %v (cloud rate)", got, want)
	}
	if got := edge.Cost + cloud.Cost; got != res.TotalCost {
		t.Errorf("tier costs %v not conserved against total %v", got, res.TotalCost)
	}
	if res.Completed == 0 || res.CostPerRequest != res.TotalCost/float64(res.Completed) {
		t.Errorf("CostPerRequest = %v inconsistent with total %v / completed %d",
			res.CostPerRequest, res.TotalCost, res.Completed)
	}
	if edge.Served > 0 && math.Abs(edge.CostPerReq-edge.Cost/float64(edge.Served)) > 1e-12 {
		t.Errorf("edge CostPerReq = %v, want %v", edge.CostPerReq, edge.Cost/float64(edge.Served))
	}
	if edge.CostPerHour <= 0 || math.Abs(edge.CostPerHour-edge.Cost/hours) > 1e-9 {
		t.Errorf("edge CostPerHour = %v, want %v", edge.CostPerHour, edge.Cost/hours)
	}
}

// TestCostOverlayRejectsPartialPricing: a Pricing with a missing rate
// must error up front instead of silently pricing tiers at $0.
func TestCostOverlayRejectsPartialPricing(t *testing.T) {
	tr := equivalenceTrace(305)
	topo := Topology{Tiers: []Tier{{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath()}}}
	for _, p := range []econ.Pricing{
		{CloudPerServerHour: 0.154},
		{EdgePerServerHour: 0.2},
		{CloudPerServerHour: -1, EdgePerServerHour: 0.2},
	} {
		pricing := p
		if _, err := Run(tr.Source(), topo, Options{Pricing: &pricing}); err == nil {
			t.Errorf("partial pricing %+v accepted", p)
		}
	}
}

// TestCostOverlayTierPriceOverride: Tier.PricePerServerHour replaces
// the shape-derived default.
func TestCostOverlayTierPriceOverride(t *testing.T) {
	tr := equivalenceTrace(302)
	topo := Topology{Tiers: []Tier{
		{Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(), PricePerServerHour: 1.25},
	}}
	res, err := Run(tr.Source(), topo, Options{Seed: 5, SizeHint: tr.Len()})
	if err != nil {
		t.Fatal(err)
	}
	want := 5 * res.Duration / 3600 * 1.25
	if math.Abs(res.Tiers[0].Cost-want) > 1e-9 {
		t.Errorf("overridden cost = %v, want %v", res.Tiers[0].Cost, want)
	}
}

// TestCostOverlayScaledTier: an autoscaled tier's integrated capacity
// must track the controller's event log — bounded by Min/Max, above the
// all-Min floor once it scales up, and the econ conversion must agree
// with econ.AutoscaledCost.
func TestCostOverlayScaledTier(t *testing.T) {
	procs := siteProcs([]float64{26, 10, 8, 4, 4})
	tr := Generate(GenSpec{Sites: 5, Duration: 400, Seed: 303, Arrivals: procs})
	topo := Topology{Tiers: []Tier{{
		Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(),
		Scaler: reactiveSpec(autoscale.Config{Interval: 2, Min: 1, Max: 4,
			UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 6}),
	}}}
	pricing := econ.DefaultPricing()
	res, err := Run(tr.Source(), topo, Options{Seed: 7, SizeHint: tr.Len(), Pricing: &pricing})
	if err != nil {
		t.Fatal(err)
	}
	tier := res.Tiers[0]
	if tier.ScaleUps == 0 {
		t.Fatal("scaler never engaged; test is vacuous")
	}
	minSS, maxSS := 5*1*res.Duration, 5*4*res.Duration
	if tier.ServerSeconds <= minSS || tier.ServerSeconds >= maxSS {
		t.Errorf("scaled server-seconds = %v outside (%v, %v)", tier.ServerSeconds, minSS, maxSS)
	}
	want := econ.AutoscaledCost(tier.ServerSeconds, pricing)
	if math.Abs(tier.Cost-want) > 1e-9 {
		t.Errorf("scaled tier cost = %v, econ.AutoscaledCost gives %v", tier.Cost, want)
	}
}

// TestCostOverlayPredictiveDiffersFromReactive: the two policies make
// different provisioning decisions on the same workload, so their
// telemetry and cost must differ — the comparison the whole subsystem
// exists to enable.
func TestCostOverlayPredictiveDiffersFromReactive(t *testing.T) {
	procs := siteProcs([]float64{26, 10, 8, 4, 4})
	tr := Generate(GenSpec{Sites: 5, Duration: 400, Seed: 304, Arrivals: procs})
	run := func(spec autoscale.Spec) TierResult {
		topo := Topology{Tiers: []Tier{{
			Name: "edge", Sites: 5, ServersPerSite: 1, Path: edgePath(), Scaler: &spec,
		}}}
		res, err := Run(tr.Source(), topo, Options{Seed: 7, SizeHint: tr.Len()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Tiers[0]
	}
	reactive := run(autoscale.ReactiveSpec(autoscale.Config{Interval: 2, Min: 1, Max: 4,
		UpThreshold: 1.5, DownThreshold: 0.2, Cooldown: 6}))
	predictive := run(autoscale.Spec{Policy: autoscale.PolicyPredictive,
		Interval: 2, Min: 1, Max: 4, Mu: 13, TargetUtil: 0.7, Forecaster: "ewma"})
	if reactive.ScalerPolicy == predictive.ScalerPolicy {
		t.Errorf("policies not distinguished: both %q", reactive.ScalerPolicy)
	}
	if predictive.ScaleUps == 0 {
		t.Fatal("predictive scaler never engaged")
	}
	if reactive.ServerSeconds == predictive.ServerSeconds &&
		reactive.ScaleUps == predictive.ScaleUps {
		t.Error("predictive telemetry identical to reactive; policies are not differentiated")
	}
}
