package cluster

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/netem"
	"repro/internal/stats"
)

// OverflowConfig configures a hierarchical edge deployment (edge sites
// backed by a cloud cluster): requests arriving at a site whose load is
// at or beyond OverflowThreshold are forwarded to the cloud instead,
// paying the cloud RTT. This is the "hierarchical edge cloud" design
// from the paper's related work (Tong et al.) and a stronger form of the
// §5.1 mitigation: instead of jockeying to a sibling site, overloaded
// traffic falls back to the pooled cloud queue. Deeper hierarchies
// (edge → regional → cloud chains) are expressed directly as a
// Topology with multiple spill edges.
type OverflowConfig struct {
	Sites             int
	ServersPerSite    int
	EdgePath          netem.Path
	CloudPath         netem.Path
	CloudServers      int
	OverflowThreshold int // forward to the cloud when site load ≥ this
	Warmup            float64
	Seed              int64
	// Summary selects the latency-collection memory model; see
	// EdgeConfig.Summary.
	Summary stats.Mode
}

// OverflowResult extends Result with the edge/cloud split.
type OverflowResult struct {
	Result
	EdgeServed  uint64
	CloudServed uint64
	Overflowed  uint64
	EdgeOnly    stats.Digest // latency of requests served at their home site
	CloudOnly   stats.Digest // latency of overflowed requests
}

// RunEdgeWithOverflow replays the trace through the hierarchical
// deployment: the home site's load is inspected at the request's
// arrival instant, and overflowed requests cross to the cloud on the
// secondary RTT sampled at generation time. It is a thin wrapper over
// Run with OverflowTopology (edge tier, spill edge, cloud backstop).
func RunEdgeWithOverflow(tr *WorkloadTrace, cfg OverflowConfig) *OverflowResult {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.Sites != tr.Sites {
		panic(fmt.Sprintf("cluster: overflow config has %d sites, trace has %d", cfg.Sites, tr.Sites))
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	if cfg.CloudServers <= 0 {
		panic("cluster: overflow deployment needs cloud servers")
	}
	if cfg.OverflowThreshold <= 0 {
		panic("cluster: OverflowThreshold must be positive")
	}
	topo := mustRun(tr.Source(), OverflowTopology(cfg), Options{
		Warmup:   cfg.Warmup,
		Seed:     cfg.Seed,
		Summary:  cfg.Summary,
		SizeHint: tr.Len(),
		// Per-site rows report queueing only, as the pre-topology
		// runner did: a site's client-observed latency mixes
		// home-served and overflowed requests, which
		// EdgeOnly/CloudOnly split instead.
		NoPerSiteLatency: true,
	})
	edge, cloud := &topo.Tiers[0], &topo.Tiers[1]
	res := &OverflowResult{
		Result:      topo.Result,
		EdgeServed:  edge.Served,
		CloudServed: cloud.Served,
		Overflowed:  edge.Spilled,
		EdgeOnly:    edge.EndToEnd,
		CloudOnly:   cloud.EndToEnd,
	}
	res.Label = "edge+overflow"
	res.Sites = edge.Sites
	// The backstop absorbs overflow; utilization reports the edge
	// investment only.
	res.Utilization = edge.Utilization
	return res
}

// AutoscaleResult extends Result with controller telemetry.
type AutoscaleResult struct {
	Result
	ScaleUps     int
	ScaleDowns   int
	PeakServers  int
	FinalPerSite []int
	Events       []autoscale.Event
}

// RunEdgeAutoscaled replays the trace through an edge deployment whose
// per-site server counts are managed by the reactive autoscaler. Sites
// start at EdgeConfig.ServersPerSite (bounded by the controller's
// Min/Max). It is a thin wrapper over Run with AutoscaledEdgeTopology.
func RunEdgeAutoscaled(tr *WorkloadTrace, cfg EdgeConfig, asCfg autoscale.Config) *AutoscaleResult {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.Sites != tr.Sites {
		panic(fmt.Sprintf("cluster: autoscale config has %d sites, trace has %d", cfg.Sites, tr.Sites))
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	topo := mustRun(tr.Source(), AutoscaledEdgeTopology(cfg, asCfg), Options{
		Warmup:      cfg.Warmup,
		Seed:        cfg.Seed,
		Summary:     cfg.Summary,
		TimelineBin: cfg.TimelineBin,
		SizeHint:    tr.Len(),
		// Matching the pre-topology runner, per-site rows carry
		// queueing metrics only.
		NoPerSiteLatency: true,
	})
	edge := &topo.Tiers[0]
	res := &AutoscaleResult{
		Result:       topo.Result,
		ScaleUps:     edge.ScaleUps,
		ScaleDowns:   edge.ScaleDowns,
		PeakServers:  edge.PeakServers,
		FinalPerSite: edge.FinalServers,
		Events:       edge.Events,
	}
	res.Label = "edge+autoscale"
	res.Sites = edge.Sites
	return res
}
