package cluster

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/netem"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// OverflowConfig configures a hierarchical edge deployment (edge sites
// backed by a cloud cluster): requests arriving at a site whose load is
// at or beyond OverflowThreshold are forwarded to the cloud instead,
// paying the cloud RTT. This is the "hierarchical edge cloud" design
// from the paper's related work (Tong et al.) and a stronger form of the
// §5.1 mitigation: instead of jockeying to a sibling site, overloaded
// traffic falls back to the pooled cloud queue.
type OverflowConfig struct {
	Sites             int
	ServersPerSite    int
	EdgePath          netem.Path
	CloudPath         netem.Path
	CloudServers      int
	OverflowThreshold int // forward to the cloud when site load ≥ this
	Warmup            float64
	Seed              int64
}

// OverflowResult extends Result with the edge/cloud split.
type OverflowResult struct {
	Result
	EdgeServed  uint64
	CloudServed uint64
	Overflowed  uint64
	EdgeOnly    stats.Sample // latency of requests served at their home site
	CloudOnly   stats.Sample // latency of overflowed requests
}

// RunEdgeWithOverflow replays the trace through the hierarchical
// deployment.
func RunEdgeWithOverflow(tr *WorkloadTrace, cfg OverflowConfig) *OverflowResult {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.Sites != tr.Sites {
		panic(fmt.Sprintf("cluster: overflow config has %d sites, trace has %d", cfg.Sites, tr.Sites))
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	if cfg.CloudServers <= 0 {
		panic("cluster: overflow deployment needs cloud servers")
	}
	if cfg.OverflowThreshold <= 0 {
		panic("cluster: OverflowThreshold must be positive")
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()

	sites := make([]*queue.Station, cfg.Sites)
	for i := range sites {
		sites[i] = queue.NewStation(eng, fmt.Sprintf("edge-%d", i), cfg.ServersPerSite, queue.FCFS)
		sites[i].SetWarmup(cfg.Warmup)
	}
	cloud := queue.NewStation(eng, "cloud-backstop", cfg.CloudServers, queue.FCFS)
	cloud.SetWarmup(cfg.Warmup)

	res := &OverflowResult{Result: Result{Label: "edge+overflow"}}

	var nextID uint64
	for _, rec := range tr.Records {
		rec := rec
		edgeRTT := cfg.EdgePath.Sample(netRng)
		cloudRTT := cfg.CloudPath.Sample(netRng)
		nextID++
		req := &queue.Request{
			ID:          nextID,
			Site:        rec.Site,
			ServiceTime: rec.ServiceTime,
			Generated:   rec.Time,
		}
		// The client always reaches its local site first (edge RTT); an
		// overflowed request additionally crosses to the cloud.
		req.NetworkRTT = edgeRTT
		overflowed := false
		req.Done = func(e *sim.Engine, r *queue.Request) {
			if r.Departure < cfg.Warmup {
				return
			}
			e2e := r.EndToEnd()
			res.EndToEnd.Add(e2e)
			res.Completed++
			if overflowed {
				res.CloudServed++
				res.CloudOnly.Add(e2e)
			} else {
				res.EdgeServed++
				res.EdgeOnly.Add(e2e)
			}
		}
		eng.At(rec.Time+edgeRTT/2, func(e *sim.Engine) {
			home := sites[req.Site]
			if home.Load() >= cfg.OverflowThreshold {
				overflowed = true
				res.Overflowed++
				req.NetworkRTT = edgeRTT + cloudRTT
				// Cross to the cloud: the request re-enters the network
				// for cloudRTT/2 before arriving at the pooled queue.
				e.After(cloudRTT/2, func(*sim.Engine) { cloud.Arrive(req) })
				return
			}
			home.Arrive(req)
		})
	}

	res.Duration = eng.Run()
	var busySum, capSum float64
	for i, s := range sites {
		s.Finish()
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		res.Sites = append(res.Sites, SiteResult{
			Site:        i,
			Wait:        m.Wait,
			Utilization: m.Utilization(s.Servers),
			Arrivals:    s.TotalArrivals(),
			MeanRate:    m.Arrivals.Rate(),
		})
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	cloud.Finish()
	res.Wait.Merge(&cloud.Metrics().Wait)
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	return res
}

// AutoscaleResult extends Result with controller telemetry.
type AutoscaleResult struct {
	Result
	ScaleUps     int
	ScaleDowns   int
	PeakServers  int
	FinalPerSite []int
	Events       []autoscale.Event
}

// RunEdgeAutoscaled replays the trace through an edge deployment whose
// per-site server counts are managed by the reactive autoscaler. Sites
// start at EdgeConfig.ServersPerSite (bounded by the controller's
// Min/Max).
func RunEdgeAutoscaled(tr *WorkloadTrace, cfg EdgeConfig, asCfg autoscale.Config) *AutoscaleResult {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.Sites != tr.Sites {
		panic(fmt.Sprintf("cluster: autoscale config has %d sites, trace has %d", cfg.Sites, tr.Sites))
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()

	stations := make([]*queue.Station, cfg.Sites)
	for i := range stations {
		stations[i] = queue.NewStation(eng, fmt.Sprintf("edge-%d", i), cfg.ServersPerSite, cfg.Discipline)
		stations[i].SetWarmup(cfg.Warmup)
	}
	ctrl := autoscale.New(eng, stations, asCfg)

	res := &AutoscaleResult{Result: Result{Label: "edge+autoscale"}}
	if cfg.TimelineBin > 0 {
		res.Timeline = stats.NewTimeSeries(0, cfg.TimelineBin)
	}

	// The controller's ticker keeps the calendar non-empty forever, so
	// stop it once the last request has completed and let the engine
	// drain naturally.
	outstanding := len(tr.Records)
	var nextID uint64
	for _, rec := range tr.Records {
		rtt := cfg.Path.Sample(netRng)
		nextID++
		req := &queue.Request{
			ID:          nextID,
			Site:        rec.Site,
			ServiceTime: rec.ServiceTime,
			NetworkRTT:  rtt,
			Generated:   rec.Time,
			Done: func(e *sim.Engine, r *queue.Request) {
				outstanding--
				if outstanding == 0 {
					ctrl.Stop()
				}
				if r.Departure < cfg.Warmup {
					return
				}
				e2e := r.EndToEnd()
				res.EndToEnd.Add(e2e)
				res.Completed++
				if res.Timeline != nil {
					res.Timeline.Add(r.Generated, e2e)
				}
			},
		}
		eng.At(rec.Time+rtt/2, func(e *sim.Engine) { stations[req.Site].Arrive(req) })
	}

	res.Duration = eng.Run()
	ctrl.Stop()
	var busySum, capSum float64
	for i, s := range stations {
		s.Finish()
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		res.Sites = append(res.Sites, SiteResult{
			Site:        i,
			Wait:        m.Wait,
			Utilization: m.Utilization(s.Servers),
			Arrivals:    s.TotalArrivals(),
			MeanRate:    m.Arrivals.Rate(),
		})
		res.FinalPerSite = append(res.FinalPerSite, s.Servers)
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	res.ScaleUps = ctrl.ScaleUps()
	res.ScaleDowns = ctrl.ScaleDowns()
	res.PeakServers = ctrl.PeakServers()
	res.Events = ctrl.Events
	return res
}
