package cluster

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/netem"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
)

// OverflowConfig configures a hierarchical edge deployment (edge sites
// backed by a cloud cluster): requests arriving at a site whose load is
// at or beyond OverflowThreshold are forwarded to the cloud instead,
// paying the cloud RTT. This is the "hierarchical edge cloud" design
// from the paper's related work (Tong et al.) and a stronger form of the
// §5.1 mitigation: instead of jockeying to a sibling site, overloaded
// traffic falls back to the pooled cloud queue.
type OverflowConfig struct {
	Sites             int
	ServersPerSite    int
	EdgePath          netem.Path
	CloudPath         netem.Path
	CloudServers      int
	OverflowThreshold int // forward to the cloud when site load ≥ this
	Warmup            float64
	Seed              int64
	// Summary selects the latency-collection memory model; see
	// EdgeConfig.Summary.
	Summary stats.Mode
}

// OverflowResult extends Result with the edge/cloud split.
type OverflowResult struct {
	Result
	EdgeServed  uint64
	CloudServed uint64
	Overflowed  uint64
	EdgeOnly    stats.Digest // latency of requests served at their home site
	CloudOnly   stats.Digest // latency of overflowed requests
}

// overflowTag marks a request forwarded to the cloud backstop.
const overflowTag = 1

// RunEdgeWithOverflow replays the trace through the hierarchical
// deployment on the shared streaming core: the home site's load is
// inspected at the request's arrival instant, and overflowed requests
// cross to the cloud on the secondary RTT sampled at generation time.
func RunEdgeWithOverflow(tr *WorkloadTrace, cfg OverflowConfig) *OverflowResult {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.Sites != tr.Sites {
		panic(fmt.Sprintf("cluster: overflow config has %d sites, trace has %d", cfg.Sites, tr.Sites))
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	if cfg.CloudServers <= 0 {
		panic("cluster: overflow deployment needs cloud servers")
	}
	if cfg.OverflowThreshold <= 0 {
		panic("cluster: OverflowThreshold must be positive")
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()
	pool := &queue.FreeList{}

	sites := make([]*queue.Station, cfg.Sites)
	for i := range sites {
		sites[i] = newStation(eng, fmt.Sprintf("edge-%d", i), cfg.ServersPerSite,
			queue.FCFS, 0, cfg.Warmup, cfg.Summary, pool)
	}
	cloud := newStation(eng, "cloud-backstop", cfg.CloudServers,
		queue.FCFS, 0, cfg.Warmup, cfg.Summary, pool)

	res := &OverflowResult{Result: *newResult("edge+overflow", cfg.Summary, tr.Len())}
	res.EdgeOnly = stats.NewDigest(cfg.Summary, 0)
	res.CloudOnly = stats.NewDigest(cfg.Summary, 0)

	sink := &resultSink{
		res:    &res.Result,
		warmup: cfg.Warmup,
		post: func(r *queue.Request, e2e float64) {
			if r.Tag == overflowTag {
				res.CloudServed++
				res.CloudOnly.Add(e2e)
			} else {
				res.EdgeServed++
				res.EdgeOnly.Add(e2e)
			}
		},
	}

	// An overflowed request re-enters the network for cloudRTT/2 before
	// arriving at the pooled queue.
	cloudAdmit := sim.PayloadEvent(func(e *sim.Engine, p any) {
		cloud.Arrive(p.(*queue.Request))
	})

	f := &feeder{
		src:  tr.Source(),
		pool: pool,
		sampleRTT: func() (float64, float64) {
			// The client always reaches its local site first (edge RTT);
			// the cloud leg rides along for the overflow decision.
			return cfg.EdgePath.Sample(netRng), cfg.CloudPath.Sample(netRng)
		},
		sink: sink,
		slow: 1,
		admit: func(e *sim.Engine, p any) {
			req := p.(*queue.Request)
			home := sites[req.Site]
			if home.Load() >= cfg.OverflowThreshold {
				req.Tag = overflowTag
				res.Overflowed++
				req.NetworkRTT += req.AuxRTT
				e.AfterPayload(req.AuxRTT/2, cloudAdmit, req)
				return
			}
			home.Arrive(req)
		},
	}
	runDeployment(eng, f, &res.Result, append(append([]*queue.Station(nil), sites...), cloud))

	var busySum, capSum float64
	for i, s := range sites {
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		res.Sites = append(res.Sites, SiteResult{
			Site:        i,
			Wait:        m.Wait,
			Utilization: m.Utilization(s.Servers),
			Arrivals:    s.TotalArrivals(),
			MeanRate:    m.Arrivals.Rate(),
		})
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	res.Wait.Merge(&cloud.Metrics().Wait)
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	return res
}

// AutoscaleResult extends Result with controller telemetry.
type AutoscaleResult struct {
	Result
	ScaleUps     int
	ScaleDowns   int
	PeakServers  int
	FinalPerSite []int
	Events       []autoscale.Event
}

// RunEdgeAutoscaled replays the trace through an edge deployment whose
// per-site server counts are managed by the reactive autoscaler. Sites
// start at EdgeConfig.ServersPerSite (bounded by the controller's
// Min/Max).
func RunEdgeAutoscaled(tr *WorkloadTrace, cfg EdgeConfig, asCfg autoscale.Config) *AutoscaleResult {
	if cfg.Sites <= 0 {
		cfg.Sites = tr.Sites
	}
	if cfg.Sites != tr.Sites {
		panic(fmt.Sprintf("cluster: autoscale config has %d sites, trace has %d", cfg.Sites, tr.Sites))
	}
	if cfg.ServersPerSite <= 0 {
		cfg.ServersPerSite = 1
	}
	eng := sim.NewEngine(cfg.Seed)
	netRng := eng.NewStream()
	pool := &queue.FreeList{}

	stations := make([]*queue.Station, cfg.Sites)
	for i := range stations {
		stations[i] = newStation(eng, fmt.Sprintf("edge-%d", i), cfg.ServersPerSite,
			cfg.Discipline, 0, cfg.Warmup, cfg.Summary, pool)
	}
	ctrl := autoscale.New(eng, stations, asCfg)

	res := &AutoscaleResult{Result: *newResult("edge+autoscale", cfg.Summary, tr.Len())}
	if cfg.TimelineBin > 0 {
		res.Timeline = stats.NewTimeSeries(0, cfg.TimelineBin)
	}

	// The controller's ticker keeps the calendar non-empty forever, so
	// stop it once the source is drained and the last emitted request
	// has been consumed, letting the engine drain naturally.
	var drained bool
	var consumed uint64
	var f *feeder
	maybeStop := func() {
		if drained && consumed == f.count {
			ctrl.Stop()
		}
	}
	sink := &resultSink{
		res:    &res.Result,
		warmup: cfg.Warmup,
		pre: func(*queue.Request) {
			consumed++
			maybeStop()
		},
	}
	f = &feeder{
		src:  tr.Source(),
		pool: pool,
		sampleRTT: func() (float64, float64) {
			return cfg.Path.Sample(netRng), 0
		},
		sink: sink,
		slow: 1,
		admit: func(e *sim.Engine, p any) {
			req := p.(*queue.Request)
			stations[req.Site].Arrive(req)
		},
		onDrained: func() {
			drained = true
			maybeStop()
		},
	}
	runDeployment(eng, f, &res.Result, stations)
	ctrl.Stop()

	var busySum, capSum float64
	for i, s := range stations {
		m := s.Metrics()
		res.Wait.Merge(&m.Wait)
		res.Sites = append(res.Sites, SiteResult{
			Site:        i,
			Wait:        m.Wait,
			Utilization: m.Utilization(s.Servers),
			Arrivals:    s.TotalArrivals(),
			MeanRate:    m.Arrivals.Rate(),
		})
		res.FinalPerSite = append(res.FinalPerSite, s.Servers)
		busySum += m.Busy.Average()
		capSum += float64(s.Servers)
	}
	if capSum > 0 {
		res.Utilization = busySum / capSum
	}
	res.ScaleUps = ctrl.ScaleUps()
	res.ScaleDowns = ctrl.ScaleDowns()
	res.PeakServers = ctrl.PeakServers()
	res.Events = ctrl.Events
	return res
}
