package cluster_test

// The pipelined backend's contract is byte-identity with the barrier
// backend: RunSharded with Options.Pipeline produces the same
// TopologyResult as without, for every preset, seed, warmup and summary
// mode, shard count, ring size and source adapter. These tests are the
// proof the -pipeline flag rests on; the CI race job runs them under
// -race to also certify the shard goroutines, the merger and the
// phase-2 pumps share nothing unsynchronized.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/trace"
)

func runPipelined(t *testing.T, preset string, shards, ring int, warmup float64, mode stats.Mode, seed int64) *cluster.TopologyResult {
	t.Helper()
	topo, ok := cluster.PresetTopology(preset)
	if !ok {
		t.Fatalf("unknown preset %q", preset)
	}
	src := cluster.GenShards(presetSpec(topo.Tiers[0].Sites, seed))
	res, err := cluster.RunSharded(src, topo, cluster.Options{
		Warmup:       warmup,
		Seed:         seed,
		Summary:      mode,
		Pipeline:     true,
		PipelineRing: ring,
	}, shards)
	if err != nil {
		t.Fatalf("preset %s pipelined with %d shards: %v", preset, shards, err)
	}
	return res
}

// TestPipelinedMatchesBarrier: whole TopologyResults are bit-identical
// between the pipelined and barrier backends across all shipped
// presets (hetero-paths carries a shared-tier autoscaler, so the
// blocking-pump discipline under controller ticks is covered), seeds,
// warmup and summary modes, and shard counts. The ring-4 variant
// forces constant backpressure: every shard blocks on a nearly-full
// ring while the merge drains it, proving stalls cannot reorder the
// canonical stream.
func TestPipelinedMatchesBarrier(t *testing.T) {
	for _, preset := range cluster.TopologyPresets() {
		for _, seed := range []int64{1, 42} {
			for _, tc := range []struct {
				label  string
				warmup float64
				mode   stats.Mode
			}{
				{"exact", 0, stats.Exact},
				{"exact-warmup", 30, stats.Exact},
				{"bounded", 0, stats.Bounded},
				{"bounded-warmup", 30, stats.Bounded},
			} {
				want := runSharded(t, preset, 1, tc.warmup, tc.mode, seed)
				if want.Offered == 0 {
					t.Fatalf("%s/%s: no requests offered; test is vacuous", preset, tc.label)
				}
				for _, shards := range []int{1, 2, 3, 8} {
					got := runPipelined(t, preset, shards, 0, tc.warmup, tc.mode, seed)
					compareTopologyResults(t,
						preset+"/"+tc.label+"/pipelined", want, got)
				}
				got := runPipelined(t, preset, 4, 4, tc.warmup, tc.mode, seed)
				compareTopologyResults(t,
					preset+"/"+tc.label+"/pipelined-ring4", want, got)
			}
		}
	}
}

// TestPipelinedSourcesAgree: the pipelined backend is source-agnostic —
// lazy generator ranges, materialized trace filtering and re-scanned
// streaming CSV decoders all reproduce the barrier generator baseline.
func TestPipelinedSourcesAgree(t *testing.T) {
	const sites = 5
	topo := spillTopology(sites)
	opts := cluster.Options{Warmup: 20, Seed: 11, Summary: stats.Exact}
	popts := opts
	popts.Pipeline = true
	mk := func() cluster.GenSpec { return presetSpec(sites, 7) }

	want, err := cluster.RunSharded(cluster.GenShards(mk()), topo, opts, 1)
	if err != nil {
		t.Fatalf("generator baseline: %v", err)
	}
	if want.Offered == 0 {
		t.Fatal("baseline offered no requests; test is vacuous")
	}

	got, err := cluster.RunSharded(cluster.GenShards(mk()), topo, popts, 2)
	if err != nil {
		t.Fatalf("pipelined generator: %v", err)
	}
	compareTopologyResults(t, "pipelined-gen", want, got)

	got, err = cluster.RunSharded(cluster.TraceShards(cluster.Generate(mk())), topo, popts, 3)
	if err != nil {
		t.Fatalf("pipelined trace source: %v", err)
	}
	compareTopologyResults(t, "pipelined-trace", want, got)

	var buf bytes.Buffer
	if _, err := trace.WriteRequestsCSV(&buf, cluster.Stream(mk())); err != nil {
		t.Fatalf("encode CSV: %v", err)
	}
	csv := buf.String()
	factory := func() cluster.Source { return trace.StreamRequestsCSV(strings.NewReader(csv)) }
	got, err = cluster.RunSharded(cluster.SourceShards(factory, sites), topo, popts, 4)
	if err != nil {
		t.Fatalf("pipelined csv source: %v", err)
	}
	compareTopologyResults(t, "pipelined-csv", want, got)
}

// TestPipelinedAzureSource: the Azure per-bin decoder through the
// pipelined backend matches the barrier baseline at several shard
// counts.
func TestPipelinedAzureSource(t *testing.T) {
	const azureCSV = `bin,s0,s1,s2,s3
0,40,55,35,20
1,30,25,45,30
2,25,30,20,35
`
	factory := func() cluster.Source {
		return trace.StreamAzureCSV(strings.NewReader(azureCSV), trace.AzureStreamOptions{
			BinWidth: 30,
			Seed:     3,
		})
	}
	probe := trace.StreamAzureCSV(strings.NewReader(azureCSV), trace.AzureStreamOptions{})
	sites := probe.Sites()

	topo := spillTopology(sites)
	want, err := cluster.RunSharded(cluster.SourceShards(factory, sites), topo,
		cluster.Options{Seed: 5, Summary: stats.Exact}, 1)
	if err != nil {
		t.Fatalf("azure baseline: %v", err)
	}
	if want.Offered == 0 {
		t.Fatal("azure baseline offered no requests; test is vacuous")
	}
	for _, shards := range []int{2, sites} {
		got, err := cluster.RunSharded(cluster.SourceShards(factory, sites), topo,
			cluster.Options{Seed: 5, Summary: stats.Exact, Pipeline: true}, shards)
		if err != nil {
			t.Fatalf("pipelined azure %d shards: %v", shards, err)
		}
		compareTopologyResults(t, "pipelined-azure", want, got)
	}
}

// TestPipelinedSourceErrorSurfaces: a decode failure inside a shard
// worker surfaces as an error without deadlocking the merger or the
// phase-2 pumps — the failing shard still closes its ring, so the
// whole pipeline drains and RunSharded returns.
func TestPipelinedSourceErrorSurfaces(t *testing.T) {
	const bad = "time,site,service\n0.5,0,0.01\n1.0,1,0.02\nnot-a-number,0,0.01\n"
	factory := func() cluster.Source { return trace.StreamRequestsCSV(strings.NewReader(bad)) }
	topo := spillTopology(2)
	_, err := cluster.RunSharded(cluster.SourceShards(factory, 2), topo,
		cluster.Options{Seed: 1, Pipeline: true}, 2)
	if err == nil {
		t.Fatal("want a decode error from the pipelined run, got none")
	}
	if !strings.Contains(err.Error(), "source failed") {
		t.Fatalf("error does not identify the source failure: %v", err)
	}
}

// TestPipelinedRejections: the pipelined backend refuses exactly what
// the barrier backend refuses, with the same error text.
func TestPipelinedRejections(t *testing.T) {
	topo := spillTopology(3)
	src := func() cluster.ShardedSource { return cluster.GenShards(presetSpec(3, 1)) }
	if _, err := cluster.RunSharded(src(), topo, cluster.Options{Pipeline: true, TimelineBin: 1}, 2); err == nil || !strings.Contains(err.Error(), "TimelineBin") {
		t.Fatalf("want timeline rejection, got %v", err)
	}
	if _, err := cluster.RunSharded(src(), topo, cluster.Options{Pipeline: true, Probe: func(int) {}}, 2); err == nil || !strings.Contains(err.Error(), "Probe") {
		t.Fatalf("want probe rejection, got %v", err)
	}
}

// partitionTopology splits the shared phase into two independent spill
// components: sites enter at edge-a by default, the back half is
// pinned to edge-b by a class rule, and each edge tier spills to its
// own central pool. With no scaler on either pool, the pipelined
// backend replays the two components on parallel phase-2 engines.
func partitionTopology(sites int) cluster.Topology {
	detour := netem.CloudTypical
	pinned := make([]int, 0, sites/2)
	for s := sites / 2; s < sites; s++ {
		pinned = append(pinned, s)
	}
	return cluster.Topology{
		Name: "split-shared",
		Tiers: []cluster.Tier{
			{Name: "edge-a", Sites: sites, ServersPerSite: 1, Path: netem.EdgePath},
			{Name: "edge-b", Sites: sites, ServersPerSite: 1, Path: netem.EdgePath},
			{Name: "pool-a", Sites: 1, ServersPerSite: sites, Path: netem.CloudTypical,
				Dispatch: cluster.CentralQueueDispatch},
			{Name: "pool-b", Sites: 1, ServersPerSite: sites, Path: netem.CloudTypical,
				Dispatch: cluster.CentralQueueDispatch},
		},
		Spills: []cluster.SpillEdge{
			{From: "edge-a", To: "pool-a", Threshold: 2, DetourPath: &detour},
			{From: "edge-b", To: "pool-b", Threshold: 2, DetourRTT: 0.004},
		},
		Classes: []cluster.ClassRule{
			{Name: "b-half", Sites: pinned, Tier: "edge-b"},
		},
	}
}

// TestPipelinedParallelPartitions: a topology whose shared tiers form
// two disjoint spill components replays bit-identically on parallel
// phase-2 engines, including under a tiny ring. Both pools must see
// traffic or the partition split is untested.
func TestPipelinedParallelPartitions(t *testing.T) {
	const sites = 6
	topo := partitionTopology(sites)
	if err := cluster.Shardable(topo); err != nil {
		t.Fatalf("partition topology must be shardable: %v", err)
	}
	mk := func() cluster.GenSpec { return presetSpec(sites, 13) }
	opts := cluster.Options{Warmup: 15, Seed: 9, Summary: stats.Exact}

	want, err := cluster.RunSharded(cluster.GenShards(mk()), topo, opts, 1)
	if err != nil {
		t.Fatalf("barrier baseline: %v", err)
	}
	for _, pool := range []string{"pool-a", "pool-b"} {
		if tr := want.Tier(pool); tr == nil || tr.Served == 0 {
			t.Fatalf("%s served no spilled traffic; partition test is vacuous", pool)
		}
	}

	for _, tc := range []struct {
		label  string
		shards int
		ring   int
	}{
		{"shards2", 2, 0},
		{"shards4-ring8", 4, 8},
	} {
		popts := opts
		popts.Pipeline = true
		popts.PipelineRing = tc.ring
		got, err := cluster.RunSharded(cluster.GenShards(mk()), topo, popts, tc.shards)
		if err != nil {
			t.Fatalf("pipelined %s: %v", tc.label, err)
		}
		compareTopologyResults(t, "partitions/"+tc.label, want, got)
	}
}

// TestPipelinedBacklogBounded: the satellite memory probe. Peak
// resident boundary records — captured but not yet admitted to a
// phase-2 engine — must be bounded by ring capacity and pipeline
// constants, not by the boundary count: growing the trace 10x and
// 100x may not grow the peak past the same fixed bound.
func TestPipelinedBacklogBounded(t *testing.T) {
	const (
		sites  = 4
		shards = 4
		ring   = 64
		// slack covers what sits outside the rings: per-shard pending
		// heaps (captures within one detour of the shard clock) and the
		// merger/pump batches in flight (a few pipeBatch-sized buffers
		// per partition). All are O(1) in the trace length.
		slack = 2048
		bound = shards*ring + slack
	)
	topo := spillTopology(sites)
	for _, scale := range []struct {
		label    string
		duration float64
	}{
		{"1x", 120},
		{"10x", 1200},
		{"100x", 12000},
	} {
		spec := cluster.GenSpec{
			Sites: sites, Duration: scale.duration, PerSiteRate: 16, Seed: 21,
		}
		peak := -1
		res, err := cluster.RunSharded(cluster.GenShards(spec), topo, cluster.Options{
			Seed:         21,
			Summary:      stats.Bounded,
			Pipeline:     true,
			PipelineRing: ring,
			BacklogProbe: func(p int) { peak = p },
		}, shards)
		if err != nil {
			t.Fatalf("%s: %v", scale.label, err)
		}
		if peak < 0 {
			t.Fatalf("%s: BacklogProbe never called", scale.label)
		}
		if peak == 0 {
			t.Fatalf("%s: zero peak backlog; no boundary traffic crossed, test is vacuous", scale.label)
		}
		if peak > bound {
			t.Errorf("%s: peak backlog %d exceeds O(ring) bound %d", scale.label, peak, bound)
		}
		// The bound must be the binding constraint, not a tautology: at
		// 100x the boundary stream is far larger than the bound.
		if scale.label == "100x" {
			if crossed := res.Tier("cloud").Served; crossed < 4*uint64(bound) {
				t.Fatalf("100x run spilled only %d records (< 4x bound %d); grow the trace", crossed, bound)
			}
		}
	}
}
