package cluster

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/stats"
)

// TestSourceIteration: the trace source yields every record in order and
// independent iterators do not interfere.
func TestSourceIteration(t *testing.T) {
	tr := Generate(GenSpec{Sites: 3, Duration: 50, PerSiteRate: 4, Seed: 41})
	a, b := tr.Source(), tr.Source()
	var n int
	last := -1.0
	for {
		rec, ok := a.Next()
		if !ok {
			break
		}
		if rec.Time < last {
			t.Fatal("source yielded records out of order")
		}
		last = rec.Time
		n++
	}
	if n != tr.Len() {
		t.Fatalf("source yielded %d records, trace has %d", n, tr.Len())
	}
	if rec, ok := b.Next(); !ok || rec != tr.Records[0] {
		t.Error("second iterator should start from the beginning")
	}
	if _, ok := a.Next(); ok {
		t.Error("exhausted source should keep returning ok=false")
	}
}

// maxPending replays a trace of the given duration through the edge and
// reports the largest event-calendar size observed at any generated
// arrival, plus the trace length.
func maxPendingEdge(duration float64, mode stats.Mode) (maxP, traceLen int) {
	tr := Generate(GenSpec{Sites: 5, Duration: duration, PerSiteRate: 8, Seed: 42})
	cfg := EdgeConfig{
		Sites: 5, ServersPerSite: 1, Path: netem.Constant("zero", 0),
		Warmup: 10, Seed: 43, Summary: mode,
		probe: func(p int) {
			if p > maxP {
				maxP = p
			}
		},
	}
	RunEdge(tr, cfg)
	return maxP, tr.Len()
}

// TestCalendarBoundedDuringReplay: the acceptance criterion of the
// streaming core — Engine.Pending() stays bounded by a constant
// independent of trace length. A 10x longer trace must not grow the
// calendar at all.
func TestCalendarBoundedDuringReplay(t *testing.T) {
	shortMax, shortLen := maxPendingEdge(100, stats.Exact)
	longMax, longLen := maxPendingEdge(1000, stats.Exact)
	if longLen < 5*shortLen {
		t.Fatalf("trace scaling broken: %d vs %d records", shortLen, longLen)
	}
	// With 5 stations, zero RTT, and one pump event the live set is a
	// handful of events; 2*sites+8 is a generous constant bound.
	const bound = 2*5 + 8
	if shortMax == 0 || shortMax > bound {
		t.Errorf("short replay max Pending = %d, want in (0, %d]", shortMax, bound)
	}
	if longMax > bound {
		t.Errorf("long replay max Pending = %d exceeds constant bound %d (trace len %d)",
			longMax, bound, longLen)
	}
	if longMax > shortMax+2 {
		t.Errorf("calendar grew with trace length: %d (n=%d) -> %d (n=%d)",
			shortMax, shortLen, longMax, longLen)
	}
}

// TestCalendarBoundedCloud: same property through the cloud dispatch
// path with a nonzero RTT (in-flight arrivals bounded by rtt·λ).
func TestCalendarBoundedCloud(t *testing.T) {
	run := func(duration float64) (maxP, n int) {
		tr := Generate(GenSpec{Sites: 5, Duration: duration, PerSiteRate: 8, Seed: 44})
		sc, _ := netem.ScenarioByName("typical-25ms")
		cfg := CloudConfig{
			Servers: 5, Path: sc.Cloud, Policy: LeastConn,
			Warmup: 10, Seed: 45, Summary: stats.Bounded,
			probe: func(p int) {
				if p > maxP {
					maxP = p
				}
			},
		}
		RunCloud(tr, cfg)
		return maxP, tr.Len()
	}
	shortMax, _ := run(100)
	longMax, longLen := run(1000)
	// ~40 req/s aggregate at ~25 ms RTT keeps ~1 arrival in flight;
	// allow slack for RTT jitter.
	const bound = 40
	if longMax > bound {
		t.Errorf("cloud replay max Pending = %d exceeds %d (trace len %d)", longMax, bound, longLen)
	}
	if longMax > shortMax+5 {
		t.Errorf("cloud calendar grew with trace length: %d -> %d", shortMax, longMax)
	}
}
