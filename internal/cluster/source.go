package cluster

// Source streams request records in nondecreasing Time order. The
// deployment runners pull from a Source lazily — exactly one pending
// "generate next arrival" event sits in the event calendar at any time —
// so replay memory is bounded by the number of in-flight requests, not
// by trace length. WorkloadTrace implements the interface over its
// materialized records; synthetic sources can generate records on the
// fly and replay arbitrarily long workloads in constant space.
type Source interface {
	// Next returns the next record, or ok=false when the source is
	// exhausted. Records must be yielded in nondecreasing Time order;
	// the runners panic on a time regression. A source that can fail
	// mid-stream should also implement FallibleSource.
	Next() (RequestRecord, bool)
}

// FallibleSource is a Source that can end on a failure rather than a
// clean exhaustion — trace-file decoders, for example. Consumers that
// drain a Source to the end (Run does, and so must any exporter) probe
// for this interface afterwards and treat a non-nil Err as the
// replay's error, never as a short workload.
type FallibleSource interface {
	Source
	// Err returns the error that ended the stream, or nil after a
	// clean exhaustion.
	Err() error
}

// sliceSource iterates a materialized record slice.
type sliceSource struct {
	recs []RequestRecord
	i    int
}

func (s *sliceSource) Next() (RequestRecord, bool) {
	if s.i >= len(s.recs) {
		return RequestRecord{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// Source returns a fresh iterator over the trace. Each call starts at
// the beginning, so concurrent runs (RunPaired) each take their own.
func (w *WorkloadTrace) Source() Source { return &sliceSource{recs: w.Records} }
