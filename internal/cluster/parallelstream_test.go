package cluster_test

// ParallelStream must be observationally identical to serial Stream:
// same per-site seed derivation, same (Time, Site) merge order, same
// generation-order ties — for every scenario family, at every worker
// count. These tests are part of the raced CI suite, so the worker
// rings, watermarks and the early-abandon path also run under the race
// detector.

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// parallelWorkerCounts covers the degenerate serial fallback (1), true
// parallelism (2, 4) and a count exceeding the scenario site counts (8,
// which clamps).
var parallelWorkerCounts = []int{1, 2, 4, 8}

// TestParallelStreamMatchesStream: the merged parallel record sequence
// equals the serial one element for element, for every scenario family
// and worker count.
func TestParallelStreamMatchesStream(t *testing.T) {
	for name, mk := range streamScenarios(t) {
		for _, workers := range parallelWorkerCounts {
			workers := workers
			t.Run(fmt.Sprintf("%s/workers-%d", name, workers), func(t *testing.T) {
				want := cluster.Generate(mk())
				if want.Len() == 0 {
					t.Fatal("scenario generated no records; test is vacuous")
				}
				src := cluster.ParallelStream(mk(), workers)
				for i, rec := range want.Records {
					got, ok := src.Next()
					if !ok {
						t.Fatalf("workers=%d: stream ended at record %d of %d", workers, i, want.Len())
					}
					if got != rec {
						t.Fatalf("workers=%d: record %d diverges: parallel %+v, serial %+v",
							workers, i, got, rec)
					}
				}
				if rec, ok := src.Next(); ok {
					t.Fatalf("workers=%d: stream yielded %+v past the %d generated records",
						workers, rec, want.Len())
				}
			})
		}
	}
}

// TestGenerateParallelMatchesGenerate: the materialized parallel trace
// equals Generate's, including the Sites metadata.
func TestGenerateParallelMatchesGenerate(t *testing.T) {
	for name, mk := range streamScenarios(t) {
		t.Run(name, func(t *testing.T) {
			want := cluster.Generate(mk())
			got := cluster.GenerateParallel(mk(), 4)
			if got.Sites != want.Sites || got.Len() != want.Len() {
				t.Fatalf("parallel trace %d records/%d sites, serial %d/%d",
					got.Len(), got.Sites, want.Len(), want.Sites)
			}
			for i := range want.Records {
				if got.Records[i] != want.Records[i] {
					t.Fatalf("record %d diverges: %+v vs %+v", i, got.Records[i], want.Records[i])
				}
			}
		})
	}
}

// TestParallelStreamTopologyEquivalence: whole topology runs fed through
// Options.GenWorkers are bit-identical to serial-stream runs, across
// warmup and summary modes.
func TestParallelStreamTopologyEquivalence(t *testing.T) {
	for name, mk := range streamScenarios(t) {
		for _, tc := range []struct {
			label  string
			warmup float64
			mode   stats.Mode
		}{
			{"exact-warmup", 40, stats.Exact},
			{"bounded", 0, stats.Bounded},
		} {
			t.Run(name+"/"+tc.label, func(t *testing.T) {
				topo := spillTopology(mk().Sites)
				run := func(workers int) *cluster.TopologyResult {
					opts := cluster.Options{
						Warmup: tc.warmup, Seed: 5, Summary: tc.mode, GenWorkers: workers,
					}
					res, err := cluster.Run(opts.GenSource(mk()), topo, opts)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				want := run(0)
				if want.Offered == 0 {
					t.Fatal("no requests offered; test is vacuous")
				}
				for _, workers := range []int{-1, 4} {
					compareTopologyResults(t, name+"/"+tc.label, want, run(workers))
				}
			})
		}
	}
}

// TestParallelStreamStop: a consumer that abandons the stream early can
// release the generator workers via Stop — no deadlock, no further
// records — and a fully drained source tolerates a redundant Stop.
func TestParallelStreamStop(t *testing.T) {
	mk := streamScenarios(t)["renewal"]
	src := cluster.ParallelStream(mk(), 4)
	ps, ok := src.(cluster.ParallelSource)
	if !ok {
		t.Fatal("parallel source does not expose Stop")
	}
	for i := 0; i < 10; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("stream ended at record %d; scenario too small for the abandon test", i)
		}
	}
	ps.Stop()
	if _, ok := src.Next(); ok {
		t.Error("stopped source yielded another record")
	}

	drained := cluster.ParallelStream(mk(), 2)
	for {
		if _, ok := drained.Next(); !ok {
			break
		}
	}
	drained.(cluster.ParallelSource).Stop() // must be a no-op after drain
}

// TestParallelStreamAutoWorkers: workers <= 0 resolves to a per-CPU
// count and still produces the serial sequence (on a single-CPU box the
// resolved count is 1 and the fallback path returns the serial Stream —
// the equality must hold either way).
func TestParallelStreamAutoWorkers(t *testing.T) {
	mk := streamScenarios(t)["nhpp"]
	want := cluster.Generate(mk())
	src := cluster.ParallelStream(mk(), 0)
	for i, rec := range want.Records {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("stream ended at record %d of %d", i, want.Len())
		}
		if got != rec {
			t.Fatalf("record %d diverges: %+v vs %+v", i, got, rec)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("stream ran past the generated records")
	}
}
