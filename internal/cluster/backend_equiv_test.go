package cluster_test

// The calendar-queue engine must be observationally identical to the
// binary-heap engine it replaced: both calendars implement the same
// strict (time, front, sequence) order, so whole topology runs — every
// preset, trace and generator workloads, warmup on and off, exact and
// bounded summaries — must come out bit-identical. This extends the
// repo's equivalence discipline (materialized == streaming == legacy
// runners) to the PR 6 engine swap.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stats"
)

// runPresetOn replays a generated workload through a preset topology on
// the given calendar backend.
func runPresetOn(t *testing.T, preset string, b sim.Backend, warmup float64, mode stats.Mode, seed int64) *cluster.TopologyResult {
	t.Helper()
	topo, ok := cluster.PresetTopology(preset)
	if !ok {
		t.Fatalf("unknown preset %q", preset)
	}
	sites := topo.Tiers[0].Sites
	src := cluster.Stream(cluster.GenSpec{
		Sites:       sites,
		Duration:    120,
		PerSiteRate: 9,
		Seed:        seed,
	})
	res, err := cluster.Run(src, topo, cluster.Options{
		Warmup:  warmup,
		Seed:    seed,
		Summary: mode,
		Backend: b,
	})
	if err != nil {
		t.Fatalf("preset %s on backend %v: %v", preset, b, err)
	}
	return res
}

// TestCalendarQueueMatchesHeapOnPresets: whole TopologyResults are
// bit-identical between the two engine backends across all shipped
// presets, seeds, warmup and summary modes.
func TestCalendarQueueMatchesHeapOnPresets(t *testing.T) {
	for _, preset := range cluster.TopologyPresets() {
		for _, seed := range []int64{1, 42} {
			for _, tc := range []struct {
				label  string
				warmup float64
				mode   stats.Mode
			}{
				{"exact", 0, stats.Exact},
				{"exact-warmup", 30, stats.Exact},
				{"bounded", 0, stats.Bounded},
				{"bounded-warmup", 30, stats.Bounded},
			} {
				name := preset + "/" + tc.label
				want := runPresetOn(t, preset, sim.BinaryHeap, tc.warmup, tc.mode, seed)
				got := runPresetOn(t, preset, sim.CalendarQueue, tc.warmup, tc.mode, seed)
				compareTopologyResults(t, name, want, got)
			}
		}
	}
}

// TestCalendarQueueMatchesHeapOnTrace: a materialized trace replayed
// through the legacy-shaped overflow topology (spill edge, sampled
// detours, bounded queues) is bit-identical across backends.
func TestCalendarQueueMatchesHeapOnTrace(t *testing.T) {
	tr := cluster.Generate(cluster.GenSpec{Sites: 4, Duration: 150, PerSiteRate: 10, Seed: 3})
	topo := spillTopology(4)
	for _, mode := range []stats.Mode{stats.Exact, stats.Bounded} {
		opts := cluster.Options{Warmup: 20, Seed: 5, Summary: mode}
		hOpts := opts
		hOpts.Backend = sim.BinaryHeap
		want, err := cluster.Run(tr.Source(), topo, hOpts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cluster.Run(tr.Source(), topo, opts)
		if err != nil {
			t.Fatal(err)
		}
		compareTopologyResults(t, "trace/"+mode.String(), want, got)
	}
}
