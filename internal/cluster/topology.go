package cluster

import (
	"fmt"
	"math"

	"repro/internal/admit"
	"repro/internal/autoscale"
	"repro/internal/lb"
	"repro/internal/netem"
	"repro/internal/queue"
)

// CentralQueueDispatch is the Tier.Dispatch value for a pooled central
// queue: the tier's first station receives every request (M/M/k
// semantics when the tier has one station with k servers).
const CentralQueueDispatch = "central-queue"

// Tier is one layer of a deployment graph: a set of stations sharing a
// network path, a routing rule, and optional per-tier behaviors
// (bounded queues, geographic jockeying, an autoscaler). The paper's
// "edge" is a home-routed tier with one station per site; its "cloud"
// is a single central-queue tier with pooled servers. A Topology
// composes any number of tiers into hierarchies the four legacy
// runners could not express.
type Tier struct {
	// Name identifies the tier; spill edges and class rules refer to it.
	Name string
	// Sites is the tier's station count. A home-routed tier needs one
	// station per trace site; dispatcher tiers may have any count.
	Sites int
	// ServersPerSite is each station's server count (default 1).
	ServersPerSite int
	// PerSiteServers optionally overrides ServersPerSite per station.
	PerSiteServers []int
	// Path is the client→tier network path; its RTT is sampled per
	// request entering the topology at this tier.
	Path netem.Path
	// PerSitePaths optionally gives each home site its own client
	// path (heterogeneous last-mile links). Home-routed tiers only.
	PerSitePaths []netem.Path
	// Discipline selects the stations' service order.
	Discipline queue.Discipline
	// QueueCap bounds each station's waiting queue (0 = unbounded).
	QueueCap int
	// Dispatch selects routing into the tier: "" routes each request
	// to its home site's station, CentralQueueDispatch sends everything
	// to the first station, and any lb.Policies() name load-balances
	// across the tier's stations.
	Dispatch string
	// SlowdownFactor > 1 inflates service times at this tier relative
	// to the trace's reference server (resource-constrained hardware,
	// §3.1.1). 0 or 1 means identical hardware.
	SlowdownFactor float64
	// JockeyThreshold enables §5.1 geographic balancing within the
	// tier: requests arriving at a station at or beyond the threshold
	// are redirected to the least-loaded sibling at DetourRTT extra
	// latency. Home-routed tiers only.
	JockeyThreshold int
	DetourRTT       float64
	// Scaler, when set, attaches a capacity controller to the tier's
	// stations — reactive thresholds or forecast-driven predictive
	// provisioning, selected by the spec's policy name (autoscale.New
	// registry). Legacy reactive autoscale.Config values convert via
	// autoscale.ReactiveSpec.
	Scaler *autoscale.Spec
	// PricePerServerHour prices this tier's capacity for the cost
	// overlay (currency per server-hour). 0 selects the run pricing's
	// edge price for home-routed tiers and its cloud price otherwise.
	PricePerServerHour float64
	// Admission, when set, gates entry to the tier: requests the policy
	// refuses are rejected on the spot — no queueing, no service, no
	// spill — and counted in TierResult.Rejected. The decision happens
	// at the tier-entry instant, before the spill check, so a rejected
	// request never crosses a spill edge either. Token buckets are
	// per-site on home-routed tiers and tier-wide elsewhere (see
	// admit.New).
	Admission *admit.Spec
}

// homeRouted reports whether requests route to their home station.
func (t Tier) homeRouted() bool { return t.Dispatch == "" }

// SpillEdge forwards overloaded requests from one tier to another: a
// request arriving at a saturated From tier crosses to To instead,
// paying the sampled DetourPath RTT plus the fixed DetourRTT. This is
// the hierarchical edge cloud of the paper's related work (Tong et
// al.) generalized to chains of any depth.
type SpillEdge struct {
	From, To string
	// Threshold saturates the From tier: a home-routed tier spills
	// when the request's home station has Load() >= Threshold; other
	// tiers spill when every station is at or beyond it.
	Threshold int
	// DetourPath, when non-nil, is sampled for the crossing's network
	// cost. The edge out of the topology's first tier samples it at
	// generation time in record order (bit-compatible with the legacy
	// overflow runner); deeper edges sample a dedicated stream at
	// crossing time.
	DetourPath *netem.Path
	// DetourRTT is a fixed extra round trip added to every crossing.
	DetourRTT float64
}

// ClassRule pins a traffic class to an entry tier, overriding the
// default entry at the topology's first tier — e.g. a compliance
// class that must be served from the cloud in an otherwise
// edge-first deployment. Rules are evaluated in order; the first
// match wins.
type ClassRule struct {
	Name string
	// Sites restricts the rule to requests whose home site is in the
	// set (nil matches every site).
	Sites []int
	// Fraction, when in (0,1), matches that share of the otherwise
	// eligible requests via an independent Bernoulli stream.
	Fraction float64
	// Tier is the entry tier for matched requests.
	Tier string
}

// Topology is a declarative deployment graph: tiers connected by spill
// edges, with optional class pinning. The first tier is the default
// entry point for client requests. Execute with Run.
type Topology struct {
	Name    string
	Tiers   []Tier
	Spills  []SpillEdge
	Classes []ClassRule
}

// tierIndex resolves a tier name, or -1.
func (tp *Topology) tierIndex(name string) int {
	for i, t := range tp.Tiers {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// normalized returns a copy with defaults applied: ServersPerSite and
// SlowdownFactor floor at 1, empty topology names become "topology".
func (tp Topology) normalized() Topology {
	out := tp
	out.Tiers = append([]Tier(nil), tp.Tiers...)
	if out.Name == "" {
		out.Name = "topology"
	}
	for i := range out.Tiers {
		t := &out.Tiers[i]
		if t.ServersPerSite <= 0 {
			t.ServersPerSite = 1
		}
		if t.SlowdownFactor <= 0 {
			t.SlowdownFactor = 1
		}
	}
	return out
}

// Validate checks the graph's static shape: unique tier names, known
// dispatch policies, consistent per-site overrides, resolvable and
// acyclic spill edges (at most one out-edge per tier), and resolvable
// class rules. Run validates implicitly.
func (tp Topology) Validate() error {
	if len(tp.Tiers) == 0 {
		return fmt.Errorf("cluster: topology %q has no tiers", tp.Name)
	}
	seen := map[string]bool{}
	homeSites := -1
	for i, t := range tp.Tiers {
		if t.Name == "" {
			return fmt.Errorf("cluster: tier %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("cluster: duplicate tier name %q", t.Name)
		}
		seen[t.Name] = true
		if t.Sites <= 0 {
			return fmt.Errorf("cluster: tier %q needs at least one site", t.Name)
		}
		if t.Dispatch != "" && t.Dispatch != CentralQueueDispatch && !lb.Known(t.Dispatch) {
			return fmt.Errorf("cluster: tier %q has unknown dispatch %q (want %q, %v, or empty for home routing)",
				t.Name, t.Dispatch, CentralQueueDispatch, lb.Policies())
		}
		if t.PerSiteServers != nil && len(t.PerSiteServers) != t.Sites {
			return fmt.Errorf("cluster: tier %q has %d per-site server overrides for %d sites",
				t.Name, len(t.PerSiteServers), t.Sites)
		}
		if t.PerSitePaths != nil {
			if !t.homeRouted() {
				return fmt.Errorf("cluster: tier %q sets per-site paths but is not home-routed", t.Name)
			}
			if len(t.PerSitePaths) != t.Sites {
				return fmt.Errorf("cluster: tier %q has %d per-site paths for %d sites",
					t.Name, len(t.PerSitePaths), t.Sites)
			}
		}
		if t.JockeyThreshold > 0 && !t.homeRouted() {
			return fmt.Errorf("cluster: tier %q sets a jockey threshold but is not home-routed", t.Name)
		}
		if t.QueueCap < 0 {
			return fmt.Errorf("cluster: tier %q has a negative queue cap %d", t.Name, t.QueueCap)
		}
		// NaN slips through normalized()'s "<= 0 means default" floor —
		// every ordered comparison against NaN is false — so non-finite
		// factors must be rejected by name here.
		if math.IsNaN(t.SlowdownFactor) || math.IsInf(t.SlowdownFactor, 0) {
			return fmt.Errorf("cluster: tier %q has a non-finite slowdown factor %v", t.Name, t.SlowdownFactor)
		}
		if t.homeRouted() {
			if homeSites >= 0 && t.Sites != homeSites {
				return fmt.Errorf("cluster: home-routed tiers disagree on site count (%d vs %d)",
					homeSites, t.Sites)
			}
			homeSites = t.Sites
		}
		if t.Scaler != nil {
			if err := t.Scaler.Validate(); err != nil {
				return fmt.Errorf("cluster: tier %q scaler: %w", t.Name, err)
			}
		}
		if t.PricePerServerHour < 0 ||
			math.IsNaN(t.PricePerServerHour) || math.IsInf(t.PricePerServerHour, 0) {
			return fmt.Errorf("cluster: tier %q has an invalid server-hour price %v",
				t.Name, t.PricePerServerHour)
		}
		if t.Admission != nil {
			if err := t.Admission.Validate(); err != nil {
				return fmt.Errorf("cluster: tier %q admission: %w", t.Name, err)
			}
		}
	}
	outEdge := map[string]bool{}
	next := map[string]string{}
	for _, sp := range tp.Spills {
		if tp.tierIndex(sp.From) < 0 {
			return fmt.Errorf("cluster: spill edge from unknown tier %q", sp.From)
		}
		if tp.tierIndex(sp.To) < 0 {
			return fmt.Errorf("cluster: spill edge to unknown tier %q", sp.To)
		}
		if sp.From == sp.To {
			return fmt.Errorf("cluster: tier %q spills to itself", sp.From)
		}
		if sp.Threshold <= 0 {
			return fmt.Errorf("cluster: spill %s->%s needs a positive threshold", sp.From, sp.To)
		}
		if outEdge[sp.From] {
			return fmt.Errorf("cluster: tier %q has more than one spill edge", sp.From)
		}
		outEdge[sp.From] = true
		next[sp.From] = sp.To
	}
	// Follow each spill chain at most len(Tiers) hops to reject cycles.
	for from := range next {
		at, hops := from, 0
		for {
			to, ok := next[at]
			if !ok {
				break
			}
			at = to
			if hops++; hops >= len(tp.Tiers) {
				return fmt.Errorf("cluster: spill edges form a cycle through %q", from)
			}
		}
	}
	for _, c := range tp.Classes {
		if tp.tierIndex(c.Tier) < 0 {
			return fmt.Errorf("cluster: class %q pins to unknown tier %q", c.Name, c.Tier)
		}
		// The NaN check is load-bearing: "x < 0 || x > 1" is false for
		// NaN, and NaN also fails classify's "(0,1) means Bernoulli"
		// test, so a NaN fraction used to slip through validation and
		// silently pin every eligible request to the class's tier.
		if math.IsNaN(c.Fraction) || c.Fraction < 0 || c.Fraction > 1 {
			return fmt.Errorf("cluster: class %q fraction %v outside [0,1]", c.Name, c.Fraction)
		}
	}
	return nil
}

// EdgeTopology builds the single-tier topology equivalent to RunEdge:
// home-routed sites, optional geographic jockeying, bounded queues,
// per-site capacity and a service-time slowdown.
func EdgeTopology(cfg EdgeConfig) Topology {
	return Topology{
		Name: "edge",
		Tiers: []Tier{{
			Name:            "edge",
			Sites:           cfg.Sites,
			ServersPerSite:  cfg.ServersPerSite,
			PerSiteServers:  cfg.PerSiteServers,
			Path:            cfg.Path,
			Discipline:      cfg.Discipline,
			QueueCap:        cfg.QueueCap,
			SlowdownFactor:  cfg.SlowdownFactor,
			JockeyThreshold: cfg.JockeyThreshold,
			DetourRTT:       cfg.DetourRTT,
		}},
	}
}

// CloudTopology builds the single-tier topology equivalent to
// RunCloud: one central queue of pooled servers, or per-server
// stations behind the configured load-balancing policy.
func CloudTopology(cfg CloudConfig) Topology {
	t := Tier{
		Name:       "cloud",
		Path:       cfg.Path,
		Discipline: cfg.Discipline,
		QueueCap:   cfg.QueueCap,
	}
	if cfg.Policy == CentralQueue {
		t.Sites = 1
		t.ServersPerSite = cfg.Servers
		t.Dispatch = CentralQueueDispatch
	} else {
		t.Sites = cfg.Servers
		t.ServersPerSite = 1
		t.Dispatch = string(cfg.Policy)
	}
	return Topology{Name: "cloud", Tiers: []Tier{t}}
}

// OverflowTopology builds the two-tier topology equivalent to
// RunEdgeWithOverflow: home-routed edge sites spilling to a pooled
// cloud backstop on the cloud path's sampled RTT.
func OverflowTopology(cfg OverflowConfig) Topology {
	cloudPath := cfg.CloudPath
	return Topology{
		Name: "edge+overflow",
		Tiers: []Tier{
			{
				Name:           "edge",
				Sites:          cfg.Sites,
				ServersPerSite: cfg.ServersPerSite,
				Path:           cfg.EdgePath,
			},
			{
				Name:           "cloud-backstop",
				Sites:          1,
				ServersPerSite: cfg.CloudServers,
				Path:           cfg.CloudPath,
				Dispatch:       CentralQueueDispatch,
			},
		},
		Spills: []SpillEdge{{
			From:       "edge",
			To:         "cloud-backstop",
			Threshold:  cfg.OverflowThreshold,
			DetourPath: &cloudPath,
		}},
	}
}

// AutoscaledEdgeTopology builds the single-tier topology equivalent to
// RunEdgeAutoscaled: home-routed sites whose server counts are managed
// by the reactive controller. Matching the legacy runner, jockeying,
// queue bounds, per-site overrides and slowdown are not applied.
func AutoscaledEdgeTopology(cfg EdgeConfig, asCfg autoscale.Config) Topology {
	spec := autoscale.ReactiveSpec(asCfg)
	return Topology{
		Name: "edge+autoscale",
		Tiers: []Tier{{
			Name:           "edge",
			Sites:          cfg.Sites,
			ServersPerSite: cfg.ServersPerSite,
			Path:           cfg.Path,
			Discipline:     cfg.Discipline,
			Scaler:         &spec,
		}},
	}
}
