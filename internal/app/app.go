// Package app models the paper's application under test: a web-based DNN
// image-classification service (Keras/TensorFlow/Flask in the paper)
// whose compute-bound handler saturates a c5a.xlarge at 13 req/s. Since
// the original model and EC2 hardware are unavailable, app provides a
// calibrated service-time model with the same saturation point and a
// configurable variability, plus an image-size → service-time mapping
// used when replaying traces ("an image of an appropriate size is chosen
// to generate a request with the appropriate service time", §4.1).
package app

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dist"
)

// SaturationRate is the paper's measured saturation throughput of one
// c5a.xlarge instance serving DNN inference: 13 req/s (§4.2).
const SaturationRate = 13.0

// MaxPracticalRate is the paper's maximum sustainable request rate per
// server, 12 req/s (≈92% utilization), beyond which the service thrashes.
const MaxPracticalRate = 12.0

// DefaultServiceSCV is the squared coefficient of variation of inference
// service times. DNN inference on fixed-architecture models is close to
// deterministic; we use a small positive SCV to model input-size and
// OS-jitter effects. Together with the paced arrival SCV (see
// cluster.DefaultArrivalSCV) this calibrates the simulator so the Fig. 3
// crossover lands at the paper's measured 8 req/s.
const DefaultServiceSCV = 0.1

// InferenceModel describes the service-time behaviour of the DNN
// application on one server.
type InferenceModel struct {
	// MeanServiceTime is the expected execution time of one request in
	// seconds (1/SaturationRate by default).
	MeanServiceTime float64
	// SCV is the squared coefficient of variation of service times.
	SCV float64
	// D samples service times.
	D dist.Dist
}

// NewInferenceModel returns the calibrated c5a.xlarge inference model.
func NewInferenceModel() InferenceModel {
	return NewInferenceModelWith(1/SaturationRate, DefaultServiceSCV)
}

// NewInferenceModelWith returns a model with explicit mean and SCV.
func NewInferenceModelWith(mean, scv float64) InferenceModel {
	if mean <= 0 || scv < 0 {
		panic(fmt.Sprintf("app: invalid inference model mean=%v scv=%v", mean, scv))
	}
	return InferenceModel{MeanServiceTime: mean, SCV: scv, D: dist.FitSCV(mean, scv)}
}

// Slowed returns a copy of the model with service times scaled by
// factor > 1, modeling the resource-constrained edge servers discussed in
// §3.1.1 (fewer cores or slower processors ⇒ s_edge > s_cloud).
func (m InferenceModel) Slowed(factor float64) InferenceModel {
	if factor <= 0 {
		panic("app: slow-down factor must be positive")
	}
	return InferenceModel{
		MeanServiceTime: m.MeanServiceTime * factor,
		SCV:             m.SCV,
		D:               dist.Scaled{D: m.D, Factor: factor},
	}
}

// Mu returns the per-server service rate in req/s.
func (m InferenceModel) Mu() float64 { return 1 / m.MeanServiceTime }

// SampleServiceTime draws one request's execution time in seconds.
func (m InferenceModel) SampleServiceTime(rng *rand.Rand) float64 {
	s := m.D.Sample(rng)
	if s <= 0 {
		s = 1e-6
	}
	return s
}

// String describes the model.
func (m InferenceModel) String() string {
	return fmt.Sprintf("InferenceModel(mean=%.1fms, scv=%.2f)", m.MeanServiceTime*1000, m.SCV)
}

// ImageClass buckets request payloads by size, as the paper's workload
// generator selects images "of an appropriate size" to realize a target
// service time when replaying Azure traces.
type ImageClass struct {
	Name        string
	SizeBytes   int
	ServiceTime float64 // seconds on the reference server
}

// DefaultImageClasses is a catalogue spanning the Kaggle-style image
// sizes the paper's generator draws from, with service times scaled
// around the 13 req/s saturation point.
func DefaultImageClasses() []ImageClass {
	return []ImageClass{
		{Name: "thumb-64", SizeBytes: 12 << 10, ServiceTime: 0.030},
		{Name: "small-128", SizeBytes: 40 << 10, ServiceTime: 0.045},
		{Name: "medium-224", SizeBytes: 110 << 10, ServiceTime: 0.070},
		{Name: "large-299", SizeBytes: 240 << 10, ServiceTime: 0.077},
		{Name: "xlarge-512", SizeBytes: 700 << 10, ServiceTime: 0.110},
		{Name: "huge-1024", SizeBytes: 2 << 20, ServiceTime: 0.160},
	}
}

// PickImageForServiceTime returns the catalogue entry whose service time
// is closest to the requested target, mirroring the paper's trace
// replayer.
func PickImageForServiceTime(classes []ImageClass, target float64) ImageClass {
	if len(classes) == 0 {
		panic("app: empty image catalogue")
	}
	best := classes[0]
	bestD := absDiff(best.ServiceTime, target)
	for _, c := range classes[1:] {
		if d := absDiff(c.ServiceTime, target); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Executor runs one request's worth of work on real hardware, used by
// the live HTTP testbed. Implementations must block for approximately
// the requested service time.
type Executor interface {
	Execute(serviceTime time.Duration)
}

// SleepExecutor blocks without consuming CPU; suitable when emulating
// many servers on one machine.
type SleepExecutor struct{}

// Execute sleeps for the service time.
func (SleepExecutor) Execute(d time.Duration) { time.Sleep(d) }

// SpinExecutor burns CPU for the service time, reproducing the
// compute-bound nature of DNN inference. A small sleep quantum yields the
// scheduler periodically so co-hosted emulated servers are not starved.
type SpinExecutor struct{}

// Execute busy-loops until the deadline.
func (SpinExecutor) Execute(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(deadline) {
		// A short burst of arithmetic keeps the loop from being optimized
		// away while checking the clock only every few thousand ops.
		for i := 0; i < 4096; i++ {
			x = x*1.0000001 + 1e-9
		}
		if x > 1e300 {
			x = 1.0
		}
	}
	_ = x
}
