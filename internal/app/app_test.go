package app

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestInferenceModelCalibration(t *testing.T) {
	m := NewInferenceModel()
	if math.Abs(m.Mu()-SaturationRate) > 1e-9 {
		t.Errorf("Mu = %v, want %v", m.Mu(), SaturationRate)
	}
	if math.Abs(m.MeanServiceTime-1.0/13) > 1e-12 {
		t.Errorf("mean service = %v", m.MeanServiceTime)
	}
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += m.SampleServiceTime(rng)
	}
	if mean := sum / n; math.Abs(mean-1.0/13) > 0.002 {
		t.Errorf("sampled mean = %v, want %v", mean, 1.0/13)
	}
}

func TestInferenceModelWith(t *testing.T) {
	m := NewInferenceModelWith(0.050, 0.5)
	if m.Mu() != 20 {
		t.Errorf("Mu = %v, want 20", m.Mu())
	}
	if m.SCV != 0.5 {
		t.Errorf("SCV = %v", m.SCV)
	}
}

func TestInferenceModelPanics(t *testing.T) {
	for _, c := range []struct{ mean, scv float64 }{{0, 1}, {-1, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewInferenceModelWith(%v,%v) should panic", c.mean, c.scv)
				}
			}()
			NewInferenceModelWith(c.mean, c.scv)
		}()
	}
}

func TestSlowed(t *testing.T) {
	m := NewInferenceModel()
	s := m.Slowed(2)
	if math.Abs(s.MeanServiceTime-2*m.MeanServiceTime) > 1e-12 {
		t.Errorf("slowed mean = %v", s.MeanServiceTime)
	}
	if s.SCV != m.SCV {
		t.Error("slowdown should preserve SCV")
	}
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += s.SampleServiceTime(rng)
	}
	if mean := sum / n; math.Abs(mean-s.MeanServiceTime) > 0.005 {
		t.Errorf("slowed sampled mean = %v, want %v", mean, s.MeanServiceTime)
	}
}

func TestSlowedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive slowdown should panic")
		}
	}()
	NewInferenceModel().Slowed(0)
}

func TestSampleServiceTimePositive(t *testing.T) {
	f := func(seed int64) bool {
		m := NewInferenceModel()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if m.SampleServiceTime(rng) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImageCatalogue(t *testing.T) {
	classes := DefaultImageClasses()
	if len(classes) < 4 {
		t.Fatal("catalogue too small")
	}
	// Sorted ascending by size and service time.
	for i := 1; i < len(classes); i++ {
		if classes[i].SizeBytes <= classes[i-1].SizeBytes {
			t.Error("catalogue sizes should increase")
		}
		if classes[i].ServiceTime <= classes[i-1].ServiceTime {
			t.Error("catalogue service times should increase")
		}
	}
	// The reference 13 req/s point (77 ms) is represented.
	ref := PickImageForServiceTime(classes, 1.0/13)
	if math.Abs(ref.ServiceTime-1.0/13) > 0.01 {
		t.Errorf("closest to 77ms is %v (%vms)", ref.Name, ref.ServiceTime*1000)
	}
}

func TestPickImageForServiceTime(t *testing.T) {
	classes := DefaultImageClasses()
	if got := PickImageForServiceTime(classes, 0); got.Name != classes[0].Name {
		t.Errorf("tiny target should pick the smallest class, got %v", got.Name)
	}
	if got := PickImageForServiceTime(classes, 10); got.Name != classes[len(classes)-1].Name {
		t.Errorf("huge target should pick the largest class, got %v", got.Name)
	}
}

// TestPickImageIsNearest: for any target, no catalogue entry is closer
// than the chosen one.
func TestPickImageIsNearest(t *testing.T) {
	classes := DefaultImageClasses()
	f := func(raw uint16) bool {
		target := float64(raw) / 65535 * 0.3
		got := PickImageForServiceTime(classes, target)
		for _, c := range classes {
			if math.Abs(c.ServiceTime-target) < math.Abs(got.ServiceTime-target)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPickImagePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty catalogue should panic")
		}
	}()
	PickImageForServiceTime(nil, 0.1)
}

func TestSleepExecutorDuration(t *testing.T) {
	start := time.Now()
	SleepExecutor{}.Execute(30 * time.Millisecond)
	if d := time.Since(start); d < 28*time.Millisecond {
		t.Errorf("sleep executor returned after %v, want >= 30ms", d)
	}
}

func TestSpinExecutorDuration(t *testing.T) {
	start := time.Now()
	SpinExecutor{}.Execute(20 * time.Millisecond)
	d := time.Since(start)
	if d < 19*time.Millisecond {
		t.Errorf("spin executor returned after %v, want >= 20ms", d)
	}
	if d > 200*time.Millisecond {
		t.Errorf("spin executor overshot badly: %v", d)
	}
}
