package lb

import (
	"math"
	"testing"

	"repro/internal/queue"
	"repro/internal/sim"
)

func makeStations(eng *sim.Engine, n int) ([]*queue.Station, []queue.Server) {
	stations := make([]*queue.Station, n)
	servers := make([]queue.Server, n)
	for i := range stations {
		stations[i] = queue.NewStation(eng, "s", 1, queue.FCFS)
		servers[i] = stations[i]
	}
	return stations, servers
}

func TestRoundRobinCycles(t *testing.T) {
	eng := sim.NewEngine(1)
	stations, servers := makeStations(eng, 3)
	d := NewRoundRobin(servers)
	eng.At(0, func(*sim.Engine) {
		for i := 0; i < 6; i++ {
			d.Dispatch(&queue.Request{ServiceTime: 100})
		}
	})
	eng.RunUntil(1)
	for i, s := range stations {
		if s.TotalArrivals() != 2 {
			t.Errorf("station %d got %d, want 2", i, s.TotalArrivals())
		}
	}
	if d.Name() != "round-robin" {
		t.Error("name wrong")
	}
}

func TestLeastConnectionsPicksIdle(t *testing.T) {
	eng := sim.NewEngine(1)
	stations, servers := makeStations(eng, 3)
	d := NewLeastConnections(servers, eng.NewStream())
	eng.At(0, func(*sim.Engine) {
		// Preload stations 0 and 1.
		stations[0].Arrive(&queue.Request{ServiceTime: 100})
		stations[1].Arrive(&queue.Request{ServiceTime: 100})
		d.Dispatch(&queue.Request{ServiceTime: 100})
	})
	eng.RunUntil(1)
	if stations[2].TotalArrivals() != 1 {
		t.Error("least-connections should pick the idle station")
	}
}

func TestJSQPicksShortestQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	stations, _ := makeStations(eng, 2)
	d := NewJSQ(stations, eng.NewStream())
	eng.At(0, func(*sim.Engine) {
		// Station 0: busy + 2 queued. Station 1: busy + 0 queued.
		for i := 0; i < 3; i++ {
			stations[0].Arrive(&queue.Request{ServiceTime: 100})
		}
		stations[1].Arrive(&queue.Request{ServiceTime: 100})
		d.Dispatch(&queue.Request{ServiceTime: 100})
	})
	eng.RunUntil(1)
	if stations[1].TotalArrivals() != 2 {
		t.Error("JSQ should pick the station with the shorter queue")
	}
}

func TestPowerOfTwoAndRandomCoverAll(t *testing.T) {
	eng := sim.NewEngine(1)
	stations, servers := makeStations(eng, 4)
	p2 := NewPowerOfTwo(servers, eng.NewStream())
	rnd := NewRandom(servers, eng.NewStream())
	eng.At(0, func(*sim.Engine) {
		for i := 0; i < 200; i++ {
			p2.Dispatch(&queue.Request{ServiceTime: 0.001})
			rnd.Dispatch(&queue.Request{ServiceTime: 0.001})
		}
	})
	eng.Run()
	for i, s := range stations {
		if s.TotalArrivals() == 0 {
			t.Errorf("station %d never used", i)
		}
	}
}

func TestPowerOfTwoSingleStation(t *testing.T) {
	eng := sim.NewEngine(1)
	stations, servers := makeStations(eng, 1)
	d := NewPowerOfTwo(servers, eng.NewStream())
	eng.At(0, func(*sim.Engine) { d.Dispatch(&queue.Request{ServiceTime: 1}) })
	eng.Run()
	if stations[0].TotalArrivals() != 1 {
		t.Error("single-station po2 should route to it")
	}
}

// TestDispatcherQualityOrdering: with Poisson arrivals at high load,
// mean waits should order central-queue-like policies best to random
// worst: JSQ ≤ least-conn ≤ po2 ≤ random. This is the ablation behind
// the cloud model choice.
func TestDispatcherQualityOrdering(t *testing.T) {
	run := func(mk func(eng *sim.Engine, servers []queue.Server, stations []*queue.Station) Dispatcher) float64 {
		eng := sim.NewEngine(42)
		stations, servers := makeStations(eng, 5)
		d := mk(eng, servers, stations)
		arrRng := eng.NewStream()
		svcRng := eng.NewStream()
		lambda, mu := 55.0, 13.0 // ρ≈0.85 over 5 servers
		var schedule func(e *sim.Engine)
		schedule = func(e *sim.Engine) {
			if e.Now() > 2000 {
				return
			}
			d.Dispatch(&queue.Request{ServiceTime: svcRng.ExpFloat64() / mu})
			e.After(arrRng.ExpFloat64()/lambda, schedule)
		}
		eng.After(0, schedule)
		eng.Run()
		var total, n float64
		for _, s := range stations {
			s.Finish()
			w := &s.Metrics().Wait
			total += w.Mean() * float64(w.N())
			n += float64(w.N())
		}
		return total / n
	}

	jsq := run(func(eng *sim.Engine, _ []queue.Server, st []*queue.Station) Dispatcher {
		return NewJSQ(st, eng.NewStream())
	})
	lc := run(func(eng *sim.Engine, sv []queue.Server, _ []*queue.Station) Dispatcher {
		return NewLeastConnections(sv, eng.NewStream())
	})
	po2 := run(func(eng *sim.Engine, sv []queue.Server, _ []*queue.Station) Dispatcher {
		return NewPowerOfTwo(sv, eng.NewStream())
	})
	random := run(func(eng *sim.Engine, sv []queue.Server, _ []*queue.Station) Dispatcher {
		return NewRandom(sv, eng.NewStream())
	})

	// Least-conn counts in-service requests, JSQ only queued ones, so on
	// single-server stations least-conn is the sharper signal; they stay
	// within ~30% of each other.
	if jsq > lc*1.3 || lc > jsq*1.3 {
		t.Errorf("JSQ wait %v and least-conn %v should be comparable", jsq, lc)
	}
	if !(lc < po2) {
		t.Errorf("least-conn %v should beat po2 %v", lc, po2)
	}
	if !(po2 < random) {
		t.Errorf("po2 %v should beat random %v", po2, random)
	}
	if !(jsq < random/3) {
		t.Errorf("JSQ %v should be far better than random %v", jsq, random)
	}
}

func TestGeographicHomeRouting(t *testing.T) {
	eng := sim.NewEngine(1)
	stations, servers := makeStations(eng, 3)
	g := NewGeographic(servers, 0, 0.005, eng.NewStream()) // jockeying disabled
	eng.At(0, func(*sim.Engine) {
		g.Dispatch(&queue.Request{Site: 2, ServiceTime: 1})
		g.Dispatch(&queue.Request{Site: 0, ServiceTime: 1})
	})
	eng.RunUntil(0.5)
	if stations[2].TotalArrivals() != 1 || stations[0].TotalArrivals() != 1 {
		t.Error("disabled jockeying should route home")
	}
	if g.Redirected != 0 {
		t.Error("no redirects expected")
	}
}

func TestGeographicJockeys(t *testing.T) {
	eng := sim.NewEngine(1)
	stations, servers := makeStations(eng, 3)
	g := NewGeographic(servers, 2, 0.005, eng.NewStream())
	var detoured *queue.Request
	eng.At(0, func(*sim.Engine) {
		// Load site 0 to the threshold.
		stations[0].Arrive(&queue.Request{ServiceTime: 100})
		stations[0].Arrive(&queue.Request{ServiceTime: 100})
		r := &queue.Request{Site: 0, ServiceTime: 100, NetworkRTT: 0.001}
		detoured = r
		g.Dispatch(r)
	})
	eng.RunUntil(1)
	if g.Redirected != 1 {
		t.Fatalf("Redirected = %d, want 1", g.Redirected)
	}
	if stations[0].TotalArrivals() != 2 {
		t.Error("overloaded home should not receive the jockeyed request")
	}
	if math.Abs(detoured.NetworkRTT-0.006) > 1e-12 {
		t.Errorf("detour RTT not added: %v", detoured.NetworkRTT)
	}
}

func TestGeographicNoBetterSiteStaysHome(t *testing.T) {
	eng := sim.NewEngine(1)
	stations, servers := makeStations(eng, 2)
	g := NewGeographic(servers, 1, 0.005, eng.NewStream())
	eng.At(0, func(*sim.Engine) {
		// Both sites equally loaded at the threshold.
		stations[0].Arrive(&queue.Request{ServiceTime: 100})
		stations[1].Arrive(&queue.Request{ServiceTime: 100})
		g.Dispatch(&queue.Request{Site: 0, ServiceTime: 100})
	})
	eng.RunUntil(1)
	if g.Redirected != 0 {
		t.Error("equal load should not redirect")
	}
	if stations[0].TotalArrivals() != 2 {
		t.Error("request should stay home when no site is strictly better")
	}
}

func TestGeographicPanicsOnBadSite(t *testing.T) {
	eng := sim.NewEngine(1)
	_, servers := makeStations(eng, 2)
	g := NewGeographic(servers, 0, 0, eng.NewStream())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range home site should panic")
		}
	}()
	g.Dispatch(&queue.Request{Site: 7, ServiceTime: 1})
}

func TestConstructorsPanicOnEmpty(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, fn := range []func(){
		func() { NewRoundRobin(nil) },
		func() { NewLeastConnections(nil, nil) },
		func() { NewJSQ(nil, nil) },
		func() { NewPowerOfTwo(nil, eng.NewStream()) },
		func() { NewRandom(nil, eng.NewStream()) },
		func() { NewGeographic(nil, 0, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty dispatcher construction should panic")
				}
			}()
			fn()
		}()
	}
}
