// Package lb implements the request dispatchers used by the cloud
// deployment model and by the geographic load-balancing mitigation of
// §5.1. The paper's cloud is a single logical queue over k servers
// (M/M/k); a real deployment fronted by HAProxy approximates that with
// least-connection routing. Both are provided, along with round robin,
// join-shortest-queue, power-of-two-choices, and a geographic balancer
// with jockeying for the edge.
package lb

import (
	"fmt"
	"math/rand"

	"repro/internal/queue"
)

// Dispatcher routes an arriving request to one of a fixed set of
// stations.
type Dispatcher interface {
	// Dispatch admits r to one of the stations.
	Dispatch(r *queue.Request)
	// Name identifies the policy.
	Name() string
}

// Policy names accepted by New, in the order they are listed by
// Policies. These are the single source of truth for dispatcher
// construction; the cluster topology builder and cmd/edgesim both
// resolve policy flags through this registry instead of maintaining
// their own switches.
const (
	PolicyRoundRobin = "round-robin"
	PolicyLeastConn  = "least-connections"
	PolicyPowerOfTwo = "power-of-two"
	PolicyRandom     = "random"
)

// Policies returns the registry's dispatcher names.
func Policies() []string {
	return []string{PolicyRoundRobin, PolicyLeastConn, PolicyPowerOfTwo, PolicyRandom}
}

// Known reports whether name is a registered dispatcher policy.
func Known(name string) bool {
	for _, p := range Policies() {
		if p == name {
			return true
		}
	}
	return false
}

// New constructs the named dispatcher over the stations. rng feeds the
// policies that randomize (tie-breaks, sampling); round-robin ignores
// it. Unknown names return an error listing the registry.
func New(name string, stations []queue.Server, rng *rand.Rand) (Dispatcher, error) {
	switch name {
	case PolicyRoundRobin:
		return NewRoundRobin(stations), nil
	case PolicyLeastConn:
		return NewLeastConnections(stations, rng), nil
	case PolicyPowerOfTwo:
		return NewPowerOfTwo(stations, rng), nil
	case PolicyRandom:
		return NewRandom(stations, rng), nil
	default:
		return nil, fmt.Errorf("lb: unknown dispatch policy %q (want one of %v)", name, Policies())
	}
}

// RoundRobin cycles through stations in order, HAProxy's default policy.
type RoundRobin struct {
	stations []queue.Server
	next     int
}

// NewRoundRobin returns a round-robin dispatcher.
func NewRoundRobin(stations []queue.Server) *RoundRobin {
	if len(stations) == 0 {
		panic("lb: round robin needs at least one station")
	}
	return &RoundRobin{stations: stations}
}

// Dispatch sends r to the next station in rotation.
func (d *RoundRobin) Dispatch(r *queue.Request) {
	s := d.stations[d.next]
	d.next = (d.next + 1) % len(d.stations)
	s.Arrive(r)
}

// Name returns "round-robin".
func (d *RoundRobin) Name() string { return "round-robin" }

// LeastConnections routes to the station with the fewest in-flight
// requests (queued + serving), HAProxy's leastconn policy and the closest
// practical approximation of a central queue.
type LeastConnections struct {
	stations []queue.Server
	rng      *rand.Rand
}

// NewLeastConnections returns a least-connections dispatcher; rng breaks
// ties randomly so no station is systematically favored.
func NewLeastConnections(stations []queue.Server, rng *rand.Rand) *LeastConnections {
	if len(stations) == 0 {
		panic("lb: least connections needs at least one station")
	}
	return &LeastConnections{stations: stations, rng: rng}
}

// Dispatch sends r to the least-loaded station.
func (d *LeastConnections) Dispatch(r *queue.Request) {
	best := 0
	bestLoad := d.stations[0].Load()
	ties := 1
	for i := 1; i < len(d.stations); i++ {
		l := d.stations[i].Load()
		switch {
		case l < bestLoad:
			best, bestLoad, ties = i, l, 1
		case l == bestLoad:
			ties++
			if d.rng != nil && d.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	d.stations[best].Arrive(r)
}

// Name returns "least-connections".
func (d *LeastConnections) Name() string { return "least-connections" }

// JSQ is join-shortest-queue over waiting counts only. For stations with
// equal servers it behaves like least-connections.
type JSQ struct {
	stations []*queue.Station
	rng      *rand.Rand
}

// NewJSQ returns a join-shortest-queue dispatcher.
func NewJSQ(stations []*queue.Station, rng *rand.Rand) *JSQ {
	if len(stations) == 0 {
		panic("lb: JSQ needs at least one station")
	}
	return &JSQ{stations: stations, rng: rng}
}

// Dispatch sends r to the station with the shortest waiting queue.
func (d *JSQ) Dispatch(r *queue.Request) {
	best := 0
	bestLen := d.stations[0].QueueLength()
	ties := 1
	for i := 1; i < len(d.stations); i++ {
		l := d.stations[i].QueueLength()
		switch {
		case l < bestLen:
			best, bestLen, ties = i, l, 1
		case l == bestLen:
			ties++
			if d.rng != nil && d.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	d.stations[best].Arrive(r)
}

// Name returns "jsq".
func (d *JSQ) Name() string { return "jsq" }

// PowerOfTwo samples two random stations and routes to the less loaded,
// the classic low-overhead approximation of JSQ.
type PowerOfTwo struct {
	stations []queue.Server
	rng      *rand.Rand
}

// NewPowerOfTwo returns a power-of-two-choices dispatcher.
func NewPowerOfTwo(stations []queue.Server, rng *rand.Rand) *PowerOfTwo {
	if len(stations) == 0 {
		panic("lb: power-of-two needs at least one station")
	}
	if rng == nil {
		panic("lb: power-of-two needs an rng")
	}
	return &PowerOfTwo{stations: stations, rng: rng}
}

// Dispatch samples two stations and sends r to the less loaded.
func (d *PowerOfTwo) Dispatch(r *queue.Request) {
	n := len(d.stations)
	if n == 1 {
		d.stations[0].Arrive(r)
		return
	}
	i := d.rng.Intn(n)
	j := d.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	if d.stations[j].Load() < d.stations[i].Load() {
		i = j
	}
	d.stations[i].Arrive(r)
}

// Name returns "power-of-two".
func (d *PowerOfTwo) Name() string { return "power-of-two" }

// Random routes uniformly at random; with k single-server stations fed by
// a Poisson stream this reproduces k independent M/M/1 queues, the
// paper's worst-case edge model.
type Random struct {
	stations []queue.Server
	rng      *rand.Rand
}

// NewRandom returns a uniform random dispatcher.
func NewRandom(stations []queue.Server, rng *rand.Rand) *Random {
	if len(stations) == 0 || rng == nil {
		panic("lb: random dispatcher needs stations and an rng")
	}
	return &Random{stations: stations, rng: rng}
}

// Dispatch sends r to a uniformly random station.
func (d *Random) Dispatch(r *queue.Request) {
	d.stations[d.rng.Intn(len(d.stations))].Arrive(r)
}

// Name returns "random".
func (d *Random) Name() string { return "random" }

// Geographic routes each request to its "home" edge site unless that
// site's load exceeds JockeyThreshold, in which case the request is
// redirected to the least-loaded neighboring site at the cost of an
// extra DetourRTT of network latency. This is the §5.1 geographic
// load-balancing mitigation ("queue jockeying").
type Geographic struct {
	Sites           []queue.Server
	JockeyThreshold int     // redirect when home load ≥ threshold (0 disables)
	DetourRTT       float64 // extra round-trip seconds for a redirected request
	rng             *rand.Rand
	Redirected      uint64 // count of jockeyed requests
}

// NewGeographic returns a geographic balancer over the edge sites.
func NewGeographic(sites []queue.Server, jockeyThreshold int, detourRTT float64, rng *rand.Rand) *Geographic {
	if len(sites) == 0 {
		panic("lb: geographic balancer needs sites")
	}
	return &Geographic{Sites: sites, JockeyThreshold: jockeyThreshold, DetourRTT: detourRTT, rng: rng}
}

// Dispatch admits r at its home site (r.Site) or jockeys it elsewhere.
func (g *Geographic) Dispatch(r *queue.Request) {
	home := r.Site
	if home < 0 || home >= len(g.Sites) {
		panic(fmt.Sprintf("lb: request home site %d out of range", home))
	}
	if g.JockeyThreshold <= 0 || g.Sites[home].Load() < g.JockeyThreshold {
		g.Sites[home].Arrive(r)
		return
	}
	// Redirect to the least-loaded other site, if strictly better.
	best, bestLoad := home, g.Sites[home].Load()
	for i, s := range g.Sites {
		if i == home {
			continue
		}
		if l := s.Load(); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	if best != home {
		g.Redirected++
		r.NetworkRTT += g.DetourRTT
	}
	g.Sites[best].Arrive(r)
}

// Name returns "geographic".
func (g *Geographic) Name() string { return "geographic" }
